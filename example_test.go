package treesched_test

import (
	"fmt"

	"treesched"
)

// ExampleRun schedules a tiny deterministic workload with the paper's
// algorithm and prints the completions.
func ExampleRun() {
	network := treesched.Star(2) // one relay router, two machines
	trace := &treesched.Trace{Jobs: []treesched.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0.5, Size: 1},
	}}
	res, err := treesched.Run(network, trace, treesched.NewGreedyIdentical(0.5), treesched.Options{})
	if err != nil {
		panic(err)
	}
	for _, j := range res.Jobs {
		fmt.Printf("job %d: completed %.1f, flow %.1f\n", j.ID, j.Completion, j.Flow)
	}
	fmt.Printf("total flow %.1f\n", res.Stats.TotalFlow)
	// Output:
	// job 0: completed 5.0, flow 5.0
	// job 1: completed 2.5, flow 2.0
	// total flow 7.0
}

// ExampleReduce shows the Section 3.3 broomstick reduction invariants.
func ExampleReduce() {
	t := treesched.FatTree(2, 2, 1)
	bs, err := treesched.Reduce(t)
	if err != nil {
		panic(err)
	}
	leaf := bs.Reduced.Leaves()[0]
	orig := bs.ToOriginal[bs.Reduced.LeafIndex(leaf)]
	fmt.Printf("leaves preserved: %v\n", len(bs.Reduced.Leaves()) == len(t.Leaves()))
	fmt.Printf("depth change: %d -> %d\n", t.Depth(orig), bs.Reduced.Depth(leaf))
	// Output:
	// leaves preserved: true
	// depth change: 3 -> 5
}

// ExampleNewShadow runs the general-tree algorithm of Section 3.7 and
// verifies the Lemma 8 relation against its internal broomstick.
func ExampleNewShadow() {
	t := treesched.FatTree(2, 1, 2)
	trace := &treesched.Trace{Jobs: []treesched.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0.25, Size: 1},
		{ID: 2, Release: 0.5, Size: 4},
	}}
	sh, err := treesched.NewShadow(t, treesched.ShadowConfig{Eps: 0.5})
	if err != nil {
		panic(err)
	}
	res, err := treesched.Run(t, trace, sh, treesched.Options{})
	if err != nil {
		panic(err)
	}
	if err := sh.Finish(); err != nil {
		panic(err)
	}
	rep := treesched.CheckLemma8(res, sh)
	fmt.Printf("jobs %d, per-job violations %d\n", rep.Jobs, rep.Violations)
	// Output:
	// jobs 3, per-job violations 0
}

// ExampleOPTLowerBound bounds the competitive ratio of a run.
func ExampleOPTLowerBound() {
	network := treesched.Star(2)
	trace := &treesched.Trace{Jobs: []treesched.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 1, Size: 2},
	}}
	res, err := treesched.Run(network, trace, treesched.NewGreedyIdentical(0.5), treesched.Options{})
	if err != nil {
		panic(err)
	}
	lb := treesched.OPTLowerBound(network, trace)
	fmt.Printf("flow %.1f, OPT >= %.1f, ratio <= %.2f\n",
		res.Stats.TotalFlow, lb, res.Stats.TotalFlow/lb)
	// Output:
	// flow 9.0, OPT >= 9.0, ratio <= 1.00
}
