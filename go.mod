module treesched

go 1.22
