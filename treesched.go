package treesched

import (
	"io"

	"treesched/internal/core"
	"treesched/internal/faults"
	"treesched/internal/fleet"
	"treesched/internal/lowerbound"
	"treesched/internal/rng"
	"treesched/internal/scenario"
	"treesched/internal/sched"
	"treesched/internal/server"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// Scenario layer: declarative, serializable simulation setups. A
// Scenario bundles topology spec, workload spec, scheduler names,
// speeds and seed; it round-trips through JSON and a compact one-line
// string, and one value reproduces any experiment cell, CLI
// invocation or example in this repo.
type (
	// Scenario is one complete simulation setup in data form.
	Scenario = scenario.Scenario
	// ScenarioWorkload, ScenarioSpeed, ScenarioEngine and
	// ScenarioUnrelated are its component specs.
	ScenarioWorkload  = scenario.Workload
	ScenarioSpeed     = scenario.Speed
	ScenarioEngine    = scenario.Engine
	ScenarioUnrelated = scenario.Unrelated
	// Spec names one registry entry plus arguments ("fattree:2,2,2").
	Spec = scenario.Spec
	// Instance is a built scenario: concrete tree, trace, assigner.
	Instance = scenario.Instance
	// ScenarioRunner replays one scenario on a warm engine.
	ScenarioRunner = scenario.Runner
	// TopoEntry and Param let callers register custom topologies under
	// a name usable in scenario specs (see examples/heterogeneous).
	TopoEntry = scenario.TopoEntry
	Param     = scenario.Param
	// ScenarioFaults is a scenario's fault-injection section (a
	// registered plan spec or inline events, plus the recovery policy).
	ScenarioFaults = scenario.FaultSpec
	// ScenarioFleet is a scenario's fleet-of-trees section (tree
	// count, routing policy, optional per-tree topologies).
	ScenarioFleet = scenario.FleetSpec
)

// NewSpec builds a Spec in place: NewSpec("fattree", 2, 2, 2).
func NewSpec(name string, args ...float64) Spec { return scenario.NewSpec(name, args...) }

// ParseScenario loads a Scenario from JSON or the compact one-line
// form (auto-detected).
func ParseScenario(data []byte) (*Scenario, error) { return scenario.Load(data) }

// RunScenario builds and executes a scenario end to end.
func RunScenario(sc *Scenario) (*Result, error) { return scenario.Run(sc) }

// NewScenarioRunner builds a warm-engine runner for repeated replays
// of one scenario (zero steady-state allocations with a stateless
// assigner).
func NewScenarioRunner(sc *Scenario) (*ScenarioRunner, error) { return scenario.NewRunner(sc) }

// RegisterTopology adds a named topology generator to the scenario
// registry, making it addressable from specs and scenario files.
func RegisterTopology(e TopoEntry) { scenario.RegisterTopology(e) }

// Fleet layer: N independently built tree instances behind a
// front-door router dispatching one shared workload stream. Routing
// is execution-blind and every random draw is partitioned per
// subsystem and per tree, so per-tree fault edits never perturb
// sibling trees and the worker count never changes a byte of output.
type (
	// FleetOptions tunes a fleet run (worker count, per-tree fault
	// overrides).
	FleetOptions = fleet.Options
	// FleetResult is a completed fleet run.
	FleetResult = fleet.Result
	// FleetTreeResult is one tree's slice of a fleet run.
	FleetTreeResult = fleet.TreeResult
	// FleetScorecard is the serializable fleet summary.
	FleetScorecard = fleet.Scorecard
)

// RunFleet executes a fleet scenario (Scenario.Fleet must be set).
func RunFleet(sc *Scenario, opts FleetOptions) (*FleetResult, error) {
	return fleet.Run(sc, opts)
}

// Partitioned rng: the seed discipline underneath scenarios. A
// PartitionedRNG hands out one deterministic stream per subsystem
// name, all derived from a single SimulationKey; the legacy
// constructors alias every name to one shared stream, reproducing the
// repo's historical single-stream draw order bit for bit.
type (
	PartitionedRNG = rng.PartitionedRNG
	SimulationKey  = rng.SimulationKey
)

// NewPartitionedRNG builds a keyed partition: independent streams per
// subsystem name.
func NewPartitionedRNG(key SimulationKey) *PartitionedRNG { return rng.NewPartitioned(key) }

// NewLegacyRNG builds a legacy partition: every stream name aliases
// one rng.New(seed) stream.
func NewLegacyRNG(seed uint64) *PartitionedRNG { return rng.NewLegacy(seed) }

// Topology types and constructors.
type (
	// Tree is a rooted tree network (root = distribution center,
	// interior routers, leaf machines).
	Tree = tree.Tree
	// NodeID identifies a node within a Tree.
	NodeID = tree.NodeID
	// Builder constructs custom topologies.
	Builder = tree.Builder
	// Broomstick is the Section 3.3 reduction result.
	Broomstick = tree.Broomstick
)

// NewBuilder starts a custom topology (root pre-created).
func NewBuilder() *Builder { return tree.NewBuilder() }

// FatTree builds a complete arity-ary router tree of the given depth
// with leavesPerRouter machines under each bottom router.
func FatTree(arity, depth, leavesPerRouter int) *Tree {
	return tree.FatTree(arity, depth, leavesPerRouter)
}

// Star builds one relay router with n machines — the bus topology.
func Star(leaves int) *Tree { return tree.Star(leaves) }

// Line builds a path of routers ending in one machine.
func Line(routers int) *Tree { return tree.Line(routers) }

// Caterpillar builds a router spine with machines at every level.
func Caterpillar(spine, leavesPerSpine int) *Tree {
	return tree.Caterpillar(spine, leavesPerSpine)
}

// BroomstickTree builds a tree that is already in broomstick form.
func BroomstickTree(branches, handleLen, leavesPerLevel int) *Tree {
	return tree.BroomstickTree(branches, handleLen, leavesPerLevel)
}

// Reduce applies the paper's tree-to-broomstick reduction.
func Reduce(t *Tree) (*Broomstick, error) { return tree.Reduce(t) }

// Workload types and generators.
type (
	// Job is one unit of work (release time, router size, optional
	// per-leaf sizes for the unrelated-endpoint setting).
	Job = workload.Job
	// Trace is an ordered job sequence.
	Trace = workload.Trace
	// SizeDist draws job sizes.
	SizeDist = workload.SizeDist
	// UniformSize, BimodalSize, ParetoSize and ClassRounded are the
	// built-in size distributions.
	UniformSize  = workload.UniformSize
	BimodalSize  = workload.BimodalSize
	ParetoSize   = workload.ParetoSize
	ClassRounded = workload.ClassRounded
	// ArrivalSource yields a release-ordered job stream one job at a
	// time, so million-job workloads never need materializing.
	ArrivalSource = workload.ArrivalSource
	// TraceSource adapts a materialized Trace to an ArrivalSource.
	TraceSource = workload.TraceSource
)

// NewTraceSource wraps a materialized trace as an ArrivalSource.
func NewTraceSource(tr *Trace) *TraceSource { return workload.NewTraceSource(tr) }

// PoissonSource is the streaming counterpart of PoissonTrace: the
// identical job sequence (bit for bit), drawn one job at a time.
func PoissonSource(seed uint64, n int, load float64, t *Tree) (ArrivalSource, error) {
	return workload.NewPoissonSource(rng.New(seed), workload.GenConfig{
		N:        n,
		Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: 0.5},
		Load:     load,
		Capacity: float64(len(t.RootAdjacent())),
	})
}

// PoissonTrace generates n jobs with Poisson arrivals calibrated to
// the given load on t's root-adjacent capacity, with sizes rounded to
// powers of 1.5 (the paper's class assumption at eps=0.5).
func PoissonTrace(seed uint64, n int, load float64, t *Tree) (*Trace, error) {
	return workload.Poisson(rng.New(seed), workload.GenConfig{
		N:        n,
		Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: 0.5},
		Load:     load,
		Capacity: float64(len(t.RootAdjacent())),
	})
}

// MakeUnrelated converts an identical trace into an unrelated-endpoint
// trace with per-leaf affinity factors drawn from [lo, hi).
func MakeUnrelated(seed uint64, tr *Trace, t *Tree, lo, hi float64) error {
	return workload.MakeUnrelated(rng.New(seed), tr, workload.UnrelatedConfig{
		Leaves: len(t.Leaves()), Lo: lo, Hi: hi,
	})
}

// Engine types.
type (
	// Options configures a simulation run.
	Options = sim.Options
	// Result is a completed run.
	Result = sim.Result
	// Stats summarizes a run.
	Stats = sim.Stats
	// Policy orders jobs on a node; Assigner picks the leaf.
	Policy   = sim.Policy
	Assigner = sim.Assigner
	// ObliviousAssigner marks assigners that never read engine state,
	// letting the sharded engine (Options.Workers > 1) inject fully in
	// parallel per root-child subtree.
	ObliviousAssigner = sim.ObliviousAssigner
	// Arrival is the assigner's view of an arriving job.
	Arrival = sim.Arrival
	// Query is the read-only engine state view given to assigners.
	Query = sim.Query
)

// Node policies.
type (
	// SJF is Shortest-Job-First, the paper's node policy.
	SJF = sim.SJF
	// FIFO, SRPT and LCFS are the baseline node policies; WSJF
	// (highest density first) serves the weighted flow-time extension.
	FIFO = sim.FIFO
	SRPT = sim.SRPT
	LCFS = sim.LCFS
	WSJF = sim.WSJF
	// PS is egalitarian processor sharing (fair-queueing routers).
	PS = sim.PS
)

// AssignWeights draws integer weights in [1, maxWeight] for every job
// (the weighted flow-time extension; see Stats.WeightedFlow).
func AssignWeights(seed uint64, tr *Trace, maxWeight int) {
	workload.AssignWeights(rng.New(seed), tr, maxWeight)
}

// Sim is the event-driven engine itself, exported for callers that
// want to reuse one engine across runs (NewSim + RunOn + Reset)
// instead of paying a fresh allocation per Run.
type Sim = sim.Sim

// NewSim builds an engine for t. Reuse it across runs via
// (*Sim).Reset, which retains all allocated capacity.
func NewSim(t *Tree, opts Options) *Sim { return sim.New(t, opts) }

// RunOn simulates a trace on an existing engine (freshly built or
// recycled with Reset). Equivalent to Run but allocation-free in the
// steady state.
func RunOn(s *Sim, tr *Trace, asg Assigner) (*Result, error) {
	return sim.RunOn(s, tr, asg)
}

// Run simulates a trace on a tree with the given leaf assigner.
func Run(t *Tree, tr *Trace, asg Assigner, opts Options) (*Result, error) {
	return sim.Run(t, tr, asg, opts)
}

// RunPacketized simulates with unit-packet forwarding (Section 2's
// pipelined variant).
func RunPacketized(t *Tree, tr *Trace, asg Assigner, opts Options) (*Result, error) {
	return sim.RunPacketized(t, tr, asg, opts)
}

// Streaming pipeline: run from an ArrivalSource instead of a Trace,
// with online metrics (StreamStats), optional per-job sinks and
// bounded retention (Options.RetainJobs) so memory stays independent
// of the job count. Full-retention streamed runs are bit-identical to
// their materialized counterparts.
type (
	// StreamStats is the online per-completion accumulator.
	StreamStats = sim.StreamStats
	// LeafTally is one leaf's share of a streamed run.
	LeafTally = sim.LeafTally
	// JobMetrics is one job's recorded outcome — the element type of
	// Result.Jobs and the value handed to JobSink implementations.
	JobMetrics = sim.JobMetrics
	// JobSink receives every completed job's metrics in completion
	// order (see Options.Sink).
	JobSink = sim.JobSink
	// NDJSONSink writes one JSON line per completed job.
	NDJSONSink = sim.NDJSONSink
)

// NewNDJSONSink wraps w as a per-job NDJSON sink.
func NewNDJSONSink(w io.Writer) *NDJSONSink { return sim.NewNDJSONSink(w) }

// RunStream simulates an arrival stream on a fresh engine.
func RunStream(t *Tree, src ArrivalSource, asg Assigner, opts Options) (*Result, error) {
	return sim.RunStream(t, src, asg, opts)
}

// RunStreamOn simulates an arrival stream on an existing engine.
func RunStreamOn(s *Sim, src ArrivalSource, asg Assigner) (*Result, error) {
	return sim.RunStreamOn(s, src, asg)
}

// ReplayStreamOn drives the inject→drain cycle from a stream without
// collecting per-job results; it returns the number of jobs injected.
func ReplayStreamOn(s *Sim, src ArrivalSource, asg Assigner) (int, error) {
	return sim.ReplayStreamOn(s, src, asg)
}

// Serving layer: the scheduler-as-a-service daemon underneath
// cmd/treeschedd. A Server wraps the streaming engine behind a
// bounded admission queue with watermark-based load shedding and a
// graceful drain; the jobs it accepts complete byte-identically to an
// offline RunStream of the same trace on the same serve scenario.
type (
	// Server is the daemon core: admission queue, engine goroutine and
	// completion fan-out. Attach (*Server).Handler() to an
	// http.Server; see cmd/treeschedd for the full lifecycle.
	Server = server.Server
	// ServerConfig sizes a daemon (serve scenario, queue depth, shed
	// watermark, Retry-After hint, NDJSON stream guards).
	ServerConfig = server.Config
	// ServerStats is the daemon's /stats document.
	ServerStats = server.StatsView
	// ServerAdmitResult is the daemon's answer to one NDJSON job
	// batch: the accepted prefix, its first dense ID, and whether the
	// batch hit the load shedder.
	ServerAdmitResult = server.AdmitResult
	// ServerClient is the HTTP client for a running daemon, with
	// optional Retry-After-honoring resubmission of shed batches.
	ServerClient = server.Client
	// ServerSubmitResult summarizes one ServerClient.Submit call
	// (accepted count, shed tail, attempts used).
	ServerSubmitResult = server.SubmitResult
)

// NewServer builds and starts the daemon core for a serve scenario
// (Engine.Serve set). The engine goroutine runs until Drain, so
// callers own calling Drain when done, on error paths included.
func NewServer(cfg ServerConfig) (*Server, error) { return server.New(cfg) }

// Fault injection: deterministic node outages, brown-outs and
// permanent leaf loss, compiled into piecewise-constant speed
// schedules the engine applies exactly (see Options.Faults/Recovery).
type (
	// FaultPlan is a reproducible list of fault events.
	FaultPlan = faults.Plan
	// FaultEvent is one fault on one node.
	FaultEvent = faults.Event
	// FaultKind names a fault class (Outage, Brownout, LeafLoss).
	FaultKind = faults.Kind
	// FaultSchedule is a compiled plan, shareable across engines.
	FaultSchedule = faults.Schedule
	// RecoveryPolicy selects what happens to work assigned to a
	// permanently lost leaf.
	RecoveryPolicy = sim.RecoveryPolicy
	// Migration records one job re-dispatched off a dead leaf.
	Migration = sim.Migration
)

// Fault kinds and recovery policies.
const (
	Outage   = faults.Outage
	Brownout = faults.Brownout
	LeafLoss = faults.LeafLoss

	// RecoverHold stalls work assigned to a dead leaf (it counts
	// toward flow time and Drain reports the stuck tasks).
	RecoverHold = sim.RecoverHold
	// RecoverRedispatch restarts such work on a surviving leaf.
	RecoverRedispatch = sim.RecoverRedispatch
)

// CompileFaults validates a fault plan against a topology and compiles
// it for Options.Faults.
func CompileFaults(t *Tree, p *FaultPlan) (*FaultSchedule, error) {
	return faults.Compile(t, p)
}

// Engine error types: Drain returns these instead of panicking.
type (
	// StuckError reports tasks that can never finish (e.g. held on a
	// permanently lost leaf).
	StuckError = sim.StuckError
	// InternalError wraps an engine invariant violation with a dump of
	// the affected tasks.
	InternalError = sim.InternalError
	// AuditError carries a failed schedule-conformance audit.
	AuditError = sim.AuditError
)

// Schedule-conformance auditing: AuditReport is the result of
// replaying a run's recorded slices against the store-and-forward
// rules (see (*Sim).Audit).
type (
	AuditReport    = sim.AuditReport
	AuditViolation = sim.Violation
)

// The paper's algorithms (package core).
type (
	// GreedyIdentical and GreedyUnrelated are the Sections 3.4-3.6
	// assignment rules; Shadow is the Section 3.7 general-tree
	// algorithm driven by a broomstick co-simulation.
	GreedyIdentical = core.GreedyIdentical
	GreedyUnrelated = core.GreedyUnrelated
	Shadow          = core.Shadow
	ShadowConfig    = core.ShadowConfig
)

// NewGreedyIdentical builds the identical-endpoint greedy rule with
// analysis parameter eps.
func NewGreedyIdentical(eps float64) *GreedyIdentical {
	return core.NewGreedyIdentical(eps)
}

// NewGreedyUnrelated builds the unrelated-endpoint greedy rule.
func NewGreedyUnrelated(eps float64) *GreedyUnrelated {
	return core.NewGreedyUnrelated(eps)
}

// NewShadow builds the general-tree algorithm: a broomstick
// co-simulation whose leaf choices are copied onto the real tree.
func NewShadow(t *Tree, cfg ShadowConfig) (*Shadow, error) {
	return core.NewShadow(t, cfg)
}

// Baseline assigners (package sched).
type (
	ClosestLeaf       = sched.ClosestLeaf
	RandomLeaf        = sched.RandomLeaf
	RoundRobin        = sched.RoundRobin
	LeastVolume       = sched.LeastVolume
	MinPathWork       = sched.MinPathWork
	JoinShortestQueue = sched.JoinShortestQueue
)

// NewRandomLeaf builds the uniform-random baseline with its own seed.
func NewRandomLeaf(seed uint64) *RandomLeaf {
	return &sched.RandomLeaf{R: rng.New(seed)}
}

// OPTLowerBound returns the best valid combinatorial lower bound on
// the optimal (speed-1) total flow time of the instance. Dividing a
// run's total flow by it upper-bounds the competitive ratio.
func OPTLowerBound(t *Tree, tr *Trace) float64 {
	return lowerbound.Best(t, tr)
}

// Lemma validators (package core), re-exported for instrumented runs.
type (
	Lemma1Report  = core.Lemma1Report
	Lemma2Checker = core.Lemma2Checker
	Lemma8Report  = core.Lemma8Report
)

// CheckLemma1 validates the interior waiting bound on an instrumented
// run.
func CheckLemma1(res *Result, eps float64, unrelated bool) Lemma1Report {
	return core.CheckLemma1(res, eps, unrelated)
}

// CheckLemma8 compares a Shadow-driven run against its broomstick.
func CheckLemma8(res *Result, sh *Shadow) Lemma8Report {
	return core.CheckLemma8(res, sh)
}

// DualFitReport is the result of RunDualFit.
type DualFitReport = core.DualFitReport

// RunDualFit runs the identical-endpoint greedy algorithm on a
// broomstick while constructing the paper's Section 3.5 dual solution
// and checking LP-Dual feasibility numerically; a feasible dual
// certifies DualObjective/3 as a per-instance lower bound on OPT.
func RunDualFit(t *Tree, tr *Trace, eps float64) (*DualFitReport, error) {
	return core.RunDualFit(t, tr, eps)
}
