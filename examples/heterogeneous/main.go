// Heterogeneous: the unrelated-endpoint setting of Theorem 2 —
// machines differ per job (GPU vs CPU racks, data locality, ...), so a
// job's processing time depends on which machine it lands on. The
// example registers an irregular custom topology under a scenario
// name, runs the paper's unrelated greedy rule and the Section 3.7
// shadow algorithm on it, checks the Lemma 8 relation, and shows the
// broomstick the shadow simulates.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"treesched"
	"treesched/internal/trace"
	"treesched/internal/tree"
)

func main() {
	// An irregular cluster: one shallow rack and one deep wing.
	// Registering it makes "irregular-cluster" addressable from any
	// scenario spec (including files run via treesched -scenario).
	treesched.RegisterTopology(treesched.TopoEntry{
		Name: "irregular-cluster",
		Build: func([]int) *treesched.Tree {
			b := treesched.NewBuilder()
			rack := b.AddRouter(b.Root())
			b.AddLeaf(rack)
			b.AddLeaf(rack)
			wing := b.AddRouter(b.Root())
			mid := b.AddRouter(wing)
			b.AddLeaf(mid)
			deep := b.AddRouter(mid)
			b.AddLeaf(deep)
			b.AddLeaf(deep)
			return b.MustFinalize()
		},
	})

	// Unrelated machine affinities: each job is slower on a random
	// subset of machines and infeasible on some.
	sc := &treesched.Scenario{
		Topology: treesched.NewSpec("irregular-cluster"),
		Workload: treesched.ScenarioWorkload{
			N: 1500, Size: treesched.NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.85,
			Unrelated: &treesched.ScenarioUnrelated{Lo: 0.8, Hi: 1.2, PInfeasible: 0.3, Penalty: 3},
		},
		Assigner: "greedy-unrelated",
		Seed:     21,
	}

	// The unrelated greedy rule, directly on the cluster.
	in, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	direct, err := in.Run()
	if err != nil {
		log.Fatal(err)
	}
	cluster := in.Base

	// The analyzable Section 3.7 algorithm: simulate the broomstick.
	scShadow := *sc
	scShadow.Assigner = "shadow"
	inShadow, err := scShadow.Build()
	if err != nil {
		log.Fatal(err)
	}
	sh := inShadow.Assigner.(*treesched.Shadow)
	shadowRes, err := inShadow.Run()
	if err != nil {
		log.Fatal(err)
	}
	if err := sh.Finish(); err != nil {
		log.Fatal(err)
	}
	rep := treesched.CheckLemma8(shadowRes, sh)

	// An affinity-blind baseline.
	scBlind := *sc
	scBlind.Assigner = "roundrobin"
	blind, err := treesched.RunScenario(&scBlind)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("irregular heterogeneous cluster:")
	fmt.Print(trace.RenderTree(cluster))
	fmt.Printf("\nunrelated greedy (direct):  avg flow %.2f\n", direct.AvgFlow())
	fmt.Printf("shadow on broomstick:       avg flow %.2f\n", shadowRes.AvgFlow())
	fmt.Printf("affinity-blind round robin: avg flow %.2f\n", blind.AvgFlow())
	fmt.Printf("\nLemma 8 check (flow on T vs broomstick T'): %d jobs, %d per-job violations, total %.4g vs %.4g\n",
		rep.Jobs, rep.Violations, rep.TotalFlowT, rep.TotalFlowT2)

	bs, err := tree.Reduce(cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe broomstick the shadow algorithm simulates:")
	fmt.Print(trace.RenderTree(bs.Reduced))
}
