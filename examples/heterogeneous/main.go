// Heterogeneous: the unrelated-endpoint setting of Theorem 2 —
// machines differ per job (GPU vs CPU racks, data locality, ...), so a
// job's processing time depends on which machine it lands on. The
// example runs the paper's unrelated greedy rule and the Section 3.7
// shadow algorithm on an irregular tree, checks the Lemma 8 relation,
// and shows the broomstick the shadow simulates.
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"treesched"
	"treesched/internal/rng"
	"treesched/internal/trace"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func main() {
	// An irregular cluster: one shallow rack and one deep wing.
	b := treesched.NewBuilder()
	rack := b.AddRouter(b.Root())
	b.AddLeaf(rack)
	b.AddLeaf(rack)
	wing := b.AddRouter(b.Root())
	mid := b.AddRouter(wing)
	b.AddLeaf(mid)
	deep := b.AddRouter(mid)
	b.AddLeaf(deep)
	b.AddLeaf(deep)
	cluster, err := b.Finalize()
	if err != nil {
		log.Fatal(err)
	}

	// Unrelated machine affinities: each job is 2-4x slower on a
	// random subset of machines.
	r := rng.New(21)
	traceU, err := workload.Poisson(r, workload.GenConfig{
		N:        1500,
		Size:     workload.ClassRounded{Base: treesched.UniformSize{Lo: 1, Hi: 16}, Eps: 0.5},
		Load:     0.85,
		Capacity: float64(len(cluster.RootAdjacent())),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := workload.MakeUnrelated(r, traceU, workload.UnrelatedConfig{
		Leaves: len(cluster.Leaves()), Lo: 0.8, Hi: 1.2, PInfeasible: 0.3, Penalty: 3,
	}); err != nil {
		log.Fatal(err)
	}

	// The unrelated greedy rule, directly on the cluster.
	direct, err := treesched.Run(cluster, traceU, treesched.NewGreedyUnrelated(0.5), treesched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// The analyzable Section 3.7 algorithm: simulate the broomstick.
	sh, err := treesched.NewShadow(cluster, treesched.ShadowConfig{Eps: 0.5, Unrelated: true})
	if err != nil {
		log.Fatal(err)
	}
	shadowRes, err := treesched.Run(cluster, traceU, sh, treesched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sh.Finish()
	rep := treesched.CheckLemma8(shadowRes, sh)

	// An affinity-blind baseline.
	blind, err := treesched.Run(cluster, traceU, &treesched.RoundRobin{}, treesched.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("irregular heterogeneous cluster:")
	fmt.Print(trace.RenderTree(cluster))
	fmt.Printf("\nunrelated greedy (direct):  avg flow %.2f\n", direct.AvgFlow())
	fmt.Printf("shadow on broomstick:       avg flow %.2f\n", shadowRes.AvgFlow())
	fmt.Printf("affinity-blind round robin: avg flow %.2f\n", blind.AvgFlow())
	fmt.Printf("\nLemma 8 check (flow on T vs broomstick T'): %d jobs, %d per-job violations, total %.4g vs %.4g\n",
		rep.Jobs, rep.Violations, rep.TotalFlowT, rep.TotalFlowT2)

	bs, err := tree.Reduce(cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nthe broomstick the shadow algorithm simulates:")
	fmt.Print(trace.RenderTree(bs.Reduced))
}
