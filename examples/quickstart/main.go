// Quickstart: build a small fat-tree network, generate an online
// Poisson workload, schedule it with the paper's algorithm
// (greedy leaf assignment + SJF on every node), and compare against a
// congestion-oblivious baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"treesched"
)

func main() {
	// A 2-ary fat tree with two router levels and two machines per
	// bottom router: 15 nodes, 8 machines (the shape of Figure 1).
	network := treesched.FatTree(2, 2, 2)

	// 2000 jobs arrive online at the root (Poisson arrivals at 90%
	// of the root-link capacity, sizes in powers of 1.5).
	trace, err := treesched.PoissonTrace(1, 2000, 0.9, network)
	if err != nil {
		log.Fatal(err)
	}

	// The paper's scheduler: greedy congestion-aware leaf assignment
	// (Section 3.4) with Shortest-Job-First on every router/machine.
	greedy := treesched.NewGreedyIdentical(0.5)
	res, err := treesched.Run(network, trace, greedy, treesched.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Two baselines: proximity-based assignment (the natural-looking
	// policy Section 3.1 explains must fail under congestion) and
	// oblivious round robin (hard to beat on a perfectly symmetric
	// tree with smooth arrivals — greedy's guarantee is that it never
	// collapses, not that it wins every benign instance).
	closest, err := treesched.Run(network, trace, treesched.ClosestLeaf{}, treesched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rr, err := treesched.Run(network, trace, &treesched.RoundRobin{}, treesched.Options{})
	if err != nil {
		log.Fatal(err)
	}

	lb := treesched.OPTLowerBound(network, trace)
	fmt.Printf("jobs:                  %d\n", len(trace.Jobs))
	fmt.Printf("greedy avg flow time:  %.2f\n", res.AvgFlow())
	fmt.Printf("closest-leaf avg flow: %.2f  (%.1fx worse)\n", closest.AvgFlow(), closest.AvgFlow()/res.AvgFlow())
	fmt.Printf("round-robin avg flow:  %.2f\n", rr.AvgFlow())
	fmt.Printf("OPT lower bound:       %.2f/job\n", lb/float64(len(trace.Jobs)))
	fmt.Printf("competitive ratio <=   %.3f (vs speed-1 OPT)\n", res.Stats.TotalFlow/lb)
	fmt.Printf("max flow time:         %.2f (greedy) vs %.2f (closest)\n",
		res.Stats.MaxFlow, closest.Stats.MaxFlow)
}
