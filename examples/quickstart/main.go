// Quickstart: build a small fat-tree network, generate an online
// Poisson workload, schedule it with the paper's algorithm
// (greedy leaf assignment + SJF on every node), and compare against a
// congestion-oblivious baseline.
//
// The whole setup is one declarative Scenario value; swapping the
// assigner name is the only difference between the three runs. The
// same scenario can be saved with WriteJSON and replayed by
// cmd/treesched -scenario.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"treesched"
)

func main() {
	// A 2-ary fat tree with two router levels and two machines per
	// bottom router (15 nodes, 8 machines — the shape of Figure 1);
	// 2000 jobs arrive online at the root (Poisson arrivals at 90% of
	// the root-link capacity, sizes in powers of 1.5); the paper's
	// scheduler: greedy congestion-aware leaf assignment (Section 3.4)
	// with Shortest-Job-First on every router/machine.
	sc := &treesched.Scenario{
		Topology: treesched.NewSpec("fattree", 2, 2, 2),
		Workload: treesched.ScenarioWorkload{
			N: 2000, Size: treesched.NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.9,
		},
		Assigner: "greedy-identical",
		Seed:     1,
	}
	in, err := sc.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := in.Run()
	if err != nil {
		log.Fatal(err)
	}

	// Two baselines on the same trace: proximity-based assignment (the
	// natural-looking policy Section 3.1 explains must fail under
	// congestion) and oblivious round robin (hard to beat on a
	// perfectly symmetric tree with smooth arrivals — greedy's
	// guarantee is that it never collapses, not that it wins every
	// benign instance).
	run := func(assigner string) *treesched.Result {
		alt := *sc
		alt.Assigner = assigner
		r, err := treesched.RunScenario(&alt)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}
	closest := run("closest")
	rr := run("roundrobin")

	lb := treesched.OPTLowerBound(in.Base, in.Trace)
	fmt.Printf("jobs:                  %d\n", len(in.Trace.Jobs))
	fmt.Printf("greedy avg flow time:  %.2f\n", res.AvgFlow())
	fmt.Printf("closest-leaf avg flow: %.2f  (%.1fx worse)\n", closest.AvgFlow(), closest.AvgFlow()/res.AvgFlow())
	fmt.Printf("round-robin avg flow:  %.2f\n", rr.AvgFlow())
	fmt.Printf("OPT lower bound:       %.2f/job\n", lb/float64(len(in.Trace.Jobs)))
	fmt.Printf("competitive ratio <=   %.3f (vs speed-1 OPT)\n", res.Stats.TotalFlow/lb)
	fmt.Printf("max flow time:         %.2f (greedy) vs %.2f (closest)\n",
		res.Stats.MaxFlow, closest.Stats.MaxFlow)
}
