// Certificates: the paper's dual-fitting analysis, executed. The
// Section 3.5 dual variables are constructed inside a live run of the
// greedy algorithm on a broomstick; if the LP-Dual constraints all
// hold (they are checked at event granularity), weak duality turns
// the run itself into a machine-checked certificate: a lower bound on
// the optimal total flow time of this very instance, and hence an
// upper bound on the algorithm's competitive ratio on it.
//
// The instances come from a declarative workload spec — the same
// generator scenario files use — fed to the dual-fitting harness.
//
//	go run ./examples/certificates
package main

import (
	"fmt"
	"log"

	"treesched"
)

func main() {
	// The structure the analysis targets: a broomstick (per-branch
	// handle of routers with machines hanging off it).
	stick := treesched.BroomstickTree(2, 4, 2)

	fmt.Println("dual-fitting certificates on a 2-branch broomstick, 1000 jobs each:")
	fmt.Printf("%-6s %-10s %-10s %-12s %-14s %-10s\n",
		"eps", "C4 viol", "C5 viol", "frac cost", "certified LB", "ratio<=")
	for _, eps := range []float64{0.1, 0.25, 0.5} {
		w := treesched.ScenarioWorkload{
			N: 1000, Size: treesched.NewSpec("uniform", 1, 16), ClassEps: eps,
			Load: 0.9, Capacity: float64(len(stick.RootAdjacent())),
		}
		trace, err := w.Generate(101)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := treesched.RunDualFit(stick, trace, eps)
		if err != nil {
			log.Fatal(err)
		}
		ratio := 0.0
		if rep.CertifiedOPTLowerBound > 0 {
			ratio = rep.FracCost / rep.CertifiedOPTLowerBound
		}
		fmt.Printf("%-6g %-10d %-10d %-12.4g %-14.4g %-10.3f\n",
			eps, rep.C4Violations, rep.C5Violations, rep.FracCost, rep.CertifiedOPTLowerBound, ratio)
	}
	fmt.Println("\nzero violations = the dual is feasible, so by weak duality")
	fmt.Println("OPT >= dual/3 on this instance — the analysis of Theorem 5,")
	fmt.Println("re-run as an executable per-instance proof.")
}
