// Packetrouting: the paper's second application — packets originating
// at a data collection site must be forwarded through a line of
// routers to a processing machine (the model of Antoniadis et al. that
// the related work discusses, and the store-and-forward semantics of
// Section 2). The example contrasts whole-job store-and-forward with
// the unit-packet pipelining the paper says negates interior
// congestion, and renders the schedule.
//
// Both halves are declarative scenarios: the first pair differs only
// in the engine's packetized flag, and the zoomed-in instance is an
// inline-jobs scenario (the JSON-only form).
//
//	go run ./examples/packetrouting
package main

import (
	"fmt"
	"log"

	"treesched"
	"treesched/internal/trace"
)

func main() {
	// A 5-router line ending in one machine: the bus/collection-site
	// topology, 400 messages at 60% of the line's capacity.
	sc := &treesched.Scenario{
		Topology: treesched.NewSpec("line", 5),
		Workload: treesched.ScenarioWorkload{
			N: 400, Size: treesched.NewSpec("uniform", 2, 12), Load: 0.6,
		},
		Assigner: "closest",
		Seed:     11,
	}
	sf, err := treesched.RunScenario(sc)
	if err != nil {
		log.Fatal(err)
	}
	scPk := *sc
	scPk.Engine.Packetized = true
	pk, err := treesched.RunScenario(&scPk)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("line network, 400 messages, load 0.6\n")
	fmt.Printf("store-and-forward avg flow: %.2f\n", sf.AvgFlow())
	fmt.Printf("packet-pipelined avg flow:  %.2f\n", pk.AvgFlow())
	fmt.Printf("pipelining speedup:         %.2fx\n", sf.AvgFlow()/pk.AvgFlow())

	// Zoom in: a tiny deterministic instance with a visible schedule,
	// expressed as an inline-jobs scenario.
	small := &treesched.Scenario{
		Topology: treesched.NewSpec("line", 2),
		Workload: treesched.ScenarioWorkload{Jobs: []treesched.Job{
			{ID: 0, Release: 0, Size: 4},
			{ID: 1, Release: 1, Size: 2},
			{ID: 2, Release: 2, Size: 1},
		}},
		Assigner: "closest",
		Engine:   treesched.ScenarioEngine{Instrument: true},
	}
	res, err := treesched.RunScenario(small)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSJF store-and-forward schedule of 3 messages on a 2-router line:")
	fmt.Print(trace.Gantt(res, 80))
	fmt.Println("(note the small messages overtaking the size-4 message at every hop)")
}
