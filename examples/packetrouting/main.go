// Packetrouting: the paper's second application — packets originating
// at a data collection site must be forwarded through a line of
// routers to a processing machine (the model of Antoniadis et al. that
// the related work discusses, and the store-and-forward semantics of
// Section 2). The example contrasts whole-job store-and-forward with
// the unit-packet pipelining the paper says negates interior
// congestion, and renders the schedule.
//
//	go run ./examples/packetrouting
package main

import (
	"fmt"
	"log"

	"treesched"
	"treesched/internal/rng"
	"treesched/internal/trace"
	"treesched/internal/workload"
)

func main() {
	// A 5-router line ending in one machine: the bus/collection-site
	// topology.
	line := treesched.Line(5)

	gen := func() *treesched.Trace {
		tr, err := workload.Poisson(rng.New(11), workload.GenConfig{
			N:        400,
			Size:     treesched.UniformSize{Lo: 2, Hi: 12},
			Load:     0.6,
			Capacity: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		return tr
	}

	sf, err := treesched.Run(line, gen(), treesched.ClosestLeaf{}, treesched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	pk, err := treesched.RunPacketized(line, gen(), treesched.ClosestLeaf{}, treesched.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("line network, 400 messages, load 0.6\n")
	fmt.Printf("store-and-forward avg flow: %.2f\n", sf.AvgFlow())
	fmt.Printf("packet-pipelined avg flow:  %.2f\n", pk.AvgFlow())
	fmt.Printf("pipelining speedup:         %.2fx\n", sf.AvgFlow()/pk.AvgFlow())

	// Zoom in: a tiny deterministic instance with a visible schedule.
	small := treesched.Line(2)
	jobs := &treesched.Trace{Jobs: []treesched.Job{
		{ID: 0, Release: 0, Size: 4},
		{ID: 1, Release: 1, Size: 2},
		{ID: 2, Release: 2, Size: 1},
	}}
	res, err := treesched.Run(small, jobs, treesched.ClosestLeaf{}, treesched.Options{Instrument: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSJF store-and-forward schedule of 3 messages on a 2-router line:")
	fmt.Print(trace.Gantt(res, 80))
	fmt.Println("(note the small messages overtaking the size-4 message at every hop)")
}
