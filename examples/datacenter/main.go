// Datacenter: the scenario the paper's introduction motivates — a
// MapReduce-style cluster where moving job data through the network
// is the bottleneck. Machines sit under a fat-tree fabric; the
// workload mixes mice (small queries) and elephants (large analytics
// jobs). The example sweeps load and shows how each assignment policy
// degrades, plus where the fabric saturates.
//
// Every cell is the same declarative Scenario with one knob turned:
// the assigner name, the load, or the uniform speed.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"os"

	"treesched"
	"treesched/internal/metrics"
	"treesched/internal/table"
)

func main() {
	// 3-ary fabric, 2 aggregation levels, 3 machines per rack (40
	// nodes, 27 machines); elephants and mice: 95% small transfers, 5%
	// hundred-unit jobs.
	cell := func(assigner string, load float64) *treesched.Scenario {
		return &treesched.Scenario{
			Topology: treesched.NewSpec("fattree", 3, 2, 3),
			Workload: treesched.ScenarioWorkload{
				N: 3000, Size: treesched.NewSpec("bimodal", 1, 100, 0.05), Load: load,
			},
			Assigner: assigner,
			Seed:     7,
		}
	}

	rules := []struct{ label, assigner string }{
		{"greedy (paper)", "greedy-identical"},
		{"closest leaf", "closest"},
		{"round robin", "roundrobin"},
		{"least volume", "leastvolume"},
	}
	tb := table.New("Average flow time by offered load (3-ary fabric, elephants & mice)",
		"assigner", "load 0.4", "load 0.7", "load 0.9")
	loads := []float64{0.4, 0.7, 0.9}
	for _, rule := range rules {
		row := []interface{}{rule.label}
		for _, load := range loads {
			res, err := treesched.RunScenario(cell(rule.assigner, load))
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, res.AvgFlow())
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.Text())

	// Where does the fabric saturate? Show the bottleneck at high load.
	// Observers are code, not data, so they attach to the built
	// instance rather than the scenario.
	in, err := cell("greedy-identical", 0.9).Build()
	if err != nil {
		log.Fatal(err)
	}
	qs := metrics.NewQueueSampler()
	in.Opts.Observer = qs.Observe
	res, err := in.Run()
	if err != nil {
		log.Fatal(err)
	}
	b := metrics.Bottleneck(res)
	hot := qs.Hottest()
	fmt.Printf("\nbottleneck under greedy at load 0.9: node %d at %.1f%% busy\n", b.Node, 100*b.Busy)
	fmt.Printf("hottest queue: node %d averaging %.1f jobs (max %d)\n", hot.Node, hot.Avg, hot.Max)
	fmt.Printf("flow-time distribution: %s\n", metrics.FlowSummary(res))

	// How much does upgrading the fabric (resource augmentation) buy?
	fmt.Println("\nspeed-upgrade sweep (greedy):")
	for _, s := range []float64{1.0, 1.25, 1.5, 2.0} {
		sc := cell("greedy-identical", 0.9)
		sc.Speed = treesched.ScenarioSpeed{Uniform: s}
		res, err := treesched.RunScenario(sc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  speed %.2fx -> avg flow %.2f\n", s, res.AvgFlow())
	}
	os.Exit(0)
}
