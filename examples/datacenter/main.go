// Datacenter: the scenario the paper's introduction motivates — a
// MapReduce-style cluster where moving job data through the network
// is the bottleneck. Machines sit under a fat-tree fabric; the
// workload mixes mice (small queries) and elephants (large analytics
// jobs). The example sweeps load and shows how each assignment policy
// degrades, plus where the fabric saturates.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"os"

	"treesched"
	"treesched/internal/metrics"
	"treesched/internal/rng"
	"treesched/internal/table"
	"treesched/internal/workload"
)

func main() {
	// 3-ary fabric, 2 aggregation levels, 3 machines per rack: 40
	// nodes, 27 machines.
	fabric := treesched.FatTree(3, 2, 3)

	// Elephants and mice: 95% small transfers, 5% hundred-unit jobs.
	sizes := treesched.BimodalSize{Small: 1, Big: 100, PBig: 0.05}

	assigners := map[string]func() treesched.Assigner{
		"greedy (paper)": func() treesched.Assigner { return treesched.NewGreedyIdentical(0.5) },
		"closest leaf":   func() treesched.Assigner { return treesched.ClosestLeaf{} },
		"round robin":    func() treesched.Assigner { return &treesched.RoundRobin{} },
		"least volume":   func() treesched.Assigner { return treesched.LeastVolume{} },
	}
	order := []string{"greedy (paper)", "closest leaf", "round robin", "least volume"}

	tb := table.New("Average flow time by offered load (3-ary fabric, elephants & mice)",
		"assigner", "load 0.4", "load 0.7", "load 0.9")
	loads := []float64{0.4, 0.7, 0.9}
	for _, name := range order {
		row := []interface{}{name}
		for _, load := range loads {
			trace, err := workload.Poisson(rng.New(7), workload.GenConfig{
				N: 3000, Size: sizes, Load: load,
				Capacity: float64(len(fabric.RootAdjacent())),
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := treesched.Run(fabric, trace, assigners[name](), treesched.Options{})
			if err != nil {
				log.Fatal(err)
			}
			row = append(row, res.AvgFlow())
		}
		tb.AddRow(row...)
	}
	fmt.Print(tb.Text())

	// Where does the fabric saturate? Show the bottleneck at high load.
	trace, err := workload.Poisson(rng.New(7), workload.GenConfig{
		N: 3000, Size: sizes, Load: 0.9,
		Capacity: float64(len(fabric.RootAdjacent())),
	})
	if err != nil {
		log.Fatal(err)
	}
	qs := metrics.NewQueueSampler()
	res, err := treesched.Run(fabric, trace, treesched.NewGreedyIdentical(0.5), treesched.Options{Observer: qs.Observe})
	if err != nil {
		log.Fatal(err)
	}
	b := metrics.Bottleneck(res)
	hot := qs.Hottest()
	fmt.Printf("\nbottleneck under greedy at load 0.9: node %d at %.1f%% busy\n", b.Node, 100*b.Busy)
	fmt.Printf("hottest queue: node %d averaging %.1f jobs (max %d)\n", hot.Node, hot.Avg, hot.Max)
	fmt.Printf("flow-time distribution: %s\n", metrics.FlowSummary(res))

	// How much does upgrading the fabric (resource augmentation) buy?
	fmt.Println("\nspeed-upgrade sweep (greedy):")
	for _, s := range []float64{1.0, 1.25, 1.5, 2.0} {
		res, err := treesched.Run(fabric.WithUniformSpeed(s), trace, treesched.NewGreedyIdentical(0.5), treesched.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  speed %.2fx -> avg flow %.2f\n", s, res.AvgFlow())
	}
	os.Exit(0)
}
