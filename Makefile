# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short test-race bench bench-json ci experiments examples clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the persistent benchmark record (see DESIGN.md §6).
bench-json:
	$(GO) run ./cmd/bench -out BENCH_2.json

# Everything CI needs: build, vet, race-clean short tests, and a smoke
# run of the benchmark harness (fast benchtime, throwaway output).
ci: build vet test-race
	$(GO) run ./cmd/bench -quick -out /tmp/BENCH_ci.json

# Regenerate EXPERIMENTS.md (sequential so B4 throughput is clean).
experiments:
	$(GO) run ./cmd/experiments -format md -out EXPERIMENTS.md -parallel 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/packetrouting
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/certificates

clean:
	$(GO) clean ./...
