# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate EXPERIMENTS.md (sequential so B4 throughput is clean).
experiments:
	$(GO) run ./cmd/experiments -format md -out EXPERIMENTS.md -parallel 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/packetrouting
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/certificates

clean:
	$(GO) clean ./...
