# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short test-race test-race-parallel bench bench-json bench-compare bench-dispatch stream-smoke fleet-smoke serve-smoke fuzz-smoke ci experiments examples clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race -short ./...

# Deep race stress for the parallel engine paths (sharded advance,
# parallel querying dispatch, sub-shard splitting, streaming): force 4
# scheduler threads so the worker pool really interleaves, even on
# boxes where GOMAXPROCS would default lower.
test-race-parallel:
	GOMAXPROCS=4 $(GO) test -race -count=1 \
		-run 'Shard|Split|Stream|Parallel|FStat' ./internal/sim ./internal/scenario

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the persistent benchmark record (see DESIGN.md §6).
bench-json:
	$(GO) run ./cmd/bench -out BENCH_9.json

# Rerun the kernels and fail (exit 3) if any regressed >25% vs the
# checked-in record.
bench-compare:
	$(GO) run ./cmd/bench -out /tmp/BENCH_compare.json -compare BENCH_9.json

# Iterate on the dispatch fast path: run only the engine/dispatch-*
# kernels and drop a CPU profile next to the repo for
# `go tool pprof ./dispatch.prof`.
bench-dispatch:
	$(GO) run ./cmd/bench -dispatch -cpuprofile dispatch.prof

# Assert the constant-memory streaming property: a 1M-job bounded-
# retention run must keep its peak heap under a fixed ceiling and flat
# (within 2x) vs a 100k-job run. Exit 4 on failure.
stream-smoke:
	$(GO) run ./cmd/bench -stream-smoke

# Assert fleet determinism: the same simulation key must produce a
# byte-identical scorecard and per-tree NDJSON at Workers=1 and
# Workers=4. Exit 5 on failure.
fleet-smoke:
	$(GO) run ./cmd/bench -fleet-smoke

# Assert the serving-layer overload contract: under 5x overload the
# daemon must shed with 429 + Retry-After, keep the heap bounded,
# reopen after a quiet period, and drain byte-identically to an
# offline replay of the accepted trace — and the warm clean path must
# stay under the per-admitted-job malloc ceiling. Exit 6 on failure.
serve-smoke:
	$(GO) run ./cmd/bench -serve-smoke

# Short fuzz pass over every fuzz target (~10s each); corpus seeds
# alone run on plain `go test`, this digs a little deeper.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz=FuzzCompactRoundTrip -fuzztime=10s ./internal/scenario
	$(GO) test -run=^$$ -fuzz=FuzzScenarioJSON -fuzztime=10s ./internal/scenario
	$(GO) test -run=^$$ -fuzz=FuzzRoundToClass -fuzztime=10s ./internal/workload
	$(GO) test -run=^$$ -fuzz=FuzzTraceValidate -fuzztime=10s ./internal/workload
	$(GO) test -run=^$$ -fuzz=FuzzJobDecode -fuzztime=10s ./internal/workload
	$(GO) test -run=^$$ -fuzz=FuzzJobEncode -fuzztime=10s ./internal/workload
	$(GO) test -run=^$$ -fuzz=FuzzMetricsEncode -fuzztime=10s ./internal/sim

# Everything CI needs: build, vet, race-clean short tests, a smoke
# run of the benchmark harness (fast benchtime, throwaway output), and
# the constant-memory streaming, fleet determinism and serving-layer
# overload checks.
ci: build vet test-race test-race-parallel stream-smoke fleet-smoke serve-smoke
	$(GO) run ./cmd/bench -quick -out /tmp/BENCH_ci.json

# Regenerate EXPERIMENTS.md (sequential so B4 throughput is clean).
experiments:
	$(GO) run ./cmd/experiments -format md -out EXPERIMENTS.md -parallel 1

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/datacenter
	$(GO) run ./examples/packetrouting
	$(GO) run ./examples/heterogeneous
	$(GO) run ./examples/certificates

clean:
	$(GO) clean ./...
