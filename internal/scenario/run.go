package scenario

import (
	"fmt"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// Instance is a built scenario: the concrete objects a Scenario's
// specs resolve to. Base is the generated topology at speed 1 (lower
// bounds are computed against it); Tree carries the speed profile the
// engine runs with.
type Instance struct {
	Scenario *Scenario
	Base     *tree.Tree
	Tree     *tree.Tree
	Trace    *workload.Trace
	Assigner sim.Assigner
	// FaultPlan is the resolved fault plan (nil without faults). Its
	// compiled form is already installed in Opts.Faults.
	FaultPlan *faults.Plan
	// Opts is ready for sim.Run/New. Callers may attach the
	// non-serializable options (Observer, SelfCheck, Sink) before
	// running.
	Opts sim.Options

	// workload is the resolved workload copy (topology-derived
	// defaults filled in), kept so NewSource can stream lazily
	// generated scenarios: those leave Trace nil and draw jobs on
	// demand.
	workload Workload
}

// Build resolves every spec in the scenario against the registries
// and generates the trace. It does not run anything.
func (sc *Scenario) Build() (*Instance, error) {
	if sc.Fleet != nil {
		return nil, fmt.Errorf("scenario: fleet scenarios are run through the fleet layer (fleet.Run or treesched -fleet)")
	}
	if sc.Topology.Name == "" {
		return nil, fmt.Errorf("scenario: topology is required")
	}
	base, err := BuildTopo(sc.Topology)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	t := base
	sp := sc.Speed
	uniform := sp.Uniform != 0
	triple := sp.RootAdjacent != 0 || sp.Router != 0 || sp.Leaf != 0
	switch {
	case uniform && triple:
		return nil, fmt.Errorf("scenario: speed.uniform and the per-level speed triple are mutually exclusive")
	case uniform:
		t = base.WithUniformSpeed(sp.Uniform)
	case triple:
		t = base.WithSpeeds(sp.RootAdjacent, sp.Router, sp.Leaf)
	}

	// Resolve topology-derived workload defaults on a copy so the
	// scenario value itself stays as written.
	w := sc.Workload
	if w.Capacity == 0 {
		w.Capacity = float64(len(base.RootAdjacent()))
	}
	if w.Unrelated != nil && w.Unrelated.Leaves == 0 {
		u := *w.Unrelated
		u.Leaves = len(base.Leaves())
		w.Unrelated = &u
	}
	if sc.Engine.RetainJobs < 0 {
		return nil, fmt.Errorf("scenario: engine.retain_jobs must be >= 0, got %d", sc.Engine.RetainJobs)
	}
	if sc.Engine.Packetized && (sc.Engine.Stream || sc.Engine.RetainJobs > 0 || sc.Engine.Serve) {
		return nil, fmt.Errorf("scenario: packetized runs do not support streaming")
	}
	if sc.Engine.Serve {
		// A serve scenario carries no workload of its own: jobs arrive
		// online through the daemon's admission queue, so any inline
		// workload here would be silently ignored — reject it instead.
		if w.N != 0 || len(w.Jobs) > 0 {
			return nil, fmt.Errorf("scenario: serve scenarios take their workload from the daemon, not the scenario (drop n/jobs)")
		}
		if sc.Faults != nil && sc.Faults.Plan.Name != "" {
			return nil, fmt.Errorf("scenario: serve scenarios cannot use plan-based faults (plans are scaled to a trace span that does not exist online; list faults.events explicitly)")
		}
	}
	// One rng partition per scenario. In the default legacy mode the
	// partition is a single shared stream: workload generation draws
	// first, fault-plan generation after, so fault-free scenarios keep
	// their historical traces bit for bit (the exact order is pinned by
	// TestLegacyDrawOrder; see DESIGN.md). In keyed mode each
	// subsystem draws from its own Seed-derived stream, so e.g. adding
	// a fault plan cannot move a single workload draw. Lazily
	// streamable scenarios skip materialization entirely — NewSource
	// rebuilds an identical fresh partition at run time (fault plans
	// need the trace's span and force materialization; explicit fault
	// events do not).
	p, err := sc.NewPartition()
	if err != nil {
		return nil, err
	}
	var tr *workload.Trace
	if !sc.Engine.Serve && !sc.lazyStreamable(&w) {
		tr, err = w.GenerateRNG(p)
		if err != nil {
			return nil, fmt.Errorf("scenario: workload: %w", err)
		}
	}

	pol, err := ParsePolicy(sc.EffPolicy())
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	in := &Instance{
		Scenario: sc,
		Base:     base,
		Tree:     t,
		Trace:    tr,
		Opts: sim.Options{
			Policy:       pol,
			Instrument:   sc.Engine.Instrument,
			UseScanQueue: sc.Engine.ScanQueue,
			RecordSlices: sc.Engine.RecordSlices,
			Workers:      sc.Engine.Shards,
			SplitShards:  sc.Engine.Split,
			RetainJobs:   sc.Engine.RetainJobs,
		},
		workload: w,
	}
	if sc.Faults != nil {
		if err := applyFaults(in, p.Stream("faults")); err != nil {
			return nil, err
		}
	}
	if in.Assigner, err = in.NewAssigner(); err != nil {
		return nil, err
	}
	return in, nil
}

// applyFaults resolves the scenario's fault spec into a compiled
// schedule on in.Opts. The plan generator draws from r — in legacy
// mode the shared scenario stream, positioned right after workload
// generation; in keyed mode the dedicated "faults" stream.
func applyFaults(in *Instance, r *rng.Rand) error {
	fs := in.Scenario.Faults
	switch {
	case fs.Plan.Name != "" && len(fs.Events) > 0:
		return fmt.Errorf("scenario: faults.plan and faults.events are mutually exclusive")
	case fs.Plan.Name != "":
		p, err := BuildFaultPlan(fs.Plan, r, in.Tree, in.Trace.Span())
		if err != nil {
			return fmt.Errorf("scenario: %w", err)
		}
		in.FaultPlan = p
	case len(fs.Events) > 0:
		in.FaultPlan = &faults.Plan{Events: append([]faults.Event(nil), fs.Events...)}
	default:
		return fmt.Errorf("scenario: faults needs a plan or events")
	}
	switch fs.Recovery {
	case "", "hold":
		in.Opts.Recovery = sim.RecoverHold
	case "redispatch":
		in.Opts.Recovery = sim.RecoverRedispatch
	default:
		return fmt.Errorf("scenario: unknown faults.recovery %q (want hold|redispatch)", fs.Recovery)
	}
	sched, err := faults.Compile(in.Tree, in.FaultPlan)
	if err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	in.Opts.Faults = sched
	return nil
}

// NewAssigner builds a fresh copy of the scenario's assigner (useful
// because several baselines are stateful: random, roundrobin, shadow).
func (in *Instance) NewAssigner() (sim.Assigner, error) {
	sc := in.Scenario
	asg, err := ParseAssigner(sc.EffAssigner(), AssignerContext{
		Tree:      in.Tree,
		Eps:       sc.EffEps(),
		Unrelated: sc.Workload.unrelated(),
		Seed:      sc.EffAssignerSeed(),
	})
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return asg, nil
}

// Run executes the built instance (packetized, streaming, or
// store-and-forward per the scenario's engine options) on a fresh
// engine.
func (in *Instance) Run() (*sim.Result, error) {
	if in.Scenario.Engine.Serve {
		return nil, fmt.Errorf("scenario: serve scenarios are run through the serving layer (server.New or treeschedd)")
	}
	if in.Scenario.Engine.Packetized {
		return sim.RunPacketized(in.Tree, in.Trace, in.Assigner, in.Opts)
	}
	if in.Scenario.Engine.Stream {
		return in.runStream(nil, in.Assigner)
	}
	return sim.Run(in.Tree, in.Trace, in.Assigner, in.Opts)
}

// Run builds and executes a scenario: the one-call entry point.
func Run(sc *Scenario) (*sim.Result, error) {
	in, err := sc.Build()
	if err != nil {
		return nil, err
	}
	return in.Run()
}

// Runner executes one scenario repeatedly on a single warm engine
// (sim.New once, then Reset + RunOn per call): the steady-state path
// for sweeps, benchmarks and services.
type Runner struct {
	Instance *Instance
	s        *sim.Sim
	ran      bool
}

// NewRunner builds the scenario and its engine. Packetized scenarios
// have no warm path (RunPacketized constructs its own engine); use
// Run for those.
func NewRunner(sc *Scenario) (*Runner, error) {
	if sc.Engine.Packetized {
		return nil, fmt.Errorf("scenario: packetized runs have no warm path (use scenario.Run)")
	}
	if sc.Engine.Serve {
		return nil, fmt.Errorf("scenario: serve scenarios are run through the serving layer (server.New or treeschedd)")
	}
	in, err := sc.Build()
	if err != nil {
		return nil, err
	}
	return &Runner{Instance: in, s: sim.New(in.Tree, in.Opts)}, nil
}

// Sim exposes the warm engine (instrumentation readers).
func (r *Runner) Sim() *sim.Sim { return r.s }

func (r *Runner) reset() {
	if r.ran {
		r.s.Reset(r.Instance.Opts)
	}
	r.ran = true
}

// Run replays the scenario on the warm engine and collects results.
// The assigner is rebuilt each call, so stateful rules (random,
// roundrobin, shadow) start fresh and every call reproduces a cold
// sim.Run bit for bit.
func (r *Runner) Run() (*sim.Result, error) {
	asg, err := r.Instance.NewAssigner()
	if err != nil {
		return nil, err
	}
	r.reset()
	if r.Instance.Scenario.Engine.Stream {
		return r.Instance.runStream(r.s, asg)
	}
	return sim.RunOn(r.s, r.Instance.Trace, asg)
}

// Replay drives the warm inject→drain cycle without collecting
// per-job metrics. With a stateless assigner the steady-state cycle
// performs zero allocations (pinned by TestScenarioSteadyStateAllocs
// and the scenario/run bench kernel); it reuses Instance.Assigner, so
// stateful assigners carry their state across calls.
func (r *Runner) Replay() error {
	r.reset()
	if r.Instance.Scenario.Engine.Stream {
		src, err := r.Instance.NewSource()
		if err != nil {
			return err
		}
		_, err = sim.ReplayStreamOn(r.s, src, r.Instance.Assigner)
		return err
	}
	return sim.ReplayOn(r.s, r.Instance.Trace, r.Instance.Assigner)
}
