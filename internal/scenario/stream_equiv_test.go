package scenario

import (
	"fmt"
	"reflect"
	"testing"

	"treesched/internal/sim"
)

// TestStreamedScenarioEquivalence is the property test for the
// streaming pipeline: across randomized scenarios (topology × process
// × policy × assigner × fault plan × shard count × seed) a streamed
// run under full retention must reproduce the materialized run bit
// for bit — per-job metrics, summary stats, slice logs, and error
// strings for runs that legitimately fail. Streamable workloads
// exercise the lazy generator sources; fault plans and weighted
// workloads exercise the materialize-and-wrap fallback.
func TestStreamedScenarioEquivalence(t *testing.T) {
	topos := []string{"fattree:4,1,2", "fattree:2,2,2", "star:8", "caterpillar:4,2", "broomstick:6,2,2", "random:4,3,3"}
	processes := []string{"", "process=bursty:4", "process=adversarial:32"}
	policies := []string{"sjf", "fifo", "srpt", "ps", "lcfs", "wsjf"}
	assigners := []string{"greedy", "roundrobin", "random", "closest", "leastvolume", "minpath", "jsq"}
	extras := []string{"", "", "class=0.5", "round=0.5"}
	faultSpecs := []string{"", "", "", "faults=outages:3,6", "faults=brownouts:3,6,0.5",
		"faults=leafloss:1,0.6 recovery=redispatch", "faults=leafloss:1,0.6 recovery=hold"}

	for i := 0; i < 60; i++ {
		pick := func(xs []string) string { return xs[(i*7+len(xs)*3+i*i)%len(xs)] }
		pol := policies[i%len(policies)]
		line := fmt.Sprintf("topo=%s n=120 size=uniform:1,16 load=0.85 policy=%s assigner=%s seed=%d",
			topos[i%len(topos)], pol, assigners[i%len(assigners)], i+1)
		if p := processes[i%len(processes)]; p != "" {
			line += " " + p
		}
		if ex := pick(extras); ex != "" {
			line += " " + ex
		}
		if fs := faultSpecs[i%len(faultSpecs)]; fs != "" {
			line += " " + fs
		}
		if pol == "wsjf" {
			line += " maxweight=4"
		}
		if pol != "ps" {
			line += " slices"
		}
		if i%3 == 1 {
			line += " shards=4"
		}
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			sc, err := ParseCompact(line)
			if err != nil {
				t.Fatalf("%s: %v", line, err)
			}
			matRes, matErr, matSlices := runStreamMode(t, sc, false)
			strRes, strErr, strSlices := runStreamMode(t, sc, true)
			switch {
			case matErr != nil || strErr != nil:
				if matErr == nil || strErr == nil || matErr.Error() != strErr.Error() {
					t.Fatalf("%s:\n  materialized err %v\n  streamed err %v", line, matErr, strErr)
				}
			case !reflect.DeepEqual(matRes.Jobs, strRes.Jobs):
				t.Fatalf("%s: per-job metrics diverge", line)
			case matRes.Stats != strRes.Stats:
				t.Fatalf("%s:\n  materialized %+v\n  streamed %+v", line, matRes.Stats, strRes.Stats)
			case !reflect.DeepEqual(matSlices, strSlices):
				t.Fatalf("%s: slice logs diverge (%d vs %d)", line, len(matSlices), len(strSlices))
			}
		})
	}
}

// runStreamMode runs sc once warm (Reset + rerun) with Engine.Stream
// set as given and returns the second run's outcome, so the warm
// streaming path (Runner.Run → runStream) is exercised too.
func runStreamMode(t *testing.T, sc *Scenario, stream bool) (res *sim.Result, err error, slices []sim.Slice) {
	t.Helper()
	c := *sc
	c.Engine.Stream = stream
	r, buildErr := NewRunner(&c)
	if buildErr != nil {
		t.Fatalf("build: %v", buildErr)
	}
	res1, runErr := r.Run()
	res2, runErr2 := r.Run()
	if (runErr == nil) != (runErr2 == nil) {
		t.Fatalf("warm rerun changed outcome: %v vs %v", runErr, runErr2)
	}
	if runErr2 != nil {
		return nil, runErr2, nil
	}
	if !reflect.DeepEqual(res1.Jobs, res2.Jobs) || res1.Stats != res2.Stats {
		t.Fatalf("warm rerun (stream=%v) is not reproducible", stream)
	}
	if c.Engine.RecordSlices {
		slices = append(slices, r.Sim().Slices()...)
	}
	return res2, nil, slices
}

// TestLazyStreamSkipsMaterialization pins the constant-memory
// property at the Build level: a streamable scenario with
// engine.stream leaves Instance.Trace nil (jobs are drawn on demand),
// while a fault plan — which needs the trace's span — forces
// materialization even in stream mode.
func TestLazyStreamSkipsMaterialization(t *testing.T) {
	sc, err := ParseCompact("topo=fattree:2,2,2 n=50 size=uniform:1,16 load=0.9 seed=3 stream")
	if err != nil {
		t.Fatal(err)
	}
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in.Trace != nil {
		t.Fatalf("streamable scenario materialized a %d-job trace", len(in.Trace.Jobs))
	}
	res, err := in.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 50 {
		t.Fatalf("streamed run completed %d jobs, want 50", len(res.Jobs))
	}

	sc2, err := ParseCompact("topo=fattree:2,2,2 n=50 size=uniform:1,16 load=0.9 seed=3 stream faults=outages:2,6")
	if err != nil {
		t.Fatal(err)
	}
	in2, err := sc2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in2.Trace == nil {
		t.Fatal("fault plan requires the trace span; Build should have materialized")
	}
}

// TestCompactStreamRoundTrip pins the compact form of the streaming
// engine options.
func TestCompactStreamRoundTrip(t *testing.T) {
	line := "topo=star:4 n=10 size=uniform:1,4 load=0.5 seed=1 retain=10 stream"
	sc, err := ParseCompact(line)
	if err != nil {
		t.Fatal(err)
	}
	if !sc.Engine.Stream || sc.Engine.RetainJobs != 10 {
		t.Fatalf("parsed engine %+v, want stream + retain=10", sc.Engine)
	}
	out, err := sc.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if out != line {
		t.Fatalf("round trip:\n  in  %s\n  out %s", line, out)
	}
}
