// Streaming scenario support: deciding when a workload can be
// generated one job at a time, building the ArrivalSource, and the
// stream-aware run paths of Instance and Runner. The invariant
// throughout: a source draws from a fresh partition of the
// scenario's seed in exactly the order GenerateRNG would (in legacy
// mode, the historical single rng.New(Seed) stream), so streamed and
// materialized runs are bit-identical.
package scenario

import (
	"fmt"

	"treesched/internal/rng"
	"treesched/internal/sim"
	"treesched/internal/workload"
)

// Streamable reports whether the workload can be generated one job
// at a time. The unrelated transform and weight assignment draw rng
// in whole-trace passes after generation (interleaving their draws
// per job would change the stream), and inline Jobs are already
// materialized — those fall back to generating the trace and
// wrapping it in a TraceSource, which is equally bit-identical but
// not constant-memory.
func (w *Workload) Streamable() bool {
	return len(w.Jobs) == 0 && w.Unrelated == nil && w.MaxWeight == 0
}

// SourceFrom returns an ArrivalSource for the workload drawing from
// r under the legacy single-stream discipline. Topology-derived
// defaults (Capacity, Unrelated.Leaves) must be resolved, exactly as
// for GenerateFrom. Non-streamable workloads materialize internally;
// either way the rng draws and the yielded jobs match GenerateFrom
// bit for bit.
func (w *Workload) SourceFrom(r *rng.Rand) (workload.ArrivalSource, error) {
	return w.SourceRNG(rng.LegacyFrom(r))
}

// SourceRNG is SourceFrom over a partition: arrivals draw from the
// "workload" stream and sizes from "sizes", matching GenerateRNG
// draw for draw (in legacy mode both names alias one stream, which
// is exactly the historical order).
func (w *Workload) SourceRNG(p *rng.PartitionedRNG) (workload.ArrivalSource, error) {
	if !w.Streamable() {
		tr, err := w.GenerateRNG(p)
		if err != nil {
			return nil, err
		}
		return workload.NewTraceSource(tr), nil
	}
	var size workload.SizeDist
	if w.Size.Name != "" {
		var err error
		size, err = BuildSize(w.Size)
		if err != nil {
			return nil, err
		}
		if w.ClassEps > 0 {
			size = workload.ClassRounded{Base: size, Eps: w.ClassEps}
		}
	}
	src, err := buildProcessSource(w.Process, p.Stream("workload"), workload.GenConfig{
		N: w.N, Size: size, Load: w.Load, Capacity: w.Capacity,
		SizeRand: p.Stream("sizes"),
	})
	if err != nil {
		return nil, err
	}
	if len(w.RelatedSpeeds) > 0 {
		if src, err = workload.NewRelatedSource(src, w.RelatedSpeeds); err != nil {
			return nil, err
		}
	}
	if w.RoundEps > 0 {
		src = workload.NewClassRoundSource(src, w.RoundEps)
	}
	return src, nil
}

// lazyStreamable reports whether Build may skip materializing the
// trace entirely: the scenario streams, the workload admits it, and
// no fault plan needs the trace's span (explicit fault events are
// fine — they draw nothing and know their own times).
func (sc *Scenario) lazyStreamable(w *Workload) bool {
	return sc.Engine.Stream && w.Streamable() &&
		(sc.Faults == nil || sc.Faults.Plan.Name == "")
}

// NewSource returns a fresh ArrivalSource for the instance's
// workload. With a materialized trace it is a TraceSource wrapping
// it; otherwise generation streams from a fresh partition built the
// same way Build builds its own, so every call yields the identical
// job sequence.
func (in *Instance) NewSource() (workload.ArrivalSource, error) {
	if in.Trace != nil {
		return workload.NewTraceSource(in.Trace), nil
	}
	p, err := in.Scenario.NewPartition()
	if err != nil {
		return nil, err
	}
	return in.workload.SourceRNG(p)
}

// runStream executes the instance through the streaming pipeline on
// the given engine (nil = fresh engine from in.Opts).
func (in *Instance) runStream(s *sim.Sim, asg sim.Assigner) (*sim.Result, error) {
	src, err := in.NewSource()
	if err != nil {
		return nil, fmt.Errorf("scenario: workload: %w", err)
	}
	if s == nil {
		return sim.RunStream(in.Tree, src, asg, in.Opts)
	}
	return sim.RunStreamOn(s, src, asg)
}
