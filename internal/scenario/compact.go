package scenario

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// The compact form is one line of space-separated key=value tokens
// plus bare boolean flags, e.g.
//
//	topo=fattree:2,2,2 n=2000 size=uniform:1,16 class=0.5 load=0.9 seed=1
//
// Component values (topo=, size=, process=) use exactly the
// historical cli spec grammar. Zero-valued fields are omitted on
// output and default on input, so parse → Compact → parse is the
// identity (pinned by a fuzz target). Inline jobs are JSON-only.
//
// Keys: name topo process n size class load cap related unrelated
// round maxweight policy assigner eps seed rng aseed speed speeds
// horizon faults recovery fleet fleetpolicy trees shards split retain
// and the flags packetized instrument scanqueue slices stream serve.
// Inline fault events, like inline jobs, are JSON-only. trees= lists
// per-tree topology specs separated by semicolons
// (trees=fattree:2,2,2;star:8).

// Compact renders the scenario as its one-line form. Scenarios that
// only JSON can express (inline jobs, names with whitespace) return
// an error.
func (sc *Scenario) Compact() (string, error) {
	if len(sc.Workload.Jobs) > 0 {
		return "", fmt.Errorf("scenario: inline jobs have no compact form (use JSON)")
	}
	if strings.ContainsAny(sc.Name, " \t\n\r") {
		return "", fmt.Errorf("scenario: name %q has no compact form (whitespace)", sc.Name)
	}
	var tok []string
	add := func(key, val string) { tok = append(tok, key+"="+val) }
	if sc.Name != "" {
		add("name", sc.Name)
	}
	if sc.Topology.Name != "" {
		add("topo", sc.Topology.String())
	}
	w := &sc.Workload
	if w.Process.Name != "" {
		add("process", w.Process.String())
	}
	if w.N != 0 {
		add("n", strconv.Itoa(w.N))
	}
	if w.Size.Name != "" {
		add("size", w.Size.String())
	}
	if w.ClassEps != 0 {
		add("class", formatFloat(w.ClassEps))
	}
	if w.Load != 0 {
		add("load", formatFloat(w.Load))
	}
	if w.Capacity != 0 {
		add("cap", formatFloat(w.Capacity))
	}
	if len(w.RelatedSpeeds) > 0 {
		add("related", joinFloats(w.RelatedSpeeds))
	}
	if u := w.Unrelated; u != nil {
		vals := []float64{u.Lo, u.Hi, u.PInfeasible, u.Penalty, float64(u.Leaves)}
		for len(vals) > 2 && vals[len(vals)-1] == 0 {
			vals = vals[:len(vals)-1]
		}
		add("unrelated", joinFloats(vals))
	}
	if w.RoundEps != 0 {
		add("round", formatFloat(w.RoundEps))
	}
	if w.MaxWeight != 0 {
		add("maxweight", strconv.Itoa(w.MaxWeight))
	}
	if sc.Policy != "" {
		add("policy", sc.Policy)
	}
	if sc.Assigner != "" {
		add("assigner", sc.Assigner)
	}
	if sc.Eps != 0 {
		add("eps", formatFloat(sc.Eps))
	}
	if sc.Seed != 0 {
		add("seed", strconv.FormatUint(sc.Seed, 10))
	}
	if sc.RNG != "" {
		add("rng", sc.RNG)
	}
	if sc.AssignerSeed != 0 {
		add("aseed", strconv.FormatUint(sc.AssignerSeed, 10))
	}
	if sc.Speed.Uniform != 0 {
		add("speed", formatFloat(sc.Speed.Uniform))
	}
	if sc.Speed.RootAdjacent != 0 || sc.Speed.Router != 0 || sc.Speed.Leaf != 0 {
		add("speeds", joinFloats([]float64{sc.Speed.RootAdjacent, sc.Speed.Router, sc.Speed.Leaf}))
	}
	if sc.Horizon != 0 {
		add("horizon", strconv.Itoa(sc.Horizon))
	}
	if fs := sc.Faults; fs != nil {
		if len(fs.Events) > 0 {
			return "", fmt.Errorf("scenario: inline fault events have no compact form (use JSON)")
		}
		if fs.Plan.Name != "" {
			add("faults", fs.Plan.String())
		}
		if fs.Recovery != "" {
			add("recovery", fs.Recovery)
		}
	}
	if fl := sc.Fleet; fl != nil {
		if fl.Trees != 0 {
			add("fleet", strconv.Itoa(fl.Trees))
		}
		if fl.Policy != "" {
			add("fleetpolicy", fl.Policy)
		}
		if len(fl.Topos) > 0 {
			specs := make([]string, len(fl.Topos))
			for i, sp := range fl.Topos {
				specs[i] = sp.String()
			}
			add("trees", strings.Join(specs, ";"))
		}
	}
	if sc.Engine.Shards != 0 {
		add("shards", strconv.Itoa(sc.Engine.Shards))
	}
	if sc.Engine.Split != 0 {
		add("split", strconv.Itoa(sc.Engine.Split))
	}
	if sc.Engine.RetainJobs != 0 {
		add("retain", strconv.Itoa(sc.Engine.RetainJobs))
	}
	if sc.Engine.Packetized {
		tok = append(tok, "packetized")
	}
	if sc.Engine.Instrument {
		tok = append(tok, "instrument")
	}
	if sc.Engine.ScanQueue {
		tok = append(tok, "scanqueue")
	}
	if sc.Engine.RecordSlices {
		tok = append(tok, "slices")
	}
	if sc.Engine.Stream {
		tok = append(tok, "stream")
	}
	if sc.Engine.Serve {
		tok = append(tok, "serve")
	}
	return strings.Join(tok, " "), nil
}

func joinFloats(vs []float64) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = formatFloat(v)
	}
	return strings.Join(parts, ",")
}

// ParseCompact parses the one-line form. Unknown and duplicate keys
// are errors; absent keys keep their zero-value defaults.
func ParseCompact(input string) (*Scenario, error) {
	// The compact form is text; invalid UTF-8 in a name would not
	// survive the JSON form (strings are coerced to U+FFFD there).
	if !utf8.ValidString(input) {
		return nil, fmt.Errorf("compact scenario: input is not valid UTF-8")
	}
	sc := &Scenario{}
	seen := map[string]bool{}
	for _, tok := range strings.Fields(input) {
		key, val, hasVal := strings.Cut(tok, "=")
		if seen[key] {
			return nil, fmt.Errorf("compact scenario: duplicate key %q", key)
		}
		seen[key] = true
		if !hasVal {
			switch key {
			case "packetized":
				sc.Engine.Packetized = true
			case "instrument":
				sc.Engine.Instrument = true
			case "scanqueue":
				sc.Engine.ScanQueue = true
			case "slices":
				sc.Engine.RecordSlices = true
			case "stream":
				sc.Engine.Stream = true
			case "serve":
				sc.Engine.Serve = true
			default:
				return nil, fmt.Errorf("compact scenario: unknown flag %q", key)
			}
			continue
		}
		if err := sc.setCompact(key, val); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

func (sc *Scenario) setCompact(key, val string) error {
	w := &sc.Workload
	var err error
	switch key {
	case "name":
		if val == "" {
			return fmt.Errorf("compact scenario: empty name")
		}
		sc.Name = val
	case "topo":
		sc.Topology, err = ParseSpec(val)
	case "process":
		w.Process, err = ParseSpec(val)
	case "n":
		w.N, err = strconv.Atoi(val)
	case "size":
		w.Size, err = ParseSpec(val)
	case "class":
		w.ClassEps, err = parseFinite(val)
	case "load":
		w.Load, err = parseFinite(val)
	case "cap":
		w.Capacity, err = parseFinite(val)
	case "related":
		w.RelatedSpeeds, err = splitFloats(val, 1, -1)
	case "unrelated":
		var vals []float64
		vals, err = splitFloats(val, 2, 5)
		if err != nil {
			break
		}
		for len(vals) < 5 {
			vals = append(vals, 0)
		}
		leaves := int(vals[4])
		if float64(leaves) != vals[4] {
			return fmt.Errorf("compact scenario: unrelated leaves %v is not an integer", vals[4])
		}
		w.Unrelated = &Unrelated{
			Lo: vals[0], Hi: vals[1], PInfeasible: vals[2], Penalty: vals[3], Leaves: leaves,
		}
	case "round":
		w.RoundEps, err = parseFinite(val)
	case "maxweight":
		w.MaxWeight, err = strconv.Atoi(val)
	case "policy":
		sc.Policy = val
	case "assigner":
		sc.Assigner = val
	case "eps":
		sc.Eps, err = parseFinite(val)
	case "seed":
		sc.Seed, err = strconv.ParseUint(val, 10, 64)
	case "aseed":
		sc.AssignerSeed, err = strconv.ParseUint(val, 10, 64)
	case "speed":
		sc.Speed.Uniform, err = parseFinite(val)
	case "speeds":
		var vals []float64
		vals, err = splitFloats(val, 3, 3)
		if err != nil {
			break
		}
		sc.Speed.RootAdjacent, sc.Speed.Router, sc.Speed.Leaf = vals[0], vals[1], vals[2]
	case "horizon":
		sc.Horizon, err = strconv.Atoi(val)
	case "shards":
		sc.Engine.Shards, err = strconv.Atoi(val)
	case "split":
		sc.Engine.Split, err = strconv.Atoi(val)
	case "retain":
		sc.Engine.RetainJobs, err = strconv.Atoi(val)
	case "faults":
		var sp Spec
		sp, err = ParseSpec(val)
		if err != nil {
			break
		}
		if sc.Faults == nil {
			sc.Faults = &FaultSpec{}
		}
		sc.Faults.Plan = sp
	case "recovery":
		if val != "hold" && val != "redispatch" {
			return fmt.Errorf("compact scenario: recovery=%s: want hold|redispatch", val)
		}
		if sc.Faults == nil {
			sc.Faults = &FaultSpec{}
		}
		sc.Faults.Recovery = val
	case "rng":
		if val != "legacy" && val != "keyed" {
			return fmt.Errorf("compact scenario: rng=%s: want legacy|keyed", val)
		}
		sc.RNG = val
	case "fleet":
		var n int
		if n, err = strconv.Atoi(val); err != nil {
			break
		}
		if n < 1 {
			return fmt.Errorf("compact scenario: fleet=%s: want a tree count >= 1", val)
		}
		sc.fleet().Trees = n
	case "fleetpolicy":
		if val != "rr" && val != "jsq" && val != "local" {
			return fmt.Errorf("compact scenario: fleetpolicy=%s: want rr|jsq|local", val)
		}
		sc.fleet().Policy = val
	case "trees":
		parts := strings.Split(val, ";")
		topos := make([]Spec, len(parts))
		for i, part := range parts {
			if topos[i], err = ParseSpec(part); err != nil {
				break
			}
		}
		if err == nil {
			sc.fleet().Topos = topos
		}
	default:
		return fmt.Errorf("compact scenario: unknown key %q", key)
	}
	if err != nil {
		return fmt.Errorf("compact scenario: %s=%s: %v", key, val, err)
	}
	return nil
}

// fleet returns the scenario's FleetSpec, allocating it on first use
// (mirrors the Faults pattern: any fleet key materializes the spec).
func (sc *Scenario) fleet() *FleetSpec {
	if sc.Fleet == nil {
		sc.Fleet = &FleetSpec{}
	}
	return sc.Fleet
}

func splitFloats(val string, min, max int) ([]float64, error) {
	parts := strings.Split(val, ",")
	if len(parts) < min || (max >= 0 && len(parts) > max) {
		if max < 0 {
			return nil, fmt.Errorf("want at least %d comma-separated values", min)
		}
		return nil, fmt.Errorf("want %d to %d comma-separated values", min, max)
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := parseFinite(p)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}
