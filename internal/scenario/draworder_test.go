package scenario

import (
	"reflect"
	"testing"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// TestLegacyDrawOrder pins the exact legacy draw sequence for one
// golden scenario, draw by typed draw, against an independent
// reconstruction from a bare rng.New(seed). This is the contract the
// legacy partition mode promises (DESIGN.md "Legacy draw order"): per
// job one Exp then one size draw, then one weight draw per job, then
// per fault event one Intn and one Float64. If this test breaks, a
// refactor changed the stream consumption order and every historical
// trace changes with it.
func TestLegacyDrawOrder(t *testing.T) {
	sc, err := ParseCompact("topo=fattree:2,2,2 n=40 size=uniform:1,16 load=0.9 seed=7 maxweight=5 faults=outages:3,10")
	if err != nil {
		t.Fatal(err)
	}
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruct from a parallel stream, naming each draw.
	base, err := BuildTopo(sc.Topology)
	if err != nil {
		t.Fatal(err)
	}
	cap := float64(len(base.RootAdjacent()))
	rate := sc.Workload.Load * cap / workload.UniformSize{Lo: 1, Hi: 16}.Mean()
	r := rng.New(7)
	var jobs []workload.Job
	tm := 0.0
	for i := 0; i < 40; i++ {
		tm += r.Exp(rate)      // draw 2i:   interarrival
		size := r.Range(1, 16) // draw 2i+1: size
		jobs = append(jobs, workload.Job{ID: i, Release: tm, Size: size})
	}
	for i := range jobs { // draws 80..119: weights
		jobs[i].Weight = float64(1 + r.Intn(5))
	}
	span := jobs[len(jobs)-1].Release
	var events []faults.Event
	for i := 0; i < 3; i++ { // draws 120..125: fault node, start
		node := tree.NodeID(1 + r.Intn(base.NumNodes()-1))
		start := r.Float64() * span
		events = append(events, faults.Event{Kind: faults.Outage, Node: node, Start: start, End: start + 10})
	}

	if !reflect.DeepEqual(in.Trace.Jobs, jobs) {
		t.Fatal("legacy Build consumed workload draws in a different order than the pinned sequence")
	}
	if !reflect.DeepEqual(in.FaultPlan.Events, events) {
		t.Fatal("legacy Build consumed fault-plan draws in a different order than the pinned sequence")
	}
}

// TestKeyedFaultIsolation checks the whole point of keyed mode:
// perturbing one subsystem's draw count cannot move another
// subsystem's stream. Adding the unrelated transform (which consumes
// extra size-stream draws) leaves the keyed fault plan bit-identical —
// and, as a control, shifts the legacy one.
func TestKeyedFaultIsolation(t *testing.T) {
	build := func(mode string, unrelated bool) *faults.Plan {
		t.Helper()
		sc, err := ParseCompact("topo=fattree:2,2,2 n=60 size=uniform:1,16 load=0.9 seed=13 faults=outages:4,8")
		if err != nil {
			t.Fatal(err)
		}
		sc.RNG = mode
		if unrelated {
			sc.Workload.Unrelated = &Unrelated{Lo: 0.5, Hi: 2}
		}
		in, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		return in.FaultPlan
	}
	if !reflect.DeepEqual(build("keyed", false), build("keyed", true)) {
		t.Fatal("keyed fault plan moved when the workload grew an unrelated transform")
	}
	if reflect.DeepEqual(build("legacy", false), build("legacy", true)) {
		t.Fatal("legacy control: fault plan should shift when upstream draws are added (or this test checks nothing)")
	}

	// Arrivals are likewise pinned across the size-law change in keyed
	// mode (the legacy interleave cannot offer this).
	arrivals := func(size string) []float64 {
		t.Helper()
		sc, err := ParseCompact("topo=star:4 n=80 size=" + size + " load=0.9 seed=21 rng=keyed")
		if err != nil {
			t.Fatal(err)
		}
		in, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		rel := make([]float64, len(in.Trace.Jobs))
		for i, j := range in.Trace.Jobs {
			rel[i] = j.Release
		}
		return rel
	}
	// Both laws have mean 2, so the calibrated rate is identical and
	// any divergence is stream contamination.
	if !reflect.DeepEqual(arrivals("uniform:1,3"), arrivals("bimodal:1,3,0.5")) {
		t.Fatal("keyed arrivals moved when only the size law changed")
	}
}

// TestKeyedStreamEquivalence: the streamed keyed pipeline yields the
// bit-identical job sequence to the materialized keyed build.
func TestKeyedStreamEquivalence(t *testing.T) {
	sc, err := ParseCompact("topo=fattree:2,2,2 n=120 size=uniform:1,16 load=0.9 seed=17 rng=keyed")
	if err != nil {
		t.Fatal(err)
	}
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	sc2, err := ParseCompact("topo=fattree:2,2,2 n=120 size=uniform:1,16 load=0.9 seed=17 rng=keyed stream")
	if err != nil {
		t.Fatal(err)
	}
	in2, err := sc2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in2.Trace != nil {
		t.Fatal("streamable keyed scenario materialized its trace")
	}
	src, err := in2.NewSource()
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Jobs, in.Trace.Jobs) {
		t.Fatal("streamed keyed jobs differ from the materialized keyed trace")
	}
}

func TestRNGModeValidation(t *testing.T) {
	sc, err := ParseCompact("topo=star:4 n=10 size=uniform:1,4 load=0.5")
	if err != nil {
		t.Fatal(err)
	}
	sc.RNG = "xorshift"
	if _, err := sc.Build(); err == nil {
		t.Fatal("Build accepted an unknown rng mode")
	}
	if _, err := ParseCompact("topo=star:4 rng=xorshift"); err == nil {
		t.Fatal("ParseCompact accepted an unknown rng mode")
	}
}

func TestBuildRejectsFleet(t *testing.T) {
	sc, err := ParseCompact("topo=star:4 n=10 size=uniform:1,4 load=0.5 fleet=2")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Build(); err == nil {
		t.Fatal("Build accepted a fleet scenario (must go through the fleet layer)")
	}
}
