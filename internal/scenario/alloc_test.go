package scenario

import "testing"

// TestScenarioSteadyStateAllocs extends the engine's zero-allocation
// guarantee (sim.TestSteadyStateAllocs) to the scenario-driven warm
// path: once a Runner's engine has warmed up, Replay's full
// Reset → inject → drain cycle must not allocate.
func TestScenarioSteadyStateAllocs(t *testing.T) {
	sc := &Scenario{
		Topology: NewSpec("fattree", 2, 2, 2),
		Workload: Workload{N: 500, Size: NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.95},
		Assigner: "greedy-identical",
		Seed:     3,
	}
	r, err := NewRunner(sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Replay(); err != nil { // warm up all internal capacity
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := r.Replay(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state scenario Replay allocates %.1f times per run, want 0", allocs)
	}
}
