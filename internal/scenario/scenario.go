package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/workload"
)

// Unrelated configures the per-leaf size transform applied after
// generation (workload.MakeUnrelated). Leaves is normally 0 and
// derived from the scenario's topology; trace-only callers (tracegen)
// set it explicitly.
type Unrelated struct {
	Lo          float64 `json:"lo"`
	Hi          float64 `json:"hi"`
	PInfeasible float64 `json:"p_infeasible,omitempty"`
	Penalty     float64 `json:"penalty,omitempty"`
	Leaves      int     `json:"leaves,omitempty"`
}

// Workload describes how a trace is produced. Exactly one rng stream
// (seeded by the owning Scenario) drives generation, in a fixed
// order: arrival process first, then related speeds, then the
// unrelated transform, then class rounding, then weights — the same
// order every hand-wired construction in this repo used, so a
// Workload with the same seed reproduces those traces bit for bit.
type Workload struct {
	// Process names the arrival process ("poisson" when empty;
	// "bursty:len", "adversarial:bigsize").
	Process Spec `json:"process,omitempty"`
	// N is the job count.
	N int `json:"n"`
	// Size names the size law (ignored by adversarial).
	Size Spec `json:"size,omitempty"`
	// ClassEps > 0 wraps Size in workload.ClassRounded (sizes drawn
	// pre-rounded to powers of 1+eps).
	ClassEps float64 `json:"class_eps,omitempty"`
	// Load is the offered load against Capacity.
	Load float64 `json:"load,omitempty"`
	// Capacity the load is calibrated against; 0 means "derive from
	// the topology's root-adjacent degree" (trace-only callers get 1).
	Capacity float64 `json:"capacity,omitempty"`
	// RelatedSpeeds, when set, applies workload.MakeRelated with these
	// per-leaf speeds.
	RelatedSpeeds []float64 `json:"related_speeds,omitempty"`
	// Unrelated, when set, applies workload.MakeUnrelated.
	Unrelated *Unrelated `json:"unrelated,omitempty"`
	// RoundEps > 0 rounds all sizes (including per-leaf ones) to
	// powers of 1+eps after the transforms above.
	RoundEps float64 `json:"round_eps,omitempty"`
	// MaxWeight > 0 draws integer job weights in [1, MaxWeight].
	MaxWeight int `json:"max_weight,omitempty"`
	// Jobs, when non-empty, bypasses generation entirely: the trace is
	// exactly these jobs (JSON form only; the compact form cannot
	// express inline jobs).
	Jobs []workload.Job `json:"jobs,omitempty"`
}

// Generate produces the trace. Leaves-dependent transforms require
// Unrelated.Leaves / len(RelatedSpeeds) to be resolved; Scenario.Build
// fills them from the topology before calling this.
func (w *Workload) Generate(seed uint64) (*workload.Trace, error) {
	return w.GenerateFrom(rng.New(seed))
}

// GenerateFrom produces the trace drawing from an existing single rng
// stream in the legacy order (see GenerateRNG): arrival and size
// draws interleave per job, then the unrelated transform, then
// weights — the same order every hand-wired construction in this repo
// used, so a Workload with the same seed reproduces those traces bit
// for bit.
func (w *Workload) GenerateFrom(r *rng.Rand) (*workload.Trace, error) {
	return w.GenerateRNG(rng.LegacyFrom(r))
}

// GenerateRNG produces the trace drawing from a partitioned rng: the
// arrival process draws from the "workload" stream, size samples and
// the unrelated transform from "sizes", weight assignment from
// "weights". With a keyed partition the subsystems are isolated —
// changing the size law cannot move an arrival, adding weights cannot
// move a size. With a legacy partition every stream name aliases the
// one shared generator, so the draws interleave in exactly the
// historical single-stream order and pre-refactor traces reproduce
// bit for bit (pinned by TestLegacyDrawOrder and the equivalence
// suites).
func (w *Workload) GenerateRNG(p *rng.PartitionedRNG) (*workload.Trace, error) {
	if len(w.Jobs) > 0 {
		tr := &workload.Trace{Jobs: append([]workload.Job(nil), w.Jobs...)}
		if err := tr.Validate(); err != nil {
			return nil, err
		}
		return tr, nil
	}
	var size workload.SizeDist
	if w.Size.Name != "" {
		var err error
		size, err = BuildSize(w.Size)
		if err != nil {
			return nil, err
		}
		if w.ClassEps > 0 {
			size = workload.ClassRounded{Base: size, Eps: w.ClassEps}
		}
	}
	tr, err := buildProcess(w.Process, p.Stream("workload"), workload.GenConfig{
		N: w.N, Size: size, Load: w.Load, Capacity: w.Capacity,
		SizeRand: p.Stream("sizes"),
	})
	if err != nil {
		return nil, err
	}
	if len(w.RelatedSpeeds) > 0 {
		if err := workload.MakeRelated(tr, w.RelatedSpeeds); err != nil {
			return nil, err
		}
	}
	if u := w.Unrelated; u != nil {
		if u.Leaves <= 0 {
			return nil, fmt.Errorf("unrelated transform needs a leaf count (no topology to derive it from)")
		}
		if err := workload.MakeUnrelated(p.Stream("sizes"), tr, workload.UnrelatedConfig{
			Leaves: u.Leaves, Lo: u.Lo, Hi: u.Hi, PInfeasible: u.PInfeasible, Penalty: u.Penalty,
		}); err != nil {
			return nil, err
		}
	}
	if w.RoundEps > 0 {
		workload.RoundTraceToClasses(tr, w.RoundEps)
	}
	if w.MaxWeight > 0 {
		workload.AssignWeights(p.Stream("weights"), tr, w.MaxWeight)
	}
	return tr, nil
}

// Heterogeneous reports whether the workload carries per-leaf sizes
// (unrelated or related machines) — what the old cli -unrelated flag
// signaled. The auto "greedy" assigner and the lemma checkers key off
// it.
func (w *Workload) Heterogeneous() bool { return w.unrelated() }

// unrelated reports whether the workload carries per-leaf sizes —
// the signal the auto "greedy" assigner and the shadow rule key off,
// exactly as the old cli -unrelated flag did.
func (w *Workload) unrelated() bool {
	if w.Unrelated != nil || len(w.RelatedSpeeds) > 0 {
		return true
	}
	for i := range w.Jobs {
		if w.Jobs[i].LeafSizes != nil {
			return true
		}
	}
	return false
}

// Speed selects the tree speed profile. Zero value = speed 1
// everywhere. Uniform and the per-level triple are mutually
// exclusive.
type Speed struct {
	// Uniform applies tree.WithUniformSpeed.
	Uniform float64 `json:"uniform,omitempty"`
	// RootAdjacent/Router/Leaf apply tree.WithSpeeds (all three must
	// be set together).
	RootAdjacent float64 `json:"root_adjacent,omitempty"`
	Router       float64 `json:"router,omitempty"`
	Leaf         float64 `json:"leaf,omitempty"`
}

func (s Speed) zero() bool { return s == Speed{} }

// FaultSpec describes deterministic fault injection. Plan names a
// registered fault-plan generator whose events are drawn from the
// scenario's rng stream (after workload generation); Events lists the
// faults explicitly instead (JSON only, like inline Jobs). The two are
// mutually exclusive.
type FaultSpec struct {
	// Plan is the registered generator spec ("outages:3,10").
	Plan Spec `json:"plan,omitempty"`
	// Events is the explicit fault list (JSON form only).
	Events []faults.Event `json:"events,omitempty"`
	// Recovery selects the permanent-leaf-loss policy: "hold" (default)
	// or "redispatch".
	Recovery string `json:"recovery,omitempty"`
}

// FleetSpec asks for a fleet-of-trees co-simulation: N independently
// seeded tree instances behind a front-door router that dispatches
// the scenario's (single) workload stream across them. The scenario
// package only carries the data; building and running a fleet is the
// fleet package's job (scenario.Build rejects fleet scenarios so they
// cannot be silently run as a single tree).
type FleetSpec struct {
	// Trees is the tree count. Zero with Topos set means len(Topos).
	Trees int `json:"trees,omitempty"`
	// Policy names the cross-tree routing policy: "rr" (round-robin,
	// the default), "jsq" (join the tree with the shortest estimated
	// backlog) or "local" (affinity-hashed with overload spill).
	Policy string `json:"policy,omitempty"`
	// Topos, when set, gives each tree its own topology instead of
	// copies of the scenario's Topology. Length must match Trees when
	// both are set.
	Topos []Spec `json:"topos,omitempty"`
}

// EffPolicy returns the effective cross-tree routing policy name
// (default "rr") or an error for an unknown one.
func (f *FleetSpec) EffPolicy() (string, error) {
	switch f.Policy {
	case "", "rr":
		return "rr", nil
	case "jsq":
		return "jsq", nil
	case "local":
		return "local", nil
	default:
		return "", fmt.Errorf("scenario: unknown fleet policy %q (want rr|jsq|local)", f.Policy)
	}
}

// NumTrees resolves the fleet's tree count from Trees and Topos,
// rejecting inconsistent combinations.
func (f *FleetSpec) NumTrees() (int, error) {
	switch {
	case f.Trees < 0:
		return 0, fmt.Errorf("scenario: fleet.trees must be >= 1, got %d", f.Trees)
	case f.Trees == 0 && len(f.Topos) == 0:
		return 0, fmt.Errorf("scenario: fleet needs trees or topos")
	case f.Trees == 0:
		return len(f.Topos), nil
	case len(f.Topos) > 0 && len(f.Topos) != f.Trees:
		return 0, fmt.Errorf("scenario: fleet.trees is %d but fleet.topos lists %d topologies", f.Trees, len(f.Topos))
	default:
		return f.Trees, nil
	}
}

// Engine selects run-mode options that change the schedule or its
// instrumentation. Function-valued sim.Options (Observer, SelfCheck)
// are deliberately excluded: they are code, not data, and callers
// attach them to Instance.Opts after Build.
type Engine struct {
	// Packetized runs the Section 2 unit-packet variant.
	Packetized bool `json:"packetized,omitempty"`
	// Instrument records per-hop timings.
	Instrument bool `json:"instrument,omitempty"`
	// ScanQueue selects the linear-scan node queue.
	ScanQueue bool `json:"scan_queue,omitempty"`
	// RecordSlices records the execution slices (Gantt input).
	RecordSlices bool `json:"record_slices,omitempty"`
	// Shards sets sim.Options.Workers: the worker count for the
	// subtree-sharded engine (0 or 1 = sequential). Results are
	// bit-identical either way; this is purely a speed knob.
	Shards int `json:"shards,omitempty"`
	// Split sets sim.Options.SplitShards: a root-child subtree with
	// more than Split leaves is split into per-grandchild sub-shards
	// so skewed trees still parallelize (0 = off). Per-job results
	// are bit-identical; aggregate flow-time integrals may differ in
	// the last ulps.
	Split int `json:"split,omitempty"`
	// Stream runs the scenario through the streaming pipeline
	// (sim.RunStream): when the workload admits it, arrivals are
	// drawn from an ArrivalSource one job at a time and the trace is
	// never materialized. Results are bit-identical to the
	// materialized run.
	Stream bool `json:"stream,omitempty"`
	// RetainJobs sets sim.Options.RetainJobs: 0 keeps every
	// JobMetrics (backwards compatible); N > 0 keeps only the last N
	// and recycles engine task state at completion, so a streamed
	// run's memory is independent of N jobs.
	RetainJobs int `json:"retain_jobs,omitempty"`
	// Serve declares the scenario for online dispatch: the workload
	// arrives from outside (the treeschedd daemon's admission queue),
	// so the scenario carries no trace of its own. Build resolves the
	// tree, policy and assigner but generates nothing; Run and Runner
	// reject serve scenarios — they are run through internal/server.
	Serve bool `json:"serve,omitempty"`
}

// Scenario is one complete, serializable simulation setup: every
// experiment cell, CLI invocation and example in this repo is
// expressible as (and reproducible from) one of these.
//
// Zero values mean defaults: Policy "" = sjf, Assigner "" = greedy,
// Eps 0 = 0.5, Speed zero = speed 1, AssignerSeed 0 = Seed+1 (the
// historical cli behavior for the randomized baseline).
type Scenario struct {
	// Name is an optional label (no whitespace in compact form).
	Name string `json:"name,omitempty"`
	// Topology is the tree spec ("fattree:2,2,2"). Required to Build;
	// trace-only users (tracegen) may leave it empty.
	Topology Spec `json:"topology"`
	// Workload describes the trace.
	Workload Workload `json:"workload"`
	// Policy names the node scheduling policy (default sjf).
	Policy string `json:"policy,omitempty"`
	// Assigner names the leaf-assignment rule (default greedy).
	Assigner string `json:"assigner,omitempty"`
	// Eps is the greedy/class epsilon (default 0.5).
	Eps float64 `json:"eps,omitempty"`
	// Seed drives workload generation. Under RNG "keyed" it is the
	// SimulationKey every subsystem stream derives from.
	Seed uint64 `json:"seed,omitempty"`
	// RNG selects the random-stream discipline: "legacy" (default,
	// also "") runs every subsystem off one shared stream in the
	// historical draw order, reproducing pre-partition traces bit for
	// bit; "keyed" gives each subsystem (workload, sizes, weights,
	// faults, per-tree) its own stream derived from Seed alone, so
	// adding a draw in one subsystem cannot perturb another.
	RNG string `json:"rng,omitempty"`
	// AssignerSeed seeds randomized assigners (0 = Seed+1).
	AssignerSeed uint64 `json:"assigner_seed,omitempty"`
	// Speed is the tree speed profile.
	Speed Speed `json:"speed,omitempty"`
	// Horizon is the LP horizon in unit slots for bound tooling
	// (cmd/lpbound); the event engine does not use it.
	Horizon int `json:"horizon,omitempty"`
	// Faults, when set, injects deterministic node faults.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Fleet, when set, turns the scenario into a fleet-of-trees
	// co-simulation (run through the fleet package, not Build).
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Engine selects run-mode options.
	Engine Engine `json:"engine,omitempty"`
}

// EffRNGMode returns the effective rng discipline ("legacy" or
// "keyed") or an error for an unknown mode.
func (sc *Scenario) EffRNGMode() (string, error) {
	switch sc.RNG {
	case "", "legacy":
		return "legacy", nil
	case "keyed":
		return "keyed", nil
	default:
		return "", fmt.Errorf("scenario: unknown rng mode %q (want legacy|keyed)", sc.RNG)
	}
}

// NewPartition returns a fresh rng partition in the scenario's mode,
// seeded by the scenario: the root of every random draw Build and
// NewSource make.
func (sc *Scenario) NewPartition() (*rng.PartitionedRNG, error) {
	mode, err := sc.EffRNGMode()
	if err != nil {
		return nil, err
	}
	if mode == "keyed" {
		return rng.NewPartitioned(rng.SimulationKey(sc.Seed)), nil
	}
	return rng.NewLegacy(sc.Seed), nil
}

// EffEps returns the effective epsilon (default 0.5).
func (sc *Scenario) EffEps() float64 {
	if sc.Eps == 0 {
		return 0.5
	}
	return sc.Eps
}

// EffPolicy returns the effective policy name (default "sjf").
func (sc *Scenario) EffPolicy() string {
	if sc.Policy == "" {
		return "sjf"
	}
	return sc.Policy
}

// EffAssigner returns the effective assigner name (default "greedy").
func (sc *Scenario) EffAssigner() string {
	if sc.Assigner == "" {
		return "greedy"
	}
	return sc.Assigner
}

// EffAssignerSeed returns the rng seed for randomized assigners.
func (sc *Scenario) EffAssignerSeed() uint64 {
	if sc.AssignerSeed == 0 {
		return sc.Seed + 1
	}
	return sc.AssignerSeed
}

// WriteJSON writes the scenario as indented JSON. The JSON form
// round-trips losslessly (pinned by tests and a fuzz target).
func (sc *Scenario) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sc)
}

// ReadJSON decodes a Scenario from JSON, rejecting unknown fields so
// typos in hand-written files fail loudly.
func ReadJSON(r io.Reader) (*Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	sc := &Scenario{}
	if err := dec.Decode(sc); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return sc, nil
}

// Load parses either a JSON document (first non-space byte '{') or a
// compact one-line form.
func Load(data []byte) (*Scenario, error) {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return ReadJSON(bytes.NewReader(data))
		default:
			return ParseCompact(string(data))
		}
	}
	return nil, fmt.Errorf("scenario: empty input")
}
