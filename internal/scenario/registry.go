// Package scenario makes simulation setups addressable by data
// instead of code: named registries map compact specs like
// "fattree:2,2,2" or "pareto:1,1.5,200" onto the topology generators,
// size laws, arrival processes, node policies and leaf assigners the
// rest of the repo implements, and a Scenario value bundles one full
// experiment cell (topology + workload + scheduler + speeds + seed)
// that round-trips through JSON and a compact one-line string.
//
// The registries are the single source of truth for the spec grammar;
// internal/cli is a deprecated shim over them (it only adds its
// historical "cli: " error prefix).
package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"treesched/internal/core"
	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// Param documents one positional argument of a registry entry.
type Param struct {
	// Name appears in usage strings ("uniform needs lo,hi").
	Name string
	// Int marks arguments that must be integers (topology shapes).
	Int bool
}

// Spec is one registry invocation in data form: a name plus
// positional numeric arguments. Its compact form is the historical
// cli grammar, "name" or "name:a,b,c" — also its JSON form (a Spec
// marshals as that string).
type Spec struct {
	Name string    `json:"name"`
	Args []float64 `json:"args,omitempty"`
}

// MarshalJSON renders the spec as its compact string form.
func (s Spec) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON parses the compact string form ("" is the zero Spec).
func (s *Spec) UnmarshalJSON(data []byte) error {
	var str string
	if err := json.Unmarshal(data, &str); err != nil {
		return err
	}
	if str == "" {
		*s = Spec{}
		return nil
	}
	sp, err := ParseSpec(str)
	if err != nil {
		return err
	}
	*s = sp
	return nil
}

// NewSpec builds a Spec in place: NewSpec("fattree", 2, 2, 2).
func NewSpec(name string, args ...float64) Spec {
	if len(args) == 0 {
		return Spec{Name: name}
	}
	return Spec{Name: name, Args: args}
}

// String renders the compact "name:a,b,c" form.
func (s Spec) String() string {
	if len(s.Args) == 0 {
		return s.Name
	}
	parts := make([]string, len(s.Args))
	for i, a := range s.Args {
		parts[i] = formatFloat(a)
	}
	return s.Name + ":" + strings.Join(parts, ",")
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// TopoEntry is one named topology generator.
type TopoEntry struct {
	Name   string
	Params []Param
	// Build receives integer-checked arguments. Generators may panic
	// on out-of-range values; callers recover.
	Build func(args []int) *tree.Tree
}

// SizeEntry is one named size law.
type SizeEntry struct {
	Name   string
	Params []Param
	Build  func(args []float64) workload.SizeDist
}

// ProcessEntry is one named arrival process. Build draws from r and
// must be the only consumer of r during generation so scenario seeds
// stay reproducible.
type ProcessEntry struct {
	Name   string
	Params []Param
	Build  func(r *rng.Rand, cfg workload.GenConfig, args []float64) (*workload.Trace, error)
	// Stream, when set, is the process's streaming constructor: it
	// must draw from r in exactly Build's per-job order, so a
	// streamed workload is bit-identical to the materialized one.
	// Processes without it are materialized behind a TraceSource when
	// streamed.
	Stream func(r *rng.Rand, cfg workload.GenConfig, args []float64) (workload.ArrivalSource, error)
}

// PolicyEntry is one named node scheduling policy.
type PolicyEntry struct {
	Name  string
	Build func() sim.Policy
}

// AssignerContext carries everything an assigner constructor may
// need: the (speed-augmented) tree, the greedy epsilon, whether the
// workload has per-leaf sizes, and the rng seed for randomized rules.
type AssignerContext struct {
	Tree      *tree.Tree
	Eps       float64
	Unrelated bool
	// Seed feeds randomized assigners verbatim (rng.New(Seed)).
	Seed uint64
}

// AssignerEntry is one named leaf-assignment rule.
type AssignerEntry struct {
	Name  string
	Build func(ctx AssignerContext) (sim.Assigner, error)
}

// FaultEntry is one named fault-plan generator. Build draws every
// random choice from r (the scenario stream, after workload
// generation) so a seeded faulty scenario reproduces bit for bit.
// span is the trace's arrival span — generators place events inside
// it.
type FaultEntry struct {
	Name   string
	Params []Param
	Build  func(r *rng.Rand, t *tree.Tree, span float64, args []float64) (*faults.Plan, error)
}

// The six registries. Registration order defines the "(want a|b|c)"
// lists in error messages, so built-ins register in the historical
// cli order.
var (
	topoReg    = newRegistry[TopoEntry]("topology")
	sizeReg    = newRegistry[SizeEntry]("size distribution")
	processReg = newRegistry[ProcessEntry]("arrival process")
	policyReg  = newRegistry[PolicyEntry]("policy")
	assignReg  = newRegistry[AssignerEntry]("assigner")
	faultReg   = newRegistry[FaultEntry]("fault plan")
)

type registry[E any] struct {
	kind   string
	order  []string
	byName map[string]E
}

func newRegistry[E any](kind string) *registry[E] {
	return &registry[E]{kind: kind, byName: map[string]E{}}
}

func (r *registry[E]) add(name string, e E) {
	if name == "" {
		panic("scenario: empty registry name")
	}
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate %s %q", r.kind, name))
	}
	r.order = append(r.order, name)
	r.byName[name] = e
}

func (r *registry[E]) names() []string { return append([]string(nil), r.order...) }

func (r *registry[E]) lookup(name string) (E, error) {
	e, ok := r.byName[name]
	if !ok {
		return e, fmt.Errorf("unknown %s %q (want %s)", r.kind, name, strings.Join(r.order, "|"))
	}
	return e, nil
}

// RegisterTopology adds a custom topology generator (examples use
// this to make irregular clusters addressable by name).
func RegisterTopology(e TopoEntry) { topoReg.add(e.Name, e) }

// RegisterSize adds a custom size law.
func RegisterSize(e SizeEntry) { sizeReg.add(e.Name, e) }

// RegisterProcess adds a custom arrival process.
func RegisterProcess(e ProcessEntry) { processReg.add(e.Name, e) }

// RegisterPolicy adds a custom node policy.
func RegisterPolicy(e PolicyEntry) { policyReg.add(e.Name, e) }

// RegisterAssigner adds a custom leaf-assignment rule.
func RegisterAssigner(e AssignerEntry) { assignReg.add(e.Name, e) }

// RegisterFaultPlan adds a custom fault-plan generator.
func RegisterFaultPlan(e FaultEntry) { faultReg.add(e.Name, e) }

// Topologies, Sizes, Processes, Policies, Assigners and FaultPlans
// list the registered names in registration order.
func Topologies() []string { return topoReg.names() }
func Sizes() []string      { return sizeReg.names() }
func Processes() []string  { return processReg.names() }
func Policies() []string   { return policyReg.names() }
func Assigners() []string  { return assignReg.names() }
func FaultPlans() []string { return faultReg.names() }

// BuildFaultPlan generates a fault plan from a registered spec. The
// plan is validated against t before it is returned.
func BuildFaultPlan(s Spec, r *rng.Rand, t *tree.Tree, span float64) (*faults.Plan, error) {
	e, err := faultReg.lookup(s.Name)
	if err != nil {
		return nil, err
	}
	if len(s.Args) != len(e.Params) {
		return nil, fmt.Errorf("fault plan %s needs %s", s.Name, paramNames(e.Params))
	}
	p, err := e.Build(r, t, span, s.Args)
	if err != nil {
		return nil, fmt.Errorf("fault plan %s: %w", s.Name, err)
	}
	if err := p.Validate(t); err != nil {
		return nil, fmt.Errorf("fault plan %s: %w", s.Name, err)
	}
	return p, nil
}

func init() {
	RegisterTopology(TopoEntry{
		Name:   "fattree",
		Params: []Param{{"arity", true}, {"depth", true}, {"leaves", true}},
		Build:  func(a []int) *tree.Tree { return tree.FatTree(a[0], a[1], a[2]) },
	})
	RegisterTopology(TopoEntry{
		Name:   "star",
		Params: []Param{{"n", true}},
		Build:  func(a []int) *tree.Tree { return tree.Star(a[0]) },
	})
	RegisterTopology(TopoEntry{
		Name:   "line",
		Params: []Param{{"n", true}},
		Build:  func(a []int) *tree.Tree { return tree.Line(a[0]) },
	})
	RegisterTopology(TopoEntry{
		Name:   "caterpillar",
		Params: []Param{{"spine", true}, {"leaves", true}},
		Build:  func(a []int) *tree.Tree { return tree.Caterpillar(a[0], a[1]) },
	})
	RegisterTopology(TopoEntry{
		Name:   "broomstick",
		Params: []Param{{"branches", true}, {"handle", true}, {"leaves", true}},
		Build:  func(a []int) *tree.Tree { return tree.BroomstickTree(a[0], a[1], a[2]) },
	})
	RegisterTopology(TopoEntry{
		Name:   "random",
		Params: []Param{{"branches", true}, {"maxdepth", true}, {"maxchildren", true}},
		// Fixed seed: "random:2,4,2" must always name the same tree so
		// specs stay reproducible.
		Build: func(a []int) *tree.Tree {
			return tree.Random(rng.New(12345), tree.RandomConfig{
				Branches: a[0], MaxDepth: a[1], MaxChildren: a[2], LeafProb: 0.45,
			})
		},
	})

	RegisterSize(SizeEntry{
		Name:   "uniform",
		Params: []Param{{"lo", false}, {"hi", false}},
		Build:  func(a []float64) workload.SizeDist { return workload.UniformSize{Lo: a[0], Hi: a[1]} },
	})
	RegisterSize(SizeEntry{
		Name:   "bimodal",
		Params: []Param{{"small", false}, {"big", false}, {"pbig", false}},
		Build: func(a []float64) workload.SizeDist {
			return workload.BimodalSize{Small: a[0], Big: a[1], PBig: a[2]}
		},
	})
	RegisterSize(SizeEntry{
		Name:   "pareto",
		Params: []Param{{"min", false}, {"alpha", false}, {"cap", false}},
		Build: func(a []float64) workload.SizeDist {
			return workload.ParetoSize{Min: a[0], Alpha: a[1], Cap: a[2]}
		},
	})

	RegisterProcess(ProcessEntry{
		Name: "poisson",
		Build: func(r *rng.Rand, cfg workload.GenConfig, _ []float64) (*workload.Trace, error) {
			return workload.Poisson(r, cfg)
		},
		Stream: func(r *rng.Rand, cfg workload.GenConfig, _ []float64) (workload.ArrivalSource, error) {
			return workload.NewPoissonSource(r, cfg)
		},
	})
	RegisterProcess(ProcessEntry{
		Name:   "bursty",
		Params: []Param{{"burst", true}},
		Build: func(r *rng.Rand, cfg workload.GenConfig, a []float64) (*workload.Trace, error) {
			return workload.Bursty(r, cfg, int(a[0]))
		},
		Stream: func(r *rng.Rand, cfg workload.GenConfig, a []float64) (workload.ArrivalSource, error) {
			return workload.NewBurstySource(r, cfg, int(a[0]))
		},
	})
	RegisterProcess(ProcessEntry{
		Name:   "adversarial",
		Params: []Param{{"bigsize", false}},
		// Adversarial ignores the size law and load entirely.
		Build: func(r *rng.Rand, cfg workload.GenConfig, a []float64) (*workload.Trace, error) {
			return workload.Adversarial(r, cfg.N, a[0]), nil
		},
		Stream: func(r *rng.Rand, cfg workload.GenConfig, a []float64) (workload.ArrivalSource, error) {
			return workload.NewAdversarialSource(cfg.N, a[0]), nil
		},
	})

	RegisterPolicy(PolicyEntry{Name: "sjf", Build: func() sim.Policy { return sim.SJF{} }})
	RegisterPolicy(PolicyEntry{Name: "fifo", Build: func() sim.Policy { return sim.FIFO{} }})
	RegisterPolicy(PolicyEntry{Name: "srpt", Build: func() sim.Policy { return sim.SRPT{} }})
	RegisterPolicy(PolicyEntry{Name: "lcfs", Build: func() sim.Policy { return sim.LCFS{} }})
	RegisterPolicy(PolicyEntry{Name: "ps", Build: func() sim.Policy { return sim.PS{} }})
	RegisterPolicy(PolicyEntry{Name: "wsjf", Build: func() sim.Policy { return sim.WSJF{} }})

	RegisterAssigner(AssignerEntry{
		Name: "greedy",
		// The historical auto-variant: unrelated workloads get the
		// Theorem 2 rule, identical workloads the Theorem 1 rule.
		Build: func(ctx AssignerContext) (sim.Assigner, error) {
			if ctx.Unrelated {
				return core.NewGreedyUnrelated(ctx.Eps), nil
			}
			return core.NewGreedyIdentical(ctx.Eps), nil
		},
	})
	RegisterAssigner(AssignerEntry{
		Name: "greedy-identical",
		Build: func(ctx AssignerContext) (sim.Assigner, error) {
			return core.NewGreedyIdentical(ctx.Eps), nil
		},
	})
	RegisterAssigner(AssignerEntry{
		Name: "greedy-unrelated",
		Build: func(ctx AssignerContext) (sim.Assigner, error) {
			return core.NewGreedyUnrelated(ctx.Eps), nil
		},
	})
	RegisterAssigner(AssignerEntry{
		Name: "shadow",
		Build: func(ctx AssignerContext) (sim.Assigner, error) {
			return core.NewShadow(ctx.Tree, core.ShadowConfig{Eps: ctx.Eps, Unrelated: ctx.Unrelated})
		},
	})
	RegisterAssigner(AssignerEntry{
		Name:  "closest",
		Build: func(AssignerContext) (sim.Assigner, error) { return sched.ClosestLeaf{}, nil },
	})
	RegisterAssigner(AssignerEntry{
		Name: "random",
		Build: func(ctx AssignerContext) (sim.Assigner, error) {
			return &sched.RandomLeaf{R: rng.New(ctx.Seed)}, nil
		},
	})
	RegisterAssigner(AssignerEntry{
		Name:  "roundrobin",
		Build: func(AssignerContext) (sim.Assigner, error) { return &sched.RoundRobin{}, nil },
	})
	RegisterAssigner(AssignerEntry{
		Name:  "leastvolume",
		Build: func(AssignerContext) (sim.Assigner, error) { return sched.LeastVolume{}, nil },
	})
	RegisterAssigner(AssignerEntry{
		Name:  "minpath",
		Build: func(AssignerContext) (sim.Assigner, error) { return sched.MinPathWork{}, nil },
	})
	RegisterAssigner(AssignerEntry{
		Name:  "jsq",
		Build: func(AssignerContext) (sim.Assigner, error) { return sched.JoinShortestQueue{}, nil },
	})

	RegisterFaultPlan(FaultEntry{
		Name:   "outages",
		Params: []Param{{"count", true}, {"dur", false}},
		Build: func(r *rng.Rand, t *tree.Tree, span float64, a []float64) (*faults.Plan, error) {
			return transientPlan(faults.Outage, r, t, span, a[0], a[1], 0)
		},
	})
	RegisterFaultPlan(FaultEntry{
		Name:   "brownouts",
		Params: []Param{{"count", true}, {"dur", false}, {"factor", false}},
		Build: func(r *rng.Rand, t *tree.Tree, span float64, a []float64) (*faults.Plan, error) {
			return transientPlan(faults.Brownout, r, t, span, a[0], a[1], a[2])
		},
	})
	RegisterFaultPlan(FaultEntry{
		Name:   "leafloss",
		Params: []Param{{"count", true}, {"frac", false}},
		Build: func(r *rng.Rand, t *tree.Tree, span float64, a []float64) (*faults.Plan, error) {
			count, err := intCount(a[0])
			if err != nil {
				return nil, err
			}
			leaves := t.Leaves()
			if count >= len(leaves) {
				return nil, fmt.Errorf("losing %d of %d leaves leaves no survivor", count, len(leaves))
			}
			if !(a[1] >= 0 && a[1] <= 1) {
				return nil, fmt.Errorf("frac %v outside [0,1]", formatFloat(a[1]))
			}
			at := a[1] * span
			p := &faults.Plan{}
			for _, i := range r.Perm(len(leaves))[:count] {
				p.Events = append(p.Events, faults.Event{Kind: faults.LeafLoss, Node: leaves[i], Start: at})
			}
			return p, nil
		},
	})
}

// transientPlan draws count transient faults of one kind, node uniform
// over the non-root nodes and start uniform in [0, span].
func transientPlan(kind faults.Kind, r *rng.Rand, t *tree.Tree, span float64, countArg, dur, factor float64) (*faults.Plan, error) {
	count, err := intCount(countArg)
	if err != nil {
		return nil, err
	}
	if dur <= 0 {
		return nil, fmt.Errorf("dur %v must be positive", formatFloat(dur))
	}
	if t.NumNodes() < 2 {
		return nil, fmt.Errorf("tree has no non-root node to fault")
	}
	p := &faults.Plan{}
	for i := 0; i < count; i++ {
		node := tree.NodeID(1 + r.Intn(t.NumNodes()-1))
		start := r.Float64() * span
		e := faults.Event{Kind: kind, Node: node, Start: start, End: start + dur}
		if kind == faults.Brownout {
			e.Factor = factor
		}
		p.Events = append(p.Events, e)
	}
	return p, nil
}

func intCount(v float64) (int, error) {
	n := int(v)
	if float64(n) != v || n < 0 {
		return 0, fmt.Errorf("count %v is not a non-negative integer", formatFloat(v))
	}
	return n, nil
}

// splitSpec cuts "name:a,b,c" into its name and raw argument strings.
func splitSpec(spec string) (name string, args []string, err error) {
	name, argstr, _ := strings.Cut(spec, ":")
	if name == "" {
		return "", nil, fmt.Errorf("empty spec")
	}
	if argstr != "" {
		for _, a := range strings.Split(argstr, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	return name, args, nil
}

// ParseSpec parses a compact "name:a,b,c" string into a Spec without
// consulting any registry (the name is resolved at build time). Args
// must be finite numbers.
func ParseSpec(spec string) (Spec, error) {
	name, args, err := splitSpec(spec)
	if err != nil {
		return Spec{}, err
	}
	s := Spec{Name: name}
	for _, a := range args {
		v, err := parseFinite(a)
		if err != nil {
			return Spec{}, fmt.Errorf("spec %q: arg %q is not a number", spec, a)
		}
		s.Args = append(s.Args, v)
	}
	return s, nil
}

func parseFinite(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v != v || v > maxFinite || v < -maxFinite {
		return 0, fmt.Errorf("value %q is not finite", s)
	}
	return v, nil
}

const maxFinite = 1.7976931348623157e308

// ParseTopo builds a topology from its compact spec. Error messages
// are the historical cli ones minus the "cli: " prefix; generator
// panics (out-of-range shapes) are translated into errors.
func ParseTopo(spec string) (t *tree.Tree, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("topology %q: %v", spec, r)
		}
	}()
	name, args, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	ints := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("topology %q: arg %q is not an integer", spec, a)
		}
		ints[i] = v
	}
	e, err := topoReg.lookup(name)
	if err != nil {
		return nil, err
	}
	if len(ints) != len(e.Params) {
		return nil, fmt.Errorf("topology %s needs %d args, got %d", name, len(e.Params), len(ints))
	}
	return e.Build(ints), nil
}

// BuildTopo builds a topology from a Spec (the JSON route into the
// same registry ParseTopo serves).
func BuildTopo(s Spec) (t *tree.Tree, err error) {
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("topology %q: %v", s.String(), r)
		}
	}()
	e, err := topoReg.lookup(s.Name)
	if err != nil {
		return nil, err
	}
	if len(s.Args) != len(e.Params) {
		return nil, fmt.Errorf("topology %s needs %d args, got %d", s.Name, len(e.Params), len(s.Args))
	}
	ints := make([]int, len(s.Args))
	for i, a := range s.Args {
		v := int(a)
		if float64(v) != a {
			return nil, fmt.Errorf("topology %q: arg %v is not an integer", s.String(), formatFloat(a))
		}
		ints[i] = v
	}
	return e.Build(ints), nil
}

// ParseSize builds a size distribution from its compact spec.
func ParseSize(spec string) (workload.SizeDist, error) {
	name, args, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	fs := make([]float64, len(args))
	for i, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("size %q: arg %q is not a number", spec, a)
		}
		fs[i] = v
	}
	return BuildSize(Spec{Name: name, Args: fs})
}

// BuildSize builds a size distribution from a Spec.
func BuildSize(s Spec) (workload.SizeDist, error) {
	e, err := sizeReg.lookup(s.Name)
	if err != nil {
		return nil, err
	}
	if len(s.Args) != len(e.Params) {
		return nil, fmt.Errorf("%s needs %s", s.Name, paramNames(e.Params))
	}
	return e.Build(s.Args), nil
}

func paramNames(ps []Param) string {
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return strings.Join(names, ",")
}

// ParsePolicy resolves a node scheduling policy name.
func ParsePolicy(name string) (sim.Policy, error) {
	e, err := policyReg.lookup(name)
	if err != nil {
		return nil, err
	}
	return e.Build(), nil
}

// ParseAssigner resolves a leaf-assignment rule name.
func ParseAssigner(name string, ctx AssignerContext) (sim.Assigner, error) {
	e, err := assignReg.lookup(name)
	if err != nil {
		return nil, err
	}
	return e.Build(ctx)
}

// buildProcess generates a trace via the named arrival process.
func buildProcess(s Spec, r *rng.Rand, cfg workload.GenConfig) (*workload.Trace, error) {
	name := s.Name
	if name == "" {
		name = "poisson"
	}
	e, err := processReg.lookup(name)
	if err != nil {
		return nil, err
	}
	if len(s.Args) != len(e.Params) {
		return nil, fmt.Errorf("%s needs %s", name, paramNames(e.Params))
	}
	return e.Build(r, cfg, s.Args)
}

// buildProcessSource returns a streaming source for the named arrival
// process. Processes without a Stream constructor (custom
// registrations) are materialized behind a TraceSource; either way
// the rng draws happen in the materialized order, so downstream
// results are bit-identical.
func buildProcessSource(s Spec, r *rng.Rand, cfg workload.GenConfig) (workload.ArrivalSource, error) {
	name := s.Name
	if name == "" {
		name = "poisson"
	}
	e, err := processReg.lookup(name)
	if err != nil {
		return nil, err
	}
	if len(s.Args) != len(e.Params) {
		return nil, fmt.Errorf("%s needs %s", name, paramNames(e.Params))
	}
	if e.Stream == nil {
		tr, err := e.Build(r, cfg, s.Args)
		if err != nil {
			return nil, err
		}
		return workload.NewTraceSource(tr), nil
	}
	return e.Stream(r, cfg, s.Args)
}
