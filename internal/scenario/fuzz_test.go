package scenario

import (
	"bytes"
	"reflect"
	"testing"
)

// Fuzz targets for the two serialized forms. Both pin the same
// property: parse → serialize → parse is the identity. The f.Add
// corpus doubles as regression tests under plain `go test` (each seed
// runs once even without -fuzz).

func FuzzCompactRoundTrip(f *testing.F) {
	seeds := []string{
		"",
		"topo=fattree:2,2,2 n=2000 size=uniform:1,16 class=0.5 load=0.9 seed=1",
		"name=kitchen-sink topo=broomstick:2,4,2 process=bursty:12 n=500 size=pareto:1,1.5,200 " +
			"class=0.25 load=0.85 cap=3 related=4,2,1 round=0.25 maxweight=8 " +
			"policy=srpt assigner=leastvolume eps=0.25 seed=7 aseed=9 speed=2.5 horizon=64 " +
			"packetized instrument scanqueue slices",
		"topo=star:6 unrelated=0.5,2,0.2,8,16 speeds=1,2.25,2.25 assigner=shadow",
		"process=adversarial:32 n=120 assigner=jsq",
		"topo=line:5 load=1e-3 seed=18446744073709551615",
		"topo=fattree:2,2,2 n=150 size=uniform:1,16 load=0.8 seed=11 faults=outages:4,8 recovery=redispatch instrument slices",
		"topo=star:8 n=100 size=uniform:1,4 load=0.7 faults=leafloss:2,0.5 recovery=hold",
		"topo=fattree:2,2,2 n=400 size=uniform:1,16 load=0.9 seed=3 rng=keyed fleet=4 fleetpolicy=jsq",
		"topo=star:4 n=200 size=uniform:1,8 load=0.8 seed=5 rng=legacy fleet=2 fleetpolicy=local faults=brownouts:2,5,0.5",
		"n=300 size=uniform:1,16 load=0.9 seed=9 rng=keyed trees=fattree:2,2,2;star:8;line:4 fleetpolicy=rr",
		"topo=fattree:2,1,4 n=100 size=uniform:1,4 load=0.5 fleet=3 trees=star:2;star:4;star:8",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sc, err := ParseCompact(input)
		if err != nil {
			t.Skip()
		}
		// Anything ParseCompact accepts has a compact form: inline jobs
		// and whitespace names are JSON-only and unreachable from here.
		c, err := sc.Compact()
		if err != nil {
			t.Fatalf("parsed scenario has no compact form: %v (input %q)", err, input)
		}
		back, err := ParseCompact(c)
		if err != nil {
			t.Fatalf("compact form does not re-parse: %v (form %q, input %q)", err, c, input)
		}
		if !reflect.DeepEqual(back, sc) {
			t.Fatalf("round trip changed the scenario:\n input   %q\n compact %q", input, c)
		}
		c2, err := back.Compact()
		if err != nil {
			t.Fatal(err)
		}
		if c2 != c {
			t.Fatalf("compact form is not a fixed point:\n first  %q\n second %q", c, c2)
		}
	})
}

func FuzzScenarioJSON(f *testing.F) {
	seeds := []string{
		`{"topology": "fattree:2,2,2", "workload": {"n": 2000, "size": "uniform:1,16", "class_eps": 0.5, "load": 0.9}, "seed": 1}`,
		`{"topology": "broomstick:2,3,2", "workload": {"n": 300, "size": "uniform:1,16", "load": 0.9,` +
			` "unrelated": {"lo": 0.5, "hi": 2, "p_infeasible": 0.2, "penalty": 8}, "round_eps": 0.5},` +
			` "assigner": "greedy-unrelated", "speed": {"root_adjacent": 3, "router": 4.5, "leaf": 4.5}}`,
		`{"topology": "line:2", "workload": {"n": 0, "jobs": [` +
			`{"id": 0, "release": 0, "size": 4}, {"id": 1, "release": 1, "size": 2}]},` +
			` "assigner": "closest", "engine": {"instrument": true}}`,
		`{"topology": "fattree:2,1,4", "workload": {"n": 250, "size": "uniform:1,16",` +
			` "related_speeds": [4, 2, 1, 1], "max_weight": 5}, "policy": "wsjf", "engine": {"packetized": true}}`,
		`{"topology": "fattree:2,2,2", "workload": {"n": 150, "size": "uniform:1,16", "load": 0.8}, "seed": 11,` +
			` "faults": {"plan": "brownouts:3,10,0.25", "recovery": "redispatch"}, "engine": {"instrument": true, "record_slices": true}}`,
		`{"topology": "star:4", "workload": {"n": 50, "size": "uniform:1,4", "load": 0.5},` +
			` "faults": {"events": [{"kind": "outage", "node": 2, "start": 1, "end": 3}], "recovery": "hold"}}`,
		`{"topology": "fattree:2,2,2", "workload": {"n": 400, "size": "uniform:1,16", "load": 0.9}, "seed": 3,` +
			` "rng": "keyed", "fleet": {"trees": 4, "policy": "jsq"}}`,
		`{"topology": "star:4", "workload": {"n": 200, "size": "uniform:1,8", "load": 0.8}, "seed": 5,` +
			` "fleet": {"policy": "local", "topos": ["star:2", "fattree:2,2,2"]}}`,
		// compact input through the same entry point: Load auto-detects.
		"topo=fattree:2,2,2 n=100 size=uniform:1,16 load=0.9 seed=1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		sc, err := Load([]byte(input))
		if err != nil {
			t.Skip()
		}
		// The JSON form must be a serialization fixed point: encode,
		// decode, encode again, byte-identical. (Fixed point rather than
		// DeepEqual: JSON cannot distinguish nil from empty slices, and
		// the fixed point is the property files on disk rely on.)
		var first bytes.Buffer
		if err := sc.WriteJSON(&first); err != nil {
			t.Fatalf("loaded scenario does not serialize: %v (input %q)", err, input)
		}
		back, err := ReadJSON(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("serialized form does not re-parse: %v\n%s", err, first.Bytes())
		}
		var second bytes.Buffer
		if err := back.WriteJSON(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("JSON form is not a fixed point:\n first:\n%s\n second:\n%s", first.Bytes(), second.Bytes())
		}
	})
}
