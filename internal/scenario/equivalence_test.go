package scenario

import (
	"reflect"
	"testing"

	"treesched/internal/core"
	"treesched/internal/rng"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// These tests pin the refactor's core promise: a scenario-driven run
// is byte-identical to the hand-wired construction it replaced, for
// every shape of cell the experiment grids and examples use. Each
// test wires one setup the pre-scenario way (explicit rng stream,
// explicit transforms, explicit constructors) and asserts the full
// per-job result matches.

func mustScenario(t *testing.T, sc *Scenario) *sim.Result {
	t.Helper()
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func sameRun(t *testing.T, got, want *sim.Result) {
	t.Helper()
	if got.Stats != want.Stats {
		t.Fatalf("stats diverged:\n got  %+v\n want %+v", got.Stats, want.Stats)
	}
	if !reflect.DeepEqual(got.Jobs, want.Jobs) {
		t.Fatal("per-job metrics diverged")
	}
}

func classRounded(eps float64) workload.SizeDist {
	return workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: eps}
}

// T1/T3-shaped cell: identical endpoints, uniform speed augmentation.
func TestEquivalenceIdenticalGrid(t *testing.T) {
	const seed, eps, load, n = 1234, 0.5, 0.9, 400
	base := tree.FatTree(2, 2, 2)
	trace, err := workload.Poisson(rng.New(seed), workload.GenConfig{
		N: n, Size: classRounded(eps), Load: load, Capacity: float64(len(base.RootAdjacent())),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(base.WithUniformSpeed(1+eps), trace, core.NewGreedyIdentical(eps), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	got := mustScenario(t, &Scenario{
		Topology: NewSpec("fattree", 2, 2, 2),
		Workload: Workload{N: n, Size: NewSpec("uniform", 1, 16), ClassEps: eps, Load: load},
		Assigner: "greedy-identical",
		Eps:      eps,
		Seed:     seed,
		Speed:    Speed{Uniform: 1 + eps},
	})
	sameRun(t, got, want)
}

// T6-shaped cell: unrelated endpoints, per-level speed triple, class
// rounding after the transform.
func TestEquivalenceUnrelatedTripleSpeeds(t *testing.T) {
	const seed, eps, n = 77, 0.5, 300
	base := tree.BroomstickTree(2, 3, 2)
	r := rng.New(seed)
	trace, err := workload.Poisson(r, workload.GenConfig{
		N: n, Size: classRounded(eps), Load: 0.9, Capacity: float64(len(base.RootAdjacent())),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{
		Leaves: len(base.Leaves()), Lo: 0.5, Hi: 2,
	}); err != nil {
		t.Fatal(err)
	}
	workload.RoundTraceToClasses(trace, eps)
	sped := base.WithSpeeds(2*(1+eps), 2*(1+eps)*(1+eps), 2*(1+eps)*(1+eps))
	want, err := sim.Run(sped, trace, core.NewGreedyUnrelated(eps), sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	got := mustScenario(t, &Scenario{
		Topology: NewSpec("broomstick", 2, 3, 2),
		Workload: Workload{
			N: n, Size: NewSpec("uniform", 1, 16), ClassEps: eps, Load: 0.9,
			Unrelated: &Unrelated{Lo: 0.5, Hi: 2},
			RoundEps:  eps,
		},
		Assigner: "greedy-unrelated",
		Eps:      eps,
		Seed:     seed,
		Speed:    Speed{RootAdjacent: 2 * (1 + eps), Router: 2 * (1 + eps) * (1 + eps), Leaf: 2 * (1 + eps) * (1 + eps)},
	})
	sameRun(t, got, want)
}

// B1's adversarial column: a process that ignores size law and load.
func TestEquivalenceAdversarial(t *testing.T) {
	const seed, n = 42, 120
	base := tree.FatTree(2, 2, 2)
	trace := workload.Adversarial(rng.New(seed), n, 32)
	want, err := sim.Run(base, trace, sched.JoinShortestQueue{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	got := mustScenario(t, &Scenario{
		Topology: NewSpec("fattree", 2, 2, 2),
		Workload: Workload{Process: NewSpec("adversarial", 32), N: n},
		Assigner: "jsq",
		Seed:     seed,
	})
	sameRun(t, got, want)
}

// M1's related row: per-leaf speed factors with a stateful assigner.
func TestEquivalenceRelatedMachines(t *testing.T) {
	const seed, n = 9, 250
	base := tree.FatTree(2, 1, 4)
	speeds := []float64{4, 2, 1, 1, 4, 2, 1, 1}
	trace, err := workload.Poisson(rng.New(seed), workload.GenConfig{
		N: n, Size: classRounded(0.5), Load: 0.85, Capacity: float64(len(base.RootAdjacent())),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.MakeRelated(trace, speeds); err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(base, trace, &sched.RoundRobin{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	got := mustScenario(t, &Scenario{
		Topology: NewSpec("fattree", 2, 1, 4),
		Workload: Workload{
			N: n, Size: NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.85,
			RelatedSpeeds: speeds,
		},
		Assigner: "roundrobin",
		Seed:     seed,
	})
	sameRun(t, got, want)
}

// B2-shaped cell: heavy-tailed sizes, explicit node policy.
func TestEquivalenceParetoPolicy(t *testing.T) {
	const seed, n = 5, 400
	base := tree.FatTree(2, 2, 2)
	trace, err := workload.Poisson(rng.New(seed), workload.GenConfig{
		N: n, Size: workload.ParetoSize{Min: 1, Alpha: 1.5, Cap: 200}, Load: 0.9,
		Capacity: float64(len(base.RootAdjacent())),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(base, trace, sched.LeastVolume{}, sim.Options{Policy: sim.SRPT{}})
	if err != nil {
		t.Fatal(err)
	}

	got := mustScenario(t, &Scenario{
		Topology: NewSpec("fattree", 2, 2, 2),
		Workload: Workload{N: n, Size: NewSpec("pareto", 1, 1.5, 200), Load: 0.9},
		Policy:   "srpt",
		Assigner: "leastvolume",
		Seed:     seed,
	})
	sameRun(t, got, want)
}

// The packetrouting example's first half: the packetized engine.
func TestEquivalencePacketized(t *testing.T) {
	const seed, n = 11, 200
	base := tree.Line(5)
	trace, err := workload.Poisson(rng.New(seed), workload.GenConfig{
		N: n, Size: workload.UniformSize{Lo: 2, Hi: 12}, Load: 0.6, Capacity: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.RunPacketized(base, trace, sched.ClosestLeaf{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	got := mustScenario(t, &Scenario{
		Topology: NewSpec("line", 5),
		Workload: Workload{N: n, Size: NewSpec("uniform", 2, 12), Load: 0.6},
		Assigner: "closest",
		Seed:     seed,
		Engine:   Engine{Packetized: true},
	})
	sameRun(t, got, want)
}

// The heterogeneous example's shadow run: a constructor that can fail
// and keys off the unrelated signal.
func TestEquivalenceShadow(t *testing.T) {
	const seed, n = 21, 300
	base := tree.FatTree(2, 2, 2)
	r := rng.New(seed)
	trace, err := workload.Poisson(r, workload.GenConfig{
		N: n, Size: classRounded(0.5), Load: 0.85, Capacity: float64(len(base.RootAdjacent())),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{
		Leaves: len(base.Leaves()), Lo: 0.8, Hi: 1.2, PInfeasible: 0.3, Penalty: 3,
	}); err != nil {
		t.Fatal(err)
	}
	sh, err := core.NewShadow(base, core.ShadowConfig{Eps: 0.5, Unrelated: true})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(base, trace, sh, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	got := mustScenario(t, &Scenario{
		Topology: NewSpec("fattree", 2, 2, 2),
		Workload: Workload{
			N: n, Size: NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.85,
			Unrelated: &Unrelated{Lo: 0.8, Hi: 1.2, PInfeasible: 0.3, Penalty: 3},
		},
		Assigner: "shadow",
		Seed:     seed,
	})
	sameRun(t, got, want)
}

// Randomized assigner seeding: AssignerSeed feeds rng.New verbatim.
func TestEquivalenceRandomAssigner(t *testing.T) {
	const seed, aseed, n = 3, 42, 300
	base := tree.FatTree(2, 2, 2)
	trace, err := workload.Poisson(rng.New(seed), workload.GenConfig{
		N: n, Size: classRounded(0.5), Load: 0.8, Capacity: float64(len(base.RootAdjacent())),
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(base, trace, &sched.RandomLeaf{R: rng.New(aseed)}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}

	got := mustScenario(t, &Scenario{
		Topology:     NewSpec("fattree", 2, 2, 2),
		Workload:     Workload{N: n, Size: NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.8},
		Assigner:     "random",
		Seed:         seed,
		AssignerSeed: aseed,
	})
	sameRun(t, got, want)
}

// Weighted extension: MaxWeight draws from the same stream as the
// hand-wired AssignWeights call.
func TestEquivalenceWeights(t *testing.T) {
	const seed, n = 6, 200
	r := rng.New(seed)
	want, err := workload.Poisson(r, workload.GenConfig{
		N: n, Size: workload.UniformSize{Lo: 1, Hi: 16}, Load: 0.9, Capacity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	workload.AssignWeights(r, want, 8)

	w := Workload{N: n, Size: NewSpec("uniform", 1, 16), Load: 0.9, Capacity: 2, MaxWeight: 8}
	got, err := w.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("weighted trace diverged from hand-wired construction")
	}
}
