package scenario

import (
	"bytes"
	"fmt"
	"testing"

	"treesched/internal/core"
	"treesched/internal/rng"
	"treesched/internal/sim"
)

// runKnobsOff runs sc with the dispatch fast paths force-disabled:
// epoch memoization in the Query accessors and bound pruning in the
// greedy assigners both fall back to their straight-line reference
// code. The knobs are package globals, so they are flipped only for
// the duration of this (sequentially executed) run.
func runKnobsOff(t *testing.T, sc *Scenario, shards int) (*sim.Result, error, []sim.Slice) {
	t.Helper()
	sim.DisableDispatchMemo = true
	core.DisableBoundPruning = true
	defer func() {
		sim.DisableDispatchMemo = false
		core.DisableBoundPruning = false
	}()
	return runWithShards(t, sc, shards)
}

// ndjsonBytes serializes a result the way the CLI does — stats header
// plus one compact JSON object per job — so the comparison below is a
// byte-level statement about observable output, not just struct
// equality under reflection.
func ndjsonBytes(t *testing.T, res *sim.Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteNDJSON(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	return buf.Bytes()
}

// TestDispatchKnobsDifferential is the determinism contract for the
// memoized/pruned dispatch path: across 60 randomized scenarios
// covering every state-querying assigner (greedy, shadow, jsq,
// leastvolume) under every policy, running with the fast paths
// enabled and force-disabled must produce byte-identical NDJSON
// output — the memo may only ever return the same bits a fresh
// recomputation would, and pruning may only skip candidates that
// cannot win. Both the sequential and the sharded engine are held to
// the contract, including scenarios that legitimately fail.
func TestDispatchKnobsDifferential(t *testing.T) {
	topos := []string{"fattree:4,1,2", "fattree:8,1,2", "fattree:2,2,2", "star:8", "caterpillar:4,2", "broomstick:6,2,2", "random:4,3,3"}
	policies := []string{"sjf", "fifo", "srpt", "ps", "lcfs", "wsjf"}
	assigners := []string{"greedy", "shadow", "jsq", "leastvolume"}
	faultSpecs := []string{"", "", "faults=outages:3,6", "faults=brownouts:3,6,0.5",
		"faults=leafloss:1,0.6 recovery=redispatch", "faults=leafloss:1,0.6 recovery=hold"}
	variants := []string{"", "", "split=2", "stream"}

	r := rng.New(97)
	pick := func(xs []string) string { return xs[int(r.Uint64()%uint64(len(xs)))] }
	for i := 0; i < 60; i++ {
		pol := pick(policies)
		line := fmt.Sprintf("topo=%s n=120 size=uniform:1,16 load=0.9 policy=%s assigner=%s seed=%d",
			pick(topos), pol, pick(assigners), i+101)
		if fs := pick(faultSpecs); fs != "" {
			line += " " + fs
		}
		if v := pick(variants); v != "" {
			line += " " + v
		}
		if pol == "wsjf" {
			line += " maxweight=4"
		}
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			sc, err := ParseCompact(line)
			if err != nil {
				t.Fatalf("%s: %v", line, err)
			}
			for _, shards := range []int{1, 4} {
				onRes, onErr, _ := runWithShards(t, sc, shards)
				offRes, offErr, _ := runKnobsOff(t, sc, shards)
				if onErr != nil || offErr != nil {
					if onErr == nil || offErr == nil || onErr.Error() != offErr.Error() {
						t.Fatalf("%s (shards=%d):\n  fast err %v\n  ref err  %v", line, shards, onErr, offErr)
					}
					continue
				}
				if on, off := ndjsonBytes(t, onRes), ndjsonBytes(t, offRes); !bytes.Equal(on, off) {
					t.Fatalf("%s (shards=%d): NDJSON output diverges between memoized+pruned and reference dispatch", line, shards)
				}
			}
		})
	}
}
