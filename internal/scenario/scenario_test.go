package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func TestSpecStringRoundTrip(t *testing.T) {
	cases := []struct {
		spec Spec
		want string
	}{
		{NewSpec("poisson"), "poisson"},
		{NewSpec("fattree", 2, 2, 2), "fattree:2,2,2"},
		{NewSpec("pareto", 1, 1.5, 200), "pareto:1,1.5,200"},
		{NewSpec("bimodal", 1, 100, 0.05), "bimodal:1,100,0.05"},
	}
	for _, c := range cases {
		if got := c.spec.String(); got != c.want {
			t.Fatalf("String() = %q, want %q", got, c.want)
		}
		back, err := ParseSpec(c.want)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.want, err)
		}
		if !reflect.DeepEqual(back, c.spec) {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.want, back, c.spec)
		}
	}
}

func TestParseSpecRejectsNonFinite(t *testing.T) {
	for _, s := range []string{"uniform:NaN,1", "uniform:Inf,1", "uniform:-Inf,1"} {
		if _, err := ParseSpec(s); err == nil {
			t.Fatalf("ParseSpec(%q) accepted a non-finite arg", s)
		}
	}
}

func TestRegistryLists(t *testing.T) {
	checks := []struct {
		got  []string
		want string
	}{
		{Topologies(), "fattree|star|line|caterpillar|broomstick|random"},
		{Sizes(), "uniform|bimodal|pareto"},
		{Processes(), "poisson|bursty|adversarial"},
		{Policies(), "sjf|fifo|srpt|lcfs|ps|wsjf"},
		{Assigners(), "greedy|greedy-identical|greedy-unrelated|shadow|closest|random|roundrobin|leastvolume|minpath|jsq"},
	}
	for _, c := range checks {
		if got := strings.Join(c.got, "|"); !strings.HasPrefix(got, c.want) {
			t.Fatalf("registration order = %q, want prefix %q", got, c.want)
		}
	}
}

func TestBuildTopoMatchesGenerators(t *testing.T) {
	cases := []struct {
		spec Spec
		mk   func() *tree.Tree
	}{
		{NewSpec("fattree", 2, 2, 2), func() *tree.Tree { return tree.FatTree(2, 2, 2) }},
		{NewSpec("star", 4), func() *tree.Tree { return tree.Star(4) }},
		{NewSpec("line", 3), func() *tree.Tree { return tree.Line(3) }},
		{NewSpec("caterpillar", 3, 2), func() *tree.Tree { return tree.Caterpillar(3, 2) }},
		{NewSpec("broomstick", 2, 3, 1), func() *tree.Tree { return tree.BroomstickTree(2, 3, 1) }},
	}
	for _, c := range cases {
		got, err := BuildTopo(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		want := c.mk()
		if got.NumNodes() != want.NumNodes() || len(got.Leaves()) != len(want.Leaves()) {
			t.Fatalf("%s: shape differs from direct generator", c.spec)
		}
	}
	if _, err := BuildTopo(NewSpec("fattree", 2.5, 2, 2)); err == nil {
		t.Fatal("non-integer topology arg accepted")
	}
	if _, err := BuildTopo(NewSpec("line", 0)); err == nil {
		t.Fatal("generator panic not translated to error")
	}
}

// sampleScenarios covers every compact-expressible field combination.
func sampleScenarios() []*Scenario {
	return []*Scenario{
		{},
		{Topology: NewSpec("fattree", 2, 2, 2), Workload: Workload{N: 100, Size: NewSpec("uniform", 1, 16), Load: 0.9}, Seed: 1},
		{
			Name:     "kitchen-sink",
			Topology: NewSpec("broomstick", 2, 4, 2),
			Workload: Workload{
				Process: NewSpec("bursty", 12), N: 500, Size: NewSpec("pareto", 1, 1.5, 200),
				ClassEps: 0.25, Load: 0.95, Capacity: 3,
				RelatedSpeeds: []float64{4, 2, 1, 1},
				RoundEps:      0.5, MaxWeight: 8,
			},
			Policy: "srpt", Assigner: "leastvolume", Eps: 0.25, Seed: 42, AssignerSeed: 99,
			Speed:   Speed{Uniform: 2.5},
			Horizon: 64,
			Engine:  Engine{Instrument: true, ScanQueue: true, RecordSlices: true},
		},
		{
			Topology: NewSpec("fattree", 2, 2, 2),
			Workload: Workload{
				N: 300, Size: NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.9,
				Unrelated: &Unrelated{Lo: 0.5, Hi: 2, PInfeasible: 0.2, Penalty: 8},
				RoundEps:  0.5,
			},
			Assigner: "greedy-unrelated", Eps: 0.5, Seed: 7,
			Speed: Speed{RootAdjacent: 1.5, Router: 2.25, Leaf: 2.25},
		},
		{
			Topology: NewSpec("line", 4),
			Workload: Workload{Process: NewSpec("adversarial", 32), N: 200},
			Engine:   Engine{Packetized: true},
		},
		{
			Topology: NewSpec("fattree", 2, 2, 2),
			Policy:   "srpt",
			Speed:    Speed{Uniform: 1.5},
			Engine:   Engine{Serve: true, RetainJobs: 1},
		},
	}
}

func TestCompactRoundTrip(t *testing.T) {
	for i, sc := range sampleScenarios() {
		c, err := sc.Compact()
		if err != nil {
			t.Fatalf("scenario %d: Compact: %v", i, err)
		}
		back, err := ParseCompact(c)
		if err != nil {
			t.Fatalf("scenario %d: ParseCompact(%q): %v", i, c, err)
		}
		if !reflect.DeepEqual(back, sc) {
			t.Fatalf("scenario %d round trip:\n compact %q\n got  %+v\n want %+v", i, c, back, sc)
		}
		c2, err := back.Compact()
		if err != nil || c2 != c {
			t.Fatalf("scenario %d: re-Compact = %q (%v), want %q", i, c2, err, c)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	scs := sampleScenarios()
	// Inline jobs are JSON-only.
	scs = append(scs, &Scenario{
		Topology: NewSpec("line", 2),
		Workload: Workload{Jobs: []workload.Job{
			{ID: 0, Release: 0, Size: 4},
			{ID: 1, Release: 1, Size: 2, Weight: 3},
		}},
		Engine: Engine{Instrument: true},
	})
	for i, sc := range scs {
		var buf bytes.Buffer
		if err := sc.WriteJSON(&buf); err != nil {
			t.Fatalf("scenario %d: WriteJSON: %v", i, err)
		}
		back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("scenario %d: ReadJSON: %v", i, err)
		}
		if !reflect.DeepEqual(back, sc) {
			t.Fatalf("scenario %d JSON round trip:\n got  %+v\n want %+v", i, back, sc)
		}
	}
}

func TestLoadDetectsFormat(t *testing.T) {
	sc := &Scenario{Topology: NewSpec("star", 4), Workload: Workload{N: 50, Size: NewSpec("uniform", 1, 4), Load: 0.8}, Seed: 3}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Load(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	c, err := sc.Compact()
	if err != nil {
		t.Fatal(err)
	}
	fromCompact, err := Load([]byte("  " + c + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, sc) || !reflect.DeepEqual(fromCompact, sc) {
		t.Fatalf("Load mismatch: json %+v compact %+v want %+v", fromJSON, fromCompact, sc)
	}
	if _, err := Load([]byte("   \n")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := Load([]byte(`{"nope": 1}`)); err == nil {
		t.Fatal("unknown JSON field accepted")
	}
}

func TestParseCompactErrors(t *testing.T) {
	for _, in := range []string{
		"bogus=1",
		"frobnicate",
		"n=1 n=2",
		"instrument instrument",
		"n=x",
		"eps=NaN",
		"speeds=1,2",
		"unrelated=1",
		"seed=-1",
		"name=",
	} {
		if _, err := ParseCompact(in); err == nil {
			t.Fatalf("ParseCompact(%q) accepted", in)
		}
	}
}

// The workload pipeline must reproduce the hand-wired constructions
// bit for bit: one rng stream, process → related → unrelated → round
// → weights.
func TestGenerateMatchesHandWired(t *testing.T) {
	const seed = 21
	w := Workload{
		N: 400, Size: NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.85, Capacity: 2,
		Unrelated: &Unrelated{Lo: 0.5, Hi: 2, PInfeasible: 0.2, Penalty: 8, Leaves: 8},
		RoundEps:  0.5,
	}
	got, err := w.Generate(seed)
	if err != nil {
		t.Fatal(err)
	}

	r := rng.New(seed)
	want, err := workload.Poisson(r, workload.GenConfig{
		N: 400, Size: workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: 0.5},
		Load: 0.85, Capacity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.MakeUnrelated(r, want, workload.UnrelatedConfig{
		Leaves: 8, Lo: 0.5, Hi: 2, PInfeasible: 0.2, Penalty: 8,
	}); err != nil {
		t.Fatal(err)
	}
	workload.RoundTraceToClasses(want, 0.5)

	if !reflect.DeepEqual(got, want) {
		t.Fatal("scenario-generated trace differs from hand-wired construction")
	}
}

func TestBuildDefaultsAndErrors(t *testing.T) {
	sc := &Scenario{
		Topology: NewSpec("fattree", 2, 2, 2),
		Workload: Workload{N: 50, Size: NewSpec("uniform", 1, 16), Load: 0.9},
		Seed:     1,
	}
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	if in.Opts.Policy != nil && in.Opts.Policy.Name() != "SJF" {
		t.Fatalf("default policy = %v", in.Opts.Policy.Name())
	}
	if in.Assigner.Name() != "GreedyIdentical" {
		t.Fatalf("default assigner = %q", in.Assigner.Name())
	}
	if in.Base != in.Tree {
		t.Fatal("no speed profile should leave the base tree untouched")
	}

	// Unrelated workloads flip the auto greedy variant and derive the
	// leaf count from the topology.
	scU := &Scenario{
		Topology: NewSpec("fattree", 2, 2, 2),
		Workload: Workload{
			N: 50, Size: NewSpec("uniform", 1, 16), Load: 0.9,
			Unrelated: &Unrelated{Lo: 0.5, Hi: 2},
		},
		Seed:  1,
		Speed: Speed{Uniform: 2},
	}
	inU, err := scU.Build()
	if err != nil {
		t.Fatal(err)
	}
	if inU.Assigner.Name() != "GreedyUnrelated" {
		t.Fatalf("unrelated auto assigner = %q", inU.Assigner.Name())
	}
	if n := len(inU.Trace.Jobs[0].LeafSizes); n != len(inU.Base.Leaves()) {
		t.Fatalf("derived leaf count = %d, want %d", n, len(inU.Base.Leaves()))
	}
	if scU.Workload.Unrelated.Leaves != 0 {
		t.Fatal("Build mutated the scenario's Unrelated config")
	}
	if inU.Tree == inU.Base {
		t.Fatal("uniform speed not applied")
	}

	for _, bad := range []*Scenario{
		{},
		{Topology: NewSpec("mesh", 2)},
		{Topology: NewSpec("star", 4), Workload: Workload{N: 10, Size: NewSpec("uniform", 1, 2), Load: 0.5},
			Speed: Speed{Uniform: 2, RootAdjacent: 1, Router: 1, Leaf: 1}},
		{Topology: NewSpec("star", 4), Workload: Workload{N: 10, Size: NewSpec("uniform", 1, 2), Load: 0.5},
			Policy: "edf"},
		{Topology: NewSpec("star", 4), Workload: Workload{N: 10, Size: NewSpec("uniform", 1, 2), Load: 0.5},
			Assigner: "oracle"},
		{Topology: NewSpec("star", 4), Workload: Workload{N: 10, Size: NewSpec("nope", 1, 2), Load: 0.5}},
		{Topology: NewSpec("star", 4), Workload: Workload{Process: NewSpec("nope"), N: 10, Size: NewSpec("uniform", 1, 2), Load: 0.5}},
	} {
		if _, err := bad.Build(); err == nil {
			t.Fatalf("scenario %+v built without error", bad)
		}
	}
}

// Runner.Run must reproduce a cold scenario.Run exactly, round after
// round, including for stateful assigners (rebuilt per call).
func TestRunnerMatchesColdRun(t *testing.T) {
	for _, asg := range []string{"greedy", "roundrobin", "random"} {
		sc := &Scenario{
			Topology: NewSpec("fattree", 2, 2, 2),
			Workload: Workload{N: 300, Size: NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.9},
			Assigner: asg,
			Seed:     5,
		}
		cold, err := Run(sc)
		if err != nil {
			t.Fatalf("%s: %v", asg, err)
		}
		r, err := NewRunner(sc)
		if err != nil {
			t.Fatalf("%s: %v", asg, err)
		}
		for round := 0; round < 3; round++ {
			warm, err := r.Run()
			if err != nil {
				t.Fatalf("%s round %d: %v", asg, round, err)
			}
			if warm.Stats != cold.Stats {
				t.Fatalf("%s round %d: warm stats %+v != cold %+v", asg, round, warm.Stats, cold.Stats)
			}
		}
	}
}

func TestServeScenarios(t *testing.T) {
	serve := func() *Scenario {
		return &Scenario{Topology: NewSpec("fattree", 2, 2, 2), Engine: Engine{Serve: true}}
	}

	in, err := serve().Build()
	if err != nil {
		t.Fatalf("serve Build: %v", err)
	}
	if in.Trace != nil {
		t.Fatal("serve build materialized a trace")
	}
	if in.Assigner == nil {
		t.Fatal("serve build resolved no assigner")
	}
	if _, err := in.Run(); err == nil {
		t.Fatal("Instance.Run accepted a serve scenario")
	}
	if _, err := NewRunner(serve()); err == nil {
		t.Fatal("NewRunner accepted a serve scenario")
	}

	// The daemon owns the workload: any workload spec here would be
	// silently ignored, so Build rejects it.
	gen := serve()
	gen.Workload = Workload{N: 10, Size: NewSpec("uniform", 1, 4), Load: 0.5}
	if _, err := gen.Build(); err == nil {
		t.Fatal("serve scenario with a generated workload accepted")
	}
	inline := serve()
	inline.Workload.Jobs = []workload.Job{{ID: 0, Size: 1}}
	if _, err := inline.Build(); err == nil {
		t.Fatal("serve scenario with inline jobs accepted")
	}

	// Plan-based faults scale to a trace span that does not exist
	// online; explicit events know their own times and pass through.
	planned := serve()
	planned.Faults = &FaultSpec{Plan: NewSpec("outages", 2, 5)}
	if _, err := planned.Build(); err == nil {
		t.Fatal("serve scenario with a fault plan accepted")
	}
	explicit := serve()
	explicit.Faults = &FaultSpec{Events: []faults.Event{{Kind: faults.Outage, Node: 1, Start: 0, End: 1}}}
	if in, err := explicit.Build(); err != nil {
		t.Fatalf("serve scenario with explicit fault events rejected: %v", err)
	} else if in.Opts.Faults == nil {
		t.Fatal("explicit fault events not compiled into Opts")
	}

	pk := serve()
	pk.Engine.Packetized = true
	if _, err := pk.Build(); err == nil {
		t.Fatal("serve+packetized accepted")
	}
}
