package scenario

import (
	"bytes"
	"reflect"
	"testing"

	"treesched/internal/faults"
	"treesched/internal/sim"
)

// faultySample is a full faulty scenario cell: seeded plan, redispatch
// recovery, instrumentation on so Drain audits the schedule.
func faultySample() *Scenario {
	return &Scenario{
		Name:     "faulty",
		Topology: NewSpec("fattree", 2, 2, 2),
		Workload: Workload{N: 150, Size: NewSpec("uniform", 1, 16), Load: 0.8},
		Seed:     11,
		Faults: &FaultSpec{
			Plan:     NewSpec("outages", 4, 8),
			Recovery: "redispatch",
		},
		Engine: Engine{Instrument: true, RecordSlices: true},
	}
}

func TestFaultSpecRoundTrip(t *testing.T) {
	sc := faultySample()
	c, err := sc.Compact()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseCompact(c)
	if err != nil {
		t.Fatalf("ParseCompact(%q): %v", c, err)
	}
	if !reflect.DeepEqual(back, sc) {
		t.Fatalf("compact round trip:\n compact %q\n got  %+v\n want %+v", c, back, sc)
	}

	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSON, sc) {
		t.Fatalf("JSON round trip:\n got  %+v\n want %+v", fromJSON, sc)
	}
}

func TestFaultSpecInlineEventsJSONOnly(t *testing.T) {
	sc := faultySample()
	sc.Faults = &FaultSpec{Events: []faults.Event{
		{Kind: faults.Outage, Node: 1, Start: 2, End: 4},
		{Kind: faults.Brownout, Node: 2, Start: 1, End: 3, Factor: 0.5},
	}}
	if _, err := sc.Compact(); err == nil {
		t.Fatal("inline fault events got a compact form")
	}
	var buf bytes.Buffer
	if err := sc.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, sc) {
		t.Fatalf("JSON round trip with events:\n got  %+v\n want %+v", back, sc)
	}
}

func TestFaultBuildErrors(t *testing.T) {
	for name, mut := range map[string]func(*Scenario){
		"unknown plan": func(sc *Scenario) { sc.Faults.Plan = NewSpec("meteor", 3) },
		"wrong arity":  func(sc *Scenario) { sc.Faults.Plan = NewSpec("outages", 3) },
		"bad recovery": func(sc *Scenario) { sc.Faults.Recovery = "pray" },
		"empty spec":   func(sc *Scenario) { sc.Faults = &FaultSpec{} },
		"plan and events": func(sc *Scenario) {
			sc.Faults.Events = []faults.Event{{Kind: faults.Outage, Node: 1, Start: 0, End: 1}}
		},
		"no survivor":         func(sc *Scenario) { sc.Faults.Plan = NewSpec("leafloss", 8, 0.5) },
		"zero duration":       func(sc *Scenario) { sc.Faults.Plan = NewSpec("outages", 3, 0) },
		"bad brownout factor": func(sc *Scenario) { sc.Faults.Plan = NewSpec("brownouts", 3, 8, 1.5) },
		"invalid event": func(sc *Scenario) {
			sc.Faults.Plan = Spec{}
			sc.Faults.Events = []faults.Event{{Kind: faults.LeafLoss, Node: 1, Start: 0}}
		},
	} {
		sc := faultySample()
		mut(sc)
		if _, err := sc.Build(); err == nil {
			t.Errorf("%s: Build accepted", name)
		}
	}
}

// A seeded faulty scenario is bit-for-bit reproducible: building the
// same JSON twice yields identical traces, plans and schedules.
func TestFaultScenarioReproducible(t *testing.T) {
	run := func() (*Instance, *sim.Result) {
		t.Helper()
		var buf bytes.Buffer
		if err := faultySample().WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		sc, err := ReadJSON(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		in, err := sc.Build()
		if err != nil {
			t.Fatal(err)
		}
		res, err := in.Run()
		if err != nil {
			t.Fatal(err)
		}
		return in, res
	}
	in1, res1 := run()
	in2, res2 := run()
	if !reflect.DeepEqual(in1.Trace, in2.Trace) {
		t.Fatal("traces differ across builds of the same JSON")
	}
	if in1.FaultPlan == nil || !reflect.DeepEqual(in1.FaultPlan, in2.FaultPlan) {
		t.Fatalf("fault plans differ: %+v vs %+v", in1.FaultPlan, in2.FaultPlan)
	}
	if res1.Stats != res2.Stats {
		t.Fatalf("stats differ: %+v vs %+v", res1.Stats, res2.Stats)
	}
	if !reflect.DeepEqual(res1.Sim.Slices(), res2.Sim.Slices()) {
		t.Fatal("slices differ across identical faulty runs")
	}
	if !reflect.DeepEqual(res1.Sim.Migrations(), res2.Sim.Migrations()) {
		t.Fatal("migrations differ across identical faulty runs")
	}
	if res1.Stats.Completed != 150 {
		t.Fatalf("completed %d/150 under redispatch", res1.Stats.Completed)
	}
	// Instrument+RecordSlices means Drain already audited; a clean
	// return is a conformance pass on the faulty schedule.
	if rep := res1.Sim.Audit(); !rep.OK() {
		t.Fatalf("faulty schedule failed audit: %s", rep.Summary())
	}
}

// The fault plan draws after workload generation from the same
// stream, so adding faults must not change the trace.
func TestFaultPlanDoesNotPerturbTrace(t *testing.T) {
	faulty := faultySample()
	clean := faultySample()
	clean.Faults = nil
	inF, err := faulty.Build()
	if err != nil {
		t.Fatal(err)
	}
	inC, err := clean.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(inF.Trace, inC.Trace) {
		t.Fatal("fault plan perturbed the workload trace")
	}
	if inC.FaultPlan != nil || inC.Opts.Faults != nil {
		t.Fatal("fault-free build carries fault state")
	}
}

// Each builtin generator produces a plan that validates against its
// tree and respects its own envelope.
func TestBuiltinFaultPlans(t *testing.T) {
	base := faultySample()
	for _, spec := range []Spec{
		NewSpec("outages", 6, 10),
		NewSpec("brownouts", 6, 10, 0.25),
		NewSpec("leafloss", 2, 0.5),
	} {
		sc := faultySample()
		sc.Faults = &FaultSpec{Plan: spec, Recovery: "redispatch"}
		in, err := sc.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.String(), err)
		}
		want := int(spec.Args[0])
		if got := len(in.FaultPlan.Events); got != want {
			t.Fatalf("%s: %d events, want %d", spec.String(), got, want)
		}
		if err := in.FaultPlan.Validate(in.Tree); err != nil {
			t.Fatalf("%s: generated invalid plan: %v", spec.String(), err)
		}
		res, err := in.Run()
		if err != nil {
			t.Fatalf("%s: run: %v", spec.String(), err)
		}
		if res.Stats.Completed != base.Workload.N {
			t.Fatalf("%s: completed %d/%d", spec.String(), res.Stats.Completed, base.Workload.N)
		}
	}
	// leafloss places all deaths at the same instant on distinct leaves.
	sc := faultySample()
	sc.Faults = &FaultSpec{Plan: NewSpec("leafloss", 3, 0.25), Recovery: "redispatch"}
	in, err := sc.Build()
	if err != nil {
		t.Fatal(err)
	}
	nodes := map[int]bool{}
	for _, e := range in.FaultPlan.Events {
		if e.Kind != faults.LeafLoss {
			t.Fatalf("leafloss plan produced %s", e.Kind)
		}
		if e.Start != in.FaultPlan.Events[0].Start {
			t.Fatalf("leafloss deaths not simultaneous: %v", in.FaultPlan.Events)
		}
		if nodes[int(e.Node)] {
			t.Fatalf("leafloss repeated leaf %d", e.Node)
		}
		nodes[int(e.Node)] = true
	}
}
