package scenario

import (
	"fmt"
	"reflect"
	"testing"

	"treesched/internal/rng"
	"treesched/internal/sim"
)

// TestShardedScenarioEquivalence is the property test for the
// subtree-sharded engine: across ~100 randomized scenarios (topology ×
// policy × assigner × fault plan × engine variant × seed) the sharded
// engine must reproduce the sequential engine bit for bit — per-job
// metrics, summary stats, slice logs, and even error strings for runs
// that legitimately fail (leaf loss under hold). The assigner pool
// includes the state-querying dispatchers (greedy, shadow, jsq,
// leastvolume), so parallel querying dispatch is covered alongside
// oblivious replay; the engine variants mix in the streaming pipeline
// and sub-shard splitting. Each case also runs a sequential reference
// with the dispatch memo and bound pruning force-disabled, pinning
// the fast paths to the straight-line code bit for bit. Under
// `go test -race` this doubles as the data-race stress for the
// worker pool.
func TestShardedScenarioEquivalence(t *testing.T) {
	topos := []string{"fattree:4,1,2", "fattree:8,1,2", "fattree:2,2,2", "star:8", "caterpillar:4,2", "broomstick:6,2,2", "random:4,3,3"}
	policies := []string{"sjf", "fifo", "srpt", "ps", "lcfs", "wsjf"}
	assigners := []string{"greedy", "shadow", "roundrobin", "random", "closest", "leastvolume", "minpath", "jsq"}
	faultSpecs := []string{"", "", "faults=outages:3,6", "faults=brownouts:3,6,0.5",
		"faults=leafloss:1,0.6 recovery=redispatch", "faults=leafloss:1,0.6 recovery=hold"}
	variants := []string{"", "", "split=2", "stream", "stream split=3"}

	r := rng.New(42)
	pick := func(xs []string) string { return xs[int(r.Uint64()%uint64(len(xs)))] }
	for i := 0; i < 100; i++ {
		pol := pick(policies)
		line := fmt.Sprintf("topo=%s n=120 size=uniform:1,16 load=0.85 policy=%s assigner=%s seed=%d",
			pick(topos), pol, pick(assigners), i+1)
		if fs := pick(faultSpecs); fs != "" {
			line += " " + fs
		}
		if v := pick(variants); v != "" {
			line += " " + v
		}
		if pol == "wsjf" {
			line += " maxweight=4"
		}
		if pol != "ps" {
			line += " slices"
		}
		t.Run(fmt.Sprintf("case%02d", i), func(t *testing.T) {
			sc, err := ParseCompact(line)
			if err != nil {
				t.Fatalf("%s: %v", line, err)
			}
			seqRes, seqErr, seqSlices := runWithShards(t, sc, 1)
			parRes, parErr, parSlices := runWithShards(t, sc, 4)
			refRes, refErr, refSlices := runKnobsOff(t, sc, 1)
			switch {
			case seqErr != nil || parErr != nil || refErr != nil:
				if seqErr == nil || parErr == nil || refErr == nil ||
					seqErr.Error() != parErr.Error() || seqErr.Error() != refErr.Error() {
					t.Fatalf("%s:\n  seq err %v\n  par err %v\n  ref err %v", line, seqErr, parErr, refErr)
				}
			case !reflect.DeepEqual(seqRes.Jobs, parRes.Jobs):
				t.Fatalf("%s: per-job metrics diverge", line)
			case seqRes.Stats != parRes.Stats:
				t.Fatalf("%s:\n  seq %+v\n  par %+v", line, seqRes.Stats, parRes.Stats)
			case !reflect.DeepEqual(seqSlices, parSlices):
				t.Fatalf("%s: slice logs diverge (%d vs %d)", line, len(seqSlices), len(parSlices))
			case !reflect.DeepEqual(seqRes.Jobs, refRes.Jobs) || seqRes.Stats != refRes.Stats:
				t.Fatalf("%s: memoized dispatch diverges from knobs-disabled reference", line)
			case !reflect.DeepEqual(seqSlices, refSlices):
				t.Fatalf("%s: slice logs diverge from knobs-disabled reference", line)
			}
		})
	}
}

// runWithShards runs sc once warm (Reset + rerun) with the given shard
// worker count and returns the second run's outcome, so the warm-reset
// path of the sharded engine is exercised too.
func runWithShards(t *testing.T, sc *Scenario, shards int) (*sim.Result, error, []sim.Slice) {
	t.Helper()
	c := *sc
	c.Engine.Shards = shards
	r, err := NewRunner(&c)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res, runErr := r.Run()
	res2, runErr2 := r.Run()
	if (runErr == nil) != (runErr2 == nil) {
		t.Fatalf("warm rerun changed outcome: %v vs %v", runErr, runErr2)
	}
	if runErr2 != nil {
		return nil, runErr2, nil
	}
	if !reflect.DeepEqual(res.Jobs, res2.Jobs) || res.Stats != res2.Stats {
		t.Fatalf("warm rerun (shards=%d) is not reproducible", shards)
	}
	var slices []sim.Slice
	if c.Engine.RecordSlices {
		slices = append(slices, r.Sim().Slices()...)
	}
	return res2, nil, slices
}
