package lp

import (
	"fmt"
	"math"

	"treesched/internal/tree"
	"treesched/internal/workload"
)

// Instance is a built time-indexed LP for a scheduling instance,
// with the variable indexing retained so solutions can be inspected.
type Instance struct {
	Problem *Problem
	Tree    *tree.Tree
	Trace   *workload.Trace
	// Horizon is the number of unit time slots.
	Horizon int
	// nodes lists the processing nodes (everything but the root) in
	// variable-index order.
	nodes []tree.NodeID
	// nodePos maps node ID -> position in nodes.
	nodePos map[tree.NodeID]int
}

// VarIndex returns the LP variable index of x_{v,j,t}.
func (in *Instance) VarIndex(v tree.NodeID, j, t int) int {
	np, ok := in.nodePos[v]
	if !ok {
		panic(fmt.Sprintf("lp: node %d has no variables (root?)", v))
	}
	return (np*len(in.Trace.Jobs)+j)*in.Horizon + t
}

// Build constructs the paper's LP-Primal (Section 2) with unit time
// slots over the given horizon:
//
//	min  Σ_j ( Σ_{v∈L∪R} Σ_t x_{v,j,t}·(t−r_j)/p_{j,v}
//	          + Σ_{v∈L} Σ_t x_{v,j,t}·η_{j,v}/p_{j,v} )
//	s.t. (1) Σ_j x_{v,j,t} ≤ 1                         ∀v, t
//	     (2) Σ_{v∈L} Σ_{t≥r_j} x_{v,j,t}/p_{j,v} ≥ 1    ∀j
//	     (3) Σ_{t'≤t} x_{v,j,t'}/p_{j,v} ≥
//	         Σ_{t'≤t} Σ_{v'∈c(v)} x_{v',j,t'}/p_{j,v'}  ∀ non-leaf v, j, t
//	     x ≥ 0, x_{v,j,t} = 0 for t < r_j
//
// η_{j,v} is the total processing the job needs from the root down to
// v. Variables with t < ceil(r_j) are simply not generated (fixed 0).
// The horizon must be large enough for a feasible schedule; Build
// picks one automatically if horizon <= 0 (sum of all path-maximal
// work plus the last release, a crude but safe bound).
//
// The LP's optimum is a lower bound on 3× the optimal total flow time
// (each of the three objective components is individually a lower
// bound on OPT; see OPTLowerBound).
func Build(t *tree.Tree, trace *workload.Trace, horizon int) (*Instance, error) {
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	if horizon <= 0 {
		var total float64
		for i := range trace.Jobs {
			j := &trace.Jobs[i]
			worst := 0.0
			for _, v := range t.Leaves() {
				w := float64(t.Depth(v)-1)*j.Size + j.LeafSize(t.LeafIndex(v))
				if w > worst {
					worst = w
				}
			}
			total += worst
		}
		horizon = int(math.Ceil(trace.Span() + total))
	}
	in := &Instance{Tree: t, Trace: trace, Horizon: horizon, nodePos: make(map[tree.NodeID]int)}
	for id := tree.NodeID(1); int(id) < t.NumNodes(); id++ {
		in.nodePos[id] = len(in.nodes)
		in.nodes = append(in.nodes, id)
	}
	n := len(in.nodes) * len(trace.Jobs) * horizon
	p := NewProblem(n)
	in.Problem = p

	// sizeOn(v, j): processing requirement of job j on node v.
	sizeOn := func(v tree.NodeID, j *workload.Job) float64 {
		if t.IsLeaf(v) {
			return j.LeafSize(t.LeafIndex(v))
		}
		return j.Size
	}
	isRootAdj := func(v tree.NodeID) bool { return t.Depth(v) == 1 }
	release := func(j *workload.Job) int { return int(math.Ceil(j.Release)) }

	// Objective.
	for ji := range trace.Jobs {
		j := &trace.Jobs[ji]
		for _, v := range in.nodes {
			if !t.IsLeaf(v) && !isRootAdj(v) {
				continue
			}
			pjv := sizeOn(v, j)
			var eta float64
			if t.IsLeaf(v) {
				eta = float64(t.Depth(v)-1)*j.Size + pjv
			}
			for tt := release(j); tt < horizon; tt++ {
				idx := in.VarIndex(v, ji, tt)
				p.C[idx] += (float64(tt) - j.Release) / pjv
				if t.IsLeaf(v) {
					p.C[idx] += eta / pjv
				}
			}
		}
	}

	// (1) Node capacity per slot: a node processes at most speed_v
	// units of work per unit slot (1 for the speed-1 adversary; the
	// Theorem 4 experiment builds LPs on augmented trees).
	for _, v := range in.nodes {
		for tt := 0; tt < horizon; tt++ {
			coefs := make(map[int]float64)
			for ji := range trace.Jobs {
				if tt >= release(&trace.Jobs[ji]) {
					coefs[in.VarIndex(v, ji, tt)] = 1
				}
			}
			if len(coefs) > 0 {
				p.AddConstraint(coefs, LE, t.Speed(v))
			}
		}
	}

	// (2) Full processing on leaves.
	for ji := range trace.Jobs {
		j := &trace.Jobs[ji]
		coefs := make(map[int]float64)
		for _, v := range t.Leaves() {
			pjv := sizeOn(v, j)
			for tt := release(j); tt < horizon; tt++ {
				coefs[in.VarIndex(v, ji, tt)] = 1 / pjv
			}
		}
		p.AddConstraint(coefs, GE, 1)
	}

	// (3) Precedence down the tree (prefix fractions).
	for _, v := range in.nodes {
		if t.IsLeaf(v) {
			continue
		}
		pv := 0.0
		for ji := range trace.Jobs {
			j := &trace.Jobs[ji]
			pv = sizeOn(v, j)
			for tt := release(j); tt < horizon; tt++ {
				coefs := make(map[int]float64)
				for tp := release(j); tp <= tt; tp++ {
					coefs[in.VarIndex(v, ji, tp)] += 1 / pv
					for _, c := range t.Children(v) {
						coefs[in.VarIndex(c, ji, tp)] -= 1 / sizeOn(c, j)
					}
				}
				p.AddConstraint(coefs, GE, 0)
			}
		}
	}
	return in, nil
}

// Solve solves the built instance.
func (in *Instance) Solve() (*Solution, error) { return in.Problem.Solve() }

// OPTLowerBound converts the LP optimum into a valid lower bound on
// the optimal total flow time: the objective is the sum of three
// terms (leaf fractional age, root-adjacent fractional age, and total
// path work), each individually a lower bound on OPT, so OPT ≥ LP*/3.
func OPTLowerBound(lpOpt float64) float64 { return lpOpt / 3 }
