package lp

import (
	"errors"
	"math"
	"testing"

	"treesched/internal/lowerbound"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v", what, got, want)
	}
}

// min -x-y st x+2y<=4, 3x+y<=6 -> opt at (1.6,1.2), obj -2.8.
func TestSimplexBasicLE(t *testing.T) {
	p := NewProblem(2)
	p.C[0], p.C[1] = -1, -1
	p.AddConstraint(map[int]float64{0: 1, 1: 2}, LE, 4)
	p.AddConstraint(map[int]float64{0: 3, 1: 1}, LE, 6)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, -2.8, 1e-7, "objective")
	approx(t, sol.X[0], 1.6, 1e-7, "x")
	approx(t, sol.X[1], 1.2, 1e-7, "y")
}

// min x+y st x+y>=3, x<=1 -> obj 3 with x<=1.
func TestSimplexGE(t *testing.T) {
	p := NewProblem(2)
	p.C[0], p.C[1] = 1, 1
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, 3)
	p.AddConstraint(map[int]float64{0: 1}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 3, 1e-7, "objective")
}

func TestSimplexEquality(t *testing.T) {
	// min 2x+3y st x+y=4, x-y=0 -> x=y=2, obj 10.
	p := NewProblem(2)
	p.C[0], p.C[1] = 2, 3
	p.AddConstraint(map[int]float64{0: 1, 1: 1}, EQ, 4)
	p.AddConstraint(map[int]float64{0: 1, 1: -1}, EQ, 0)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.Objective, 10, 1e-7, "objective")
	approx(t, sol.X[0], 2, 1e-7, "x")
}

func TestSimplexNegativeRHS(t *testing.T) {
	// min x st -x <= -5  (i.e. x >= 5).
	p := NewProblem(1)
	p.C[0] = 1
	p.AddConstraint(map[int]float64{0: -1}, LE, -5)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.X[0], 5, 1e-7, "x")
}

func TestSimplexInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.C[0] = 1
	p.AddConstraint(map[int]float64{0: 1}, LE, 1)
	p.AddConstraint(map[int]float64{0: 1}, GE, 2)
	if _, err := p.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.C[0] = -1
	p.AddConstraint(map[int]float64{0: -1}, LE, 0)
	if _, err := p.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// Classic degenerate vertex; Bland fallback must terminate.
	p := NewProblem(3)
	p.C = []float64{-0.75, 150, -0.02}
	p.AddConstraint(map[int]float64{0: 0.25, 1: -60, 2: -0.04}, LE, 0)
	p.AddConstraint(map[int]float64{0: 0.5, 1: -90, 2: -0.02}, LE, 0)
	p.AddConstraint(map[int]float64{2: 1}, LE, 1)
	sol, err := p.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective > -0.04 {
		t.Fatalf("objective = %v, want improvement below 0", sol.Objective)
	}
}

func TestSimplexBadVarIndex(t *testing.T) {
	p := NewProblem(1)
	p.AddConstraint(map[int]float64{5: 1}, LE, 1)
	if _, err := p.Solve(); err == nil {
		t.Fatal("accepted out-of-range variable")
	}
}

// A single unit job on a star: LP should schedule it as early as
// possible. Verify the LP optimum against the hand-computed value.
func TestBuildSingleJob(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 1}}}
	in, err := Build(tr, trace, 6)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// The slotted relaxation's prefix constraint (3) is inclusive, so
	// the leaf may run in the same slot as the relay: both ages are 0
	// and only the η term (2/1) remains. LP* = 2 — strictly below the
	// integral schedule's objective of 3, as a relaxation should be.
	approx(t, sol.Objective, 2, 1e-6, "LP optimum")
}

// The LP lower bound must hold against every simulated schedule, and
// should be consistent with the combinatorial bounds.
func TestLPBoundVsSchedules(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 1, Size: 1},
		{ID: 2, Release: 2, Size: 2},
	}}
	in, err := Build(tr, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	lb := OPTLowerBound(sol.Objective)
	if lb <= 0 {
		t.Fatal("vacuous LP bound")
	}
	res, err := sim.Run(tr, trace, sched.LeastVolume{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalFlow < lb-1e-6 {
		t.Fatalf("schedule flow %v below LP bound %v", res.Stats.TotalFlow, lb)
	}
	comb := lowerbound.Best(tr, trace)
	if res.Stats.TotalFlow < comb-1e-6 {
		t.Fatalf("schedule flow %v below combinatorial bound %v", res.Stats.TotalFlow, comb)
	}
	t.Logf("LP/3 bound %.3f, combinatorial %.3f, achieved %.3f", lb, comb, res.Stats.TotalFlow)
}

// LP relaxation value never exceeds 3x any feasible schedule cost, and
// the x variables satisfy the capacity constraints.
func TestLPSolutionFeasibility(t *testing.T) {
	tr := tree.BroomstickTree(1, 2, 2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 1},
		{ID: 1, Release: 0.5, Size: 2},
	}}
	in, err := Build(tr, trace, 12)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := in.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// Capacity per node-slot.
	for id := tree.NodeID(1); int(id) < tr.NumNodes(); id++ {
		for tt := 0; tt < in.Horizon; tt++ {
			var used float64
			for ji := range trace.Jobs {
				if tt >= int(math.Ceil(trace.Jobs[ji].Release)) {
					used += sol.X[in.VarIndex(id, ji, tt)]
				}
			}
			if used > 1+1e-6 {
				t.Fatalf("node %d slot %d over capacity: %v", id, tt, used)
			}
		}
	}
	// Completion constraint.
	for ji := range trace.Jobs {
		j := &trace.Jobs[ji]
		var frac float64
		for _, v := range tr.Leaves() {
			for tt := int(math.Ceil(j.Release)); tt < in.Horizon; tt++ {
				frac += sol.X[in.VarIndex(v, ji, tt)] / j.LeafSize(tr.LeafIndex(v))
			}
		}
		if frac < 1-1e-6 {
			t.Fatalf("job %d only %v processed on leaves", ji, frac)
		}
	}
}

func TestBuildAutoHorizon(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 2}}}
	in, err := Build(tr, trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	if in.Horizon < 4 {
		t.Fatalf("auto horizon %d too small", in.Horizon)
	}
	if _, err := in.Solve(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsInvalidTrace(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 3, Release: 0, Size: 1}}}
	if _, err := Build(tr, trace, 5); err == nil {
		t.Fatal("accepted invalid trace")
	}
}

// Node speeds act as per-slot capacities: augmenting every node can
// only lower the LP optimum, and a uniformly faster tree strictly
// helps a congested instance.
func TestBuildRespectsSpeeds(t *testing.T) {
	base := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
	}}
	slow, err := Build(base, trace, 12)
	if err != nil {
		t.Fatal(err)
	}
	sSlow, err := slow.Solve()
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Build(base.WithUniformSpeed(2), trace, 12)
	if err != nil {
		t.Fatal(err)
	}
	sFast, err := fast.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if sFast.Objective >= sSlow.Objective {
		t.Fatalf("doubling speeds did not lower LP*: %v -> %v", sSlow.Objective, sFast.Objective)
	}
}
