package lp

import (
	"testing"

	"treesched/internal/core"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// Weak duality, machine-checked across two independent components:
// the dual solution constructed by core.RunDualFit (the paper's
// Section 3.5 assignment) must have objective value at most the LP
// optimum computed by the simplex on the same instance.
func TestDualFitBelowLPOptimum(t *testing.T) {
	tr := tree.BroomstickTree(1, 2, 2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 1},
		{ID: 1, Release: 0.5, Size: 2},
		{ID: 2, Release: 1, Size: 1},
		{ID: 3, Release: 3, Size: 4},
	}}
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		rep, err := core.RunDualFit(tr, trace, eps)
		if err != nil {
			t.Fatal(err)
		}
		if rep.C4Violations != 0 || rep.C5Violations != 0 {
			t.Fatalf("eps=%v: dual infeasible (C4=%d C5=%d)", eps, rep.C4Violations, rep.C5Violations)
		}
		in, err := Build(tr, trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := in.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if rep.DualObjective > sol.Objective+1e-6 {
			t.Fatalf("eps=%v: dual objective %v exceeds LP* %v — weak duality violated",
				eps, rep.DualObjective, sol.Objective)
		}
		t.Logf("eps=%v: dual %.4f <= LP* %.4f (gap %.1f%%)",
			eps, rep.DualObjective, sol.Objective, 100*(1-rep.DualObjective/sol.Objective))
	}
}

// The three lower bounds must be mutually consistent on a batch of
// small random-ish instances: every bound below the portfolio cost,
// dual below LP*.
func TestBoundHierarchy(t *testing.T) {
	instances := []*workload.Trace{
		{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 2}, {ID: 1, Release: 1, Size: 1}}},
		{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 3}, {ID: 1, Release: 0.25, Size: 1}, {ID: 2, Release: 2, Size: 2}}},
		{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 1}, {ID: 1, Release: 0.1, Size: 1}, {ID: 2, Release: 0.2, Size: 1}, {ID: 3, Release: 0.3, Size: 1}}},
	}
	tr := tree.BroomstickTree(1, 2, 1)
	for i, trace := range instances {
		rep, err := core.RunDualFit(tr, trace, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		in, err := Build(tr, trace, 0)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := in.Solve()
		if err != nil {
			t.Fatal(err)
		}
		if rep.DualObjective > sol.Objective+1e-6 {
			t.Fatalf("instance %d: dual %v > LP* %v", i, rep.DualObjective, sol.Objective)
		}
	}
}
