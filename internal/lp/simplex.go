// Package lp provides a dense two-phase primal simplex solver (pure
// Go, stdlib only) and a builder for the paper's time-indexed linear
// programming relaxation (LP-Primal, Section 2). Solving the LP on
// small instances yields a true lower bound on the optimal fractional
// flow time, against which the experiments report competitive ratios.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// ConstraintKind distinguishes ≤, ≥ and = rows.
type ConstraintKind uint8

const (
	// LE is a ≤ constraint.
	LE ConstraintKind = iota
	// GE is a ≥ constraint.
	GE
	// EQ is an equality constraint.
	EQ
)

// Constraint is one row: Coefs·x (kind) RHS. Coefs is sparse: index →
// coefficient.
type Constraint struct {
	Coefs map[int]float64
	Kind  ConstraintKind
	RHS   float64
}

// Problem is min C·x subject to the constraints, x ≥ 0.
type Problem struct {
	NumVars     int
	C           []float64
	Constraints []Constraint
}

// NewProblem allocates a minimization problem with n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, C: make([]float64, n)}
}

// AddConstraint appends a row. The coefficient map is retained.
func (p *Problem) AddConstraint(coefs map[int]float64, kind ConstraintKind, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Coefs: coefs, Kind: kind, RHS: rhs})
}

// Solution is an optimal basic feasible solution.
type Solution struct {
	X         []float64
	Objective float64
	// Iterations counts simplex pivots across both phases.
	Iterations int
}

// ErrInfeasible is returned when no feasible point exists.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

const lpEps = 1e-9

// Solve runs two-phase primal simplex on the problem.
func (p *Problem) Solve() (*Solution, error) {
	return p.solve(2_000_000)
}

// solve with an iteration cap (a safety net; Bland's rule prevents
// cycling so the cap only trips on pathological sizes).
func (p *Problem) solve(maxIters int) (*Solution, error) {
	m := len(p.Constraints)
	// Standard form: every row becomes an equality with slack (LE),
	// surplus (GE) or nothing (EQ); artificials are added where the
	// slack cannot seed the basis (GE and EQ rows). Rows with a
	// negative RHS are negated first, which flips LE and GE, so count
	// slack and artificial columns from the *effective* kinds.
	effKind := make([]ConstraintKind, m)
	for i, c := range p.Constraints {
		k := c.Kind
		if c.RHS < 0 {
			switch k {
			case LE:
				k = GE
			case GE:
				k = LE
			}
		}
		effKind[i] = k
	}
	nSlack := 0
	for _, k := range effKind {
		if k != EQ {
			nSlack++
		}
	}
	nArt := 0
	for _, k := range effKind {
		if k != LE {
			nArt++
		}
	}
	// Column layout: [vars | slacks | artificials | RHS].
	n := p.NumVars + nSlack + nArt
	tab := make([][]float64, m+1) // last row: objective
	for i := range tab {
		tab[i] = make([]float64, n+1)
	}
	basis := make([]int, m)

	slackAt, artAt := p.NumVars, p.NumVars+nSlack
	for i, c := range p.Constraints {
		row := tab[i]
		for j, v := range c.Coefs {
			if j < 0 || j >= p.NumVars {
				return nil, fmt.Errorf("lp: constraint %d references variable %d of %d", i, j, p.NumVars)
			}
			row[j] = v
		}
		row[n] = c.RHS
		// Normalize to non-negative RHS; effKind already reflects the flip.
		if row[n] < 0 {
			for j := 0; j <= n; j++ {
				row[j] = -row[j]
			}
		}
		switch effKind[i] {
		case LE:
			row[slackAt] = 1
			basis[i] = slackAt
			slackAt++
		case GE:
			row[slackAt] = -1
			slackAt++
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		case EQ:
			row[artAt] = 1
			basis[i] = artAt
			artAt++
		}
	}
	// The original Kind field may have been flipped above without
	// updating slack/artificial counts; recount to verify layout.
	if slackAt > p.NumVars+nSlack || artAt > n {
		return nil, errors.New("lp: internal layout error")
	}

	iters := 0
	// Phase 1: minimize the sum of artificials.
	if nArt > 0 {
		obj := tab[m]
		for j := range obj {
			obj[j] = 0
		}
		for j := p.NumVars + nSlack; j < n; j++ {
			obj[j] = 1
		}
		// Price out the artificial basis.
		for i, b := range basis {
			if b >= p.NumVars+nSlack {
				for j := 0; j <= n; j++ {
					obj[j] -= tab[i][j]
				}
			}
		}
		it, err := runSimplex(tab, basis, n, maxIters)
		iters += it
		if err != nil {
			return nil, err
		}
		if -tab[m][n] > 1e-6 {
			return nil, ErrInfeasible
		}
		// Drive any lingering artificials out of the basis.
		for i, b := range basis {
			if b < p.NumVars+nSlack {
				continue
			}
			pivoted := false
			for j := 0; j < p.NumVars+nSlack; j++ {
				if math.Abs(tab[i][j]) > lpEps {
					pivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; leave the artificial at value 0.
				_ = i
			}
		}
	}

	// Phase 2: the real objective. Artificial columns are frozen by
	// giving them prohibitive cost... simpler: zero their columns so
	// they can never re-enter with a negative reduced cost.
	for i := 0; i <= m; i++ {
		for j := p.NumVars + nSlack; j < n; j++ {
			if i < m && basis[i] == j {
				continue
			}
			tab[i][j] = 0
		}
	}
	obj := tab[m]
	for j := 0; j <= n; j++ {
		obj[j] = 0
	}
	for j := 0; j < p.NumVars; j++ {
		obj[j] = p.C[j]
	}
	// Price out the current basis.
	for i, b := range basis {
		if obj[b] != 0 {
			coef := obj[b]
			for j := 0; j <= n; j++ {
				obj[j] -= coef * tab[i][j]
			}
		}
	}
	it, err := runSimplex(tab, basis, n, maxIters)
	iters += it
	if err != nil {
		return nil, err
	}

	sol := &Solution{X: make([]float64, p.NumVars), Iterations: iters}
	for i, b := range basis {
		if b < p.NumVars {
			sol.X[b] = tab[i][n]
		}
	}
	for j := 0; j < p.NumVars; j++ {
		sol.Objective += p.C[j] * sol.X[j]
	}
	return sol, nil
}

// runSimplex pivots to optimality using Dantzig's rule with a Bland
// fallback after stalling, returning the pivot count.
func runSimplex(tab [][]float64, basis []int, n, maxIters int) (int, error) {
	m := len(basis)
	obj := tab[m]
	iters := 0
	stalled := 0
	for {
		if iters >= maxIters {
			return iters, errors.New("lp: iteration limit exceeded")
		}
		// Entering column.
		col := -1
		if stalled < 50 {
			best := -lpEps
			for j := 0; j < n; j++ {
				if obj[j] < best {
					best, col = obj[j], j
				}
			}
		} else {
			// Bland's rule: first negative reduced cost.
			for j := 0; j < n; j++ {
				if obj[j] < -lpEps {
					col = j
					break
				}
			}
		}
		if col < 0 {
			return iters, nil // optimal
		}
		// Leaving row by minimum ratio (Bland ties by basis index).
		row := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][col]
			if a > lpEps {
				r := tab[i][n] / a
				if r < bestRatio-lpEps || (r < bestRatio+lpEps && (row < 0 || basis[i] < basis[row])) {
					bestRatio, row = r, i
				}
			}
		}
		if row < 0 {
			return iters, ErrUnbounded
		}
		if bestRatio < lpEps {
			stalled++
		} else {
			stalled = 0
		}
		pivot(tab, basis, row, col)
		iters++
	}
}

// pivot makes column col basic in row row.
func pivot(tab [][]float64, basis []int, row, col int) {
	n := len(tab[0]) - 1
	pv := tab[row][col]
	inv := 1 / pv
	prow := tab[row]
	for j := 0; j <= n; j++ {
		prow[j] *= inv
	}
	prow[col] = 1 // exact
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		r := tab[i]
		for j := 0; j <= n; j++ {
			r[j] -= f * prow[j]
		}
		r[col] = 0 // exact
	}
	basis[row] = col
}
