package lp

import (
	"math"
	"testing"
	"testing/quick"

	"treesched/internal/rng"
)

// solve2x2 solves [a b; c d]·x = [e f] by Cramer's rule; ok=false for
// singular systems.
func solve2x2(a, b, c, d, e, f float64) (x, y float64, ok bool) {
	det := a*d - b*c
	if math.Abs(det) < 1e-9 {
		return 0, 0, false
	}
	return (e*d - b*f) / det, (a*f - e*c) / det, true
}

// bruteForce2D minimizes c·x over {x >= 0, A x <= b} by enumerating
// all candidate vertices (intersections of constraint pairs, where the
// axes count as constraints). The region must be bounded.
func bruteForce2D(c [2]float64, A [][2]float64, b []float64) (float64, bool) {
	// Build the full constraint list including x >= 0 as -x <= 0.
	rows := append([][2]float64{}, A...)
	rhs := append([]float64{}, b...)
	rows = append(rows, [2]float64{-1, 0}, [2]float64{0, -1})
	rhs = append(rhs, 0, 0)

	feasible := func(x, y float64) bool {
		if x < -1e-7 || y < -1e-7 {
			return false
		}
		for i, r := range rows {
			if r[0]*x+r[1]*y > rhs[i]+1e-7 {
				return false
			}
		}
		return true
	}
	best := math.Inf(1)
	found := false
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			x, y, ok := solve2x2(rows[i][0], rows[i][1], rows[j][0], rows[j][1], rhs[i], rhs[j])
			if !ok || !feasible(x, y) {
				continue
			}
			v := c[0]*x + c[1]*y
			if v < best {
				best = v
				found = true
			}
		}
	}
	return best, found
}

// The simplex must agree with exhaustive vertex enumeration on random
// bounded 2-variable LPs.
func TestSimplexMatchesVertexEnumeration(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		nCons := 1 + r.Intn(4)
		var A [][2]float64
		var b []float64
		for i := 0; i < nCons; i++ {
			A = append(A, [2]float64{r.Range(-2, 3), r.Range(-2, 3)})
			b = append(b, r.Range(0.5, 6)) // nonnegative RHS keeps origin feasible
		}
		// Bounding box guarantees a finite optimum.
		A = append(A, [2]float64{1, 1})
		b = append(b, 10)
		c := [2]float64{r.Range(-3, 3), r.Range(-3, 3)}

		want, ok := bruteForce2D(c, A, b)
		if !ok {
			return true // no vertex (cannot happen with the box, but be safe)
		}
		p := NewProblem(2)
		p.C = []float64{c[0], c[1]}
		for i := range A {
			p.AddConstraint(map[int]float64{0: A[i][0], 1: A[i][1]}, LE, b[i])
		}
		sol, err := p.Solve()
		if err != nil {
			return false
		}
		return math.Abs(sol.Objective-want) < 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// GE/EQ variants must also agree: convert constraints randomly and
// compare against the equivalent LE formulation.
func TestSimplexKindEquivalence(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		// min x+2y st x+y >= k (as GE) vs -x-y <= -k (as LE).
		k := r.Range(1, 5)
		cap := k + r.Range(0.5, 3)

		ge := NewProblem(2)
		ge.C = []float64{1, 2}
		ge.AddConstraint(map[int]float64{0: 1, 1: 1}, GE, k)
		ge.AddConstraint(map[int]float64{0: 1}, LE, cap)
		sGE, err := ge.Solve()
		if err != nil {
			return false
		}

		le := NewProblem(2)
		le.C = []float64{1, 2}
		le.AddConstraint(map[int]float64{0: -1, 1: -1}, LE, -k)
		le.AddConstraint(map[int]float64{0: 1}, LE, cap)
		sLE, err := le.Solve()
		if err != nil {
			return false
		}
		// Optimum puts everything on x (cheaper) up to cap: k <= cap
		// so x = k, obj = k.
		return math.Abs(sGE.Objective-sLE.Objective) < 1e-7 &&
			math.Abs(sGE.Objective-k) < 1e-7
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Solutions returned by the simplex must satisfy every constraint.
func TestSimplexSolutionFeasibility(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(3)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.C[j] = r.Range(-2, 2)
		}
		var cons []struct {
			coefs map[int]float64
			kind  ConstraintKind
			rhs   float64
		}
		for i := 0; i < 2+r.Intn(3); i++ {
			coefs := map[int]float64{}
			for j := 0; j < n; j++ {
				coefs[j] = r.Range(0.1, 2) // positive rows keep things bounded/feasible
			}
			kind := LE
			rhs := r.Range(1, 8)
			if r.Bool(0.3) {
				kind = GE
				rhs = r.Range(0.1, 1)
			}
			p.AddConstraint(coefs, kind, rhs)
			cons = append(cons, struct {
				coefs map[int]float64
				kind  ConstraintKind
				rhs   float64
			}{coefs, kind, rhs})
		}
		// Bound the region so minimization of negative costs is finite.
		all := map[int]float64{}
		for j := 0; j < n; j++ {
			all[j] = 1
		}
		p.AddConstraint(all, LE, 20)
		cons = append(cons, struct {
			coefs map[int]float64
			kind  ConstraintKind
			rhs   float64
		}{all, LE, 20})

		sol, err := p.Solve()
		if err == ErrInfeasible {
			return true // possible with GE rows; fine
		}
		if err != nil {
			return false
		}
		for j := 0; j < n; j++ {
			if sol.X[j] < -1e-7 {
				return false
			}
		}
		for _, c := range cons {
			var lhs float64
			for j, v := range c.coefs {
				lhs += v * sol.X[j]
			}
			switch c.kind {
			case LE:
				if lhs > c.rhs+1e-6 {
					return false
				}
			case GE:
				if lhs < c.rhs-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(lhs-c.rhs) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
