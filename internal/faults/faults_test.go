package faults

import (
	"encoding/json"
	"math"
	"testing"

	"treesched/internal/tree"
)

func approx(t *testing.T, got, want float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s: got %v, want %v", msg, got, want)
	}
}

func TestCompileSegments(t *testing.T) {
	tr := tree.Star(2)
	leaf := tr.Leaves()[0]
	p := &Plan{Events: []Event{
		{Kind: Outage, Node: leaf, Start: 2, End: 4},
		{Kind: Brownout, Node: leaf, Start: 3, End: 6, Factor: 0.5},
	}}
	s, err := Compile(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ at, want float64 }{
		{0, 1}, {1.9, 1}, {2, 0}, {3.5, 0}, {4, 0.5}, {5.9, 0.5}, {6, 1}, {100, 1},
	}
	for _, c := range cases {
		approx(t, s.FactorAt(leaf, c.at), c.want, "FactorAt")
	}
	// Untouched node stays at factor 1 with no segments.
	other := tr.Leaves()[1]
	if s.Segments(other) != nil {
		t.Fatal("untouched node has segments")
	}
	approx(t, s.FactorAt(other, 3), 1, "untouched FactorAt")
	// Boundaries: factor changes at 2 (→0), 4 (→0.5), 6 (→1).
	bs := s.Boundaries()
	if len(bs) != 3 {
		t.Fatalf("boundaries = %v, want 3 entries", bs)
	}
	for i, at := range []float64{2, 4, 6} {
		if bs[i].At != at || bs[i].Node != leaf {
			t.Fatalf("boundary %d = %+v, want at=%v node=%d", i, bs[i], at, leaf)
		}
	}
}

func TestIntegral(t *testing.T) {
	tr := tree.Star(2)
	leaf := tr.Leaves()[0]
	s, err := Compile(tr, &Plan{Events: []Event{
		{Kind: Outage, Node: leaf, Start: 2, End: 4},
		{Kind: Brownout, Node: leaf, Start: 4, End: 8, Factor: 0.25},
	}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.Integral(leaf, 0, 2), 2, "before faults")
	approx(t, s.Integral(leaf, 2, 4), 0, "inside outage")
	approx(t, s.Integral(leaf, 0, 10), 2+0+1+2, "across everything")
	approx(t, s.Integral(leaf, 3, 5), 0.25, "straddling the outage end")
	approx(t, s.Integral(leaf, 5, 5), 0, "empty window")
	approx(t, s.Integral(tr.Leaves()[1], 3, 5), 2, "untouched node")
}

func TestLeafLossAndDeathTime(t *testing.T) {
	tr := tree.Star(3)
	leaf := tr.Leaves()[1]
	s, err := Compile(tr, &Plan{Events: []Event{
		{Kind: LeafLoss, Node: leaf, Start: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.FactorAt(leaf, 4.9), 1, "before loss")
	approx(t, s.FactorAt(leaf, 5), 0, "at loss")
	approx(t, s.FactorAt(leaf, 1e9), 0, "long after loss")
	at, dead := s.DeathTime(leaf)
	if !dead || at != 5 {
		t.Fatalf("DeathTime = %v,%v, want 5,true", at, dead)
	}
	if _, dead := s.DeathTime(tr.Leaves()[0]); dead {
		t.Fatal("surviving leaf reported dead")
	}
	if len(s.Boundaries()) != 1 {
		t.Fatalf("boundaries = %v, want exactly the loss instant", s.Boundaries())
	}
}

func TestOverlapTakesMinimum(t *testing.T) {
	tr := tree.Star(2)
	leaf := tr.Leaves()[0]
	s, err := Compile(tr, &Plan{Events: []Event{
		{Kind: Brownout, Node: leaf, Start: 0, End: 10, Factor: 0.8},
		{Kind: Brownout, Node: leaf, Start: 2, End: 6, Factor: 0.3},
	}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, s.FactorAt(leaf, 1), 0.8, "single brownout")
	approx(t, s.FactorAt(leaf, 3), 0.3, "overlap takes min")
	approx(t, s.FactorAt(leaf, 7), 0.8, "back to outer")
	// A fault active from t=0 must produce a t=0 boundary so the
	// engine (which starts at base speed) applies it.
	if bs := s.Boundaries(); len(bs) == 0 || bs[0].At != 0 {
		t.Fatalf("boundaries = %v, want first at t=0", bs)
	}
}

func TestValidateRejects(t *testing.T) {
	tr := tree.Star(2)
	leaf := tr.Leaves()[0]
	router := tr.RootAdjacent()[0]
	bad := []Plan{
		{Events: []Event{{Kind: Outage, Node: tr.Root(), Start: 0, End: 1}}},
		{Events: []Event{{Kind: Outage, Node: tree.NodeID(99), Start: 0, End: 1}}},
		{Events: []Event{{Kind: Outage, Node: leaf, Start: 2, End: 2}}},
		{Events: []Event{{Kind: Outage, Node: leaf, Start: -1, End: 2}}},
		{Events: []Event{{Kind: Outage, Node: leaf, Start: 0, End: math.Inf(1)}}},
		{Events: []Event{{Kind: Brownout, Node: leaf, Start: 0, End: 1, Factor: 0}}},
		{Events: []Event{{Kind: Brownout, Node: leaf, Start: 0, End: 1, Factor: 1}}},
		{Events: []Event{{Kind: LeafLoss, Node: router, Start: 1}}},
		{Events: []Event{{Kind: Kind("meteor"), Node: leaf, Start: 0, End: 1}}},
		{Events: []Event{{Kind: Outage, Node: leaf, Start: math.NaN(), End: 1}}},
	}
	for i := range bad {
		if err := bad[i].Validate(tr); err == nil {
			t.Errorf("plan %d (%v) validated", i, bad[i].Events)
		}
		if _, err := Compile(tr, &bad[i]); err == nil {
			t.Errorf("plan %d (%v) compiled", i, bad[i].Events)
		}
	}
}

func TestEventJSONRoundTrip(t *testing.T) {
	in := []Event{
		{Kind: Outage, Node: 3, Start: 1.5, End: 2.25},
		{Kind: Brownout, Node: 4, Start: 0, End: 10, Factor: 0.5},
		{Kind: LeafLoss, Node: 5, Start: 7},
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Event
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip changed length: %d -> %d", len(in), len(out))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("event %d changed: %+v -> %+v", i, in[i], out[i])
		}
	}
}

// A leaf death masked inside an outage must still emit a boundary at
// the death instant: the speed factor does not change (it is already
// 0), but the engine's recovery policies trigger on the boundary.
func TestDeathBoundaryInsideOutage(t *testing.T) {
	tr := tree.Star(2)
	leaf := tr.Leaves()[0]
	s, err := Compile(tr, &Plan{Events: []Event{
		{Kind: Outage, Node: leaf, Start: 2, End: 10},
		{Kind: LeafLoss, Node: leaf, Start: 5},
	}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, b := range s.Boundaries() {
		if b.Node == leaf && b.At == 5 {
			found = true
		}
	}
	if !found {
		t.Fatalf("boundaries %v lack the death instant t=5", s.Boundaries())
	}
	if !s.HasDeaths() {
		t.Fatal("HasDeaths = false with a leaf loss compiled")
	}
	// An unmasked death keeps exactly one boundary at the instant (no
	// duplicate from the factor change + the death emission).
	s2, err := Compile(tr, &Plan{Events: []Event{{Kind: LeafLoss, Node: leaf, Start: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, b := range s2.Boundaries() {
		if b.Node == leaf && b.At == 5 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("want exactly one death boundary, got %d in %v", count, s2.Boundaries())
	}
}

func TestHasDeathsFalseWithoutLoss(t *testing.T) {
	tr := tree.Star(2)
	s, err := Compile(tr, &Plan{Events: []Event{
		{Kind: Outage, Node: tr.Leaves()[0], Start: 2, End: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if s.HasDeaths() {
		t.Fatal("HasDeaths = true without any leaf loss")
	}
}

// Integral's binary-search fast path must agree with a linear
// reference over many windows of a many-segment schedule.
func TestIntegralMatchesLinearReference(t *testing.T) {
	tr := tree.Star(2)
	leaf := tr.Leaves()[0]
	var evs []Event
	for i := 0; i < 50; i++ {
		at := float64(i) * 3
		evs = append(evs, Event{Kind: Brownout, Node: leaf, Start: at, End: at + 2, Factor: 0.5})
	}
	s, err := Compile(tr, &Plan{Events: evs})
	if err != nil {
		t.Fatal(err)
	}
	segs := s.Segments(leaf)
	ref := func(from, to float64) float64 {
		var sum float64
		for i, sg := range segs {
			end := math.Inf(1)
			if i+1 < len(segs) {
				end = segs[i+1].Start
			}
			lo, hi := math.Max(from, sg.Start), math.Min(to, end)
			if hi > lo {
				sum += sg.Factor * (hi - lo)
			}
		}
		return sum
	}
	for _, w := range [][2]float64{{0, 1}, {0, 150}, {7, 11}, {100, 100}, {149, 200}, {2.5, 2.5}, {60.5, 61.5}} {
		got, want := s.Integral(leaf, w[0], w[1]), ref(w[0], w[1])
		if got != want {
			t.Fatalf("Integral(%v,%v) = %v, want %v (bitwise)", w[0], w[1], got, want)
		}
	}
}
