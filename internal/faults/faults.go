// Package faults implements deterministic fault injection for the
// simulation engine: a Plan is a seeded, reproducible list of fault
// events (transient node outages, brown-outs, permanent leaf loss)
// that Compile turns into per-node piecewise-constant speed-factor
// schedules plus one global, time-sorted boundary list the engine
// interleaves with its finish events. The package depends only on the
// topology layer, so the engine, the scenario layer and the auditor
// can all share one compiled Schedule.
package faults

import (
	"fmt"
	"math"
	"sort"

	"treesched/internal/tree"
)

// Kind names one fault class. The string values are the JSON form.
type Kind string

const (
	// Outage drops a node's speed to zero for [Start, End).
	Outage Kind = "outage"
	// Brownout multiplies a node's speed by Factor for [Start, End).
	Brownout Kind = "brownout"
	// LeafLoss drops a leaf's speed to zero permanently from Start on.
	LeafLoss Kind = "leafloss"
)

// Event is one fault on one node. End is exclusive and ignored for
// LeafLoss; Factor is only meaningful for Brownout.
type Event struct {
	Kind   Kind        `json:"kind"`
	Node   tree.NodeID `json:"node"`
	Start  float64     `json:"start"`
	End    float64     `json:"end,omitempty"`
	Factor float64     `json:"factor,omitempty"`
}

func (e Event) String() string {
	switch e.Kind {
	case Brownout:
		return fmt.Sprintf("brownout(node %d, [%g,%g), x%g)", e.Node, e.Start, e.End, e.Factor)
	case LeafLoss:
		return fmt.Sprintf("leafloss(node %d, t>=%g)", e.Node, e.Start)
	default:
		return fmt.Sprintf("%s(node %d, [%g,%g))", e.Kind, e.Node, e.Start, e.End)
	}
}

// Plan is a deterministic set of fault events.
type Plan struct {
	Events []Event `json:"events"`
}

// Validate checks every event against the topology: known kind, a
// non-root node in range, finite non-negative times, End after Start
// for transient faults, Factor in (0,1) for brownouts, and LeafLoss
// only on leaves.
func (p *Plan) Validate(t *tree.Tree) error {
	for i, e := range p.Events {
		if err := validateEvent(t, e); err != nil {
			return fmt.Errorf("faults: event %d: %w", i, err)
		}
	}
	return nil
}

func validateEvent(t *tree.Tree, e Event) error {
	if int(e.Node) <= 0 || int(e.Node) >= t.NumNodes() {
		return fmt.Errorf("%s: node %d out of range (want 1..%d; the root cannot fault)", e.Kind, e.Node, t.NumNodes()-1)
	}
	if !finite(e.Start) || e.Start < 0 {
		return fmt.Errorf("%s: start %v is not a finite time >= 0", e.Kind, e.Start)
	}
	switch e.Kind {
	case Outage, Brownout:
		if !finite(e.End) || e.End <= e.Start {
			return fmt.Errorf("%s: interval [%v,%v) is empty or not finite", e.Kind, e.Start, e.End)
		}
		if e.Kind == Brownout && !(e.Factor > 0 && e.Factor < 1) {
			return fmt.Errorf("brownout: factor %v outside (0,1)", e.Factor)
		}
	case LeafLoss:
		if !t.IsLeaf(e.Node) {
			return fmt.Errorf("leafloss: node %d is not a leaf", e.Node)
		}
	default:
		return fmt.Errorf("unknown fault kind %q (want outage|brownout|leafloss)", e.Kind)
	}
	return nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Segment is one piece of a node's speed-factor function: Factor
// applies from Start until the next segment's Start.
type Segment struct {
	Start  float64
	Factor float64
}

// Boundary is one instant at which one node's factor changes. The
// engine processes boundaries as events interleaved with its finish
// events (finish events win ties).
type Boundary struct {
	At   float64
	Node tree.NodeID
}

// Schedule is a compiled Plan: per-node piecewise-constant factors,
// the merged boundary list, and the death time of permanently lost
// leaves. A Schedule is immutable and safe to share across engines
// and replays (each engine keeps its own boundary cursor).
type Schedule struct {
	segs       [][]Segment // per node; nil = factor 1 always
	boundaries []Boundary
	deathAt    []float64 // per node; +Inf when never lost
	numNodes   int
	events     int
	hasDeaths  bool
}

// Compile validates the plan and builds its schedule. Overlapping
// faults on one node combine by taking the most severe (minimum)
// factor at each instant.
func Compile(t *tree.Tree, p *Plan) (*Schedule, error) {
	if err := p.Validate(t); err != nil {
		return nil, err
	}
	s := &Schedule{
		segs:     make([][]Segment, t.NumNodes()),
		deathAt:  make([]float64, t.NumNodes()),
		numNodes: t.NumNodes(),
		events:   len(p.Events),
	}
	for v := range s.deathAt {
		s.deathAt[v] = math.Inf(1)
	}
	perNode := make(map[tree.NodeID][]Event)
	for _, e := range p.Events {
		perNode[e.Node] = append(perNode[e.Node], e)
		if e.Kind == LeafLoss && e.Start < s.deathAt[e.Node] {
			s.deathAt[e.Node] = e.Start
		}
	}
	for v, evs := range perNode {
		s.segs[v] = compileNode(evs)
		for _, seg := range s.segs[v][1:] {
			s.boundaries = append(s.boundaries, Boundary{At: seg.Start, Node: v})
		}
		// A fault active from t=0 needs a boundary too: the engine
		// starts every node at its base speed.
		if s.segs[v][0].Factor != 1 {
			s.boundaries = append(s.boundaries, Boundary{At: 0, Node: v})
		}
	}
	// A permanent loss must always surface as a boundary: when an
	// overlapping outage already holds the factor at zero across the
	// death instant, segment deduplication produces no factor change
	// there, yet the engine's recovery policy triggers on the boundary.
	for v := range s.deathAt {
		at := s.deathAt[v]
		if math.IsInf(at, 1) {
			continue
		}
		s.hasDeaths = true
		if !s.hasBoundaryAt(tree.NodeID(v), at) {
			s.boundaries = append(s.boundaries, Boundary{At: at, Node: tree.NodeID(v)})
		}
	}
	sort.Slice(s.boundaries, func(i, j int) bool {
		a, b := s.boundaries[i], s.boundaries[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Node < b.Node
	})
	return s, nil
}

// hasBoundaryAt reports whether a boundary for (v, at) was already
// emitted (called before the boundary list is sorted).
func (s *Schedule) hasBoundaryAt(v tree.NodeID, at float64) bool {
	for _, b := range s.boundaries {
		if b.Node == v && b.At == at {
			return true
		}
	}
	return false
}

// compileNode sweeps one node's events into minimal segments. O(E^2)
// per node, which is fine for the event counts plans produce.
func compileNode(evs []Event) []Segment {
	cuts := []float64{0}
	for _, e := range evs {
		cuts = append(cuts, e.Start)
		if e.Kind != LeafLoss {
			cuts = append(cuts, e.End)
		}
	}
	sort.Float64s(cuts)
	uniq := cuts[:1]
	for _, c := range cuts[1:] {
		if c != uniq[len(uniq)-1] {
			uniq = append(uniq, c)
		}
	}
	var segs []Segment
	for _, at := range uniq {
		f := 1.0
		for _, e := range evs {
			if at < e.Start {
				continue
			}
			switch e.Kind {
			case Outage:
				if at < e.End {
					f = 0
				}
			case Brownout:
				if at < e.End && e.Factor < f {
					f = e.Factor
				}
			case LeafLoss:
				f = 0
			}
		}
		if len(segs) > 0 && segs[len(segs)-1].Factor == f {
			continue
		}
		segs = append(segs, Segment{Start: at, Factor: f})
	}
	return segs
}

// NumNodes returns the node count the schedule was compiled for.
func (s *Schedule) NumNodes() int { return s.numNodes }

// Events returns the number of plan events the schedule was built from.
func (s *Schedule) Events() int { return s.events }

// Boundaries returns the global factor-change list, sorted by
// (time, node). Callers must not mutate it.
func (s *Schedule) Boundaries() []Boundary { return s.boundaries }

// Segments returns node v's factor segments (nil when v never
// faults). Callers must not mutate the result.
func (s *Schedule) Segments(v tree.NodeID) []Segment { return s.segs[v] }

// FactorAt returns node v's speed factor at time t.
func (s *Schedule) FactorAt(v tree.NodeID, t float64) float64 {
	segs := s.segs[v]
	if segs == nil {
		return 1
	}
	// Find the last segment starting at or before t.
	i := sort.Search(len(segs), func(i int) bool { return segs[i].Start > t }) - 1
	if i < 0 {
		return 1
	}
	return segs[i].Factor
}

// Integral returns ∫ factor(v, τ) dτ over [from, to]: the fraction of
// base-speed work node v can deliver in that window.
func (s *Schedule) Integral(v tree.NodeID, from, to float64) float64 {
	if to <= from {
		return 0
	}
	segs := s.segs[v]
	if segs == nil {
		return to - from
	}
	// Start at the last segment beginning at or before `from` and stop
	// once segments begin at or past `to`: segments outside the window
	// contribute nothing, so skipping them leaves the sum bit-identical
	// while making repeated audits of long schedules O(log n + overlap)
	// instead of O(n) per query.
	var sum float64
	i := sort.Search(len(segs), func(i int) bool { return segs[i].Start > from }) - 1
	if i < 0 {
		i = 0
	}
	for ; i < len(segs); i++ {
		seg := segs[i]
		if seg.Start >= to {
			break
		}
		end := math.Inf(1)
		if i+1 < len(segs) {
			end = segs[i+1].Start
		}
		lo, hi := math.Max(from, seg.Start), math.Min(to, end)
		if hi > lo {
			sum += seg.Factor * (hi - lo)
		}
	}
	return sum
}

// HasDeaths reports whether any node is ever permanently lost. The
// engine's sharded mode uses this to decide whether cross-subtree
// recovery re-dispatch is possible.
func (s *Schedule) HasDeaths() bool { return s.hasDeaths }

// DeathTime returns when node v is permanently lost, and whether it
// ever is.
func (s *Schedule) DeathTime(v tree.NodeID) (float64, bool) {
	at := s.deathAt[v]
	return at, !math.IsInf(at, 1)
}
