// Package plot renders small ASCII line charts for the sweep
// experiments (speed sweeps, eps sweeps) so EXPERIMENTS.md can show
// curve shapes, not just tables.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a set of curves on a shared axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogY   bool
	Series []Series
	Width  int // plot area columns (default 60)
	Height int // plot area rows (default 16)
}

// markers distinguish up to six series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart. Series points are connected by nothing —
// each sampled point gets its series marker; with the coarse grids we
// use the shape reads clearly.
func (c *Chart) Render() string {
	w, h := c.Width, c.Height
	if w < 20 {
		w = 60
	}
	if h < 5 {
		h = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) || minX == maxX && minY == maxY {
		// Degenerate input: avoid division by zero below.
		maxX = minX + 1
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			col := int((x - minX) / (maxX - minX) * float64(w-1))
			row := h - 1 - int((y-minY)/(maxY-minY)*float64(h-1))
			grid[row][col] = m
		}
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	yl, yh := minY, maxY
	if c.LogY {
		yl, yh = math.Pow(10, minY), math.Pow(10, maxY)
	}
	for r, row := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%9.3g ", yh)
		} else if r == h-1 {
			label = fmt.Sprintf("%9.3g ", yl)
		}
		fmt.Fprintf(&sb, "%s|%s\n", label, string(row))
	}
	fmt.Fprintf(&sb, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", w))
	fmt.Fprintf(&sb, "%s%-.3g%s%.3g\n", strings.Repeat(" ", 11), minX, strings.Repeat(" ", maxInt(1, w-12)), maxX)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%sx: %s", strings.Repeat(" ", 11), c.XLabel)
		if c.YLabel != "" {
			fmt.Fprintf(&sb, "   y: %s", c.YLabel)
			if c.LogY {
				sb.WriteString(" (log scale)")
			}
		}
		sb.WriteByte('\n')
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&sb, "%slegend: %s\n", strings.Repeat(" ", 11), strings.Join(legend, "   "))
	}
	return sb.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
