package plot

import (
	"strings"
	"testing"
)

func TestRenderBasics(t *testing.T) {
	c := &Chart{
		Title:  "demo",
		XLabel: "speed",
		YLabel: "flow",
		Series: []Series{
			{Name: "identical", X: []float64{1, 2, 3}, Y: []float64{100, 50, 25}},
			{Name: "unrelated", X: []float64{1, 2, 3}, Y: []float64{200, 80, 30}},
		},
	}
	out := c.Render()
	for _, want := range []string{"demo", "x: speed", "y: flow", "* identical", "o unrelated", "+---"} {
		if !strings.Contains(out, want) {
			t.Fatalf("chart missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers not drawn:\n%s", out)
	}
}

func TestRenderLogY(t *testing.T) {
	c := &Chart{
		LogY: true,
		Series: []Series{
			{Name: "s", X: []float64{0, 1, 2}, Y: []float64{1, 100, 10000}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "log scale") && !strings.Contains(out, "1e+04") {
		// log scale note only prints with a y label; the axis value must
		// still show the original magnitude.
		if !strings.Contains(out, "1e+04") && !strings.Contains(out, "10000") {
			t.Fatalf("log axis labels missing:\n%s", out)
		}
	}
	// A zero y with LogY must not panic and is simply skipped.
	c.Series[0].Y[0] = 0
	_ = c.Render()
}

func TestRenderMonotoneShape(t *testing.T) {
	// A strictly decreasing curve must place its first marker above
	// its last marker.
	c := &Chart{Series: []Series{{Name: "d", X: []float64{0, 1, 2, 3}, Y: []float64{8, 4, 2, 1}}}}
	out := c.Render()
	lines := strings.Split(out, "\n")
	first, last := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "*") {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 || first >= last {
		t.Fatalf("decreasing curve not rendered top-to-bottom (first=%d last=%d):\n%s", first, last, out)
	}
	firstCol := strings.Index(lines[first], "*")
	lastCol := strings.Index(lines[last], "*")
	if firstCol >= lastCol {
		t.Fatalf("x axis reversed:\n%s", out)
	}
}

func TestRenderDegenerate(t *testing.T) {
	c := &Chart{Series: []Series{{Name: "p", X: []float64{1}, Y: []float64{5}}}}
	out := c.Render()
	if !strings.Contains(out, "*") {
		t.Fatalf("single point not drawn:\n%s", out)
	}
	empty := &Chart{}
	_ = empty.Render() // must not panic
}
