// The incremental backlog/stability probe. A scheduler serving an
// online arrival stream needs an O(1)-per-event estimate of how far
// behind the system is before it can decide whether to admit the next
// job: an unstable system accumulates an O(n) backlog of live tasks
// that no amount of completion recycling bounds (the constant-memory
// streaming pipeline only holds for stable systems — see DESIGN.md
// §3.3), so overload has to surface as explicit load shedding before
// the work is accepted, not as memory growth after.
//
// The estimator is the same fluid model the fleet front door routes
// by: offered work drains at the tree's root capacity (the sum of the
// root-adjacent speeds — the paper's root bandwidth bound, which no
// schedule can beat), and whatever has not drained by the current
// release frontier is backlog. It deliberately never observes
// execution: feeding it only the admitted arrival sequence keeps the
// estimate a pure function of that sequence, so an admission
// controller built on it makes deterministic, replayable decisions.
package sim

import (
	"fmt"
	"math"

	"treesched/internal/tree"
)

// RootCapacity returns the tree's fluid drain capacity: the sum of
// the root-adjacent node speeds. The root performs no processing and
// every job crosses exactly one root-adjacent node, so this is the
// hard ceiling on sustainable offered work per unit time.
func RootCapacity(t *tree.Tree) float64 {
	var c float64
	for _, v := range t.RootAdjacent() {
		c += t.Speed(v)
	}
	return c
}

// BacklogEstimator tracks a fluid backlog estimate over an arrival
// sequence with non-decreasing release times: offered work accumulates
// at each Offer and drains at Capacity between releases. All methods
// are O(1); the zero value is unusable — construct with
// NewBacklogEstimator.
type BacklogEstimator struct {
	cap     float64
	now     float64 // release frontier the estimate is advanced to
	backlog float64
	offered float64 // cumulative offered work
	first   float64 // earliest release observed
	seen    bool
}

// NewBacklogEstimator returns an estimator draining at the given
// capacity (work units per unit time). It panics on a non-positive
// capacity, mirroring the engine's constructor discipline.
func NewBacklogEstimator(capacity float64) *BacklogEstimator {
	if capacity <= 0 || math.IsNaN(capacity) || math.IsInf(capacity, 0) {
		panic(fmt.Sprintf("sim: BacklogEstimator needs a positive finite capacity, got %v", capacity))
	}
	return &BacklogEstimator{cap: capacity}
}

// AdvanceTo drains the estimate to time t. Times before the current
// frontier are ignored (the estimate never runs backwards), so
// callers may probe with any monotone-or-stale release.
func (e *BacklogEstimator) AdvanceTo(t float64) {
	if t <= e.now && e.seen {
		return
	}
	if !e.seen {
		e.seen = true
		e.first = t
		e.now = t
		return
	}
	d := e.backlog - (t-e.now)*e.cap
	if d < 0 {
		d = 0
	}
	e.backlog = d
	e.now = t
}

// Offer advances the estimate to the job's release, charges its work,
// and returns the new backlog. Releases may repeat or lag the
// frontier (the drain simply does not run backwards).
func (e *BacklogEstimator) Offer(release, size float64) float64 {
	e.AdvanceTo(release)
	e.backlog += size
	e.offered += size
	return e.backlog
}

// Backlog returns the current backlog estimate (work units not yet
// drained at the frontier).
func (e *BacklogEstimator) Backlog() float64 { return e.backlog }

// Capacity returns the drain rate the estimator was built with.
func (e *BacklogEstimator) Capacity() float64 { return e.cap }

// Offered returns the cumulative offered work.
func (e *BacklogEstimator) Offered() float64 { return e.offered }

// Now returns the release frontier the estimate is advanced to.
func (e *BacklogEstimator) Now() float64 { return e.now }

// DrainTime returns how long clearing the current backlog plus extra
// additional work would take at capacity.
func (e *BacklogEstimator) DrainTime(extra float64) float64 {
	return (e.backlog + extra) / e.cap
}

// Utilization returns the long-run offered load relative to capacity:
// cumulative offered work over capacity x elapsed release span.
// Before any time has elapsed it reports +Inf when work has been
// offered (everything at one instant is an overload) and 0 otherwise.
func (e *BacklogEstimator) Utilization() float64 {
	span := e.now - e.first
	if span <= 0 {
		if e.offered > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return e.offered / (e.cap * span)
}

// Stable reports whether the observed arrival sequence is sustainable:
// long-run offered rate strictly below capacity. An unstable sequence
// is the regime where backlog — and with it live engine state — grows
// without bound, which is what an admission controller must refuse.
func (e *BacklogEstimator) Stable() bool { return e.Utilization() < 1 }
