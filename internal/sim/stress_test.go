package sim

import (
	"math"
	"testing"

	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// mixAssigner alternates between several assignment strategies to
// exercise unusual queue shapes.
type mixAssigner struct {
	r *rng.Rand
	i int
}

func (m *mixAssigner) Name() string { return "mix" }
func (m *mixAssigner) Assign(q *Query, a *Arrival) tree.NodeID {
	ls := q.Tree().Leaves()
	m.i++
	switch m.i % 3 {
	case 0:
		return ls[m.r.Intn(len(ls))]
	case 1:
		return ls[0] // deliberately pile onto one leaf
	default:
		return ls[m.i%len(ls)]
	}
}

// TestEngineStress runs many randomized configurations with every
// internal assertion enabled: random trees, speeds, policies, heavy
// overload, unrelated endpoints, weights, packetization and origins.
// Any bookkeeping bug (queue indices, pending sets, fractional
// accounting) trips SelfCheck panics or the invariant comparisons.
func TestEngineStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test skipped in -short mode")
	}
	r := rng.New(2026)
	policies := []Policy{SJF{}, FIFO{}, SRPT{}, LCFS{}, WSJF{}, PS{}}
	for iter := 0; iter < 120; iter++ {
		tr := tree.Random(r, tree.RandomConfig{
			Branches:    1 + r.Intn(4),
			MaxDepth:    2 + r.Intn(5),
			MaxChildren: 1 + r.Intn(3),
			LeafProb:    0.3 + 0.4*r.Float64(),
		})
		tr = tr.WithSpeeds(0.5+r.Float64(), 0.5+r.Float64()*2, 0.5+r.Float64()*2)
		n := 20 + r.Intn(150)
		trace, err := workload.Poisson(r, workload.GenConfig{
			N:        n,
			Size:     workload.UniformSize{Lo: 0.1, Hi: 1 + 20*r.Float64()},
			Load:     0.2 + 1.5*r.Float64(), // from light to badly overloaded
			Capacity: float64(len(tr.RootAdjacent())),
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.Bool(0.3) {
			if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{
				Leaves: len(tr.Leaves()), Lo: 0.25, Hi: 4, PInfeasible: 0.2, Penalty: 6,
			}); err != nil {
				t.Fatal(err)
			}
		}
		if r.Bool(0.3) {
			workload.AssignWeights(r, trace, 7)
		}
		checkEvery := int64(10 + r.Intn(40))
		var nEvents int64
		opts := Options{
			Policy:       policies[r.Intn(len(policies))],
			Instrument:   r.Bool(0.5),
			UseScanQueue: r.Bool(0.3),
			SelfCheck:    true,
			// With Instrument set too, Drain audits the recorded
			// schedule, so the stress run doubles as a conformance test.
			RecordSlices: r.Bool(0.5),
			Observer: func(s *Sim) {
				nEvents++
				if nEvents%checkEvery == 0 {
					if err := s.CheckInvariants(); err != nil {
						t.Fatalf("iter %d, event %d: %v", iter, nEvents, err)
					}
				}
			},
		}
		asg := &mixAssigner{r: r.Split()}
		var res *Result
		if r.Bool(0.2) && trace.Jobs[0].LeafSizes == nil {
			res, err = RunPacketized(tr, trace, asg, opts)
		} else {
			res, err = Run(tr, trace, asg, opts)
		}
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		st := res.Stats
		if st.Completed != n {
			t.Fatalf("iter %d: completed %d/%d", iter, st.Completed, n)
		}
		if st.TotalFlow <= 0 || math.IsNaN(st.TotalFlow) || math.IsInf(st.TotalFlow, 0) {
			t.Fatalf("iter %d: bad total flow %v", iter, st.TotalFlow)
		}
		if st.FracFlow < -1e-6 || st.FracFlow > st.TotalFlow*(1+1e-6)+1e-6 {
			t.Fatalf("iter %d: fractional flow %v vs total %v", iter, st.FracFlow, st.TotalFlow)
		}
		if st.WeightedFlow < st.TotalFlow-1e-6 {
			t.Fatalf("iter %d: weighted flow %v below total %v (weights >= 1)", iter, st.WeightedFlow, st.TotalFlow)
		}
		// Flow must respect each job's speed-adjusted path work.
		for i := range res.Jobs {
			if res.Jobs[i].Flow <= 0 {
				t.Fatalf("iter %d: job %d non-positive flow", iter, i)
			}
		}
	}
}

// TestEmptyTrace exercises the degenerate zero-job run.
func TestEmptyTrace(t *testing.T) {
	tr := tree.Star(2)
	res, err := Run(tr, &workload.Trace{}, fixedAssigner{tr.Leaves()[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != 0 || res.Stats.TotalFlow != 0 {
		t.Fatalf("empty trace produced %+v", res.Stats)
	}
}

// TestSimultaneousArrivalOrdering: jobs released at the same instant
// are ordered deterministically by ID.
func TestSimultaneousArrivalOrdering(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 1, Size: 2},
		{ID: 1, Release: 1, Size: 2},
		{ID: 2, Release: 1, Size: 2},
	}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if !(res.Jobs[0].Completion < res.Jobs[1].Completion && res.Jobs[1].Completion < res.Jobs[2].Completion) {
		t.Fatalf("tie-break by ID violated: %v %v %v",
			res.Jobs[0].Completion, res.Jobs[1].Completion, res.Jobs[2].Completion)
	}
}

// TestTinySizes guards the floating-point edge of very small jobs.
func TestTinySizes(t *testing.T) {
	tr := tree.Line(3)
	var jobs []workload.Job
	for i := 0; i < 50; i++ {
		jobs = append(jobs, workload.Job{ID: i, Release: float64(i) * 1e-7, Size: 1e-6})
	}
	trace := &workload.Trace{Jobs: jobs}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != 50 {
		t.Fatalf("completed %d/50", res.Stats.Completed)
	}
}
