// Package sim implements a continuous-time, event-driven simulator of
// the bandwidth-constrained tree network scheduling model of
// Im & Moseley (SPAA 2015).
//
// Jobs arrive at the root, are immediately dispatched to a leaf
// machine by an Assigner, and then travel store-and-forward down the
// root-to-leaf path: each node processes at most one job at a time at
// its configured speed, preempting according to a node Policy, and a
// job cannot begin on a node until it has fully completed on the
// parent node. The engine tracks exact integral and fractional flow
// time, per-node utilization, and exposes the state queries
// (Q_v(t), S_{v,j}(t), remaining work) that the paper's greedy
// assignment rule and potential-function analysis consume.
package sim

import "treesched/internal/tree"

// Policy orders the jobs available on a node; the node always runs the
// available job with the smallest key, preempting when a smaller-key
// job appears. Keys are compared lexicographically as (K1, K2, task
// sequence number), so every policy is a total, deterministic order.
type Policy interface {
	Name() string
	// Key returns the priority of task js on its current node.
	// Smaller runs first.
	Key(js *JobState) (k1, k2 float64)
}

// StaticKeyPolicy marks a Policy whose Key is fixed while a task stays
// on one node (it never reads Remaining, the only field that drifts
// between events). The engine then skips the per-reschedule key
// refresh and heap fix-up for the running task — a pure fast path,
// since re-deriving an unchanged key cannot move it in the heap.
// SRPT and PS keys follow Remaining, so they must not carry the marker.
type StaticKeyPolicy interface {
	Policy
	// StaticKeyPolicy is a marker method with no behavior.
	StaticKeyPolicy()
}

// SJF is Shortest-Job-First by original processing time on the node,
// breaking ties by release time ("the oldest job in the class") — the
// node policy used by all of the paper's algorithms.
type SJF struct{}

func (SJF) Name() string { return "SJF" }

func (SJF) Key(js *JobState) (float64, float64) {
	return js.PrioOnCur, js.Release
}

// StaticKeyPolicy implements the marker: the key reads only fields
// fixed for the task's stay on the node.
func (SJF) StaticKeyPolicy() {}

// FIFO runs jobs in order of arrival at the node. Because the earliest
// arrival always has the smallest key, FIFO never preempts in practice.
type FIFO struct{}

func (FIFO) Name() string { return "FIFO" }

func (FIFO) Key(js *JobState) (float64, float64) {
	return js.NodeArrive, js.Release
}

// StaticKeyPolicy implements the marker.
func (FIFO) StaticKeyPolicy() {}

// SRPT is Shortest-Remaining-Processing-Time on the current node. The
// running job's remaining time only shrinks, so it keeps its place
// until a strictly shorter job arrives.
type SRPT struct{}

func (SRPT) Name() string { return "SRPT" }

func (SRPT) Key(js *JobState) (float64, float64) {
	return js.Remaining, js.Release
}

// WSJF (a.k.a. Highest-Density-First) orders by size/weight on the
// current node: among equal sizes, heavier jobs run first; among equal
// weights it degrades to SJF. This is the classic rule for weighted
// flow time (the X3 extension).
type WSJF struct{}

// Name implements Policy.
func (WSJF) Name() string { return "WSJF" }

// Key implements Policy.
func (WSJF) Key(js *JobState) (float64, float64) {
	return js.PrioOnCur / js.Weight, js.Release
}

// StaticKeyPolicy implements the marker.
func (WSJF) StaticKeyPolicy() {}

// PS is (egalitarian) processor sharing: every job available on a
// node progresses at rate speed/k where k is the number of available
// jobs — the idealized fair-queueing router. PS is handled specially
// by the engine (the Key method exists only to satisfy Policy and
// orders completions by remaining work).
type PS struct{}

// Name implements Policy.
func (PS) Name() string { return "PS" }

// Key implements Policy (unused for scheduling decisions; PS shares).
func (PS) Key(js *JobState) (float64, float64) {
	return js.Remaining, js.Release
}

// LCFS preempts in favor of the most recently arrived job.
type LCFS struct{}

func (LCFS) Name() string { return "LCFS" }

func (LCFS) Key(js *JobState) (float64, float64) {
	return -js.NodeArrive, -js.Release
}

// StaticKeyPolicy implements the marker.
func (LCFS) StaticKeyPolicy() {}

// higherPriority reports whether key (k1,k2,id,seq) precedes
// (l1,l2,lid,lseq). The job ID breaks ties before the engine task
// sequence number so that packets of the same job stay contiguous and
// assigner queries about not-yet-injected jobs are order-consistent.
//
// The float tiers must stay plain comparisons (LCFS keys are
// negative, so order-preserving bit tricks are out), but the integer
// tail packs both tie-breaks into one signed difference: IDs are
// dense non-negative ints and seqs non-negative int64s, so the
// subtractions cannot overflow and d's sign decides both tiers in a
// single branch. This is the hottest comparison in the engine (every
// heap sift calls it); see the B8 heap-vs-scan ablation benchmark.
func higherPriority(k1, k2 float64, kid int, kseq int64, l1, l2 float64, lid int, lseq int64) bool {
	if k1 != l1 {
		return k1 < l1
	}
	if k2 != l2 {
		return k2 < l2
	}
	d := int64(kid) - int64(lid)
	if d == 0 {
		d = kseq - lseq
	}
	return d < 0
}

// Assigner decides, at a job's arrival instant, which leaf machine
// will process it (immediate dispatch). Implementations range from the
// paper's greedy rule (internal/core) to the baselines in
// internal/sched.
type Assigner interface {
	Name() string
	// Assign inspects the simulator state through q and returns the
	// chosen leaf. It must return a leaf of q.Tree(); for jobs with a
	// non-root Origin it must choose a leaf below the origin.
	Assign(q *Query, j *Arrival) tree.NodeID
}

// ObliviousAssigner marks an Assigner whose decisions depend only on
// the topology, the arrival itself and assigner-internal state (a
// round-robin cursor, a seeded rng) — never on time-varying engine
// state read through the Query. The sharded engine precomputes such
// assignments sequentially in arrival order and then injects fully in
// parallel per shard; assigners without the marker dispatch
// sequentially and only the drain runs on the worker pool.
// Implementations must uphold the contract: calling a state-reading
// Query method from an assigner carrying this marker is a bug.
type ObliviousAssigner interface {
	Assigner
	// ObliviousAssigner is a marker method with no behavior.
	ObliviousAssigner()
}

// Arrival is the assigner's view of an arriving job.
type Arrival struct {
	ID      int
	Release float64
	Size    float64 // router size p_j
	// LeafSizes is indexed by leaf index; nil in the identical case.
	LeafSizes []float64
	Origin    tree.NodeID // 0 (root) unless the arbitrary-origin extension is used
	// Weight is the job's importance (0 means 1) for weighted flow.
	Weight float64
}

// LeafSize returns p_{j,v} for the leaf with the given leaf index.
func (a *Arrival) LeafSize(leafIndex int) float64 {
	if a.LeafSizes == nil {
		return a.Size
	}
	return a.LeafSizes[leafIndex]
}
