package sim

import (
	"math"
	"testing"

	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// WSJF runs the heavier of two equal-size jobs first.
func TestWSJFPrefersHeavy(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2, Weight: 1},
		{ID: 1, Release: 1e-9, Size: 2, Weight: 5},
	}}
	res, err := Run(tr, trace, byLeafAssigner{idx: []int{0, 1}}, Options{Policy: WSJF{}, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Density: job1 = 2/5 < job0 = 2/1, so job1 preempts at the relay:
	// relay serves job1 first (0..2+eps), then job0 (2..4).
	if res.Jobs[1].Completion > res.Jobs[0].Completion {
		t.Fatalf("WSJF ran the light job first: C0=%v C1=%v", res.Jobs[0].Completion, res.Jobs[1].Completion)
	}
}

func TestWSJFDegradesToSJFWithoutWeights(t *testing.T) {
	tr := tree.FatTree(2, 1, 2)
	r := rng.New(5)
	trace, err := workload.Poisson(r, workload.GenConfig{N: 200, Size: workload.UniformSize{Lo: 1, Hi: 8}, Load: 0.9, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(tr, trace, &rrAssigner{}, Options{Policy: SJF{}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, trace, &rrAssigner{}, Options{Policy: WSJF{}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Stats.TotalFlow-b.Stats.TotalFlow) > 1e-9 {
		t.Fatalf("WSJF with unit weights diverged from SJF: %v vs %v", a.Stats.TotalFlow, b.Stats.TotalFlow)
	}
}

func TestWeightedFlowAccounting(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2, Weight: 3},
	}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Flow = 4 (2 on relay + 2 on leaf), weighted = 12.
	if math.Abs(res.Stats.WeightedFlow-12) > 1e-9 {
		t.Fatalf("weighted flow = %v, want 12", res.Stats.WeightedFlow)
	}
	if res.Jobs[0].Weight != 3 {
		t.Fatalf("job weight = %v", res.Jobs[0].Weight)
	}
}

func TestWeightedFlowDefaultsToTotal(t *testing.T) {
	tr := tree.Star(2)
	r := rng.New(7)
	trace, err := workload.Poisson(r, workload.GenConfig{N: 100, Size: workload.UniformSize{Lo: 1, Hi: 4}, Load: 0.8, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tr, trace, &rrAssigner{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Stats.WeightedFlow-res.Stats.TotalFlow) > 1e-6 {
		t.Fatalf("unit-weight weighted flow %v != total flow %v", res.Stats.WeightedFlow, res.Stats.TotalFlow)
	}
}

// WSJF should reduce weighted flow vs SJF on a weighted workload.
func TestWSJFImprovesWeightedObjective(t *testing.T) {
	tr := tree.FatTree(2, 1, 2)
	r := rng.New(9)
	trace, err := workload.Poisson(r, workload.GenConfig{N: 500, Size: workload.UniformSize{Lo: 1, Hi: 16}, Load: 0.95, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	workload.AssignWeights(r, trace, 10)
	sjf, err := Run(tr, trace, &rrAssigner{}, Options{Policy: SJF{}})
	if err != nil {
		t.Fatal(err)
	}
	wsjf, err := Run(tr, trace, &rrAssigner{}, Options{Policy: WSJF{}})
	if err != nil {
		t.Fatal(err)
	}
	if wsjf.Stats.WeightedFlow >= sjf.Stats.WeightedFlow {
		t.Fatalf("WSJF weighted flow %v did not beat SJF %v", wsjf.Stats.WeightedFlow, sjf.Stats.WeightedFlow)
	}
}
