package sim

import (
	"testing"

	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func resetTestTrace(t *testing.T, n int) *workload.Trace {
	t.Helper()
	trace, err := workload.Poisson(rng.New(7), workload.GenConfig{
		N: n, Size: workload.UniformSize{Lo: 1, Hi: 8}, Load: 0.9, Capacity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

// TestResetReplayIdentical is the core Reset contract: a recycled
// engine must reproduce a fresh engine's run bit for bit — same
// statistics, same per-job completions.
func TestResetReplayIdentical(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 400)

	fresh, err := Run(tr, trace, &rrAssigner{}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	s := New(tr, Options{})
	for round := 0; round < 3; round++ {
		if round > 0 {
			s.Reset(Options{})
		}
		warm, err := RunOn(s, trace, &rrAssigner{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if warm.Stats != fresh.Stats {
			t.Fatalf("round %d: stats diverged: fresh %+v, warm %+v", round, fresh.Stats, warm.Stats)
		}
		for i := range fresh.Jobs {
			if warm.Jobs[i] != fresh.Jobs[i] {
				t.Fatalf("round %d: job %d diverged: fresh %+v, warm %+v", round, i, fresh.Jobs[i], warm.Jobs[i])
			}
		}
	}
}

// TestResetChangesOptions recycles one engine across option sets that
// change the queue implementation (SJF heap → PS scan → SJF heap) and
// checks each leg against a fresh engine with the same options.
func TestResetChangesOptions(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 300)
	optSets := []Options{
		{},
		{Policy: PS{}},
		{UseScanQueue: true},
		{},
		{Instrument: true},
		{},
	}

	s := New(tr, optSets[0])
	for i, opts := range optSets {
		if i > 0 {
			s.Reset(opts)
		}
		warm, err := RunOn(s, trace, &rrAssigner{})
		if err != nil {
			t.Fatalf("leg %d: %v", i, err)
		}
		fresh, err := Run(tr, trace, &rrAssigner{}, opts)
		if err != nil {
			t.Fatalf("leg %d fresh: %v", i, err)
		}
		if warm.Stats != fresh.Stats {
			t.Fatalf("leg %d (%+v): stats diverged: fresh %+v, warm %+v", i, opts, fresh.Stats, warm.Stats)
		}
	}
}

// TestResetInstrumentationBuffers checks the nil-vs-empty contract the
// trace renderer relies on: after an instrumented leg, a plain Reset
// must hand out tasks with nil hop records again, and an instrumented
// Reset must keep recording.
func TestResetInstrumentationBuffers(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 50)

	s := New(tr, Options{Instrument: true})
	if _, err := RunOn(s, trace, &rrAssigner{}); err != nil {
		t.Fatal(err)
	}
	for _, js := range s.Tasks() {
		if js.HopArrive == nil {
			t.Fatal("instrumented run produced a task with nil HopArrive")
		}
	}

	s.Reset(Options{})
	if _, err := RunOn(s, trace, &rrAssigner{}); err != nil {
		t.Fatal(err)
	}
	for _, js := range s.Tasks() {
		if js.HopArrive != nil {
			t.Fatal("uninstrumented run after Reset produced a task with non-nil HopArrive")
		}
	}

	s.Reset(Options{Instrument: true})
	if _, err := RunOn(s, trace, &rrAssigner{}); err != nil {
		t.Fatal(err)
	}
	for _, js := range s.Tasks() {
		if len(js.HopArrive) == 0 {
			t.Fatal("re-instrumented run produced a task with no hop records")
		}
	}
}

// TestSteadyStateAllocs guards the zero-allocation hot path: once an
// engine has warmed up (event heap, queues, freelist and result
// buffers all at capacity), a full Reset → inject → Drain cycle must
// not allocate.
func TestSteadyStateAllocs(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 500)
	s := New(tr, Options{})
	asg := &rrAssigner{}

	cycle := func() {
		s.Reset(Options{})
		var a Arrival
		for i := range trace.Jobs {
			j := &trace.Jobs[i]
			s.AdvanceTo(j.Release)
			a = Arrival{ID: j.ID, Release: j.Release, Size: j.Size, Weight: j.Weight}
			leaf := asg.Assign(s.Query(), &a)
			if _, err := s.Inject(&a, leaf); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Drain(); err != nil {
			t.Fatal(err)
		}
		if s.Active() != 0 {
			t.Fatal("drain left active tasks")
		}
	}
	cycle() // warm up all internal capacity

	if allocs := testing.AllocsPerRun(10, cycle); allocs > 0 {
		t.Fatalf("steady-state Reset+inject+Drain cycle allocates %.1f times per run, want 0", allocs)
	}
}
