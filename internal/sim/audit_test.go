package sim

import (
	"errors"
	"testing"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// hasRule reports whether the report contains a violation of rule.
func hasRule(rep *AuditReport, rule string) bool {
	for _, v := range rep.Violations {
		if v.Rule == rule {
			return true
		}
	}
	return false
}

// lineRun produces a clean three-hop schedule on Line(2):
// root → r1 → r2 → leaf, one size-6 job, slices
// r1 [0,6], r2 [6,12], leaf [12,18].
func lineRun(t *testing.T) (*Sim, []Slice) {
	t.Helper()
	tr := tree.Line(2)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 6}}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sim
	return s, append([]Slice(nil), s.Slices()...)
}

func TestAuditCleanRun(t *testing.T) {
	s, slices := lineRun(t)
	if len(slices) != 3 {
		t.Fatalf("slices = %v, want one per hop", slices)
	}
	if rep := s.Audit(); !rep.OK() {
		t.Fatalf("clean run failed audit: %s", rep.Summary())
	}
}

func TestAuditDetectsPrecedence(t *testing.T) {
	s, slices := lineRun(t)
	// Shift the leaf's work one unit earlier: it now starts before its
	// parent router delivered the job.
	slices[2].From -= 1
	slices[2].To -= 1
	rep := s.AuditSlices(slices)
	if !hasRule(rep, "precedence") {
		t.Fatalf("report missed precedence: %s", rep.Summary())
	}
}

func TestAuditDetectsSpeedBudget(t *testing.T) {
	s, slices := lineRun(t)
	// Inflate the middle router's slice: it claims 7 units of work for
	// a size-6 requirement.
	slices[1].To += 1
	rep := s.AuditSlices(slices)
	if !hasRule(rep, "speed-budget") {
		t.Fatalf("report missed speed-budget: %s", rep.Summary())
	}
}

func TestAuditDetectsRelease(t *testing.T) {
	s, slices := lineRun(t)
	slices[0].From = -0.5
	rep := s.AuditSlices(slices)
	if !hasRule(rep, "release") {
		t.Fatalf("report missed release: %s", rep.Summary())
	}
}

func TestAuditDetectsCompletion(t *testing.T) {
	s, slices := lineRun(t)
	// Drop the leaf's slice: the task claims completion with no work
	// recorded on its final hop.
	rep := s.AuditSlices(slices[:2])
	if !hasRule(rep, "completion") {
		t.Fatalf("report missed completion: %s", rep.Summary())
	}
}

func TestAuditDetectsUnknownTaskAndMalformed(t *testing.T) {
	s, slices := lineRun(t)
	bogus := append(slices,
		Slice{Node: slices[0].Node, Job: 9, Seq: 999, From: 20, To: 21},
		Slice{Node: slices[0].Node, Job: 0, Seq: slices[0].Seq, From: 25, To: 24},
	)
	rep := s.AuditSlices(bogus)
	if !hasRule(rep, "unknown-task") || !hasRule(rep, "malformed") {
		t.Fatalf("report missed unknown-task/malformed: %s", rep.Summary())
	}
}

func TestAuditDetectsOverlap(t *testing.T) {
	tr := tree.Star(1)
	leaf := tr.Leaves()[0]
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 4},
	}}
	res, err := Run(tr, trace, fixedAssigner{leaf}, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sim
	slices := append([]Slice(nil), s.Slices()...)
	// Pull job 1's leaf slice back so it overlaps job 0's leaf work.
	moved := false
	for i := range slices {
		if slices[i].Node == leaf && slices[i].Job == 1 {
			slices[i].From -= 3
			slices[i].To -= 3
			moved = true
		}
	}
	if !moved {
		t.Fatal("no leaf slice for job 1 found")
	}
	rep := s.AuditSlices(slices)
	if !hasRule(rep, "overlap") {
		t.Fatalf("report missed overlap: %s", rep.Summary())
	}
}

func TestAuditDetectsOffPath(t *testing.T) {
	tr := tree.Star(2)
	leaf0, leaf1 := tr.Leaves()[0], tr.Leaves()[1]
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 3}}}
	res, err := Run(tr, trace, fixedAssigner{leaf0}, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Sim
	slices := append([]Slice(nil), s.Slices()...)
	// Claim the leaf work happened on the other leaf (a migration that
	// was never recorded).
	for i := range slices {
		if slices[i].Node == leaf0 {
			slices[i].Node = leaf1
		}
	}
	rep := s.AuditSlices(slices)
	if !hasRule(rep, "off-path") {
		t.Fatalf("report missed off-path: %s", rep.Summary())
	}
}

// The Drain auto-audit surfaces a corrupted record as an AuditError.
// (The engine never produces one itself; this exercises the plumbing
// by auditing a doctored log directly.)
func TestAuditErrorFormatting(t *testing.T) {
	s, slices := lineRun(t)
	slices[1].To += 1
	rep := s.AuditSlices(slices)
	err := error(&AuditError{Report: rep})
	var ae *AuditError
	if !errors.As(err, &ae) || ae.Report != rep {
		t.Fatal("AuditError does not unwrap to its report")
	}
	if msg := err.Error(); msg == "" || !hasRule(ae.Report, "speed-budget") {
		t.Fatalf("AuditError message %q lost the violation", msg)
	}
}

// BenchmarkAuditFaultyTrace guards the auditor's single-pass credit
// precompute: a long trace on a node with many fault segments used to
// rescan the whole segment list per slice (quadratic); the sorted
// per-node pass keeps this linear in slices + segments.
func BenchmarkAuditFaultyTrace(b *testing.B) {
	tr := tree.FatTree(4, 1, 2)
	leaves := tr.Leaves()
	var evs []faults.Event
	for i := 0; i < 400; i++ {
		at := float64(i) * 50
		evs = append(evs, faults.Event{
			Kind: faults.Brownout, Node: leaves[i%len(leaves)],
			Start: at, End: at + 25, Factor: 0.5,
		})
	}
	fs, err := faults.Compile(tr, &faults.Plan{Events: evs})
	if err != nil {
		b.Fatal(err)
	}
	trace, err := workload.Poisson(rng.New(1), workload.GenConfig{
		N: 2000, Size: workload.UniformSize{Lo: 1, Hi: 16}, Load: 0.8, Capacity: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	res, err := Run(tr, trace, &oblRR{}, Options{RecordSlices: true, Faults: fs})
	if err != nil {
		b.Fatal(err)
	}
	s := res.Sim
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rep := s.Audit(); !rep.OK() {
			b.Fatalf("audit failed: %s", rep.Summary())
		}
	}
}
