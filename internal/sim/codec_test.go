package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"treesched/internal/tree"
)

// metricsCases are float values that historically trip hand-rolled
// JSON encoders: negative zero, the 'f'/'e' format cutoffs on both
// sides, subnormals, and the largest finite magnitudes.
var metricsFloatCases = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.1, 1.5, 2.0 / 3.0,
	1e-6, 9.999999999999999e-7, -1e-6, 1e-7,
	1e21, 9.999999999999999e20, -1e21, 1.0000000000000001e21,
	1e-9, 1e-300, 5e-324, -5e-324,
	math.MaxFloat64, -math.MaxFloat64, math.SmallestNonzeroFloat64,
	123456789.123456789, 1 / 3.0, 1e20, 1e6,
}

func stdlibLine(t testing.TB, m *JobMetrics) []byte {
	t.Helper()
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("json.Marshal: %v", err)
	}
	return b
}

// The byte-identity contract of the serving layer rides on this
// equivalence: the pooled encoder must reproduce encoding/json
// exactly, field order and float formatting included.
func TestMetricsEncodeMatchesStdlib(t *testing.T) {
	for _, f := range metricsFloatCases {
		m := &JobMetrics{
			ID: 7, Release: f, Completion: f, Flow: f,
			Leaf: tree.NodeID(3), PathWork: f / 3, Weight: 1,
		}
		got, err := AppendJobMetrics(nil, m)
		if err != nil {
			t.Fatalf("AppendJobMetrics(%v): %v", f, err)
		}
		if want := stdlibLine(t, m); !bytes.Equal(got, want) {
			t.Fatalf("encode mismatch for %v:\n got  %s\n want %s", f, got, want)
		}
	}
}

func TestMetricsEncodeAppendsToPrefix(t *testing.T) {
	m := &JobMetrics{ID: 1, Release: 0.5, Completion: 1.5, Flow: 1, Weight: 1}
	out, err := AppendJobMetrics([]byte("prefix"), m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(out, []byte("prefix{")) {
		t.Fatalf("append did not preserve the prefix: %s", out)
	}
}

func TestMetricsEncodeRejectsNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := &JobMetrics{ID: 1, Flow: f, Weight: 1}
		if _, err := AppendJobMetrics(nil, m); err == nil {
			t.Fatalf("AppendJobMetrics accepted non-finite %v (encoding/json rejects it)", f)
		}
	}
}

// The sink built on the codec must emit json.Encoder-identical lines
// and settle at zero allocations per job.
func TestNDJSONSinkMatchesEncoder(t *testing.T) {
	ms := []JobMetrics{
		{ID: 0, Release: 0, Completion: 2.5, Flow: 2.5, Leaf: 4, PathWork: 3, Weight: 1},
		{ID: 1, Release: 1e-7, Completion: 1e21, Flow: 1e21, Leaf: 5, PathWork: 0.25, Weight: 2},
	}
	var got, want bytes.Buffer
	sink := NewNDJSONSink(&got)
	enc := json.NewEncoder(&want)
	for i := range ms {
		if err := sink.Emit(&ms[i]); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(&ms[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("sink output differs from json.Encoder:\n got  %q\n want %q", got.Bytes(), want.Bytes())
	}
}

func TestNDJSONSinkSteadyStateAllocs(t *testing.T) {
	var buf bytes.Buffer
	buf.Grow(1 << 16)
	sink := NewNDJSONSink(&buf)
	m := JobMetrics{ID: 42, Release: 1.25, Completion: 3.5, Flow: 2.25, Leaf: 6, PathWork: 4.5, Weight: 1}
	if err := sink.Emit(&m); err != nil { // warm the buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := sink.Emit(&m); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm NDJSONSink.Emit allocates %.1f/op, want 0", allocs)
	}
}

// FuzzMetricsEncode differentially pins the pooled encoder against
// encoding/json over arbitrary finite field values.
func FuzzMetricsEncode(f *testing.F) {
	f.Add(0, 0.0, 0.0, 0.0, int32(0), 0.0, 0.0)
	f.Add(3, 1.5, 2.75, 1.25, int32(4), 3.5, 1.0)
	f.Add(-1, math.Copysign(0, -1), 1e-6, 9.999999999999999e-7, int32(-2), 1e21, 9.999999999999999e20)
	f.Add(1 << 30, 5e-324, -5e-324, math.MaxFloat64, int32(1<<30), -math.MaxFloat64, 1e-300)
	f.Add(7, 123456789.123456789, 2.0/3.0, 1e20, int32(12), 1e-7, 0.1)
	f.Fuzz(func(t *testing.T, id int, release, completion, flow float64, leaf int32, pathWork, weight float64) {
		m := &JobMetrics{
			ID: id, Release: release, Completion: completion, Flow: flow,
			Leaf: tree.NodeID(leaf), PathWork: pathWork, Weight: weight,
		}
		got, err := AppendJobMetrics(nil, m)
		want, wantErr := json.Marshal(m)
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("error divergence: codec err=%v, stdlib err=%v", err, wantErr)
		}
		if err != nil {
			return
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encode mismatch for %+v:\n got  %s\n want %s", m, got, want)
		}
	})
}
