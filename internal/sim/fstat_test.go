package sim

import (
	"math"
	"testing"

	"treesched/internal/tree"
)

// Naive references: the pre-snapshot per-query scans over the raw
// queue, kept here as the ground truth the fstat fast path must match.

func naiveVolumeHigher(s *Sim, v tree.NodeID, size, release float64, id int) float64 {
	s.sync(v)
	var sum float64
	for _, js := range s.nodes[v].avail.tasks() {
		if higherPriority(js.PrioOnCur, js.Release, js.ID, js.seq, size, release, id, maxSeq) {
			sum += js.Remaining
		}
	}
	return sum
}

func naiveCountLarger(s *Sim, v tree.NodeID, size float64) int {
	count := 0
	var seen []int
	for _, js := range s.nodes[v].avail.tasks() {
		if js.PrioOnCur <= size {
			continue
		}
		dup := false
		for _, id := range seen {
			if id == js.ID {
				dup = true
				break
			}
		}
		if !dup {
			seen = append(seen, js.ID)
			count++
		}
	}
	return count
}

func naiveVolume(s *Sim, v tree.NodeID) float64 {
	s.sync(v)
	var sum float64
	for _, js := range s.nodes[v].avail.tasks() {
		sum += js.Remaining
	}
	return sum
}

// volumesClose compares two volume sums up to summation-order float
// noise (the snapshot sums in priority order, the scan in heap order).
func volumesClose(a, b float64) bool {
	const eps = 1e-9
	return math.Abs(a-b) <= eps*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// fstatChecker is a querying assigner that cross-checks every snapshot
// query against the naive scan at each arrival instant, on every
// root-adjacent node and every leaf, then routes by least volume so the
// queues it perturbs keep mixing.
type fstatChecker struct {
	t *testing.T
}

func (c *fstatChecker) Name() string { return "fstatChecker" }

func (c *fstatChecker) Assign(q *Query, a *Arrival) tree.NodeID {
	t := c.t
	tr := q.Tree()
	s := q.s
	nodes := append(append([]tree.NodeID(nil), tr.RootAdjacent()...), tr.Leaves()...)
	for _, v := range nodes {
		wantVH := naiveVolumeHigher(s, v, a.Size, a.Release, a.ID)
		wantCL := naiveCountLarger(s, v, a.Size)
		wantVol := naiveVolume(s, v)
		gotVH, gotCL := q.AvailStats(v, a.Size, a.Release, a.ID)
		if !volumesClose(gotVH, wantVH) {
			t.Errorf("job %d node %d: AvailStats volHigher=%v, scan=%v", a.ID, v, gotVH, wantVH)
		}
		if gotCL != wantCL {
			t.Errorf("job %d node %d: AvailStats countLarger=%d, scan=%d", a.ID, v, gotCL, wantCL)
		}
		if got := q.AvailVolumeHigher(v, a.Size, a.Release, a.ID); !volumesClose(got, wantVH) {
			t.Errorf("job %d node %d: AvailVolumeHigher=%v, scan=%v", a.ID, v, got, wantVH)
		}
		if got := q.AvailCountLarger(v, a.Size); got != wantCL {
			t.Errorf("job %d node %d: AvailCountLarger=%d, scan=%d", a.ID, v, got, wantCL)
		}
		if got := q.AvailVolume(v); !volumesClose(got, wantVol) {
			t.Errorf("job %d node %d: AvailVolume=%v, scan=%v", a.ID, v, got, wantVol)
		}
		// Half-size probe: exercises hypoRank/countLarger boundaries in
		// the middle of the queue, not just at the arrival's own size.
		if got, want := q.AvailCountLarger(v, a.Size/2), naiveCountLarger(s, v, a.Size/2); got != want {
			t.Errorf("job %d node %d: AvailCountLarger(half)=%d, scan=%d", a.ID, v, got, want)
		}
	}
	best, bestV := tree.None, math.Inf(1)
	for _, l := range tr.Leaves() {
		if v := q.AvailVolume(l); v < bestV {
			best, bestV = l, v
		}
	}
	return best
}

// TestFStatMatchesScan drives loaded runs under every policy (PS takes
// the scan fallback; the rest take the snapshot) and cross-checks each
// query against the naive scan at every arrival.
func TestFStatMatchesScan(t *testing.T) {
	tr := tree.FatTree(4, 2, 2)
	trace := shardTestTrace(t, 11, 300, 4)
	for _, pol := range []Policy{nil, FIFO{}, SRPT{}, WSJF{}, LCFS{}, PS{}} {
		name := "SJF"
		if pol != nil {
			name = pol.Name()
		}
		t.Run(name, func(t *testing.T) {
			if _, err := Run(tr, trace, &fstatChecker{t: t}, Options{Policy: pol}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFStatMatchesScanPacketized repeats the cross-check with jobs
// split into packets: packet siblings share (PrioOnCur, Release, ID),
// exercising the snapshot's distinct-ID de-duplication.
func TestFStatMatchesScanPacketized(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := shardTestTrace(t, 12, 150, 2)
	if _, err := RunPacketized(tr, trace, &fstatChecker{t: t}, Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestFStatQueriesAllocFree pins both AvailCountLarger paths —
// snapshot and PS sorted-scratch fallback — at zero allocations once
// warm, including a forced refresh (the refresh reuses its slices).
func TestFStatQueriesAllocFree(t *testing.T) {
	tr := tree.FatTree(2, 1, 2)
	leaf := tr.Leaves()[0]
	br := tr.Branch(leaf)
	for _, ps := range []bool{false, true} {
		var opts Options
		if ps {
			opts.Policy = PS{}
		}
		s := New(tr, opts)
		for i := 0; i < 64; i++ {
			if _, err := s.Inject(&Arrival{ID: i, Release: 0, Size: 1 + float64(i%7)}, leaf); err != nil {
				t.Fatal(err)
			}
		}
		q := s.Query()
		q.AvailCountLarger(br, 3.5) // warm the scratch / snapshot
		allocs := testing.AllocsPerRun(100, func() {
			s.nodes[br].fsnap.invalidate()
			q.AvailCountLarger(br, 3.5)
			q.AvailVolumeHigher(br, 3.5, 0, 1<<30)
			q.AvailVolume(br)
		})
		if allocs != 0 {
			t.Errorf("ps=%v: %v allocs per warm query round, want 0", ps, allocs)
		}
	}
}

// benchCountLarger measures AvailCountLarger with n tasks queued on a
// root-adjacent node. churn forces a snapshot rebuild per query (the
// worst case: every arrival lands between membership changes); without
// churn the query is a binary search on the clean snapshot. ps selects
// the sorted-scratch fallback path.
func benchCountLarger(b *testing.B, n int, churn, ps bool) {
	tr := tree.FatTree(2, 1, 2)
	var opts Options
	if ps {
		opts.Policy = PS{}
	}
	s := New(tr, opts)
	leaf := tr.Leaves()[0]
	br := tr.Branch(leaf)
	for i := 0; i < n; i++ {
		if _, err := s.Inject(&Arrival{ID: i, Release: 0, Size: 1 + float64(i%7)}, leaf); err != nil {
			b.Fatal(err)
		}
	}
	q := s.Query()
	var sink int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if churn {
			s.nodes[br].fsnap.invalidate()
		}
		sink += q.AvailCountLarger(br, 3.5)
	}
	_ = sink
}

func BenchmarkAvailCountLarger(b *testing.B) {
	for _, n := range []int{4, 16, 128, 1024} {
		b.Run("snapshot/n="+itoa(n), func(b *testing.B) { benchCountLarger(b, n, false, false) })
		b.Run("snapshot-churn/n="+itoa(n), func(b *testing.B) { benchCountLarger(b, n, true, false) })
		b.Run("ps-scan/n="+itoa(n), func(b *testing.B) { benchCountLarger(b, n, false, true) })
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
