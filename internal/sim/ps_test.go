package sim

import (
	"math"
	"testing"

	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func TestPSSingleJobMatchesDedicated(t *testing.T) {
	tr := tree.Line(2)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 4}}}
	ps, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{Policy: PS{}, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ps.Jobs[0].Completion, 12, 1e-9, "PS single-job completion")
	approx(t, ps.Stats.FracFlow, 10, 1e-6, "PS single-job fractional")
}

func TestPSSharesEqually(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
	}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{Policy: PS{}, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Relay shares: both finish the relay at t=4; leaf shares: both
	// finish at t=8.
	approx(t, res.Jobs[0].Completion, 8, 1e-9, "job 0 completion")
	approx(t, res.Jobs[1].Completion, 8, 1e-9, "job 1 completion")
	// SJF on the same instance: A relay 0-2, B 2-4; A leaf 2-4,
	// B leaf 4-6 -> total 10 < PS total 16.
	sjf, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{Policy: SJF{}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sjf.Stats.TotalFlow, 10, 1e-9, "SJF total")
	if res.Stats.TotalFlow <= sjf.Stats.TotalFlow {
		t.Fatal("PS should lose to SJF on total flow for equal jobs")
	}
}

func TestPSUnequalSizes(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 1},
		{ID: 1, Release: 0, Size: 3},
	}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{Policy: PS{}, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Relay: shared until small job finishes at t=2 (each got 1 unit);
	// big job then runs alone, finishing its remaining 2 at t=4.
	// Leaf: small job arrives at 2, runs alone (big still upstream)
	// and finishes at 3. Big arrives at 4, runs alone, finishes at 7.
	approx(t, res.Jobs[0].Completion, 3, 1e-9, "small job")
	approx(t, res.Jobs[1].Completion, 7, 1e-9, "big job")
}

func TestPSLateArrivalJoinsShare(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 4},
		{ID: 1, Release: 2, Size: 1},
	}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{Policy: PS{}, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Relay: job0 alone 0-2 (2 done). Then shared: job1 (1 unit)
	// finishes at t=4; job0's last unit alone finishes at t=5.
	// Leaf: job1 arrives 4, alone until job0 arrives at 5 with job1
	// having done 1 at... job1 leaf work 1: 4-5 alone -> done at 5.
	// Job0 leaf 5-9.
	approx(t, res.Jobs[1].Completion, 5, 1e-9, "small completion")
	approx(t, res.Jobs[0].Completion, 9, 1e-9, "big completion")
}

// PS conservation: total work processed equals total demand, and the
// active-count integral still equals total flow.
func TestPSInvariants(t *testing.T) {
	r := rng.New(55)
	for iter := 0; iter < 20; iter++ {
		tr := tree.Random(r, tree.RandomConfig{Branches: 1 + r.Intn(3), MaxDepth: 2 + r.Intn(3), MaxChildren: 2, LeafProb: 0.5})
		trace, err := workload.Poisson(r, workload.GenConfig{
			N:        60,
			Size:     workload.UniformSize{Lo: 0.5, Hi: 6},
			Load:     0.4 + r.Float64(),
			Capacity: float64(len(tr.RootAdjacent())),
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(tr, trace, &rrAssigner{}, Options{Policy: PS{}, SelfCheck: true, Instrument: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Stats.ActiveIntegral-res.Stats.TotalFlow) > 1e-6*math.Max(1, res.Stats.TotalFlow) {
			t.Fatalf("iter %d: active integral %v != total flow %v", iter, res.Stats.ActiveIntegral, res.Stats.TotalFlow)
		}
		if res.Stats.FracFlow > res.Stats.TotalFlow+1e-6 {
			t.Fatalf("iter %d: fractional exceeds integral", iter)
		}
		// Store-and-forward still holds.
		for _, js := range res.Sim.Tasks() {
			for h := 1; h < len(js.Path); h++ {
				if js.HopArrive[h] < js.HopComplete[h-1]-1e-9 {
					t.Fatalf("iter %d: precedence violated", iter)
				}
			}
		}
	}
}

// Under PS the completion order on one node follows remaining work.
func TestPSCompletionOrderDeterministic(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
		{ID: 2, Release: 0, Size: 2},
	}}
	a, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{Policy: PS{}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{Policy: PS{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Jobs {
		if a.Jobs[i].Completion != b.Jobs[i].Completion {
			t.Fatal("PS runs are not deterministic")
		}
	}
}
