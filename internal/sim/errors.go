package sim

import (
	"fmt"
	"strings"

	"treesched/internal/tree"
)

// maxErrDump bounds how many task snapshots an engine error carries;
// beyond it only the count is reported.
const maxErrDump = 8

// TaskDump is one task's state snapshot carried by engine errors, so
// a failed run reports where each stuck task was instead of a bare
// panic string.
type TaskDump struct {
	Job       int
	Seq       int64
	Node      tree.NodeID // current node; tree.None when completed
	Hop       int
	PathLen   int
	Remaining float64
	Release   float64
	Leaf      tree.NodeID
}

func (d TaskDump) String() string {
	return fmt.Sprintf("task %d (seq %d) at node %d (hop %d/%d, %.6g remaining, released %.6g, leaf %d)",
		d.Job, d.Seq, d.Node, d.Hop+1, d.PathLen, d.Remaining, d.Release, d.Leaf)
}

func dumpTask(js *JobState) TaskDump {
	return TaskDump{
		Job: js.ID, Seq: js.seq, Node: js.CurrentNode(),
		Hop: js.Hop, PathLen: len(js.Path),
		Remaining: js.Remaining, Release: js.Release, Leaf: js.Leaf,
	}
}

func dumpActive(s *Sim) (dumps []TaskDump, total int) {
	for _, js := range s.tasks {
		if js == nil || js.Completed {
			continue
		}
		total++
		if len(dumps) < maxErrDump {
			dumps = append(dumps, dumpTask(js))
		}
	}
	return dumps, total
}

func formatDumps(b *strings.Builder, dumps []TaskDump, total int) {
	for _, d := range dumps {
		b.WriteString("\n  ")
		b.WriteString(d.String())
	}
	if total > len(dumps) {
		fmt.Fprintf(b, "\n  ... and %d more", total-len(dumps))
	}
}

// StuckError reports a Drain that ran out of events with tasks still
// active: with fault injection this means tasks were held on (or
// upstream of) a permanently lost leaf; without faults it indicates
// an engine bug.
type StuckError struct {
	Now    float64
	Active int
	Tasks  []TaskDump
}

func (e *StuckError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: drained with %d active task(s) stuck at t=%.6g", e.Active, e.Now)
	formatDumps(&b, e.Tasks, e.Active)
	return b.String()
}

// InternalError reports a violated engine invariant (a bug, not a
// user error): the failing operation, the simulation time, and a
// snapshot of the active tasks. The engine panics with *InternalError
// at the point of detection; Drain, ReplayOn and RunPacketized
// recover it into an ordinary error return.
type InternalError struct {
	Op    string
	Now   float64
	Msg   string
	Tasks []TaskDump
	// ActiveTotal is the full active-task count when len(Tasks) was
	// capped at maxErrDump.
	ActiveTotal int
}

func (e *InternalError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sim: internal error in %s at t=%.6g: %s", e.Op, e.Now, e.Msg)
	formatDumps(&b, e.Tasks, e.ActiveTotal)
	return b.String()
}

// internalErr builds an InternalError with the active-task snapshot.
// During a parallel section the snapshot is skipped: walking the task
// list would race with the other shard workers.
func (s *Sim) internalErr(op, format string, args ...interface{}) *InternalError {
	if s.par {
		return &InternalError{Op: op, Now: s.now, Msg: fmt.Sprintf(format, args...)}
	}
	dumps, total := dumpActive(s)
	return &InternalError{Op: op, Now: s.now, Msg: fmt.Sprintf(format, args...), Tasks: dumps, ActiveTotal: total}
}

// recoverInternal converts a typed engine panic into an error return;
// any other panic propagates unchanged.
func recoverInternal(err *error) {
	if r := recover(); r != nil {
		ie, ok := r.(*InternalError)
		if !ok {
			panic(r)
		}
		*err = ie
	}
}
