package sim

import (
	"treesched/internal/tree"
)

// Query is the read-only view of engine state handed to Assigners and
// to the instrumentation (potential function, Lemma validators). All
// volumes are synced to the current simulation time before being read.
type Query struct {
	s *Sim
}

// Query returns the read-only state view. The view is owned by the
// engine and reused across calls, so the accessor does not allocate on
// the per-arrival assignment path.
func (s *Sim) Query() *Query {
	s.query.s = s
	return &s.query
}

// Tree returns the topology.
func (q *Query) Tree() *tree.Tree { return q.s.tree }

// Now returns the current simulation time.
func (q *Query) Now() float64 { return q.s.now }

// AvailVolumeHigher returns Σ p^A_{i,v}(t) over the jobs currently
// available on node v with strictly higher SJF priority than a
// hypothetical job with the given (size, release, id) — the volume
// term of the paper's F(j,v) (S_{v,j} minus J_j itself; the caller
// adds p_j for J_j's own membership in S).
func (q *Query) AvailVolumeHigher(v tree.NodeID, size, release float64, id int) float64 {
	n := &q.s.nodes[v]
	if q.s.ps {
		// Processor sharing drains every available task at once, so the
		// snapshot's stored-Remaining correction does not apply; scan.
		q.s.sync(v)
		var sum float64
		for _, js := range n.avail.tasks() {
			if higherPriority(js.PrioOnCur, js.Release, js.ID, js.seq, size, release, id, maxSeq) {
				sum += js.Remaining
			}
		}
		return sum
	}
	sc := &n.scratch
	epoch := q.s.shards[n.shard].epoch
	if !DisableDispatchMemo && sc.epoch == epoch && sc.size == size && sc.release == release && sc.id == id {
		// A full AvailStats record for these arguments is current;
		// recomputing would reproduce the same bits (see fstat.stats).
		return sc.volHigher
	}
	f := q.s.refreshFStat(n)
	return f.volumeHigher(n, size, release, id)
}

// AvailCountLarger returns |{J_i available on v : p_{i,v} > size}| —
// the displacement term of F(j,v). Distinct jobs are counted once even
// when split into packets; the de-duplication scratch lives on the
// engine so the per-arrival assignment path stays allocation-free.
func (q *Query) AvailCountLarger(v tree.NodeID, size float64) int {
	n := &q.s.nodes[v]
	if !q.s.ps {
		// The count depends only on size, so an AvailStats record with
		// a matching epoch and size answers it regardless of the
		// (release, id) it was probed with.
		sc := &n.scratch
		if !DisableDispatchMemo && sc.epoch == q.s.shards[n.shard].epoch && sc.size == size {
			return sc.count
		}
		f := q.s.refreshFStat(n)
		return f.countLarger(size)
	}
	// PS fallback: collect the qualifying IDs into the engine-owned
	// scratch, sort it, and count adjacency groups — O(k log k) instead
	// of the quadratic linear-probe the scratch used to be scanned
	// with, still allocation-free.
	seen := q.s.scratchIDs[:0]
	for _, js := range n.avail.tasks() {
		if js.PrioOnCur > size {
			seen = append(seen, js.ID)
		}
	}
	count := countDistinct(seen)
	q.s.scratchIDs = seen[:0]
	return count
}

// countDistinct sorts ids in place (insertion sort: the scratch is
// small and often nearly sorted, and the routine must not allocate)
// and counts distinct values.
func countDistinct(ids []int) int {
	for i := 1; i < len(ids); i++ {
		v := ids[i]
		j := i - 1
		for j >= 0 && ids[j] > v {
			ids[j+1] = ids[j]
			j--
		}
		ids[j+1] = v
	}
	count := 0
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			count++
		}
	}
	return count
}

// AvailVolume returns the total remaining volume available on v.
func (q *Query) AvailVolume(v tree.NodeID) float64 {
	n := &q.s.nodes[v]
	if q.s.ps {
		q.s.sync(v)
		var sum float64
		for _, js := range n.avail.tasks() {
			sum += js.Remaining
		}
		return sum
	}
	sc := &n.scratch
	epoch := q.s.shards[n.shard].epoch
	if !DisableDispatchMemo && sc.volEpoch == epoch {
		return sc.vol
	}
	f := q.s.refreshFStat(n)
	vol := f.volume(n)
	sc.volEpoch, sc.vol = epoch, vol
	return vol
}

// AvailStats returns AvailVolumeHigher and AvailCountLarger of v in
// one call — the two node-local terms of the paper's F(j,v), answered
// from a single snapshot refresh. The greedy assigners use this on
// the root-adjacent node of every candidate branch.
func (q *Query) AvailStats(v tree.NodeID, size, release float64, id int) (volHigher float64, countLarger int) {
	n := &q.s.nodes[v]
	if q.s.ps {
		return q.AvailVolumeHigher(v, size, release, id), q.AvailCountLarger(v, size)
	}
	sc := &n.scratch
	epoch := q.s.shards[n.shard].epoch
	if !DisableDispatchMemo && sc.epoch == epoch && sc.size == size && sc.release == release && sc.id == id {
		return sc.volHigher, sc.count
	}
	f := q.s.refreshFStat(n)
	vh, c := f.stats(n, size, release, id)
	sc.epoch, sc.size, sc.release, sc.id = epoch, size, release, id
	sc.volHigher, sc.count = vh, c
	return vh, c
}

// AvailCount returns the number of jobs available on v.
func (q *Query) AvailCount(v tree.NodeID) int {
	return q.s.nodes[v].avail.len()
}

// AssignedUpstreamWork returns Σ LeafWork over the jobs assigned to
// leaf that have not yet arrived at it — the store-and-forward backlog
// still in flight down the path. Together with AvailVolume(leaf) it
// gives the leaf's total committed volume in O(1), replacing the
// per-leaf LeafQueue scan (the sum is maintained incrementally, so its
// float rounding may differ from a scan's by final ulps).
func (q *Query) AssignedUpstreamWork(leaf tree.NodeID) float64 {
	return q.s.upstreamWork[q.s.tree.LeafIndex(leaf)]
}

// remainingOnLeaf returns p^A_{i,leaf}(t): the task's remaining work
// on its assigned leaf (full leaf work while still upstream).
func (q *Query) remainingOnLeaf(js *JobState) float64 {
	if js.Hop == len(js.Path)-1 {
		q.s.sync(js.Leaf)
		return js.Remaining
	}
	return js.LeafWork
}

// LeafQueue describes the paper's Q_v(t) for a leaf v: all incomplete
// jobs assigned to it, wherever they currently are on the path.
// The returned slice is live engine state; do not mutate.
func (q *Query) LeafQueue(leaf tree.NodeID) []*JobState {
	return q.s.assigned[q.s.tree.LeafIndex(leaf)]
}

// LeafVolumeHigher returns Σ_{J_i ∈ S_{v,j}(t)} p^A_{i,v}(t) over jobs
// assigned to leaf v with higher priority than (sizeOnLeaf, release,
// id), excluding J_j itself — the first term of the paper's F'(j,v).
func (q *Query) LeafVolumeHigher(leaf tree.NodeID, sizeOnLeaf, release float64, id int) float64 {
	var sum float64
	for _, js := range q.LeafQueue(leaf) {
		if higherPriority(js.PrioLeaf, js.Release, js.ID, js.seq, sizeOnLeaf, release, id, maxSeq) {
			sum += q.remainingOnLeaf(js)
		}
	}
	return sum
}

// LeafFracLarger returns Σ_{J_i ∈ Q_v(t), p_{i,v} > sizeOnLeaf}
// p^A_{i,v}(t)/p_{i,v} — the fractional displacement term of F'(j,v).
func (q *Query) LeafFracLarger(leaf tree.NodeID, sizeOnLeaf float64) float64 {
	var sum float64
	for _, js := range q.LeafQueue(leaf) {
		if js.PrioLeaf > sizeOnLeaf {
			sum += js.FracWeight * q.remainingOnLeaf(js) / js.LeafWork
		}
	}
	return sum
}

// BranchFracRemaining returns Σ_{v'∈L(v)} Σ_{J_i∈Q_{v'}(t)}
// p^A_{i,v'}(t)/p_{i,v'}: the total remaining leaf-work fraction of
// jobs routed into the subtree of v — the α_{v,t} dual variable of
// the paper's Section 3.5 for root-adjacent v.
func (q *Query) BranchFracRemaining(v tree.NodeID) float64 {
	var sum float64
	for _, leaf := range q.s.tree.SubtreeLeaves(v) {
		for _, js := range q.LeafQueue(leaf) {
			sum += js.FracWeight * q.remainingOnLeaf(js) / js.LeafWork
		}
	}
	return sum
}

// PendingOn returns the paper's Q_v(t) for any node v: tasks routed
// through v that have not completed processing on v. Requires
// Options.Instrument. Live engine state; do not mutate.
func (q *Query) PendingOn(v tree.NodeID) []*JobState {
	// Checked via the options, not pendingOn's nil-ness: a Reset from
	// instrumented to uninstrumented keeps the buffers allocated.
	if !q.s.opts.Instrument {
		panic("sim: PendingOn requires Options.Instrument")
	}
	return q.s.pendingOn[v]
}

// RemainingOn returns p^A_{i,v}(t): js's remaining processing on node
// v, assuming v is on js's path at or after its current hop.
func (q *Query) RemainingOn(js *JobState, v tree.NodeID) float64 {
	if js.Hop < len(js.Path) && js.Path[js.Hop] == v {
		q.s.sync(v)
		return js.Remaining
	}
	// Not yet reached: full requirement.
	if v == js.Leaf {
		return js.LeafWork
	}
	return js.RouterSize
}

// SizeOn returns the full (original) processing requirement of js on v.
func (q *Query) SizeOn(js *JobState, v tree.NodeID) float64 {
	if v == js.Leaf {
		return js.LeafWork
	}
	return js.RouterSize
}

// PrioSizeOn returns the priority size (the original job's size) of
// js on node v; equals SizeOn for whole jobs.
func (q *Query) PrioSizeOn(js *JobState, v tree.NodeID) float64 {
	if v == js.Leaf {
		return js.PrioLeaf
	}
	return js.PrioRouter
}

// HigherPriorityOn reports whether task i precedes a hypothetical job
// (size, release, id) in SJF order on node v.
func (q *Query) HigherPriorityOn(i *JobState, v tree.NodeID, size, release float64, id int) bool {
	return higherPriority(q.PrioSizeOn(i, v), i.Release, i.ID, i.seq, size, release, id, maxSeq)
}

// maxSeq stands in for the engine sequence number of a job that has
// not been injected yet: already-injected tasks with identical keys
// and ID (packet siblings) keep priority over it.
const maxSeq = int64(1) << 62
