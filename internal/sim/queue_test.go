package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"treesched/internal/rng"
)

func mkTask(id int, seq int64, k1, k2 float64) *JobState {
	return &JobState{ID: id, seq: seq, key1: k1, key2: k2, qidx: -1}
}

// Draining the heap by repeated min+remove must yield tasks in exact
// priority order, matching a sort of the same keys.
func TestHeapQueueDrainsSorted(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		h := newHeapQueue()
		n := 1 + r.Intn(60)
		var all []*JobState
		for i := 0; i < n; i++ {
			js := mkTask(r.Intn(10), int64(i), float64(r.Intn(6)), float64(r.Intn(4)))
			all = append(all, js)
			h.push(js)
		}
		want := append([]*JobState(nil), all...)
		sort.SliceStable(want, func(a, b int) bool {
			x, y := want[a], want[b]
			return higherPriority(x.key1, x.key2, x.ID, x.seq, y.key1, y.key2, y.ID, y.seq)
		})
		for _, w := range want {
			got := h.min()
			if got != w {
				return false
			}
			h.remove(got)
		}
		return h.len() == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Arbitrary interleavings of push/remove/fix must keep the heap and
// the scan queue in agreement on the minimum.
func TestQueueImplementationsAgree(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		h, sc := newHeapQueue(), newScanQueue()
		// Two parallel element sets (qidx is per-queue state).
		var hItems, sItems []*JobState
		for step := 0; step < 200; step++ {
			switch {
			case len(hItems) == 0 || r.Bool(0.5):
				k1, k2 := float64(r.Intn(8)), float64(r.Intn(4))
				id, seq := r.Intn(12), int64(step)
				a, b := mkTask(id, seq, k1, k2), mkTask(id, seq, k1, k2)
				h.push(a)
				sc.push(b)
				hItems = append(hItems, a)
				sItems = append(sItems, b)
			case r.Bool(0.3):
				// Update a random element's key and fix.
				i := r.Intn(len(hItems))
				k1, k2 := float64(r.Intn(8)), float64(r.Intn(4))
				hItems[i].key1, hItems[i].key2 = k1, k2
				sItems[i].key1, sItems[i].key2 = k1, k2
				h.fix(hItems[i])
				sc.fix(sItems[i])
			default:
				i := r.Intn(len(hItems))
				h.remove(hItems[i])
				sc.remove(sItems[i])
				hItems = append(hItems[:i], hItems[i+1:]...)
				sItems = append(sItems[:i], sItems[i+1:]...)
			}
			hm, sm := h.min(), sc.min()
			if (hm == nil) != (sm == nil) {
				return false
			}
			if hm != nil && (hm.key1 != sm.key1 || hm.key2 != sm.key2 || hm.ID != sm.ID || hm.seq != sm.seq) {
				return false
			}
			if h.len() != sc.len() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQueueRemoveForeignPanics(t *testing.T) {
	h := newHeapQueue()
	h.push(mkTask(0, 0, 1, 1))
	foreign := mkTask(1, 1, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("removing a foreign task did not panic")
		}
	}()
	h.remove(foreign)
}
