package sim

import (
	"math"
	"testing"

	"treesched/internal/tree"
)

func TestRootCapacity(t *testing.T) {
	tr := tree.FatTree(3, 1, 2)
	if got := RootCapacity(tr); got != 3 {
		t.Fatalf("RootCapacity(fattree:3,1,2) = %v, want 3", got)
	}
	fast := tr.WithUniformSpeed(1.5)
	if got := RootCapacity(fast); got != 4.5 {
		t.Fatalf("RootCapacity at speed 1.5 = %v, want 4.5", got)
	}
}

func TestBacklogEstimatorDrain(t *testing.T) {
	e := NewBacklogEstimator(2)
	if b := e.Offer(0, 10); b != 10 {
		t.Fatalf("backlog after first offer = %v, want 10", b)
	}
	// 3 time units at capacity 2 drain 6 of the 10.
	e.AdvanceTo(3)
	if b := e.Backlog(); b != 4 {
		t.Fatalf("backlog at t=3 = %v, want 4", b)
	}
	// The drain never runs the estimate negative.
	e.AdvanceTo(100)
	if b := e.Backlog(); b != 0 {
		t.Fatalf("backlog at t=100 = %v, want 0", b)
	}
	// ... and never runs backwards.
	e.AdvanceTo(50)
	if now := e.Now(); now != 100 {
		t.Fatalf("frontier moved backwards to %v", now)
	}
	if dt := e.DrainTime(8); dt != 4 {
		t.Fatalf("DrainTime(8) = %v, want 4", dt)
	}
}

func TestBacklogEstimatorLateFirstRelease(t *testing.T) {
	// A first release far from t=0 must not pre-drain work that was
	// never offered: the frontier starts at the first observed time.
	e := NewBacklogEstimator(1)
	if b := e.Offer(1000, 5); b != 5 {
		t.Fatalf("backlog after late first offer = %v, want 5", b)
	}
}

func TestBacklogEstimatorStability(t *testing.T) {
	// Offered rate 0.5 per unit time against capacity 1: stable.
	e := NewBacklogEstimator(1)
	for i := 0; i < 100; i++ {
		e.Offer(float64(i), 0.5)
	}
	if u := e.Utilization(); !(u > 0.4 && u < 0.6) {
		t.Fatalf("stable run utilization = %v, want ~0.5", u)
	}
	if !e.Stable() {
		t.Fatal("stable run reported unstable")
	}

	// Offered rate 3 per unit time against capacity 1: unstable, and
	// the backlog estimate grows linearly in the arrival count.
	o := NewBacklogEstimator(1)
	var prev float64
	for i := 0; i < 100; i++ {
		b := o.Offer(float64(i), 3)
		if i > 0 && b <= prev {
			t.Fatalf("unstable backlog not increasing at job %d: %v -> %v", i, prev, b)
		}
		prev = b
	}
	if o.Stable() {
		t.Fatal("unstable run reported stable")
	}
	if u := o.Utilization(); !(u > 2.9 && u < 3.2) {
		t.Fatalf("unstable run utilization = %v, want ~3", u)
	}
}

func TestBacklogEstimatorInstantBurst(t *testing.T) {
	// Everything at one instant: no span to amortize over, so any
	// offered work is an overload signal.
	e := NewBacklogEstimator(4)
	if u := e.Utilization(); u != 0 {
		t.Fatalf("empty estimator utilization = %v, want 0", u)
	}
	e.Offer(5, 1)
	e.Offer(5, 1)
	if u := e.Utilization(); !math.IsInf(u, 1) {
		t.Fatalf("instant-burst utilization = %v, want +Inf", u)
	}
	if e.Stable() {
		t.Fatal("instant burst reported stable")
	}
}

func TestBacklogEstimatorBadCapacity(t *testing.T) {
	for _, c := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBacklogEstimator(%v) did not panic", c)
				}
			}()
			NewBacklogEstimator(c)
		}()
	}
}
