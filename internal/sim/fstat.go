// Per-node F-statistic snapshots: the mergeable aggregates behind the
// paper's greedy dispatch rule. The F(j,v) terms an assigner queries —
// AvailVolumeHigher, AvailCountLarger, AvailVolume — are sums over the
// tasks available on one node, ordered by the SJF priority comparator.
// Instead of rescanning the queue per arrival, each node keeps a
// snapshot of its available set sorted by that comparator with prefix
// aggregates. The first query seeds the sorted set with one full sort;
// afterwards queue membership changes (push/remove at event
// boundaries) maintain it incrementally — a task's sort key is fixed
// between memberships, so a binary-searched insert or delete keeps the
// order exact — and only mark the prefix aggregates dirty, which the
// next query rebuilds in one comparator-free pass. Between membership
// changes the only value that drifts is the running task's Remaining
// (non-PS nodes progress one task at a time), which the query corrects
// against the stored value, so answers are exact at every instant.
//
// Because the comparator is a total order, the qualifying set of
// AvailVolumeHigher is a prefix of the snapshot and the qualifying set
// of AvailCountLarger a suffix, turning both queries into one binary
// search over the refreshed snapshot. Packets of one job share
// (PrioOnCur, Release, ID), so equal-ID tasks are adjacent in the sort
// and the distinct-job prefix counts de-duplicate them exactly.
//
// The snapshots decompose over the engine's shards: a node's snapshot
// depends only on its own queue, so the per-subtree aggregates the
// greedy rule reads are maintained shard-locally and any dispatch
// prepass can refresh them without cross-shard state. Processor
// sharing drains every available task at once, invalidating the
// stored-Remaining correction, so PS mode bypasses the snapshots.
package sim

import (
	"slices"
	"sort"
)

// fstat is one node's snapshot. Zero value = inactive: nodes pay
// nothing until first queried (only root-adjacent nodes and leaves are
// queried by the shipped assigners).
type fstat struct {
	active bool
	dirty  bool
	// tasks is the node's available set sorted by the SJF priority
	// comparator (highest priority first); stored[i] is tasks[i]'s
	// Remaining captured at refresh time.
	tasks  []*JobState
	stored []float64
	// prefixVol[i] = Σ stored[:i]; prefixCnt[i] = number of distinct
	// job IDs among tasks[:i]. Both have len(tasks)+1 entries.
	prefixVol []float64
	prefixCnt []int32
}

// invalidate marks the prefix aggregates stale (the sorted set itself
// stays valid; it is maintained by insert/remove).
func (f *fstat) invalidate() { f.dirty = true }

// insert adds js to the sorted set of an active snapshot. The prefix
// aggregates go stale; the next query rebuilds them.
func (f *fstat) insert(js *JobState) {
	i := sort.Search(len(f.tasks), func(k int) bool {
		t := f.tasks[k]
		return !higherPriority(t.PrioOnCur, t.Release, t.ID, t.seq, js.PrioOnCur, js.Release, js.ID, js.seq)
	})
	f.tasks = append(f.tasks, nil)
	copy(f.tasks[i+1:], f.tasks[i:])
	f.tasks[i] = js
	f.dirty = true
}

// remove deletes js from the sorted set of an active snapshot. The
// binary search keys off js's current sort key; if a caller ever
// mutated the key before removing (none do today), the linear fallback
// keeps removal correct anyway.
func (f *fstat) remove(js *JobState) {
	i := sort.Search(len(f.tasks), func(k int) bool {
		t := f.tasks[k]
		return !higherPriority(t.PrioOnCur, t.Release, t.ID, t.seq, js.PrioOnCur, js.Release, js.ID, js.seq)
	})
	if i >= len(f.tasks) || f.tasks[i] != js {
		i = slices.Index(f.tasks, js)
		if i < 0 {
			panic("sim: fstat: removing a task absent from the snapshot")
		}
	}
	f.tasks = append(f.tasks[:i], f.tasks[i+1:]...)
	f.dirty = true
}

// clear returns the snapshot to the inactive state (Reset), retaining
// capacity.
func (f *fstat) clear() {
	f.active = false
	f.dirty = true
	f.tasks = f.tasks[:0]
	f.stored = f.stored[:0]
	f.prefixVol = f.prefixVol[:0]
	f.prefixCnt = f.prefixCnt[:0]
}

// refreshFStat returns node v's snapshot, with its prefix aggregates
// rebuilt if stale. The node is synced first so stored Remaining
// values (and the later running correction) are anchored at the shard
// clock. The first call on a node pays one full sort to seed the
// sorted set; from then on insert/remove keep it ordered and a refresh
// is a single comparator-free pass. Callers must not use it in PS
// mode.
func (s *Sim) refreshFStat(n *nodeState) *fstat {
	s.sync(n.id)
	f := &n.fsnap
	if !f.active {
		f.active = true
		f.dirty = true
		f.tasks = append(f.tasks[:0], n.avail.tasks()...)
		slices.SortFunc(f.tasks, func(a, b *JobState) int {
			if higherPriority(a.PrioOnCur, a.Release, a.ID, a.seq, b.PrioOnCur, b.Release, b.ID, b.seq) {
				return -1
			}
			return 1 // comparator is total (seq is unique): no equal pairs
		})
	}
	if !f.dirty {
		return f
	}
	n2 := len(f.tasks)
	if cap(f.prefixVol) < n2+1 {
		f.stored = make([]float64, 0, cap(f.tasks))
		f.prefixVol = make([]float64, 0, cap(f.tasks)+1)
		f.prefixCnt = make([]int32, 0, cap(f.tasks)+1)
	}
	f.stored = f.stored[:n2]
	f.prefixVol = f.prefixVol[:n2+1]
	f.prefixCnt = f.prefixCnt[:n2+1]
	f.prefixVol[0] = 0
	f.prefixCnt[0] = 0
	for i, js := range f.tasks {
		f.stored[i] = js.Remaining
		f.prefixVol[i+1] = f.prefixVol[i] + js.Remaining
		c := f.prefixCnt[i]
		if i == 0 || f.tasks[i-1].ID != js.ID {
			c++
		}
		f.prefixCnt[i+1] = c
	}
	f.dirty = false
	return f
}

// hypoRank returns the number of snapshot tasks with strictly higher
// priority than a hypothetical not-yet-injected job (size, release,
// id) — the length of the qualifying prefix of AvailVolumeHigher.
func (f *fstat) hypoRank(size, release float64, id int) int {
	return sort.Search(len(f.tasks), func(k int) bool {
		t := f.tasks[k]
		return !higherPriority(t.PrioOnCur, t.Release, t.ID, t.seq, size, release, id, maxSeq)
	})
}

// runCorrection returns the running task's progress since the last
// refresh (stored − current Remaining) when the running task falls in
// the qualifying prefix [0, rank); membership only changes through
// push/remove, which invalidate the snapshot, so between refreshes
// exactly one task's Remaining can drift.
func (f *fstat) runCorrection(n *nodeState, rank int) float64 {
	r := n.running
	if r == nil {
		return 0
	}
	i := sort.Search(len(f.tasks), func(k int) bool {
		t := f.tasks[k]
		return !higherPriority(t.PrioOnCur, t.Release, t.ID, t.seq, r.PrioOnCur, r.Release, r.ID, r.seq)
	})
	if i >= rank || i >= len(f.tasks) || f.tasks[i] != r {
		return 0
	}
	return r.Remaining - f.stored[i]
}

// volumeHigher answers AvailVolumeHigher from the snapshot.
func (f *fstat) volumeHigher(n *nodeState, size, release float64, id int) float64 {
	rank := f.hypoRank(size, release, id)
	return f.prefixVol[rank] + f.runCorrection(n, rank)
}

// volume answers AvailVolume from the snapshot (the whole set
// qualifies, so the correction always applies when a task runs).
func (f *fstat) volume(n *nodeState) float64 {
	rank := len(f.tasks)
	return f.prefixVol[rank] + f.runCorrection(n, rank)
}

// countLarger answers AvailCountLarger from the snapshot: tasks with
// PrioOnCur > size form a suffix of the priority order (PrioOnCur is
// the comparator's first tier), and equal-ID packets never straddle
// the boundary (they share PrioOnCur), so the distinct-job count of
// the suffix is the difference of prefix counts.
func (f *fstat) countLarger(size float64) int {
	i := sort.Search(len(f.tasks), func(k int) bool {
		return f.tasks[k].PrioOnCur > size
	})
	n := len(f.tasks)
	return int(f.prefixCnt[n] - f.prefixCnt[i])
}
