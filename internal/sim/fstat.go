// Per-node F-statistic snapshots: the mergeable aggregates behind the
// paper's greedy dispatch rule. The F(j,v) terms an assigner queries —
// AvailVolumeHigher, AvailCountLarger, AvailVolume — are sums over the
// tasks available on one node, ordered by the SJF priority comparator.
// Instead of rescanning the queue per arrival, each node keeps a
// snapshot of its available set sorted by that comparator with prefix
// aggregates. The first query seeds the sorted set with one full sort;
// afterwards queue membership changes (push/remove at event
// boundaries) maintain it incrementally — a task's sort key is fixed
// between memberships, so a binary-searched insert or delete keeps the
// order exact — and only mark the prefix aggregates stale from the
// changed rank on, which the next query patches in one comparator-free
// pass over the suffix. Between membership changes the only value that
// drifts is the running task's Remaining (non-PS nodes progress one
// task at a time), which the query corrects against the stored value;
// when a preemption switches the running task without a membership
// change (possible under SRPT, whose key drifts with Remaining), the
// engine marks the preempted task's rank stale explicitly
// (markStale), so answers are exact at every instant.
//
// The snapshot stores its sorted set in tasks[off:]: removing the
// highest-priority task — the common case, since non-PS nodes complete
// the queue head — just advances off, leaving every prefix aggregate
// valid, and queries subtract the prefix base at off. The buffer
// compacts once the dead prefix dominates the live window, so memory
// stays proportional to the live set.
//
// Because the comparator is a total order, the qualifying set of
// AvailVolumeHigher is a prefix of the snapshot and the qualifying set
// of AvailCountLarger a suffix, turning both queries into binary
// searches over the refreshed snapshot. Packets of one job share
// (PrioOnCur, Release, ID), so equal-ID tasks are adjacent in the sort
// and the distinct-job prefix counts de-duplicate them exactly.
//
// The snapshots decompose over the engine's shards: a node's snapshot
// depends only on its own queue, so the per-subtree aggregates the
// greedy rule reads are maintained shard-locally and any dispatch
// prepass can refresh them without cross-shard state. Processor
// sharing drains every available task at once, invalidating the
// stored-Remaining correction, so PS mode bypasses the snapshots.
package sim

import (
	"slices"
)

// fstatCompactMin is the dead-prefix length below which remove never
// compacts: keeping a small slack absorbs the head-trim/head-insert
// churn of steady-state dispatch without any copying.
const fstatCompactMin = 32

// fstat is one node's snapshot. Zero value = inactive: nodes pay
// nothing until first queried (only root-adjacent nodes and leaves are
// queried by the shipped assigners).
type fstat struct {
	active bool
	// off is the live window start: tasks[off:] is the sorted
	// available set. Entries below off are dead (nil).
	off int
	// dirtyFrom bounds the valid chain: stored/prefix entries are
	// consistent on [off, dirtyFrom) (together with the base entry at
	// off), and stale from dirtyFrom on. Queries extend the chain
	// lazily (ensure) only as far as they read — an insert past the
	// read boundary never costs a patch at all.
	dirtyFrom int
	// distinct is the number of distinct job IDs in the live window,
	// maintained O(1) per membership change (packets of one job are
	// always adjacent, so a neighbor check suffices). It lets
	// countLarger answer from a chain prefix instead of forcing the
	// chain to the window end.
	distinct int32
	// tasks[off:] is the node's available set sorted by the SJF
	// priority comparator (highest priority first); stored[i] is
	// tasks[i]'s Remaining captured at refresh time.
	tasks  []*JobState
	stored []float64
	// keys mirrors tasks with each task's PrioOnCur — the comparator's
	// first tier, fixed for a task's stay on the node. Binary searches
	// probe this contiguous array and dereference a *JobState only on
	// first-tier ties, instead of chasing a pointer per probe.
	keys []float64
	// prefixVol[i] − prefixVol[off] = Σ stored[off:i]; prefixCnt[i] −
	// prefixCnt[off] = number of distinct job IDs among tasks[off:i].
	// Both are raw-indexed, valid through index dirtyFrom.
	prefixVol []float64
	prefixCnt []int32
}

// markDirtyAt records that stored/prefix entries from raw index i on
// are stale.
func (f *fstat) markDirtyAt(i int) {
	if i < f.dirtyFrom {
		f.dirtyFrom = i
	}
}

// invalidate marks the whole live window's aggregates stale (the
// sorted set itself stays valid; it is maintained by insert/remove).
func (f *fstat) invalidate() { f.markDirtyAt(f.off) }

// insert adds js to the sorted set of an active snapshot and patches
// the aggregate chain in place: the entries at and above the insertion
// rank shift one slot and each prefix sum gains js's Remaining — a
// sequential pass over floats with no task dereferences, so the chain
// stays fully valid and the next query's ensure is a no-op. (The
// shifted sums differ from a ground-up recurrence by float
// reassociation; every engine mode runs this same code on the same
// operation sequence, so the bits agree across modes, which is the
// contract — see DESIGN.md §3.4.)
func (f *fstat) insert(js *JobState) {
	w := f.tasks[f.off:]
	i := searchTask(w, f.keys[f.off:], js.PrioOnCur, js.Release, js.ID, js.seq)
	headSlot := i == 0 && f.off > 0
	var raw int
	if headSlot {
		// Head insert into a slot freed by an earlier head removal:
		// no shifting, the window grows downward.
		f.off--
		raw = f.off
		f.tasks[raw] = js
		f.keys[raw] = js.PrioOnCur
	} else {
		raw = f.off + i
		f.tasks = append(f.tasks, nil)
		copy(f.tasks[raw+1:], f.tasks[raw:])
		f.tasks[raw] = js
		f.keys = append(f.keys, 0)
		copy(f.keys[raw+1:], f.keys[raw:])
		f.keys[raw] = js.PrioOnCur
	}
	// Packets of one job sort adjacently (they share the full priority
	// key up to seq), so js starts a new distinct-ID group exactly when
	// neither neighbor carries its ID — and it can never split an
	// existing group (a foreign task cannot sort between equal keys).
	joinsLeft := raw > f.off && f.tasks[raw-1].ID == js.ID
	joinsRight := raw+1 < len(f.tasks) && f.tasks[raw+1].ID == js.ID
	if !joinsLeft && !joinsRight {
		f.distinct++
	}
	if headSlot {
		// The window head grew downward: extend the chain down one slot
		// by giving the new base entry a sum R below the old base, so
		// every difference against it gains exactly js's Remaining.
		if f.dirtyFrom <= raw+1 {
			// No valid entries above the old head to anchor against.
			f.markDirtyAt(raw)
			return
		}
		f.stored[raw] = js.Remaining
		f.prefixVol[raw] = f.prefixVol[raw+1] - js.Remaining
		var dc int32
		if !joinsRight {
			dc = 1 // js starts a group below the old head's
		}
		f.prefixCnt[raw] = f.prefixCnt[raw+1] - dc
		return
	}
	od := f.dirtyFrom
	if raw >= od {
		// Inserted at or past the chain's valid extent: the valid
		// prefix is untouched and the new entry is in the lazy zone.
		return
	}
	if cap(f.stored) <= od || cap(f.prefixVol) <= od+1 || cap(f.prefixCnt) <= od+1 {
		// The grown chain does not fit the current arrays; fall back to
		// lazy rebuilding (extend reallocates on its next run).
		f.markDirtyAt(raw)
		return
	}
	f.stored = f.stored[:od+1]
	f.prefixVol = f.prefixVol[:od+2]
	f.prefixCnt = f.prefixCnt[:od+2]
	vol := js.Remaining
	// Group-count deltas: the slot right after js counts js's own group
	// start (unless it continues the left neighbor's group); the
	// shifted tail keeps its relative counts unless js's group is new
	// outright (joining the right neighbor promotes js to that group's
	// start, demoting the old start — net zero for the tail).
	var dcFirst, dcTail int32
	if !joinsLeft {
		dcFirst = 1
	}
	if !joinsLeft && !joinsRight {
		dcTail = 1
	}
	for j := od; j > raw; j-- {
		f.stored[j] = f.stored[j-1]
		f.prefixVol[j+1] = f.prefixVol[j] + vol
		f.prefixCnt[j+1] = f.prefixCnt[j] + dcTail
	}
	f.stored[raw] = vol
	f.prefixVol[raw+1] = f.prefixVol[raw] + vol
	f.prefixCnt[raw+1] = f.prefixCnt[raw] + dcFirst
	f.dirtyFrom = od + 1
}

// remove deletes js from the sorted set of an active snapshot. The
// binary search keys off js's current sort key; if a caller ever
// mutated the key before removing (none do today), the linear fallback
// keeps removal correct anyway. Removing the window head — the common
// case, completions take the highest-priority task — is O(1): the
// prefix chain stays valid and queries subtract the base at off.
func (f *fstat) remove(js *JobState) {
	w := f.tasks[f.off:]
	var i int
	if len(w) > 0 && w[0] == js {
		// Completion of the window head: the search would land here
		// anyway (the comparator is strict, so js never outranks
		// itself), skip it.
		i = 0
	} else {
		i = searchTask(w, f.keys[f.off:], js.PrioOnCur, js.Release, js.ID, js.seq)
		if i >= len(w) || w[i] != js {
			i = slices.Index(w, js)
			if i < 0 {
				panic("sim: fstat: removing a task absent from the snapshot")
			}
		}
	}
	raw := f.off + i
	// js leaves a distinct-ID group behind exactly when a packet
	// sibling stays adjacent (groups never merge across a removal: the
	// neighbors were already adjacent-but-distinct, see insert).
	if (raw == f.off || f.tasks[raw-1].ID != js.ID) &&
		(raw+1 == len(f.tasks) || f.tasks[raw+1].ID != js.ID) {
		f.distinct--
	}
	if i == 0 {
		f.tasks[raw] = nil
		f.off++
		if f.off < len(f.tasks) && f.tasks[f.off].ID == js.ID && f.off <= f.dirtyFrom {
			// The removed head had packet siblings: the new window head
			// is promoted to its group's start, which the chain counted
			// at the removed entry. Lowering the new base count by one
			// restores every difference against it — no invalidation.
			f.prefixCnt[f.off]--
		}
		f.compact()
		return
	}
	f.tasks = append(f.tasks[:raw], f.tasks[raw+1:]...)
	f.keys = append(f.keys[:raw], f.keys[raw+1:]...)
	f.markDirtyAt(raw)
}

// compact drops the dead prefix once it dominates the live window,
// bounding the buffer at ~2× the live set. Raw indices shift, so the
// whole window's aggregates are rebuilt on the next query.
func (f *fstat) compact() {
	if f.off <= fstatCompactMin || f.off <= len(f.tasks)-f.off {
		return
	}
	n := copy(f.tasks, f.tasks[f.off:])
	clear(f.tasks[n:])
	f.tasks = f.tasks[:n]
	copy(f.keys, f.keys[f.off:])
	f.keys = f.keys[:n]
	f.off = 0
	f.dirtyFrom = 0
}

// markStale re-anchors js's stored Remaining after a preemption that
// keeps its queue membership: its Remaining drifted from the stored
// value, and once it is no longer n.running the query-time correction
// stops covering it. The caller (rescheduleWith) has already synced
// the node, so js.Remaining is current — the chain is patched in
// place by adding the drift to every prefix sum above js, keeping it
// fully valid instead of invalidating the whole suffix on every
// preemption.
func (f *fstat) markStale(js *JobState) {
	w := f.tasks[f.off:]
	i := searchTask(w, f.keys[f.off:], js.PrioOnCur, js.Release, js.ID, js.seq)
	if i >= len(w) || w[i] != js {
		return
	}
	raw := f.off + i
	if raw >= f.dirtyFrom {
		return // beyond the valid chain; extend re-captures it
	}
	d := js.Remaining - f.stored[raw]
	if d == 0 {
		return
	}
	f.stored[raw] = js.Remaining
	for j := raw + 1; j <= f.dirtyFrom; j++ {
		f.prefixVol[j] += d
	}
}

// clear returns the snapshot to the inactive state (Reset), retaining
// capacity.
func (f *fstat) clear() {
	f.active = false
	f.off = 0
	f.dirtyFrom = 0
	f.distinct = 0
	f.tasks = f.tasks[:0]
	f.keys = f.keys[:0]
	f.stored = f.stored[:0]
	f.prefixVol = f.prefixVol[:0]
	f.prefixCnt = f.prefixCnt[:0]
}

// refreshFStat returns node v's snapshot, activated and synced to the
// shard clock (so stored Remaining values and the later running
// correction share an anchor). The first call on a node pays one full
// sort to seed the sorted set; from then on insert/remove keep it
// ordered. The aggregate chain is NOT patched here: the query methods
// extend it lazily (ensure) only as far as they read. Callers must not
// use it in PS mode.
func (s *Sim) refreshFStat(n *nodeState) *fstat {
	s.syncNode(n)
	f := &n.fsnap
	if !f.active {
		f.active = true
		f.off = 0
		f.dirtyFrom = 0
		f.tasks = append(f.tasks[:0], n.avail.tasks()...)
		slices.SortFunc(f.tasks, func(a, b *JobState) int {
			if higherPriority(a.PrioOnCur, a.Release, a.ID, a.seq, b.PrioOnCur, b.Release, b.ID, b.seq) {
				return -1
			}
			return 1 // comparator is total (seq is unique): no equal pairs
		})
		f.distinct = 0
		f.keys = slices.Grow(f.keys[:0], len(f.tasks))[:len(f.tasks)]
		for i, js := range f.tasks {
			f.keys[i] = js.PrioOnCur
			if i == 0 || f.tasks[i-1].ID != js.ID {
				f.distinct++
			}
		}
	}
	return f
}

// ensure extends the valid aggregate chain through raw index k:
// afterwards prefixVol[j]/prefixCnt[j] are consistent for j ≤ k and
// stored[j] for j < k. The patch is one comparator-free pass over
// [dirtyFrom, k) — empty when membership changed only at the window
// head or past every index the queries read. Entries patched at
// different refresh instants still chain exactly: between membership
// changes (which mark the changed rank dirty) only the running task's
// Remaining drifts, and queries correct it against its stored capture
// whatever instant that was.
func (f *fstat) ensure(k int) {
	if f.dirtyFrom >= k && len(f.prefixVol) > k {
		// Chain already valid through k (the length guard only trips on
		// a never-patched snapshot, whose arrays need their reslice).
		// This early-out inlines into the query methods; extend is the
		// cold patching body.
		return
	}
	f.extend(k)
}

func (f *fstat) extend(k int) {
	n2 := len(f.tasks)
	if cap(f.prefixVol) < n2+1 {
		// Growing realloc: the old chain is gone, rebuild the window.
		f.stored = make([]float64, 0, cap(f.tasks))
		f.prefixVol = make([]float64, 0, cap(f.tasks)+1)
		f.prefixCnt = make([]int32, 0, cap(f.tasks)+1)
		f.dirtyFrom = 0
	}
	f.stored = f.stored[:n2]
	f.prefixVol = f.prefixVol[:n2+1]
	f.prefixCnt = f.prefixCnt[:n2+1]
	start := f.dirtyFrom
	if start < f.off {
		start = f.off
	}
	if start == f.off {
		f.prefixVol[f.off] = 0
		f.prefixCnt[f.off] = 0
	}
	for i := start; i < k; i++ {
		js := f.tasks[i]
		f.stored[i] = js.Remaining
		f.prefixVol[i+1] = f.prefixVol[i] + js.Remaining
		c := f.prefixCnt[i]
		if i == f.off || f.tasks[i-1].ID != js.ID {
			c++
		}
		f.prefixCnt[i+1] = c
	}
	f.dirtyFrom = k
}

// searchTask returns the first window index whose task does NOT have
// strictly higher priority than the probe key — sort.Search over the
// priority order, hand-inlined: the closure-based form dominated the
// dispatch profile (closure call + capture loads per probe). keys is
// the PrioOnCur mirror of w: most probes resolve on the contiguous
// first-tier array without touching a *JobState, so the search walks
// one cache line per level instead of chasing a pointer per level.
func searchTask(w []*JobState, keys []float64, size, release float64, id int, seq int64) int {
	lo, hi := 0, len(w)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if k := keys[m]; k != size {
			if k < size {
				lo = m + 1
			} else {
				hi = m
			}
		} else if t := w[m]; higherPriority(k, t.Release, t.ID, t.seq, size, release, id, seq) {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// hypoRank returns the number of snapshot tasks with strictly higher
// priority than a hypothetical not-yet-injected job (size, release,
// id) — the length of the qualifying prefix of AvailVolumeHigher.
func (f *fstat) hypoRank(size, release float64, id int) int {
	return searchTask(f.tasks[f.off:], f.keys[f.off:], size, release, id, maxSeq)
}

// runCorrection returns the running task's progress since the last
// refresh (current Remaining − stored) when the running task falls in
// the qualifying window prefix [0, rank). Membership changes and
// preemptions mark the snapshot stale, so between refreshes exactly
// one task's Remaining can drift: the one running now — which under
// the SJF-ordered window is almost always the window head, checked
// first to skip the binary search.
func (f *fstat) runCorrection(n *nodeState, rank int) float64 {
	r := n.running
	if r == nil || rank == 0 {
		return 0
	}
	w := f.tasks[f.off:]
	if w[0] == r {
		return r.Remaining - f.stored[f.off]
	}
	i := searchTask(w, f.keys[f.off:], r.PrioOnCur, r.Release, r.ID, r.seq)
	if i >= rank || i >= len(w) || w[i] != r {
		return 0
	}
	return r.Remaining - f.stored[f.off+i]
}

// volumeHigher answers AvailVolumeHigher from the snapshot. The
// result is clamped at 0: the base subtraction and running correction
// can round a mathematically zero sum to a tiny negative, and the
// greedy pruning bound (core.GreedyIdentical) relies on the volume
// term being nonnegative.
func (f *fstat) volumeHigher(n *nodeState, size, release float64, id int) float64 {
	rank := f.hypoRank(size, release, id)
	f.ensure(f.off + rank)
	v := f.prefixVol[f.off+rank] - f.prefixVol[f.off] + f.runCorrection(n, rank)
	if v < 0 {
		v = 0
	}
	return v
}

// volume answers AvailVolume from the snapshot (the whole window
// qualifies, so the correction always applies when a task runs).
func (f *fstat) volume(n *nodeState) float64 {
	f.ensure(len(f.tasks))
	rank := len(f.tasks) - f.off
	v := f.prefixVol[len(f.tasks)] - f.prefixVol[f.off] + f.runCorrection(n, rank)
	if v < 0 {
		v = 0
	}
	return v
}

// countLarger answers AvailCountLarger from the snapshot: tasks with
// PrioOnCur > size form a suffix of the priority order (PrioOnCur is
// the comparator's first tier), and equal-ID packets never straddle
// the boundary (they share PrioOnCur), so the distinct-job count of
// the suffix is the window total minus the distinct count of the
// prefix — integer arithmetic, so answering from the maintained total
// is exact.
func (f *fstat) countLarger(size float64) int {
	i := searchLargerPrio(f.keys[f.off:], size)
	f.ensure(f.off + i)
	return int(f.distinct) - int(f.prefixCnt[f.off+i]-f.prefixCnt[f.off])
}

// searchLargerPrio returns the first window index with PrioOnCur >
// size (the AvailCountLarger boundary; PrioOnCur is the comparator's
// first tier, so these form a suffix). It probes the contiguous keys
// mirror only — no task pointer is ever dereferenced.
func searchLargerPrio(keys []float64, size float64) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if keys[m] > size {
			hi = m
		} else {
			lo = m + 1
		}
	}
	return lo
}

// stats answers volumeHigher and countLarger in one pass, sharing the
// priority search: every task below the hypothetical job's rank h has
// PrioOnCur ≤ size (it beats the hypothetical job, whose tie-breaks
// lose only at equal PrioOnCur), so the countLarger boundary lies at
// or after h and its search is restricted to the window suffix [h:).
// Bit-identical to calling volumeHigher and countLarger separately.
func (f *fstat) stats(n *nodeState, size, release float64, id int) (volHigher float64, count int) {
	w := f.tasks[f.off:]
	kw := f.keys[f.off:]
	h := searchTask(w, kw, size, release, id, maxSeq)
	b := h + searchLargerPrio(kw[h:], size)
	f.ensure(f.off + b)
	v := f.prefixVol[f.off+h] - f.prefixVol[f.off] + f.runCorrection(n, h)
	if v < 0 {
		v = 0
	}
	return v, int(f.distinct) - int(f.prefixCnt[f.off+b]-f.prefixCnt[f.off])
}
