package sim

import (
	"fmt"
	"sync"
	"sync/atomic"

	"treesched/internal/faults"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// shardState is the event machinery of one root-child subtree. The
// root performs no processing and every task's path lies inside one
// subtree (tree.Path starts at the root-adjacent ancestor), so after
// dispatch the shards share no mutable state: each owns its clock,
// event heap, fault-boundary cursor, flow-time accumulators, slice
// log and task arena. Both execution modes step the identical
// per-shard machines; only the stepping order differs, and every
// quantity the engine reports is either per-task or merged across
// shards in shard-index order — which is what makes parallel output
// bit-identical to sequential output.
type shardState struct {
	now float64
	// epoch counts the shard's dispatch-relevant state changes (queue
	// membership, running-task switches, clock movement); the per-node
	// dispatchScratch memos stamp their answers with it. Only the
	// owning goroutine writes it, and dispatch reads happen after the
	// barrier joins, so it needs no synchronization. Reset bumps rather
	// than zeroes it so stale stamps can never match.
	epoch uint64
	// events is a min-heap of scheduled node-finish events with lazy
	// invalidation via nodeState.finishSeq.
	events []finishEvent
	// bounds is the shard's slice of the compiled fault boundaries
	// (sorted by time, node); faultIdx is the applied-prefix cursor.
	bounds   []faults.Boundary
	faultIdx int

	activeTasks int
	// Running totals (see Sim.Stats; summed across shards in index
	// order when reported).
	fracSum        float64 // Σ weight * remainingLeafFraction over active tasks
	fracRate       float64 // d(fracSum)/dt from leaves currently processing
	fracIntegral   float64
	activeIntegral float64 // ∫ activeTasks dt (integral-flow cross-check)
	eventCount     int64

	// slices holds the shard's exact processing record when
	// RecordSlices; entries below mergeFloor predate the latest
	// migration and must not be extended by sync's merge.
	slices     []Slice
	mergeFloor int

	// free holds JobStates recycled by Reset; block is the tail of the
	// current arena chunk fresh tasks are carved from. Per shard so
	// parallel injection never contends.
	free  []*JobState
	block []JobState

	// err and panicVal collect a worker's failure for deterministic
	// (shard-index-ordered) propagation after the join.
	err      error
	panicVal interface{}

	// parent is the head shard feeding this sub-shard (-1 for
	// top-level shards; see Sim.buildPartition). inbox is the
	// time-sorted queue of tasks handed off by the parent, inboxIdx
	// the consumed-prefix cursor. The parent is the only writer and
	// runs strictly before this shard in parallel mode, so the inbox
	// needs no synchronization.
	parent   int32
	inbox    []handoff
	inboxIdx int
}

// handoff is one task in flight from a head shard to a child
// sub-shard: the task finished on the head's node at time at and joins
// its next node's queue at the same instant on the consumer side.
type handoff struct {
	at float64
	js *JobState
}

// peekHandoff returns the shard's next unconsumed parent handoff.
func (sh *shardState) peekHandoff() (handoff, bool) {
	if sh.inboxIdx >= len(sh.inbox) {
		return handoff{}, false
	}
	return sh.inbox[sh.inboxIdx], true
}

// peekBoundary returns the shard's next unapplied fault boundary.
func (sh *shardState) peekBoundary() (faults.Boundary, bool) {
	if sh.faultIdx >= len(sh.bounds) {
		return faults.Boundary{}, false
	}
	return sh.bounds[sh.faultIdx], true
}

// --- per-shard event heap (min by time, then node for determinism) ---

// eventBefore orders finish events by time, ties by node. The order
// is total across distinct (at, node) pairs; two events can share both
// only when one is stale (a node keeps one live finishSeq), and either
// pop order discards the stale one identically.
func eventBefore(a, b finishEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.node < b.node
}

func (sh *shardState) pushEvent(ev finishEvent) {
	sh.events = append(sh.events, ev)
	sh.upEvent(len(sh.events) - 1)
}

// upEvent and downEvent sift hole-style: the moving event is held in a
// register and placed once, halving the writes of the swap-based form
// (this is the hottest loop after dispatch itself — every finish event
// passes through here twice).
func (sh *shardState) upEvent(i int) {
	evs := sh.events
	ev := evs[i]
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(ev, evs[p]) {
			break
		}
		evs[i] = evs[p]
		i = p
	}
	evs[i] = ev
}

func (sh *shardState) downEvent(i int) {
	evs := sh.events
	n := len(evs)
	ev := evs[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small, se := l, evs[l]
		if r := l + 1; r < n && eventBefore(evs[r], se) {
			small, se = r, evs[r]
		}
		if !eventBefore(se, ev) {
			break
		}
		evs[i] = se
		i = small
	}
	evs[i] = ev
}

func (sh *shardState) popEvent() finishEvent {
	top := sh.events[0]
	n := len(sh.events) - 1
	sh.events[0] = sh.events[n]
	sh.events = sh.events[:n]
	if n > 0 {
		sh.downEvent(0)
	}
	return top
}

// --- parallel execution ---

// workerCount resolves Options.Workers against the shard count and
// the configuration's eligibility: 1 means sequential.
func (s *Sim) workerCount() int {
	w := s.opts.Workers
	if w <= 1 {
		return 1
	}
	if s.stream != nil {
		// Streaming hooks (accumulator, sink, retention ring) must
		// observe completions in a single global order.
		return 1
	}
	if w > len(s.shards) {
		w = len(s.shards)
	}
	if w > 1 && !s.parallelOK() {
		return 1
	}
	return w
}

// runShardsParallel executes run(k) for every shard on up to `workers`
// goroutines (the caller participates; extra workers try-acquire
// Options.WorkerTokens when set and are skipped if the pool is
// exhausted). Worker panics are captured per shard and re-raised on
// the calling goroutine for the lowest panicking shard index, so
// failure propagation is deterministic and *InternalError panics reach
// the usual recoverInternal conversion.
func (s *Sim) runShardsParallel(workers int, run func(k int)) {
	s.par = true
	defer func() { s.par = false }()
	for k := range s.shards {
		s.shards[k].err = nil
		s.shards[k].panicVal = nil
	}
	if s.split() {
		// Sub-shards consume handoffs their head shards emit, so the
		// waves are barrier-separated: every head finishes before any
		// child starts, making each child's inbox complete and
		// immutable when read.
		s.runWave(workers, s.wave0, run)
		s.runWave(workers, s.wave1, run)
	} else {
		s.runWave(workers, s.waveAll, run)
	}
	for k := range s.shards {
		if r := s.shards[k].panicVal; r != nil {
			s.shards[k].panicVal = nil
			panic(r)
		}
	}
}

// runWave executes run(k) for every shard index in idxs on up to
// `workers` goroutines, returning after all complete.
func (s *Sim) runWave(workers int, idxs []int32, run func(k int)) {
	if len(idxs) == 0 {
		return
	}
	if workers > len(idxs) {
		workers = len(idxs)
	}
	var next int64
	work := func() {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= len(idxs) {
				return
			}
			k := int(idxs[i])
			func() {
				defer func() {
					if r := recover(); r != nil {
						s.shards[k].panicVal = r
					}
				}()
				run(k)
			}()
		}
	}
	tok := s.opts.WorkerTokens
	var wg sync.WaitGroup
	for i := 1; i < workers; i++ {
		if tok != nil {
			acquired := false
			select {
			case tok <- struct{}{}:
				acquired = true
			default:
			}
			if !acquired {
				break // shared pool exhausted: run with the helpers we got
			}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if tok != nil {
				defer func() { <-tok }()
			}
			work()
		}()
	}
	work()
	wg.Wait()
}

// drainParallel is Drain with the per-shard event loops running on the
// worker pool, followed by the shared end-of-run merge and checks.
func (s *Sim) drainParallel(workers int) (err error) {
	defer recoverInternal(&err)
	s.runShardsParallel(workers, s.drainShard)
	return s.finishDrain()
}

// growTasks resizes sl to n nil entries, reusing its capacity.
func growTasks(sl []*JobState, n int) []*JobState {
	if cap(sl) < n {
		return make([]*JobState, n)
	}
	sl = sl[:n]
	for i := range sl {
		sl[i] = nil
	}
	return sl
}

// growLeaves resizes sl to n entries, reusing its capacity.
func growLeaves(sl []tree.NodeID, n int) []tree.NodeID {
	if cap(sl) < n {
		return make([]tree.NodeID, n)
	}
	return sl[:n]
}

// shardPending reports whether shard k has work due at or before
// target: a live finish event, an unapplied fault boundary, or an
// unconsumed parent handoff. Stale events encountered while peeking
// are popped, which is semantically a no-op (they would be skipped by
// the event loop anyway).
func (s *Sim) shardPending(k int, target float64) bool {
	sh := &s.shards[k]
	if ev, ok := s.nextEvent(sh); ok && ev.at <= target {
		return true
	}
	if s.opts.Faults != nil {
		if b, ok := sh.peekBoundary(); ok && b.At <= target {
			return true
		}
	}
	if h, ok := sh.peekHandoff(); ok && h.at <= target {
		return true
	}
	return false
}

// advanceAllTo is AdvanceTo with the per-shard event loops running on
// the worker pool — the epoch step of the parallel querying-dispatch
// replay. Each shard processes exactly the per-shard event sequence it
// would process sequentially, so the post-advance state is identical;
// the fan-out is skipped when fewer than two shards have due work (the
// common case between closely spaced arrivals), where goroutine
// handoff would cost more than the events themselves.
func (s *Sim) advanceAllTo(target float64, workers int) {
	if target < s.now-timeEps {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before now=%v", target, s.now))
	}
	busy := 0
	for k := range s.shards {
		if s.shardPending(k, target) {
			if busy++; busy >= 2 {
				break
			}
		}
	}
	if workers > 1 && busy >= 2 {
		s.runShardsParallel(workers, func(k int) { s.advanceShardTo(k, target) })
	} else {
		for k := range s.shards {
			s.advanceShardTo(k, target)
		}
	}
	s.now = target
}

// replayQueryingParallel runs a trace with a state-querying assigner
// on the worker pool: the commit sequence — query, Assign, Inject —
// stays sequential in arrival order (the assigner must observe engine
// state at each arrival exactly as in a sequential run), while the
// event processing between consecutive arrivals fans out per shard via
// advanceAllTo, as does the final drain. Queries run only between
// epochs, when no worker is in flight, so the per-node F-statistic
// snapshots are refreshed single-threaded; the per-shard event
// machines see the same event sequences as the sequential engine, so
// metrics, logs and error strings are bit-identical.
func (s *Sim) replayQueryingParallel(trace *workload.Trace, asg Assigner, workers int) (err error) {
	defer recoverInternal(&err)
	t := s.tree
	a := &s.scratchArrival
	for i := range trace.Jobs {
		j := &trace.Jobs[i]
		if j.LeafSizes != nil && len(j.LeafSizes) != len(t.Leaves()) {
			return fmt.Errorf("sim: job %d has %d leaf sizes for a %d-leaf tree", j.ID, len(j.LeafSizes), len(t.Leaves()))
		}
		s.advanceAllTo(j.Release, workers)
		*a = Arrival{ID: j.ID, Release: j.Release, Size: j.Size, LeafSizes: j.LeafSizes, Origin: tree.NodeID(j.Origin), Weight: j.Weight}
		leaf := asg.Assign(s.Query(), a)
		if _, err := s.Inject(a, leaf); err != nil {
			return fmt.Errorf("sim: assigner %q: %w", asg.Name(), err)
		}
	}
	return s.drainParallel(workers)
}

// replayParallel runs a full trace with both injection and draining
// parallel per shard. It requires an ObliviousAssigner: dispatch
// decisions are precomputed sequentially in arrival order (the
// assigner reads no time-varying engine state, so the decisions equal
// the sequential ones, and stateful rules — round-robin cursors,
// seeded rngs — still observe arrivals in order), then every shard
// worker walks the full arrival list, advancing its shard's clock at
// every release instant and injecting only the jobs assigned to its
// own subtree. Advancing at every release keeps the integral
// quadrature points identical to the sequential engine's.
func (s *Sim) replayParallel(trace *workload.Trace, asg Assigner, workers int) (err error) {
	defer recoverInternal(&err)
	t := s.tree
	n := len(trace.Jobs)
	s.assignBuf = growLeaves(s.assignBuf, n)
	q := s.Query()
	a := &s.scratchArrival
	for i := range trace.Jobs {
		j := &trace.Jobs[i]
		if j.LeafSizes != nil && len(j.LeafSizes) != len(t.Leaves()) {
			return fmt.Errorf("sim: job %d has %d leaf sizes for a %d-leaf tree", j.ID, len(j.LeafSizes), len(t.Leaves()))
		}
		*a = Arrival{ID: j.ID, Release: j.Release, Size: j.Size, LeafSizes: j.LeafSizes, Origin: tree.NodeID(j.Origin), Weight: j.Weight}
		leaf := asg.Assign(q, a)
		if t.LeafIndex(leaf) < 0 {
			return fmt.Errorf("sim: assigner %q: sim: assignment to non-leaf node %d", asg.Name(), leaf)
		}
		s.assignBuf[i] = leaf
	}
	s.tasks = growTasks(s.tasks, n)
	s.nextSeq = int64(n)
	s.runShardsParallel(workers, func(k int) { s.replayShard(k, trace, asg) })
	for k := range s.shards {
		if e := s.shards[k].err; e != nil {
			return e
		}
	}
	return s.finishDrain()
}

// replayShard is one worker's whole-trace pass for shard k: advance
// the shard through every release instant, inject the shard's own
// jobs, then drain the shard.
func (s *Sim) replayShard(k int, trace *workload.Trace, asg Assigner) {
	sh := &s.shards[k]
	for i := range trace.Jobs {
		j := &trace.Jobs[i]
		s.advanceShardTo(k, j.Release)
		leaf := s.assignBuf[i]
		if int(s.startShardOf(leaf, tree.NodeID(j.Origin))) != k {
			continue
		}
		w := j.Weight
		if w <= 0 {
			w = 1
		}
		li := s.tree.LeafIndex(leaf)
		js := s.newTask(sh)
		js.ID = j.ID
		js.seq = int64(i)
		js.Release = j.Release
		js.RouterSize = j.Size
		js.LeafWork = j.Size
		if j.LeafSizes != nil {
			js.LeafWork = j.LeafSizes[li]
		}
		js.FracWeight = 1
		js.Weight = w
		js.Leaf = leaf
		js.leafSizes = j.LeafSizes
		if err := s.inject(js, tree.NodeID(j.Origin)); err != nil {
			sh.err = fmt.Errorf("sim: assigner %q: %w", asg.Name(), err)
			return
		}
	}
	s.drainShard(k)
}
