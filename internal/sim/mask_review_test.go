package sim

import (
	"testing"

	"treesched/internal/faults"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// Review probe: outage overlapping the leafloss instant on the same
// leaf — does redispatch still fire?
func TestReviewLeafLossMaskedByOutage(t *testing.T) {
	tr := tree.Star(2) // two leaves so a survivor exists
	leaf := tr.Leaves()[0]
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 4}}}
	res, err := Run(tr, trace, fixedAssigner{leaf}, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
		Recovery:  RecoverRedispatch,
		Faults: compile(t, tr,
			faults.Event{Kind: faults.Outage, Node: leaf, Start: 2, End: 10},
			faults.Event{Kind: faults.LeafLoss, Node: leaf, Start: 5},
		),
	})
	if err != nil {
		t.Fatalf("redispatch run failed: %v", err)
	}
	t.Logf("flow=%v completion=%v", res.TotalFlow(), res.Jobs[0].Completion)
}
