package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"treesched/internal/tree"
	"treesched/internal/workload"
)

// JobMetrics records one job's outcome.
type JobMetrics struct {
	ID         int
	Release    float64
	Completion float64
	Flow       float64
	Leaf       tree.NodeID
	// PathWork is Σ_{v on path} p_{j,v}: the congestion-free lower
	// bound on the job's flow time.
	PathWork float64
	// Weight is the job's importance (1 unless set on the trace).
	Weight float64
}

// Result is a completed run of a trace through the engine.
type Result struct {
	Jobs  []JobMetrics
	Stats Stats
	// Sim is the drained engine, retained so callers can read
	// instrumentation (per-hop timings, utilization).
	Sim *Sim
	// Stream holds the online accumulator of a streaming run (nil
	// otherwise). Under bounded retention (Options.RetainJobs > 0) it
	// is the complete summary record and Jobs holds only the
	// retention window, in completion order; under full retention it
	// supplements Jobs.
	Stream *StreamStats
}

// TotalFlow is a convenience accessor.
func (r *Result) TotalFlow() float64 { return r.Stats.TotalFlow }

// AvgFlow returns the average flow time per job. Under bounded
// retention Jobs holds only a window, so the count comes from the
// streaming accumulator.
func (r *Result) AvgFlow() float64 {
	if r.Stream != nil && r.Stream.Completed > 0 {
		return r.Stats.TotalFlow / float64(r.Stream.Completed)
	}
	if len(r.Jobs) == 0 {
		return 0
	}
	return r.Stats.TotalFlow / float64(len(r.Jobs))
}

// LkNormFlow returns the ℓ_k norm of the per-job flow times — the
// alternative objective the paper's conclusion raises (k=2 is the
// fairness-sensitive variant; math.Inf(1) gives max flow). Under
// bounded retention the norm comes from the accumulator's moment
// sums, which cover k ∈ {1, 2, 3, +Inf} only (NaN otherwise).
func (r *Result) LkNormFlow(k float64) float64 {
	if math.IsInf(k, 1) {
		return r.Stats.MaxFlow
	}
	if r.Stream != nil && len(r.Jobs) != r.Stream.Completed {
		return r.Stream.LkNormFlow(k)
	}
	var s float64
	for i := range r.Jobs {
		s += math.Pow(r.Jobs[i].Flow, k)
	}
	return math.Pow(s, 1/k)
}

// WriteJSON persists the run's per-job metrics and summary statistics
// (not the engine state) for downstream analysis.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(struct {
		Stats Stats        `json:"stats"`
		Jobs  []JobMetrics `json:"jobs"`
	}{r.Stats, r.Jobs})
}

// Run simulates a full trace on the tree: it advances the engine to
// each arrival, consults the assigner (immediate dispatch), injects
// the job, and drains the engine at the end.
func Run(t *tree.Tree, trace *workload.Trace, asg Assigner, opts Options) (*Result, error) {
	return RunOn(New(t, opts), trace, asg)
}

// RunOn replays a trace through an existing engine, which must be
// freshly created or Reset. It is the steady-state entry point for
// replicate sweeps: calling Reset then RunOn reuses the engine's event
// heap, node queues and task arena, so repeated runs approach zero
// allocations. The schedule is identical to a Run on a fresh engine.
func RunOn(s *Sim, trace *workload.Trace, asg Assigner) (*Result, error) {
	if err := ReplayOn(s, trace, asg); err != nil {
		return nil, err
	}
	return collect(s.tree, s, len(trace.Jobs))
}

// ReplayOn drives the inject→drain cycle of RunOn without collecting
// per-job metrics (which necessarily allocate a Result). On a warmed
// engine this is the zero-allocation path measurement loops use; the
// engine is left drained, so Stats()/Tasks() remain readable.
//
// With Options.Workers > 1 (and more than one shard) the shard event
// loops run on a worker pool: an ObliviousAssigner lets injection
// itself run per shard after a sequential dispatch prepass, while a
// querying assigner commits dispatches sequentially (it must observe
// engine state at each arrival, exactly as in a sequential run) with
// the event processing between arrivals and the drain fanned out per
// shard. Either way the results are bit-identical to the sequential
// engine's.
func ReplayOn(s *Sim, trace *workload.Trace, asg Assigner) (err error) {
	defer recoverInternal(&err)
	if err := trace.Validate(); err != nil {
		return err
	}
	if w := s.workerCount(); w > 1 {
		if _, oblivious := asg.(ObliviousAssigner); oblivious {
			return s.replayParallel(trace, asg, w)
		}
		return s.replayQueryingParallel(trace, asg, w)
	}
	if err := s.injectTrace(trace, asg); err != nil {
		return err
	}
	return s.Drain()
}

// injectTrace is the sequential dispatch loop shared by the
// sequential and the parallel-drain replay paths.
func (s *Sim) injectTrace(trace *workload.Trace, asg Assigner) error {
	t := s.tree
	// Passing a loop-local Arrival through the Assigner interface makes
	// it escape; the engine-owned scratch keeps the warm path at zero
	// allocations. Assigners must not retain the pointer past Assign
	// (the value was already overwritten every iteration).
	a := &s.scratchArrival
	for i := range trace.Jobs {
		j := &trace.Jobs[i]
		if j.LeafSizes != nil && len(j.LeafSizes) != len(t.Leaves()) {
			return fmt.Errorf("sim: job %d has %d leaf sizes for a %d-leaf tree", j.ID, len(j.LeafSizes), len(t.Leaves()))
		}
		s.AdvanceTo(j.Release)
		*a = Arrival{ID: j.ID, Release: j.Release, Size: j.Size, LeafSizes: j.LeafSizes, Origin: tree.NodeID(j.Origin), Weight: j.Weight}
		leaf := asg.Assign(s.Query(), a)
		if _, err := s.Inject(a, leaf); err != nil {
			return fmt.Errorf("sim: assigner %q: %w", asg.Name(), err)
		}
	}
	return nil
}

func collect(t *tree.Tree, s *Sim, n int) (*Result, error) {
	if s.stream != nil {
		if s.stream.sinkErr != nil {
			return nil, fmt.Errorf("sim: job sink: %w", s.stream.sinkErr)
		}
		if s.stream.recycle {
			return s.streamResult(n)
		}
	}
	res := &Result{Sim: s, Jobs: make([]JobMetrics, n)}
	found := make([]bool, n)
	for _, js := range s.Tasks() {
		if !js.Completed {
			return nil, fmt.Errorf("sim: task of job %d did not complete", js.ID)
		}
		m := &res.Jobs[js.ID]
		if !found[js.ID] {
			found[js.ID] = true
			m.ID = js.ID
			m.Release = js.Release
			m.Leaf = js.Leaf
			m.Weight = js.Weight
		}
		// Packets of one job: completion is the last packet's, path
		// work accumulates across packets.
		if js.Completion > m.Completion {
			m.Completion = js.Completion
		}
		m.PathWork += js.RouterSize*float64(len(js.Path)-1) + js.LeafWork
	}
	var st Stats
	st.FracFlow, st.ActiveIntegral, st.Events = s.totals()
	for i := range res.Jobs {
		if !found[i] {
			return nil, fmt.Errorf("sim: job %d never completed", i)
		}
		m := &res.Jobs[i]
		m.Flow = m.Completion - m.Release
		st.TotalFlow += m.Flow
		st.WeightedFlow += m.Weight * m.Flow
		if m.Flow > st.MaxFlow {
			st.MaxFlow = m.Flow
		}
		if m.Completion > st.Makespan {
			st.Makespan = m.Completion
		}
		st.Completed++
	}
	res.Stats = st
	if s.stream != nil {
		res.Stream = s.stream.acc.snapshot()
	}
	return res, nil
}

// RunStream simulates a streaming arrival source end to end: jobs
// are drawn from the source one at a time (never materialized as a
// Trace), dispatched immediately on release, and drained at the end.
// With Options.RetainJobs > 0 the run's memory is independent of the
// stream length. A run over NewTraceSource(tr) produces results
// bit-identical to Run(t, tr, ...) under full retention.
func RunStream(t *tree.Tree, src workload.ArrivalSource, asg Assigner, opts Options) (*Result, error) {
	return RunStreamOn(New(t, opts), src, asg)
}

// RunStreamOn is RunStream on an existing engine (freshly created or
// Reset), the steady-state entry point for repeated streaming runs.
func RunStreamOn(s *Sim, src workload.ArrivalSource, asg Assigner) (*Result, error) {
	n, err := ReplayStreamOn(s, src, asg)
	if err != nil {
		return nil, err
	}
	return collect(s.tree, s, n)
}

// ReplayStreamOn drives the streaming inject→drain cycle without
// collecting a Result, returning the number of jobs drawn from the
// source. Jobs are validated incrementally (dense IDs, sorted
// releases, per-job validity) since there is no Trace to validate up
// front. Streaming hooks force sequential execution; a plain
// TraceSource with no hooks installed delegates to ReplayOn,
// retaining the sharded-parallel fast path.
func ReplayStreamOn(s *Sim, src workload.ArrivalSource, asg Assigner) (n int, err error) {
	defer recoverInternal(&err)
	if ts, ok := src.(*workload.TraceSource); ok && s.stream == nil {
		tr := ts.Trace()
		return len(tr.Jobs), ReplayOn(s, tr, asg)
	}
	if n, err = s.injectStream(src, asg); err != nil {
		return n, err
	}
	if w := s.workerCount(); w > 1 {
		// Reachable only when no streaming hooks are installed (hooks
		// force workerCount()==1): a generator-fed full-retention run
		// still drains its shards in parallel.
		if err := s.drainParallel(w); err != nil {
			return n, err
		}
	} else if err := s.Drain(); err != nil {
		return n, err
	}
	if s.stream != nil && s.stream.sinkErr != nil {
		return n, fmt.Errorf("sim: job sink: %w", s.stream.sinkErr)
	}
	return n, nil
}

// injectStream is the sequential dispatch loop of the streaming
// path, mirroring injectTrace plus the incremental validation that
// Trace.Validate would have done.
func (s *Sim) injectStream(src workload.ArrivalSource, asg Assigner) (int, error) {
	t := s.tree
	a := &s.scratchArrival
	n := 0
	prev := 0.0
	// Generator-fed runs with no streaming hooks may still advance the
	// shards in parallel between arrivals (hooks force workerCount 1).
	w := s.workerCount()
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if j.ID != n {
			return n, fmt.Errorf("workload: job at position %d has ID %d (IDs must be dense)", n, j.ID)
		}
		if err := j.Validate(); err != nil {
			return n, err
		}
		if j.Release < prev {
			return n, fmt.Errorf("workload: releases not sorted at position %d", n)
		}
		prev = j.Release
		if j.LeafSizes != nil && len(j.LeafSizes) != len(t.Leaves()) {
			return n, fmt.Errorf("sim: job %d has %d leaf sizes for a %d-leaf tree", j.ID, len(j.LeafSizes), len(t.Leaves()))
		}
		if w > 1 {
			s.advanceAllTo(j.Release, w)
		} else {
			s.AdvanceTo(j.Release)
		}
		*a = Arrival{ID: j.ID, Release: j.Release, Size: j.Size, LeafSizes: j.LeafSizes, Origin: tree.NodeID(j.Origin), Weight: j.Weight}
		leaf := asg.Assign(s.Query(), a)
		if _, err := s.Inject(a, leaf); err != nil {
			return n, fmt.Errorf("sim: assigner %q: %w", asg.Name(), err)
		}
		n++
	}
	return n, src.Err()
}

// RunPacketized simulates the paper's Section 2 variant in which a
// job's data may be forwarded in unit-size pieces: each job is split
// into ceil(p_j) packets that traverse the tree independently
// (store-and-forward per packet, so the job pipelines across routers).
// The job completes when its last packet finishes on the leaf. The
// leaf assignment is still decided once per job at arrival.
func RunPacketized(t *tree.Tree, trace *workload.Trace, asg Assigner, opts Options) (res *Result, err error) {
	defer recoverInternal(&err)
	if opts.RetainJobs > 0 || opts.Sink != nil {
		// The streaming hooks count per-packet completions, which
		// would corrupt per-job accounting.
		return nil, fmt.Errorf("sim: RunPacketized does not support streaming retention or sinks")
	}
	if err := trace.Validate(); err != nil {
		return nil, err
	}
	s := New(t, opts)
	for i := range trace.Jobs {
		j := &trace.Jobs[i]
		s.AdvanceTo(j.Release)
		a := &Arrival{ID: j.ID, Release: j.Release, Size: j.Size, LeafSizes: j.LeafSizes, Origin: tree.NodeID(j.Origin)}
		leaf := asg.Assign(s.Query(), a)
		li := t.LeafIndex(leaf)
		if li < 0 {
			return nil, fmt.Errorf("sim: assigner %q chose non-leaf %d", asg.Name(), leaf)
		}
		k := int(math.Ceil(j.Size))
		if k < 1 {
			k = 1
		}
		routerPiece := j.Size / float64(k)
		leafPiece := a.LeafSize(li) / float64(k)
		for p := 0; p < k; p++ {
			js := s.newTask(&s.shards[s.shardOf[leaf]])
			js.ID = j.ID
			js.seq = s.nextSeq
			js.Release = j.Release
			js.RouterSize = routerPiece
			js.LeafWork = leafPiece
			js.PrioRouter = j.Size
			js.PrioLeaf = a.LeafSize(li)
			js.FracWeight = 1 / float64(k)
			js.Leaf = leaf
			js.leafSizes = j.LeafSizes
			s.nextSeq++
			if err := s.inject(js, tree.NodeID(j.Origin)); err != nil {
				return nil, err
			}
		}
	}
	if err := s.Drain(); err != nil {
		return nil, err
	}
	return collect(t, s, len(trace.Jobs))
}
