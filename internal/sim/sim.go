package sim

import (
	"fmt"
	"math"
	"sort"

	"treesched/internal/faults"
	"treesched/internal/tree"
)

// timeEps absorbs floating-point slack in event times and remaining
// work. Processing times in experiments are O(1)..O(10^3), so 1e-9 is
// far below any meaningful quantity.
const timeEps = 1e-9

// JobState is the engine's record of one schedulable task (a job, or
// one packet of a job in packetized mode) travelling down its path.
type JobState struct {
	// ID of the originating job; packets share their parent's ID.
	ID int
	// seq is the unique engine-wide task sequence number used as the
	// final deterministic tie-breaker.
	seq int64

	Release float64
	// RouterSize is the processing requirement on every router
	// (p_j; the packet fraction of it in packetized mode).
	RouterSize float64
	// LeafWork is the processing requirement on the assigned leaf.
	LeafWork float64
	// FracWeight is this task's contribution to a fully-remaining
	// job's fractional flow (1 for whole jobs, 1/k for k packets).
	FracWeight float64
	// Weight is the job's importance for weighted flow time (>= 1).
	Weight float64

	Leaf tree.NodeID
	Path []tree.NodeID
	// Hop indexes Path at the node the task currently occupies;
	// len(Path) once complete.
	Hop int

	// PrioRouter/PrioLeaf are the sizes used for SJF priority: the
	// originating job's full p_j and p_{j,v}. For whole jobs they
	// equal RouterSize/LeafWork; packets inherit the parent's values
	// so SJF still orders by original job size, as the paper requires.
	PrioRouter float64
	PrioLeaf   float64

	// OrigOnCur is the task's full processing requirement on its
	// current node; Remaining is what is left of it. PrioOnCur is the
	// priority size on the current node.
	OrigOnCur float64
	PrioOnCur float64
	Remaining float64
	// NodeArrive is when the task became available on the current node.
	NodeArrive float64

	Completed  bool
	Completion float64
	// HopArrive/HopComplete record per-hop timings when the engine is
	// instrumented; otherwise nil.
	HopArrive   []float64
	HopComplete []float64

	// leafSizes references the arrival's per-leaf sizes (nil for
	// identical endpoints); recovery re-dispatch needs it to recompute
	// LeafWork on the new leaf.
	leafSizes []float64

	// key1/key2 cache the node policy's priority key.
	key1, key2 float64
	// qidx is the task's position in its node's queue (-1 if absent).
	qidx int
	// leafIdx is the task's position in the leaf's assigned list.
	leafIdx int
	// pendIdx[i] is the position in pendingOn for Path[i] (instrumented).
	pendIdx []int
}

// CurrentNode returns the node the task occupies, or tree.None when done.
func (js *JobState) CurrentNode() tree.NodeID {
	if js.Hop >= len(js.Path) {
		return tree.None
	}
	return js.Path[js.Hop]
}

type nodeState struct {
	id tree.NodeID
	// shard indexes Sim.shards at the node's root-adjacent subtree
	// (0 for the root itself, which performs no processing).
	shard int32
	// speed is the node's current effective speed; baseSpeed is the
	// tree's speed, which fault boundaries scale by their factor.
	speed     float64
	baseSpeed float64
	leaf      bool

	avail taskQueue
	// fsnap is the node's F-statistic snapshot (see fstat.go),
	// invalidated on every queue membership change.
	fsnap fstat
	// scratch memoizes the node's last dispatch-query answers under
	// the owning shard's epoch (see Query.AvailStats): a state-querying
	// assigner probing the same interior node for many candidate
	// leaves within one arrival pays the snapshot search once.
	scratch dispatchScratch
	running *JobState
	// finishSeq invalidates scheduled finish events; only the event
	// carrying the current value is live.
	finishSeq uint64
	lastSync  float64

	busyTime float64
	workDone float64
	// fracContrib is this leaf's current drain rate of its shard's
	// fractional-flow sum (0 for routers and idle leaves).
	fracContrib float64
}

// dispatchScratch is one node's memo of its latest dispatch-query
// answers, keyed by the owning shard's epoch counter plus the query
// arguments. The epoch is bumped on every state change that could move
// an answer (queue membership, running-task switch, clock advance), so
// a matching stamp proves the cached value is still the exact result —
// recomputing it would reproduce the same bits. DisableDispatchMemo
// bypasses the lookup (never the store), which is how the differential
// tests pin that equivalence.
type dispatchScratch struct {
	// epoch/size/release/id stamp the AvailStats record below.
	epoch   uint64
	size    float64
	release float64
	id      int
	volHigher float64
	count     int
	// volEpoch stamps the argument-free AvailVolume record.
	volEpoch uint64
	vol      float64
}

// DisableDispatchMemo, when set, makes the Query accessors skip the
// per-node memo lookup and recompute every answer from the snapshot.
// The stores and the snapshot arithmetic are identical either way, so
// results are bit-identical with the memo on or off; the knob exists
// for the differential tests and for benchmarking the memo's effect.
// Not safe to toggle while an engine is running.
var DisableDispatchMemo bool

type finishEvent struct {
	at   float64
	node tree.NodeID
	seq  uint64
}

// Options configures the engine.
type Options struct {
	// Policy is the node scheduling policy (default SJF).
	Policy Policy
	// Instrument enables per-hop timing records and per-router
	// pending sets (needed by the Lemma validators and the potential
	// function; costs memory and a little time).
	Instrument bool
	// UseScanQueue selects the O(n) reference queue (experiment B8).
	UseScanQueue bool
	// SelfCheck enables internal invariant assertions (tests).
	SelfCheck bool
	// Observer, when set, is called after every state change (task
	// injection and every node completion). Used by the Lemma
	// validators to check invariants at event granularity. An Observer
	// needs a single global event order, so it forces sequential
	// lockstep execution regardless of Workers.
	Observer func(s *Sim)
	// RecordSlices keeps the exact processing slices (node, job,
	// interval) including preemption boundaries; costs memory
	// proportional to the number of preemptions. Not supported in
	// processor-sharing mode (work is fluid there).
	RecordSlices bool
	// Faults, when set, applies the compiled fault schedule: node
	// speeds become piecewise-constant (base speed × factor), and
	// permanent leaf losses trigger the Recovery policy. The schedule
	// must be compiled against the engine's tree.
	Faults *faults.Schedule
	// Recovery selects what happens to tasks assigned to a permanently
	// lost leaf (RecoverHold when unset).
	Recovery RecoveryPolicy
	// Workers sets the sharded-execution budget. The engine always
	// partitions the tree at the root's children into independent
	// shards (the root performs no processing, so every task's path
	// lies inside one root-child subtree); when Workers > 1 the shard
	// event loops run on up to Workers goroutines (capped at the shard
	// count), producing results bit-identical to a sequential run.
	// 0 and 1 mean sequential. Configurations that need a global event
	// order — an Observer, or permanent leaf loss under
	// RecoverRedispatch (migration crosses shards) — fall back to
	// sequential automatically.
	Workers int
	// SplitShards, when > 0, splits any root-child subtree with more
	// than SplitShards leaves (and at least two children) one level
	// deeper: a head shard owning the subtree root alone plus one
	// sub-shard per child subtree. Skewed trees — one fat root-child
	// subtree holding most leaves — otherwise serialize on a single
	// shard; splitting restores parallelism while keeping results
	// bit-identical between sequential and parallel execution at the
	// same SplitShards value. Head shards hand tasks to their children
	// through time-ordered inboxes and never receive events back, so
	// parallel execution runs in two barrier-separated waves. Against
	// an unsplit run, per-job metrics are identical and the integral
	// statistics (FracFlow, ActiveIntegral) may differ in final ulps
	// (the handoff instants become additional quadrature breakpoints).
	// 0 disables splitting (one shard per root-child subtree).
	// Configurations needing a global event or completion order — an
	// Observer, streaming hooks, or leaf death under
	// RecoverRedispatch — ignore the knob.
	SplitShards int
	// WorkerTokens, when set, is a shared concurrency-budget
	// semaphore: every worker goroutine beyond the calling one
	// try-acquires a token and is skipped when the pool is exhausted
	// (the caller always proceeds, so progress never blocks on the
	// pool). experiments.RunAll hands its sweep pool here so that
	// nested cell-level and shard-level parallelism together never
	// oversubscribe the -parallel budget.
	WorkerTokens chan struct{}
	// RetainJobs bounds how many per-job JobMetrics a run keeps in
	// memory: 0 retains everything (backwards compatible), N > 0
	// keeps only the last N completions in a ring and recycles each
	// task's engine state the moment it completes, so memory is
	// bounded by the peak number of concurrently active tasks instead
	// of the trace length. Bounded retention trades introspection for
	// memory: Tasks() stays empty, Stats sums accumulate in
	// completion order (last-ulp float differences vs a
	// full-retention run), the end-of-run schedule audit is skipped
	// (it needs full task state), and execution is forced sequential
	// (completions must be observed in one global order). Not
	// supported by RunPacketized.
	RetainJobs int
	// Sink, when non-nil, receives every completed job's metrics in
	// completion order (e.g. an NDJSONSink writing per-job records to
	// disk), so the full record can live on disk instead of in RAM.
	// Installing a sink forces sequential execution, like
	// RetainJobs > 0. Not supported by RunPacketized.
	Sink JobSink
}

// RecoveryPolicy selects the permanent-leaf-loss behavior.
type RecoveryPolicy int

const (
	// RecoverHold leaves tasks assigned to a lost leaf in place: they
	// stall (their waiting keeps accruing in ActiveIntegral) and Drain
	// reports them in a StuckError.
	RecoverHold RecoveryPolicy = iota
	// RecoverRedispatch re-dispatches each incomplete task of a lost
	// leaf from the root toward the surviving leaf with the least
	// remaining assigned volume, recording a Migration per task. Work
	// already done on the abandoned journey is lost.
	RecoverRedispatch
)

// Migration records one recovery re-dispatch of a task off a
// permanently lost leaf. OldPath and OldLeafWork describe the
// abandoned journey (the auditor checks partial work against them).
type Migration struct {
	Job         int
	Seq         int64
	At          float64
	From, To    tree.NodeID
	OldPath     []tree.NodeID
	OldLeafWork float64
}

// Slice is one maximal interval during which a node processed a task.
type Slice struct {
	Node     tree.NodeID
	Job      int
	Seq      int64
	From, To float64
}

// Sim is the simulation engine. Create with New, feed arrivals with
// Inject (after AdvanceTo their release time), and finish with Drain.
// A drained engine can be returned to an empty time-zero state with
// Reset, which retains all allocated capacity so that repeated
// replicate runs approach zero allocations in steady state.
//
// Internally the engine is decomposed at the root's children into
// shards: each shard owns the event heap, clock, flow-time
// accumulators, slice log and task arena of one root-child subtree.
// The root performs no processing and every task's path lies inside
// one subtree, so shards share no mutable state after dispatch; the
// sequential and the parallel execution modes both run the identical
// per-shard state machines and differ only in who steps them.
type Sim struct {
	tree *tree.Tree
	opts Options

	// now is the engine-level clock: the last AdvanceTo target, and
	// after Drain the maximum shard time. Individual shards may run
	// ahead of or behind it transiently while events are processed.
	now   float64
	nodes []nodeState

	// shards hold the per-subtree event machinery; shardOf[v] indexes
	// shards by node. The partition is one shard per root-child
	// subtree unless Options.SplitShards splits fat subtrees one level
	// deeper (see buildPartition).
	shards  []shardState
	shardOf []int32
	// splitNow is the effective SplitShards value the current
	// partition was built for (-1 before the first build).
	splitNow int
	// waveAll/wave0/wave1 are the shard index schedules of parallel
	// execution: without splitting every shard is independent (one
	// wave over waveAll); with splitting, head shards (wave0) must
	// finish handing off before their sub-shards (wave1) run.
	waveAll, wave0, wave1 []int32
	// startShard[leafIndex] is the shard of Path(leaf)[0]: where a
	// root-released job assigned to that leaf begins its journey (the
	// head shard when the subtree is split).
	startShard []int32

	tasks   []*JobState
	nextSeq int64

	// par marks an in-flight parallel section: task-slot writes go to
	// pre-sized positions and error paths must not walk cross-shard
	// state.
	par bool

	// query is the read-only view handed out by Query (one per engine
	// so the accessor does not allocate).
	query Query
	// scratchArrival is reused by ReplayOn: passing a stack Arrival
	// through the Assigner interface makes it escape, which would cost
	// one heap allocation per replay on the zero-alloc warm path.
	scratchArrival Arrival
	// scratchIDs is reused by Query.AvailCountLarger for packet
	// de-duplication.
	scratchIDs []int
	// assignBuf is reused by the parallel replay's sequential dispatch
	// prepass.
	assignBuf []tree.NodeID
	// sliceCat is the reused concatenation buffer Slices() returns.
	sliceCat []Slice

	// assigned[leafIndex] lists incomplete tasks assigned to the leaf
	// (the paper's Q_v(t) for leaves).
	assigned [][]*JobState
	// upstreamWork[leafIndex] = Σ LeafWork over the tasks assigned to
	// the leaf that have not yet arrived at it — the store-and-forward
	// backlog Query.AssignedUpstreamWork reports without scanning the
	// leaf queue. Maintained at dispatch, leaf arrival (availPush) and
	// migration; a leaf's entry is only touched by its owning shard.
	upstreamWork []float64
	// pendingOn[node] lists tasks routed through node and not yet
	// complete on it (the paper's Q_v(t)); only kept when Instrument.
	pendingOn [][]*JobState

	// ps marks processor-sharing mode (Options.Policy == PS{}).
	ps bool
	// staticKey marks a StaticKeyPolicy: the running task's key cannot
	// drift between events, so reschedules skip its key refresh and
	// heap fix-up.
	staticKey bool
	// migrations records recovery re-dispatches in time order.
	migrations []Migration

	// stream holds the streaming hooks (online accumulator, sink,
	// retention ring); nil unless Options.RetainJobs or Options.Sink
	// is set.
	stream *streamState
}

// New creates an engine for the given tree.
func New(t *tree.Tree, opts Options) *Sim {
	s := &Sim{tree: t}
	s.shardOf = make([]int32, t.NumNodes())
	s.nodes = make([]nodeState, t.NumNodes())
	for i := range s.nodes {
		n := &s.nodes[i]
		n.id = tree.NodeID(i)
		n.baseSpeed = t.Speed(n.id)
		n.speed = n.baseSpeed
		n.leaf = t.IsLeaf(n.id)
	}
	s.assigned = make([][]*JobState, len(t.Leaves()))
	s.upstreamWork = make([]float64, len(t.Leaves()))
	s.splitNow = -1 // force the first buildPartition
	s.applyOptions(opts)
	return s
}

// NumShards returns the number of shards the engine is partitioned
// into — one per root-child subtree, more under Options.SplitShards —
// which is the maximum useful Options.Workers value.
func (s *Sim) NumShards() int { return len(s.shards) }

// effectiveSplit resolves Options.SplitShards against the
// configuration's eligibility: splitting changes the per-shard event
// interleaving, so configurations that need a single global event or
// completion order keep the root-child partition.
func effectiveSplit(opts Options) int {
	if opts.SplitShards <= 0 {
		return 0
	}
	if opts.Observer != nil || opts.RetainJobs > 0 || opts.Sink != nil {
		return 0
	}
	if opts.Faults != nil && opts.Faults.HasDeaths() && opts.Recovery == RecoverRedispatch {
		return 0
	}
	return opts.SplitShards
}

// buildPartition installs the shard partition for the given split
// threshold (0: one shard per root-child subtree). With split > 0, a
// root-child subtree with more than split leaves whose root h has at
// least two children is split one level deeper: a head shard owning h
// alone, plus one sub-shard per child subtree, indexed in pre-order
// (head first, then its children, subtrees in root-adjacent order).
// Tasks flow only downward, so a head never receives events from its
// children: sequential index-order stepping of the shards stays
// topologically valid unchanged, and parallel execution needs exactly
// two barrier-separated waves (heads and unsplit shards, then
// sub-shards). Rebuilding drops the previous partition's shard state,
// including its task arenas; Reset only rebuilds when the effective
// split value changes.
func (s *Sim) buildPartition(split int) {
	t := s.tree
	for i := range s.shardOf {
		s.shardOf[i] = 0 // the root lands in shard 0; it never processes
	}
	var parents []int32
	var childBuf []tree.NodeID
	for _, h := range t.RootAdjacent() {
		leaves := t.SubtreeLeaves(h)
		childBuf = childBuf[:0]
		if split > 0 && len(leaves) > split {
			for _, l := range leaves {
				p := t.Path(l)
				if len(p) < 2 {
					continue // h is itself a leaf
				}
				c := p[1]
				seen := false
				for _, e := range childBuf {
					if e == c {
						seen = true
						break
					}
				}
				if !seen {
					childBuf = append(childBuf, c)
				}
			}
		}
		if len(childBuf) >= 2 {
			head := int32(len(parents))
			parents = append(parents, -1)
			s.shardOf[h] = head
			for _, c := range childBuf {
				ci := int32(len(parents))
				parents = append(parents, head)
				for _, l := range t.SubtreeLeaves(c) {
					for i, v := range t.Path(l) {
						if i > 0 {
							s.shardOf[v] = ci
						}
					}
				}
			}
		} else {
			k := int32(len(parents))
			parents = append(parents, -1)
			for _, l := range leaves {
				for _, v := range t.Path(l) {
					s.shardOf[v] = k
				}
			}
			s.shardOf[h] = k
		}
	}
	s.shards = make([]shardState, len(parents))
	s.waveAll = s.waveAll[:0]
	s.wave0, s.wave1 = s.wave0[:0], s.wave1[:0]
	for k := range s.shards {
		s.shards[k].parent = parents[k]
		s.waveAll = append(s.waveAll, int32(k))
		if parents[k] < 0 {
			s.wave0 = append(s.wave0, int32(k))
		} else {
			s.wave1 = append(s.wave1, int32(k))
		}
	}
	for i := range s.nodes {
		s.nodes[i].shard = s.shardOf[i]
	}
	if cap(s.startShard) < len(t.Leaves()) {
		s.startShard = make([]int32, len(t.Leaves()))
	}
	s.startShard = s.startShard[:len(t.Leaves())]
	for li, l := range t.Leaves() {
		s.startShard[li] = s.shardOf[t.Path(l)[0]]
	}
}

// split reports whether the current partition actually contains
// sub-shards (the threshold may exceed every subtree's leaf count).
func (s *Sim) split() bool { return len(s.wave1) > 0 }

// startShardOf returns the shard in which a job dispatched to leaf
// with the given origin begins its journey: the shard of the first
// path node. Jobs with a non-root origin start strictly below the
// root-adjacent node, always inside the leaf's own (sub-)shard.
func (s *Sim) startShardOf(leaf, origin tree.NodeID) int32 {
	if origin != 0 {
		return s.nodes[leaf].shard
	}
	return s.startShard[s.tree.LeafIndex(leaf)]
}

// applyOptions installs opts, building or clearing the per-node queues
// as needed. The queue implementation depends on the options (scan for
// PS and UseScanQueue, heap otherwise), so a Reset that changes either
// rebuilds the queues; otherwise they are emptied in place.
func (s *Sim) applyOptions(opts Options) {
	if opts.Policy == nil {
		opts.Policy = SJF{}
	}
	if opts.Faults != nil && opts.Faults.NumNodes() != len(s.nodes) {
		panic(fmt.Sprintf("sim: fault schedule compiled for %d nodes, tree has %d",
			opts.Faults.NumNodes(), len(s.nodes)))
	}
	_, ps := opts.Policy.(PS)
	// Processor sharing recomputes the next completion by scanning,
	// so the heap's cached keys would be stale.
	scan := opts.UseScanQueue || ps
	prevScan := s.opts.UseScanQueue || s.ps
	s.opts = opts
	s.ps = ps
	_, s.staticKey = opts.Policy.(StaticKeyPolicy)
	if eff := effectiveSplit(opts); eff != s.splitNow {
		s.buildPartition(eff)
		s.splitNow = eff
	}
	for i := range s.nodes {
		n := &s.nodes[i]
		// A previous run's fault boundaries may have left a scaled
		// speed behind; every run starts at base speed (the schedule's
		// own t=0 boundaries re-apply active faults).
		n.speed = n.baseSpeed
		switch {
		case n.avail == nil || scan != prevScan:
			if scan {
				n.avail = newScanQueue()
			} else {
				n.avail = newHeapQueue()
			}
		default:
			n.avail.clear()
		}
		n.fsnap.clear()
		n.scratch = dispatchScratch{}
	}
	// Partition the global boundary list by shard; filtering a
	// (time, node)-sorted list keeps each shard's list sorted. The
	// epoch bump (fresh shards start at 1, and node scratches were just
	// zeroed) guarantees no pre-Reset memo stamp can match post-Reset.
	for k := range s.shards {
		s.shards[k].bounds = s.shards[k].bounds[:0]
		s.shards[k].epoch++
	}
	if opts.Faults != nil {
		for _, b := range opts.Faults.Boundaries() {
			k := s.shardOf[b.Node]
			s.shards[k].bounds = append(s.shards[k].bounds, b)
		}
	}
	if opts.Instrument && s.pendingOn == nil {
		s.pendingOn = make([][]*JobState, len(s.nodes))
	}
	if opts.RetainJobs < 0 {
		panic(fmt.Sprintf("sim: Options.RetainJobs must be >= 0, got %d", opts.RetainJobs))
	}
	s.stream = nil
	if opts.RetainJobs > 0 || opts.Sink != nil {
		st := &streamState{retain: opts.RetainJobs, sink: opts.Sink, recycle: opts.RetainJobs > 0}
		st.acc.PerLeaf = make([]LeafTally, len(s.tree.Leaves()))
		for li, v := range s.tree.Leaves() {
			st.acc.PerLeaf[li].Leaf = v
		}
		if st.retain > 0 {
			st.ring = make([]JobMetrics, 0, st.retain)
		}
		s.stream = st
	}
}

// Reset returns the engine to an empty state at time zero while
// retaining every allocated buffer (event heaps, node queues, task
// arenas, instrumentation slices), so replaying traces on one engine
// approaches zero allocations per run. opts may differ arbitrarily
// from the previous run's options — changing Policy, Instrument,
// UseScanQueue, Workers, etc. is supported and the engine reconfigures
// itself.
//
// Reset recycles every JobState from the previous run: pointers
// previously obtained from Tasks(), Inject or a Result that references
// this engine become invalid. Extract any metrics you need before
// resetting.
func (s *Sim) Reset(opts Options) {
	for _, js := range s.tasks {
		if js == nil {
			continue // slot of a run aborted mid-parallel-injection
		}
		sh := &s.shards[s.shardOf[js.Leaf]]
		sh.free = append(sh.free, js)
	}
	s.tasks = s.tasks[:0]
	s.nextSeq = 0
	s.now = 0
	for i := range s.nodes {
		n := &s.nodes[i]
		n.running = nil
		n.finishSeq = 0
		n.lastSync = 0
		n.busyTime = 0
		n.workDone = 0
		n.fracContrib = 0
	}
	for k := range s.shards {
		sh := &s.shards[k]
		sh.now = 0
		sh.events = sh.events[:0]
		sh.faultIdx = 0
		sh.activeTasks = 0
		sh.fracSum, sh.fracRate = 0, 0
		sh.fracIntegral, sh.activeIntegral = 0, 0
		sh.eventCount = 0
		sh.slices = sh.slices[:0]
		sh.mergeFloor = 0
		sh.inbox = sh.inbox[:0]
		sh.inboxIdx = 0
		sh.err = nil
		sh.panicVal = nil
	}
	for i := range s.assigned {
		s.assigned[i] = s.assigned[i][:0]
	}
	for i := range s.upstreamWork {
		s.upstreamWork[i] = 0
	}
	for i := range s.pendingOn {
		s.pendingOn[i] = s.pendingOn[i][:0]
	}
	s.sliceCat = s.sliceCat[:0]
	s.migrations = s.migrations[:0]
	s.applyOptions(opts)
}

// taskBlockSize is how many JobStates one arena chunk holds; one chunk
// allocation amortizes over this many injections.
const taskBlockSize = 512

// newTask returns a zeroed JobState from the shard's freelist or
// arena (per shard so parallel injection never contends).
// Instrumentation buffers of recycled tasks are kept (emptied) when
// the engine is instrumented so inject can refill them in place; in
// uninstrumented mode they are dropped to nil, which downstream code
// (e.g. trace rendering) uses to detect the absence of hop timings.
func (s *Sim) newTask(sh *shardState) *JobState {
	if n := len(sh.free); n > 0 {
		js := sh.free[n-1]
		sh.free = sh.free[:n-1]
		ha, hc, pi := js.HopArrive, js.HopComplete, js.pendIdx
		*js = JobState{}
		if s.opts.Instrument {
			js.HopArrive = ha[:0]
			js.HopComplete = hc[:0]
			js.pendIdx = pi[:0]
		}
		return js
	}
	if len(sh.block) == 0 {
		sh.block = make([]JobState, taskBlockSize)
	}
	js := &sh.block[0]
	sh.block = sh.block[1:]
	return js
}

// growFloats resizes sl to n zeroed entries, reusing its capacity.
func growFloats(sl []float64, n int) []float64 {
	if cap(sl) < n {
		return make([]float64, n)
	}
	sl = sl[:n]
	for i := range sl {
		sl[i] = 0
	}
	return sl
}

// growInts resizes sl to n zeroed entries, reusing its capacity.
func growInts(sl []int, n int) []int {
	if cap(sl) < n {
		return make([]int, n)
	}
	sl = sl[:n]
	for i := range sl {
		sl[i] = 0
	}
	return sl
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Tree returns the topology being simulated.
func (s *Sim) Tree() *tree.Tree { return s.tree }

// Inject dispatches a job (or packet task) to the given leaf at the
// current simulation time. The caller must have advanced the engine to
// the task's release time first. The returned JobState is live engine
// state; callers may read it but must not mutate it.
func (s *Sim) Inject(a *Arrival, leaf tree.NodeID) (*JobState, error) {
	if s.tree.LeafIndex(leaf) < 0 {
		return nil, fmt.Errorf("sim: assignment to non-leaf node %d", leaf)
	}
	if a.Release > s.now+timeEps {
		return nil, fmt.Errorf("sim: injecting job %d at t=%v before its release %v", a.ID, s.now, a.Release)
	}
	// Fault boundaries due at or before now take effect first, so a
	// job injected at exactly a boundary instant sees the post-fault
	// speeds (AdvanceTo already applies earlier ones).
	if s.opts.Faults != nil {
		s.applyDueBoundaries()
	}
	w := a.Weight
	if w <= 0 {
		w = 1
	}
	js := s.newTask(&s.shards[s.shardOf[leaf]])
	js.ID = a.ID
	js.seq = s.nextSeq
	js.Release = a.Release
	js.RouterSize = a.Size
	js.LeafWork = a.LeafSize(s.tree.LeafIndex(leaf))
	js.FracWeight = 1
	js.Weight = w
	js.Leaf = leaf
	js.leafSizes = a.LeafSizes
	s.nextSeq++
	return js, s.inject(js, a.Origin)
}

func (s *Sim) inject(js *JobState, origin tree.NodeID) error {
	if js.Weight <= 0 {
		js.Weight = 1
	}
	// Under redispatch recovery a fault-oblivious assigner may still
	// target an already-dead leaf; the dispatcher redirects the arrival
	// to a survivor (no Migration is recorded — the task never started
	// its original journey). Cross-shard state is read here, which is
	// safe: redirect requires deaths, and deaths force sequential
	// execution with every shard advanced to the injection instant.
	if s.opts.Faults != nil && s.opts.Recovery == RecoverRedispatch {
		if at, dead := s.opts.Faults.DeathTime(js.Leaf); dead && at <= s.now {
			if to := s.pickSurvivor(js); to != tree.None {
				li := s.tree.LeafIndex(to)
				js.Leaf = to
				if js.leafSizes != nil {
					js.LeafWork = js.leafSizes[li] * js.FracWeight
					js.PrioLeaf = js.leafSizes[li]
				}
			}
		}
	}
	full := s.tree.Path(js.Leaf)
	if origin != 0 {
		// Arbitrary-origin extension: process only strictly below the
		// origin; the origin must be a path node or the leaf's parent.
		cut := -1
		for i, v := range full {
			if v == origin {
				cut = i
				break
			}
		}
		if cut < 0 {
			return fmt.Errorf("sim: job %d origin %d is not an ancestor of leaf %d", js.ID, origin, js.Leaf)
		}
		full = full[cut+1:]
		if len(full) == 0 {
			// Origin is the leaf itself: machine work still required.
			full = s.tree.Path(js.Leaf)[len(s.tree.Path(js.Leaf))-1:]
		}
	}
	// Stats (activeTasks, fracSum) are charged to the shard where the
	// task's journey begins — the shard of Path[0], which under
	// sub-shard splitting is the head shard, not the leaf's sub-shard.
	// The task arena stays keyed by the leaf's shard (see newTask and
	// Reset's recycle loop).
	sh := &s.shards[s.nodes[full[0]].shard]
	now := sh.now
	js.Path = full
	js.Hop = 0
	if js.PrioRouter == 0 {
		js.PrioRouter = js.RouterSize
	}
	if js.PrioLeaf == 0 {
		js.PrioLeaf = js.LeafWork
	}
	first := js.Path[0]
	js.OrigOnCur = s.sizeOn(js, 0)
	js.PrioOnCur = s.prioOn(js, 0)
	js.Remaining = js.OrigOnCur
	js.NodeArrive = now
	if s.opts.Instrument {
		js.HopArrive = growFloats(js.HopArrive, len(js.Path))
		js.HopComplete = growFloats(js.HopComplete, len(js.Path))
		js.HopArrive[0] = now
		js.pendIdx = growInts(js.pendIdx, len(js.Path))
		for i, v := range js.Path {
			js.pendIdx[i] = len(s.pendingOn[v])
			s.pendingOn[v] = append(s.pendingOn[v], js)
		}
	}
	li := s.tree.LeafIndex(js.Leaf)
	js.leafIdx = len(s.assigned[li])
	s.assigned[li] = append(s.assigned[li], js)
	if len(js.Path) > 1 {
		// The journey starts upstream of the leaf; availPush takes the
		// task back out of the backlog when it arrives there.
		s.upstreamWork[li] += js.LeafWork
	}

	if s.par {
		// Parallel injection: slots were pre-sized by seq so workers
		// write disjoint positions and injection order stays global.
		s.tasks[js.seq] = js
	} else if !s.recycling() {
		// Bounded-retention streaming never populates the global task
		// list: the task is recycled at completion instead.
		s.tasks = append(s.tasks, js)
	}
	sh.activeTasks++
	sh.fracSum += js.FracWeight

	s.setKey(js)
	// Sync before pushing: nodes sync lazily, and under processor
	// sharing the elapsed work must be distributed among the tasks
	// that were present, not the newcomer.
	s.sync(first)
	s.availPush(first, js)
	s.reschedule(first)
	if s.opts.Observer != nil {
		s.opts.Observer(s)
	}
	return nil
}

// availPush and availRemove are the queue-membership mutators: every
// membership change goes through them so the node's F-statistic
// snapshot is updated exactly at event boundaries and the shard's
// dispatch epoch advances (invalidating the per-node query memos).
func (s *Sim) availPush(v tree.NodeID, js *JobState) {
	n := &s.nodes[v]
	s.shards[n.shard].epoch++
	if n.leaf && js.Hop > 0 {
		// The task reached its leaf: it leaves the upstream backlog.
		// (A task pushed at Hop 0 on a leaf was dispatched there
		// directly and was never counted upstream.)
		s.upstreamWork[s.tree.LeafIndex(v)] -= js.LeafWork
	}
	if n.fsnap.active {
		n.fsnap.insert(js)
	}
	n.avail.push(js)
}

func (s *Sim) availRemove(v tree.NodeID, js *JobState) {
	n := &s.nodes[v]
	s.shards[n.shard].epoch++
	if n.fsnap.active {
		n.fsnap.remove(js)
	}
	n.avail.remove(js)
}

// sizeOn returns the task's full processing requirement on Path[hop].
func (s *Sim) sizeOn(js *JobState, hop int) float64 {
	if hop == len(js.Path)-1 {
		return js.LeafWork
	}
	return js.RouterSize
}

// prioOn returns the priority size (original job size) on Path[hop].
func (s *Sim) prioOn(js *JobState, hop int) float64 {
	if hop == len(js.Path)-1 {
		return js.PrioLeaf
	}
	return js.PrioRouter
}

func (s *Sim) setKey(js *JobState) {
	js.key1, js.key2 = s.opts.Policy.Key(js)
}

// sync brings the node's running task's Remaining and the node's
// accounting up to the node's shard time. Under processor sharing the
// elapsed work is split equally across all available tasks.
func (s *Sim) sync(v tree.NodeID) { s.syncNode(&s.nodes[v]) }

// syncNode is sync for callers that already hold the node pointer —
// the reschedule and snapshot-refresh paths, where the duplicate
// indexed lookup showed up in the dispatch profile. The already-synced
// check lives here so it inlines into the hot callers (most calls are
// re-syncs at an unchanged shard clock); syncNodeSlow does the work.
func (s *Sim) syncNode(n *nodeState) {
	sh := &s.shards[n.shard]
	if n.lastSync >= sh.now {
		return
	}
	s.syncNodeSlow(n, sh)
}

func (s *Sim) syncNodeSlow(n *nodeState, sh *shardState) {
	now := sh.now
	from := n.lastSync
	dt := now - from
	n.lastSync = now
	if n.speed <= 0 {
		// Outage: the node is stalled, performing no work and counting
		// no busy time; no slice is recorded.
		return
	}
	if s.ps {
		k := n.avail.len()
		if k == 0 {
			return
		}
		share := dt * n.speed / float64(k)
		var done float64
		for _, js := range n.avail.tasks() {
			d := share
			if d > js.Remaining {
				d = js.Remaining
			}
			js.Remaining -= d
			done += d
		}
		n.busyTime += dt
		n.workDone += done
		return
	}
	if n.running == nil {
		return
	}
	done := dt * n.speed
	if done > n.running.Remaining {
		done = n.running.Remaining
	}
	n.running.Remaining -= done
	n.busyTime += dt
	n.workDone += done
	if s.opts.RecordSlices {
		// Merge with the previous slice when the same task continued —
		// but never across a migration (mergeFloor): a re-dispatched
		// task restarting on the same node is a new journey and the
		// auditor checks the two legs separately.
		if k := len(sh.slices) - 1; k >= 0 && k >= sh.mergeFloor && sh.slices[k].Node == n.id &&
			sh.slices[k].Seq == n.running.seq && sh.slices[k].To == from {
			sh.slices[k].To = now
		} else {
			sh.slices = append(sh.slices, Slice{Node: n.id, Job: n.running.ID, Seq: n.running.seq, From: from, To: now})
		}
	}
}

// reschedule re-evaluates which task node v should run, scheduling or
// cancelling its finish event as needed. Callers must have already
// advanced time; reschedule syncs the node itself.
func (s *Sim) reschedule(v tree.NodeID) { s.rescheduleWith(v, false) }

// rescheduleForce reissues the finish event even when the running
// task is unchanged — needed after a fault boundary changes the
// node's speed underneath it, which moves the deadline.
func (s *Sim) rescheduleForce(v tree.NodeID) { s.rescheduleWith(v, true) }

func (s *Sim) rescheduleWith(v tree.NodeID, force bool) {
	if s.ps {
		s.reschedulePS(v)
		return
	}
	n := &s.nodes[v]
	sh := &s.shards[n.shard]
	s.syncNode(n)
	if n.running != nil && !s.staticKey {
		// The running task's key may depend on Remaining (SRPT);
		// static-key policies skip the refresh — re-deriving an
		// unchanged key cannot move the task in the heap.
		s.setKey(n.running)
		n.avail.fix(n.running)
	}
	best := n.avail.min()
	if best == n.running && !force {
		return
	}
	if old := n.running; old != nil && old != best {
		// Preemption without a membership change (the policy key can
		// drift under SRPT): the preempted task keeps its queue slot
		// but its stored snapshot Remaining is stale now that the
		// running-task correction stops covering it — and the memoized
		// query answers move with the running task either way.
		sh.epoch++
		if n.fsnap.active {
			n.fsnap.markStale(old)
		}
	}
	n.running = best
	n.finishSeq++
	if n.leaf {
		sh.fracRate -= n.fracContrib
		n.fracContrib = 0
	}
	if best == nil {
		return
	}
	if n.leaf {
		n.fracContrib = best.FracWeight * n.speed / best.OrigOnCur
		sh.fracRate += n.fracContrib
	}
	if n.speed <= 0 {
		// Outage: the task stays selected but cannot finish; the next
		// fault boundary restores the speed and reschedules.
		return
	}
	sh.pushEvent(finishEvent{
		at:   sh.now + best.Remaining/n.speed,
		node: v,
		seq:  n.finishSeq,
	})
}

// reschedulePS is the processor-sharing variant: all available tasks
// progress at rate speed/k, so the next completion is the minimum
// remaining task and its finish time scales with the share count.
func (s *Sim) reschedulePS(v tree.NodeID) {
	n := &s.nodes[v]
	sh := &s.shards[n.shard]
	s.sync(v)
	var best *JobState
	for _, js := range n.avail.tasks() {
		if best == nil ||
			js.Remaining < best.Remaining ||
			(js.Remaining == best.Remaining && (js.ID < best.ID || (js.ID == best.ID && js.seq < best.seq))) {
			best = js
		}
	}
	// Any change to the share count moves every deadline, so always
	// reissue the event.
	n.running = best
	n.finishSeq++
	if n.leaf {
		sh.fracRate -= n.fracContrib
		n.fracContrib = 0
	}
	if best == nil {
		return
	}
	k := float64(n.avail.len())
	if n.leaf {
		var contrib float64
		for _, js := range n.avail.tasks() {
			contrib += js.FracWeight * (n.speed / k) / js.OrigOnCur
		}
		n.fracContrib = contrib
		sh.fracRate += contrib
	}
	if n.speed <= 0 {
		return // outage: no completion until a boundary restores speed
	}
	sh.pushEvent(finishEvent{
		at:   sh.now + best.Remaining*k/n.speed,
		node: v,
		seq:  n.finishSeq,
	})
}

// nextEvent returns shard sh's earliest live finish event without
// removing it, discarding stale entries.
func (s *Sim) nextEvent(sh *shardState) (finishEvent, bool) {
	for len(sh.events) > 0 {
		top := sh.events[0]
		if s.nodes[top.node].finishSeq == top.seq {
			return top, true
		}
		sh.popEvent()
	}
	return finishEvent{}, false
}

// advanceShard moves one shard's clock forward with no events in
// between, accumulating its flow-time integrals. Every shard advances
// through the identical set of instants in both execution modes (all
// arrival releases, plus the shard's own events and boundaries, plus
// the common drain end time), so the floating-point quadrature of the
// integrals is bit-identical between sequential and parallel runs.
func (s *Sim) advanceShard(sh *shardState, to float64) {
	dt := to - sh.now
	if dt <= 0 {
		return
	}
	// Clock movement drifts running-task Remaining values, so memoized
	// query answers from earlier instants are no longer current.
	sh.epoch++
	sh.activeIntegral += float64(sh.activeTasks) * dt
	sh.fracIntegral += sh.fracSum*dt - 0.5*sh.fracRate*dt*dt
	sh.fracSum -= sh.fracRate * dt
	if sh.fracSum < 0 {
		sh.fracSum = 0 // floating-point guard
	}
	sh.now = to
}

// advanceShardTo processes shard k's events, fault boundaries and
// parent handoffs up to and including target and leaves the shard
// clock there. At equal instants finish events win (a task completing
// exactly at an outage start still completes), then boundaries, then
// handoffs (a task arriving exactly at a boundary sees the post-fault
// speed, matching Inject's applyDueBoundaries).
func (s *Sim) advanceShardTo(k int, target float64) {
	sh := &s.shards[k]
	for {
		// Fast path: the heap top is the earliest queued entry (live or
		// stale), so top.at > target means no event is due and the
		// staleness validation (a random node lookup) can wait; stale
		// tops beyond target stay queued and are discarded whenever the
		// clock reaches them. Querying assigners hit this on every
		// shard at every arrival barrier.
		if len(sh.events) == 0 || sh.events[0].at > target {
			bDue := false
			if s.opts.Faults != nil {
				b, bOK := sh.peekBoundary()
				bDue = bOK && b.At <= target
			}
			if !bDue {
				if h, hOK := sh.peekHandoff(); !hOK || h.at > target {
					break
				}
			}
		}
		ev, evOK := s.nextEvent(sh)
		if s.opts.Faults != nil {
			if b, bOK := sh.peekBoundary(); bOK && b.At <= target && (!evOK || b.At < ev.at || ev.at > target) {
				if h, hOK := sh.peekHandoff(); !hOK || b.At <= h.at {
					s.advanceShard(sh, b.At)
					s.applyBoundary(sh, b)
					continue
				}
			}
		}
		if h, hOK := sh.peekHandoff(); hOK && h.at <= target && (!evOK || h.at < ev.at || ev.at > target) {
			sh.inboxIdx++
			s.advanceShard(sh, h.at)
			s.applyHandoff(sh, h.js)
			continue
		}
		if !evOK || ev.at > target {
			break
		}
		sh.popEvent()
		s.advanceShard(sh, ev.at)
		s.handleFinish(ev.node)
	}
	s.advanceShard(sh, target)
}

// drainShard processes every remaining event, boundary and handoff of
// shard k, with the same tie order as advanceShardTo.
func (s *Sim) drainShard(k int) {
	sh := &s.shards[k]
	for {
		ev, evOK := s.nextEvent(sh)
		if s.opts.Faults != nil {
			if b, bOK := sh.peekBoundary(); bOK && (!evOK || b.At < ev.at) {
				if h, hOK := sh.peekHandoff(); !hOK || b.At <= h.at {
					s.advanceShard(sh, b.At)
					s.applyBoundary(sh, b)
					continue
				}
			}
		}
		if h, hOK := sh.peekHandoff(); hOK && (!evOK || h.at < ev.at) {
			sh.inboxIdx++
			s.advanceShard(sh, h.at)
			s.applyHandoff(sh, h.js)
			continue
		}
		if !evOK {
			break
		}
		sh.popEvent()
		s.advanceShard(sh, ev.at)
		s.handleFinish(ev.node)
	}
}

// applyHandoff completes a parent-to-sub-shard task transfer at the
// shard's current clock: the task joins the shard's residence
// accounting and its next node's queue. The emitting side (see
// handleFinish) already advanced the task's per-hop fields.
func (s *Sim) applyHandoff(sh *shardState, js *JobState) {
	sh.activeTasks++
	sh.fracSum += js.FracWeight
	w := js.Path[js.Hop]
	s.sync(w)
	s.availPush(w, js)
	s.reschedule(w)
}

// AdvanceTo processes all events (and fault boundaries) up to and
// including the target time and leaves every shard's clock there.
// Violated engine invariants panic with *InternalError; Drain,
// ReplayOn and RunPacketized recover those into error returns.
func (s *Sim) AdvanceTo(target float64) {
	if target < s.now-timeEps {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before now=%v", target, s.now))
	}
	if s.interleavedMode() {
		s.runInterleaved(target, false)
	} else {
		for k := range s.shards {
			s.advanceShardTo(k, target)
		}
	}
	s.now = target
}

// interleavedMode reports whether sequential execution must process
// events in a single global time order: Observers watch cross-shard
// state at event granularity, and recovery re-dispatch migrates tasks
// across shards.
func (s *Sim) interleavedMode() bool { return !s.parallelOK() }

// parallelOK reports whether the configuration admits per-shard
// execution (sequential per-shard ordering or parallel workers).
func (s *Sim) parallelOK() bool {
	if s.opts.Observer != nil {
		return false
	}
	if s.opts.Faults != nil && s.opts.Faults.HasDeaths() && s.opts.Recovery == RecoverRedispatch {
		return false
	}
	return true
}

// runInterleaved processes events of all shards in one global
// (time, node) order. With an Observer every shard's clock advances in
// lockstep at every event so the Observer sees a globally consistent
// snapshot; otherwise only the event's shard advances (cross-shard
// reads during re-dispatch deliberately see raw un-synced Remaining,
// exactly as the single-heap engine did).
func (s *Sim) runInterleaved(target float64, drain bool) {
	lockstep := s.opts.Observer != nil
	for {
		evK, evOK := -1, false
		var ev finishEvent
		for k := range s.shards {
			e, ok := s.nextEvent(&s.shards[k])
			if ok && (!evOK || e.at < ev.at || (e.at == ev.at && e.node < ev.node)) {
				evK, ev, evOK = k, e, true
			}
		}
		if s.opts.Faults != nil {
			if bK, b, bOK := s.peekGlobalBoundary(); bOK && (drain || b.At <= target) &&
				(!evOK || b.At < ev.at || (!drain && ev.at > target)) {
				s.advanceInterleaved(bK, b.At, lockstep)
				s.applyBoundary(&s.shards[bK], b)
				continue
			}
		}
		if !evOK || (!drain && ev.at > target) {
			break
		}
		s.shards[evK].popEvent()
		s.advanceInterleaved(evK, ev.at, lockstep)
		s.handleFinish(ev.node)
	}
	if !drain {
		for k := range s.shards {
			s.advanceShard(&s.shards[k], target)
		}
	}
}

// advanceInterleaved advances shard k (or, in lockstep, every shard)
// to the next global event instant and tracks the global clock, which
// re-dispatch decisions read.
func (s *Sim) advanceInterleaved(k int, to float64, lockstep bool) {
	if lockstep {
		for i := range s.shards {
			s.advanceShard(&s.shards[i], to)
		}
	} else {
		s.advanceShard(&s.shards[k], to)
	}
	s.now = to
}

// Drain runs the engine until no tasks remain active. It returns a
// *StuckError when tasks can no longer progress (a permanently lost
// leaf under RecoverHold), a *InternalError when an engine invariant
// or — with Instrument and RecordSlices set — the schedule audit
// fails, and nil on a clean drain.
func (s *Sim) Drain() (err error) {
	defer recoverInternal(&err)
	if s.interleavedMode() {
		s.runInterleaved(0, true)
	} else {
		for k := range s.shards {
			s.drainShard(k)
		}
	}
	return s.finishDrain()
}

// finishDrain aligns every shard at the common end time (the maximum
// shard clock, in shard-index order so the alignment is deterministic)
// and performs the end-of-run checks shared by the sequential and
// parallel drains.
func (s *Sim) finishDrain() error {
	end := s.now
	for k := range s.shards {
		if s.shards[k].now > end {
			end = s.shards[k].now
		}
	}
	for k := range s.shards {
		s.advanceShard(&s.shards[k], end)
	}
	s.now = end
	if act := s.Active(); act != 0 {
		dumps, total := dumpActive(s)
		if total < act {
			// Bounded-retention streaming keeps no global task list to
			// dump; the shard accumulators' count is authoritative.
			total = act
		}
		return &StuckError{Now: s.now, Active: total, Tasks: dumps}
	}
	if s.opts.SelfCheck {
		if err := s.CheckInvariants(); err != nil {
			return err
		}
	}
	// With full instrumentation on, every drained run audits its own
	// recorded schedule, so test suites double as conformance tests.
	// Bounded-retention streaming recycles task state at completion,
	// which the auditor needs, so it is exempt.
	if s.opts.Instrument && s.opts.RecordSlices && !s.ps && !s.recycling() {
		if rep := s.Audit(); !rep.OK() {
			return &AuditError{Report: rep}
		}
	}
	return nil
}

// peekGlobalBoundary returns the earliest unapplied boundary across
// all shards in the global (time, node) order, with its shard index.
func (s *Sim) peekGlobalBoundary() (int, faults.Boundary, bool) {
	bK, bOK := -1, false
	var best faults.Boundary
	for k := range s.shards {
		b, ok := s.shards[k].peekBoundary()
		if ok && (!bOK || b.At < best.At || (b.At == best.At && b.Node < best.Node)) {
			bK, best, bOK = k, b, true
		}
	}
	return bK, best, bOK
}

// applyDueBoundaries applies boundaries at or before the current time
// (Inject's guard; AdvanceTo handles them during time travel).
func (s *Sim) applyDueBoundaries() {
	for {
		k, b, ok := s.peekGlobalBoundary()
		if !ok || b.At > s.now {
			return
		}
		s.applyBoundary(&s.shards[k], b)
	}
}

// applyBoundary installs node b.Node's new fault-scaled speed; the
// shard clock must already stand at b.At (or at the injection instant
// for boundaries applied by Inject's guard). The node is synced under
// the old speed first, then the finish event is reissued since its
// deadline scales with the speed. A permanent leaf loss triggers the
// recovery policy.
func (s *Sim) applyBoundary(sh *shardState, b faults.Boundary) {
	sh.faultIdx++
	n := &s.nodes[b.Node]
	s.sync(b.Node)
	n.speed = n.baseSpeed * s.opts.Faults.FactorAt(b.Node, b.At)
	if n.leaf && s.opts.Recovery == RecoverRedispatch {
		if at, dead := s.opts.Faults.DeathTime(b.Node); dead && at == b.At {
			s.redispatchLeaf(b.Node)
		}
	}
	s.rescheduleForce(b.Node)
}

// redispatchLeaf re-dispatches every incomplete task assigned to the
// lost leaf, in injection order, onto surviving leaves.
func (s *Sim) redispatchLeaf(dead tree.NodeID) {
	li := s.tree.LeafIndex(dead)
	if len(s.assigned[li]) == 0 {
		return
	}
	// Snapshot: migration mutates the assigned list. Sort by sequence
	// so tasks migrate in injection order regardless of the list's
	// swap-removal history.
	batch := append([]*JobState(nil), s.assigned[li]...)
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	for _, js := range batch {
		to := s.pickSurvivor(js)
		if to == tree.None {
			// No surviving leaf: the task stays held; Drain reports it.
			continue
		}
		s.migrate(js, to)
	}
}

// pickSurvivor chooses the surviving leaf with the least remaining
// assigned leaf volume including the migrating task's own requirement
// there — deterministic (first minimum in leaf order wins) and
// load-aware in the spirit of the greedy rules.
func (s *Sim) pickSurvivor(js *JobState) tree.NodeID {
	best := tree.None
	var bestCost float64
	for i, leaf := range s.tree.Leaves() {
		if at, dead := s.opts.Faults.DeathTime(leaf); dead && at <= s.now {
			continue
		}
		var vol float64
		for _, other := range s.assigned[i] {
			if other.Hop == len(other.Path)-1 {
				vol += other.Remaining
			} else {
				vol += other.LeafWork
			}
		}
		cost := vol + js.workOnLeaf(i)
		if best == tree.None || cost < bestCost {
			best, bestCost = leaf, cost
		}
	}
	return best
}

// workOnLeaf returns the task's leaf processing requirement were it
// assigned to leaf index li.
func (js *JobState) workOnLeaf(li int) float64 {
	if js.leafSizes == nil {
		return js.LeafWork // identical endpoints: the same everywhere
	}
	// FracWeight scales packet pieces (1 for whole jobs).
	return js.leafSizes[li] * js.FracWeight
}

// migrate re-dispatches one task from its current position to leaf
// `to`: it restarts at the root of the new leaf's path with full
// remaining work there (partial work on the abandoned journey is
// lost), and the move is recorded as a Migration. Migration can cross
// shards, which is why deaths under RecoverRedispatch force the
// interleaved sequential mode: the destination shard's clock is
// brought up to the migration instant here (its earlier events were
// already processed by the global-order loop).
func (s *Sim) migrate(js *JobState, to tree.NodeID) {
	cur := js.CurrentNode()
	n := &s.nodes[cur]
	src := &s.shards[n.shard]
	now := src.now
	dst := &s.shards[s.shardOf[to]]
	s.advanceShard(dst, now)
	s.sync(cur)
	// The fractional-flow sum returns to a full remaining fraction
	// once the task restarts.
	frac := 1.0
	if js.Hop == len(js.Path)-1 {
		frac = js.Remaining / js.OrigOnCur
	}
	if src == dst {
		src.fracSum += js.FracWeight * (1 - frac)
	} else {
		src.fracSum -= js.FracWeight * frac
		dst.fracSum += js.FracWeight
		src.activeTasks--
		dst.activeTasks++
	}
	s.availRemove(cur, js)
	if n.running == js {
		n.running = nil
		n.finishSeq++
		if n.leaf {
			src.fracRate -= n.fracContrib
			n.fracContrib = 0
		}
	}
	if s.opts.Instrument {
		for h := js.Hop; h < len(js.Path); h++ {
			s.pendRemove(js.Path[h], js)
		}
	}
	s.assignedRemove(s.tree.LeafIndex(js.Leaf), js)
	if js.Hop < len(js.Path)-1 {
		// Still upstream of the abandoned leaf: leave its backlog. (A
		// task that had reached the leaf was removed at availPush.)
		s.upstreamWork[s.tree.LeafIndex(js.Leaf)] -= js.LeafWork
	}
	src.mergeFloor = len(src.slices)
	dst.mergeFloor = len(dst.slices)
	s.migrations = append(s.migrations, Migration{
		Job: js.ID, Seq: js.seq, At: now, From: js.Leaf, To: to,
		OldPath: js.Path, OldLeafWork: js.LeafWork,
	})

	li := s.tree.LeafIndex(to)
	js.Leaf = to
	if js.leafSizes != nil {
		js.LeafWork = js.leafSizes[li] * js.FracWeight
		js.PrioLeaf = js.leafSizes[li]
	}
	js.Path = s.tree.Path(to)
	js.Hop = 0
	js.OrigOnCur = s.sizeOn(js, 0)
	js.PrioOnCur = s.prioOn(js, 0)
	js.Remaining = js.OrigOnCur
	js.NodeArrive = now
	if s.opts.Instrument {
		// Hop records restart for the new journey; the abandoned
		// journey survives in the slice log and the Migration record.
		js.HopArrive = growFloats(js.HopArrive, len(js.Path))
		js.HopComplete = growFloats(js.HopComplete, len(js.Path))
		js.HopArrive[0] = now
		js.pendIdx = growInts(js.pendIdx, len(js.Path))
		for i, v := range js.Path {
			js.pendIdx[i] = len(s.pendingOn[v])
			s.pendingOn[v] = append(s.pendingOn[v], js)
		}
	}
	js.leafIdx = len(s.assigned[li])
	s.assigned[li] = append(s.assigned[li], js)
	if len(js.Path) > 1 {
		s.upstreamWork[li] += js.LeafWork
	}
	s.setKey(js)
	first := js.Path[0]
	s.sync(first)
	s.availPush(first, js)
	s.reschedule(first)
	s.rescheduleForce(cur)
}

// Migrations returns the recovery re-dispatches recorded so far, in
// time order. Live engine state: read-only for callers.
func (s *Sim) Migrations() []Migration { return s.migrations }

// handleFinish completes the running task on node v.
func (s *Sim) handleFinish(v tree.NodeID) {
	n := &s.nodes[v]
	sh := &s.shards[n.shard]
	now := sh.now
	js := n.running
	if js == nil {
		panic(s.internalErr("handleFinish", "finish event on idle node %d", v))
	}
	s.syncNode(n)
	if s.opts.SelfCheck && js.Remaining > 1e-6 {
		panic(s.internalErr("handleFinish", "task %d finished on node %d with %v remaining", js.ID, v, js.Remaining))
	}
	js.Remaining = 0
	sh.eventCount++

	s.availRemove(v, js)
	n.running = nil
	n.finishSeq++
	if n.leaf {
		sh.fracRate -= n.fracContrib
		n.fracContrib = 0
	}
	if s.opts.Instrument {
		js.HopComplete[js.Hop] = now
		s.pendRemove(v, js)
	}

	js.Hop++
	if js.Hop == len(js.Path) {
		// Completed on the leaf machine.
		js.Completed = true
		js.Completion = now
		sh.activeTasks--
		li := s.tree.LeafIndex(js.Leaf)
		s.assignedRemove(li, js)
		if s.stream != nil {
			// Streaming hooks: accumulate/emit the metrics and, in
			// recycle mode, return js to the freelist (it is not
			// referenced again below).
			s.streamComplete(sh, js, li)
		}
	} else {
		w := js.Path[js.Hop]
		js.OrigOnCur = s.sizeOn(js, js.Hop)
		js.PrioOnCur = s.prioOn(js, js.Hop)
		js.Remaining = js.OrigOnCur
		js.NodeArrive = now
		if s.opts.Instrument {
			js.HopArrive[js.Hop] = now
		}
		s.setKey(js)
		if ws := s.nodes[w].shard; ws != n.shard {
			// Sub-shard handoff: the next node belongs to a child
			// sub-shard of this head shard. The task leaves this
			// shard's residence accounting now and enters the child's
			// when the child consumes the inbox entry at the same
			// instant. Only the head ever appends to a child's inbox
			// and heads run strictly before children in parallel mode,
			// so the inbox needs no synchronization; emission order is
			// the head's event order, so entries are time-sorted.
			sh.activeTasks--
			sh.fracSum -= js.FracWeight
			dst := &s.shards[ws]
			dst.inbox = append(dst.inbox, handoff{at: now, js: js})
		} else {
			s.sync(w) // see Inject: distribute elapsed work before joining
			s.availPush(w, js)
			s.reschedule(w)
		}
	}
	s.reschedule(v)
	if s.opts.Observer != nil {
		s.opts.Observer(s)
	}
}

func (s *Sim) assignedRemove(li int, js *JobState) {
	lst := s.assigned[li]
	i, n := js.leafIdx, len(lst)-1
	lst[i] = lst[n]
	lst[i].leafIdx = i
	s.assigned[li] = lst[:n]
	js.leafIdx = -1
}

func (s *Sim) pendRemove(v tree.NodeID, js *JobState) {
	hop := -1
	for i, u := range js.Path {
		if u == v {
			hop = i
			break
		}
	}
	lst := s.pendingOn[v]
	i, n := js.pendIdx[hop], len(lst)-1
	lst[i] = lst[n]
	// Fix the moved task's back-pointer for this node.
	moved := lst[i]
	for mi, u := range moved.Path {
		if u == v {
			moved.pendIdx[mi] = i
			break
		}
	}
	s.pendingOn[v] = lst[:n]
	js.pendIdx[hop] = -1
}

// Active returns the number of incomplete tasks.
func (s *Sim) Active() int {
	active := 0
	for k := range s.shards {
		active += s.shards[k].activeTasks
	}
	return active
}

// Slices returns the exact processing record (requires
// Options.RecordSlices). Slices are grouped by shard (root-child
// subtree, in root-adjacent order) and within each shard appear in the
// order work was performed; consecutive slices of one task on one node
// are merged. With a single root branch this is plain time order. The
// grouping is identical in sequential and parallel runs. The returned
// slice is an engine-owned buffer reused by the next call after a
// Reset; copy it to retain.
func (s *Sim) Slices() []Slice {
	if !s.opts.RecordSlices {
		panic("sim: Slices requires Options.RecordSlices")
	}
	s.sliceCat = s.sliceCat[:0]
	for k := range s.shards {
		s.sliceCat = append(s.sliceCat, s.shards[k].slices...)
	}
	return s.sliceCat
}

// ShardSlices returns shard k's processing record only (requires
// Options.RecordSlices) — the per-shard view the auditor can verify
// independently. Live engine state: read-only for callers.
func (s *Sim) ShardSlices(k int) []Slice {
	if !s.opts.RecordSlices {
		panic("sim: ShardSlices requires Options.RecordSlices")
	}
	return s.shards[k].slices
}

// Tasks returns all tasks ever injected, in injection order. Live
// engine state: read-only for callers.
func (s *Sim) Tasks() []*JobState { return s.tasks }

// Stats summarize an engine run.
type Stats struct {
	// TotalFlow is Σ_j (C_j − r_j) over completed tasks.
	TotalFlow float64
	// WeightedFlow is Σ_j w_j (C_j − r_j).
	WeightedFlow float64
	// FracFlow is the paper's fractional flow time: the time integral
	// of Σ weight·(remaining leaf work fraction).
	FracFlow float64
	// ActiveIntegral is ∫ (number of active tasks) dt; equals
	// TotalFlow when every task completes (cross-check invariant).
	ActiveIntegral float64
	MaxFlow        float64
	Makespan       float64
	Events         int64
	Completed      int
}

// totals sums the per-shard running totals in shard-index order, so
// the floating-point result is independent of execution mode.
func (s *Sim) totals() (fracFlow, activeIntegral float64, events int64) {
	for k := range s.shards {
		sh := &s.shards[k]
		fracFlow += sh.fracIntegral
		activeIntegral += sh.activeIntegral
		events += sh.eventCount
	}
	return fracFlow, activeIntegral, events
}

// Stats computes summary statistics of the run so far. In
// bounded-retention streaming mode the completion-dependent fields
// come from the online accumulator (there is no task list to walk).
func (s *Sim) Stats() Stats {
	var st Stats
	st.FracFlow, st.ActiveIntegral, st.Events = s.totals()
	if s.recycling() {
		a := &s.stream.acc
		st.Completed = a.Completed
		st.TotalFlow = a.TotalFlow
		st.WeightedFlow = a.WeightedFlow
		st.MaxFlow = a.MaxFlow
		st.Makespan = a.Makespan
		return st
	}
	for _, js := range s.tasks {
		if js == nil || !js.Completed {
			continue
		}
		st.Completed++
		f := js.Completion - js.Release
		st.TotalFlow += f
		st.WeightedFlow += js.Weight * f
		if f > st.MaxFlow {
			st.MaxFlow = f
		}
		if js.Completion > st.Makespan {
			st.Makespan = js.Completion
		}
	}
	return st
}

// NodeUtilization returns per-node (busyTime, workDone) up to the
// node's shard time.
func (s *Sim) NodeUtilization(v tree.NodeID) (busy, work float64) {
	// Report includes the running task's progress up to now.
	n := &s.nodes[v]
	busy, work = n.busyTime, n.workDone
	if n.running != nil && n.speed > 0 {
		dt := s.shards[n.shard].now - n.lastSync
		done := math.Min(dt*n.speed, n.running.Remaining)
		busy += dt
		work += done
	}
	return busy, work
}
