package sim

import (
	"fmt"
	"math"
	"sort"

	"treesched/internal/faults"
	"treesched/internal/tree"
)

// timeEps absorbs floating-point slack in event times and remaining
// work. Processing times in experiments are O(1)..O(10^3), so 1e-9 is
// far below any meaningful quantity.
const timeEps = 1e-9

// JobState is the engine's record of one schedulable task (a job, or
// one packet of a job in packetized mode) travelling down its path.
type JobState struct {
	// ID of the originating job; packets share their parent's ID.
	ID int
	// seq is the unique engine-wide task sequence number used as the
	// final deterministic tie-breaker.
	seq int64

	Release float64
	// RouterSize is the processing requirement on every router
	// (p_j; the packet fraction of it in packetized mode).
	RouterSize float64
	// LeafWork is the processing requirement on the assigned leaf.
	LeafWork float64
	// FracWeight is this task's contribution to a fully-remaining
	// job's fractional flow (1 for whole jobs, 1/k for k packets).
	FracWeight float64
	// Weight is the job's importance for weighted flow time (>= 1).
	Weight float64

	Leaf tree.NodeID
	Path []tree.NodeID
	// Hop indexes Path at the node the task currently occupies;
	// len(Path) once complete.
	Hop int

	// PrioRouter/PrioLeaf are the sizes used for SJF priority: the
	// originating job's full p_j and p_{j,v}. For whole jobs they
	// equal RouterSize/LeafWork; packets inherit the parent's values
	// so SJF still orders by original job size, as the paper requires.
	PrioRouter float64
	PrioLeaf   float64

	// OrigOnCur is the task's full processing requirement on its
	// current node; Remaining is what is left of it. PrioOnCur is the
	// priority size on the current node.
	OrigOnCur float64
	PrioOnCur float64
	Remaining float64
	// NodeArrive is when the task became available on the current node.
	NodeArrive float64

	Completed  bool
	Completion float64
	// HopArrive/HopComplete record per-hop timings when the engine is
	// instrumented; otherwise nil.
	HopArrive   []float64
	HopComplete []float64

	// leafSizes references the arrival's per-leaf sizes (nil for
	// identical endpoints); recovery re-dispatch needs it to recompute
	// LeafWork on the new leaf.
	leafSizes []float64

	// key1/key2 cache the node policy's priority key.
	key1, key2 float64
	// qidx is the task's position in its node's queue (-1 if absent).
	qidx int
	// leafIdx is the task's position in the leaf's assigned list.
	leafIdx int
	// pendIdx[i] is the position in pendingOn for Path[i] (instrumented).
	pendIdx []int
}

// CurrentNode returns the node the task occupies, or tree.None when done.
func (js *JobState) CurrentNode() tree.NodeID {
	if js.Hop >= len(js.Path) {
		return tree.None
	}
	return js.Path[js.Hop]
}

type nodeState struct {
	id tree.NodeID
	// speed is the node's current effective speed; baseSpeed is the
	// tree's speed, which fault boundaries scale by their factor.
	speed     float64
	baseSpeed float64
	leaf      bool

	avail   taskQueue
	running *JobState
	// finishSeq invalidates scheduled finish events; only the event
	// carrying the current value is live.
	finishSeq uint64
	lastSync  float64

	busyTime float64
	workDone float64
	// fracContrib is this leaf's current drain rate of the global
	// fractional-flow sum (0 for routers and idle leaves).
	fracContrib float64
}

type finishEvent struct {
	at   float64
	node tree.NodeID
	seq  uint64
}

// Options configures the engine.
type Options struct {
	// Policy is the node scheduling policy (default SJF).
	Policy Policy
	// Instrument enables per-hop timing records and per-router
	// pending sets (needed by the Lemma validators and the potential
	// function; costs memory and a little time).
	Instrument bool
	// UseScanQueue selects the O(n) reference queue (experiment B8).
	UseScanQueue bool
	// SelfCheck enables internal invariant assertions (tests).
	SelfCheck bool
	// Observer, when set, is called after every state change (task
	// injection and every node completion). Used by the Lemma
	// validators to check invariants at event granularity.
	Observer func(s *Sim)
	// RecordSlices keeps the exact processing slices (node, job,
	// interval) including preemption boundaries; costs memory
	// proportional to the number of preemptions. Not supported in
	// processor-sharing mode (work is fluid there).
	RecordSlices bool
	// Faults, when set, applies the compiled fault schedule: node
	// speeds become piecewise-constant (base speed × factor), and
	// permanent leaf losses trigger the Recovery policy. The schedule
	// must be compiled against the engine's tree.
	Faults *faults.Schedule
	// Recovery selects what happens to tasks assigned to a permanently
	// lost leaf (RecoverHold when unset).
	Recovery RecoveryPolicy
}

// RecoveryPolicy selects the permanent-leaf-loss behavior.
type RecoveryPolicy int

const (
	// RecoverHold leaves tasks assigned to a lost leaf in place: they
	// stall (their waiting keeps accruing in ActiveIntegral) and Drain
	// reports them in a StuckError.
	RecoverHold RecoveryPolicy = iota
	// RecoverRedispatch re-dispatches each incomplete task of a lost
	// leaf from the root toward the surviving leaf with the least
	// remaining assigned volume, recording a Migration per task. Work
	// already done on the abandoned journey is lost.
	RecoverRedispatch
)

// Migration records one recovery re-dispatch of a task off a
// permanently lost leaf. OldPath and OldLeafWork describe the
// abandoned journey (the auditor checks partial work against them).
type Migration struct {
	Job         int
	Seq         int64
	At          float64
	From, To    tree.NodeID
	OldPath     []tree.NodeID
	OldLeafWork float64
}

// Slice is one maximal interval during which a node processed a task.
type Slice struct {
	Node     tree.NodeID
	Job      int
	Seq      int64
	From, To float64
}

// Sim is the simulation engine. Create with New, feed arrivals with
// Inject (after AdvanceTo their release time), and finish with Drain.
// A drained engine can be returned to an empty time-zero state with
// Reset, which retains all allocated capacity so that repeated
// replicate runs approach zero allocations in steady state.
type Sim struct {
	tree *tree.Tree
	opts Options

	now   float64
	nodes []nodeState
	// events is a min-heap of scheduled node-finish events with lazy
	// invalidation via nodeState.finishSeq.
	events []finishEvent

	tasks   []*JobState
	nextSeq int64

	// free holds JobStates recycled by Reset; block is the tail of the
	// current arena chunk fresh tasks are carved from. Together they
	// keep the per-arrival allocation off the steady-state hot path.
	free  []*JobState
	block []JobState

	// query is the read-only view handed out by Query (one per engine
	// so the accessor does not allocate).
	query Query
	// scratchArrival is reused by ReplayOn: passing a stack Arrival
	// through the Assigner interface makes it escape, which would cost
	// one heap allocation per replay on the zero-alloc warm path.
	scratchArrival Arrival
	// scratchIDs is reused by Query.AvailCountLarger for packet
	// de-duplication.
	scratchIDs []int

	// assigned[leafIndex] lists incomplete tasks assigned to the leaf
	// (the paper's Q_v(t) for leaves).
	assigned [][]*JobState
	// pendingOn[node] lists tasks routed through node and not yet
	// complete on it (the paper's Q_v(t)); only kept when Instrument.
	pendingOn [][]*JobState

	activeTasks int
	// ps marks processor-sharing mode (Options.Policy == PS{}).
	ps bool
	// faultIdx is the cursor into opts.Faults.Boundaries(); boundaries
	// before it have been applied.
	faultIdx int
	// migrations records recovery re-dispatches in time order.
	migrations []Migration
	// slices holds the exact processing record when RecordSlices;
	// slices below mergeFloor predate the latest migration and must
	// not be extended by sync's merge.
	slices     []Slice
	mergeFloor int
	// Running totals.
	fracSum        float64 // Σ weight * remainingLeafFraction over active tasks
	fracRate       float64 // d(fracSum)/dt from leaves currently processing
	fracIntegral   float64
	activeIntegral float64 // ∫ activeTasks dt (integral-flow cross-check)
	eventCount     int64
}

// New creates an engine for the given tree.
func New(t *tree.Tree, opts Options) *Sim {
	s := &Sim{tree: t}
	s.nodes = make([]nodeState, t.NumNodes())
	for i := range s.nodes {
		n := &s.nodes[i]
		n.id = tree.NodeID(i)
		n.baseSpeed = t.Speed(n.id)
		n.speed = n.baseSpeed
		n.leaf = t.IsLeaf(n.id)
	}
	s.assigned = make([][]*JobState, len(t.Leaves()))
	s.applyOptions(opts)
	return s
}

// applyOptions installs opts, building or clearing the per-node queues
// as needed. The queue implementation depends on the options (scan for
// PS and UseScanQueue, heap otherwise), so a Reset that changes either
// rebuilds the queues; otherwise they are emptied in place.
func (s *Sim) applyOptions(opts Options) {
	if opts.Policy == nil {
		opts.Policy = SJF{}
	}
	if opts.Faults != nil && opts.Faults.NumNodes() != len(s.nodes) {
		panic(fmt.Sprintf("sim: fault schedule compiled for %d nodes, tree has %d",
			opts.Faults.NumNodes(), len(s.nodes)))
	}
	_, ps := opts.Policy.(PS)
	// Processor sharing recomputes the next completion by scanning,
	// so the heap's cached keys would be stale.
	scan := opts.UseScanQueue || ps
	prevScan := s.opts.UseScanQueue || s.ps
	s.opts = opts
	s.ps = ps
	for i := range s.nodes {
		n := &s.nodes[i]
		// A previous run's fault boundaries may have left a scaled
		// speed behind; every run starts at base speed (the schedule's
		// own t=0 boundaries re-apply active faults).
		n.speed = n.baseSpeed
		switch {
		case n.avail == nil || scan != prevScan:
			if scan {
				n.avail = newScanQueue()
			} else {
				n.avail = newHeapQueue()
			}
		default:
			n.avail.clear()
		}
	}
	if opts.Instrument && s.pendingOn == nil {
		s.pendingOn = make([][]*JobState, len(s.nodes))
	}
}

// Reset returns the engine to an empty state at time zero while
// retaining every allocated buffer (event heap, node queues, task
// arena, instrumentation slices), so replaying traces on one engine
// approaches zero allocations per run. opts may differ arbitrarily
// from the previous run's options — changing Policy, Instrument,
// UseScanQueue, etc. is supported and the engine reconfigures itself.
//
// Reset recycles every JobState from the previous run: pointers
// previously obtained from Tasks(), Inject or a Result that references
// this engine become invalid. Extract any metrics you need before
// resetting.
func (s *Sim) Reset(opts Options) {
	for _, js := range s.tasks {
		s.free = append(s.free, js)
	}
	s.tasks = s.tasks[:0]
	s.nextSeq = 0
	s.now = 0
	s.events = s.events[:0]
	for i := range s.nodes {
		n := &s.nodes[i]
		n.running = nil
		n.finishSeq = 0
		n.lastSync = 0
		n.busyTime = 0
		n.workDone = 0
		n.fracContrib = 0
	}
	for i := range s.assigned {
		s.assigned[i] = s.assigned[i][:0]
	}
	for i := range s.pendingOn {
		s.pendingOn[i] = s.pendingOn[i][:0]
	}
	s.activeTasks = 0
	s.slices = s.slices[:0]
	s.mergeFloor = 0
	s.fracSum, s.fracRate, s.fracIntegral, s.activeIntegral = 0, 0, 0, 0
	s.eventCount = 0
	s.faultIdx = 0
	s.migrations = s.migrations[:0]
	s.applyOptions(opts)
}

// taskBlockSize is how many JobStates one arena chunk holds; one chunk
// allocation amortizes over this many injections.
const taskBlockSize = 512

// newTask returns a zeroed JobState from the freelist or the arena.
// Instrumentation buffers of recycled tasks are kept (emptied) when
// the engine is instrumented so inject can refill them in place; in
// uninstrumented mode they are dropped to nil, which downstream code
// (e.g. trace rendering) uses to detect the absence of hop timings.
func (s *Sim) newTask() *JobState {
	if n := len(s.free); n > 0 {
		js := s.free[n-1]
		s.free = s.free[:n-1]
		ha, hc, pi := js.HopArrive, js.HopComplete, js.pendIdx
		*js = JobState{}
		if s.opts.Instrument {
			js.HopArrive = ha[:0]
			js.HopComplete = hc[:0]
			js.pendIdx = pi[:0]
		}
		return js
	}
	if len(s.block) == 0 {
		s.block = make([]JobState, taskBlockSize)
	}
	js := &s.block[0]
	s.block = s.block[1:]
	return js
}

// growFloats resizes sl to n zeroed entries, reusing its capacity.
func growFloats(sl []float64, n int) []float64 {
	if cap(sl) < n {
		return make([]float64, n)
	}
	sl = sl[:n]
	for i := range sl {
		sl[i] = 0
	}
	return sl
}

// growInts resizes sl to n zeroed entries, reusing its capacity.
func growInts(sl []int, n int) []int {
	if cap(sl) < n {
		return make([]int, n)
	}
	sl = sl[:n]
	for i := range sl {
		sl[i] = 0
	}
	return sl
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Tree returns the topology being simulated.
func (s *Sim) Tree() *tree.Tree { return s.tree }

// Inject dispatches a job (or packet task) to the given leaf at the
// current simulation time. The caller must have advanced the engine to
// the task's release time first. The returned JobState is live engine
// state; callers may read it but must not mutate it.
func (s *Sim) Inject(a *Arrival, leaf tree.NodeID) (*JobState, error) {
	if s.tree.LeafIndex(leaf) < 0 {
		return nil, fmt.Errorf("sim: assignment to non-leaf node %d", leaf)
	}
	if a.Release > s.now+timeEps {
		return nil, fmt.Errorf("sim: injecting job %d at t=%v before its release %v", a.ID, s.now, a.Release)
	}
	// Fault boundaries due at or before now take effect first, so a
	// job injected at exactly a boundary instant sees the post-fault
	// speeds (AdvanceTo already applies earlier ones).
	if s.opts.Faults != nil {
		s.applyDueBoundaries()
	}
	w := a.Weight
	if w <= 0 {
		w = 1
	}
	js := s.newTask()
	js.ID = a.ID
	js.seq = s.nextSeq
	js.Release = a.Release
	js.RouterSize = a.Size
	js.LeafWork = a.LeafSize(s.tree.LeafIndex(leaf))
	js.FracWeight = 1
	js.Weight = w
	js.Leaf = leaf
	js.leafSizes = a.LeafSizes
	s.nextSeq++
	return js, s.inject(js, a.Origin)
}

func (s *Sim) inject(js *JobState, origin tree.NodeID) error {
	if js.Weight <= 0 {
		js.Weight = 1
	}
	// Under redispatch recovery a fault-oblivious assigner may still
	// target an already-dead leaf; the dispatcher redirects the arrival
	// to a survivor (no Migration is recorded — the task never started
	// its original journey).
	if s.opts.Faults != nil && s.opts.Recovery == RecoverRedispatch {
		if at, dead := s.opts.Faults.DeathTime(js.Leaf); dead && at <= s.now {
			if to := s.pickSurvivor(js); to != tree.None {
				li := s.tree.LeafIndex(to)
				js.Leaf = to
				if js.leafSizes != nil {
					js.LeafWork = js.leafSizes[li] * js.FracWeight
					js.PrioLeaf = js.leafSizes[li]
				}
			}
		}
	}
	full := s.tree.Path(js.Leaf)
	if origin != 0 {
		// Arbitrary-origin extension: process only strictly below the
		// origin; the origin must be a path node or the leaf's parent.
		cut := -1
		for i, v := range full {
			if v == origin {
				cut = i
				break
			}
		}
		if cut < 0 {
			return fmt.Errorf("sim: job %d origin %d is not an ancestor of leaf %d", js.ID, origin, js.Leaf)
		}
		full = full[cut+1:]
		if len(full) == 0 {
			// Origin is the leaf itself: machine work still required.
			full = s.tree.Path(js.Leaf)[len(s.tree.Path(js.Leaf))-1:]
		}
	}
	js.Path = full
	js.Hop = 0
	if js.PrioRouter == 0 {
		js.PrioRouter = js.RouterSize
	}
	if js.PrioLeaf == 0 {
		js.PrioLeaf = js.LeafWork
	}
	first := js.Path[0]
	js.OrigOnCur = s.sizeOn(js, 0)
	js.PrioOnCur = s.prioOn(js, 0)
	js.Remaining = js.OrigOnCur
	js.NodeArrive = s.now
	if s.opts.Instrument {
		js.HopArrive = growFloats(js.HopArrive, len(js.Path))
		js.HopComplete = growFloats(js.HopComplete, len(js.Path))
		js.HopArrive[0] = s.now
		js.pendIdx = growInts(js.pendIdx, len(js.Path))
		for i, v := range js.Path {
			js.pendIdx[i] = len(s.pendingOn[v])
			s.pendingOn[v] = append(s.pendingOn[v], js)
		}
	}
	li := s.tree.LeafIndex(js.Leaf)
	js.leafIdx = len(s.assigned[li])
	s.assigned[li] = append(s.assigned[li], js)

	s.tasks = append(s.tasks, js)
	s.activeTasks++
	s.fracSum += js.FracWeight

	s.setKey(js)
	// Sync before pushing: nodes sync lazily, and under processor
	// sharing the elapsed work must be distributed among the tasks
	// that were present, not the newcomer.
	s.sync(first)
	s.nodes[first].avail.push(js)
	s.reschedule(first)
	if s.opts.Observer != nil {
		s.opts.Observer(s)
	}
	return nil
}

// sizeOn returns the task's full processing requirement on Path[hop].
func (s *Sim) sizeOn(js *JobState, hop int) float64 {
	if hop == len(js.Path)-1 {
		return js.LeafWork
	}
	return js.RouterSize
}

// prioOn returns the priority size (original job size) on Path[hop].
func (s *Sim) prioOn(js *JobState, hop int) float64 {
	if hop == len(js.Path)-1 {
		return js.PrioLeaf
	}
	return js.PrioRouter
}

func (s *Sim) setKey(js *JobState) {
	js.key1, js.key2 = s.opts.Policy.Key(js)
}

// sync brings the node's running task's Remaining and the node's
// accounting up to the current time. Under processor sharing the
// elapsed work is split equally across all available tasks.
func (s *Sim) sync(v tree.NodeID) {
	n := &s.nodes[v]
	from := n.lastSync
	dt := s.now - n.lastSync
	n.lastSync = s.now
	if dt <= 0 {
		return
	}
	if n.speed <= 0 {
		// Outage: the node is stalled, performing no work and counting
		// no busy time; no slice is recorded.
		return
	}
	if s.ps {
		k := n.avail.len()
		if k == 0 {
			return
		}
		share := dt * n.speed / float64(k)
		var done float64
		for _, js := range n.avail.tasks() {
			d := share
			if d > js.Remaining {
				d = js.Remaining
			}
			js.Remaining -= d
			done += d
		}
		n.busyTime += dt
		n.workDone += done
		return
	}
	if n.running == nil {
		return
	}
	done := dt * n.speed
	if done > n.running.Remaining {
		done = n.running.Remaining
	}
	n.running.Remaining -= done
	n.busyTime += dt
	n.workDone += done
	if s.opts.RecordSlices {
		// Merge with the previous slice when the same task continued —
		// but never across a migration (mergeFloor): a re-dispatched
		// task restarting on the same node is a new journey and the
		// auditor checks the two legs separately.
		if k := len(s.slices) - 1; k >= 0 && k >= s.mergeFloor && s.slices[k].Node == v &&
			s.slices[k].Seq == n.running.seq && s.slices[k].To == from {
			s.slices[k].To = s.now
		} else {
			s.slices = append(s.slices, Slice{Node: v, Job: n.running.ID, Seq: n.running.seq, From: from, To: s.now})
		}
	}
}

// reschedule re-evaluates which task node v should run, scheduling or
// cancelling its finish event as needed. Callers must have already
// advanced time; reschedule syncs the node itself.
func (s *Sim) reschedule(v tree.NodeID) { s.rescheduleWith(v, false) }

// rescheduleForce reissues the finish event even when the running
// task is unchanged — needed after a fault boundary changes the
// node's speed underneath it, which moves the deadline.
func (s *Sim) rescheduleForce(v tree.NodeID) { s.rescheduleWith(v, true) }

func (s *Sim) rescheduleWith(v tree.NodeID, force bool) {
	if s.ps {
		s.reschedulePS(v)
		return
	}
	n := &s.nodes[v]
	s.sync(v)
	if n.running != nil {
		// The running task's key may depend on Remaining (SRPT).
		s.setKey(n.running)
		n.avail.fix(n.running)
	}
	best := n.avail.min()
	if best == n.running && !force {
		return
	}
	n.running = best
	n.finishSeq++
	if n.leaf {
		s.fracRate -= n.fracContrib
		n.fracContrib = 0
	}
	if best == nil {
		return
	}
	if n.leaf {
		n.fracContrib = best.FracWeight * n.speed / best.OrigOnCur
		s.fracRate += n.fracContrib
	}
	if n.speed <= 0 {
		// Outage: the task stays selected but cannot finish; the next
		// fault boundary restores the speed and reschedules.
		return
	}
	s.events = append(s.events, finishEvent{
		at:   s.now + best.Remaining/n.speed,
		node: v,
		seq:  n.finishSeq,
	})
	s.upEvent(len(s.events) - 1)
}

// reschedulePS is the processor-sharing variant: all available tasks
// progress at rate speed/k, so the next completion is the minimum
// remaining task and its finish time scales with the share count.
func (s *Sim) reschedulePS(v tree.NodeID) {
	n := &s.nodes[v]
	s.sync(v)
	var best *JobState
	for _, js := range n.avail.tasks() {
		if best == nil ||
			js.Remaining < best.Remaining ||
			(js.Remaining == best.Remaining && (js.ID < best.ID || (js.ID == best.ID && js.seq < best.seq))) {
			best = js
		}
	}
	// Any change to the share count moves every deadline, so always
	// reissue the event.
	n.running = best
	n.finishSeq++
	if n.leaf {
		s.fracRate -= n.fracContrib
		n.fracContrib = 0
	}
	if best == nil {
		return
	}
	k := float64(n.avail.len())
	if n.leaf {
		var contrib float64
		for _, js := range n.avail.tasks() {
			contrib += js.FracWeight * (n.speed / k) / js.OrigOnCur
		}
		n.fracContrib = contrib
		s.fracRate += contrib
	}
	if n.speed <= 0 {
		return // outage: no completion until a boundary restores speed
	}
	s.events = append(s.events, finishEvent{
		at:   s.now + best.Remaining*k/n.speed,
		node: v,
		seq:  n.finishSeq,
	})
	s.upEvent(len(s.events) - 1)
}

// --- event heap (min by time, then node for determinism) ---

func (s *Sim) eventLess(i, j int) bool {
	if s.events[i].at != s.events[j].at {
		return s.events[i].at < s.events[j].at
	}
	return s.events[i].node < s.events[j].node
}

func (s *Sim) upEvent(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.eventLess(i, p) {
			break
		}
		s.events[i], s.events[p] = s.events[p], s.events[i]
		i = p
	}
}

func (s *Sim) downEvent(i int) {
	n := len(s.events)
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small := l
		if r := l + 1; r < n && s.eventLess(r, l) {
			small = r
		}
		if !s.eventLess(small, i) {
			break
		}
		s.events[i], s.events[small] = s.events[small], s.events[i]
		i = small
	}
}

func (s *Sim) popEvent() finishEvent {
	top := s.events[0]
	n := len(s.events) - 1
	s.events[0] = s.events[n]
	s.events = s.events[:n]
	if n > 0 {
		s.downEvent(0)
	}
	return top
}

// nextEvent returns the earliest live finish event without removing
// it, discarding stale entries.
func (s *Sim) nextEvent() (finishEvent, bool) {
	for len(s.events) > 0 {
		top := s.events[0]
		if s.nodes[top.node].finishSeq == top.seq {
			return top, true
		}
		s.popEvent()
	}
	return finishEvent{}, false
}

// advanceClock moves time forward with no events in between,
// accumulating the flow-time integrals.
func (s *Sim) advanceClock(to float64) {
	dt := to - s.now
	if dt <= 0 {
		return
	}
	s.activeIntegral += float64(s.activeTasks) * dt
	s.fracIntegral += s.fracSum*dt - 0.5*s.fracRate*dt*dt
	s.fracSum -= s.fracRate * dt
	if s.fracSum < 0 {
		s.fracSum = 0 // floating-point guard
	}
	s.now = to
}

// AdvanceTo processes all events (and fault boundaries) up to and
// including the target time and leaves the clock there. Violated
// engine invariants panic with *InternalError; Drain, ReplayOn and
// RunPacketized recover those into error returns.
func (s *Sim) AdvanceTo(target float64) {
	if target < s.now-timeEps {
		panic(fmt.Sprintf("sim: AdvanceTo(%v) before now=%v", target, s.now))
	}
	for {
		ev, evOK := s.nextEvent()
		if s.opts.Faults != nil {
			// Boundaries interleave with finish events; finish events
			// win ties so a task completing exactly at an outage start
			// still completes.
			if b, bOK := s.peekBoundary(); bOK && b.At <= target && (!evOK || b.At < ev.at || ev.at > target) {
				s.advanceClock(b.At)
				s.applyBoundary(b)
				continue
			}
		}
		if !evOK || ev.at > target {
			break
		}
		s.popEvent()
		s.advanceClock(ev.at)
		s.handleFinish(ev.node)
	}
	s.advanceClock(target)
}

// Drain runs the engine until no tasks remain active. It returns a
// *StuckError when tasks can no longer progress (a permanently lost
// leaf under RecoverHold), a *InternalError when an engine invariant
// or — with Instrument and RecordSlices set — the schedule audit
// fails, and nil on a clean drain.
func (s *Sim) Drain() (err error) {
	defer recoverInternal(&err)
	for {
		ev, evOK := s.nextEvent()
		if s.opts.Faults != nil {
			if b, bOK := s.peekBoundary(); bOK && (!evOK || b.At < ev.at) {
				s.advanceClock(b.At)
				s.applyBoundary(b)
				continue
			}
		}
		if !evOK {
			break
		}
		s.popEvent()
		s.advanceClock(ev.at)
		s.handleFinish(ev.node)
	}
	if s.activeTasks != 0 {
		dumps, total := dumpActive(s)
		return &StuckError{Now: s.now, Active: total, Tasks: dumps}
	}
	if s.opts.SelfCheck {
		if err := s.CheckInvariants(); err != nil {
			return err
		}
	}
	// With full instrumentation on, every drained run audits its own
	// recorded schedule, so test suites double as conformance tests.
	if s.opts.Instrument && s.opts.RecordSlices && !s.ps {
		if rep := s.Audit(); !rep.OK() {
			return &AuditError{Report: rep}
		}
	}
	return nil
}

// peekBoundary returns the next unapplied fault boundary.
func (s *Sim) peekBoundary() (faults.Boundary, bool) {
	bs := s.opts.Faults.Boundaries()
	if s.faultIdx >= len(bs) {
		return faults.Boundary{}, false
	}
	return bs[s.faultIdx], true
}

// applyDueBoundaries applies boundaries at or before the current time
// (Inject's guard; AdvanceTo handles them during time travel).
func (s *Sim) applyDueBoundaries() {
	for {
		b, ok := s.peekBoundary()
		if !ok || b.At > s.now {
			return
		}
		s.applyBoundary(b)
	}
}

// applyBoundary installs node b.Node's new fault-scaled speed; the
// clock must already stand at b.At. The node is synced under the old
// speed first, then the finish event is reissued since its deadline
// scales with the speed. A permanent leaf loss triggers the recovery
// policy.
func (s *Sim) applyBoundary(b faults.Boundary) {
	s.faultIdx++
	n := &s.nodes[b.Node]
	s.sync(b.Node)
	n.speed = n.baseSpeed * s.opts.Faults.FactorAt(b.Node, b.At)
	if n.leaf && s.opts.Recovery == RecoverRedispatch {
		if at, dead := s.opts.Faults.DeathTime(b.Node); dead && at == b.At {
			s.redispatchLeaf(b.Node)
		}
	}
	s.rescheduleForce(b.Node)
}

// redispatchLeaf re-dispatches every incomplete task assigned to the
// lost leaf, in injection order, onto surviving leaves.
func (s *Sim) redispatchLeaf(dead tree.NodeID) {
	li := s.tree.LeafIndex(dead)
	if len(s.assigned[li]) == 0 {
		return
	}
	// Snapshot: migration mutates the assigned list. Sort by sequence
	// so tasks migrate in injection order regardless of the list's
	// swap-removal history.
	batch := append([]*JobState(nil), s.assigned[li]...)
	sort.Slice(batch, func(i, j int) bool { return batch[i].seq < batch[j].seq })
	for _, js := range batch {
		to := s.pickSurvivor(js)
		if to == tree.None {
			// No surviving leaf: the task stays held; Drain reports it.
			continue
		}
		s.migrate(js, to)
	}
}

// pickSurvivor chooses the surviving leaf with the least remaining
// assigned leaf volume including the migrating task's own requirement
// there — deterministic (first minimum in leaf order wins) and
// load-aware in the spirit of the greedy rules.
func (s *Sim) pickSurvivor(js *JobState) tree.NodeID {
	best := tree.None
	var bestCost float64
	for i, leaf := range s.tree.Leaves() {
		if at, dead := s.opts.Faults.DeathTime(leaf); dead && at <= s.now {
			continue
		}
		var vol float64
		for _, other := range s.assigned[i] {
			if other.Hop == len(other.Path)-1 {
				vol += other.Remaining
			} else {
				vol += other.LeafWork
			}
		}
		cost := vol + js.workOnLeaf(i)
		if best == tree.None || cost < bestCost {
			best, bestCost = leaf, cost
		}
	}
	return best
}

// workOnLeaf returns the task's leaf processing requirement were it
// assigned to leaf index li.
func (js *JobState) workOnLeaf(li int) float64 {
	if js.leafSizes == nil {
		return js.LeafWork // identical endpoints: the same everywhere
	}
	// FracWeight scales packet pieces (1 for whole jobs).
	return js.leafSizes[li] * js.FracWeight
}

// migrate re-dispatches one task from its current position to leaf
// `to`: it restarts at the root of the new leaf's path with full
// remaining work there (partial work on the abandoned journey is
// lost), and the move is recorded as a Migration.
func (s *Sim) migrate(js *JobState, to tree.NodeID) {
	cur := js.CurrentNode()
	n := &s.nodes[cur]
	s.sync(cur)
	// The fractional-flow sum returns to a full remaining fraction
	// once the task restarts.
	frac := 1.0
	if js.Hop == len(js.Path)-1 {
		frac = js.Remaining / js.OrigOnCur
	}
	s.fracSum += js.FracWeight * (1 - frac)
	n.avail.remove(js)
	if n.running == js {
		n.running = nil
		n.finishSeq++
		if n.leaf {
			s.fracRate -= n.fracContrib
			n.fracContrib = 0
		}
	}
	if s.opts.Instrument {
		for h := js.Hop; h < len(js.Path); h++ {
			s.pendRemove(js.Path[h], js)
		}
	}
	s.assignedRemove(s.tree.LeafIndex(js.Leaf), js)
	s.mergeFloor = len(s.slices)
	s.migrations = append(s.migrations, Migration{
		Job: js.ID, Seq: js.seq, At: s.now, From: js.Leaf, To: to,
		OldPath: js.Path, OldLeafWork: js.LeafWork,
	})

	li := s.tree.LeafIndex(to)
	js.Leaf = to
	if js.leafSizes != nil {
		js.LeafWork = js.leafSizes[li] * js.FracWeight
		js.PrioLeaf = js.leafSizes[li]
	}
	js.Path = s.tree.Path(to)
	js.Hop = 0
	js.OrigOnCur = s.sizeOn(js, 0)
	js.PrioOnCur = s.prioOn(js, 0)
	js.Remaining = js.OrigOnCur
	js.NodeArrive = s.now
	if s.opts.Instrument {
		// Hop records restart for the new journey; the abandoned
		// journey survives in the slice log and the Migration record.
		js.HopArrive = growFloats(js.HopArrive, len(js.Path))
		js.HopComplete = growFloats(js.HopComplete, len(js.Path))
		js.HopArrive[0] = s.now
		js.pendIdx = growInts(js.pendIdx, len(js.Path))
		for i, v := range js.Path {
			js.pendIdx[i] = len(s.pendingOn[v])
			s.pendingOn[v] = append(s.pendingOn[v], js)
		}
	}
	js.leafIdx = len(s.assigned[li])
	s.assigned[li] = append(s.assigned[li], js)
	s.setKey(js)
	first := js.Path[0]
	s.sync(first)
	s.nodes[first].avail.push(js)
	s.reschedule(first)
	s.rescheduleForce(cur)
}

// Migrations returns the recovery re-dispatches recorded so far, in
// time order. Live engine state: read-only for callers.
func (s *Sim) Migrations() []Migration { return s.migrations }

// handleFinish completes the running task on node v.
func (s *Sim) handleFinish(v tree.NodeID) {
	n := &s.nodes[v]
	js := n.running
	if js == nil {
		panic(s.internalErr("handleFinish", "finish event on idle node %d", v))
	}
	s.sync(v)
	if s.opts.SelfCheck && js.Remaining > 1e-6 {
		panic(s.internalErr("handleFinish", "task %d finished on node %d with %v remaining", js.ID, v, js.Remaining))
	}
	js.Remaining = 0
	s.eventCount++

	n.avail.remove(js)
	n.running = nil
	n.finishSeq++
	if n.leaf {
		s.fracRate -= n.fracContrib
		n.fracContrib = 0
	}
	if s.opts.Instrument {
		js.HopComplete[js.Hop] = s.now
		s.pendRemove(v, js)
	}

	js.Hop++
	if js.Hop == len(js.Path) {
		// Completed on the leaf machine.
		js.Completed = true
		js.Completion = s.now
		s.activeTasks--
		li := s.tree.LeafIndex(js.Leaf)
		s.assignedRemove(li, js)
	} else {
		w := js.Path[js.Hop]
		js.OrigOnCur = s.sizeOn(js, js.Hop)
		js.PrioOnCur = s.prioOn(js, js.Hop)
		js.Remaining = js.OrigOnCur
		js.NodeArrive = s.now
		if s.opts.Instrument {
			js.HopArrive[js.Hop] = s.now
		}
		s.setKey(js)
		s.sync(w) // see Inject: distribute elapsed work before joining
		s.nodes[w].avail.push(js)
		s.reschedule(w)
	}
	s.reschedule(v)
	if s.opts.Observer != nil {
		s.opts.Observer(s)
	}
}

func (s *Sim) assignedRemove(li int, js *JobState) {
	lst := s.assigned[li]
	i, n := js.leafIdx, len(lst)-1
	lst[i] = lst[n]
	lst[i].leafIdx = i
	s.assigned[li] = lst[:n]
	js.leafIdx = -1
}

func (s *Sim) pendRemove(v tree.NodeID, js *JobState) {
	hop := -1
	for i, u := range js.Path {
		if u == v {
			hop = i
			break
		}
	}
	lst := s.pendingOn[v]
	i, n := js.pendIdx[hop], len(lst)-1
	lst[i] = lst[n]
	// Fix the moved task's back-pointer for this node.
	moved := lst[i]
	for mi, u := range moved.Path {
		if u == v {
			moved.pendIdx[mi] = i
			break
		}
	}
	s.pendingOn[v] = lst[:n]
	js.pendIdx[hop] = -1
}

// Active returns the number of incomplete tasks.
func (s *Sim) Active() int { return s.activeTasks }

// Slices returns the exact processing record (requires
// Options.RecordSlices). Slices are in the order work was performed;
// consecutive slices of one task on one node are merged.
func (s *Sim) Slices() []Slice {
	if !s.opts.RecordSlices {
		panic("sim: Slices requires Options.RecordSlices")
	}
	return s.slices
}

// Tasks returns all tasks ever injected, in injection order. Live
// engine state: read-only for callers.
func (s *Sim) Tasks() []*JobState { return s.tasks }

// Stats summarize an engine run.
type Stats struct {
	// TotalFlow is Σ_j (C_j − r_j) over completed tasks.
	TotalFlow float64
	// WeightedFlow is Σ_j w_j (C_j − r_j).
	WeightedFlow float64
	// FracFlow is the paper's fractional flow time: the time integral
	// of Σ weight·(remaining leaf work fraction).
	FracFlow float64
	// ActiveIntegral is ∫ (number of active tasks) dt; equals
	// TotalFlow when every task completes (cross-check invariant).
	ActiveIntegral float64
	MaxFlow        float64
	Makespan       float64
	Events         int64
	Completed      int
}

// Stats computes summary statistics of the run so far.
func (s *Sim) Stats() Stats {
	st := Stats{FracFlow: s.fracIntegral, ActiveIntegral: s.activeIntegral, Events: s.eventCount}
	for _, js := range s.tasks {
		if !js.Completed {
			continue
		}
		st.Completed++
		f := js.Completion - js.Release
		st.TotalFlow += f
		st.WeightedFlow += js.Weight * f
		if f > st.MaxFlow {
			st.MaxFlow = f
		}
		if js.Completion > st.Makespan {
			st.Makespan = js.Completion
		}
	}
	return st
}

// NodeUtilization returns per-node (busyTime, workDone) up to now.
func (s *Sim) NodeUtilization(v tree.NodeID) (busy, work float64) {
	// Report includes the running task's progress up to now.
	n := &s.nodes[v]
	busy, work = n.busyTime, n.workDone
	if n.running != nil && n.speed > 0 {
		dt := s.now - n.lastSync
		done := math.Min(dt*n.speed, n.running.Remaining)
		busy += dt
		work += done
	}
	return busy, work
}
