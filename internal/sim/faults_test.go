package sim

import (
	"errors"
	"strings"
	"testing"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// compile is a test helper: a compiled fault schedule or t.Fatal.
func compile(t *testing.T, tr *tree.Tree, events ...faults.Event) *faults.Schedule {
	t.Helper()
	fs, err := faults.Compile(tr, &faults.Plan{Events: events})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// Star(1) is root → relay → leaf, so a size-4 job occupies the relay
// over [0,4] and the leaf over [4,8].
func TestOutageDelaysCompletion(t *testing.T) {
	tr := tree.Star(1)
	leaf := tr.Leaves()[0]
	relay := tr.RootAdjacent()[0]
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 4}}}

	// Leaf outage [5,7): the leaf works [4,5), stalls two units, then
	// finishes the remaining 3 — completion 8+2 = 10.
	res, err := Run(tr, trace, fixedAssigner{leaf}, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
		Faults: compile(t, tr, faults.Event{Kind: faults.Outage, Node: leaf, Start: 5, End: 7}),
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Jobs[0].Completion, 10, 1e-9, "completion under leaf outage")

	// Relay outage [1,2): every downstream time shifts by one.
	res, err = Run(tr, trace, fixedAssigner{leaf}, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
		Faults: compile(t, tr, faults.Event{Kind: faults.Outage, Node: relay, Start: 1, End: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Jobs[0].Completion, 9, 1e-9, "completion under relay outage")
}

func TestBrownoutRemainingWork(t *testing.T) {
	tr := tree.Star(1)
	leaf := tr.Leaves()[0]
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 4}}}
	// The leaf starts at t=4; brownout ×0.25 over [4.5,6.5) delivers
	// 0.5+0.5 of the 4 units by 6.5, so completion is 6.5+3 = 9.5.
	res, err := Run(tr, trace, fixedAssigner{leaf}, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
		Faults: compile(t, tr, faults.Event{Kind: faults.Brownout, Node: leaf, Start: 4.5, End: 6.5, Factor: 0.25}),
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Jobs[0].Completion, 9.5, 1e-9, "completion under brownout")
}

// A task finishing exactly when an outage starts completes: finish
// events win boundary ties.
func TestFinishWinsBoundaryTie(t *testing.T) {
	tr := tree.Star(1)
	leaf := tr.Leaves()[0]
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 4}}}
	res, err := Run(tr, trace, fixedAssigner{leaf}, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
		Faults: compile(t, tr, faults.Event{Kind: faults.Outage, Node: leaf, Start: 8, End: 9}),
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Jobs[0].Completion, 8, 1e-9, "completion at boundary tie")
}

func TestHoldReportsStuckTasks(t *testing.T) {
	tr := tree.Star(2)
	leaf := tr.Leaves()[0]
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 4}}}
	// The leaf dies at t=2 while the task is still on the relay; under
	// RecoverHold it arrives at a dead leaf and stalls forever.
	_, err := Run(tr, trace, fixedAssigner{leaf}, Options{
		SelfCheck: true,
		Faults:    compile(t, tr, faults.Event{Kind: faults.LeafLoss, Node: leaf, Start: 2}),
	})
	var stuck *StuckError
	if !errors.As(err, &stuck) {
		t.Fatalf("Run error = %v, want *StuckError", err)
	}
	if stuck.Active != 1 || len(stuck.Tasks) != 1 {
		t.Fatalf("StuckError = %+v, want exactly one stuck task", stuck)
	}
	d := stuck.Tasks[0]
	if d.Job != 0 || d.Leaf != leaf {
		t.Fatalf("stuck dump = %+v, want job 0 on leaf %d", d, leaf)
	}
	if !strings.Contains(stuck.Error(), "task 0") {
		t.Fatalf("StuckError message %q does not name the task", stuck.Error())
	}
}

func TestRedispatchCompletesWithMigration(t *testing.T) {
	tr := tree.Star(2)
	leaf0, leaf1 := tr.Leaves()[0], tr.Leaves()[1]
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 4}}}
	res, err := Run(tr, trace, fixedAssigner{leaf0}, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
		Faults:   compile(t, tr, faults.Event{Kind: faults.LeafLoss, Node: leaf0, Start: 2}),
		Recovery: RecoverRedispatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The task restarts its path at the relay: 2 units of relay work
	// are lost, so relay [2,6], leaf1 [6,10].
	approx(t, res.Jobs[0].Completion, 10, 1e-9, "completion after re-dispatch")
	ms := res.Sim.Migrations()
	if len(ms) != 1 {
		t.Fatalf("migrations = %v, want exactly one", ms)
	}
	m := ms[0]
	if m.Job != 0 || m.From != leaf0 || m.To != leaf1 || m.At != 2 {
		t.Fatalf("migration = %+v, want job 0 leaf %d -> %d at t=2", m, leaf0, leaf1)
	}
	// Drain's auto-audit already verified the two-journey slice log;
	// double-check explicitly.
	if rep := res.Sim.Audit(); !rep.OK() {
		t.Fatalf("audit after re-dispatch: %s", rep.Summary())
	}
}

// Re-dispatch picks the surviving leaf with the least assigned volume.
func TestRedispatchPicksLeastLoadedSurvivor(t *testing.T) {
	tr := tree.Star(3)
	leaves := tr.Leaves()
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 3},  // → leaf1: still busy there at t=5
		{ID: 1, Release: 0, Size: 10}, // → leaf0: dies mid-flight
	}}
	asg := &listAssigner{leaves: []tree.NodeID{leaves[1], leaves[0]}}
	res, err := Run(tr, trace, asg, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
		Faults:   compile(t, tr, faults.Event{Kind: faults.LeafLoss, Node: leaves[0], Start: 5}),
		Recovery: RecoverRedispatch,
	})
	if err != nil {
		t.Fatal(err)
	}
	ms := res.Sim.Migrations()
	if len(ms) != 1 || ms[0].To != leaves[2] {
		t.Fatalf("migrations = %+v, want job 1 re-dispatched to idle leaf %d", ms, leaves[2])
	}
	if res.Stats.Completed != 2 {
		t.Fatalf("completed %d/2", res.Stats.Completed)
	}
}

// listAssigner hands out a fixed per-job leaf sequence.
type listAssigner struct {
	leaves []tree.NodeID
	i      int
}

func (l *listAssigner) Name() string { return "list" }
func (l *listAssigner) Assign(*Query, *Arrival) tree.NodeID {
	leaf := l.leaves[l.i%len(l.leaves)]
	l.i++
	return leaf
}

// faultedStressOpts is a moderately nasty shared configuration: a
// fat-tree, an overloaded Poisson trace, and a plan mixing all three
// fault kinds.
func faultedStressSetup(t *testing.T, seed uint64) (*tree.Tree, *workload.Trace, *faults.Schedule) {
	t.Helper()
	r := rng.New(seed)
	tr := tree.FatTree(2, 2, 2)
	trace, err := workload.Poisson(r, workload.GenConfig{
		N:        120,
		Size:     workload.UniformSize{Lo: 0.2, Hi: 4},
		Load:     0.8,
		Capacity: float64(len(tr.RootAdjacent())),
	})
	if err != nil {
		t.Fatal(err)
	}
	leaves := tr.Leaves()
	fs := compile(t, tr,
		faults.Event{Kind: faults.Outage, Node: leaves[1], Start: 3, End: 9},
		faults.Event{Kind: faults.Outage, Node: tr.RootAdjacent()[0], Start: 20, End: 24},
		faults.Event{Kind: faults.Brownout, Node: leaves[4], Start: 0, End: 40, Factor: 0.5},
		faults.Event{Kind: faults.LeafLoss, Node: leaves[6], Start: 15},
	)
	return tr, trace, fs
}

// The same faulty scenario must be bit-for-bit reproducible: identical
// slices, migrations and statistics across two fresh engines.
func TestFaultDeterminism(t *testing.T) {
	run := func() *Result {
		tr, trace, fs := faultedStressSetup(t, 99)
		res, err := Run(tr, trace, &rrAssigner{}, Options{
			SelfCheck: true, Instrument: true, RecordSlices: true,
			Faults: fs, Recovery: RecoverRedispatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Stats != b.Stats {
		t.Fatalf("stats differ:\n%+v\n%+v", a.Stats, b.Stats)
	}
	sa, sb := a.Sim.Slices(), b.Sim.Slices()
	if len(sa) != len(sb) {
		t.Fatalf("slice counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("slice %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	ma, mb := a.Sim.Migrations(), b.Sim.Migrations()
	if len(ma) != len(mb) {
		t.Fatalf("migration counts differ: %d vs %d", len(ma), len(mb))
	}
	for i := range ma {
		if ma[i].Seq != mb[i].Seq || ma[i].At != mb[i].At || ma[i].To != mb[i].To {
			t.Fatalf("migration %d differs: %+v vs %+v", i, ma[i], mb[i])
		}
	}
}

// Reset must clear all fault state: boundary cursor, migrations, and
// the fault-scaled node speeds.
func TestResetClearsFaultState(t *testing.T) {
	tr, trace, fs := faultedStressSetup(t, 7)
	s := New(tr, Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
		Faults: fs, Recovery: RecoverRedispatch,
	})
	if _, err := RunOn(s, trace, &rrAssigner{}); err != nil {
		t.Fatal(err)
	}
	faulted := s.Stats()

	// A fault-free run on the Reset engine must match a fresh engine.
	s.Reset(Options{SelfCheck: true})
	res, err := RunOn(s, trace, &rrAssigner{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Migrations()) != 0 {
		t.Fatal("Reset kept migration records")
	}
	fresh, err := Run(tr, trace, &rrAssigner{}, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats != fresh.Stats {
		t.Fatalf("reset engine diverged from fresh engine:\n%+v\n%+v", res.Stats, fresh.Stats)
	}
	if res.Stats == faulted {
		t.Fatal("fault-free rerun matched the faulted run; faults leaked through Reset")
	}

	// And re-running the faulted configuration reproduces it exactly.
	s.Reset(Options{
		SelfCheck: true, Instrument: true, RecordSlices: true,
		Faults: fs, Recovery: RecoverRedispatch,
	})
	if _, err := RunOn(s, trace, &rrAssigner{}); err != nil {
		t.Fatal(err)
	}
	if s.Stats() != faulted {
		t.Fatalf("faulted rerun diverged:\n%+v\n%+v", s.Stats(), faulted)
	}
}

// Injection at exactly a boundary instant sees post-fault speeds.
func TestInjectAppliesDueBoundaries(t *testing.T) {
	tr := tree.Star(1)
	leaf := tr.Leaves()[0]
	s := New(tr, Options{
		SelfCheck: true,
		Faults:    compile(t, tr, faults.Event{Kind: faults.Outage, Node: leaf, Start: 0, End: 2}),
	})
	s.AdvanceTo(0)
	if _, err := s.Inject(&Arrival{ID: 0, Release: 0, Size: 1}, leaf); err != nil {
		t.Fatal(err)
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	// Relay [0,1]; leaf blocked until 2, then one unit: completion 3.
	approx(t, s.Tasks()[0].Completion, 3, 1e-9, "completion with t=0 outage")
}

// Regression (satellite 1): CheckInvariants must return an error for a
// queue-membership inconsistency instead of panicking.
func TestCheckInvariantsQueueMembershipReturnsError(t *testing.T) {
	tr := tree.Star(2)
	leaf0, leaf1 := tr.Leaves()[0], tr.Leaves()[1]
	s := New(tr, Options{})
	if _, err := s.Inject(&Arrival{ID: 0, Release: 0, Size: 2}, leaf0); err != nil {
		t.Fatal(err)
	}
	js1, err := s.Inject(&Arrival{ID: 1, Release: 0, Size: 2}, leaf1)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the bookkeeping: task 1 sits on the relay (hop 0) but we
	// force it into leaf0's queue as well.
	s.nodes[leaf0].avail.push(js1)
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("CheckInvariants panicked: %v", r)
		}
	}()
	invErr := s.CheckInvariants()
	if invErr == nil || !strings.Contains(invErr.Error(), "queued on node") {
		t.Fatalf("CheckInvariants = %v, want queue-membership error", invErr)
	}
}
