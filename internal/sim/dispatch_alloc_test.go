package sim

import (
	"testing"

	"treesched/internal/tree"
)

// greedyProbe mirrors the paper's identical-endpoint greedy rule from
// inside the package (core cannot be imported here): it evaluates
// AvailStats on every root-adjacent branch plus AvailVolume on the
// winner — the exact query mix the memoized dispatch path serves.
type greedyProbe struct{}

func (greedyProbe) Name() string { return "greedyProbe" }

func (greedyProbe) Assign(q *Query, a *Arrival) tree.NodeID {
	t := q.Tree()
	best := tree.None
	bestCost := 0.0
	for _, v := range t.Leaves() {
		vh, cl := q.AvailStats(t.Branch(v), a.Size, a.Release, a.ID)
		cost := vh + a.Size + a.Size*float64(cl) + 0.5*float64(t.Depth(v))*a.Size
		if best == tree.None || cost < bestCost {
			best, bestCost = v, cost
		}
	}
	_ = q.AvailVolume(t.Branch(best))
	return best
}

// Warm state-querying dispatch must be allocation-free: the epoch
// memo, the fstat snapshots (sorted window, key mirror, prefix
// chains) and the engine-owned Query view all live in reusable
// arenas, so steady state allocates nothing at all.
func TestDispatchSteadyStateAllocs(t *testing.T) {
	tr := tree.FatTree(8, 1, 2)
	trace := shardTestTrace(t, 11, 400, 8)
	opts := Options{}
	s := New(tr, opts)
	replay := func() {
		s.Reset(opts)
		if err := ReplayOn(s, trace, greedyProbe{}); err != nil {
			t.Fatal(err)
		}
	}
	replay() // warm the arenas
	if allocs := testing.AllocsPerRun(20, replay); allocs != 0 {
		t.Fatalf("warm querying dispatch allocates %.1f allocs/run, want 0", allocs)
	}
}
