package sim

// taskQueue holds the jobs available on one node and yields the
// highest-priority (smallest-key) one. Two implementations exist: a
// binary heap (default, O(log n) updates) and a linear-scan reference
// used to cross-check the heap in property tests and in the queue
// ablation benchmark (experiment B8).
type taskQueue interface {
	push(js *JobState)
	remove(js *JobState)
	// fix restores ordering after js's key fields changed (SRPT).
	fix(js *JobState)
	min() *JobState
	len() int
	// tasks exposes all queued tasks in unspecified (but
	// deterministic) order. Callers iterate the returned slice
	// directly — unlike a visitor callback this never forces captured
	// accumulator variables to escape, keeping hot queries
	// allocation-free. Read-only; valid until the next queue mutation.
	tasks() []*JobState
	// clear empties the queue in place, retaining capacity (Reset).
	clear()
}

// heapQueue is a binary min-heap over (key1, key2, seq).
type heapQueue struct {
	items []*JobState
}

func newHeapQueue() *heapQueue { return &heapQueue{} }

func (h *heapQueue) len() int { return len(h.items) }

func (h *heapQueue) min() *JobState {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func (h *heapQueue) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	return higherPriority(a.key1, a.key2, a.ID, a.seq, b.key1, b.key2, b.ID, b.seq)
}

func (h *heapQueue) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.items[i].qidx = i
	h.items[j].qidx = j
}

func (h *heapQueue) push(js *JobState) {
	js.qidx = len(h.items)
	h.items = append(h.items, js)
	h.up(js.qidx)
}

func (h *heapQueue) remove(js *JobState) {
	i := js.qidx
	n := len(h.items) - 1
	if i < 0 || i > n || h.items[i] != js {
		panic("sim: removing task not in queue")
	}
	h.swap(i, n)
	h.items = h.items[:n]
	js.qidx = -1
	if i < n {
		if !h.down(i) {
			h.up(i)
		}
	}
}

func (h *heapQueue) fix(js *JobState) {
	if !h.down(js.qidx) {
		h.up(js.qidx)
	}
}

// up and down sift hole-style: the moving task is held locally (its
// four comparison fields load once) and placed exactly once, and each
// displaced task costs one pointer write plus its qidx update instead
// of a full swap. The comparison path matches the swap-based form, so
// the heap layout — which tasks() exposes to the PS scans — is
// unchanged entry for entry.
func (h *heapQueue) up(i int) {
	items := h.items
	js := items[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := items[parent]
		if !higherPriority(js.key1, js.key2, js.ID, js.seq, p.key1, p.key2, p.ID, p.seq) {
			break
		}
		items[i] = p
		p.qidx = i
		i = parent
	}
	items[i] = js
	js.qidx = i
}

func (h *heapQueue) down(i int) bool {
	items := h.items
	n := len(items)
	js := items[i]
	i0 := i
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		small, c := l, items[l]
		if r := l + 1; r < n {
			if cr := items[r]; higherPriority(cr.key1, cr.key2, cr.ID, cr.seq, c.key1, c.key2, c.ID, c.seq) {
				small, c = r, cr
			}
		}
		if !higherPriority(c.key1, c.key2, c.ID, c.seq, js.key1, js.key2, js.ID, js.seq) {
			break
		}
		items[i] = c
		c.qidx = i
		i = small
	}
	items[i] = js
	js.qidx = i
	return i != i0
}

func (h *heapQueue) tasks() []*JobState { return h.items }

func (h *heapQueue) clear() { h.items = h.items[:0] }

// scanQueue is the O(n)-per-operation reference implementation.
type scanQueue struct {
	items []*JobState
}

func newScanQueue() *scanQueue { return &scanQueue{} }

func (s *scanQueue) len() int { return len(s.items) }

func (s *scanQueue) push(js *JobState) {
	js.qidx = len(s.items)
	s.items = append(s.items, js)
}

func (s *scanQueue) remove(js *JobState) {
	i := js.qidx
	n := len(s.items) - 1
	if i < 0 || i > n || s.items[i] != js {
		panic("sim: removing task not in queue")
	}
	s.items[i] = s.items[n]
	s.items[i].qidx = i
	s.items = s.items[:n]
	js.qidx = -1
}

func (s *scanQueue) fix(*JobState) {}

func (s *scanQueue) min() *JobState {
	if len(s.items) == 0 {
		return nil
	}
	best := s.items[0]
	for _, js := range s.items[1:] {
		if higherPriority(js.key1, js.key2, js.ID, js.seq, best.key1, best.key2, best.ID, best.seq) {
			best = js
		}
	}
	return best
}

func (s *scanQueue) tasks() []*JobState { return s.items }

func (s *scanQueue) clear() { s.items = s.items[:0] }
