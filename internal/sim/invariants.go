package sim

import (
	"fmt"
	"math"

	"treesched/internal/tree"
)

// CheckInvariants cross-validates the engine's internal bookkeeping:
// queue membership and back-indices, leaf assignment sets, pending
// sets (when instrumented), the active-task counter and the running
// fractional-flow sum. It is O(tasks · depth) and intended for tests;
// it returns the first inconsistency found.
func (s *Sim) CheckInvariants() error {
	// Sync every node so Remaining values are current.
	for v := tree.NodeID(1); int(v) < s.tree.NumNodes(); v++ {
		s.sync(v)
	}
	active := 0
	var fracSum float64
	onNode := make(map[*JobState]tree.NodeID)
	for _, js := range s.tasks {
		if js == nil {
			continue // slot of a run aborted mid-parallel-injection
		}
		if js.Completed {
			if js.Remaining > 1e-6 {
				return fmt.Errorf("sim: completed task %d has remaining %v", js.ID, js.Remaining)
			}
			continue
		}
		active++
		cur := js.CurrentNode()
		if cur == tree.None {
			return fmt.Errorf("sim: incomplete task %d has no current node", js.ID)
		}
		onNode[js] = cur
		if js.Remaining < -1e-9 || js.Remaining > js.OrigOnCur+1e-9 {
			return fmt.Errorf("sim: task %d remaining %v outside [0,%v]", js.ID, js.Remaining, js.OrigOnCur)
		}
		// Fractional contribution.
		rem := js.LeafWork
		if js.Hop == len(js.Path)-1 {
			rem = js.Remaining
		}
		fracSum += js.FracWeight * rem / js.LeafWork
		// Leaf assignment membership.
		li := s.tree.LeafIndex(js.Leaf)
		lst := s.assigned[li]
		if js.leafIdx < 0 || js.leafIdx >= len(lst) || lst[js.leafIdx] != js {
			return fmt.Errorf("sim: task %d missing from its leaf's assigned set", js.ID)
		}
		// Pending sets mirror the remaining path. (Keyed on the option,
		// not pendingOn's nil-ness: Reset keeps the buffers allocated
		// after instrumentation is switched off.)
		if s.opts.Instrument {
			for h := js.Hop; h < len(js.Path); h++ {
				v := js.Path[h]
				idx := js.pendIdx[h]
				if idx < 0 || idx >= len(s.pendingOn[v]) || s.pendingOn[v][idx] != js {
					return fmt.Errorf("sim: task %d missing from pendingOn[%d]", js.ID, v)
				}
			}
		}
	}
	trackedActive := 0
	var trackedFrac float64
	for k := range s.shards {
		trackedActive += s.shards[k].activeTasks
		trackedFrac += s.shards[k].fracSum
	}
	if active != trackedActive {
		return fmt.Errorf("sim: activeTasks=%d but %d incomplete tasks exist", trackedActive, active)
	}
	if math.Abs(fracSum-trackedFrac) > 1e-6*math.Max(1, fracSum)+1e-6 {
		return fmt.Errorf("sim: fracSum drifted: tracked %v, recomputed %v", trackedFrac, fracSum)
	}
	// Queue membership: every avail task sits on that node; the
	// running task is the queue minimum (except under processor
	// sharing, where running is the min-remaining task).
	for v := tree.NodeID(1); int(v) < s.tree.NumNodes(); v++ {
		n := &s.nodes[v]
		count := 0
		for _, js := range n.avail.tasks() {
			count++
			if onNode[js] != v {
				return fmt.Errorf("sim: task %d queued on node %d but current node is %d", js.ID, v, onNode[js])
			}
		}
		if n.running != nil {
			if onNode[n.running] != v {
				return fmt.Errorf("sim: node %d running a task that is elsewhere", v)
			}
			// Reschedule always sets running to the queue minimum, and
			// cached keys do not move between reschedules, so the
			// identity must still hold (PS picks by live remaining
			// instead, which sync may have changed).
			if !s.ps && n.avail.min() != n.running {
				return fmt.Errorf("sim: node %d running task %d but the queue minimum is task %d",
					v, n.running.ID, n.avail.min().ID)
			}
		}
		if count == 0 && n.running != nil {
			return fmt.Errorf("sim: node %d running with an empty queue", v)
		}
	}
	return nil
}
