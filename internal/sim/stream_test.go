package sim

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// recordSink collects every emitted JobMetrics (copying, since the
// pointer is only valid during Emit).
type recordSink struct {
	rows []JobMetrics
	fail error // returned after the first emission when set
}

func (k *recordSink) Emit(m *JobMetrics) error {
	if k.fail != nil && len(k.rows) > 0 {
		return k.fail
	}
	k.rows = append(k.rows, *m)
	return nil
}

// TestRunStreamMatchesRunOn is the streaming core contract: a full
// retention streamed run over a TraceSource is bit-identical to the
// materializing run — stats and every per-job metric.
func TestRunStreamMatchesRunOn(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 400)

	want, err := Run(tr, trace, &rrAssigner{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(tr, workload.NewTraceSource(trace), &rrAssigner{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats diverged: stream %+v, materialized %+v", got.Stats, want.Stats)
	}
	for i := range want.Jobs {
		if got.Jobs[i] != want.Jobs[i] {
			t.Fatalf("job %d diverged: stream %+v, materialized %+v", i, got.Jobs[i], want.Jobs[i])
		}
	}
}

// TestRunStreamGeneratorMatchesMaterialized streams straight from a
// Poisson generator (no trace ever exists) and checks against the
// materialized pipeline with the same seed.
func TestRunStreamGeneratorMatchesMaterialized(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	cfg := workload.GenConfig{N: 400, Size: workload.UniformSize{Lo: 1, Hi: 8}, Load: 0.9, Capacity: 2}
	trace, err := workload.Poisson(rng.New(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(tr, trace, &rrAssigner{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, err := workload.NewPoissonSource(rng.New(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(tr, src, &rrAssigner{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats {
		t.Fatalf("stats diverged: stream %+v, materialized %+v", got.Stats, want.Stats)
	}
	for i := range want.Jobs {
		if got.Jobs[i] != want.Jobs[i] {
			t.Fatalf("job %d diverged", i)
		}
	}
}

// TestBoundedRetention checks recycle mode: the task list stays
// empty, Jobs is exactly the last-K completions (verified against a
// sink's completion-order record), the accumulator agrees with the
// full run on every order-free statistic, and order-dependent sums
// agree to float tolerance.
func TestBoundedRetention(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 400)

	full, err := Run(tr, trace, &rrAssigner{}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	const retain = 5
	sink := &recordSink{}
	res, err := RunStream(tr, workload.NewTraceSource(trace), &rrAssigner{}, Options{RetainJobs: retain, Sink: sink})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Sim.Tasks()); n != 0 {
		t.Fatalf("recycle mode retained %d tasks in the global list", n)
	}
	if len(sink.rows) != len(trace.Jobs) {
		t.Fatalf("sink saw %d jobs, want %d", len(sink.rows), len(trace.Jobs))
	}
	if len(res.Jobs) != retain {
		t.Fatalf("retained %d jobs, want %d", len(res.Jobs), retain)
	}
	for i, m := range res.Jobs {
		if want := sink.rows[len(sink.rows)-retain+i]; m != want {
			t.Fatalf("ring[%d] = %+v, want %+v (completion-order tail)", i, m, want)
		}
	}
	// The sink record, reordered by ID, must equal the full run's Jobs.
	byID := make([]JobMetrics, len(sink.rows))
	for _, m := range sink.rows {
		byID[m.ID] = m
	}
	for i := range full.Jobs {
		if byID[i] != full.Jobs[i] {
			t.Fatalf("job %d diverged: stream %+v, full %+v", i, byID[i], full.Jobs[i])
		}
	}

	st := res.Stream
	if st == nil {
		t.Fatal("bounded-retention result has no Stream accumulator")
	}
	if st.Completed != full.Stats.Completed || res.Stats.Completed != full.Stats.Completed {
		t.Fatalf("completed %d/%d, want %d", st.Completed, res.Stats.Completed, full.Stats.Completed)
	}
	if st.MaxFlow != full.Stats.MaxFlow || st.Makespan != full.Stats.Makespan {
		t.Fatalf("order-free stats diverged: %+v vs %+v", st, full.Stats)
	}
	if res.Stats.FracFlow != full.Stats.FracFlow || res.Stats.Events != full.Stats.Events {
		t.Fatalf("engine totals diverged: %+v vs %+v", res.Stats, full.Stats)
	}
	relClose := func(a, b float64) bool {
		return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
	}
	if !relClose(st.TotalFlow, full.Stats.TotalFlow) || !relClose(st.WeightedFlow, full.Stats.WeightedFlow) {
		t.Fatalf("summed stats diverged beyond tolerance: %+v vs %+v", st, full.Stats)
	}
	// Accumulator-backed accessors.
	if got, want := res.AvgFlow(), full.AvgFlow(); !relClose(got, want) {
		t.Fatalf("AvgFlow %v, want %v", got, want)
	}
	if got, want := res.LkNormFlow(2), full.LkNormFlow(2); !relClose(got, want) {
		t.Fatalf("LkNormFlow(2) %v, want %v", got, want)
	}
	if got := res.LkNormFlow(math.Inf(1)); got != full.Stats.MaxFlow {
		t.Fatalf("LkNormFlow(inf) %v, want %v", got, full.Stats.MaxFlow)
	}
	// Per-leaf tallies cover every job exactly once.
	jobs := 0
	for _, lt := range st.PerLeaf {
		jobs += lt.Jobs
	}
	if jobs != full.Stats.Completed {
		t.Fatalf("per-leaf tallies cover %d jobs, want %d", jobs, full.Stats.Completed)
	}
	// Engine-level Stats() agrees with the accumulator in recycle mode.
	if es := res.Sim.Stats(); es != res.Stats {
		t.Fatalf("Sim.Stats() %+v diverged from result stats %+v", es, res.Stats)
	}
}

// TestBoundedRetentionWarmReuse reuses one engine across streamed
// runs via Reset and checks reproducibility.
func TestBoundedRetentionWarmReuse(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 300)
	opts := Options{RetainJobs: 1}

	s := New(tr, opts)
	var first Stats
	for round := 0; round < 3; round++ {
		if round > 0 {
			s.Reset(opts)
		}
		res, err := RunStreamOn(s, workload.NewTraceSource(trace), &rrAssigner{})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if round == 0 {
			first = res.Stats
		} else if res.Stats != first {
			t.Fatalf("round %d: stats diverged: %+v vs %+v", round, res.Stats, first)
		}
	}
}

// TestSinkErrorPropagates: a failing sink surfaces as a run error.
func TestSinkErrorPropagates(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 50)
	boom := errors.New("disk full")
	_, err := RunStream(tr, workload.NewTraceSource(trace), &rrAssigner{}, Options{Sink: &recordSink{fail: boom}})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("sink failure not propagated: %v", err)
	}
}

// TestInjectStreamValidates: malformed streams are rejected with the
// same messages Trace.Validate produces.
func TestInjectStreamValidates(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	bad := []workload.Job{{ID: 0, Release: 1, Size: 1}, {ID: 2, Release: 2, Size: 1}}
	_, err := RunStream(tr, workload.NewTraceSource(&workload.Trace{Jobs: bad}), &rrAssigner{}, Options{RetainJobs: 1})
	if err == nil || !strings.Contains(err.Error(), "IDs must be dense") {
		t.Fatalf("dense-ID violation not caught: %v", err)
	}
	unsorted := []workload.Job{{ID: 0, Release: 2, Size: 1}, {ID: 1, Release: 1, Size: 1}}
	_, err = RunStream(tr, workload.NewTraceSource(&workload.Trace{Jobs: unsorted}), &rrAssigner{}, Options{RetainJobs: 1})
	if err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("unsorted stream not caught: %v", err)
	}
}

// TestRunPacketizedRejectsStreaming: packetized runs refuse the
// streaming hooks (they would count packets, not jobs).
func TestRunPacketizedRejectsStreaming(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 10)
	if _, err := RunPacketized(tr, trace, &rrAssigner{}, Options{RetainJobs: 4}); err == nil {
		t.Fatal("RunPacketized accepted RetainJobs")
	}
	if _, err := RunPacketized(tr, trace, &rrAssigner{}, Options{Sink: &recordSink{}}); err == nil {
		t.Fatal("RunPacketized accepted a Sink")
	}
}

// TestStreamWriteNDJSON checks the streaming result writer: a header
// line plus one line per retained job.
func TestStreamWriteNDJSON(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 60)
	res, err := Run(tr, trace, &rrAssigner{}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != len(res.Jobs)+1 {
		t.Fatalf("NDJSON has %d lines, want %d jobs + 1 header", lines, len(res.Jobs))
	}
	if !strings.HasPrefix(buf.String(), "{\"stats\":") {
		t.Fatal("NDJSON header line missing stats")
	}
}

// TestStreamAuditSkipped: recycle mode must not trip the end-of-run
// auditor (which needs full task state) even when slices are on.
func TestStreamAuditSkipped(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := resetTestTrace(t, 100)
	res, err := RunStream(tr, workload.NewTraceSource(trace), &rrAssigner{},
		Options{RetainJobs: 1, Instrument: true, RecordSlices: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stream.Completed != len(trace.Jobs) {
		t.Fatalf("completed %d, want %d", res.Stream.Completed, len(trace.Jobs))
	}
}

// TestStreamStatsLkNorms pins the accumulator's moment math against
// a direct computation.
func TestStreamStatsLkNorms(t *testing.T) {
	a := &StreamStats{PerLeaf: make([]LeafTally, 1)}
	flows := []float64{1, 2, 3.5}
	var s2, s3, tot float64
	for i, f := range flows {
		m := &JobMetrics{ID: i, Completion: f, Flow: f, Weight: 1}
		a.observe(m, 0, f)
		tot += f
		s2 += f * f
		s3 += f * f * f
	}
	if a.LkNormFlow(1) != tot || a.LkNormFlow(2) != math.Sqrt(s2) || a.LkNormFlow(3) != math.Cbrt(s3) {
		t.Fatalf("moment norms wrong: %+v", a)
	}
	if !math.IsNaN(a.LkNormFlow(4)) {
		t.Fatal("unsupported exponent should be NaN")
	}
	if a.LkNormFlow(math.Inf(1)) != 3.5 {
		t.Fatal("inf norm should be max flow")
	}
}
