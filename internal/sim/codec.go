// Zero-allocation NDJSON encoding of JobMetrics. The serving layer's
// completion fan-out and the NDJSON sink marshal one JobMetrics per
// completed job; going through encoding/json costs a reflective walk
// and a fresh []byte per job, which BENCH_7 showed dominating the
// daemon's hot path. AppendJobMetrics writes the exact bytes
// json.Marshal would produce — same field order, same float
// formatting — into a caller-reused buffer instead. The equivalence
// is not aspirational: TestMetricsEncodeMatchesStdlib and
// FuzzMetricsEncode pin it byte for byte, so the daemon's
// byte-identity contract (completion streams == offline RunStream
// output) survives the codec swap.
package sim

import (
	"fmt"
	"math"
	"strconv"
)

// appendJSONFloat appends f formatted exactly as encoding/json
// formats a float64: shortest representation, 'f' form except for
// magnitudes below 1e-6 or at/above 1e21, with the exponent's leading
// zero trimmed ("e-09" -> "e-9") to match ES6 number-to-string. f
// must be finite (encoding/json rejects NaN/Inf; callers gate).
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// AppendJobMetrics appends m as one compact JSON object — the exact
// bytes json.Marshal(m) produces — and returns the extended buffer.
// No trailing newline. A non-finite float field is an error, mirroring
// encoding/json's refusal to marshal NaN/Inf.
func AppendJobMetrics(dst []byte, m *JobMetrics) ([]byte, error) {
	if !finiteAll(m.Release, m.Completion, m.Flow, m.PathWork, m.Weight) {
		return dst, fmt.Errorf("sim: JobMetrics for job %d has a non-finite field, refusing to encode", m.ID)
	}
	dst = append(dst, `{"ID":`...)
	dst = strconv.AppendInt(dst, int64(m.ID), 10)
	dst = append(dst, `,"Release":`...)
	dst = appendJSONFloat(dst, m.Release)
	dst = append(dst, `,"Completion":`...)
	dst = appendJSONFloat(dst, m.Completion)
	dst = append(dst, `,"Flow":`...)
	dst = appendJSONFloat(dst, m.Flow)
	dst = append(dst, `,"Leaf":`...)
	dst = strconv.AppendInt(dst, int64(m.Leaf), 10)
	dst = append(dst, `,"PathWork":`...)
	dst = appendJSONFloat(dst, m.PathWork)
	dst = append(dst, `,"Weight":`...)
	dst = appendJSONFloat(dst, m.Weight)
	dst = append(dst, '}')
	return dst, nil
}

func finiteAll(fs ...float64) bool {
	for _, f := range fs {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
