// Streaming run support: an online metrics accumulator, a per-job
// sink, and a bounded retention ring, so the engine can ingest
// million-job arrival streams in memory independent of trace length.
// The hooks live on the completion path (handleFinish) and are inert
// — one nil check — unless Options.RetainJobs or Options.Sink is set.
package sim

import (
	"bufio"
	"encoding/json"
	"io"
	"math"

	"treesched/internal/tree"
)

// JobSink receives every completed job's metrics, in completion
// order, during a streaming run. The pointed-to JobMetrics is only
// valid for the duration of the call; copy it to retain. A non-nil
// error stops emission (the run itself continues; the error is
// reported when results are collected).
type JobSink interface {
	Emit(m *JobMetrics) error
}

// NDJSONSink writes one compact JSON object per completed job — the
// on-disk counterpart of Result.Jobs for runs too large to hold it.
// Lines are produced by the pooled append codec (AppendJobMetrics)
// into one reused buffer, byte-identical to what json.Encoder.Encode
// would write but allocation-free in steady state.
type NDJSONSink struct {
	w   io.Writer
	buf []byte
}

// NewNDJSONSink wraps w. Callers keeping the writer (e.g. a bufio
// buffer over a file) are responsible for flushing it after the run.
func NewNDJSONSink(w io.Writer) *NDJSONSink {
	return &NDJSONSink{w: w}
}

// Emit writes m as one JSON line.
func (k *NDJSONSink) Emit(m *JobMetrics) error {
	var err error
	if k.buf, err = AppendJobMetrics(k.buf[:0], m); err != nil {
		return err
	}
	k.buf = append(k.buf, '\n')
	_, err = k.w.Write(k.buf)
	return err
}

// LeafTally is one leaf machine's share of a streamed run.
type LeafTally struct {
	Leaf tree.NodeID
	// Jobs counts completions on the leaf; Flow and Work sum the
	// completed jobs' flow times and leaf processing requirements.
	Jobs int
	Flow float64
	Work float64
}

// StreamStats is the online accumulator of a streaming run: enough
// to reconstruct every summary statistic the materializing path
// reports, updated at each completion in O(1) so no per-job record
// needs retaining. Sums accumulate in completion order, whereas the
// materializing collector sums in job-ID order — the totals can
// differ in the last ulp between the two (everything order-free —
// Completed, MaxFlow, Makespan, per-job metrics — is identical).
type StreamStats struct {
	Completed    int
	TotalFlow    float64
	WeightedFlow float64
	MaxFlow      float64
	Makespan     float64
	// SumFlow2/SumFlow3 are the ℓ_k moment sums Σ F_j^k for k=2,3,
	// powering LkNormFlow without the per-job record.
	SumFlow2 float64
	SumFlow3 float64
	// PerLeaf tallies completions by leaf index.
	PerLeaf []LeafTally
}

// observe folds one completed job into the accumulator.
func (a *StreamStats) observe(m *JobMetrics, li int, leafWork float64) {
	a.Completed++
	a.TotalFlow += m.Flow
	a.WeightedFlow += m.Weight * m.Flow
	a.SumFlow2 += m.Flow * m.Flow
	a.SumFlow3 += m.Flow * m.Flow * m.Flow
	if m.Flow > a.MaxFlow {
		a.MaxFlow = m.Flow
	}
	if m.Completion > a.Makespan {
		a.Makespan = m.Completion
	}
	t := &a.PerLeaf[li]
	t.Jobs++
	t.Flow += m.Flow
	t.Work += leafWork
}

// AvgFlow returns the mean flow time per completed job.
func (a *StreamStats) AvgFlow() float64 {
	if a.Completed == 0 {
		return 0
	}
	return a.TotalFlow / float64(a.Completed)
}

// LkNormFlow returns the ℓ_k norm of the per-job flow times from the
// moment sums. Supported k: 1, 2, 3 and +Inf (max flow); other
// exponents need the per-job record and return NaN.
func (a *StreamStats) LkNormFlow(k float64) float64 {
	switch {
	case math.IsInf(k, 1):
		return a.MaxFlow
	case k == 1:
		return a.TotalFlow
	case k == 2:
		return math.Sqrt(a.SumFlow2)
	case k == 3:
		return math.Cbrt(a.SumFlow3)
	}
	return math.NaN()
}

// snapshot returns an independent copy for embedding in a Result.
func (a *StreamStats) snapshot() *StreamStats {
	cp := *a
	cp.PerLeaf = append([]LeafTally(nil), a.PerLeaf...)
	return &cp
}

// streamState is the engine's streaming hook bundle, installed by
// applyOptions when Options.RetainJobs or Options.Sink is set.
type streamState struct {
	acc StreamStats
	// ring holds the last retain completions (recycle mode only).
	retain   int
	ring     []JobMetrics
	ringHead int
	sink     JobSink
	sinkErr  error
	// recycle marks bounded retention: completed tasks return to the
	// shard freelist immediately and never enter s.tasks, so engine
	// memory is bounded by the maximum number of concurrently active
	// tasks rather than the trace length.
	recycle bool
	// scratch holds the metrics of the job currently being completed;
	// a local would escape through the sink interface and cost one
	// heap allocation per job. Safe to share: streaming hooks force a
	// single worker, so completions are strictly sequential.
	scratch JobMetrics
}

// push records m in the retention ring, evicting the oldest entry
// once the ring is full.
func (st *streamState) push(m *JobMetrics) {
	if len(st.ring) < st.retain {
		st.ring = append(st.ring, *m)
		return
	}
	st.ring[st.ringHead] = *m
	st.ringHead++
	if st.ringHead == st.retain {
		st.ringHead = 0
	}
}

// ringOrdered returns the retained window oldest-completion first.
func (st *streamState) ringOrdered() []JobMetrics {
	out := make([]JobMetrics, len(st.ring))
	k := copy(out, st.ring[st.ringHead:])
	copy(out[k:], st.ring[:st.ringHead])
	return out
}

// recycling reports bounded-retention mode: s.tasks is not populated
// and completed JobStates are recycled at completion.
func (s *Sim) recycling() bool { return s.stream != nil && s.stream.recycle }

// StreamStats returns the run's online accumulator (nil unless the
// engine has streaming hooks installed via Options.RetainJobs or
// Options.Sink). Live engine state: read-only for callers.
func (s *Sim) StreamStats() *StreamStats {
	if s.stream == nil {
		return nil
	}
	return &s.stream.acc
}

// streamComplete runs the streaming hooks for a task that just
// completed on its leaf: fold into the accumulator, emit to the
// sink, and in recycle mode stash the metrics in the retention ring
// and return the JobState to the shard freelist.
func (s *Sim) streamComplete(sh *shardState, js *JobState, li int) {
	st := s.stream
	m := &st.scratch
	*m = JobMetrics{
		ID:         js.ID,
		Release:    js.Release,
		Completion: js.Completion,
		Flow:       js.Completion - js.Release,
		Leaf:       js.Leaf,
		PathWork:   js.RouterSize*float64(len(js.Path)-1) + js.LeafWork,
		Weight:     js.Weight,
	}
	st.acc.observe(m, li, js.LeafWork)
	if st.sink != nil && st.sinkErr == nil {
		st.sinkErr = st.sink.Emit(m)
	}
	if !st.recycle {
		return
	}
	st.push(m)
	sh.free = append(sh.free, js)
}

// streamResult assembles the Result of a bounded-retention run from
// the accumulator: Jobs is only the retention window (completion
// order), Stream the full summary.
func (s *Sim) streamResult(n int) (*Result, error) {
	st := s.stream
	if st.acc.Completed != n {
		return nil, s.internalErr("streamResult", "%d of %d streamed jobs completed", st.acc.Completed, n)
	}
	var sum Stats
	sum.FracFlow, sum.ActiveIntegral, sum.Events = s.totals()
	sum.Completed = st.acc.Completed
	sum.TotalFlow = st.acc.TotalFlow
	sum.WeightedFlow = st.acc.WeightedFlow
	sum.MaxFlow = st.acc.MaxFlow
	sum.Makespan = st.acc.Makespan
	return &Result{Sim: s, Jobs: st.ringOrdered(), Stats: sum, Stream: st.acc.snapshot()}, nil
}

// WriteNDJSON writes the result as newline-delimited JSON: one
// {"stats":...} header line (with the streaming accumulator when
// present) followed by one compact object per retained job. Unlike
// WriteJSON it never builds one giant document, so large results
// stream to disk in constant memory.
func (r *Result) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	hdr := struct {
		Stats  Stats        `json:"stats"`
		Stream *StreamStats `json:"stream,omitempty"`
	}{r.Stats, r.Stream}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for i := range r.Jobs {
		if err := enc.Encode(&r.Jobs[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
