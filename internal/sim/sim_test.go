package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// fixedAssigner always picks the same leaf.
type fixedAssigner struct{ leaf tree.NodeID }

func (f fixedAssigner) Name() string                        { return "fixed" }
func (f fixedAssigner) Assign(*Query, *Arrival) tree.NodeID { return f.leaf }

// rrAssigner cycles through leaves.
type rrAssigner struct{ i int }

func (r *rrAssigner) Name() string { return "roundrobin" }
func (r *rrAssigner) Assign(q *Query, _ *Arrival) tree.NodeID {
	ls := q.Tree().Leaves()
	l := ls[r.i%len(ls)]
	r.i++
	return l
}

// byLeafAssigner maps job ID -> leaf index.
type byLeafAssigner struct{ idx []int }

func (b byLeafAssigner) Name() string { return "byleaf" }
func (b byLeafAssigner) Assign(q *Query, a *Arrival) tree.NodeID {
	return q.Tree().Leaves()[b.idx[a.ID]]
}

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (tol %v)", what, got, want, tol)
	}
}

func TestSingleJobLine(t *testing.T) {
	tr := tree.Line(2) // root -> r1 -> r2 -> leaf: 3 processing nodes
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 1, Size: 4}}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Jobs[0].Completion, 13, 1e-9, "completion") // 1 + 3*4
	approx(t, res.Jobs[0].Flow, 12, 1e-9, "flow")
	approx(t, res.Jobs[0].PathWork, 12, 1e-9, "pathwork")
	// Fractional flow: 1 while on routers (8 time units), then a
	// linear drain over the 4 leaf units: 8 + 2 = 10.
	approx(t, res.Stats.FracFlow, 10, 1e-6, "fractional flow")
	approx(t, res.Stats.ActiveIntegral, res.Stats.TotalFlow, 1e-6, "active integral")
}

// Two jobs on a star; SJF preempts the big job on the relay.
func TestSJFPreemption(t *testing.T) {
	tr := tree.Star(2)
	leafA, leafB := tr.Leaves()[0], tr.Leaves()[1]
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0.5, Size: 1},
	}}
	res, err := Run(tr, trace, byLeafAssigner{idx: []int{tr.LeafIndex(leafA), tr.LeafIndex(leafB)}}, Options{Policy: SJF{}, SelfCheck: true, Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	// Relay: A 0-0.5 (0.5 done), B 0.5-1.5, A 1.5-3. Leaves: A 3-5, B 1.5-2.5.
	approx(t, res.Jobs[0].Completion, 5, 1e-9, "A completion")
	approx(t, res.Jobs[1].Completion, 2.5, 1e-9, "B completion")
	approx(t, res.Stats.TotalFlow, 5+2, 1e-9, "total flow")
	approx(t, res.Stats.FracFlow, 4+1.5, 1e-6, "fractional flow")
	approx(t, res.Stats.MaxFlow, 5, 1e-9, "max flow")
}

func TestFIFONoPreemption(t *testing.T) {
	tr := tree.Star(2)
	leafA, leafB := tr.Leaves()[0], tr.Leaves()[1]
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0.5, Size: 1},
	}}
	res, err := Run(tr, trace, byLeafAssigner{idx: []int{tr.LeafIndex(leafA), tr.LeafIndex(leafB)}}, Options{Policy: FIFO{}, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Relay: A 0-2, B 2-3. Leaves: A 2-4, B 3-4.
	approx(t, res.Jobs[0].Completion, 4, 1e-9, "A completion")
	approx(t, res.Jobs[1].Completion, 4, 1e-9, "B completion")
}

func TestLCFSPreempts(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 1, Size: 2},
	}}
	res, err := Run(tr, trace, byLeafAssigner{idx: []int{0, 1}}, Options{Policy: LCFS{}, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Relay: A 0-1 (1 left), B 1-3, A 3-4. B's leaf: 3-5. A's leaf: 4-6.
	approx(t, res.Jobs[1].Completion, 5, 1e-9, "B completion")
	approx(t, res.Jobs[0].Completion, 6, 1e-9, "A completion")
}

func TestSRPTUsesRemaining(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 3},
		{ID: 1, Release: 2.5, Size: 1},
	}}
	res, err := Run(tr, trace, byLeafAssigner{idx: []int{0, 1}}, Options{Policy: SRPT{}, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// At t=2.5 job A has 0.5 remaining on the relay < 1, so SRPT does
	// NOT preempt: A finishes relay at 3, B runs 3-4.
	approx(t, res.Jobs[0].Completion, 6, 1e-9, "A completion") // leaf 3-6
	approx(t, res.Jobs[1].Completion, 5, 1e-9, "B completion") // leaf 4-5
}

func TestStoreAndForward(t *testing.T) {
	tr := tree.Line(3)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0.1, Size: 2},
	}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{Instrument: true, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, js := range res.Sim.Tasks() {
		for h := 1; h < len(js.Path); h++ {
			if js.HopArrive[h] < js.HopComplete[h-1]-1e-9 {
				t.Fatalf("job %d hop %d started before parent finished", js.ID, h)
			}
			if js.HopComplete[h] < js.HopArrive[h]+js.RouterSize/2-1 {
				// loose sanity: completion after arrival
				t.Fatalf("job %d hop %d completes before arriving", js.ID, h)
			}
		}
	}
}

func TestSpeedScaling(t *testing.T) {
	tr := tree.Line(2)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 4}}}
	res1, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(tr.WithUniformSpeed(2), trace, fixedAssigner{tr.Leaves()[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res2.Stats.TotalFlow, res1.Stats.TotalFlow/2, 1e-9, "speed-2 flow")
}

func TestUnrelatedLeafSizes(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 1, LeafSizes: []float64{10, 3}},
	}}
	res, err := Run(tr, trace, byLeafAssigner{idx: []int{1}}, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Relay 0-1, leaf B 1-4.
	approx(t, res.Jobs[0].Completion, 4, 1e-9, "completion")
	approx(t, res.Jobs[0].PathWork, 4, 1e-9, "pathwork")
}

func TestWrongLeafSizesLength(t *testing.T) {
	tr := tree.Star(3)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 1, LeafSizes: []float64{1, 2}},
	}}
	if _, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{}); err == nil {
		t.Fatal("accepted mismatched leaf sizes")
	}
}

func TestInjectToNonLeafFails(t *testing.T) {
	tr := tree.Star(2)
	s := New(tr, Options{})
	_, err := s.Inject(&Arrival{ID: 0, Size: 1}, tr.RootAdjacent()[0])
	if err == nil {
		t.Fatal("accepted router assignment")
	}
}

func TestInjectBeforeReleaseFails(t *testing.T) {
	tr := tree.Star(2)
	s := New(tr, Options{})
	_, err := s.Inject(&Arrival{ID: 0, Release: 5, Size: 1}, tr.Leaves()[0])
	if err == nil {
		t.Fatal("accepted injection before release")
	}
}

func TestAdvanceBackwardPanics(t *testing.T) {
	tr := tree.Star(2)
	s := New(tr, Options{})
	s.AdvanceTo(5)
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backward did not panic")
		}
	}()
	s.AdvanceTo(1)
}

func TestOriginExtension(t *testing.T) {
	tr := tree.Line(3) // root -> r1 -> r2 -> r3 -> leaf
	leaf := tr.Leaves()[0]
	path := tr.Path(leaf)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2, Origin: int32(path[1])}, // skip r1, r2 remains
	}}
	res, err := Run(tr, trace, fixedAssigner{leaf}, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	// Path below origin r2: [r3, leaf]: 2 nodes * 2 = 4.
	approx(t, res.Jobs[0].Completion, 4, 1e-9, "origin completion")
}

func TestOriginAtLeafParentAndInvalid(t *testing.T) {
	tr := tree.Star(2)
	leaf := tr.Leaves()[0]
	relay := tr.RootAdjacent()[0]
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 3, Origin: int32(relay)},
	}}
	res, err := Run(tr, trace, fixedAssigner{leaf}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, res.Jobs[0].Completion, 3, 1e-9, "leaf-only completion")

	// Origin that is not an ancestor of the chosen leaf.
	other := tr.Leaves()[1]
	trace2 := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 1, Origin: int32(other)},
	}}
	if _, err := Run(tr, trace2, fixedAssigner{leaf}, Options{}); err == nil {
		t.Fatal("accepted origin not on path")
	}
}

func TestPacketizedPipelines(t *testing.T) {
	tr := tree.Line(2) // 3 processing nodes
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 4}}}
	sf, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pk, err := RunPacketized(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sf.Jobs[0].Completion, 12, 1e-9, "store-and-forward")
	// 4 unit packets pipeline: last packet completes at 4 + 2 = 6.
	approx(t, pk.Jobs[0].Completion, 6, 1e-6, "packetized")
	// Total work identical.
	approx(t, pk.Jobs[0].PathWork, sf.Jobs[0].PathWork, 1e-9, "pathwork")
}

func TestNodeUtilization(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 3}}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	busy, work := res.Sim.NodeUtilization(tr.RootAdjacent()[0])
	approx(t, busy, 3, 1e-9, "relay busy")
	approx(t, work, 3, 1e-9, "relay work")
	busy, work = res.Sim.NodeUtilization(tr.Leaves()[0])
	approx(t, busy, 3, 1e-9, "leaf busy")
	approx(t, work, 3, 1e-9, "leaf work")
}

func TestDeterminism(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	r := rng.New(77)
	trace, err := workload.Poisson(r, workload.GenConfig{N: 300, Size: workload.UniformSize{Lo: 1, Hi: 8}, Load: 0.9, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	run := func() Stats {
		res, err := Run(tr, trace, &rrAssigner{}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("non-deterministic stats: %+v vs %+v", a, b)
	}
}

func TestHeapVsScanQueueEquivalence(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tr := tree.Random(r, tree.RandomConfig{Branches: 1 + r.Intn(3), MaxDepth: 2 + r.Intn(3), MaxChildren: 2, LeafProb: 0.5})
		trace, err := workload.Poisson(r, workload.GenConfig{N: 60, Size: workload.UniformSize{Lo: 1, Hi: 6}, Load: 1.2, Capacity: float64(len(tr.RootAdjacent()))})
		if err != nil {
			return false
		}
		pols := []Policy{SJF{}, FIFO{}, SRPT{}, LCFS{}}
		pol := pols[r.Intn(len(pols))]
		h, err := Run(tr, trace, &rrAssigner{}, Options{Policy: pol})
		if err != nil {
			return false
		}
		sc, err := Run(tr, trace, &rrAssigner{}, Options{Policy: pol, UseScanQueue: true})
		if err != nil {
			return false
		}
		return math.Abs(h.Stats.TotalFlow-sc.Stats.TotalFlow) < 1e-6 &&
			math.Abs(h.Stats.FracFlow-sc.Stats.FracFlow) < 1e-6
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Conservation and ordering invariants on random workloads.
func TestEngineInvariantsProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tr := tree.Random(r, tree.RandomConfig{Branches: 1 + r.Intn(3), MaxDepth: 2 + r.Intn(4), MaxChildren: 2, LeafProb: 0.5})
		tr = tr.WithSpeeds(1, 1.5, 1.25)
		trace, err := workload.Poisson(r, workload.GenConfig{N: 80, Size: workload.UniformSize{Lo: 0.5, Hi: 5}, Load: 1.0, Capacity: float64(len(tr.RootAdjacent()))})
		if err != nil {
			return false
		}
		if r.Bool(0.5) {
			if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{Leaves: len(tr.Leaves()), Lo: 0.5, Hi: 2}); err != nil {
				return false
			}
		}
		res, err := Run(tr, trace, &rrAssigner{}, Options{Instrument: true, SelfCheck: true})
		if err != nil {
			return false
		}
		// (1) Integral of active count equals total flow.
		if math.Abs(res.Stats.ActiveIntegral-res.Stats.TotalFlow) > 1e-6*math.Max(1, res.Stats.TotalFlow) {
			return false
		}
		// (2) Fractional flow never exceeds integral flow.
		if res.Stats.FracFlow > res.Stats.TotalFlow*(1+1e-9)+1e-6 {
			return false
		}
		// (3) Per-job flow at least the speed-adjusted path work.
		for i := range res.Jobs {
			m := &res.Jobs[i]
			var minTime float64
			js := res.Sim.Tasks()[i]
			for h, v := range js.Path {
				var sz float64
				if h == len(js.Path)-1 {
					sz = js.LeafWork
				} else {
					sz = js.RouterSize
				}
				minTime += sz / tr.Speed(v)
			}
			if m.Flow < minTime-1e-6 {
				return false
			}
		}
		// (4) Per-node processed work equals total volume demanded of it.
		for v := tree.NodeID(0); int(v) < tr.NumNodes(); v++ {
			if v == tr.Root() {
				continue
			}
			var demand float64
			for _, js := range res.Sim.Tasks() {
				for h, u := range js.Path {
					if u == v {
						if h == len(js.Path)-1 {
							demand += js.LeafWork
						} else {
							demand += js.RouterSize
						}
					}
				}
			}
			_, work := res.Sim.NodeUtilization(v)
			if math.Abs(work-demand) > 1e-6*math.Max(1, demand) {
				return false
			}
		}
		// (5) Store-and-forward respected.
		for _, js := range res.Sim.Tasks() {
			for h := 1; h < len(js.Path); h++ {
				if js.HopArrive[h] < js.HopComplete[h-1]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsMidRun(t *testing.T) {
	tr := tree.Star(1)
	s := New(tr, Options{})
	s.AdvanceTo(0)
	if _, err := s.Inject(&Arrival{ID: 0, Release: 0, Size: 4}, tr.Leaves()[0]); err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(2)
	st := s.Stats()
	if st.Completed != 0 {
		t.Fatal("job completed too early")
	}
	approx(t, st.ActiveIntegral, 2, 1e-9, "mid-run active integral")
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Completed != 1 {
		t.Fatal("job did not complete")
	}
	approx(t, st.TotalFlow, 8, 1e-9, "total flow")
}

func TestQueryLeafQueue(t *testing.T) {
	tr := tree.Star(2)
	s := New(tr, Options{})
	leaf := tr.Leaves()[0]
	s.AdvanceTo(0)
	if _, err := s.Inject(&Arrival{ID: 0, Release: 0, Size: 2}, leaf); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Inject(&Arrival{ID: 1, Release: 0, Size: 4}, leaf); err != nil {
		t.Fatal(err)
	}
	q := s.Query()
	if got := len(q.LeafQueue(leaf)); got != 2 {
		t.Fatalf("LeafQueue = %d, want 2", got)
	}
	// Both jobs still upstream: remaining-on-leaf is the full size.
	// A hypothetical job of size 3 released at 0.5 is preceded only by
	// job 0 (size 2).
	if v := q.LeafVolumeHigher(leaf, 3, 0.5, 2); math.Abs(v-2) > 1e-9 {
		t.Fatalf("LeafVolumeHigher = %v, want 2", v)
	}
	// Size-4 probe: job 1 (size 4, earlier release) also precedes it.
	if v := q.LeafVolumeHigher(leaf, 4, 0.5, 2); math.Abs(v-6) > 1e-9 {
		t.Fatalf("LeafVolumeHigher = %v, want 6", v)
	}
	if v := q.LeafFracLarger(leaf, 2); math.Abs(v-1) > 1e-9 {
		t.Fatalf("LeafFracLarger = %v, want 1 (job 1 fully remaining)", v)
	}
	// Relay queries.
	relay := tr.RootAdjacent()[0]
	if v := q.AvailVolumeHigher(relay, 3, 0.5, 2); math.Abs(v-2) > 1e-9 {
		t.Fatalf("AvailVolumeHigher = %v, want 2", v)
	}
	if c := q.AvailCountLarger(relay, 2); c != 1 {
		t.Fatalf("AvailCountLarger = %d, want 1", c)
	}
	if c := q.AvailCount(relay); c != 2 {
		t.Fatalf("AvailCount = %d, want 2", c)
	}
	if v := q.AvailVolume(relay); math.Abs(v-6) > 1e-9 {
		t.Fatalf("AvailVolume = %v, want 6", v)
	}
}

func TestPendingOnRequiresInstrument(t *testing.T) {
	tr := tree.Star(1)
	s := New(tr, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("PendingOn without Instrument did not panic")
		}
	}()
	s.Query().PendingOn(tr.Leaves()[0])
}

func TestPendingOnTracksQv(t *testing.T) {
	tr := tree.Line(2)
	leaf := tr.Leaves()[0]
	path := tr.Path(leaf)
	s := New(tr, Options{Instrument: true})
	s.AdvanceTo(0)
	if _, err := s.Inject(&Arrival{ID: 0, Release: 0, Size: 2}, leaf); err != nil {
		t.Fatal(err)
	}
	q := s.Query()
	for _, v := range path {
		if len(q.PendingOn(v)) != 1 {
			t.Fatalf("PendingOn(%d) = %d, want 1", v, len(q.PendingOn(v)))
		}
	}
	s.AdvanceTo(3) // finished on path[0] (2 units) and 1 into path[1]
	if len(q.PendingOn(path[0])) != 0 {
		t.Fatal("job still pending on completed node")
	}
	if len(q.PendingOn(path[1])) != 1 || len(q.PendingOn(path[2])) != 1 {
		t.Fatal("job missing from downstream pending sets")
	}
	if err := s.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, v := range path {
		if len(q.PendingOn(v)) != 0 {
			t.Fatal("pending sets not empty after drain")
		}
	}
}

func TestLkNorm(t *testing.T) {
	r := &Result{Jobs: []JobMetrics{{Flow: 3}, {Flow: 4}}, Stats: Stats{TotalFlow: 7, MaxFlow: 4}}
	approx(t, r.LkNormFlow(2), 5, 1e-9, "l2 norm")
	approx(t, r.LkNormFlow(math.Inf(1)), 4, 1e-9, "linf norm")
	approx(t, r.AvgFlow(), 3.5, 1e-9, "avg")
}

func TestRecordSlices(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0.5, Size: 1},
	}}
	res, err := Run(tr, trace, byLeafAssigner{idx: []int{0, 1}}, Options{RecordSlices: true, SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	slices := res.Sim.Slices()
	// Relay: A [0,0.5), B [0.5,1.5), A [1.5,3); leaves: B [1.5,2.5), A [3,5).
	if len(slices) != 5 {
		t.Fatalf("slices = %d, want 5: %+v", len(slices), slices)
	}
	// Total sliced work per node equals demand.
	perNode := map[tree.NodeID]float64{}
	for _, sl := range slices {
		if sl.To <= sl.From {
			t.Fatalf("degenerate slice %+v", sl)
		}
		perNode[sl.Node] += sl.To - sl.From
	}
	relay := tr.RootAdjacent()[0]
	if math.Abs(perNode[relay]-3) > 1e-9 {
		t.Fatalf("relay sliced work %v, want 3", perNode[relay])
	}
	// The preemption boundary is visible: job 0's relay work is split.
	count0 := 0
	for _, sl := range slices {
		if sl.Node == relay && sl.Job == 0 {
			count0++
		}
	}
	if count0 != 2 {
		t.Fatalf("job 0 relay slices = %d, want 2 (preempted once)", count0)
	}
}

func TestSlicesRequireOption(t *testing.T) {
	tr := tree.Star(1)
	s := New(tr, Options{})
	defer func() {
		if recover() == nil {
			t.Fatal("Slices without RecordSlices did not panic")
		}
	}()
	s.Slices()
}

func TestResultWriteJSON(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 2}}}
	res, err := Run(tr, trace, fixedAssigner{tr.Leaves()[0]}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Stats Stats
		Jobs  []JobMetrics
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Stats.TotalFlow != res.Stats.TotalFlow || len(decoded.Jobs) != 1 {
		t.Fatalf("round trip lost data: %+v", decoded)
	}
}
