package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"treesched/internal/faults"
	"treesched/internal/tree"
)

// The schedule-conformance auditor replays a recorded slice log and
// independently re-verifies the paper's model constraints:
//
//   - overlap: a node processes at most one task at any instant,
//   - precedence: store-and-forward — a task's work on a node may only
//     start after the full size was delivered by every ancestor hop,
//   - speed-budget: no node is credited more work over a window than
//     base speed × ∫ fault-factor dt allows for the task's requirement,
//   - release: no work before the task's release (immediate dispatch
//     is enforced structurally at injection, so work preceding release
//     is the observable breach),
//   - migration / non-migration: work must stay on the recorded path;
//     a change of leaf is legal only at a recorded recovery Migration,
//   - completion: a completed task's final journey carries the full
//     per-hop requirement and its last slice ends at the completion.
//
// The auditor shares no state with the event loop beyond the records
// themselves, so a bookkeeping bug in the engine surfaces here as a
// structured violation instead of silently skewing metrics.

// auditTol is the relative tolerance for audited comparisons; slice
// endpoints are computed with a different operation order than the
// engine's incremental sync, so the last few ulps differ.
func auditTol(x float64) float64 { return 1e-6 * math.Max(1, math.Abs(x)) }

// Violation is one audited constraint breach.
type Violation struct {
	// Rule is the violated constraint: overlap, precedence, off-path,
	// speed-budget, release, completion, migration, unknown-task or
	// malformed.
	Rule   string
	Node   tree.NodeID
	Job    int
	Seq    int64
	At     float64
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%.6g node=%d job=%d seq=%d: %s", v.Rule, v.At, v.Node, v.Job, v.Seq, v.Detail)
}

// AuditReport is the auditor's structured result.
type AuditReport struct {
	Slices     int
	Tasks      int
	Violations []Violation
}

// OK reports whether the audited schedule satisfied every constraint.
func (r *AuditReport) OK() bool { return len(r.Violations) == 0 }

// Summary renders the report as a short human-readable diagnostic.
func (r *AuditReport) Summary() string {
	if r.OK() {
		return fmt.Sprintf("audit OK: %d slice(s) over %d task(s)", r.Slices, r.Tasks)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violation(s) in %d slice(s) over %d task(s)", len(r.Violations), r.Slices, r.Tasks)
	const show = 8
	for i, v := range r.Violations {
		if i == show {
			fmt.Fprintf(&b, "\n  ... and %d more", len(r.Violations)-show)
			break
		}
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

func (r *AuditReport) add(v Violation) { r.Violations = append(r.Violations, v) }

// AuditError carries a failed audit through Drain's error return.
type AuditError struct {
	Report *AuditReport
}

func (e *AuditError) Error() string {
	return "sim: schedule audit failed: " + e.Report.Summary()
}

// Audit verifies the engine's own recorded slice log. It requires
// Options.RecordSlices and a non-PS policy (processor sharing has no
// discrete slices to audit).
func (s *Sim) Audit() *AuditReport {
	if !s.opts.RecordSlices || s.ps {
		panic("sim: Audit requires Options.RecordSlices and a non-PS policy")
	}
	return s.AuditSlices(s.Slices())
}

// AuditShard verifies shard k's slice log against the tasks assigned
// into shard k only — the per-shard view that needs no cross-shard
// state, mirroring the engine's root decomposition. It requires
// Options.RecordSlices, a non-PS policy, and a migration-free run: a
// recovery migration moves work between shards, so only the whole-run
// audit is defined then.
func (s *Sim) AuditShard(k int) *AuditReport {
	if !s.opts.RecordSlices || s.ps {
		panic("sim: AuditShard requires Options.RecordSlices and a non-PS policy")
	}
	if len(s.migrations) > 0 {
		panic("sim: AuditShard is undefined across recovery migrations; audit the full run")
	}
	if s.split() {
		// Under sub-shard splitting a task's slices span the head shard
		// and its leaf's sub-shard, so no single shard log covers it.
		panic("sim: AuditShard is undefined under sub-shard splitting; audit the full run")
	}
	slices := s.shards[k].slices
	var tasks []*JobState
	for _, js := range s.tasks {
		if js != nil && int(s.shardOf[js.Leaf]) == k {
			tasks = append(tasks, js)
		}
	}
	rep := &AuditReport{Slices: len(slices), Tasks: len(tasks)}
	credits := s.auditPerNode(slices, rep)
	s.auditPerTask(slices, credits, tasks, rep)
	return rep
}

// AuditSlices verifies an arbitrary slice log against this engine's
// tasks, topology, fault schedule and migration record — the log need
// not be the engine's own (tests feed deliberately corrupted copies).
func (s *Sim) AuditSlices(slices []Slice) *AuditReport {
	rep := &AuditReport{Slices: len(slices), Tasks: len(s.tasks)}
	credits := s.auditPerNode(slices, rep)
	s.auditPerTask(slices, credits, s.tasks, rep)
	return rep
}

// auditPerNode checks slice well-formedness and the ≤1-task-per-node
// exclusivity constraint, and — because each node's slices are sorted
// by start time here anyway — computes every slice's work credit
// (base speed × fault-factor integral) in the same pass with a
// monotone cursor into the node's fault segments. This replaces the
// per-slice rescan of the full segment list the per-task audit used
// to do, which was quadratic on long faulty traces. The returned
// credits are indexed by the slice's position in `slices`.
func (s *Sim) auditPerNode(slices []Slice, rep *AuditReport) []float64 {
	credits := make([]float64, len(slices))
	perNode := make([][]int32, s.tree.NumNodes())
	for i, sl := range slices {
		if int(sl.Node) <= 0 || int(sl.Node) >= s.tree.NumNodes() {
			rep.add(Violation{Rule: "malformed", Node: sl.Node, Job: sl.Job, Seq: sl.Seq, At: sl.From,
				Detail: fmt.Sprintf("slice on unknown node %d", sl.Node)})
			continue
		}
		if !(sl.To > sl.From) {
			rep.add(Violation{Rule: "malformed", Node: sl.Node, Job: sl.Job, Seq: sl.Seq, At: sl.From,
				Detail: fmt.Sprintf("empty or reversed slice [%.6g,%.6g]", sl.From, sl.To)})
			continue
		}
		perNode[sl.Node] = append(perNode[sl.Node], int32(i))
	}
	fs := s.opts.Faults
	for v := range perNode {
		lst := perNode[v]
		if len(lst) == 0 {
			continue
		}
		sort.Slice(lst, func(i, j int) bool {
			a, b := slices[lst[i]], slices[lst[j]]
			if a.From != b.From {
				return a.From < b.From
			}
			return a.To < b.To
		})
		base := s.nodes[v].baseSpeed
		var segs []faults.Segment
		if fs != nil {
			segs = fs.Segments(tree.NodeID(v))
		}
		seg := 0
		for i, idx := range lst {
			cur := slices[idx]
			if i > 0 {
				prev := slices[lst[i-1]]
				if cur.From < prev.To-auditTol(prev.To) {
					rep.add(Violation{Rule: "overlap", Node: cur.Node, Job: cur.Job, Seq: cur.Seq, At: cur.From,
						Detail: fmt.Sprintf("tasks %d and %d overlap on node %d: [%.6g,%.6g] vs [%.6g,%.6g]",
							prev.Seq, cur.Seq, cur.Node, prev.From, prev.To, cur.From, cur.To)})
				}
			}
			if segs == nil {
				credits[idx] = base * (cur.To - cur.From)
				continue
			}
			// Slices are sorted by From, so the last segment starting at
			// or before From only moves forward; the summation below is
			// operation-for-operation the one faults.Integral performs,
			// keeping audited credits bit-identical to the rescan.
			for seg+1 < len(segs) && segs[seg+1].Start <= cur.From {
				seg++
			}
			var sum float64
			for j := seg; j < len(segs); j++ {
				sg := segs[j]
				if sg.Start >= cur.To {
					break
				}
				end := math.Inf(1)
				if j+1 < len(segs) {
					end = segs[j+1].Start
				}
				lo, hi := math.Max(cur.From, sg.Start), math.Min(cur.To, end)
				if hi > lo {
					sum += sg.Factor * (hi - lo)
				}
			}
			credits[idx] = base * sum
		}
	}
	return credits
}

// journey is one leg of a task's life: the path it followed and its
// leaf requirement there, until endsAt (a recovery re-dispatch) or
// forever for the final leg.
type journey struct {
	path     []tree.NodeID
	leafWork float64
	endsAt   float64
}

func (s *Sim) auditPerTask(slices []Slice, credits []float64, tasks []*JobState, rep *AuditReport) {
	taskBySeq := make(map[int64]*JobState, len(tasks))
	for _, js := range tasks {
		if js == nil {
			continue
		}
		taskBySeq[js.seq] = js
	}
	migsBySeq := make(map[int64][]Migration)
	for _, m := range s.migrations {
		migsBySeq[m.Seq] = append(migsBySeq[m.Seq], m)
	}
	bySeq := make(map[int64][]int32)
	unknown := make(map[int64]bool)
	for i, sl := range slices {
		if _, ok := taskBySeq[sl.Seq]; !ok {
			if !unknown[sl.Seq] {
				unknown[sl.Seq] = true
				rep.add(Violation{Rule: "unknown-task", Node: sl.Node, Job: sl.Job, Seq: sl.Seq, At: sl.From,
					Detail: fmt.Sprintf("slice for task seq %d which was never injected", sl.Seq)})
			}
			continue
		}
		bySeq[sl.Seq] = append(bySeq[sl.Seq], int32(i))
	}
	// Iterate tasks in injection order for a deterministic report.
	for _, js := range tasks {
		if js == nil {
			continue
		}
		s.auditTask(js, slices, bySeq[js.seq], credits, migsBySeq[js.seq], rep)
	}
}

// auditTask replays one task's slices (given as indices into the full
// log) against its journeys; work credits were precomputed by
// auditPerNode.
func (s *Sim) auditTask(js *JobState, all []Slice, idxs []int32, taskCredits []float64, migs []Migration, rep *AuditReport) {
	sort.Slice(idxs, func(i, j int) bool {
		a, b := all[idxs[i]], all[idxs[j]]
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Node < b.Node
	})
	// Migrations arrive in time order; each one closes a journey whose
	// path and leaf requirement it recorded.
	journeys := make([]journey, 0, len(migs)+1)
	for _, m := range migs {
		journeys = append(journeys, journey{path: m.OldPath, leafWork: m.OldLeafWork, endsAt: m.At})
	}
	journeys = append(journeys, journey{path: js.Path, leafWork: js.LeafWork, endsAt: math.Inf(1)})
	sizeOn := func(j journey, h int) float64 {
		if h == len(j.path)-1 {
			return j.leafWork
		}
		return js.RouterSize
	}

	jIdx, hop := 0, 0
	credited := make([]float64, len(journeys[0].path))
	lastTo := js.Release
	for _, idx := range idxs {
		sl := all[idx]
		if !(sl.To > sl.From) {
			continue // already reported as malformed
		}
		if sl.From < js.Release-auditTol(js.Release) {
			rep.add(Violation{Rule: "release", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From,
				Detail: fmt.Sprintf("work starts at %.6g before release %.6g", sl.From, js.Release)})
		}
		for jIdx < len(journeys)-1 && sl.From >= journeys[jIdx].endsAt {
			jIdx++
			hop = 0
			credited = make([]float64, len(journeys[jIdx].path))
		}
		j := journeys[jIdx]
		if sl.To > j.endsAt+auditTol(j.endsAt) {
			rep.add(Violation{Rule: "migration", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From,
				Detail: fmt.Sprintf("slice [%.6g,%.6g] extends past the re-dispatch at %.6g", sl.From, sl.To, j.endsAt)})
		}
		h := -1
		for i := hop; i < len(j.path); i++ {
			if j.path[i] == sl.Node {
				h = i
				break
			}
		}
		if h < 0 {
			rule, detail := "off-path", fmt.Sprintf("work on node %d which is not on the task's path", sl.Node)
			for i := 0; i < hop; i++ {
				if j.path[i] == sl.Node {
					rule = "precedence"
					detail = fmt.Sprintf("work on node %d (hop %d) after the task advanced to hop %d", sl.Node, i, hop)
					break
				}
			}
			rep.add(Violation{Rule: rule, Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From, Detail: detail})
			continue
		}
		if h > hop {
			// Store-and-forward: advancing to a deeper hop requires the
			// full size delivered on every hop above it...
			for i := hop; i < h; i++ {
				want := sizeOn(j, i)
				if credited[i] < want-auditTol(want) {
					rep.add(Violation{Rule: "precedence", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From,
						Detail: fmt.Sprintf("node %d starts with only %.6g of %.6g done on ancestor node %d",
							sl.Node, credited[i], want, j.path[i])})
				}
			}
			// ...and the child cannot start before the parent's last
			// recorded instant of work.
			if sl.From < lastTo-auditTol(lastTo) {
				rep.add(Violation{Rule: "precedence", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From,
					Detail: fmt.Sprintf("node %d starts at %.6g before its ancestor finished at %.6g", sl.Node, sl.From, lastTo)})
			}
			hop = h
		}
		credited[hop] += taskCredits[idx]
		if want := sizeOn(j, hop); credited[hop] > want+auditTol(want) {
			rep.add(Violation{Rule: "speed-budget", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.To,
				Detail: fmt.Sprintf("node %d credited %.6g of a %.6g requirement (exceeds the node's speed budget)",
					sl.Node, credited[hop], want)})
		}
		if sl.To > lastTo {
			lastTo = sl.To
		}
	}
	if !js.Completed {
		return
	}
	final := journeys[len(journeys)-1]
	if jIdx != len(journeys)-1 {
		rep.add(Violation{Rule: "completion", Node: js.Leaf, Job: js.ID, Seq: js.seq, At: js.Completion,
			Detail: "completed task has no recorded work on its final path"})
		return
	}
	for i, v := range final.path {
		want := sizeOn(final, i)
		if credited[i] < want-auditTol(want) {
			rep.add(Violation{Rule: "completion", Node: v, Job: js.ID, Seq: js.seq, At: js.Completion,
				Detail: fmt.Sprintf("completed with only %.6g of %.6g credited on node %d", credited[i], want, v)})
		}
	}
	if math.Abs(lastTo-js.Completion) > auditTol(js.Completion) {
		rep.add(Violation{Rule: "completion", Node: js.Leaf, Job: js.ID, Seq: js.seq, At: js.Completion,
			Detail: fmt.Sprintf("last recorded work ends at %.6g but completion is %.6g", lastTo, js.Completion)})
	}
}
