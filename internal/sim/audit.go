package sim

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"treesched/internal/tree"
)

// The schedule-conformance auditor replays a recorded slice log and
// independently re-verifies the paper's model constraints:
//
//   - overlap: a node processes at most one task at any instant,
//   - precedence: store-and-forward — a task's work on a node may only
//     start after the full size was delivered by every ancestor hop,
//   - speed-budget: no node is credited more work over a window than
//     base speed × ∫ fault-factor dt allows for the task's requirement,
//   - release: no work before the task's release (immediate dispatch
//     is enforced structurally at injection, so work preceding release
//     is the observable breach),
//   - migration / non-migration: work must stay on the recorded path;
//     a change of leaf is legal only at a recorded recovery Migration,
//   - completion: a completed task's final journey carries the full
//     per-hop requirement and its last slice ends at the completion.
//
// The auditor shares no state with the event loop beyond the records
// themselves, so a bookkeeping bug in the engine surfaces here as a
// structured violation instead of silently skewing metrics.

// auditTol is the relative tolerance for audited comparisons; slice
// endpoints are computed with a different operation order than the
// engine's incremental sync, so the last few ulps differ.
func auditTol(x float64) float64 { return 1e-6 * math.Max(1, math.Abs(x)) }

// Violation is one audited constraint breach.
type Violation struct {
	// Rule is the violated constraint: overlap, precedence, off-path,
	// speed-budget, release, completion, migration, unknown-task or
	// malformed.
	Rule   string
	Node   tree.NodeID
	Job    int
	Seq    int64
	At     float64
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("[%s] t=%.6g node=%d job=%d seq=%d: %s", v.Rule, v.At, v.Node, v.Job, v.Seq, v.Detail)
}

// AuditReport is the auditor's structured result.
type AuditReport struct {
	Slices     int
	Tasks      int
	Violations []Violation
}

// OK reports whether the audited schedule satisfied every constraint.
func (r *AuditReport) OK() bool { return len(r.Violations) == 0 }

// Summary renders the report as a short human-readable diagnostic.
func (r *AuditReport) Summary() string {
	if r.OK() {
		return fmt.Sprintf("audit OK: %d slice(s) over %d task(s)", r.Slices, r.Tasks)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violation(s) in %d slice(s) over %d task(s)", len(r.Violations), r.Slices, r.Tasks)
	const show = 8
	for i, v := range r.Violations {
		if i == show {
			fmt.Fprintf(&b, "\n  ... and %d more", len(r.Violations)-show)
			break
		}
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return b.String()
}

func (r *AuditReport) add(v Violation) { r.Violations = append(r.Violations, v) }

// AuditError carries a failed audit through Drain's error return.
type AuditError struct {
	Report *AuditReport
}

func (e *AuditError) Error() string {
	return "sim: schedule audit failed: " + e.Report.Summary()
}

// Audit verifies the engine's own recorded slice log. It requires
// Options.RecordSlices and a non-PS policy (processor sharing has no
// discrete slices to audit).
func (s *Sim) Audit() *AuditReport {
	if !s.opts.RecordSlices || s.ps {
		panic("sim: Audit requires Options.RecordSlices and a non-PS policy")
	}
	return s.AuditSlices(s.slices)
}

// AuditSlices verifies an arbitrary slice log against this engine's
// tasks, topology, fault schedule and migration record — the log need
// not be the engine's own (tests feed deliberately corrupted copies).
func (s *Sim) AuditSlices(slices []Slice) *AuditReport {
	rep := &AuditReport{Slices: len(slices), Tasks: len(s.tasks)}
	s.auditPerNode(slices, rep)
	s.auditPerTask(slices, rep)
	return rep
}

// auditPerNode checks slice well-formedness and the ≤1-task-per-node
// exclusivity constraint.
func (s *Sim) auditPerNode(slices []Slice, rep *AuditReport) {
	perNode := make([][]Slice, s.tree.NumNodes())
	for _, sl := range slices {
		if int(sl.Node) <= 0 || int(sl.Node) >= s.tree.NumNodes() {
			rep.add(Violation{Rule: "malformed", Node: sl.Node, Job: sl.Job, Seq: sl.Seq, At: sl.From,
				Detail: fmt.Sprintf("slice on unknown node %d", sl.Node)})
			continue
		}
		if !(sl.To > sl.From) {
			rep.add(Violation{Rule: "malformed", Node: sl.Node, Job: sl.Job, Seq: sl.Seq, At: sl.From,
				Detail: fmt.Sprintf("empty or reversed slice [%.6g,%.6g]", sl.From, sl.To)})
			continue
		}
		perNode[sl.Node] = append(perNode[sl.Node], sl)
	}
	for v := range perNode {
		lst := perNode[v]
		sort.Slice(lst, func(i, j int) bool {
			if lst[i].From != lst[j].From {
				return lst[i].From < lst[j].From
			}
			return lst[i].To < lst[j].To
		})
		for i := 1; i < len(lst); i++ {
			prev, cur := lst[i-1], lst[i]
			if cur.From < prev.To-auditTol(prev.To) {
				rep.add(Violation{Rule: "overlap", Node: cur.Node, Job: cur.Job, Seq: cur.Seq, At: cur.From,
					Detail: fmt.Sprintf("tasks %d and %d overlap on node %d: [%.6g,%.6g] vs [%.6g,%.6g]",
						prev.Seq, cur.Seq, cur.Node, prev.From, prev.To, cur.From, cur.To)})
			}
		}
	}
}

// journey is one leg of a task's life: the path it followed and its
// leaf requirement there, until endsAt (a recovery re-dispatch) or
// forever for the final leg.
type journey struct {
	path     []tree.NodeID
	leafWork float64
	endsAt   float64
}

func (s *Sim) auditPerTask(slices []Slice, rep *AuditReport) {
	taskBySeq := make(map[int64]*JobState, len(s.tasks))
	for _, js := range s.tasks {
		taskBySeq[js.seq] = js
	}
	migsBySeq := make(map[int64][]Migration)
	for _, m := range s.migrations {
		migsBySeq[m.Seq] = append(migsBySeq[m.Seq], m)
	}
	bySeq := make(map[int64][]Slice)
	unknown := make(map[int64]bool)
	for _, sl := range slices {
		if _, ok := taskBySeq[sl.Seq]; !ok {
			if !unknown[sl.Seq] {
				unknown[sl.Seq] = true
				rep.add(Violation{Rule: "unknown-task", Node: sl.Node, Job: sl.Job, Seq: sl.Seq, At: sl.From,
					Detail: fmt.Sprintf("slice for task seq %d which was never injected", sl.Seq)})
			}
			continue
		}
		bySeq[sl.Seq] = append(bySeq[sl.Seq], sl)
	}
	// Iterate tasks in injection order for a deterministic report.
	for _, js := range s.tasks {
		s.auditTask(js, bySeq[js.seq], migsBySeq[js.seq], rep)
	}
}

// credit is the work a slice delivers to its task: base speed times
// the fault-factor integral over the window (plain duration when no
// fault schedule is configured).
func (s *Sim) credit(v tree.NodeID, from, to float64) float64 {
	base := s.nodes[v].baseSpeed
	if fs := s.opts.Faults; fs != nil {
		return base * fs.Integral(v, from, to)
	}
	return base * (to - from)
}

func (s *Sim) auditTask(js *JobState, slices []Slice, migs []Migration, rep *AuditReport) {
	sort.Slice(slices, func(i, j int) bool {
		if slices[i].From != slices[j].From {
			return slices[i].From < slices[j].From
		}
		return slices[i].Node < slices[j].Node
	})
	// Migrations arrive in time order; each one closes a journey whose
	// path and leaf requirement it recorded.
	journeys := make([]journey, 0, len(migs)+1)
	for _, m := range migs {
		journeys = append(journeys, journey{path: m.OldPath, leafWork: m.OldLeafWork, endsAt: m.At})
	}
	journeys = append(journeys, journey{path: js.Path, leafWork: js.LeafWork, endsAt: math.Inf(1)})
	sizeOn := func(j journey, h int) float64 {
		if h == len(j.path)-1 {
			return j.leafWork
		}
		return js.RouterSize
	}

	jIdx, hop := 0, 0
	credited := make([]float64, len(journeys[0].path))
	lastTo := js.Release
	for _, sl := range slices {
		if !(sl.To > sl.From) {
			continue // already reported as malformed
		}
		if sl.From < js.Release-auditTol(js.Release) {
			rep.add(Violation{Rule: "release", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From,
				Detail: fmt.Sprintf("work starts at %.6g before release %.6g", sl.From, js.Release)})
		}
		for jIdx < len(journeys)-1 && sl.From >= journeys[jIdx].endsAt {
			jIdx++
			hop = 0
			credited = make([]float64, len(journeys[jIdx].path))
		}
		j := journeys[jIdx]
		if sl.To > j.endsAt+auditTol(j.endsAt) {
			rep.add(Violation{Rule: "migration", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From,
				Detail: fmt.Sprintf("slice [%.6g,%.6g] extends past the re-dispatch at %.6g", sl.From, sl.To, j.endsAt)})
		}
		h := -1
		for i := hop; i < len(j.path); i++ {
			if j.path[i] == sl.Node {
				h = i
				break
			}
		}
		if h < 0 {
			rule, detail := "off-path", fmt.Sprintf("work on node %d which is not on the task's path", sl.Node)
			for i := 0; i < hop; i++ {
				if j.path[i] == sl.Node {
					rule = "precedence"
					detail = fmt.Sprintf("work on node %d (hop %d) after the task advanced to hop %d", sl.Node, i, hop)
					break
				}
			}
			rep.add(Violation{Rule: rule, Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From, Detail: detail})
			continue
		}
		if h > hop {
			// Store-and-forward: advancing to a deeper hop requires the
			// full size delivered on every hop above it...
			for i := hop; i < h; i++ {
				want := sizeOn(j, i)
				if credited[i] < want-auditTol(want) {
					rep.add(Violation{Rule: "precedence", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From,
						Detail: fmt.Sprintf("node %d starts with only %.6g of %.6g done on ancestor node %d",
							sl.Node, credited[i], want, j.path[i])})
				}
			}
			// ...and the child cannot start before the parent's last
			// recorded instant of work.
			if sl.From < lastTo-auditTol(lastTo) {
				rep.add(Violation{Rule: "precedence", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.From,
					Detail: fmt.Sprintf("node %d starts at %.6g before its ancestor finished at %.6g", sl.Node, sl.From, lastTo)})
			}
			hop = h
		}
		credited[hop] += s.credit(sl.Node, sl.From, sl.To)
		if want := sizeOn(j, hop); credited[hop] > want+auditTol(want) {
			rep.add(Violation{Rule: "speed-budget", Node: sl.Node, Job: js.ID, Seq: js.seq, At: sl.To,
				Detail: fmt.Sprintf("node %d credited %.6g of a %.6g requirement (exceeds the node's speed budget)",
					sl.Node, credited[hop], want)})
		}
		if sl.To > lastTo {
			lastTo = sl.To
		}
	}
	if !js.Completed {
		return
	}
	final := journeys[len(journeys)-1]
	if jIdx != len(journeys)-1 {
		rep.add(Violation{Rule: "completion", Node: js.Leaf, Job: js.ID, Seq: js.seq, At: js.Completion,
			Detail: "completed task has no recorded work on its final path"})
		return
	}
	for i, v := range final.path {
		want := sizeOn(final, i)
		if credited[i] < want-auditTol(want) {
			rep.add(Violation{Rule: "completion", Node: v, Job: js.ID, Seq: js.seq, At: js.Completion,
				Detail: fmt.Sprintf("completed with only %.6g of %.6g credited on node %d", credited[i], want, v)})
		}
	}
	if math.Abs(lastTo-js.Completion) > auditTol(js.Completion) {
		rep.add(Violation{Rule: "completion", Node: js.Leaf, Job: js.ID, Seq: js.seq, At: js.Completion,
			Detail: fmt.Sprintf("last recorded work ends at %.6g but completion is %.6g", lastTo, js.Completion)})
	}
}
