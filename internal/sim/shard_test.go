package sim

import (
	"math"
	"reflect"
	"testing"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// oblRR is a round-robin assigner carrying the oblivious marker, so
// replay takes the fully parallel per-shard injection path.
type oblRR struct{ i int }

func (o *oblRR) Name() string        { return "oblRR" }
func (o *oblRR) ObliviousAssigner() {}
func (o *oblRR) Assign(q *Query, _ *Arrival) tree.NodeID {
	ls := q.Tree().Leaves()
	l := ls[o.i%len(ls)]
	o.i++
	return l
}

// leastVolume is a querying assigner (reads live engine state), so
// replay dispatches sequentially and only the drain runs in parallel.
type leastVolume struct{}

func (leastVolume) Name() string { return "leastVolume" }
func (leastVolume) Assign(q *Query, _ *Arrival) tree.NodeID {
	best, bestV := tree.None, math.Inf(1)
	for _, l := range q.Tree().Leaves() {
		if v := q.AvailVolume(l); v < bestV {
			best, bestV = l, v
		}
	}
	return best
}

// runModes runs the same (tree, trace, opts) sequentially and with
// the given worker counts and demands bit-identical results: per-job
// metrics, summary stats, the slice log and the migration log.
func runModes(t *testing.T, tr *tree.Tree, trace *workload.Trace, mkAsg func() Assigner, opts Options, workers ...int) {
	t.Helper()
	opts.Workers = 1
	seq, err := Run(tr, trace, mkAsg(), opts)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	seqSlices := append([]Slice(nil), seq.Sim.Slices()...)
	seqMigs := append([]Migration(nil), seq.Sim.Migrations()...)
	for _, w := range workers {
		opts.Workers = w
		par, err := Run(tr, trace, mkAsg(), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(par.Jobs, seq.Jobs) {
			t.Fatalf("workers=%d: per-job metrics differ from sequential", w)
		}
		if par.Stats != seq.Stats {
			t.Fatalf("workers=%d: stats differ:\n  seq %+v\n  par %+v", w, seq.Stats, par.Stats)
		}
		if got := par.Sim.Slices(); !reflect.DeepEqual(got, seqSlices) && !(len(got) == 0 && len(seqSlices) == 0) {
			t.Fatalf("workers=%d: slice logs differ (%d vs %d slices)", w, len(got), len(seqSlices))
		}
		if got := par.Sim.Migrations(); !reflect.DeepEqual(got, seqMigs) && !(len(got) == 0 && len(seqMigs) == 0) {
			t.Fatalf("workers=%d: migration logs differ", w)
		}
	}
}

func shardTestTrace(t *testing.T, seed uint64, n int, cap float64) *workload.Trace {
	t.Helper()
	trace, err := workload.Poisson(rng.New(seed), workload.GenConfig{
		N: n, Size: workload.UniformSize{Lo: 1, Hi: 16}, Load: 0.9, Capacity: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestShardedEquivalenceOblivious(t *testing.T) {
	tr := tree.FatTree(8, 1, 2) // 8 root-adjacent subtrees, 16 leaves
	trace := shardTestTrace(t, 1, 400, 8)
	for _, pol := range []Policy{nil, FIFO{}, SRPT{}, PS{}, LCFS{}} {
		opts := Options{Policy: pol, RecordSlices: true}
		runModes(t, tr, trace, func() Assigner { return &oblRR{} }, opts, 2, 3, 8, 16)
	}
}

func TestShardedEquivalenceQuerying(t *testing.T) {
	tr := tree.FatTree(4, 2, 2)
	trace := shardTestTrace(t, 2, 400, 4)
	runModes(t, tr, trace, func() Assigner { return leastVolume{} },
		Options{RecordSlices: true, Instrument: true, SelfCheck: true}, 2, 4, 8)
}

func TestShardedEquivalenceFaults(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 3, 300, 4)
	ra := tr.RootAdjacent()
	leaves := tr.Leaves()
	fs := compile(t, tr,
		faults.Event{Kind: faults.Outage, Node: ra[0], Start: 5, End: 9},
		faults.Event{Kind: faults.Brownout, Node: leaves[3], Start: 2, End: 40, Factor: 0.5},
		faults.Event{Kind: faults.Outage, Node: leaves[6], Start: 10, End: 12},
	)
	runModes(t, tr, trace, func() Assigner { return &oblRR{} },
		Options{Faults: fs, RecordSlices: true}, 2, 4)
	runModes(t, tr, trace, func() Assigner { return leastVolume{} },
		Options{Faults: fs, RecordSlices: true}, 2, 4)
}

// Leaf death + redispatch forces the interleaved sequential fallback;
// the Workers knob must still reproduce the sequential schedule,
// migrations included.
func TestShardedEquivalenceRedispatch(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 4, 300, 4)
	fs := compile(t, tr,
		faults.Event{Kind: faults.LeafLoss, Node: tr.Leaves()[0], Start: 15},
		faults.Event{Kind: faults.Outage, Node: tr.RootAdjacent()[1], Start: 5, End: 9},
	)
	runModes(t, tr, trace, func() Assigner { return &oblRR{} },
		Options{Faults: fs, Recovery: RecoverRedispatch, RecordSlices: true}, 2, 4)
}

// Observer forces the lockstep interleaved fallback: callbacks must
// fire in the same global order as the sequential engine.
func TestShardedObserverLockstep(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 5, 200, 4)
	type fin struct {
		at     float64
		active int
	}
	record := func(opts Options) []fin {
		var log []fin
		opts.Observer = func(s *Sim) {
			log = append(log, fin{s.Now(), s.Active()})
		}
		if _, err := Run(tr, trace, &oblRR{}, opts); err != nil {
			t.Fatal(err)
		}
		return log
	}
	seq := record(Options{Workers: 1})
	par := record(Options{Workers: 4})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("observer callback order differs: %d vs %d entries", len(seq), len(par))
	}
}

// A single root-adjacent subtree (Line) degenerates to one shard; the
// parallel path must cope with fewer shards than workers.
func TestShardedSingleShard(t *testing.T) {
	tr := tree.Line(3)
	trace := shardTestTrace(t, 6, 100, 1)
	runModes(t, tr, trace, func() Assigner { return &oblRR{} }, Options{RecordSlices: true}, 2, 8)
}

func TestShardedAuditClean(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 7, 200, 4)
	fs := compile(t, tr,
		faults.Event{Kind: faults.Brownout, Node: tr.Leaves()[1], Start: 3, End: 30, Factor: 0.25},
	)
	res, err := Run(tr, trace, &oblRR{}, Options{Faults: fs, RecordSlices: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Sim.Audit(); !rep.OK() {
		t.Fatalf("audit of sharded run: %s", rep.Summary())
	}
	s := res.Sim
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	total := 0
	for k := 0; k < s.NumShards(); k++ {
		total += len(s.ShardSlices(k))
		if rep := s.AuditShard(k); !rep.OK() {
			t.Fatalf("audit of shard %d: %s", k, rep.Summary())
		}
	}
	if total != len(s.Slices()) {
		t.Fatalf("shard slices sum to %d, full log has %d", total, len(s.Slices()))
	}
}

// Warm parallel replay must stay cheap: the per-shard event loops are
// allocation-free, so steady-state cost is just the worker spawn.
func TestShardedSteadyStateAllocs(t *testing.T) {
	tr := tree.FatTree(8, 1, 2)
	trace := shardTestTrace(t, 8, 300, 8)
	opts := Options{Workers: 4}
	s := New(tr, opts)
	asg := &oblRR{}
	replay := func() {
		s.Reset(opts)
		asg.i = 0
		if err := ReplayOn(s, trace, asg); err != nil {
			t.Fatal(err)
		}
	}
	replay() // warm the arenas
	allocs := testing.AllocsPerRun(20, replay)
	// Budget: goroutine + waitgroup machinery for up to 3 helpers.
	if allocs > 16 {
		t.Fatalf("parallel steady-state replay allocates %.1f allocs/run, want <= 16", allocs)
	}
}

// The dispatch prepass must surface assigner errors with the same
// message as the sequential path.
func TestShardedAssignerError(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 9, 20, 4)
	bad := badOblivious{node: tr.RootAdjacent()[0]}
	seqErr := ReplayOn(New(tr, Options{Workers: 1}), trace, bad)
	parErr := ReplayOn(New(tr, Options{Workers: 4}), trace, bad)
	if seqErr == nil || parErr == nil {
		t.Fatalf("want errors from non-leaf assignment, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error mismatch:\n  seq %v\n  par %v", seqErr, parErr)
	}
}

type badOblivious struct{ node tree.NodeID }

func (badOblivious) Name() string                          { return "bad" }
func (badOblivious) ObliviousAssigner()                    {}
func (b badOblivious) Assign(*Query, *Arrival) tree.NodeID { return b.node }
