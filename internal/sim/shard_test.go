package sim

import (
	"math"
	"reflect"
	"testing"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// oblRR is a round-robin assigner carrying the oblivious marker, so
// replay takes the fully parallel per-shard injection path.
type oblRR struct{ i int }

func (o *oblRR) Name() string       { return "oblRR" }
func (o *oblRR) ObliviousAssigner() {}
func (o *oblRR) Assign(q *Query, _ *Arrival) tree.NodeID {
	ls := q.Tree().Leaves()
	l := ls[o.i%len(ls)]
	o.i++
	return l
}

// leastVolume is a querying assigner (reads live engine state), so
// replay dispatches sequentially and only the drain runs in parallel.
type leastVolume struct{}

func (leastVolume) Name() string { return "leastVolume" }
func (leastVolume) Assign(q *Query, _ *Arrival) tree.NodeID {
	best, bestV := tree.None, math.Inf(1)
	for _, l := range q.Tree().Leaves() {
		if v := q.AvailVolume(l); v < bestV {
			best, bestV = l, v
		}
	}
	return best
}

// runModes runs the same (tree, trace, opts) sequentially and with
// the given worker counts and demands bit-identical results: per-job
// metrics, summary stats, the slice log and the migration log.
func runModes(t *testing.T, tr *tree.Tree, trace *workload.Trace, mkAsg func() Assigner, opts Options, workers ...int) {
	t.Helper()
	opts.Workers = 1
	seq, err := Run(tr, trace, mkAsg(), opts)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	seqSlices := append([]Slice(nil), seq.Sim.Slices()...)
	seqMigs := append([]Migration(nil), seq.Sim.Migrations()...)
	for _, w := range workers {
		opts.Workers = w
		par, err := Run(tr, trace, mkAsg(), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(par.Jobs, seq.Jobs) {
			t.Fatalf("workers=%d: per-job metrics differ from sequential", w)
		}
		if par.Stats != seq.Stats {
			t.Fatalf("workers=%d: stats differ:\n  seq %+v\n  par %+v", w, seq.Stats, par.Stats)
		}
		if got := par.Sim.Slices(); !reflect.DeepEqual(got, seqSlices) && !(len(got) == 0 && len(seqSlices) == 0) {
			t.Fatalf("workers=%d: slice logs differ (%d vs %d slices)", w, len(got), len(seqSlices))
		}
		if got := par.Sim.Migrations(); !reflect.DeepEqual(got, seqMigs) && !(len(got) == 0 && len(seqMigs) == 0) {
			t.Fatalf("workers=%d: migration logs differ", w)
		}
	}
}

func shardTestTrace(t *testing.T, seed uint64, n int, cap float64) *workload.Trace {
	t.Helper()
	trace, err := workload.Poisson(rng.New(seed), workload.GenConfig{
		N: n, Size: workload.UniformSize{Lo: 1, Hi: 16}, Load: 0.9, Capacity: cap,
	})
	if err != nil {
		t.Fatal(err)
	}
	return trace
}

func TestShardedEquivalenceOblivious(t *testing.T) {
	tr := tree.FatTree(8, 1, 2) // 8 root-adjacent subtrees, 16 leaves
	trace := shardTestTrace(t, 1, 400, 8)
	for _, pol := range []Policy{nil, FIFO{}, SRPT{}, PS{}, LCFS{}} {
		opts := Options{Policy: pol, RecordSlices: true}
		runModes(t, tr, trace, func() Assigner { return &oblRR{} }, opts, 2, 3, 8, 16)
	}
}

func TestShardedEquivalenceQuerying(t *testing.T) {
	tr := tree.FatTree(4, 2, 2)
	trace := shardTestTrace(t, 2, 400, 4)
	runModes(t, tr, trace, func() Assigner { return leastVolume{} },
		Options{RecordSlices: true, Instrument: true, SelfCheck: true}, 2, 4, 8)
}

func TestShardedEquivalenceFaults(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 3, 300, 4)
	ra := tr.RootAdjacent()
	leaves := tr.Leaves()
	fs := compile(t, tr,
		faults.Event{Kind: faults.Outage, Node: ra[0], Start: 5, End: 9},
		faults.Event{Kind: faults.Brownout, Node: leaves[3], Start: 2, End: 40, Factor: 0.5},
		faults.Event{Kind: faults.Outage, Node: leaves[6], Start: 10, End: 12},
	)
	runModes(t, tr, trace, func() Assigner { return &oblRR{} },
		Options{Faults: fs, RecordSlices: true}, 2, 4)
	runModes(t, tr, trace, func() Assigner { return leastVolume{} },
		Options{Faults: fs, RecordSlices: true}, 2, 4)
}

// Leaf death + redispatch forces the interleaved sequential fallback;
// the Workers knob must still reproduce the sequential schedule,
// migrations included.
func TestShardedEquivalenceRedispatch(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 4, 300, 4)
	fs := compile(t, tr,
		faults.Event{Kind: faults.LeafLoss, Node: tr.Leaves()[0], Start: 15},
		faults.Event{Kind: faults.Outage, Node: tr.RootAdjacent()[1], Start: 5, End: 9},
	)
	runModes(t, tr, trace, func() Assigner { return &oblRR{} },
		Options{Faults: fs, Recovery: RecoverRedispatch, RecordSlices: true}, 2, 4)
}

// Observer forces the lockstep interleaved fallback: callbacks must
// fire in the same global order as the sequential engine.
func TestShardedObserverLockstep(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 5, 200, 4)
	type fin struct {
		at     float64
		active int
	}
	record := func(opts Options) []fin {
		var log []fin
		opts.Observer = func(s *Sim) {
			log = append(log, fin{s.Now(), s.Active()})
		}
		if _, err := Run(tr, trace, &oblRR{}, opts); err != nil {
			t.Fatal(err)
		}
		return log
	}
	seq := record(Options{Workers: 1})
	par := record(Options{Workers: 4})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("observer callback order differs: %d vs %d entries", len(seq), len(par))
	}
}

// A single root-adjacent subtree (Line) degenerates to one shard; the
// parallel path must cope with fewer shards than workers.
func TestShardedSingleShard(t *testing.T) {
	tr := tree.Line(3)
	trace := shardTestTrace(t, 6, 100, 1)
	runModes(t, tr, trace, func() Assigner { return &oblRR{} }, Options{RecordSlices: true}, 2, 8)
}

func TestShardedAuditClean(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 7, 200, 4)
	fs := compile(t, tr,
		faults.Event{Kind: faults.Brownout, Node: tr.Leaves()[1], Start: 3, End: 30, Factor: 0.25},
	)
	res, err := Run(tr, trace, &oblRR{}, Options{Faults: fs, RecordSlices: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Sim.Audit(); !rep.OK() {
		t.Fatalf("audit of sharded run: %s", rep.Summary())
	}
	s := res.Sim
	if s.NumShards() != 4 {
		t.Fatalf("NumShards = %d, want 4", s.NumShards())
	}
	total := 0
	for k := 0; k < s.NumShards(); k++ {
		total += len(s.ShardSlices(k))
		if rep := s.AuditShard(k); !rep.OK() {
			t.Fatalf("audit of shard %d: %s", k, rep.Summary())
		}
	}
	if total != len(s.Slices()) {
		t.Fatalf("shard slices sum to %d, full log has %d", total, len(s.Slices()))
	}
}

// Warm parallel replay must stay cheap: the per-shard event loops are
// allocation-free, so steady-state cost is just the worker spawn.
func TestShardedSteadyStateAllocs(t *testing.T) {
	tr := tree.FatTree(8, 1, 2)
	trace := shardTestTrace(t, 8, 300, 8)
	opts := Options{Workers: 4}
	s := New(tr, opts)
	asg := &oblRR{}
	replay := func() {
		s.Reset(opts)
		asg.i = 0
		if err := ReplayOn(s, trace, asg); err != nil {
			t.Fatal(err)
		}
	}
	replay() // warm the arenas
	allocs := testing.AllocsPerRun(20, replay)
	// Budget: goroutine + waitgroup machinery for up to 3 helpers.
	if allocs > 16 {
		t.Fatalf("parallel steady-state replay allocates %.1f allocs/run, want <= 16", allocs)
	}
}

// The dispatch prepass must surface assigner errors with the same
// message as the sequential path.
func TestShardedAssignerError(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 9, 20, 4)
	bad := badOblivious{node: tr.RootAdjacent()[0]}
	seqErr := ReplayOn(New(tr, Options{Workers: 1}), trace, bad)
	parErr := ReplayOn(New(tr, Options{Workers: 4}), trace, bad)
	if seqErr == nil || parErr == nil {
		t.Fatalf("want errors from non-leaf assignment, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error mismatch:\n  seq %v\n  par %v", seqErr, parErr)
	}
}

type badOblivious struct{ node tree.NodeID }

func (badOblivious) Name() string                          { return "bad" }
func (badOblivious) ObliviousAssigner()                    {}
func (b badOblivious) Assign(*Query, *Arrival) tree.NodeID { return b.node }

// jsqLeaf is a second querying assigner: join-the-shortest-queue by
// available count on the leaf, a different query mix than leastVolume.
type jsqLeaf struct{}

func (jsqLeaf) Name() string { return "jsqLeaf" }
func (jsqLeaf) Assign(q *Query, a *Arrival) tree.NodeID {
	best, bestN := tree.None, int(^uint(0)>>1)
	for _, l := range q.Tree().Leaves() {
		if n := q.AvailCount(l); n < bestN {
			best, bestN = l, n
		}
	}
	_, _ = q.AvailStats(q.Tree().Branch(best), a.Size, a.Release, a.ID)
	return best
}

// The parallel querying-dispatch path (Workers > 1, no oblivious
// marker) must be bit-identical to sequential across policies and a
// second query mix; doubles as race-detector stress.
func TestShardedEquivalenceQueryingPolicies(t *testing.T) {
	tr := tree.FatTree(8, 1, 2)
	trace := shardTestTrace(t, 20, 400, 8)
	for _, pol := range []Policy{nil, SRPT{}, PS{}} {
		opts := Options{Policy: pol, RecordSlices: true}
		runModes(t, tr, trace, func() Assigner { return jsqLeaf{} }, opts, 2, 4, 8)
	}
}

// A querying assigner's injection errors must carry the same message
// on the parallel dispatch path as on the sequential one.
type badQuerying struct{ node tree.NodeID }

func (badQuerying) Name() string { return "badQuerying" }
func (b badQuerying) Assign(q *Query, _ *Arrival) tree.NodeID {
	_ = q.AvailCount(b.node)
	return b.node
}

func TestShardedQueryingAssignerError(t *testing.T) {
	tr := tree.FatTree(4, 1, 2)
	trace := shardTestTrace(t, 9, 20, 4)
	bad := badQuerying{node: tr.RootAdjacent()[0]}
	seqErr := ReplayOn(New(tr, Options{Workers: 1}), trace, bad)
	parErr := ReplayOn(New(tr, Options{Workers: 4}), trace, bad)
	if seqErr == nil || parErr == nil {
		t.Fatalf("want errors from non-leaf assignment, got seq=%v par=%v", seqErr, parErr)
	}
	if seqErr.Error() != parErr.Error() {
		t.Fatalf("error mismatch:\n  seq %v\n  par %v", seqErr, parErr)
	}
}

// Streaming entry points with a plain TraceSource and no hooks take
// the sharded-parallel path; generator-fed full-retention runs advance
// shards in parallel between arrivals. Both must equal sequential.
func TestStreamParallelEquivalence(t *testing.T) {
	tr := tree.FatTree(4, 2, 2)
	trace := shardTestTrace(t, 22, 300, 4)
	run := func(workers int) *Result {
		res, err := RunStream(tr, workload.NewTraceSource(trace), jsqLeaf{}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := run(1)
	for _, w := range []int{2, 4} {
		par := run(w)
		if !reflect.DeepEqual(par.Jobs, seq.Jobs) || par.Stats != seq.Stats {
			t.Fatalf("workers=%d: trace-source streaming run differs from sequential", w)
		}
	}
	gen := func(workers int) *Result {
		src, err := workload.NewPoissonSource(rng.New(33), workload.GenConfig{
			N: 300, Size: workload.UniformSize{Lo: 1, Hi: 16}, Load: 0.9, Capacity: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunStream(tr, src, jsqLeaf{}, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	gseq := gen(1)
	gpar := gen(4)
	if !reflect.DeepEqual(gpar.Jobs, gseq.Jobs) || gpar.Stats != gseq.Stats {
		t.Fatal("generator-fed streaming run differs from sequential")
	}
}

// --- sub-shard splitting ---

// skewedTree builds a deliberately unbalanced topology: one fat
// root-child subtree (4 child routers x 4 leaves each) that would
// serialize a root-child-partition run, plus a small 2-leaf sibling.
func skewedTree() *tree.Tree {
	b := tree.NewBuilder()
	fat := b.AddRouter(b.Root())
	for i := 0; i < 4; i++ {
		c := b.AddRouter(fat)
		for j := 0; j < 4; j++ {
			b.AddLeaf(c)
		}
	}
	small := b.AddRouter(b.Root())
	b.AddLeaf(small)
	b.AddLeaf(small)
	return b.MustFinalize()
}

func TestSplitShardsPartition(t *testing.T) {
	tr := skewedTree()
	if n := New(tr, Options{}).NumShards(); n != 2 {
		t.Fatalf("unsplit NumShards = %d, want 2", n)
	}
	// Threshold 4: the fat subtree (16 leaves, 4 children) splits into
	// a head shard plus 4 sub-shards; the 2-leaf sibling does not.
	if n := New(tr, Options{SplitShards: 4}).NumShards(); n != 6 {
		t.Fatalf("split NumShards = %d, want 6", n)
	}
	// Threshold above every subtree's leaf count: no change.
	if n := New(tr, Options{SplitShards: 100}).NumShards(); n != 2 {
		t.Fatalf("high-threshold NumShards = %d, want 2", n)
	}
}

// Sequential and parallel execution of the same split partition must
// be bit-identical for oblivious and querying assigners alike.
func TestSplitShardsEquivalence(t *testing.T) {
	tr := skewedTree()
	trace := shardTestTrace(t, 23, 400, 6)
	opts := Options{SplitShards: 4, RecordSlices: true}
	runModes(t, tr, trace, func() Assigner { return &oblRR{} }, opts, 2, 4, 6)
	runModes(t, tr, trace, func() Assigner { return leastVolume{} }, opts, 2, 4, 6)
}

func TestSplitShardsFaults(t *testing.T) {
	tr := skewedTree()
	trace := shardTestTrace(t, 24, 300, 6)
	fat := tr.RootAdjacent()[0]
	fs := compile(t, tr,
		faults.Event{Kind: faults.Outage, Node: fat, Start: 5, End: 9},
		faults.Event{Kind: faults.Brownout, Node: tr.Leaves()[3], Start: 2, End: 40, Factor: 0.5},
	)
	opts := Options{SplitShards: 4, Faults: fs, RecordSlices: true}
	runModes(t, tr, trace, func() Assigner { return &oblRR{} }, opts, 2, 4)
	runModes(t, tr, trace, func() Assigner { return jsqLeaf{} }, opts, 2, 4)
}

// Against an unsplit run, per-job metrics are exactly equal (every
// node sees identical arrival instants either way); the integral
// statistics may differ in final ulps from the extra handoff
// quadrature breakpoints, and the slice log records the same
// processing at possibly coarser granularity (see below).
func TestSplitVsUnsplitJobs(t *testing.T) {
	tr := skewedTree()
	trace := shardTestTrace(t, 25, 400, 6)
	for _, mk := range []func() Assigner{
		func() Assigner { return &oblRR{} },
		func() Assigner { return leastVolume{} },
	} {
		base, err := Run(tr, trace, mk(), Options{RecordSlices: true})
		if err != nil {
			t.Fatal(err)
		}
		split, err := Run(tr, trace, mk(), Options{RecordSlices: true, SplitShards: 4, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base.Jobs, split.Jobs) {
			t.Fatal("per-job metrics differ between split and unsplit partitions")
		}
		rel := math.Abs(split.Stats.FracFlow-base.Stats.FracFlow) / math.Max(1, base.Stats.FracFlow)
		if rel > 1e-9 {
			t.Fatalf("FracFlow drifted beyond ulps: %v vs %v", split.Stats.FracFlow, base.Stats.FracFlow)
		}
		if split.Stats.Events != base.Stats.Events || split.Stats.Completed != base.Stats.Completed {
			t.Fatalf("event/completion counts differ: %+v vs %+v", split.Stats, base.Stats)
		}
		// Slice logs are not entry-for-entry comparable across
		// partitions (a head shard's single-node log merges adjacent
		// slices that interleaved entries keep separate in the unsplit
		// log); the processed time they record must agree.
		sliceTime := func(sl []Slice) float64 {
			var sum float64
			for i := range sl {
				sum += sl[i].To - sl[i].From
			}
			return sum
		}
		st, bt := sliceTime(split.Sim.Slices()), sliceTime(base.Sim.Slices())
		if math.Abs(st-bt) > 1e-9*math.Max(1, bt) {
			t.Fatalf("recorded processing time differs: %v vs %v", st, bt)
		}
	}
}

// The whole-run audit still passes under splitting; the per-shard
// audit is undefined (a task's slices span head and sub-shard logs).
func TestSplitAudit(t *testing.T) {
	tr := skewedTree()
	trace := shardTestTrace(t, 26, 200, 6)
	res, err := Run(tr, trace, &oblRR{}, Options{SplitShards: 4, RecordSlices: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep := res.Sim.Audit(); !rep.OK() {
		t.Fatalf("audit of split run: %s", rep.Summary())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AuditShard did not panic under an active split partition")
		}
	}()
	res.Sim.AuditShard(0)
}

// Reset across differing SplitShards values rebuilds the partition.
func TestSplitReset(t *testing.T) {
	tr := skewedTree()
	trace := shardTestTrace(t, 27, 200, 6)
	s := New(tr, Options{})
	if _, err := RunOn(s, trace, &oblRR{}); err != nil {
		t.Fatal(err)
	}
	s.Reset(Options{SplitShards: 4, Workers: 4})
	if s.NumShards() != 6 {
		t.Fatalf("NumShards after split Reset = %d, want 6", s.NumShards())
	}
	res, err := RunOn(s, trace, &oblRR{})
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(tr, Options{})
	base, err := RunOn(s2, trace, &oblRR{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Jobs, base.Jobs) {
		t.Fatal("jobs differ after Reset into a split partition")
	}
	s.Reset(Options{})
	if s.NumShards() != 2 {
		t.Fatalf("NumShards after unsplit Reset = %d, want 2", s.NumShards())
	}
}
