package tree

import (
	"errors"
	"testing"
	"testing/quick"

	"treesched/internal/rng"
)

// twoLevel builds root -> 2 routers -> 2 leaves each.
func twoLevel(t *testing.T) *Tree {
	t.Helper()
	b := NewBuilder()
	r1 := b.AddRouter(b.Root())
	r2 := b.AddRouter(b.Root())
	b.AddLeaf(r1)
	b.AddLeaf(r1)
	b.AddLeaf(r2)
	b.AddLeaf(r2)
	tr, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuilderBasics(t *testing.T) {
	tr := twoLevel(t)
	if tr.NumNodes() != 7 {
		t.Fatalf("NumNodes = %d, want 7", tr.NumNodes())
	}
	if got := len(tr.Leaves()); got != 4 {
		t.Fatalf("leaves = %d, want 4", got)
	}
	if got := len(tr.RootAdjacent()); got != 2 {
		t.Fatalf("rootAdjacent = %d, want 2", got)
	}
	if tr.Height() != 2 {
		t.Fatalf("Height = %d, want 2", tr.Height())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLeafAtRootRejected(t *testing.T) {
	b := NewBuilder()
	b.AddLeaf(b.Root())
	if _, err := b.Finalize(); !errors.Is(err, ErrLeafAtRoot) {
		t.Fatalf("err = %v, want ErrLeafAtRoot", err)
	}
}

func TestNoLeavesRejected(t *testing.T) {
	b := NewBuilder()
	if _, err := b.Finalize(); !errors.Is(err, ErrNoLeaves) {
		t.Fatalf("err = %v, want ErrNoLeaves", err)
	}
}

func TestChildlessRouterRejected(t *testing.T) {
	b := NewBuilder()
	r := b.AddRouter(b.Root())
	b.AddLeaf(r)
	b.AddRouter(b.Root()) // dangling router
	if _, err := b.Finalize(); err == nil {
		t.Fatal("childless router accepted")
	}
}

func TestChildUnderLeafRejected(t *testing.T) {
	b := NewBuilder()
	r := b.AddRouter(b.Root())
	l := b.AddLeaf(r)
	b.AddLeaf(l)
	if _, err := b.Finalize(); err == nil {
		t.Fatal("child under leaf accepted")
	}
}

func TestUnknownParentRejected(t *testing.T) {
	b := NewBuilder()
	b.AddRouter(99)
	if _, err := b.Finalize(); err == nil {
		t.Fatal("unknown parent accepted")
	}
}

func TestSetSpeedValidation(t *testing.T) {
	b := NewBuilder()
	r := b.AddRouter(b.Root())
	b.AddLeaf(r)
	b.SetSpeed(r, -1)
	if _, err := b.Finalize(); err == nil {
		t.Fatal("negative speed accepted")
	}
}

func TestBranchAndPath(t *testing.T) {
	tr := twoLevel(t)
	for _, leaf := range tr.Leaves() {
		path := tr.Path(leaf)
		if len(path) != 2 {
			t.Fatalf("path length %d, want 2", len(path))
		}
		if path[0] != tr.Branch(leaf) {
			t.Fatalf("path[0]=%d, Branch=%d", path[0], tr.Branch(leaf))
		}
		if path[1] != leaf {
			t.Fatalf("path does not end at leaf")
		}
		if tr.Depth(leaf) != 2 {
			t.Fatalf("leaf depth %d, want 2", tr.Depth(leaf))
		}
	}
}

func TestPathPanicsOnNonLeaf(t *testing.T) {
	tr := twoLevel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Path on router did not panic")
		}
	}()
	tr.Path(tr.RootAdjacent()[0])
}

func TestSubtreeLeaves(t *testing.T) {
	tr := twoLevel(t)
	r := tr.RootAdjacent()[0]
	got := tr.SubtreeLeaves(r)
	if len(got) != 2 {
		t.Fatalf("SubtreeLeaves = %v, want 2 leaves", got)
	}
	all := tr.SubtreeLeaves(tr.Root())
	if len(all) != 4 {
		t.Fatalf("SubtreeLeaves(root) = %d, want 4", len(all))
	}
}

func TestWithSpeeds(t *testing.T) {
	tr := FatTree(2, 2, 1)
	aug := tr.WithSpeeds(1.1, 1.21, 1.3)
	for i := 0; i < aug.NumNodes(); i++ {
		n := aug.Node(NodeID(i))
		var want float64
		switch {
		case n.Kind == KindRoot:
			want = 1
		case n.Depth == 1:
			want = 1.1
		case n.Kind == KindLeaf:
			want = 1.3
		default:
			want = 1.21
		}
		if n.Speed != want {
			t.Fatalf("node %d speed %v, want %v", i, n.Speed, want)
		}
	}
	// Original must be untouched.
	for i := 0; i < tr.NumNodes(); i++ {
		if tr.Node(NodeID(i)).Speed != 1 {
			t.Fatal("WithSpeeds mutated the original tree")
		}
	}
}

func TestWithSpeedsPanicsOnNonPositive(t *testing.T) {
	tr := twoLevel(t)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive speed did not panic")
		}
	}()
	tr.WithSpeeds(0, 1, 1)
}

func TestFatTreeShape(t *testing.T) {
	tr := FatTree(2, 3, 2)
	if got, want := len(tr.Leaves()), 2*2*2*2; got != want {
		t.Fatalf("leaves = %d, want %d", got, want)
	}
	for _, l := range tr.Leaves() {
		if tr.Depth(l) != 4 {
			t.Fatalf("leaf depth %d, want 4", tr.Depth(l))
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLineShape(t *testing.T) {
	tr := Line(5)
	if len(tr.Leaves()) != 1 {
		t.Fatalf("Line leaves = %d", len(tr.Leaves()))
	}
	if tr.Depth(tr.Leaves()[0]) != 6 {
		t.Fatalf("Line leaf depth = %d, want 6", tr.Depth(tr.Leaves()[0]))
	}
}

func TestStarShape(t *testing.T) {
	tr := Star(8)
	if len(tr.Leaves()) != 8 {
		t.Fatalf("Star leaves = %d", len(tr.Leaves()))
	}
	for _, l := range tr.Leaves() {
		if tr.Depth(l) != 2 {
			t.Fatalf("Star leaf depth = %d", tr.Depth(l))
		}
	}
}

func TestCaterpillarShape(t *testing.T) {
	tr := Caterpillar(4, 3)
	if len(tr.Leaves()) != 12 {
		t.Fatalf("Caterpillar leaves = %d, want 12", len(tr.Leaves()))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomTreesValid(t *testing.T) {
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		tr := Random(r, RandomConfig{Branches: 1 + r.Intn(4), MaxDepth: 2 + r.Intn(5), MaxChildren: 1 + r.Intn(4), LeafProb: 0.4})
		if err := tr.Validate(); err != nil {
			t.Fatalf("random tree %d invalid: %v", i, err)
		}
		if len(tr.Leaves()) == 0 {
			t.Fatalf("random tree %d has no leaves", i)
		}
	}
}

func TestLeafIndexRoundTrip(t *testing.T) {
	tr := FatTree(3, 2, 2)
	for i, l := range tr.Leaves() {
		if tr.LeafIndex(l) != i {
			t.Fatalf("LeafIndex(%d) = %d, want %d", l, tr.LeafIndex(l), i)
		}
	}
	if tr.LeafIndex(tr.Root()) != -1 {
		t.Fatal("LeafIndex(root) != -1")
	}
}

func TestBroomstickReduction(t *testing.T) {
	tr := FatTree(2, 2, 2)
	bs, err := Reduce(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := bs.Reduced.Validate(); err != nil {
		t.Fatal(err)
	}
	if !IsBroomstick(bs.Reduced) {
		t.Fatal("Reduce did not produce a broomstick")
	}
	if len(bs.Reduced.Leaves()) != len(tr.Leaves()) {
		t.Fatalf("leaf count changed: %d -> %d", len(tr.Leaves()), len(bs.Reduced.Leaves()))
	}
	// Depth increases by exactly 2 for every leaf.
	for _, rl := range bs.Reduced.Leaves() {
		ol := bs.ToOriginal[bs.Reduced.LeafIndex(rl)]
		if bs.Reduced.Depth(rl) != tr.Depth(ol)+2 {
			t.Fatalf("leaf %d depth %d, original %d depth %d: want +2",
				rl, bs.Reduced.Depth(rl), ol, tr.Depth(ol))
		}
		// Correspondence is a bijection.
		if bs.ToReduced[tr.LeafIndex(ol)] != rl {
			t.Fatal("leaf correspondence is not a bijection")
		}
	}
}

func TestBroomstickHandleLength(t *testing.T) {
	// Single branch, leaves at depth 2 and 4 => ell = 3 edges from v0,
	// handle must have nodes v0..v4 (5 routers).
	b := NewBuilder()
	v0 := b.AddRouter(b.Root())
	b.AddLeaf(v0) // depth 2, ell' = 1
	v1 := b.AddRouter(v0)
	v2 := b.AddRouter(v1)
	b.AddLeaf(v2) // depth 4, ell' = 3
	tr := b.MustFinalize()

	bs, err := Reduce(tr)
	if err != nil {
		t.Fatal(err)
	}
	routers := 0
	for i := 0; i < bs.Reduced.NumNodes(); i++ {
		if bs.Reduced.Node(NodeID(i)).Kind == KindRouter {
			routers++
		}
	}
	if routers != 5 {
		t.Fatalf("handle routers = %d, want 5 (v0..v4)", routers)
	}
}

func TestBroomstickIdempotentShape(t *testing.T) {
	tr := BroomstickTree(2, 3, 2)
	if !IsBroomstick(tr) {
		t.Fatal("BroomstickTree generator did not build a broomstick")
	}
}

func TestIsBroomstickNegative(t *testing.T) {
	if IsBroomstick(FatTree(2, 2, 1)) {
		t.Fatal("fat tree misclassified as broomstick")
	}
}

func TestMapLeafSizes(t *testing.T) {
	tr := FatTree(2, 1, 2)
	bs, err := Reduce(tr)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]float64, len(tr.Leaves()))
	for i := range orig {
		orig[i] = float64(i + 1)
	}
	mapped := bs.MapLeafSizes(orig)
	for ri, rl := range bs.Reduced.Leaves() {
		ol := bs.ToOriginal[bs.Reduced.LeafIndex(rl)]
		if mapped[ri] != orig[tr.LeafIndex(ol)] {
			t.Fatalf("mapped size mismatch at reduced leaf %d", rl)
		}
	}
	if bs.MapLeafSizes(nil) != nil {
		t.Fatal("MapLeafSizes(nil) should stay nil (identical setting)")
	}
}

// Property: reduction preserves leaf count, adds exactly 2 depth, and
// always yields a broomstick, over random trees.
func TestBroomstickPropertyRandom(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tr := Random(r, RandomConfig{Branches: 1 + r.Intn(3), MaxDepth: 2 + r.Intn(4), MaxChildren: 1 + r.Intn(3), LeafProb: 0.5})
		bs, err := Reduce(tr)
		if err != nil {
			return false
		}
		if !IsBroomstick(bs.Reduced) {
			return false
		}
		if len(bs.Reduced.Leaves()) != len(tr.Leaves()) {
			return false
		}
		for _, rl := range bs.Reduced.Leaves() {
			ol := bs.ToOriginal[bs.Reduced.LeafIndex(rl)]
			if bs.Reduced.Depth(rl) != tr.Depth(ol)+2 {
				return false
			}
		}
		return bs.Reduced.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestReduceSingleLeafLine(t *testing.T) {
	tr := Line(3)
	bs, err := Reduce(tr)
	if err != nil {
		t.Fatal(err)
	}
	rl := bs.Reduced.Leaves()[0]
	if bs.Reduced.Depth(rl) != tr.Depth(tr.Leaves()[0])+2 {
		t.Fatal("line reduction depth wrong")
	}
}

// Path must equal the parent-walk, and SubtreeLeaves of the root
// branches must partition the leaf set, on random trees.
func TestPathAndPartitionProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tr := Random(r, RandomConfig{Branches: 1 + r.Intn(4), MaxDepth: 2 + r.Intn(4), MaxChildren: 1 + r.Intn(3), LeafProb: 0.5})
		for _, leaf := range tr.Leaves() {
			path := tr.Path(leaf)
			// Walk parents from the leaf; must mirror the path.
			v := leaf
			for i := len(path) - 1; i >= 0; i-- {
				if path[i] != v {
					return false
				}
				v = tr.Parent(v)
			}
			if v != tr.Root() {
				return false
			}
		}
		seen := map[NodeID]int{}
		for _, b := range tr.RootAdjacent() {
			for _, l := range tr.SubtreeLeaves(b) {
				seen[l]++
			}
		}
		if len(seen) != len(tr.Leaves()) {
			return false
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
