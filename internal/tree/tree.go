// Package tree implements the rooted tree network topology of
// Im & Moseley (SPAA 2015): a root that acts as the job distribution
// center, interior router nodes, and leaf machine nodes. It provides
// the structural queries the scheduling algorithms need (R(v), L(v),
// d_v, root-to-leaf paths), topology generators, and the broomstick
// reduction of Section 3.3.
package tree

import (
	"errors"
	"fmt"
)

// NodeID identifies a node within a Tree. IDs are dense indices into
// Tree.Nodes, assigned in construction order; the root is always 0.
type NodeID int32

// None is the invalid node ID (used for the root's parent).
const None NodeID = -1

// Kind classifies a node's role in the network.
type Kind uint8

const (
	// KindRoot is the job distribution center. It performs no
	// processing; jobs become available at root-adjacent routers.
	KindRoot Kind = iota
	// KindRouter is an interior node that forwards job data.
	KindRouter
	// KindLeaf is a machine that performs the final processing.
	KindLeaf
)

func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindRouter:
		return "router"
	case KindLeaf:
		return "leaf"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Node is a single vertex of the network tree.
type Node struct {
	ID       NodeID
	Parent   NodeID // None for the root
	Children []NodeID
	Kind     Kind
	// Depth is the number of edges from the root; the root has
	// depth 0 and root-adjacent nodes depth 1. For a leaf v, Depth
	// equals the paper's d_v (the number of nodes on the path from v
	// to R(v), inclusive of both).
	Depth int
	// Speed is the node's processing rate (resource augmentation
	// multiplier). The adversary baseline is speed 1.
	Speed float64
	// Label is an optional human-readable name used in renderings.
	Label string
}

// Tree is an immutable rooted tree network. Construct with Builder.
type Tree struct {
	nodes   []Node
	leaves  []NodeID // all leaf IDs, ascending
	rootAdj []NodeID // nodes adjacent to the root (the set R), ascending
	// branch[v] = R(v): the root-adjacent ancestor of v (None for root).
	branch []NodeID
	// leafIndex[v] = position of leaf v within leaves, -1 otherwise.
	leafIndex []int32
	// paths[leafIndex] = path from R(v) to the leaf inclusive.
	paths  [][]NodeID
	height int // max depth over all nodes
}

// Builder incrementally constructs a Tree. Nodes are added parent
// first; Finalize validates the model constraints.
type Builder struct {
	nodes []Node
	err   error
}

// NewBuilder returns a Builder holding just the root node.
func NewBuilder() *Builder {
	b := &Builder{}
	b.nodes = append(b.nodes, Node{
		ID:     0,
		Parent: None,
		Kind:   KindRoot,
		Depth:  0,
		Speed:  1,
		Label:  "root",
	})
	return b
}

// Root returns the root's ID (always 0).
func (b *Builder) Root() NodeID { return 0 }

// AddRouter adds a router under parent and returns its ID.
func (b *Builder) AddRouter(parent NodeID) NodeID {
	return b.add(parent, KindRouter)
}

// AddLeaf adds a leaf machine under parent and returns its ID.
func (b *Builder) AddLeaf(parent NodeID) NodeID {
	return b.add(parent, KindLeaf)
}

func (b *Builder) add(parent NodeID, kind Kind) NodeID {
	if b.err != nil {
		return None
	}
	if parent < 0 || int(parent) >= len(b.nodes) {
		b.err = fmt.Errorf("tree: add under unknown parent %d", parent)
		return None
	}
	if b.nodes[parent].Kind == KindLeaf {
		b.err = fmt.Errorf("tree: node %d is a leaf and cannot have children", parent)
		return None
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{
		ID:     id,
		Parent: parent,
		Kind:   kind,
		Depth:  b.nodes[parent].Depth + 1,
		Speed:  1,
	})
	// Index again: the append above may have moved the backing array.
	b.nodes[parent].Children = append(b.nodes[parent].Children, id)
	return id
}

// SetSpeed overrides the speed of a node (resource augmentation).
func (b *Builder) SetSpeed(id NodeID, speed float64) {
	if b.err != nil {
		return
	}
	if id < 0 || int(id) >= len(b.nodes) {
		b.err = fmt.Errorf("tree: SetSpeed on unknown node %d", id)
		return
	}
	if speed <= 0 {
		b.err = fmt.Errorf("tree: SetSpeed(%d) with non-positive speed %v", id, speed)
		return
	}
	b.nodes[id].Speed = speed
}

// SetLabel attaches a human-readable label to a node.
func (b *Builder) SetLabel(id NodeID, label string) {
	if b.err != nil {
		return
	}
	if id < 0 || int(id) >= len(b.nodes) {
		b.err = fmt.Errorf("tree: SetLabel on unknown node %d", id)
		return
	}
	b.nodes[id].Label = label
}

// ErrNoLeaves is returned when a finalized tree has no machines.
var ErrNoLeaves = errors.New("tree: no leaf machines")

// ErrLeafAtRoot is returned when a leaf is adjacent to the root,
// which the paper's model forbids ("no leaf is adjacent to the root").
var ErrLeafAtRoot = errors.New("tree: leaf adjacent to the root")

// Finalize validates the structure and returns the immutable Tree.
// Model constraints from the paper's Section 2: the tree is rooted,
// at least one leaf exists, and no leaf is adjacent to the root.
func (b *Builder) Finalize() (*Tree, error) {
	if b.err != nil {
		return nil, b.err
	}
	t := &Tree{nodes: b.nodes}
	t.branch = make([]NodeID, len(t.nodes))
	t.leafIndex = make([]int32, len(t.nodes))
	for i := range t.leafIndex {
		t.leafIndex[i] = -1
	}
	t.branch[0] = None
	for i := 1; i < len(t.nodes); i++ {
		n := &t.nodes[i]
		if n.Depth == 1 {
			t.branch[i] = n.ID
			t.rootAdj = append(t.rootAdj, n.ID)
		} else {
			t.branch[i] = t.branch[n.Parent]
		}
		if n.Depth > t.height {
			t.height = n.Depth
		}
		switch {
		case n.Kind == KindLeaf && n.Depth == 1:
			return nil, fmt.Errorf("%w (node %d)", ErrLeafAtRoot, n.ID)
		case n.Kind == KindRouter && len(n.Children) == 0:
			return nil, fmt.Errorf("tree: router %d has no children; routers must lead to machines", n.ID)
		case n.Kind == KindLeaf:
			t.leafIndex[i] = int32(len(t.leaves))
			t.leaves = append(t.leaves, n.ID)
		}
	}
	if len(t.leaves) == 0 {
		return nil, ErrNoLeaves
	}
	t.paths = make([][]NodeID, len(t.leaves))
	for li, leaf := range t.leaves {
		var rev []NodeID
		for v := leaf; v != 0; v = t.nodes[v].Parent {
			rev = append(rev, v)
		}
		path := make([]NodeID, len(rev))
		for i, v := range rev {
			path[len(rev)-1-i] = v
		}
		t.paths[li] = path
	}
	b.nodes = nil // the builder must not alias the finalized tree
	return t, nil
}

// MustFinalize is Finalize that panics on error; for tests and
// generators whose construction is correct by design.
func (b *Builder) MustFinalize() *Tree {
	t, err := b.Finalize()
	if err != nil {
		panic(err)
	}
	return t
}

// NumNodes returns the total number of nodes including the root.
func (t *Tree) NumNodes() int { return len(t.nodes) }

// Node returns the node with the given ID.
func (t *Tree) Node(id NodeID) *Node { return &t.nodes[id] }

// Root returns the root ID (always 0).
func (t *Tree) Root() NodeID { return 0 }

// Leaves returns all leaf machine IDs in ascending order. The caller
// must not modify the returned slice.
func (t *Tree) Leaves() []NodeID { return t.leaves }

// RootAdjacent returns the set R of nodes adjacent to the root.
// The caller must not modify the returned slice.
func (t *Tree) RootAdjacent() []NodeID { return t.rootAdj }

// Branch returns R(v), the root-adjacent ancestor of v, or None for
// the root itself.
func (t *Tree) Branch(v NodeID) NodeID { return t.branch[v] }

// Depth returns the number of edges from the root to v. For a leaf,
// this is the paper's d_v.
func (t *Tree) Depth(v NodeID) int { return t.nodes[v].Depth }

// Height returns the maximum node depth.
func (t *Tree) Height() int { return t.height }

// Parent returns the parent of v (None for the root).
func (t *Tree) Parent(v NodeID) NodeID { return t.nodes[v].Parent }

// Children returns the children of v. Callers must not modify it.
func (t *Tree) Children(v NodeID) []NodeID { return t.nodes[v].Children }

// Speed returns the processing speed of v.
func (t *Tree) Speed(v NodeID) float64 { return t.nodes[v].Speed }

// IsLeaf reports whether v is a machine.
func (t *Tree) IsLeaf(v NodeID) bool { return t.nodes[v].Kind == KindLeaf }

// LeafIndex returns the dense index of leaf v within Leaves(), or -1
// if v is not a leaf. Workload per-leaf processing times are indexed
// by this value.
func (t *Tree) LeafIndex(v NodeID) int { return int(t.leafIndex[v]) }

// Path returns the processing path for a job assigned to the given
// leaf: the nodes from R(v) down to and including the leaf. The root
// is excluded because it performs no processing. Callers must not
// modify the returned slice.
func (t *Tree) Path(leaf NodeID) []NodeID {
	li := t.leafIndex[leaf]
	if li < 0 {
		panic(fmt.Sprintf("tree: Path of non-leaf node %d", leaf))
	}
	return t.paths[li]
}

// SubtreeLeaves returns L(v): all leaves in the subtree rooted at v.
func (t *Tree) SubtreeLeaves(v NodeID) []NodeID {
	var out []NodeID
	var walk func(NodeID)
	walk = func(u NodeID) {
		if t.nodes[u].Kind == KindLeaf {
			out = append(out, u)
			return
		}
		for _, c := range t.nodes[u].Children {
			walk(c)
		}
	}
	walk(v)
	return out
}

// WithUniformSpeed returns a copy of t whose non-root nodes all run at
// the given speed. Used for resource-augmentation sweeps.
func (t *Tree) WithUniformSpeed(speed float64) *Tree {
	return t.WithSpeeds(speed, speed, speed)
}

// WithSpeeds returns a copy of t with the given speeds applied to
// root-adjacent nodes, other routers, and leaves respectively. This
// mirrors the paper's asymmetric augmentation (root-adjacent nodes get
// less speed than the rest in Theorems 4-6).
func (t *Tree) WithSpeeds(rootAdjacent, router, leaf float64) *Tree {
	if rootAdjacent <= 0 || router <= 0 || leaf <= 0 {
		panic("tree: WithSpeeds requires positive speeds")
	}
	nt := *t
	nt.nodes = make([]Node, len(t.nodes))
	copy(nt.nodes, t.nodes)
	for i := range nt.nodes {
		n := &nt.nodes[i]
		switch {
		case n.Kind == KindRoot:
		case n.Depth == 1:
			n.Speed = rootAdjacent
		case n.Kind == KindLeaf:
			n.Speed = leaf
		default:
			n.Speed = router
		}
	}
	return &nt
}

// Validate re-checks the structural invariants of a finalized tree.
// It is used by property tests; a Tree obtained from Finalize always
// validates.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 || t.nodes[0].Kind != KindRoot {
		return errors.New("tree: missing root")
	}
	for i := 1; i < len(t.nodes); i++ {
		n := &t.nodes[i]
		p := &t.nodes[n.Parent]
		if n.Depth != p.Depth+1 {
			return fmt.Errorf("tree: node %d depth %d, parent depth %d", n.ID, n.Depth, p.Depth)
		}
		if n.Kind == KindLeaf && n.Depth == 1 {
			return ErrLeafAtRoot
		}
		if n.Speed <= 0 {
			return fmt.Errorf("tree: node %d has non-positive speed", n.ID)
		}
	}
	for li, leaf := range t.leaves {
		path := t.paths[li]
		if len(path) != t.nodes[leaf].Depth {
			return fmt.Errorf("tree: leaf %d path length %d != depth %d", leaf, len(path), t.nodes[leaf].Depth)
		}
		if path[len(path)-1] != leaf {
			return fmt.Errorf("tree: leaf %d path does not end at the leaf", leaf)
		}
		if t.branch[leaf] != path[0] {
			return fmt.Errorf("tree: leaf %d branch %d != first path node %d", leaf, t.branch[leaf], path[0])
		}
	}
	return nil
}
