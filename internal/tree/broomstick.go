package tree

import "fmt"

// Broomstick is the result of the Section 3.3 reduction: the reduced
// tree T' together with the leaf correspondence back to the original
// tree T. In T', every root branch is a "broomstick": a handle path of
// identical routers with the original leaves re-attached as bristles,
// one level below their original depth (total depth increase of
// exactly 2 per leaf).
type Broomstick struct {
	// Reduced is T', the broomstick tree.
	Reduced *Tree
	// Original is the tree the reduction was applied to.
	Original *Tree
	// ToOriginal maps a leaf of Reduced to the corresponding leaf of
	// Original, indexed by Reduced leaf index.
	ToOriginal []NodeID
	// ToReduced maps a leaf of Original to the corresponding leaf of
	// Reduced, indexed by Original leaf index.
	ToReduced []NodeID
}

// IsBroomstick reports whether t already has broomstick shape: under
// every root-adjacent node there is a single path of routers (the
// handle), and every non-handle node is a leaf hanging off the handle.
func IsBroomstick(t *Tree) bool {
	for _, r := range t.RootAdjacent() {
		v := r
		for {
			var routerChildren []NodeID
			for _, c := range t.Children(v) {
				if !t.IsLeaf(c) {
					routerChildren = append(routerChildren, c)
				}
			}
			if len(routerChildren) > 1 {
				return false
			}
			if len(routerChildren) == 0 {
				break
			}
			v = routerChildren[0]
		}
	}
	return true
}

// Reduce builds the broomstick T' from T following Section 3.3 of the
// paper. For every node v0 adjacent to the root:
//
//   - let ℓ be the number of edges on the longest path from v0 to a
//     leaf in v0's subtree;
//   - T' gets a handle of identical routers v0, v1, …, v_{ℓ+1};
//   - every leaf of T at edge-distance ℓ' from v0 becomes a leaf of T'
//     attached to handle node v_{ℓ'+1}, so its distance to v0 grows
//     from ℓ' to ℓ'+2 — an increase of exactly 2, as the paper notes.
//
// In the identical setting the new leaf is an identical node; in the
// unrelated setting it keeps the original leaf's processing times
// (the leaf correspondence maps per-leaf sizes across).
//
// Speeds: handle routers inherit v0's subtree router speed choice via
// the speed arguments of WithSpeeds applied afterwards by callers;
// Reduce itself copies speed 1 everywhere except that each reduced
// leaf inherits the speed of its original leaf, so related-machine
// setups survive the reduction.
func Reduce(t *Tree) (*Broomstick, error) {
	b := NewBuilder()
	toOriginal := make(map[NodeID]NodeID) // reduced leaf -> original leaf
	for _, v0 := range t.RootAdjacent() {
		// Longest edge-distance from v0 to a leaf in its subtree.
		ell := 0
		leaves := t.SubtreeLeaves(v0)
		if len(leaves) == 0 {
			return nil, fmt.Errorf("tree: root branch %d has no leaves", v0)
		}
		for _, lf := range leaves {
			d := t.Depth(lf) - t.Depth(v0)
			if d > ell {
				ell = d
			}
		}
		// Handle nodes v_0 … v_{ℓ+1}. v_0 is root-adjacent.
		handle := make([]NodeID, ell+2)
		handle[0] = b.AddRouter(b.Root())
		b.SetLabel(handle[0], fmt.Sprintf("h%d.0", v0))
		for i := 1; i <= ell+1; i++ {
			handle[i] = b.AddRouter(handle[i-1])
			b.SetLabel(handle[i], fmt.Sprintf("h%d.%d", v0, i))
		}
		for _, lf := range leaves {
			d := t.Depth(lf) - t.Depth(v0) // ℓ' in [1, ℓ]
			nl := b.AddLeaf(handle[d+1])
			b.SetSpeed(nl, t.Speed(lf))
			b.SetLabel(nl, fmt.Sprintf("leaf%d'", lf))
			toOriginal[nl] = lf
		}
	}
	reduced, err := b.Finalize()
	if err != nil {
		return nil, err
	}
	bs := &Broomstick{
		Reduced:    reduced,
		Original:   t,
		ToOriginal: make([]NodeID, len(reduced.Leaves())),
		ToReduced:  make([]NodeID, len(t.Leaves())),
	}
	for i := range bs.ToReduced {
		bs.ToReduced[i] = None
	}
	for _, rl := range reduced.Leaves() {
		ol := toOriginal[rl]
		bs.ToOriginal[reduced.LeafIndex(rl)] = ol
		bs.ToReduced[t.LeafIndex(ol)] = rl
	}
	for i, rl := range bs.ToReduced {
		if rl == None {
			return nil, fmt.Errorf("tree: original leaf index %d lost in reduction", i)
		}
	}
	return bs, nil
}

// MapLeafSizes translates per-original-leaf processing times into the
// reduced tree's leaf index order, so the same unrelated-endpoint job
// can be run on T'.
func (bs *Broomstick) MapLeafSizes(orig []float64) []float64 {
	if orig == nil {
		return nil
	}
	out := make([]float64, len(bs.Reduced.Leaves()))
	for ri := range out {
		ol := bs.ToOriginal[ri]
		out[ri] = orig[bs.Original.LeafIndex(ol)]
	}
	return out
}
