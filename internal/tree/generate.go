package tree

import (
	"fmt"

	"treesched/internal/rng"
)

// FatTree builds a complete k-ary tree of the given router depth with
// fanout leaves under every bottom router. depth is the number of
// router levels below the root (depth >= 1); every leaf ends up at
// tree depth depth+1. This is the classic data-center topology the
// paper's introduction cites (Al-Fares et al.).
func FatTree(arity, depth, leavesPerRouter int) *Tree {
	if arity < 1 || depth < 1 || leavesPerRouter < 1 {
		panic("tree: FatTree requires positive arity, depth and leavesPerRouter")
	}
	b := NewBuilder()
	frontier := []NodeID{b.Root()}
	for level := 0; level < depth; level++ {
		var next []NodeID
		for _, p := range frontier {
			for i := 0; i < arity; i++ {
				next = append(next, b.AddRouter(p))
			}
		}
		frontier = next
	}
	for _, p := range frontier {
		for i := 0; i < leavesPerRouter; i++ {
			b.AddLeaf(p)
		}
	}
	return b.MustFinalize()
}

// BroomstickTree builds a tree that is already a broomstick: branches
// root branches, each with a handle of handleLen routers and
// leavesPerLevel leaves hanging from every handle node after the first.
func BroomstickTree(branches, handleLen, leavesPerLevel int) *Tree {
	if branches < 1 || handleLen < 2 || leavesPerLevel < 1 {
		panic("tree: BroomstickTree requires branches>=1, handleLen>=2, leavesPerLevel>=1")
	}
	b := NewBuilder()
	for bi := 0; bi < branches; bi++ {
		v := b.AddRouter(b.Root())
		for h := 1; h < handleLen; h++ {
			v = b.AddRouter(v)
			for l := 0; l < leavesPerLevel; l++ {
				b.AddLeaf(v)
			}
		}
	}
	return b.MustFinalize()
}

// Line builds a path of length n routers ending in a single leaf: the
// line-network special case studied by Antoniadis et al. (LATIN 2014)
// that the paper's related work discusses.
func Line(routers int) *Tree {
	if routers < 1 {
		panic("tree: Line requires at least one router")
	}
	b := NewBuilder()
	v := b.AddRouter(b.Root())
	for i := 1; i < routers; i++ {
		v = b.AddRouter(v)
	}
	b.AddLeaf(v)
	return b.MustFinalize()
}

// Star builds a two-level topology: one relay router under the root
// with n leaf machines attached — the "bus" special case the paper
// mentions (off-site data routed along a shared link to machines).
func Star(leaves int) *Tree {
	if leaves < 1 {
		panic("tree: Star requires at least one leaf")
	}
	b := NewBuilder()
	relay := b.AddRouter(b.Root())
	for i := 0; i < leaves; i++ {
		b.AddLeaf(relay)
	}
	return b.MustFinalize()
}

// Caterpillar builds a spine of routers with leaves attached at every
// spine node, a worst-case-ish shape for congestion interactions.
func Caterpillar(spine, leavesPerSpine int) *Tree {
	if spine < 1 || leavesPerSpine < 1 {
		panic("tree: Caterpillar requires positive spine and leavesPerSpine")
	}
	b := NewBuilder()
	v := b.AddRouter(b.Root())
	for i := 0; i < spine; i++ {
		for l := 0; l < leavesPerSpine; l++ {
			b.AddLeaf(v)
		}
		if i != spine-1 {
			v = b.AddRouter(v)
		}
	}
	return b.MustFinalize()
}

// RandomConfig controls Random tree generation.
type RandomConfig struct {
	Branches    int // number of root-adjacent routers (>=1)
	MaxDepth    int // maximum node depth (>=2 so leaves are legal)
	MaxChildren int // maximum children per router (>=1)
	LeafProb    float64
}

// Random builds a random valid tree: every router eventually leads to
// at least one leaf, no leaf is adjacent to the root.
func Random(r *rng.Rand, cfg RandomConfig) *Tree {
	if cfg.Branches < 1 || cfg.MaxDepth < 2 || cfg.MaxChildren < 1 {
		panic(fmt.Sprintf("tree: invalid RandomConfig %+v", cfg))
	}
	if cfg.LeafProb <= 0 || cfg.LeafProb > 1 {
		cfg.LeafProb = 0.4
	}
	b := NewBuilder()
	var grow func(parent NodeID, depth int)
	grow = func(parent NodeID, depth int) {
		kids := 1 + r.Intn(cfg.MaxChildren)
		madeLeaf := false
		for i := 0; i < kids; i++ {
			// Force a leaf at max depth; otherwise flip a biased coin.
			if depth+1 >= cfg.MaxDepth || r.Bool(cfg.LeafProb) {
				b.AddLeaf(parent)
				madeLeaf = true
			} else {
				grow(b.AddRouter(parent), depth+1)
			}
		}
		// Routers must lead to machines: nothing to fix if a child
		// subtree exists, since grow always terminates in leaves.
		_ = madeLeaf
	}
	for i := 0; i < cfg.Branches; i++ {
		grow(b.AddRouter(b.Root()), 1)
	}
	return b.MustFinalize()
}
