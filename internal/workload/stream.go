// Streaming arrival sources: the online counterpart of the trace
// generators. An ArrivalSource yields release-ordered jobs one at a
// time, so a million-job run never materializes a []Job. Each
// generator draws from the rng in exactly the per-job order of its
// materializing twin (Poisson, Bursty, Adversarial), which makes a
// streamed workload bit-identical to the materialized one under the
// single-rng-stream discipline of the scenario layer.
package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"treesched/internal/rng"
)

// ArrivalSource yields the jobs of a workload in release order, one
// at a time. Next returns the next job and true, or a zero Job and
// false when the source is exhausted or failed; after a false, Err
// distinguishes clean exhaustion (nil) from a source error. Sources
// are single-use: once drained they stay drained.
type ArrivalSource interface {
	Next() (Job, bool)
	Err() error
}

// TraceSource adapts a materialized *Trace to the ArrivalSource
// interface, so every consumer of sources also accepts traces.
type TraceSource struct {
	tr *Trace
	i  int
}

// NewTraceSource wraps a trace. The trace is not copied; it must not
// be mutated while the source is in use.
func NewTraceSource(tr *Trace) *TraceSource { return &TraceSource{tr: tr} }

func (s *TraceSource) Next() (Job, bool) {
	if s.i >= len(s.tr.Jobs) {
		return Job{}, false
	}
	j := s.tr.Jobs[s.i]
	s.i++
	return j, true
}

func (s *TraceSource) Err() error { return nil }

// Trace returns the underlying trace. Consumers that can replay a
// whole trace more efficiently (e.g. the sharded parallel engine) use
// this to unwrap the adapter.
func (s *TraceSource) Trace() *Trace { return s.tr }

// PoissonSource streams the exact job sequence of Poisson: per job it
// draws one exponential interarrival then one size sample.
type PoissonSource struct {
	r    *rng.Rand
	cfg  GenConfig
	rate float64
	t    float64
	i    int
}

// NewPoissonSource validates cfg exactly like Poisson and returns the
// streaming generator.
func NewPoissonSource(r *rng.Rand, cfg GenConfig) (*PoissonSource, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &PoissonSource{r: r, cfg: cfg, rate: cfg.Load * cfg.Capacity / cfg.Size.Mean()}, nil
}

func (s *PoissonSource) Next() (Job, bool) {
	if s.i >= s.cfg.N {
		return Job{}, false
	}
	s.t += s.r.Exp(s.rate)
	j := Job{ID: s.i, Release: s.t, Size: s.cfg.Size.Sample(s.cfg.sizeRand(s.r))}
	s.i++
	return j, true
}

func (s *PoissonSource) Err() error { return nil }

// BurstySource streams the exact job sequence of Bursty: one
// exponential draw at each burst start, then per job a fixed jitter
// and one size sample.
type BurstySource struct {
	r        *rng.Rand
	cfg      GenConfig
	rate     float64
	burstLen int
	pos      int // position within the current burst
	t        float64
	i        int
}

// NewBurstySource validates like Bursty and returns the streaming
// generator.
func NewBurstySource(r *rng.Rand, cfg GenConfig, burstLen int) (*BurstySource, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if burstLen < 1 {
		return nil, errors.New("workload: burstLen must be >= 1")
	}
	rate := cfg.Load * cfg.Capacity / cfg.Size.Mean() / float64(burstLen)
	return &BurstySource{r: r, cfg: cfg, rate: rate, burstLen: burstLen}, nil
}

func (s *BurstySource) Next() (Job, bool) {
	if s.i >= s.cfg.N {
		return Job{}, false
	}
	if s.pos == 0 {
		s.t += s.r.Exp(s.rate)
	}
	s.t += 1e-9
	j := Job{ID: s.i, Release: s.t, Size: s.cfg.Size.Sample(s.cfg.sizeRand(s.r))}
	s.i++
	s.pos++
	if s.pos == s.burstLen {
		s.pos = 0
	}
	return j, true
}

func (s *BurstySource) Err() error { return nil }

// AdversarialSource streams the exact job sequence of Adversarial.
// The pattern is deterministic (no rng draws), so only the phase
// machine needs to match: one big job, a flood of bigSize/2 unit
// jobs, then a bigSize/4 gap.
type AdversarialSource struct {
	n         int
	big       float64
	floodLeft int
	t         float64
	i         int
}

// NewAdversarialSource returns the streaming generator for n jobs
// with the given big-job size.
func NewAdversarialSource(n int, bigSize float64) *AdversarialSource {
	return &AdversarialSource{n: n, big: bigSize}
}

func (s *AdversarialSource) Next() (Job, bool) {
	if s.i >= s.n {
		return Job{}, false
	}
	var j Job
	s.t += 1e-9
	if s.floodLeft == 0 {
		j = Job{ID: s.i, Release: s.t, Size: s.big}
		s.floodLeft = int(s.big / 2)
	} else {
		j = Job{ID: s.i, Release: s.t, Size: 1}
		s.floodLeft--
	}
	if s.floodLeft == 0 {
		s.t += s.big / 4
	}
	s.i++
	return j, true
}

func (s *AdversarialSource) Err() error { return nil }

// RelatedSource applies MakeRelated per job: every yielded job gets
// LeafSizes[i] = Size/leafSpeeds[i]. The transform is rng-free, so
// wrapping preserves bit-identity with the materialized pipeline.
type RelatedSource struct {
	src    ArrivalSource
	speeds []float64
}

// NewRelatedSource validates the speeds exactly like MakeRelated.
func NewRelatedSource(src ArrivalSource, leafSpeeds []float64) (*RelatedSource, error) {
	if len(leafSpeeds) == 0 {
		return nil, errors.New("workload: MakeRelated needs at least one leaf speed")
	}
	for _, s := range leafSpeeds {
		if s <= 0 {
			return nil, fmt.Errorf("workload: non-positive leaf speed %v", s)
		}
	}
	return &RelatedSource{src: src, speeds: leafSpeeds}, nil
}

func (s *RelatedSource) Next() (Job, bool) {
	j, ok := s.src.Next()
	if !ok {
		return Job{}, false
	}
	j.LeafSizes = make([]float64, len(s.speeds))
	for li, sp := range s.speeds {
		j.LeafSizes[li] = j.Size / sp
	}
	return j, true
}

func (s *RelatedSource) Err() error { return s.src.Err() }

// ClassRoundSource applies RoundTraceToClasses per job: router and
// leaf sizes are rounded up to powers of (1+eps). Rng-free.
type ClassRoundSource struct {
	src ArrivalSource
	eps float64
}

// NewClassRoundSource wraps src; eps must be positive (RoundToClass
// panics otherwise, matching RoundTraceToClasses).
func NewClassRoundSource(src ArrivalSource, eps float64) *ClassRoundSource {
	return &ClassRoundSource{src: src, eps: eps}
}

func (s *ClassRoundSource) Next() (Job, bool) {
	j, ok := s.src.Next()
	if !ok {
		return Job{}, false
	}
	j.Size = RoundToClass(j.Size, s.eps)
	for li := range j.LeafSizes {
		j.LeafSizes[li] = RoundToClass(j.LeafSizes[li], s.eps)
	}
	return j, true
}

func (s *ClassRoundSource) Err() error { return s.src.Err() }

// Collect drains a source into a Trace (no validation; generators
// emit valid traces by construction and consumers validate on use).
// Mostly for tests and fallback paths.
func Collect(src ArrivalSource) (*Trace, error) {
	tr := &Trace{}
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		tr.Jobs = append(tr.Jobs, j)
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}

// StreamNDJSON drains a source to w as newline-delimited JSON — one
// compact Job object per line — accumulating TraceStats online so a
// million-job trace is written without ever holding a []Job.
func StreamNDJSON(src ArrivalSource, w io.Writer) (TraceStats, error) {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	var st TraceStats
	for {
		j, ok := src.Next()
		if !ok {
			break
		}
		if err := enc.Encode(&j); err != nil {
			return st, fmt.Errorf("workload: encoding job %d: %w", j.ID, err)
		}
		st.Jobs++
		st.TotalWork += j.Size
		st.MeanSize += j.Size
		if j.Size > st.MaxSize {
			st.MaxSize = j.Size
		}
		st.Span = j.Release // releases are sorted: the last one is the span
		if j.LeafSizes != nil {
			st.Unrelated = true
		}
		if j.Weight > 0 && j.Weight != 1 {
			st.Weighted = true
		}
	}
	if err := src.Err(); err != nil {
		return st, err
	}
	if st.Jobs > 0 {
		st.MeanSize /= float64(st.Jobs)
	}
	if st.Jobs > 1 {
		st.MeanInterval = st.Span / float64(st.Jobs-1)
	}
	if st.Span > 0 {
		st.OfferedPerSec = st.TotalWork / st.Span
	}
	return st, bw.Flush()
}

// NDJSONSource streams jobs back from the newline-delimited form
// written by StreamNDJSON. Arrival ordering is checked as jobs are
// decoded — a non-monotone release fails the source immediately, so a
// corrupt or hand-edited file cannot feed an out-of-order sequence to
// the engine or the fleet router. Other per-job validity is the
// consumer's business (the engine's stream injector validates
// incrementally).
type NDJSONSource struct {
	// One object per line, decoded by the reflection-free fast path
	// with a per-line json.Unmarshal fallback (which owns all error
	// and acceptance semantics), reading through br with line as the
	// reused scratch for lines longer than br's buffer.
	br   *bufio.Reader
	line []byte
	err  error
	i    int
	last float64
}

// NewNDJSONSource reads one Job object per line. Blank lines are
// skipped; anything else on a line must be exactly one JSON object,
// and encoding/json decides what that means (the reflection-free
// fast path only accepts lines the stdlib would accept with the same
// result). Equivalent to NewNDJSONSourceLimited with no limits.
func NewNDJSONSource(r io.Reader) *NDJSONSource {
	return &NDJSONSource{br: bufio.NewReader(r)}
}

// ErrStalled reports that the byte stream feeding a limited
// NDJSONSource failed to produce any bytes within the stall timeout.
var ErrStalled = errors.New("workload: NDJSON byte stream stalled")

// ErrLineTooLong reports a single NDJSON line exceeding the
// configured byte limit.
var ErrLineTooLong = errors.New("workload: NDJSON line exceeds the size limit")

// SourceLimits guards the byte stream feeding an NDJSONSource. A
// streaming run pulls jobs on the engine goroutine, so with no guard
// a stalled or malicious byte stream — a client that stops sending
// mid-line, or one enormous line — wedges the whole run (or buffers
// without bound). Zero values disable the corresponding guard.
type SourceLimits struct {
	// MaxLineBytes bounds the bytes between consecutive newlines.
	MaxLineBytes int
	// Stall bounds how long a single read of the underlying stream
	// may block before the source fails with ErrStalled.
	Stall time.Duration
}

// NewNDJSONSourceLimited is the guarded variant of NewNDJSONSource:
// reads that exceed lim.Stall fail the source with ErrStalled, and a
// line longer than lim.MaxLineBytes fails it with ErrLineTooLong
// (both via errors.Is on Err). Decoding is identical to the plain
// source — line framing is what the limits are defined over. The
// stall guard pumps the underlying reader on its own goroutine;
// after a stall that goroutine exits as soon as the abandoned read
// returns, so callers should close the underlying reader (an HTTP
// server closes request bodies when the handler returns).
func NewNDJSONSourceLimited(r io.Reader, lim SourceLimits) *NDJSONSource {
	if lim.Stall > 0 {
		r = newStallReader(r, lim.Stall)
	}
	if lim.MaxLineBytes > 0 {
		r = &lineLimitReader{r: r, max: lim.MaxLineBytes}
	}
	return &NDJSONSource{br: bufio.NewReader(r)}
}

// lineLimitReader fails with ErrLineTooLong once it has passed
// through more than max bytes without seeing a newline.
type lineLimitReader struct {
	r   io.Reader
	max int
	run int // bytes since the last newline
	err error
}

func (l *lineLimitReader) Read(p []byte) (int, error) {
	if l.err != nil {
		return 0, l.err
	}
	n, err := l.r.Read(p)
	// Walk newline-delimited segments with IndexByte instead of a
	// per-byte loop: this guard sits on the daemon's hot admission
	// path and scans every submitted byte.
	rest := p[:n]
	for {
		i := bytes.IndexByte(rest, '\n')
		if i < 0 {
			if l.run += len(rest); l.run > l.max {
				break
			}
			return n, err
		}
		if l.run+i > l.max {
			break
		}
		l.run = 0
		rest = rest[i+1:]
	}
	l.err = fmt.Errorf("workload: NDJSON line longer than %d bytes: %w", l.max, ErrLineTooLong)
	// Surface the bytes read so far so the decoder's position
	// bookkeeping stays meaningful, then fail the next read.
	return n, l.err
}

// stallReader moves the underlying reads onto a pump goroutine so the
// consumer can bound how long any single read may take. The pump owns
// per-chunk buffers (a copy per read) — acceptable overhead for a
// guard whose job is protecting a long-lived daemon from dead peers.
type stallReader struct {
	timeout  time.Duration
	chunks   chan stallChunk
	leftover []byte
	err      error
}

type stallChunk struct {
	data []byte
	err  error
}

func newStallReader(r io.Reader, timeout time.Duration) *stallReader {
	s := &stallReader{timeout: timeout, chunks: make(chan stallChunk, 4)}
	go func() {
		for {
			buf := make([]byte, 16*1024)
			n, err := r.Read(buf)
			s.chunks <- stallChunk{data: buf[:n], err: err}
			if err != nil {
				close(s.chunks)
				return
			}
		}
	}()
	return s
}

func (s *stallReader) Read(p []byte) (int, error) {
	if len(s.leftover) > 0 {
		n := copy(p, s.leftover)
		s.leftover = s.leftover[n:]
		return n, nil
	}
	if s.err != nil {
		return 0, s.err
	}
	t := time.NewTimer(s.timeout)
	defer t.Stop()
	select {
	case c, ok := <-s.chunks:
		if !ok {
			s.err = io.EOF
			return 0, s.err
		}
		n := copy(p, c.data)
		s.leftover = c.data[n:]
		if c.err != nil && len(s.leftover) == 0 {
			s.err = c.err
		}
		if n == 0 && c.err != nil {
			return 0, c.err
		}
		return n, nil
	case <-t.C:
		s.err = fmt.Errorf("workload: no bytes within %v: %w", s.timeout, ErrStalled)
		return 0, s.err
	}
}

// readLine returns the next non-blank line (newline stripped) in
// line mode, reusing s.line as scratch when a line outgrows the
// bufio buffer. A final unterminated line before EOF still counts.
func (s *NDJSONSource) readLine() ([]byte, error) {
	for {
		s.line = s.line[:0]
		var out []byte
		for {
			frag, err := s.br.ReadSlice('\n')
			if err == nil {
				if len(s.line) == 0 {
					out = frag[:len(frag)-1] // hot path: no copy
					break
				}
				s.line = append(s.line, frag[:len(frag)-1]...)
				out = s.line
				break
			}
			if err == bufio.ErrBufferFull {
				s.line = append(s.line, frag...)
				continue
			}
			s.line = append(s.line, frag...)
			if err == io.EOF && len(s.line) > 0 {
				out = s.line
				break
			}
			return nil, err
		}
		blank := true
		for _, c := range out {
			if c != ' ' && c != '\t' && c != '\r' {
				blank = false
				break
			}
		}
		if !blank {
			return out, nil
		}
	}
}

func (s *NDJSONSource) Next() (Job, bool) {
	if s.err != nil {
		return Job{}, false
	}
	var j Job
	line, err := s.readLine()
	if err != nil {
		if err != io.EOF {
			s.err = fmt.Errorf("workload: decoding NDJSON job %d: %w", s.i, err)
		}
		return Job{}, false
	}
	// The slow path lives in its own function so that only its Job
	// escapes (encoding/json takes the address through an interface);
	// the fast path's j stays on the stack, which is what makes the
	// warm admission path allocation-free.
	if !fastParseJob(line, &j) {
		var ok bool
		if j, ok = s.slowParseLine(line); !ok {
			return Job{}, false
		}
	}
	if s.i > 0 && j.Release < s.last {
		s.err = fmt.Errorf("workload: NDJSON job %d arrives at %v, before its predecessor at %v (releases must be non-decreasing)", s.i, j.Release, s.last)
		return Job{}, false
	}
	s.last = j.Release
	s.i++
	return j, true
}

// slowParseLine is the strict-parser fallback: encoding/json owns the
// acceptance and error semantics for every line the fast parser
// declines (escapes, unusual number spellings, unknown fields,
// malformed input).
func (s *NDJSONSource) slowParseLine(line []byte) (Job, bool) {
	var j Job
	if err := json.Unmarshal(line, &j); err != nil {
		s.err = fmt.Errorf("workload: decoding NDJSON job %d: %w", s.i, err)
		return Job{}, false
	}
	return j, true
}

func (s *NDJSONSource) Err() error { return s.err }
