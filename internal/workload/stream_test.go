package workload

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"treesched/internal/rng"
)

// drain collects a source, failing the test on a source error.
func drain(t *testing.T, src ArrivalSource) []Job {
	t.Helper()
	tr, err := Collect(src)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	return tr.Jobs
}

func TestPoissonSourceMatchesPoisson(t *testing.T) {
	cfg := GenConfig{N: 500, Size: ClassRounded{Base: UniformSize{1, 16}, Eps: 0.5}, Load: 0.9, Capacity: 2}
	want, err := Poisson(rng.New(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewPoissonSource(rng.New(7), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, src); !reflect.DeepEqual(got, want.Jobs) {
		t.Fatal("streamed Poisson jobs differ from materialized trace")
	}
	// Exhausted sources stay exhausted.
	if _, ok := src.Next(); ok {
		t.Fatal("Next after exhaustion returned a job")
	}
}

func TestBurstySourceMatchesBursty(t *testing.T) {
	// 503 is deliberately not a multiple of the burst length: the last
	// burst is truncated in both implementations.
	for _, burst := range []int{1, 4, 7} {
		cfg := GenConfig{N: 503, Size: BimodalSize{Small: 1, Big: 32, PBig: 0.1}, Load: 0.8, Capacity: 3}
		want, err := Bursty(rng.New(11), cfg, burst)
		if err != nil {
			t.Fatal(err)
		}
		src, err := NewBurstySource(rng.New(11), cfg, burst)
		if err != nil {
			t.Fatal(err)
		}
		if got := drain(t, src); !reflect.DeepEqual(got, want.Jobs) {
			t.Fatalf("burst=%d: streamed Bursty jobs differ from materialized trace", burst)
		}
	}
	if _, err := NewBurstySource(rng.New(1), GenConfig{N: 1, Size: UniformSize{1, 2}, Load: 1}, 0); err == nil {
		t.Fatal("NewBurstySource accepted burstLen 0")
	}
}

func TestAdversarialSourceMatchesAdversarial(t *testing.T) {
	// bigSize 1.5 exercises the flood==0 edge (int(1.5/2) == 0): the
	// pattern degenerates to big jobs separated by big/4 gaps.
	for _, big := range []float64{32, 5, 1.5} {
		want := Adversarial(rng.New(1), 200, big)
		src := NewAdversarialSource(200, big)
		if got := drain(t, src); !reflect.DeepEqual(got, want.Jobs) {
			t.Fatalf("bigSize=%g: streamed Adversarial jobs differ from materialized trace", big)
		}
	}
}

func TestTraceSourceRoundTrip(t *testing.T) {
	tr, err := Poisson(rng.New(3), GenConfig{N: 50, Size: UniformSize{1, 4}, Load: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	src := NewTraceSource(tr)
	if src.Trace() != tr {
		t.Fatal("Trace() does not return the wrapped trace")
	}
	if got := drain(t, src); !reflect.DeepEqual(got, tr.Jobs) {
		t.Fatal("TraceSource jobs differ from the wrapped trace")
	}
}

func TestWrappedSourcesMatchTraceTransforms(t *testing.T) {
	cfg := GenConfig{N: 120, Size: UniformSize{1, 16}, Load: 0.9, Capacity: 2}
	speeds := []float64{1, 2, 0.5, 4}

	want, err := Poisson(rng.New(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := MakeRelated(want, speeds); err != nil {
		t.Fatal(err)
	}
	RoundTraceToClasses(want, 0.5)

	base, err := NewPoissonSource(rng.New(5), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := NewRelatedSource(base, speeds)
	if err != nil {
		t.Fatal(err)
	}
	src := NewClassRoundSource(rel, 0.5)
	if got := drain(t, src); !reflect.DeepEqual(got, want.Jobs) {
		t.Fatal("wrapped related+rounded stream differs from trace transforms")
	}

	if _, err := NewRelatedSource(base, nil); err == nil {
		t.Fatal("NewRelatedSource accepted empty speeds")
	}
	if _, err := NewRelatedSource(base, []float64{1, -1}); err == nil {
		t.Fatal("NewRelatedSource accepted a non-positive speed")
	}
}

func TestStreamNDJSONRoundTrip(t *testing.T) {
	cfg := GenConfig{N: 80, Size: UniformSize{1, 16}, Load: 0.9, Capacity: 2}
	want, err := Poisson(rng.New(9), cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	src, err := NewPoissonSource(rng.New(9), cfg)
	if err != nil {
		t.Fatal(err)
	}
	st, err := StreamNDJSON(src, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if ws := want.Stats(); st != ws {
		t.Fatalf("online stats %+v differ from trace stats %+v", st, ws)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != cfg.N {
		t.Fatalf("NDJSON has %d lines, want %d", lines, cfg.N)
	}

	back, err := Collect(NewNDJSONSource(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Jobs, want.Jobs) {
		t.Fatal("NDJSON round trip altered the jobs")
	}
}

func TestNDJSONSourceError(t *testing.T) {
	src := NewNDJSONSource(strings.NewReader("{\"ID\":0,\"Size\":1}\nnot json\n"))
	if _, ok := src.Next(); !ok {
		t.Fatal("first line should decode")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("garbage line should stop the source")
	}
	if src.Err() == nil {
		t.Fatal("Err() should report the decode failure")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("failed source should stay stopped")
	}
}

// failNDJSON drains an NDJSON source that must fail, returning the
// error and how many jobs decoded cleanly first.
func failNDJSON(t *testing.T, input string) (error, int) {
	t.Helper()
	src := NewNDJSONSource(strings.NewReader(input))
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	err := src.Err()
	if err == nil {
		t.Fatalf("source drained %d jobs from %q without error", n, input)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("failed source yielded another job")
	}
	return err, n
}

func TestNDJSONSourceTruncatedLine(t *testing.T) {
	// The writer died mid-object: the decode error must surface, not a
	// silent clean EOF after the good prefix.
	err, n := failNDJSON(t, "{\"ID\":0,\"Release\":1,\"Size\":2}\n{\"ID\":1,\"Release\":2,\"Si")
	if n != 1 {
		t.Fatalf("decoded %d jobs before the truncated line, want 1", n)
	}
	if !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("error %q does not name the offending job index", err)
	}
}

func TestNDJSONSourceNonMonotone(t *testing.T) {
	err, n := failNDJSON(t,
		"{\"ID\":0,\"Release\":5,\"Size\":1}\n{\"ID\":1,\"Release\":3,\"Size\":1}\n{\"ID\":2,\"Release\":9,\"Size\":1}\n")
	if n != 1 {
		t.Fatalf("decoded %d jobs before the regression, want 1", n)
	}
	if !strings.Contains(err.Error(), "non-decreasing") {
		t.Fatalf("error %q does not explain the ordering requirement", err)
	}
	// Equal releases are fine (ties are allowed; only regressions fail).
	tr, err2 := Collect(NewNDJSONSource(strings.NewReader(
		"{\"ID\":0,\"Release\":5,\"Size\":1}\n{\"ID\":1,\"Release\":5,\"Size\":1}\n")))
	if err2 != nil {
		t.Fatalf("tied releases rejected: %v", err2)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("tied releases yielded %d jobs, want 2", len(tr.Jobs))
	}
}

func TestNDJSONSourceBadUTF8(t *testing.T) {
	err, _ := failNDJSON(t, "{\"ID\":0,\"Release\":1,\"Size\":2}\n\xff\xfe{\"ID\":1}\n")
	if !strings.Contains(err.Error(), "job 1") {
		t.Fatalf("error %q does not name the offending job index", err)
	}
}

func TestTraceSourceExhaustion(t *testing.T) {
	src := NewTraceSource(&Trace{Jobs: []Job{{ID: 0, Release: 1, Size: 2}}})
	if _, ok := src.Next(); !ok {
		t.Fatal("single-job trace yielded nothing")
	}
	if _, ok := src.Next(); ok {
		t.Fatal("drained TraceSource yielded a job")
	}
	if src.Err() != nil {
		t.Fatalf("TraceSource reported an error: %v", src.Err())
	}
	empty := NewTraceSource(&Trace{})
	if _, ok := empty.Next(); ok {
		t.Fatal("empty TraceSource yielded a job")
	}
}

func TestSizeRandSplitsDraws(t *testing.T) {
	// With SizeRand set, interarrival draws come from the main stream
	// alone: the arrival sequence is invariant under a change of size
	// law, which is exactly what the single-stream order cannot offer.
	gen := func(size SizeDist) []Job {
		p := rng.NewPartitioned(3)
		cfg := GenConfig{N: 200, Size: size, Load: 0.9, Capacity: 2, SizeRand: p.Stream("sizes")}
		// Hold the mean fixed so the calibrated rate (and hence the
		// arrival times themselves) cannot differ between size laws.
		tr, err := Poisson(p.Stream("workload"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tr.Jobs
	}
	a := gen(UniformSize{1, 3})
	b := gen(BimodalSize{Small: 1, Big: 3, PBig: 0.5})
	for i := range a {
		if a[i].Release != b[i].Release {
			t.Fatalf("job %d arrival moved (%v -> %v) when only the size law changed", i, a[i].Release, b[i].Release)
		}
	}
	// Streamed twin: bit-identical to the materialized run under the
	// same partition.
	p := rng.NewPartitioned(3)
	cfg := GenConfig{N: 200, Size: UniformSize{1, 3}, Load: 0.9, Capacity: 2, SizeRand: p.Stream("sizes")}
	src, err := NewPoissonSource(p.Stream("workload"), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := drain(t, src); !reflect.DeepEqual(got, a) {
		t.Fatal("streamed partitioned Poisson differs from materialized")
	}
}

// blockingReader yields its prefix, then blocks forever (until Close
// releases the pending Read with io.EOF) — a dead peer in miniature.
type blockingReader struct {
	prefix  []byte
	release chan struct{}
	once    sync.Once
}

func newBlockingReader(prefix string) *blockingReader {
	return &blockingReader{prefix: []byte(prefix), release: make(chan struct{})}
}

func (b *blockingReader) Read(p []byte) (int, error) {
	if len(b.prefix) > 0 {
		n := copy(p, b.prefix)
		b.prefix = b.prefix[n:]
		return n, nil
	}
	<-b.release
	return 0, io.EOF
}

func (b *blockingReader) Close() error {
	b.once.Do(func() { close(b.release) })
	return nil
}

func TestNDJSONSourceLimitedStall(t *testing.T) {
	r := newBlockingReader("{\"ID\":0,\"Release\":1,\"Size\":2}\n")
	defer r.Close()
	src := NewNDJSONSourceLimited(r, SourceLimits{Stall: 20 * time.Millisecond})
	if _, ok := src.Next(); !ok {
		t.Fatalf("prefix job should decode: %v", src.Err())
	}
	start := time.Now()
	if _, ok := src.Next(); ok {
		t.Fatal("stalled stream yielded a job")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("stall detection took far longer than the timeout")
	}
	if err := src.Err(); !errors.Is(err, ErrStalled) {
		t.Fatalf("Err() = %v, want ErrStalled", err)
	}
	if _, ok := src.Next(); ok {
		t.Fatal("stalled source yielded another job")
	}
}

func TestNDJSONSourceLimitedPartialLineStall(t *testing.T) {
	// The peer died mid-object: the decoder is blocked wanting more
	// bytes of job 1, and the guard must fail it rather than hang.
	r := newBlockingReader("{\"ID\":0,\"Release\":1,\"Size\":2}\n{\"ID\":1,\"Rel")
	defer r.Close()
	src := NewNDJSONSourceLimited(r, SourceLimits{Stall: 20 * time.Millisecond})
	if _, ok := src.Next(); !ok {
		t.Fatalf("complete first job should decode: %v", src.Err())
	}
	if _, ok := src.Next(); ok {
		t.Fatal("half-written job decoded")
	}
	if err := src.Err(); !errors.Is(err, ErrStalled) {
		t.Fatalf("Err() = %v, want ErrStalled", err)
	}
}

func TestNDJSONSourceLimitedLineTooLong(t *testing.T) {
	long := "{\"ID\":1,\"Release\":2,\"Size\":3,\"pad\":\"" + strings.Repeat("x", 4096) + "\"}\n"
	src := NewNDJSONSourceLimited(
		strings.NewReader("{\"ID\":0,\"Release\":1,\"Size\":2}\n"+long),
		SourceLimits{MaxLineBytes: 256})
	if _, ok := src.Next(); !ok {
		t.Fatalf("short first line should decode: %v", src.Err())
	}
	if _, ok := src.Next(); ok {
		t.Fatal("oversized line decoded")
	}
	if err := src.Err(); !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("Err() = %v, want ErrLineTooLong", err)
	}
}

func TestNDJSONSourceLimitedZeroLimitsPassThrough(t *testing.T) {
	// Zero limits mean no guard: behavior matches the plain source.
	in := "{\"ID\":0,\"Release\":1,\"Size\":2}\n{\"ID\":1,\"Release\":2,\"Size\":3}\n"
	tr, err := Collect(NewNDJSONSourceLimited(strings.NewReader(in), SourceLimits{}))
	if err != nil {
		t.Fatalf("unguarded source failed: %v", err)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("collected %d jobs, want 2", len(tr.Jobs))
	}
}
