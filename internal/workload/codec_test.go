package workload

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestAppendJobMatchesStdlib(t *testing.T) {
	jobs := []Job{
		{},
		{ID: 3, Release: 1.5, Size: 2.0 / 3.0, Weight: 1, Origin: 4},
		{ID: -1, Release: math.Copysign(0, -1), Size: 1e-7, Weight: 9.999999999999999e20},
		{ID: 7, Release: 1e21, Size: 5e-324, LeafSizes: []float64{}, Weight: math.MaxFloat64},
		{ID: 8, Release: 0.25, Size: 1, LeafSizes: []float64{1e-6, 1e21, 0.5}, Weight: 2, Origin: -3},
	}
	for _, j := range jobs {
		got, err := AppendJob(nil, &j)
		if err != nil {
			t.Fatalf("AppendJob(%+v): %v", j, err)
		}
		want, err := json.Marshal(&j)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", j, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encode mismatch for %+v:\n got  %s\n want %s", j, got, want)
		}
	}
}

func TestAppendJobRejectsNonFinite(t *testing.T) {
	for _, j := range []Job{
		{Size: math.NaN()},
		{Release: math.Inf(1), Size: 1},
		{Size: 1, LeafSizes: []float64{1, math.Inf(-1)}},
		{Size: 1, Weight: math.NaN()},
	} {
		if _, err := AppendJob(nil, &j); err == nil {
			t.Fatalf("AppendJob accepted non-finite job %+v", j)
		}
	}
}

// The fast parser's contract: whenever it reports ok, its result
// equals json.Unmarshal's on the same bytes; whenever the input is
// anything the strict subset doesn't cover, it reports !ok and the
// caller's stdlib fallback decides.
func TestFastParseJobDifferential(t *testing.T) {
	lines := []string{
		// Canonical encoder output.
		`{"ID":3,"Release":1.5,"Size":0.25,"LeafSizes":null,"Weight":1,"Origin":0}`,
		`{"ID":0,"Release":0,"Size":1e-7,"LeafSizes":[1,2.5,3e20],"Weight":0,"Origin":-2}`,
		`{"ID":-1,"Release":-0,"Size":1.0000000000000002,"LeafSizes":[],"Weight":2,"Origin":2147483647}`,
		// Subsets, reordering, whitespace.
		`{"ID":1,"Size":2}`,
		`{"Size":2,"ID":1,"Release":3}`,
		`{ "ID" : 5 , "Size" : 1.25 }`,
		`  {"ID":9,"Size":3}  `,
		`{}`,
		// Inputs that must defer to the stdlib (unknown/dup/escaped
		// keys, non-JSON number grammar, wrong types, trailing junk).
		`{"ID":1,"id":2,"Size":3}`,
		`{"ID":1,"ID":2}`,
		`{"\u0049D":1}`,
		`{"ID":0x10}`,
		`{"Size":+1}`,
		`{"Size":1.}`,
		`{"Size":.5}`,
		`{"Size":Infinity}`,
		`{"Size":NaN}`,
		`{"Size":1e}`,
		`{"Size":01}`,
		`{"Size":1e999}`,
		`{"ID":1.5}`,
		`{"ID":1e2}`,
		`{"ID":"3"}`,
		`{"Origin":2147483648}`,
		`{"Origin":-2147483649}`,
		`{"ID":99999999999999999999}`,
		`{"LeafSizes":[1,]}`,
		`{"LeafSizes":[1 2]}`,
		`{"LeafSizes":{"a":1}}`,
		`{"ID":1} {"ID":2}`,
		`{"ID":1}x`,
		`[1,2]`,
		`null`,
		`{"ID":1,}`,
		`{"ID"}`,
		``,
	}
	for _, line := range lines {
		var fast Job
		ok := fastParseJob([]byte(line), &fast)
		var std Job
		stdErr := json.Unmarshal([]byte(line), &std)
		if !ok {
			continue // fallback handles it; nothing to compare
		}
		if stdErr != nil {
			t.Fatalf("fast parser accepted %q but stdlib rejects it: %v", line, stdErr)
		}
		if !reflect.DeepEqual(fast, std) {
			t.Fatalf("decode mismatch for %q:\n fast %+v\n std  %+v", line, fast, std)
		}
	}
}

func TestFastParseJobAcceptsCanonicalFast(t *testing.T) {
	// The bytes our own client emits must take the fast path, or the
	// optimization is dead on arrival.
	j := Job{ID: 12, Release: 3.5, Size: 1.25, LeafSizes: []float64{0.5, 2}, Weight: 2, Origin: 1}
	line, err := AppendJob(nil, &j)
	if err != nil {
		t.Fatal(err)
	}
	var got Job
	if !fastParseJob(line, &got) {
		t.Fatalf("canonical line %s fell off the fast path", line)
	}
	if !reflect.DeepEqual(got, j) {
		t.Fatalf("round-trip mismatch: got %+v want %+v", got, j)
	}
}

// FuzzJobDecode pins the fast parser's soundness over arbitrary
// bytes: ok implies stdlib agreement, byte for byte of the result.
func FuzzJobDecode(f *testing.F) {
	f.Add([]byte(`{"ID":3,"Release":1.5,"Size":0.25,"LeafSizes":null,"Weight":1,"Origin":0}`))
	f.Add([]byte(`{"ID":0,"Size":1e-7,"LeafSizes":[1,2.5,3e20]}`))
	f.Add([]byte(`{"Size":+1}`))
	f.Add([]byte(`{"ID":1,"ID":2}`))
	f.Add([]byte(`{"Origin":2147483648}`))
	f.Fuzz(func(t *testing.T, line []byte) {
		var fast Job
		if !fastParseJob(line, &fast) {
			return
		}
		var std Job
		if err := json.Unmarshal(line, &std); err != nil {
			t.Fatalf("fast parser accepted %q but stdlib rejects it: %v", line, err)
		}
		if !reflect.DeepEqual(fast, std) {
			t.Fatalf("decode mismatch for %q:\n fast %+v\n std  %+v", line, fast, std)
		}
	})
}

// FuzzJobEncode pins AppendJob byte-for-byte against json.Marshal.
func FuzzJobEncode(f *testing.F) {
	f.Add(0, 0.0, 0.0, false, 0.0, 0.0, 0.0, int32(0))
	f.Add(3, 1.5, 2.0/3.0, true, 1e-6, 1e21, 1.0, int32(-4))
	f.Add(-1, math.Copysign(0, -1), 5e-324, true, math.MaxFloat64, 9.999999999999999e20, 0.1, int32(1<<30))
	f.Fuzz(func(t *testing.T, id int, release, size float64, hasLeaves bool, l0, l1, weight float64, origin int32) {
		j := Job{ID: id, Release: release, Size: size, Weight: weight, Origin: origin}
		if hasLeaves {
			j.LeafSizes = []float64{l0, l1}
		}
		got, err := AppendJob(nil, &j)
		want, wantErr := json.Marshal(&j)
		if (err != nil) != (wantErr != nil) {
			t.Fatalf("error divergence for %+v: codec err=%v, stdlib err=%v", j, err, wantErr)
		}
		if err != nil {
			return
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("encode mismatch for %+v:\n got  %s\n want %s", j, got, want)
		}
	})
}
