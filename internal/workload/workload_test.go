package workload

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"treesched/internal/rng"
)

func TestPoissonBasics(t *testing.T) {
	r := rng.New(1)
	tr, err := Poisson(r, GenConfig{N: 500, Size: UniformSize{1, 5}, Load: 0.8, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 500 {
		t.Fatalf("N = %d", len(tr.Jobs))
	}
	for i := 1; i < len(tr.Jobs); i++ {
		if tr.Jobs[i].Release <= tr.Jobs[i-1].Release {
			t.Fatal("arrival times not strictly increasing")
		}
	}
}

func TestPoissonLoadCalibration(t *testing.T) {
	r := rng.New(2)
	const load, capacity = 0.5, 4.0
	size := UniformSize{2, 4}
	tr, err := Poisson(r, GenConfig{N: 20000, Size: size, Load: load, Capacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	// Offered work per unit time should be ~ load*capacity.
	offered := tr.TotalWork() / tr.Span()
	if math.Abs(offered-load*capacity)/(load*capacity) > 0.05 {
		t.Fatalf("offered load %v, want ~%v", offered, load*capacity)
	}
}

func TestPoissonRejectsBadConfig(t *testing.T) {
	r := rng.New(1)
	if _, err := Poisson(r, GenConfig{N: 0, Size: UniformSize{1, 2}, Load: 1}); err == nil {
		t.Fatal("accepted N=0")
	}
	if _, err := Poisson(r, GenConfig{N: 5, Load: 1}); err == nil {
		t.Fatal("accepted nil size dist")
	}
	if _, err := Poisson(r, GenConfig{N: 5, Size: UniformSize{1, 2}, Load: 0}); err == nil {
		t.Fatal("accepted zero load")
	}
}

func TestBursty(t *testing.T) {
	r := rng.New(3)
	tr, err := Bursty(r, GenConfig{N: 100, Size: UniformSize{1, 2}, Load: 0.9, Capacity: 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Bursty(r, GenConfig{N: 10, Size: UniformSize{1, 2}, Load: 1}, 0); err == nil {
		t.Fatal("accepted burstLen=0")
	}
}

func TestAdversarial(t *testing.T) {
	tr := Adversarial(rng.New(1), 50, 16)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].Size != 16 {
		t.Fatal("first adversarial job should be big")
	}
}

func TestRoundToClass(t *testing.T) {
	cases := []struct{ size, eps float64 }{
		{1, 0.5}, {1.4, 0.5}, {7.3, 0.1}, {100, 0.25}, {0.3, 0.5},
	}
	for _, c := range cases {
		v := RoundToClass(c.size, c.eps)
		if v < c.size {
			t.Fatalf("RoundToClass(%v,%v) = %v below input", c.size, c.eps, v)
		}
		if v > c.size*(1+c.eps)*(1+1e-9) {
			t.Fatalf("RoundToClass(%v,%v) = %v overshoots a class", c.size, c.eps, v)
		}
		// Result is a power of (1+eps).
		k := math.Log(v) / math.Log(1+c.eps)
		if math.Abs(k-math.Round(k)) > 1e-6 {
			t.Fatalf("RoundToClass(%v,%v) = %v not a class boundary", c.size, c.eps, v)
		}
	}
}

func TestRoundToClassProperty(t *testing.T) {
	check := func(sRaw, eRaw uint16) bool {
		size := 0.01 + float64(sRaw)/100
		eps := 0.05 + float64(eRaw%200)/100
		v := RoundToClass(size, eps)
		return v >= size && v <= size*(1+eps)*(1+1e-9)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassOf(t *testing.T) {
	eps := 0.5
	for k := -3; k <= 10; k++ {
		size := math.Pow(1+eps, float64(k))
		if got := ClassOf(size, eps); got != k {
			t.Fatalf("ClassOf(%v) = %d, want %d", size, got, k)
		}
	}
}

func TestClassRoundedDist(t *testing.T) {
	r := rng.New(5)
	d := ClassRounded{Base: UniformSize{1, 10}, Eps: 0.5}
	for i := 0; i < 1000; i++ {
		v := d.Sample(r)
		k := math.Log(v) / math.Log(1.5)
		if math.Abs(k-math.Round(k)) > 1e-6 {
			t.Fatalf("sample %v is not a class size", v)
		}
	}
}

func TestBimodalMean(t *testing.T) {
	d := BimodalSize{Small: 1, Big: 100, PBig: 0.1}
	want := 0.1*100 + 0.9*1
	if d.Mean() != want {
		t.Fatalf("Mean = %v, want %v", d.Mean(), want)
	}
	r := rng.New(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	if math.Abs(sum/n-want)/want > 0.05 {
		t.Fatalf("empirical mean %v, want ~%v", sum/n, want)
	}
}

func TestParetoCap(t *testing.T) {
	d := ParetoSize{Min: 1, Alpha: 1.2, Cap: 50}
	r := rng.New(9)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 1 || v > 50 {
			t.Fatalf("sample %v out of [1,50]", v)
		}
	}
	if d.Mean() <= 0 {
		t.Fatal("Pareto mean must be positive")
	}
}

func TestMakeUnrelated(t *testing.T) {
	r := rng.New(11)
	tr, _ := Poisson(r, GenConfig{N: 50, Size: UniformSize{1, 4}, Load: 0.5})
	err := MakeUnrelated(r, tr, UnrelatedConfig{Leaves: 6, Lo: 0.5, Hi: 2, PInfeasible: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if !j.Unrelated() || len(j.LeafSizes) != 6 {
			t.Fatal("job missing per-leaf sizes")
		}
		for li := 0; li < 6; li++ {
			if j.LeafSize(li) <= 0 {
				t.Fatal("non-positive leaf size")
			}
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMakeUnrelatedRejectsBadConfig(t *testing.T) {
	r := rng.New(1)
	tr, _ := Poisson(r, GenConfig{N: 5, Size: UniformSize{1, 2}, Load: 1})
	if err := MakeUnrelated(r, tr, UnrelatedConfig{Leaves: 0, Lo: 1, Hi: 2}); err == nil {
		t.Fatal("accepted Leaves=0")
	}
	if err := MakeUnrelated(r, tr, UnrelatedConfig{Leaves: 2, Lo: 2, Hi: 1}); err == nil {
		t.Fatal("accepted Hi<Lo")
	}
}

func TestRoundTraceToClasses(t *testing.T) {
	r := rng.New(13)
	tr, _ := Poisson(r, GenConfig{N: 30, Size: UniformSize{1, 9}, Load: 0.5})
	MakeUnrelated(r, tr, UnrelatedConfig{Leaves: 3, Lo: 0.5, Hi: 2})
	RoundTraceToClasses(tr, 0.5)
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		k := math.Log(j.Size) / math.Log(1.5)
		if math.Abs(k-math.Round(k)) > 1e-6 {
			t.Fatalf("router size %v not class rounded", j.Size)
		}
		for _, s := range j.LeafSizes {
			k := math.Log(s) / math.Log(1.5)
			if math.Abs(k-math.Round(k)) > 1e-6 {
				t.Fatalf("leaf size %v not class rounded", s)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := rng.New(15)
	tr, _ := Poisson(r, GenConfig{N: 20, Size: UniformSize{1, 3}, Load: 0.7})
	MakeUnrelated(r, tr, UnrelatedConfig{Leaves: 2, Lo: 0.5, Hi: 2})
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != len(tr.Jobs) {
		t.Fatal("job count changed in round trip")
	}
	for i := range got.Jobs {
		if got.Jobs[i].Release != tr.Jobs[i].Release || got.Jobs[i].Size != tr.Jobs[i].Size {
			t.Fatalf("job %d changed in round trip", i)
		}
	}
}

func TestReadJSONRejectsInvalid(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString(`{"Jobs":[{"ID":0,"Release":1,"Size":-2}]}`)); err == nil {
		t.Fatal("accepted negative size")
	}
	if _, err := ReadJSON(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("accepted garbage")
	}
}

func TestSorted(t *testing.T) {
	jobs := []Job{
		{Release: 5, Size: 1},
		{Release: 1, Size: 2},
		{Release: 3, Size: 3},
	}
	tr := Sorted(jobs)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Jobs[0].Size != 2 || tr.Jobs[2].Size != 1 {
		t.Fatal("Sorted did not reorder by release")
	}
}

func TestValidateCatchesUnsorted(t *testing.T) {
	tr := &Trace{Jobs: []Job{{ID: 0, Release: 2, Size: 1}, {ID: 1, Release: 1, Size: 1}}}
	if err := tr.Validate(); err == nil {
		t.Fatal("unsorted trace accepted")
	}
	tr2 := &Trace{Jobs: []Job{{ID: 5, Release: 1, Size: 1}}}
	if err := tr2.Validate(); err == nil {
		t.Fatal("non-dense IDs accepted")
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a, _ := Poisson(rng.New(42), GenConfig{N: 100, Size: ParetoSize{Min: 1, Alpha: 1.5, Cap: 100}, Load: 0.8})
	b, _ := Poisson(rng.New(42), GenConfig{N: 100, Size: ParetoSize{Min: 1, Alpha: 1.5, Cap: 100}, Load: 0.8})
	for i := range a.Jobs {
		if a.Jobs[i].Release != b.Jobs[i].Release || a.Jobs[i].Size != b.Jobs[i].Size {
			t.Fatal("same seed produced different traces")
		}
	}
}

func TestMakeRelated(t *testing.T) {
	r := rng.New(41)
	tr, _ := Poisson(r, GenConfig{N: 20, Size: UniformSize{Lo: 2, Hi: 4}, Load: 0.5})
	speeds := []float64{1, 2, 0.5}
	if err := MakeRelated(tr, speeds); err != nil {
		t.Fatal(err)
	}
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		for li, s := range speeds {
			if math.Abs(j.LeafSize(li)-j.Size/s) > 1e-12 {
				t.Fatalf("related size mismatch: leaf %d", li)
			}
		}
	}
	if err := MakeRelated(tr, nil); err == nil {
		t.Fatal("accepted empty speeds")
	}
	if err := MakeRelated(tr, []float64{1, -1}); err == nil {
		t.Fatal("accepted negative speed")
	}
}

func TestAssignWeights(t *testing.T) {
	r := rng.New(43)
	tr, _ := Poisson(r, GenConfig{N: 200, Size: UniformSize{Lo: 1, Hi: 2}, Load: 0.5})
	AssignWeights(r, tr, 5)
	seen := map[float64]bool{}
	for i := range tr.Jobs {
		w := tr.Jobs[i].Weight
		if w < 1 || w > 5 || w != math.Trunc(w) {
			t.Fatalf("weight %v out of [1,5] integers", w)
		}
		seen[w] = true
	}
	if len(seen) != 5 {
		t.Fatalf("weights covered %d/5 values", len(seen))
	}
}

func TestEffectiveWeight(t *testing.T) {
	j := Job{}
	if j.EffectiveWeight() != 1 {
		t.Fatal("zero weight should default to 1")
	}
	j.Weight = 4
	if j.EffectiveWeight() != 4 {
		t.Fatal("explicit weight ignored")
	}
}

func TestAssignWeightsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("maxWeight 0 accepted")
		}
	}()
	AssignWeights(rng.New(1), &Trace{}, 0)
}

func TestTraceStats(t *testing.T) {
	r := rng.New(51)
	tr, _ := Poisson(r, GenConfig{N: 100, Size: UniformSize{Lo: 2, Hi: 4}, Load: 0.5})
	st := tr.Stats()
	if st.Jobs != 100 || st.MeanSize < 2 || st.MeanSize > 4 || st.MaxSize < st.MeanSize {
		t.Fatalf("bad stats %+v", st)
	}
	if st.Unrelated || st.Weighted {
		t.Fatal("plain trace flagged as unrelated/weighted")
	}
	MakeUnrelated(r, tr, UnrelatedConfig{Leaves: 2, Lo: 0.5, Hi: 2})
	AssignWeights(r, tr, 3)
	st = tr.Stats()
	if !st.Unrelated {
		t.Fatal("unrelated not detected")
	}
	if st.OfferedPerSec <= 0 {
		t.Fatal("offered rate missing")
	}
	if (&Trace{}).Stats().Jobs != 0 {
		t.Fatal("empty trace stats")
	}
}
