package workload

import (
	"math"
	"testing"
)

// FuzzRoundToClass: for any positive finite size and eps in (0, 2],
// the rounded value is a class boundary within one class of the input.
func FuzzRoundToClass(f *testing.F) {
	f.Add(1.0, 0.5)
	f.Add(7.3, 0.1)
	f.Add(1e-6, 1.0)
	f.Add(1e9, 0.25)
	f.Fuzz(func(t *testing.T, size, eps float64) {
		if !(size > 0) || math.IsInf(size, 0) || size > 1e12 || size < 1e-12 {
			t.Skip()
		}
		if !(eps > 0.01) || eps > 2 {
			t.Skip()
		}
		v := RoundToClass(size, eps)
		if v < size {
			t.Fatalf("RoundToClass(%v,%v)=%v below input", size, eps, v)
		}
		if v > size*(1+eps)*(1+1e-9) {
			t.Fatalf("RoundToClass(%v,%v)=%v overshoots", size, eps, v)
		}
		k := math.Log(v) / math.Log(1+eps)
		if math.Abs(k-math.Round(k)) > 1e-4 {
			t.Fatalf("RoundToClass(%v,%v)=%v not a class boundary", size, eps, v)
		}
	})
}

// FuzzTraceValidate: Validate never panics on arbitrary job fields.
func FuzzTraceValidate(f *testing.F) {
	f.Add(0, 0.0, 1.0, 1.0)
	f.Add(3, -1.0, 0.0, -2.0)
	f.Fuzz(func(t *testing.T, id int, release, size, weight float64) {
		tr := &Trace{Jobs: []Job{{ID: id, Release: release, Size: size, Weight: weight}}}
		_ = tr.Validate() // must not panic, any error is fine
	})
}
