// Package workload defines the job model of the tree network
// scheduling problem and generators for the arrival/size processes
// used by the experiments: Poisson and bursty arrivals, uniform,
// bimodal, Pareto-tailed and class-rounded size distributions, and
// unrelated-endpoint per-leaf processing times. Traces serialize to
// JSON for record/replay.
package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"treesched/internal/rng"
)

// Job is a unit of work arriving online at the root of the network.
type Job struct {
	// ID is a dense index, unique within a trace, used to break ties.
	ID int
	// Release is the arrival time r_j at the root.
	Release float64
	// Size is p_j: the processing requirement on every router, and on
	// every leaf too in the identical setting.
	Size float64
	// LeafSizes, when non-nil, holds p_{j,v} for every leaf machine,
	// indexed by the tree's leaf index (unrelated endpoint setting).
	// When nil the job is identical: every leaf needs Size.
	LeafSizes []float64
	// Weight is the job's importance for the weighted flow-time
	// objective (zero means 1). The paper studies the unweighted
	// objective; weights power the X3 extension experiment.
	Weight float64
	// Origin optionally names a non-root release node for the
	// arbitrary-origin extension (experiment X1). Zero means the root.
	Origin int32
}

// LeafSize returns the processing requirement of the job on the leaf
// with the given leaf index.
func (j *Job) LeafSize(leafIndex int) float64 {
	if j.LeafSizes == nil {
		return j.Size
	}
	return j.LeafSizes[leafIndex]
}

// Unrelated reports whether the job carries per-leaf sizes.
func (j *Job) Unrelated() bool { return j.LeafSizes != nil }

// EffectiveWeight returns the job's weight, defaulting to 1.
func (j *Job) EffectiveWeight() float64 {
	if j.Weight <= 0 {
		return 1
	}
	return j.Weight
}

// AssignWeights draws integer weights in [1, maxWeight] for every job
// in the trace (the weighted flow-time extension).
func AssignWeights(r *rng.Rand, tr *Trace, maxWeight int) {
	if maxWeight < 1 {
		panic("workload: AssignWeights needs maxWeight >= 1")
	}
	for i := range tr.Jobs {
		tr.Jobs[i].Weight = float64(1 + r.Intn(maxWeight))
	}
}

// Validate checks that the job is well formed.
func (j *Job) Validate() error {
	if j.Size <= 0 {
		return fmt.Errorf("workload: job %d has non-positive size %v", j.ID, j.Size)
	}
	if j.Release < 0 || math.IsNaN(j.Release) || math.IsInf(j.Release, 0) {
		return fmt.Errorf("workload: job %d has invalid release %v", j.ID, j.Release)
	}
	for li, s := range j.LeafSizes {
		if s <= 0 {
			return fmt.Errorf("workload: job %d has non-positive size %v on leaf index %d", j.ID, s, li)
		}
	}
	return nil
}

// Trace is an ordered job sequence (ascending release times).
type Trace struct {
	Jobs []Job
	// Meta records how the trace was generated, for reproducibility.
	Meta map[string]string
}

// Validate checks ordering, ID density and per-job validity.
func (tr *Trace) Validate() error {
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		if j.ID != i {
			return fmt.Errorf("workload: job at position %d has ID %d (IDs must be dense)", i, j.ID)
		}
		if err := j.Validate(); err != nil {
			return err
		}
		if i > 0 && j.Release < tr.Jobs[i-1].Release {
			return fmt.Errorf("workload: releases not sorted at position %d", i)
		}
	}
	return nil
}

// TotalWork returns the sum of router sizes of all jobs.
func (tr *Trace) TotalWork() float64 {
	var s float64
	for i := range tr.Jobs {
		s += tr.Jobs[i].Size
	}
	return s
}

// Span returns the release time of the last job (0 for empty traces).
func (tr *Trace) Span() float64 {
	if len(tr.Jobs) == 0 {
		return 0
	}
	return tr.Jobs[len(tr.Jobs)-1].Release
}

// WriteJSON serializes the trace.
func (tr *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}

// ReadJSON parses a trace previously written with WriteJSON and
// validates it.
func ReadJSON(r io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(r).Decode(&tr); err != nil {
		return nil, fmt.Errorf("workload: decoding trace: %w", err)
	}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return &tr, nil
}

// SizeDist draws job sizes.
type SizeDist interface {
	Sample(r *rng.Rand) float64
	// Mean returns the distribution's expectation, used to calibrate
	// arrival rates to a target load factor.
	Mean() float64
	Name() string
}

// UniformSize draws sizes uniformly from [Lo, Hi).
type UniformSize struct{ Lo, Hi float64 }

func (u UniformSize) Sample(r *rng.Rand) float64 { return r.Range(u.Lo, u.Hi) }
func (u UniformSize) Mean() float64              { return (u.Lo + u.Hi) / 2 }
func (u UniformSize) Name() string               { return fmt.Sprintf("uniform[%g,%g)", u.Lo, u.Hi) }

// BimodalSize mixes small and large jobs: with probability PBig the
// size is Big, otherwise Small. This is the classic elephants-and-mice
// traffic mix of data center workloads.
type BimodalSize struct {
	Small, Big float64
	PBig       float64
}

func (b BimodalSize) Sample(r *rng.Rand) float64 {
	if r.Bool(b.PBig) {
		return b.Big
	}
	return b.Small
}
func (b BimodalSize) Mean() float64 { return b.PBig*b.Big + (1-b.PBig)*b.Small }
func (b BimodalSize) Name() string {
	return fmt.Sprintf("bimodal(%g|%g,p=%g)", b.Small, b.Big, b.PBig)
}

// ParetoSize draws heavy-tailed sizes, truncated at Cap to keep
// simulations finite. Alpha in (1,2] gives finite mean, infinite-ish
// variance — the regime where size-aware policies matter most.
type ParetoSize struct {
	Min, Alpha, Cap float64
}

func (p ParetoSize) Sample(r *rng.Rand) float64 {
	v := r.Pareto(p.Min, p.Alpha)
	if p.Cap > 0 && v > p.Cap {
		v = p.Cap
	}
	return v
}

func (p ParetoSize) Mean() float64 {
	if p.Alpha <= 1 {
		return p.Cap // truncated mean dominated by the cap
	}
	m := p.Min * p.Alpha / (p.Alpha - 1)
	if p.Cap > 0 && m > p.Cap {
		m = p.Cap
	}
	return m
}
func (p ParetoSize) Name() string { return fmt.Sprintf("pareto(min=%g,a=%g)", p.Min, p.Alpha) }

// ClassRounded wraps a distribution and rounds every sample up to the
// nearest power of (1+Eps), matching the paper's WLOG assumption that
// job sizes are powers of (1+ε). The Lemma validators require this.
type ClassRounded struct {
	Base SizeDist
	Eps  float64
}

func (c ClassRounded) Sample(r *rng.Rand) float64 {
	return RoundToClass(c.Base.Sample(r), c.Eps)
}
func (c ClassRounded) Mean() float64 { return c.Base.Mean() } // approximation; within (1+Eps)
func (c ClassRounded) Name() string  { return fmt.Sprintf("class(%s,eps=%g)", c.Base.Name(), c.Eps) }

// RoundToClass rounds size up to the nearest (1+eps)^k, k integer.
func RoundToClass(size, eps float64) float64 {
	if size <= 0 {
		panic("workload: RoundToClass of non-positive size")
	}
	if eps <= 0 {
		panic("workload: RoundToClass with non-positive eps")
	}
	k := math.Ceil(math.Log(size) / math.Log(1+eps))
	v := math.Pow(1+eps, k)
	// Guard against floating error putting v just below size.
	for v < size {
		v *= 1 + eps
	}
	return v
}

// ClassOf returns the class index k with (1+eps)^k == size (rounded).
func ClassOf(size, eps float64) int {
	return int(math.Round(math.Log(size) / math.Log(1+eps)))
}

// GenConfig configures the trace generators.
type GenConfig struct {
	N    int      // number of jobs
	Size SizeDist // router size distribution
	// Load is the target utilization of the most contended resource.
	// For Poisson generation, the arrival rate is calibrated as
	// Load*Capacity/E[Size] where Capacity is supplied by the caller
	// (e.g. number of root branches for trees, 1 for a line).
	Load     float64
	Capacity float64
	// SizeRand, when non-nil, is the stream size samples draw from,
	// leaving the main generator stream to the arrival process alone
	// (the partitioned-RNG discipline: adding a size draw cannot shift
	// an interarrival draw). Nil interleaves sizes and arrivals on the
	// one main stream — the legacy single-stream order.
	SizeRand *rng.Rand
}

// sizeRand returns the stream size samples draw from: SizeRand when
// set, otherwise the main stream r.
func (c *GenConfig) sizeRand(r *rng.Rand) *rng.Rand {
	if c.SizeRand != nil {
		return c.SizeRand
	}
	return r
}

func (c *GenConfig) validate() error {
	if c.N <= 0 {
		return errors.New("workload: N must be positive")
	}
	if c.Size == nil {
		return errors.New("workload: Size distribution required")
	}
	if c.Load <= 0 {
		return errors.New("workload: Load must be positive")
	}
	if c.Capacity <= 0 {
		c.Capacity = 1
	}
	return nil
}

// Poisson generates N jobs with exponential interarrival times
// calibrated so that the offered load on a capacity-Capacity resource
// is Load. Release times are strictly increasing (paper WLOG: all
// arrivals distinct).
func Poisson(r *rng.Rand, cfg GenConfig) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rate := cfg.Load * cfg.Capacity / cfg.Size.Mean()
	tr := &Trace{Meta: map[string]string{
		"process": "poisson",
		"size":    cfg.Size.Name(),
		"load":    fmt.Sprintf("%g", cfg.Load),
	}}
	t, sr := 0.0, cfg.sizeRand(r)
	for i := 0; i < cfg.N; i++ {
		t += r.Exp(rate)
		tr.Jobs = append(tr.Jobs, Job{ID: i, Release: t, Size: cfg.Size.Sample(sr)})
	}
	return tr, nil
}

// Bursty generates jobs in bursts: burst starts form a Poisson process
// and each burst releases BurstLen jobs back-to-back (separated by a
// tiny jitter to keep arrival times distinct). This stresses the
// congestion-awareness of assignment policies.
func Bursty(r *rng.Rand, cfg GenConfig, burstLen int) (*Trace, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if burstLen < 1 {
		return nil, errors.New("workload: burstLen must be >= 1")
	}
	rate := cfg.Load * cfg.Capacity / cfg.Size.Mean() / float64(burstLen)
	tr := &Trace{Meta: map[string]string{
		"process": fmt.Sprintf("bursty(%d)", burstLen),
		"size":    cfg.Size.Name(),
		"load":    fmt.Sprintf("%g", cfg.Load),
	}}
	t, id, sr := 0.0, 0, cfg.sizeRand(r)
	for id < cfg.N {
		t += r.Exp(rate)
		for b := 0; b < burstLen && id < cfg.N; b++ {
			// Distinct arrival times, per the paper's WLOG assumption.
			t += 1e-9
			tr.Jobs = append(tr.Jobs, Job{ID: id, Release: t, Size: cfg.Size.Sample(sr)})
			id++
		}
	}
	return tr, nil
}

// Adversarial generates the pattern that separates congestion-aware
// assignment from proximity-based assignment: a steady trickle of
// large jobs plus periodic floods of small jobs, all of which conflict
// on the same root branch if assigned naively.
func Adversarial(r *rng.Rand, n int, bigSize float64) *Trace {
	tr := &Trace{Meta: map[string]string{"process": "adversarial"}}
	t := 0.0
	id := 0
	for id < n {
		// One big job ...
		t += 1e-9
		tr.Jobs = append(tr.Jobs, Job{ID: id, Release: t, Size: bigSize})
		id++
		// ... followed by a flood of unit jobs before it can drain.
		flood := int(bigSize / 2)
		for f := 0; f < flood && id < n; f++ {
			t += 1e-9
			tr.Jobs = append(tr.Jobs, Job{ID: id, Release: t, Size: 1})
			id++
		}
		t += bigSize / 4
	}
	return tr
}

// UnrelatedConfig controls per-leaf processing time generation.
type UnrelatedConfig struct {
	Leaves int
	// SpeedRange draws an affinity factor f in [Lo,Hi); the leaf size
	// is Size*f. Hi/Lo therefore bounds how "unrelated" machines are.
	Lo, Hi float64
	// PInfeasible is the probability that a leaf is effectively
	// incompatible with the job: its size is multiplied by Penalty.
	PInfeasible float64
	Penalty     float64
}

// MakeUnrelated fills in per-leaf sizes for every job in the trace,
// mutating it. Identical traces become unrelated-endpoint traces.
func MakeUnrelated(r *rng.Rand, tr *Trace, cfg UnrelatedConfig) error {
	if cfg.Leaves <= 0 {
		return errors.New("workload: UnrelatedConfig.Leaves must be positive")
	}
	if cfg.Lo <= 0 || cfg.Hi <= cfg.Lo {
		return errors.New("workload: UnrelatedConfig requires 0 < Lo < Hi")
	}
	if cfg.Penalty == 0 {
		cfg.Penalty = 10
	}
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		j.LeafSizes = make([]float64, cfg.Leaves)
		for li := range j.LeafSizes {
			f := r.Range(cfg.Lo, cfg.Hi)
			if cfg.PInfeasible > 0 && r.Bool(cfg.PInfeasible) {
				f *= cfg.Penalty
			}
			j.LeafSizes[li] = j.Size * f
		}
	}
	if tr.Meta == nil {
		tr.Meta = map[string]string{}
	}
	tr.Meta["endpoints"] = fmt.Sprintf("unrelated[%g,%g)", cfg.Lo, cfg.Hi)
	return nil
}

// MakeRelated fills per-leaf sizes from fixed machine speeds: leaf i
// processes every job at speed leafSpeeds[i], so p_{j,i} = p_j/s_i —
// the related machines model of the paper's introduction, expressed
// as a special case of unrelated endpoints.
func MakeRelated(tr *Trace, leafSpeeds []float64) error {
	if len(leafSpeeds) == 0 {
		return errors.New("workload: MakeRelated needs at least one leaf speed")
	}
	for _, s := range leafSpeeds {
		if s <= 0 {
			return fmt.Errorf("workload: non-positive leaf speed %v", s)
		}
	}
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		j.LeafSizes = make([]float64, len(leafSpeeds))
		for li, s := range leafSpeeds {
			j.LeafSizes[li] = j.Size / s
		}
	}
	if tr.Meta == nil {
		tr.Meta = map[string]string{}
	}
	tr.Meta["endpoints"] = "related"
	return nil
}

// RoundTraceToClasses rounds every size in the trace (router and leaf)
// up to powers of (1+eps), in place.
func RoundTraceToClasses(tr *Trace, eps float64) {
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		j.Size = RoundToClass(j.Size, eps)
		for li := range j.LeafSizes {
			j.LeafSizes[li] = RoundToClass(j.LeafSizes[li], eps)
		}
	}
}

// TraceStats summarizes a trace's shape for logging and sanity
// checks.
type TraceStats struct {
	Jobs          int
	TotalWork     float64
	Span          float64
	MeanSize      float64
	MaxSize       float64
	MeanInterval  float64
	Unrelated     bool
	Weighted      bool
	OfferedPerSec float64 // TotalWork / Span
}

// Stats computes TraceStats.
func (tr *Trace) Stats() TraceStats {
	st := TraceStats{Jobs: len(tr.Jobs), TotalWork: tr.TotalWork(), Span: tr.Span()}
	if st.Jobs == 0 {
		return st
	}
	for i := range tr.Jobs {
		j := &tr.Jobs[i]
		st.MeanSize += j.Size
		if j.Size > st.MaxSize {
			st.MaxSize = j.Size
		}
		if j.LeafSizes != nil {
			st.Unrelated = true
		}
		if j.Weight > 0 && j.Weight != 1 {
			st.Weighted = true
		}
	}
	st.MeanSize /= float64(st.Jobs)
	if st.Jobs > 1 {
		st.MeanInterval = st.Span / float64(st.Jobs-1)
	}
	if st.Span > 0 {
		st.OfferedPerSec = st.TotalWork / st.Span
	}
	return st
}

// Sorted returns a copy of the trace sorted by release time with IDs
// reassigned densely. Generators already emit sorted traces; this is
// for hand-built test traces.
func Sorted(jobs []Job) *Trace {
	cp := make([]Job, len(jobs))
	copy(cp, jobs)
	sort.SliceStable(cp, func(a, b int) bool { return cp[a].Release < cp[b].Release })
	for i := range cp {
		cp[i].ID = i
	}
	return &Trace{Jobs: cp}
}
