// Fast-path NDJSON codec for Job lines. The daemon's admission path
// decodes one Job per submitted line and the client encodes one per
// POST; both went through encoding/json's reflective walk, which
// BENCH_7 showed as a top serving-tax component. AppendJob emits the
// exact bytes json.Marshal produces into a caller-reused buffer, and
// fastParseJob decodes the strict common case (flat object, plain
// field names, JSON-grammar numbers) without reflection. The parser
// is deliberately paranoid: any deviation — unknown or escaped keys,
// duplicate fields, a number strconv would take but JSON grammar
// rejects (hex floats, "+1", "1."), trailing content — returns
// ok=false so the caller falls back to json.Unmarshal and the stdlib
// keeps sole ownership of acceptance and error semantics.
package workload

import (
	"fmt"
	"math"
	"strconv"
)

// appendJSONFloat appends f formatted exactly as encoding/json does:
// shortest form, 'f' notation except below 1e-6 or at/above 1e21,
// exponent leading zero trimmed. f must be finite.
func appendJSONFloat(b []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// AppendJob appends j as one compact JSON object — the exact bytes
// json.Marshal(j) produces — and returns the extended buffer. No
// trailing newline. Non-finite floats are an error, mirroring
// encoding/json.
func AppendJob(dst []byte, j *Job) ([]byte, error) {
	if !jobFinite(j) {
		return dst, fmt.Errorf("workload: job %d has a non-finite field, refusing to encode", j.ID)
	}
	dst = append(dst, `{"ID":`...)
	dst = strconv.AppendInt(dst, int64(j.ID), 10)
	dst = append(dst, `,"Release":`...)
	dst = appendJSONFloat(dst, j.Release)
	dst = append(dst, `,"Size":`...)
	dst = appendJSONFloat(dst, j.Size)
	dst = append(dst, `,"LeafSizes":`...)
	if j.LeafSizes == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i, v := range j.LeafSizes {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONFloat(dst, v)
		}
		dst = append(dst, ']')
	}
	dst = append(dst, `,"Weight":`...)
	dst = appendJSONFloat(dst, j.Weight)
	dst = append(dst, `,"Origin":`...)
	dst = strconv.AppendInt(dst, int64(j.Origin), 10)
	dst = append(dst, '}')
	return dst, nil
}

func jobFinite(j *Job) bool {
	finite := func(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
	if !finite(j.Release) || !finite(j.Size) || !finite(j.Weight) {
		return false
	}
	for _, v := range j.LeafSizes {
		if !finite(v) {
			return false
		}
	}
	return true
}

// Field-seen bits for duplicate detection in fastParseJob.
const (
	fID = 1 << iota
	fRelease
	fSize
	fLeafSizes
	fWeight
	fOrigin
)

type fastParser struct {
	b   []byte
	pos int
}

func (p *fastParser) ws() {
	for p.pos < len(p.b) {
		switch p.b[p.pos] {
		case ' ', '\t', '\r', '\n':
			p.pos++
		default:
			return
		}
	}
}

func (p *fastParser) eat(c byte) bool {
	if p.pos < len(p.b) && p.b[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

// key scans a plain (escape-free) JSON string at the cursor.
func (p *fastParser) key() ([]byte, bool) {
	if !p.eat('"') {
		return nil, false
	}
	start := p.pos
	for p.pos < len(p.b) {
		c := p.b[p.pos]
		if c == '"' {
			k := p.b[start:p.pos]
			p.pos++
			return k, true
		}
		if c == '\\' || c < 0x20 {
			return nil, false
		}
		p.pos++
	}
	return nil, false
}

// number scans a literal at the cursor and validates it against the
// JSON number grammar — strictly, because strconv accepts forms JSON
// rejects (hex floats, "Inf", a leading '+', a bare trailing dot).
func (p *fastParser) number() ([]byte, bool) {
	b, i, n := p.b, p.pos, len(p.b)
	start := i
	if i < n && b[i] == '-' {
		i++
	}
	if i >= n {
		return nil, false
	}
	switch {
	case b[i] == '0':
		i++
	case b[i] >= '1' && b[i] <= '9':
		for i < n && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	default:
		return nil, false
	}
	if i < n && b[i] == '.' {
		i++
		if i >= n || b[i] < '0' || b[i] > '9' {
			return nil, false
		}
		for i < n && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	if i < n && (b[i] == 'e' || b[i] == 'E') {
		i++
		if i < n && (b[i] == '+' || b[i] == '-') {
			i++
		}
		if i >= n || b[i] < '0' || b[i] > '9' {
			return nil, false
		}
		for i < n && b[i] >= '0' && b[i] <= '9' {
			i++
		}
	}
	p.pos = i
	return b[start:i], true
}

func (p *fastParser) intVal(bitSize int) (int64, bool) {
	lit, ok := p.number()
	if !ok {
		return 0, false
	}
	// A fraction or exponent makes this a float literal; stdlib
	// rejects those for integer targets — let the fallback say so.
	for _, c := range lit {
		if c == '.' || c == 'e' || c == 'E' {
			return 0, false
		}
	}
	v, err := strconv.ParseInt(string(lit), 10, bitSize)
	if err != nil {
		return 0, false
	}
	return v, true
}

func (p *fastParser) floatVal() (float64, bool) {
	lit, ok := p.number()
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(string(lit), 64)
	if err != nil {
		return 0, false // e.g. out of float64 range; stdlib errors too
	}
	return v, true
}

// leafSizes scans null or a flat array of numbers. An empty array
// yields a non-nil empty slice, matching json.Unmarshal.
func (p *fastParser) leafSizes() ([]float64, bool) {
	if p.pos+4 <= len(p.b) && string(p.b[p.pos:p.pos+4]) == "null" {
		p.pos += 4
		return nil, true
	}
	if !p.eat('[') {
		return nil, false
	}
	p.ws()
	if p.eat(']') {
		return []float64{}, true
	}
	var out []float64
	for {
		v, ok := p.floatVal()
		if !ok {
			return nil, false
		}
		out = append(out, v)
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat(']') {
			return out, true
		}
		return nil, false
	}
}

// fastParseJob decodes one Job object from line without reflection.
// Returns false — leaving *j in an unspecified state — whenever the
// input strays from the strict common case; callers must then retry
// the same bytes with json.Unmarshal.
func fastParseJob(line []byte, j *Job) bool {
	p := fastParser{b: line}
	p.ws()
	if !p.eat('{') {
		return false
	}
	*j = Job{}
	var seen uint8
	p.ws()
	if !p.eat('}') {
		for {
			key, ok := p.key()
			if !ok {
				return false
			}
			p.ws()
			if !p.eat(':') {
				return false
			}
			p.ws()
			var bit uint8
			switch string(key) {
			case "ID":
				bit = fID
				v, ok := p.intVal(64)
				if !ok {
					return false
				}
				j.ID = int(v)
			case "Release":
				bit = fRelease
				if j.Release, ok = p.floatVal(); !ok {
					return false
				}
			case "Size":
				bit = fSize
				if j.Size, ok = p.floatVal(); !ok {
					return false
				}
			case "LeafSizes":
				bit = fLeafSizes
				if j.LeafSizes, ok = p.leafSizes(); !ok {
					return false
				}
			case "Weight":
				bit = fWeight
				if j.Weight, ok = p.floatVal(); !ok {
					return false
				}
			case "Origin":
				bit = fOrigin
				v, ok := p.intVal(32)
				if !ok {
					return false
				}
				j.Origin = int32(v)
			default:
				return false // unknown key: stdlib ignores it, we defer
			}
			if seen&bit != 0 {
				return false // duplicate key: stdlib is last-wins, defer
			}
			seen |= bit
			p.ws()
			if p.eat(',') {
				p.ws()
				continue
			}
			if p.eat('}') {
				break
			}
			return false
		}
	}
	p.ws()
	return p.pos == len(p.b)
}
