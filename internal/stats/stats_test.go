package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWelfordAgainstDirect(t *testing.T) {
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != 8 || w.Mean() != 5 {
		t.Fatalf("mean = %v, n = %d", w.Mean(), w.N())
	}
	// Unbiased variance of this classic dataset: 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v", w.Var())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("min/max = %v/%v", w.Min(), w.Max())
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.Std() != 0 {
		t.Fatal("empty Welford not zero")
	}
}

func TestWelfordMatchesNaiveProperty(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		data := make([]float64, len(raw))
		for i, v := range raw {
			data[i] = float64(v) / 7
			w.Add(data[i])
			sum += data[i]
		}
		mean := sum / float64(len(data))
		var ss float64
		for _, x := range data {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(len(data)-1)
		return math.Abs(w.Mean()-mean) < 1e-9*(1+math.Abs(mean)) &&
			math.Abs(w.Var()-naive) < 1e-6*(1+naive)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantile(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5}
	if Quantile(data, 0) != 1 || Quantile(data, 1) != 5 {
		t.Fatal("extreme quantiles wrong")
	}
	if Quantile(data, 0.5) != 3 {
		t.Fatalf("median = %v", Quantile(data, 0.5))
	}
	if got := Quantile(data, 0.25); got != 2 {
		t.Fatalf("q25 = %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Fatalf("interpolated median = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("summary %+v", s)
	}
	if s.P50 != 5.5 {
		t.Fatalf("p50 = %v", s.P50)
	}
	if s.String() == "" {
		t.Fatal("empty render")
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatal("empty summary")
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(2)
	for _, x := range []float64{1, 1.5, 2, 3, 4, 8, 0, -1} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Fatalf("total = %d", h.Total())
	}
	bs := h.Buckets()
	if len(bs) == 0 {
		t.Fatal("no buckets")
	}
	// Bucket [1,2): values 1, 1.5 -> 2 entries.
	if bs[0].Lo != 1 || bs[0].Count != 2 {
		t.Fatalf("first bucket %+v", bs[0])
	}
	if h.Render(20) == "" {
		t.Fatal("empty render")
	}
}

func TestLogHistogramBadBase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLogHistogram(1)
}

func TestCDF(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	got := CDF(data, []float64{0, 1, 2.5, 4, 9})
	want := []float64{0, 0.25, 0.5, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("CDF[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}
