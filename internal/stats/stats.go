// Package stats provides the small statistical toolkit the experiment
// harness uses: streaming moments (Welford), exact quantiles,
// logarithmic histograms and empirical CDFs.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Welford accumulates streaming mean and variance.
type Welford struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 for empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std returns the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min returns the smallest observation (0 for empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 for empty).
func (w *Welford) Max() float64 { return w.max }

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the data using
// linear interpolation between order statistics. It sorts a copy.
func Quantile(data []float64, q float64) float64 {
	if len(data) == 0 {
		return math.NaN()
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v out of [0,1]", q))
	}
	cp := append([]float64(nil), data...)
	sort.Float64s(cp)
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Summary bundles the usual descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P50, P90, P99 float64
	Max                float64
}

// Summarize computes a Summary of the data.
func Summarize(data []float64) Summary {
	var w Welford
	for _, x := range data {
		w.Add(x)
	}
	if len(data) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(data),
		Mean: w.Mean(), Std: w.Std(),
		Min: w.Min(),
		P50: Quantile(data, 0.5), P90: Quantile(data, 0.9), P99: Quantile(data, 0.99),
		Max: w.Max(),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// LogHistogram buckets positive values by powers of the given base.
type LogHistogram struct {
	Base    float64
	counts  map[int]int64
	total   int64
	underlo int64 // non-positive values
}

// NewLogHistogram creates a histogram with the given bucket base (>1).
func NewLogHistogram(base float64) *LogHistogram {
	if base <= 1 {
		panic("stats: log histogram base must exceed 1")
	}
	return &LogHistogram{Base: base, counts: make(map[int]int64)}
}

// Add records a value.
func (h *LogHistogram) Add(x float64) {
	h.total++
	if x <= 0 {
		h.underlo++
		return
	}
	k := int(math.Floor(math.Log(x) / math.Log(h.Base)))
	h.counts[k]++
}

// Total returns the number of recorded values.
func (h *LogHistogram) Total() int64 { return h.total }

// Buckets returns (lowerBound, count) pairs in ascending order.
func (h *LogHistogram) Buckets() []struct {
	Lo    float64
	Count int64
} {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]struct {
		Lo    float64
		Count int64
	}, 0, len(keys))
	for _, k := range keys {
		out = append(out, struct {
			Lo    float64
			Count int64
		}{math.Pow(h.Base, float64(k)), h.counts[k]})
	}
	return out
}

// Render draws an ASCII bar chart of the histogram.
func (h *LogHistogram) Render(width int) string {
	if width < 10 {
		width = 40
	}
	bs := h.Buckets()
	var maxC int64
	for _, b := range bs {
		if b.Count > maxC {
			maxC = b.Count
		}
	}
	var sb strings.Builder
	for _, b := range bs {
		bar := int(float64(width) * float64(b.Count) / float64(maxC))
		fmt.Fprintf(&sb, "%12.3g | %s %d\n", b.Lo, strings.Repeat("#", bar), b.Count)
	}
	return sb.String()
}

// CDF returns the empirical CDF of data evaluated at the given points.
func CDF(data, at []float64) []float64 {
	cp := append([]float64(nil), data...)
	sort.Float64s(cp)
	out := make([]float64, len(at))
	for i, x := range at {
		out[i] = float64(sort.SearchFloat64s(cp, math.Nextafter(x, math.Inf(1)))) / float64(len(cp))
	}
	return out
}
