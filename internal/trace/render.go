// Package trace renders topologies and schedules for human
// inspection: ASCII tree drawings (regenerating the paper's Figures 1
// and 2), per-node Gantt charts extracted from instrumented runs, and
// JSON schedule dumps.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"treesched/internal/sim"
	"treesched/internal/tree"
)

// RenderTree draws the topology as an ASCII tree, marking the root,
// routers and machines — the structure of the paper's Figure 1.
func RenderTree(t *tree.Tree) string {
	var sb strings.Builder
	var walk func(v tree.NodeID, prefix string, last bool)
	walk = func(v tree.NodeID, prefix string, last bool) {
		n := t.Node(v)
		connector := "├─ "
		childPrefix := prefix + "│  "
		if last {
			connector = "└─ "
			childPrefix = prefix + "   "
		}
		if v == t.Root() {
			connector, childPrefix = "", ""
			sb.WriteString(describe(t, v) + "\n")
		} else {
			sb.WriteString(prefix + connector + describe(t, v) + "\n")
		}
		kids := n.Children
		for i, c := range kids {
			walk(c, childPrefix, i == len(kids)-1)
		}
	}
	walk(t.Root(), "", true)
	return sb.String()
}

func describe(t *tree.Tree, v tree.NodeID) string {
	n := t.Node(v)
	label := n.Label
	if label == "" {
		label = fmt.Sprintf("n%d", v)
	}
	switch n.Kind {
	case tree.KindRoot:
		return fmt.Sprintf("%s [root: job distribution center]", label)
	case tree.KindLeaf:
		if n.Speed != 1 {
			return fmt.Sprintf("%s [machine, speed %.3g]", label, n.Speed)
		}
		return fmt.Sprintf("%s [machine]", label)
	default:
		if n.Speed != 1 {
			return fmt.Sprintf("%s [router, speed %.3g]", label, n.Speed)
		}
		return fmt.Sprintf("%s [router]", label)
	}
}

// DOT renders the topology in Graphviz dot format: the root as a
// double circle, routers as circles, machines as boxes; non-unit
// speeds annotate the labels.
func DOT(t *tree.Tree) string {
	var sb strings.Builder
	sb.WriteString("digraph tree {\n  rankdir=TB;\n")
	for i := 0; i < t.NumNodes(); i++ {
		v := tree.NodeID(i)
		n := t.Node(v)
		label := n.Label
		if label == "" {
			label = fmt.Sprintf("n%d", v)
		}
		if n.Speed != 1 {
			label = fmt.Sprintf("%s\\n%.3gx", label, n.Speed)
		}
		shape := "circle"
		switch n.Kind {
		case tree.KindRoot:
			shape = "doublecircle"
		case tree.KindLeaf:
			shape = "box"
		}
		fmt.Fprintf(&sb, "  %d [label=%q shape=%s];\n", v, label, shape)
	}
	for i := 0; i < t.NumNodes(); i++ {
		v := tree.NodeID(i)
		for _, c := range t.Children(v) {
			fmt.Fprintf(&sb, "  %d -> %d;\n", v, c)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// RenderReduction draws T and its broomstick T' side by side with the
// leaf correspondence — the paper's Figure 2.
func RenderReduction(bs *tree.Broomstick) string {
	var sb strings.Builder
	sb.WriteString("Original tree T:\n")
	sb.WriteString(RenderTree(bs.Original))
	sb.WriteString("\nBroomstick T' (every leaf 2 deeper, per-branch handle):\n")
	sb.WriteString(RenderTree(bs.Reduced))
	sb.WriteString("\nLeaf correspondence (T' -> T):\n")
	for _, rl := range bs.Reduced.Leaves() {
		ol := bs.ToOriginal[bs.Reduced.LeafIndex(rl)]
		fmt.Fprintf(&sb, "  leaf %d (depth %d) -> leaf %d (depth %d)\n",
			rl, bs.Reduced.Depth(rl), ol, bs.Original.Depth(ol))
	}
	return sb.String()
}

// Span is one contiguous occupancy of a node by a job.
type Span struct {
	Job   int     `json:"job"`
	Node  int32   `json:"node"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
}

// Schedule is a per-node view of an instrumented run: for every node,
// the (job, arrive, complete) hop records. Completion intervals are
// hop-level (arrival to completion on the node), not preemption-exact:
// the engine does not retain every preemption boundary, and the hop
// picture is what the Lemma analyses consume.
type Schedule struct {
	Spans []Span `json:"spans"`
}

// ExtractSchedule reads an instrumented run into a Schedule.
func ExtractSchedule(res *sim.Result) *Schedule {
	sched := &Schedule{}
	for _, js := range res.Sim.Tasks() {
		if js.HopArrive == nil {
			panic("trace: ExtractSchedule requires an instrumented run")
		}
		for h, v := range js.Path {
			sched.Spans = append(sched.Spans, Span{
				Job: js.ID, Node: int32(v),
				Start: js.HopArrive[h], End: js.HopComplete[h],
			})
		}
	}
	sort.Slice(sched.Spans, func(a, b int) bool {
		sa, sb := sched.Spans[a], sched.Spans[b]
		if sa.Node != sb.Node {
			return sa.Node < sb.Node
		}
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return sa.Job < sb.Job
	})
	return sched
}

// WriteJSON dumps the schedule.
func (s *Schedule) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// ExactGantt renders a preemption-exact ASCII Gantt chart from a run
// recorded with sim.Options.RecordSlices: each cell shows the job
// (ID mod 10) actually being processed at the cell midpoint.
func ExactGantt(res *sim.Result, cols int) string {
	if cols < 10 {
		cols = 60
	}
	slices := res.Sim.Slices()
	makespan := res.Stats.Makespan
	if makespan <= 0 {
		return "(empty schedule)\n"
	}
	t := res.Sim.Tree()
	rows := make(map[int32][]byte)
	for _, sl := range slices {
		row, ok := rows[int32(sl.Node)]
		if !ok {
			row = []byte(strings.Repeat(".", cols))
			rows[int32(sl.Node)] = row
		}
		for c := 0; c < cols; c++ {
			mid := (float64(c) + 0.5) / float64(cols) * makespan
			if mid >= sl.From && mid < sl.To {
				row[c] = byte('0' + sl.Job%10)
			}
		}
	}
	ids := make([]int32, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var sb strings.Builder
	fmt.Fprintf(&sb, "time 0 .. %.3g, %d columns (exact slices)\n", makespan, cols)
	for _, id := range ids {
		fmt.Fprintf(&sb, "%-18s %s\n", describe(t, tree.NodeID(id)), rows[id])
	}
	return sb.String()
}

// Gantt renders a coarse ASCII Gantt chart of node occupancy: one row
// per node, time quantized into the given number of columns over the
// makespan. Cells show the job ID (mod 10) whose hop interval covers
// the cell midpoint (latest-arriving hop wins ties).
func Gantt(res *sim.Result, cols int) string {
	if cols < 10 {
		cols = 60
	}
	sched := ExtractSchedule(res)
	makespan := res.Stats.Makespan
	if makespan <= 0 {
		return "(empty schedule)\n"
	}
	t := res.Sim.Tree()
	rows := make(map[int32][]byte)
	for _, sp := range sched.Spans {
		row, ok := rows[sp.Node]
		if !ok {
			row = []byte(strings.Repeat(".", cols))
			rows[sp.Node] = row
		}
		for c := 0; c < cols; c++ {
			mid := (float64(c) + 0.5) / float64(cols) * makespan
			if mid >= sp.Start && mid < sp.End {
				row[c] = byte('0' + sp.Job%10)
			}
		}
	}
	ids := make([]int32, 0, len(rows))
	for id := range rows {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	var sb strings.Builder
	fmt.Fprintf(&sb, "time 0 .. %.3g, %d columns\n", makespan, cols)
	for _, id := range ids {
		fmt.Fprintf(&sb, "%-18s %s\n", describe(t, tree.NodeID(id)), rows[id])
	}
	return sb.String()
}
