package trace

import (
	"bytes"
	"strings"
	"testing"

	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func TestRenderTree(t *testing.T) {
	tr := tree.FatTree(2, 1, 2)
	out := RenderTree(tr)
	if !strings.Contains(out, "[root: job distribution center]") {
		t.Fatalf("missing root marker:\n%s", out)
	}
	if strings.Count(out, "[machine]") != 4 {
		t.Fatalf("want 4 machines:\n%s", out)
	}
	if strings.Count(out, "[router]") != 2 {
		t.Fatalf("want 2 routers:\n%s", out)
	}
}

func TestRenderTreeSpeeds(t *testing.T) {
	tr := tree.Star(1).WithSpeeds(1.5, 1.5, 2)
	out := RenderTree(tr)
	if !strings.Contains(out, "speed 1.5") || !strings.Contains(out, "speed 2") {
		t.Fatalf("speeds not rendered:\n%s", out)
	}
}

func TestRenderReduction(t *testing.T) {
	bs, err := tree.Reduce(tree.FatTree(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	out := RenderReduction(bs)
	for _, want := range []string{"Original tree T:", "Broomstick T'", "Leaf correspondence"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func runInstrumented(t *testing.T) *sim.Result {
	t.Helper()
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 1, Size: 1},
	}}
	res, err := sim.Run(tr, trace, &sched.RoundRobin{}, sim.Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestExtractSchedule(t *testing.T) {
	res := runInstrumented(t)
	s := ExtractSchedule(res)
	// 2 jobs x 2 hops = 4 spans.
	if len(s.Spans) != 4 {
		t.Fatalf("spans = %d, want 4", len(s.Spans))
	}
	for _, sp := range s.Spans {
		if sp.End < sp.Start {
			t.Fatalf("span ends before start: %+v", sp)
		}
	}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"job"`) {
		t.Fatal("JSON missing fields")
	}
}

func TestGantt(t *testing.T) {
	res := runInstrumented(t)
	out := Gantt(res, 40)
	if !strings.Contains(out, "time 0 ..") {
		t.Fatalf("missing header:\n%s", out)
	}
	if !strings.Contains(out, "0") {
		t.Fatalf("job 0 never drawn:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + relay + 2 leaves
		t.Fatalf("rows = %d:\n%s", len(lines), out)
	}
}

func TestExtractRequiresInstrument(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 1}}}
	res, err := sim.Run(tr, trace, &sched.RoundRobin{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic without instrumentation")
		}
	}()
	ExtractSchedule(res)
}

func TestDOT(t *testing.T) {
	tr := tree.Star(2).WithSpeeds(1.5, 1.5, 1)
	out := DOT(tr)
	for _, want := range []string{"digraph tree", "doublecircle", "shape=box", "->", "1.5x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT missing %q:\n%s", want, out)
		}
	}
	// One edge per non-root node.
	if got, want := strings.Count(out, "->"), tr.NumNodes()-1; got != want {
		t.Fatalf("DOT edges = %d, want %d", got, want)
	}
}

func TestExactGantt(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0.5, Size: 1},
	}}
	res, err := sim.Run(tr, trace, &sched.RoundRobin{}, sim.Options{RecordSlices: true})
	if err != nil {
		t.Fatal(err)
	}
	out := ExactGantt(res, 40)
	if !strings.Contains(out, "exact slices") {
		t.Fatalf("missing header:\n%s", out)
	}
	// The relay row must show job 1 preempting job 0 in the middle:
	// pattern 0...1...0 on one row.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if len(line) < 20 {
			continue
		}
		row := line[19:] // skip the fixed-width node label
		i0 := strings.Index(row, "0")
		i1 := strings.Index(row, "1")
		last0 := strings.LastIndex(row, "0")
		if i0 >= 0 && i1 > i0 && last0 > i1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("preemption not visible in exact gantt:\n%s", out)
	}
}
