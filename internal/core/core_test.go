package core

import (
	"math"
	"testing"
	"testing/quick"

	"treesched/internal/rng"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// classTrace builds a Poisson trace with sizes rounded to powers of
// (1+eps), as the paper's analysis assumes.
func classTrace(t *testing.T, seed uint64, n int, load, eps float64, branches int) *workload.Trace {
	t.Helper()
	r := rng.New(seed)
	tr, err := workload.Poisson(r, workload.GenConfig{
		N:        n,
		Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: eps},
		Load:     load,
		Capacity: float64(branches),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestGreedyAvoidsCongestedBranch(t *testing.T) {
	// Two branches; flood branch 0 with work, then check a new job is
	// routed to branch 1.
	tr := tree.BroomstickTree(2, 3, 1)
	s := sim.New(tr, sim.Options{})
	branch0Leaves := tr.SubtreeLeaves(tr.RootAdjacent()[0])
	s.AdvanceTo(0)
	for i := 0; i < 10; i++ {
		a := &sim.Arrival{ID: i, Release: 0, Size: 4}
		if _, err := s.Inject(a, branch0Leaves[0]); err != nil {
			t.Fatal(err)
		}
	}
	g := NewGreedyIdentical(0.5)
	choice := g.Assign(s.Query(), &sim.Arrival{ID: 100, Release: 0, Size: 4})
	if tr.Branch(choice) != tr.RootAdjacent()[1] {
		t.Fatalf("greedy sent the job into the congested branch (leaf %d)", choice)
	}
}

func TestGreedyPrefersShallowLeafWhenIdle(t *testing.T) {
	// One branch with leaves at depth 2 and depth 5; empty system.
	b := tree.NewBuilder()
	v0 := b.AddRouter(b.Root())
	shallow := b.AddLeaf(v0)
	v1 := b.AddRouter(v0)
	v2 := b.AddRouter(v1)
	v3 := b.AddRouter(v2)
	b.AddLeaf(v3)
	tr := b.MustFinalize()
	s := sim.New(tr, sim.Options{})
	g := NewGreedyIdentical(0.5)
	if got := g.Assign(s.Query(), &sim.Arrival{ID: 0, Size: 2}); got != shallow {
		t.Fatalf("greedy chose %d, want shallow leaf %d", got, shallow)
	}
}

func TestGreedyAblationFlags(t *testing.T) {
	tr := tree.BroomstickTree(2, 3, 1)
	s := sim.New(tr, sim.Options{})
	g := NewGreedyIdentical(0.5)
	g.Cfg.DropVolumeTerm = true
	// Pure distance: any minimal-depth leaf is acceptable.
	v := g.Assign(s.Query(), &sim.Arrival{ID: 0, Size: 1})
	if tr.Depth(v) != 3 { // minimal leaf depth in BroomstickTree(2,3,1)
		t.Fatalf("distance-only greedy picked depth %d", tr.Depth(v))
	}
	g2 := NewGreedyIdentical(0.5)
	g2.Cfg.DropDistanceTerm = true
	if v := g2.Assign(s.Query(), &sim.Arrival{ID: 0, Size: 1}); tr.LeafIndex(v) < 0 {
		t.Fatal("volume-only greedy returned non-leaf")
	}
}

func TestGreedyEpsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("eps=0 accepted")
		}
	}()
	NewGreedyIdentical(0)
}

func TestGreedyUnrelatedPrefersFastLeaf(t *testing.T) {
	tr := tree.Star(2)
	s := sim.New(tr, sim.Options{})
	g := NewGreedyUnrelated(0.5)
	a := &sim.Arrival{ID: 0, Size: 1, LeafSizes: []float64{100, 1}}
	if got := g.Assign(s.Query(), a); got != tr.Leaves()[1] {
		t.Fatalf("unrelated greedy chose slow leaf %d", got)
	}
}

func TestGreedyUnrelatedBalancesLoadVsAffinity(t *testing.T) {
	// Fast leaf is heavily loaded; a modest affinity difference should
	// no longer win.
	tr := tree.Star(2)
	s := sim.New(tr, sim.Options{})
	s.AdvanceTo(0)
	fast := tr.Leaves()[0]
	for i := 0; i < 50; i++ {
		if _, err := s.Inject(&sim.Arrival{ID: i, Release: 0, Size: 1, LeafSizes: []float64{1, 2}}, fast); err != nil {
			t.Fatal(err)
		}
	}
	g := NewGreedyUnrelated(0.5)
	a := &sim.Arrival{ID: 100, Release: 0, Size: 1, LeafSizes: []float64{1, 2}}
	if got := g.Assign(s.Query(), a); got != tr.Leaves()[1] {
		t.Fatal("unrelated greedy ignored 50 queued jobs for a 2x affinity gain")
	}
}

func TestGreedyEndToEnd(t *testing.T) {
	tr := tree.FatTree(2, 2, 2).WithSpeeds(1, 1.5, 1.5)
	trace := classTrace(t, 3, 400, 0.8, 0.5, 2)
	res, err := sim.Run(tr, trace, NewGreedyIdentical(0.5), sim.Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Completed != 400 {
		t.Fatalf("completed %d/400", res.Stats.Completed)
	}
	if res.Stats.TotalFlow <= 0 {
		t.Fatal("no flow accumulated")
	}
}

func TestShadowAssignerEndToEnd(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	trace := classTrace(t, 5, 300, 0.7, 0.5, 2)
	sh, err := NewShadow(tr, ShadowConfig{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr, trace, sh, sim.Options{SelfCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Finish(); err != nil {
		t.Fatal(err)
	}
	rep := CheckLemma8(res, sh)
	if rep.Jobs != 300 {
		t.Fatalf("Lemma8 compared %d jobs, want 300", rep.Jobs)
	}
	if rep.Violations != 0 {
		t.Fatalf("Lemma 8 violated for %d jobs (max ratio %v)", rep.Violations, rep.MaxRatio)
	}
	if rep.MaxRatio > 1+1e-9 {
		t.Fatalf("Lemma 8 max ratio %v > 1", rep.MaxRatio)
	}
}

// Lemma 8's per-job domination must hold exactly on arbitrary random
// trees in the identical setting (the paper's induction is airtight
// there: every node on a job's path shares its priority order with the
// corresponding broomstick handle node).
func TestLemma8PropertyIdentical(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tr := tree.Random(r, tree.RandomConfig{Branches: 1 + r.Intn(3), MaxDepth: 2 + r.Intn(3), MaxChildren: 2, LeafProb: 0.5})
		trace, err := workload.Poisson(r, workload.GenConfig{
			N:        60,
			Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 8}, Eps: 0.5},
			Load:     0.6 + r.Float64(),
			Capacity: float64(len(tr.RootAdjacent())),
		})
		if err != nil {
			return false
		}
		sh, err := NewShadow(tr, ShadowConfig{Eps: 0.5})
		if err != nil {
			return false
		}
		res, err := sim.Run(tr, trace, sh, sim.Options{})
		if err != nil {
			return false
		}
		if err := sh.Finish(); err != nil {
			return false
		}
		rep := CheckLemma8(res, sh)
		return rep.Jobs == 60 && rep.Violations == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Reproduction finding (documented in DESIGN.md and EXPERIMENTS.md):
// in the *unrelated* setting, Lemma 8's per-job domination can fail
// for a small fraction of jobs. Mechanism: leaf priorities differ from
// router priorities, and the broomstick's +2 extra depth can delay a
// high-leaf-priority job long enough in T' that a low-priority job
// slips through its T' leaf first — while in T the high-priority job
// arrives in time to preempt it. Aggregate (total-flow) domination
// still held in every instance we generated; this test pins down both
// facts so a regression in either direction is caught.
func TestLemma8UnrelatedAggregateFinding(t *testing.T) {
	perJobViolations := 0
	for seed := uint64(1); seed <= 40; seed++ {
		r := rng.New(seed)
		tr := tree.Random(r, tree.RandomConfig{Branches: 1 + r.Intn(3), MaxDepth: 2 + r.Intn(3), MaxChildren: 2, LeafProb: 0.5})
		trace, err := workload.Poisson(r, workload.GenConfig{
			N:        80,
			Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 8}, Eps: 0.5},
			Load:     0.6 + r.Float64(),
			Capacity: float64(len(tr.RootAdjacent())),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{Leaves: len(tr.Leaves()), Lo: 0.5, Hi: 2}); err != nil {
			t.Fatal(err)
		}
		sh, err := NewShadow(tr, ShadowConfig{Eps: 0.5, Unrelated: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(tr, trace, sh, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.Finish(); err != nil {
			t.Fatal(err)
		}
		rep := CheckLemma8(res, sh)
		perJobViolations += rep.Violations
		if rep.TotalFlowT > rep.TotalFlowT2+1e-6 {
			t.Fatalf("seed %d: aggregate domination failed: flow(T)=%v > flow(T')=%v",
				seed, rep.TotalFlowT, rep.TotalFlowT2)
		}
	}
	if perJobViolations == 0 {
		t.Log("note: no per-job violations on these seeds; the finding relies on other instances")
	}
}

// lemmaTree builds the speed configuration of Lemmas 1-3: speed 1 on
// root-adjacent nodes, 1+eps elsewhere.
func lemmaTree(base *tree.Tree, eps float64) *tree.Tree {
	return base.WithSpeeds(1, 1+eps, 1+eps)
}

func TestLemma1Bound(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		tr := lemmaTree(tree.FatTree(2, 3, 2), eps)
		r := rng.New(11)
		trace, err := workload.Poisson(r, workload.GenConfig{
			N:        500,
			Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: eps},
			Load:     1.1, // overload: the bound must hold regardless
			Capacity: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(tr, trace, NewGreedyIdentical(eps), sim.Options{Instrument: true})
		if err != nil {
			t.Fatal(err)
		}
		rep := CheckLemma1(res, eps, false)
		if rep.Violations != 0 {
			t.Fatalf("eps=%v: %d Lemma 1 violations (max ratio %v)", eps, rep.Violations, rep.MaxRatio)
		}
		if rep.MaxRatio > 1 {
			t.Fatalf("eps=%v: max ratio %v > 1", eps, rep.MaxRatio)
		}
	}
}

func TestLemma2Invariant(t *testing.T) {
	eps := 0.5
	tr := lemmaTree(tree.FatTree(2, 3, 2), eps)
	r := rng.New(13)
	trace, err := workload.Poisson(r, workload.GenConfig{
		N:        400,
		Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: eps},
		Load:     1.2,
		Capacity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	chk := &Lemma2Checker{Eps: eps, SampleStride: 3}
	_, err = sim.Run(tr, trace, NewGreedyIdentical(eps), sim.Options{Instrument: true, Observer: chk.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Checks == 0 {
		t.Fatal("Lemma 2 checker never ran")
	}
	if chk.Violations != 0 {
		t.Fatalf("%d Lemma 2 violations out of %d checks (max ratio %v)", chk.Violations, chk.Checks, chk.MaxRatio)
	}
}

func TestLemma2UnrelatedInvariant(t *testing.T) {
	eps := 0.5
	tr := lemmaTree(tree.FatTree(2, 2, 2), eps)
	r := rng.New(17)
	trace, err := workload.Poisson(r, workload.GenConfig{
		N:        250,
		Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 8}, Eps: eps},
		Load:     1.0,
		Capacity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{Leaves: len(tr.Leaves()), Lo: 0.5, Hi: 2}); err != nil {
		t.Fatal(err)
	}
	workload.RoundTraceToClasses(trace, eps)
	chk := &Lemma2Checker{Eps: eps, Unrelated: true, SampleStride: 3}
	_, err = sim.Run(tr, trace, NewGreedyUnrelated(eps), sim.Options{Instrument: true, Observer: chk.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Checks == 0 || chk.Violations != 0 {
		t.Fatalf("unrelated Lemma 2: %d violations / %d checks (max %v)", chk.Violations, chk.Checks, chk.MaxRatio)
	}
}

// Lemma 3 statement: with no further arrivals, Φ_j at any instant
// bounds the job's remaining time to clear its last identical node.
// We release a batch at (essentially) one instant and then sample.
func TestPhiUpperBoundsRemainingWait(t *testing.T) {
	eps := 0.5
	s := 1 + eps
	tr := lemmaTree(tree.BroomstickTree(2, 4, 2), eps)
	var jobs []workload.Job
	r := rng.New(19)
	for i := 0; i < 40; i++ {
		jobs = append(jobs, workload.Job{
			ID: i, Release: float64(i) * 1e-7,
			Size: workload.RoundToClass(1+r.Float64()*15, eps),
		})
	}
	trace := &workload.Trace{Jobs: jobs}

	type sample struct {
		id  int
		t   float64
		phi float64
	}
	var samples []sample
	obs := func(sm *sim.Sim) {
		if sm.Now() < 1e-6 {
			return // batch still arriving
		}
		q := sm.Query()
		for _, js := range sm.Tasks() {
			if js.Completed || js.Hop < 1 {
				continue
			}
			samples = append(samples, sample{js.ID, sm.Now(), Phi(q, js, eps, s, false)})
		}
	}
	res, err := sim.Run(tr, trace, NewGreedyIdentical(eps), sim.Options{Instrument: true, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Fatal("no potential samples collected")
	}
	// Identical setting: the last identical node is the leaf itself,
	// so Φ bounds the remaining time to full completion.
	for _, sp := range samples {
		done := res.Jobs[sp.id].Completion
		remaining := done - sp.t
		if remaining > sp.phi+1e-6 {
			t.Fatalf("job %d at t=%v: remaining %v exceeds Φ=%v", sp.id, sp.t, remaining, sp.phi)
		}
	}
}

func TestPhiDecreaseChecker(t *testing.T) {
	eps := 0.5
	tr := lemmaTree(tree.FatTree(2, 3, 1), eps)
	trace := classTrace(t, 23, 200, 1.0, eps, 2)
	chk := &PhiDecreaseChecker{Eps: eps, Speed: 1 + eps}
	_, err := sim.Run(tr, trace, NewGreedyIdentical(eps), sim.Options{Instrument: true, Observer: chk.Observe})
	if err != nil {
		t.Fatal(err)
	}
	if chk.Checks == 0 {
		t.Fatal("Φ dynamics checker never ran")
	}
	if chk.Violations != 0 {
		t.Fatalf("Φ increased without arrivals %d/%d times (max excess %v)", chk.Violations, chk.Checks, chk.MaxExcess)
	}
}

func TestPhiZeroForCompleted(t *testing.T) {
	tr := tree.Star(1)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 1}}}
	res, err := sim.Run(tr, trace, NewGreedyIdentical(0.5), sim.Options{Instrument: true})
	if err != nil {
		t.Fatal(err)
	}
	if phi := Phi(res.Sim.Query(), res.Sim.Tasks()[0], 0.5, 1.5, false); phi != 0 {
		t.Fatalf("Φ of a completed job = %v", phi)
	}
}

func TestBoundHelpers(t *testing.T) {
	if got := MaxQueueVolumeBound(0.5, 3); math.Abs(got-12) > 1e-12 {
		t.Fatalf("MaxQueueVolumeBound = %v, want 12", got)
	}
	if got := InteriorWaitBound(0.5, 2, 3); math.Abs(got-144) > 1e-12 {
		t.Fatalf("InteriorWaitBound = %v, want 144", got)
	}
}

func TestShadowRejectsBadConfig(t *testing.T) {
	if _, err := NewShadow(tree.Star(2), ShadowConfig{Eps: 0}); err == nil {
		t.Fatal("accepted eps=0")
	}
}

func TestShadowNamePropagates(t *testing.T) {
	sh, err := NewShadow(tree.Star(2), ShadowConfig{Eps: 0.5, Unrelated: true})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Name() != "Shadow(GreedyUnrelated)" {
		t.Fatalf("Name = %q", sh.Name())
	}
}

// The Cost method must reproduce the objective the default Assign
// minimizes: the chosen leaf's Cost is the minimum over leaves.
func TestGreedyCostConsistency(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	s := sim.New(tr, sim.Options{})
	s.AdvanceTo(0)
	r := rng.New(71)
	g := NewGreedyIdentical(0.5)
	gu := NewGreedyUnrelated(0.5)
	for i := 0; i < 40; i++ {
		ls := make([]float64, len(tr.Leaves()))
		for li := range ls {
			ls[li] = 0.5 + 3*r.Float64()
		}
		a := &sim.Arrival{ID: i, Release: 0, Size: 1 + 7*r.Float64(), LeafSizes: ls}
		for _, probe := range []struct {
			pick sim.Assigner
			cost func(*sim.Query, *sim.Arrival, tree.NodeID) float64
		}{
			{g, g.Cost}, {gu, gu.Cost},
		} {
			chosen := probe.pick.Assign(s.Query(), a)
			best := probe.cost(s.Query(), a, chosen)
			for _, v := range tr.Leaves() {
				if c := probe.cost(s.Query(), a, v); c < best-1e-9 {
					t.Fatalf("Assign chose leaf %d with cost %v but leaf %d costs %v", chosen, best, v, c)
				}
			}
		}
		// Inject to evolve the state between probes.
		if _, err := s.Inject(a, tr.Leaves()[i%len(tr.Leaves())]); err != nil {
			t.Fatal(err)
		}
	}
}

// Phi in the unrelated setting excludes the leaf: a job already on its
// leaf has zero remaining identical nodes, so Phi is 0.
func TestPhiUnrelatedExcludesLeaf(t *testing.T) {
	tr := tree.Star(1)
	s := sim.New(tr, sim.Options{Instrument: true})
	s.AdvanceTo(0)
	js, err := s.Inject(&sim.Arrival{ID: 0, Release: 0, Size: 1, LeafSizes: []float64{5}}, tr.Leaves()[0])
	if err != nil {
		t.Fatal(err)
	}
	s.AdvanceTo(1.5) // past the relay (1 unit), now on the leaf
	if js.CurrentNode() != tr.Leaves()[0] {
		t.Fatalf("job not on leaf at t=1.5 (hop node %d)", js.CurrentNode())
	}
	if phi := Phi(s.Query(), js, 0.5, 1.5, true); phi != 0 {
		t.Fatalf("unrelated Phi on leaf = %v, want 0", phi)
	}
	if phi := Phi(s.Query(), js, 0.5, 1.5, false); phi <= 0 {
		t.Fatalf("identical Phi on leaf = %v, want > 0", phi)
	}
}
