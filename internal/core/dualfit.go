package core

import (
	"fmt"
	"math"

	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// DualFitReport is the outcome of RunDualFit: the Section 3.5 dual
// variables constructed during a live run of the identical-endpoint
// greedy algorithm on a broomstick, with the LP-Dual constraints
// (4)-(6) checked numerically. By weak duality a feasible dual gives
// DualObjective ≤ LP* ≤ 3·OPT, so DualObjective/3 is a certified
// lower bound on the optimum whenever no violations are found.
type DualFitReport struct {
	Eps float64
	// SumBeta is Σ_j β_j with β_j = min_v {F(j,v) + (6/ε²)d_v p_j}.
	SumBeta float64
	// AlphaIntegral is Σ_{v∈R} ∫ α_{v,t} dt: the time integral of the
	// branch fractional remaining volumes — exactly the algorithm's
	// fractional flow time.
	AlphaIntegral float64
	// FracCost is the algorithm's fractional flow time (engine view,
	// cross-checks AlphaIntegral).
	FracCost float64
	// DualObjective is (ε²/10)·(Σβ − Σα): the scaled dual value.
	DualObjective float64
	// CertifiedOPTLowerBound is DualObjective/3 when feasible (>0).
	CertifiedOPTLowerBound float64

	// Constraint check tallies.
	C4Checks, C4Violations int64
	C5Checks, C5Violations int64
	// C5MaxSlackRatio is max over checks of LHS/RHS for constraint
	// (5); ≤ 1 means satisfied with the paper's 10/ε² scaling.
	C5MaxSlackRatio float64
	// BetaOverCost is Σβ / fractional cost; Lemma 4 implies ≥ 1+ε.
	BetaOverCost float64
}

// dualRecorder accumulates per-job duals and samples α during the run.
type dualRecorder struct {
	eps   float64
	scale float64 // ε²/10
	t     *tree.Tree

	// Per job: release, router size, F(j,·) per branch, β_j.
	release map[int]float64
	size    map[int]float64
	fBranch map[int]map[tree.NodeID]float64
	beta    map[int]float64

	// recent holds recently released job IDs for constraint-(5)
	// sampling (the constraint is tightest just after release).
	recent []int

	// The α time-integral needs no sampling: Σ_{v∈R} ∫α_{v,t} dt is
	// by definition the total fractional flow, which the engine
	// accounts exactly.

	rep    *DualFitReport
	stride int
	events int64
}

// RunDualFit runs the identical-endpoint greedy on a broomstick with
// the Theorem 5 speed configuration ((1+ε) on root-adjacent nodes,
// (1+ε)² elsewhere), constructing and checking the dual solution.
// The tree must be a broomstick; sizes should be (1+ε)-class rounded.
func RunDualFit(t *tree.Tree, trace *workload.Trace, eps float64) (*DualFitReport, error) {
	if !tree.IsBroomstick(t) {
		return nil, fmt.Errorf("core: RunDualFit requires a broomstick tree")
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("core: RunDualFit eps must be in (0,1], got %v", eps)
	}
	aug := t.WithSpeeds(1+eps, (1+eps)*(1+eps), (1+eps)*(1+eps))
	g := NewGreedyIdentical(eps)

	rec := &dualRecorder{
		eps:     eps,
		scale:   eps * eps / 10,
		t:       aug,
		release: make(map[int]float64),
		size:    make(map[int]float64),
		fBranch: make(map[int]map[tree.NodeID]float64),
		beta:    make(map[int]float64),
		rep:     &DualFitReport{Eps: eps},
		stride:  3,
	}

	s := sim.New(aug, sim.Options{Observer: rec.observe})
	for i := range trace.Jobs {
		j := &trace.Jobs[i]
		if j.LeafSizes != nil {
			return nil, fmt.Errorf("core: RunDualFit is for the identical setting")
		}
		s.AdvanceTo(j.Release)
		a := &sim.Arrival{ID: j.ID, Release: j.Release, Size: j.Size}
		// Record F per branch and β at the assignment instant
		// (Section 3.5 sets the duals when the job arrives).
		q := s.Query()
		fb := make(map[tree.NodeID]float64, len(aug.RootAdjacent()))
		beta := math.Inf(1)
		for _, leaf := range aug.Leaves() {
			r := aug.Branch(leaf)
			f, ok := fb[r]
			if !ok {
				f = F(q, a, leaf)
				fb[r] = f
			}
			cost := f + (6/(eps*eps))*float64(aug.Depth(leaf))*a.Size
			if cost < beta {
				beta = cost
			}
		}
		leaf := g.Assign(q, a)
		// γ uses F *without* J_j's own p_j on branches the job is not
		// assigned to: the paper's S set "includes J_j", but J_j's
		// remaining volume only materializes in the α of the branch
		// it actually joins — on other branches the extra p_j has no
		// counterpart and would make constraint (5) unsatisfiable at
		// t = r_j. (Extended-abstract imprecision; this reading makes
		// Lemma 6's derivation go through verbatim.)
		assigned := aug.Branch(leaf)
		for r := range fb {
			if r != assigned {
				fb[r] -= a.Size
			}
		}
		rec.release[j.ID] = j.Release
		rec.size[j.ID] = j.Size
		rec.fBranch[j.ID] = fb
		rec.beta[j.ID] = beta
		rec.rep.SumBeta += beta
		rec.recent = append(rec.recent, j.ID)
		if len(rec.recent) > 100 {
			rec.recent = rec.recent[len(rec.recent)-100:]
		}
		if _, err := s.Inject(a, leaf); err != nil {
			return nil, err
		}
	}
	if err := s.Drain(); err != nil {
		return nil, err
	}

	st := s.Stats()
	rep := rec.rep
	rep.FracCost = st.FracFlow
	rep.AlphaIntegral = st.FracFlow // Σ_v∈R ∫α = total fractional flow by construction
	rep.DualObjective = rec.scale * (rep.SumBeta - rep.AlphaIntegral)
	if rep.C4Violations == 0 && rep.C5Violations == 0 && rep.DualObjective > 0 {
		rep.CertifiedOPTLowerBound = rep.DualObjective / 3
	}
	if rep.FracCost > 0 {
		rep.BetaOverCost = rep.SumBeta / rep.FracCost
	}

	// Constraint (4) check at t = r_j (the binding instant; the RHS
	// only grows with t and α_{v,t} = 0 on leaves):
	//   (ε²/10)(β_j − F(j,v)) ≤ (t − r_j) + d_v·p_j  for all v ∈ L.
	for id, beta := range rec.beta {
		for _, leaf := range t.Leaves() {
			fv := rec.fBranch[id][aug.Branch(leaf)]
			lhs := rec.scale * (beta - fv)
			rhs := float64(aug.Depth(leaf)) * rec.size[id]
			rep.C4Checks++
			if lhs > rhs+1e-9 {
				rep.C4Violations++
			}
		}
	}
	return rep, nil
}

// observe samples constraint (5) at event granularity:
//
//	(ε²/10)·(F(j,v) − p_j·α_{v,t}) ≤ (t − r_j)
//
// for root-adjacent v and recently released jobs (the constraint is
// slack for old jobs because the RHS grows linearly while F is fixed).
func (rec *dualRecorder) observe(s *sim.Sim) {
	rec.events++
	if rec.events%int64(rec.stride) != 0 {
		return
	}
	q := s.Query()
	now := s.Now()
	for _, r := range rec.t.RootAdjacent() {
		alpha := q.BranchFracRemaining(r)
		for _, id := range rec.recent {
			rj := rec.release[id]
			if now < rj {
				continue
			}
			fv, ok := rec.fBranch[id][r]
			if !ok {
				continue
			}
			lhs := rec.scale * (fv - rec.size[id]*alpha)
			rhs := now - rj
			rec.rep.C5Checks++
			if rhs > 0 {
				ratio := lhs / rhs
				if ratio > rec.rep.C5MaxSlackRatio {
					rec.rep.C5MaxSlackRatio = ratio
				}
			}
			if lhs > rhs+1e-9 {
				rec.rep.C5Violations++
			}
		}
	}
}
