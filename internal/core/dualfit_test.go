package core

import (
	"testing"

	"treesched/internal/rng"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func dualTrace(t *testing.T, seed uint64, n int, eps, load float64) *workload.Trace {
	t.Helper()
	r := rng.New(seed)
	tr, err := workload.Poisson(r, workload.GenConfig{
		N:        n,
		Size:     workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: eps},
		Load:     load,
		Capacity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDualFitFeasible(t *testing.T) {
	for _, eps := range []float64{0.1, 0.25, 0.5, 1.0} {
		tr := tree.BroomstickTree(2, 4, 2)
		trace := dualTrace(t, 31, 400, eps, 0.9)
		rep, err := RunDualFit(tr, trace, eps)
		if err != nil {
			t.Fatal(err)
		}
		if rep.C4Checks == 0 || rep.C5Checks == 0 {
			t.Fatalf("eps=%v: no constraint checks ran", eps)
		}
		if rep.C4Violations != 0 {
			t.Fatalf("eps=%v: %d constraint-(4) violations", eps, rep.C4Violations)
		}
		if rep.C5Violations != 0 {
			t.Fatalf("eps=%v: %d constraint-(5) violations (max ratio %v)", eps, rep.C5Violations, rep.C5MaxSlackRatio)
		}
		// Lemma 4 direction: Σβ exceeds the fractional cost.
		if rep.BetaOverCost < 1+eps {
			t.Fatalf("eps=%v: sum-beta/cost = %v < 1+eps", eps, rep.BetaOverCost)
		}
		if rep.CertifiedOPTLowerBound <= 0 {
			t.Fatalf("eps=%v: no certified bound (dual obj %v)", eps, rep.DualObjective)
		}
		// The certificate must sit below the algorithm's own cost
		// (it bounds OPT, which is below any schedule's cost).
		if rep.CertifiedOPTLowerBound > rep.FracCost {
			t.Fatalf("eps=%v: certified LB %v above the algorithm's cost %v",
				eps, rep.CertifiedOPTLowerBound, rep.FracCost)
		}
	}
}

func TestDualFitOverload(t *testing.T) {
	// Feasibility is a structural property; it must survive overload.
	tr := tree.BroomstickTree(2, 3, 2)
	trace := dualTrace(t, 37, 400, 0.5, 1.3)
	rep, err := RunDualFit(tr, trace, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if rep.C4Violations != 0 || rep.C5Violations != 0 {
		t.Fatalf("violations under overload: C4=%d C5=%d", rep.C4Violations, rep.C5Violations)
	}
}

func TestDualFitRejectsNonBroomstick(t *testing.T) {
	trace := dualTrace(t, 1, 10, 0.5, 0.5)
	if _, err := RunDualFit(tree.FatTree(2, 2, 2), trace, 0.5); err == nil {
		t.Fatal("accepted a non-broomstick tree")
	}
}

func TestDualFitRejectsUnrelated(t *testing.T) {
	tr := tree.BroomstickTree(1, 2, 2)
	trace := dualTrace(t, 1, 10, 0.5, 0.5)
	r := rng.New(2)
	if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{Leaves: len(tr.Leaves()), Lo: 0.5, Hi: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := RunDualFit(tr, trace, 0.5); err == nil {
		t.Fatal("accepted unrelated endpoints")
	}
}

func TestDualFitRejectsBadEps(t *testing.T) {
	tr := tree.BroomstickTree(1, 2, 2)
	trace := dualTrace(t, 1, 10, 0.5, 0.5)
	if _, err := RunDualFit(tr, trace, 0); err == nil {
		t.Fatal("accepted eps=0")
	}
	if _, err := RunDualFit(tr, trace, 2); err == nil {
		t.Fatal("accepted eps=2")
	}
}
