package core

import (
	"treesched/internal/sim"
	"treesched/internal/tree"
)

// Phi evaluates the Lemma 3 potential for an active job js at the
// current instant:
//
//	Φ_j(t) = (1/s)·max_{v ∈ P_j(t)} { Σ_{J_i ∈ S_{v,j}(t)} p^A_{i,v}(t)
//	                                 + (2/ε)·(d_j(t) − d_{v,j}(t))·p_j }
//
// where P_j(t) is the set of *identical* nodes the job still needs
// (all remaining routers, plus the leaf in the identical setting),
// d_j(t) is the number of remaining nodes and d_{v,j}(t) the number of
// nodes needed to reach v. Lemma 3 states that, with speed s ≥ 1+ε on
// all nodes except those adjacent to the root, Φ_j(t) bounds the
// job's remaining time to clear its last identical node assuming no
// further arrivals.
//
// The query must come from an engine with Options.Instrument enabled.
// unrelated excludes the leaf from P_j(t), matching the unrelated
// endpoint setting where the leaf is not an identical node.
func Phi(q *sim.Query, js *sim.JobState, eps, s float64, unrelated bool) float64 {
	if js.Completed {
		return 0
	}
	last := len(js.Path)
	if unrelated {
		last-- // leaf is not an identical node
	}
	dj := float64(last - js.Hop) // d_j(t): remaining identical nodes
	best := 0.0
	for idx := js.Hop; idx < last; idx++ {
		v := js.Path[idx]
		vol := sValue(q, js, v)
		dvj := float64(idx - js.Hop + 1) // nodes needed to reach v, inclusive
		term := vol + (2/eps)*(dj-dvj)*js.RouterSize
		if term > best {
			best = term
		}
	}
	return best / s
}

// sValue computes Σ_{J_i ∈ S_{v,j}(t)} p^A_{i,v}(t): the remaining
// volume on node v of jobs with higher SJF priority than js on v,
// including js itself.
func sValue(q *sim.Query, js *sim.JobState, v tree.NodeID) float64 {
	size := q.PrioSizeOn(js, v)
	var sum float64
	for _, i := range q.PendingOn(v) {
		if i == js || q.HigherPriorityOn(i, v, size, js.Release, js.ID) {
			sum += q.RemainingOn(i, v)
		}
	}
	return sum
}
