// Package core implements the algorithmic contribution of Im &
// Moseley (SPAA 2015): the greedy leaf-assignment rules for identical
// and unrelated endpoints (Sections 3.4–3.6), the potential function
// Φ_j(t) of Lemma 3, validators for the structural Lemmas 1 and 2, and
// the general-tree algorithm that simulates a broomstick online and
// copies its assignments (Section 3.7).
package core

import (
	"fmt"
	"math"

	"treesched/internal/sim"
	"treesched/internal/tree"
)

// GreedyConfig tunes the paper's assignment rule.
type GreedyConfig struct {
	// Eps is the ε of the analysis; the distance term weighs
	// (6/ε²)·d_v·p_j. Must be in (0, 1] for the paper's constants to
	// make sense (larger values are allowed for ablation sweeps).
	Eps float64
	// DropDistanceTerm removes the (6/ε²)d_v p_j term (ablation B5).
	DropDistanceTerm bool
	// DropVolumeTerm removes F(j,v) (and F'(j,v)) entirely,
	// degenerating to pure distance-greedy assignment (ablation B5).
	DropVolumeTerm bool
	// DistanceWeight overrides the 6/eps^2 coefficient of the
	// distance term when positive. The analysis needs the full
	// constant; experiment B5 shows a weight of ~1 (plain path work
	// P_{j,v}) performs better in practice.
	DistanceWeight float64
}

func (c GreedyConfig) validate() {
	if c.Eps <= 0 {
		panic(fmt.Sprintf("core: GreedyConfig.Eps must be positive, got %v", c.Eps))
	}
}

// distanceWeight is the coefficient of the distance term: the paper's
// 6/ε² unless overridden.
func (c GreedyConfig) distanceWeight() float64 {
	if c.DistanceWeight > 0 {
		return c.DistanceWeight
	}
	return 6 / (c.Eps * c.Eps)
}

// F computes the paper's F(j,v) for a candidate leaf v at time t=r_j:
//
//	F(j,v) = Σ_{J_i ∈ S_{R(v),j}(t)} p^A_{i,R(v)}(t)
//	       + p_j · |{J_i ∈ Q_{R(v)}(t) : p_i > p_j}|
//
// The first term is the higher-priority volume the job must wait for
// on its root-adjacent node (S includes J_j itself, contributing p_j);
// the second charges the job for every lower-priority job it delays.
func F(q *sim.Query, a *sim.Arrival, v tree.NodeID) float64 {
	r := q.Tree().Branch(v)
	volHigher, countLarger := q.AvailStats(r, a.Size, a.Release, a.ID)
	return volHigher + a.Size + a.Size*float64(countLarger)
}

// FPrime computes the paper's F'(j,v) for unrelated endpoints:
//
//	F'(j,v) = Σ_{J_i ∈ S_{v,j}(t)} p^A_{i,v}(t)
//	        + p_{j,v} · Σ_{J_i ∈ Q_v(t), p_{i,v} > p_{j,v}} p^A_{i,v}(t)/p_{i,v}
//
// mirroring F at the leaf itself, with the displacement term weighted
// by the delayed jobs' remaining fractions.
func FPrime(q *sim.Query, a *sim.Arrival, v tree.NodeID) float64 {
	pjv := a.LeafSize(q.Tree().LeafIndex(v))
	return q.LeafVolumeHigher(v, pjv, a.Release, a.ID) + pjv +
		pjv*q.LeafFracLarger(v, pjv)
}

// GreedyIdentical is the paper's assignment rule for the identical
// endpoint setting (Section 3.5): assign the arriving job to
//
//	argmin_{v ∈ L} { F(j,v) + (6/ε²)·d_v·p_j }.
type GreedyIdentical struct {
	Cfg GreedyConfig
}

// NewGreedyIdentical constructs the identical-endpoint greedy rule.
func NewGreedyIdentical(eps float64) *GreedyIdentical {
	g := &GreedyIdentical{Cfg: GreedyConfig{Eps: eps}}
	g.Cfg.validate()
	return g
}

// Name implements sim.Assigner.
func (g *GreedyIdentical) Name() string { return "GreedyIdentical" }

// Assign implements sim.Assigner. F(j,v) depends only on the
// root-adjacent ancestor R(v), so it is computed once per branch and
// shared by all leaves below it.
func (g *GreedyIdentical) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	g.Cfg.validate()
	t := q.Tree()
	var fc fCache
	best := tree.None
	bestCost := math.Inf(1)
	for _, v := range eligibleLeaves(q, a) {
		var cost float64
		if !g.Cfg.DropVolumeTerm {
			r := t.Branch(v)
			f, ok := fc.get(r)
			if !ok {
				f = F(q, a, v)
				fc.put(r, f)
			}
			cost += f
		}
		if !g.Cfg.DropDistanceTerm {
			cost += g.Cfg.distanceWeight() * float64(t.Depth(v)) * a.Size
		}
		if cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// fCache memoizes F(j,v) per root-adjacent branch during one Assign
// call. Branch counts are small, so a linear scan over fixed arrays
// beats a map — and, unlike a map (or an appended slice, whose
// append-through-pointer defeats escape analysis), it stays entirely
// on the caller's stack: zero allocations on the per-arrival hot
// path. On trees with more root branches than the arrays hold the
// cache simply stops memoizing; F is then recomputed per leaf, which
// is correct, just slower.
type fCache struct {
	n    int
	keys [16]tree.NodeID
	vals [16]float64
}

func (c *fCache) get(r tree.NodeID) (float64, bool) {
	for i := 0; i < c.n; i++ {
		if c.keys[i] == r {
			return c.vals[i], true
		}
	}
	return 0, false
}

func (c *fCache) put(r tree.NodeID, f float64) {
	if c.n < len(c.keys) {
		c.keys[c.n] = r
		c.vals[c.n] = f
		c.n++
	}
}

// Cost exposes the rule's objective for a candidate leaf (used by the
// dual-fitting experiment to compute β_j = min_v cost).
func (g *GreedyIdentical) Cost(q *sim.Query, a *sim.Arrival, v tree.NodeID) float64 {
	return F(q, a, v) + g.Cfg.distanceWeight()*float64(q.Tree().Depth(v))*a.Size
}

// GreedyUnrelated is the paper's assignment rule for the unrelated
// endpoint setting (Section 3.6): assign the arriving job to
//
//	argmin_{v ∈ L} { F(j,v) + F'(j,v) + (6/ε²)·d_v·p_j }.
type GreedyUnrelated struct {
	Cfg GreedyConfig
}

// NewGreedyUnrelated constructs the unrelated-endpoint greedy rule.
func NewGreedyUnrelated(eps float64) *GreedyUnrelated {
	g := &GreedyUnrelated{Cfg: GreedyConfig{Eps: eps}}
	g.Cfg.validate()
	return g
}

// Name implements sim.Assigner.
func (g *GreedyUnrelated) Name() string { return "GreedyUnrelated" }

// Assign implements sim.Assigner. The F term is cached per branch
// (it depends only on R(v)); F' must be evaluated per leaf.
func (g *GreedyUnrelated) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	g.Cfg.validate()
	t := q.Tree()
	var fc fCache
	best := tree.None
	bestCost := math.Inf(1)
	for _, v := range eligibleLeaves(q, a) {
		var cost float64
		if !g.Cfg.DropVolumeTerm {
			r := t.Branch(v)
			f, ok := fc.get(r)
			if !ok {
				f = F(q, a, v)
				fc.put(r, f)
			}
			cost += f + FPrime(q, a, v)
		}
		if !g.Cfg.DropDistanceTerm {
			cost += g.Cfg.distanceWeight() * float64(t.Depth(v)) * a.Size
		}
		if cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// Cost exposes the unrelated rule's objective for a candidate leaf.
func (g *GreedyUnrelated) Cost(q *sim.Query, a *sim.Arrival, v tree.NodeID) float64 {
	return F(q, a, v) + FPrime(q, a, v) +
		g.Cfg.distanceWeight()*float64(q.Tree().Depth(v))*a.Size
}

// eligibleLeaves honors the arbitrary-origin extension: jobs released
// at an interior node may only be assigned below it.
func eligibleLeaves(q *sim.Query, a *sim.Arrival) []tree.NodeID {
	if a.Origin == 0 {
		return q.Tree().Leaves()
	}
	t := q.Tree()
	if t.IsLeaf(a.Origin) {
		return []tree.NodeID{a.Origin}
	}
	return t.SubtreeLeaves(a.Origin)
}
