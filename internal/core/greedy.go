// Package core implements the algorithmic contribution of Im &
// Moseley (SPAA 2015): the greedy leaf-assignment rules for identical
// and unrelated endpoints (Sections 3.4–3.6), the potential function
// Φ_j(t) of Lemma 3, validators for the structural Lemmas 1 and 2, and
// the general-tree algorithm that simulates a broomstick online and
// copies its assignments (Section 3.7).
package core

import (
	"fmt"
	"math"
	"slices"

	"treesched/internal/sim"
	"treesched/internal/tree"
)

// DisableBoundPruning, when set, makes the greedy assigners score
// every eligible leaf in leaf order instead of descending candidates
// by the admissible distance bound. The selected leaf is identical
// either way (the pruning argument is exact, see Assign); the knob
// exists for the differential tests and for benchmarking the pruning's
// effect. Not safe to toggle while an engine is running.
var DisableBoundPruning bool

// GreedyConfig tunes the paper's assignment rule.
type GreedyConfig struct {
	// Eps is the ε of the analysis; the distance term weighs
	// (6/ε²)·d_v·p_j. Must be in (0, 1] for the paper's constants to
	// make sense (larger values are allowed for ablation sweeps).
	Eps float64
	// DropDistanceTerm removes the (6/ε²)d_v p_j term (ablation B5).
	DropDistanceTerm bool
	// DropVolumeTerm removes F(j,v) (and F'(j,v)) entirely,
	// degenerating to pure distance-greedy assignment (ablation B5).
	DropVolumeTerm bool
	// DistanceWeight overrides the 6/eps^2 coefficient of the
	// distance term when positive. The analysis needs the full
	// constant; experiment B5 shows a weight of ~1 (plain path work
	// P_{j,v}) performs better in practice.
	DistanceWeight float64
}

func (c GreedyConfig) validate() {
	if c.Eps <= 0 {
		panic(fmt.Sprintf("core: GreedyConfig.Eps must be positive, got %v", c.Eps))
	}
}

// distanceWeight is the coefficient of the distance term: the paper's
// 6/ε² unless overridden.
func (c GreedyConfig) distanceWeight() float64 {
	if c.DistanceWeight > 0 {
		return c.DistanceWeight
	}
	return 6 / (c.Eps * c.Eps)
}

// F computes the paper's F(j,v) for a candidate leaf v at time t=r_j:
//
//	F(j,v) = Σ_{J_i ∈ S_{R(v),j}(t)} p^A_{i,R(v)}(t)
//	       + p_j · |{J_i ∈ Q_{R(v)}(t) : p_i > p_j}|
//
// The first term is the higher-priority volume the job must wait for
// on its root-adjacent node (S includes J_j itself, contributing p_j);
// the second charges the job for every lower-priority job it delays.
// The engine memoizes the underlying AvailStats per node and arrival
// (see sim.Query), so evaluating F for every leaf of a branch costs
// one snapshot search total, not one per leaf.
func F(q *sim.Query, a *sim.Arrival, v tree.NodeID) float64 {
	r := q.Tree().Branch(v)
	volHigher, countLarger := q.AvailStats(r, a.Size, a.Release, a.ID)
	return volHigher + a.Size + a.Size*float64(countLarger)
}

// FPrime computes the paper's F'(j,v) for unrelated endpoints:
//
//	F'(j,v) = Σ_{J_i ∈ S_{v,j}(t)} p^A_{i,v}(t)
//	        + p_{j,v} · Σ_{J_i ∈ Q_v(t), p_{i,v} > p_{j,v}} p^A_{i,v}(t)/p_{i,v}
//
// mirroring F at the leaf itself, with the displacement term weighted
// by the delayed jobs' remaining fractions.
func FPrime(q *sim.Query, a *sim.Arrival, v tree.NodeID) float64 {
	pjv := a.LeafSize(q.Tree().LeafIndex(v))
	return q.LeafVolumeHigher(v, pjv, a.Release, a.ID) + pjv +
		pjv*q.LeafFracLarger(v, pjv)
}

// dispatchOrder caches the depth-ascending visit order of one
// candidate leaf set. Keyed by the tree and the leaf contents (an
// owned copy — eligibleLeaves may return freshly allocated slices, so
// slice identity would be unsound under address reuse); in steady
// state every arrival sees the same root-origin leaf list and the
// order is computed once. Assigners holding one are not goroutine-safe
// (like the other stateful assigners, e.g. sched.RoundRobin).
type dispatchOrder struct {
	tree   *tree.Tree
	leaves []tree.NodeID
	order  []int32
	groups []branchGroup
}

// branchGroup is a maximal run of depth-ordered candidates sharing
// (root-adjacent branch, depth) — one identical-rule cost evaluation
// covers the whole run, and its lowest-index leaf is the only member
// that can ever win the first-minimum tie-break.
type branchGroup struct {
	leaf  tree.NodeID // lowest-index leaf of the run (the representative)
	pos   int32       // its index in the candidate slice (tie-break rank)
	depth int32
}

// rebuild recomputes the cached order and groups for a new candidate
// set.
func (d *dispatchOrder) rebuild(t *tree.Tree, leaves []tree.NodeID) {
	d.tree = t
	d.leaves = append(d.leaves[:0], leaves...)
	d.order = d.order[:0]
	for i := range leaves {
		d.order = append(d.order, int32(i))
	}
	slices.SortFunc(d.order, func(x, y int32) int {
		dx, dy := t.Depth(leaves[x]), t.Depth(leaves[y])
		if dx != dy {
			return dx - dy
		}
		return int(x - y)
	})
	d.groups = d.groups[:0]
	lastB, lastD := tree.None, int32(-1)
	for _, i := range d.order {
		v := leaves[i]
		b, dep := t.Branch(v), int32(t.Depth(v))
		if b != lastB || dep != lastD {
			d.groups = append(d.groups, branchGroup{leaf: v, pos: i, depth: dep})
			lastB, lastD = b, dep
		}
	}
}

// of returns indices into leaves sorted by (depth, index) ascending —
// the admissible-bound order of the pruned descent.
func (d *dispatchOrder) of(t *tree.Tree, leaves []tree.NodeID) []int32 {
	if d.tree != t || !slices.Equal(d.leaves, leaves) {
		d.rebuild(t, leaves)
	}
	return d.order
}

// groupsOf returns the (branch, depth) run groups of the candidates in
// the same depth-ascending order. Two non-adjacent runs of one key
// yield two groups; that only costs a duplicate (memoized) evaluation
// and never changes the winner.
func (d *dispatchOrder) groupsOf(t *tree.Tree, leaves []tree.NodeID) []branchGroup {
	if d.tree != t || !slices.Equal(d.leaves, leaves) {
		d.rebuild(t, leaves)
	}
	return d.groups
}

// GreedyIdentical is the paper's assignment rule for the identical
// endpoint setting (Section 3.5): assign the arriving job to
//
//	argmin_{v ∈ L} { F(j,v) + (6/ε²)·d_v·p_j }.
type GreedyIdentical struct {
	Cfg GreedyConfig
	ord dispatchOrder
}

// NewGreedyIdentical constructs the identical-endpoint greedy rule.
func NewGreedyIdentical(eps float64) *GreedyIdentical {
	g := &GreedyIdentical{Cfg: GreedyConfig{Eps: eps}}
	g.Cfg.validate()
	return g
}

// Name implements sim.Assigner.
func (g *GreedyIdentical) Name() string { return "GreedyIdentical" }

// Assign implements sim.Assigner. F(j,v) depends only on the
// root-adjacent ancestor R(v), so the engine's per-node query memo
// shares it across all leaves below one branch.
//
// Candidates are visited in depth-ascending order and the descent
// stops at the first leaf whose admissible lower bound
//
//	lb(v) = dw·d_v·p_j + p_j      (p_j ≤ F(j,v): volHigher ≥ 0 and
//	                               the count term is nonnegative)
//
// strictly exceeds the best cost so far: the bound is monotone in
// depth (float multiplication and addition are monotone on
// nonnegative operands), so every remaining candidate is strictly
// worse than the incumbent and cannot even tie. Ties among scored
// candidates resolve to the lowest leaf index, which is exactly the
// first-minimum-wins rule of the plain left-to-right scan — the
// selected leaf is bit-for-bit the unpruned argmin.
func (g *GreedyIdentical) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	g.Cfg.validate()
	t := q.Tree()
	leaves := eligibleLeaves(q, a)
	if len(leaves) == 1 {
		return leaves[0]
	}
	var dw float64
	if !g.Cfg.DropDistanceTerm {
		dw = g.Cfg.distanceWeight()
	}
	if DisableBoundPruning || dw == 0 {
		// The cost depends on v only through (R(v), d_v): consecutive
		// candidates sharing both reuse the identical cost bits, and an
		// equal cost never displaces the incumbent, so skipping the
		// recomputation is exact.
		lastBranch := tree.None
		lastDepth := -1
		var lastCost float64
		best := tree.None
		bestCost := math.Inf(1)
		for _, v := range leaves {
			r, d := t.Branch(v), t.Depth(v)
			var cost float64
			if r == lastBranch && d == lastDepth {
				cost = lastCost
			} else {
				if !g.Cfg.DropVolumeTerm {
					cost += F(q, a, v)
				}
				if !g.Cfg.DropDistanceTerm {
					cost += dw * float64(d) * a.Size
				}
				lastBranch, lastDepth, lastCost = r, d, cost
			}
			if cost < bestCost {
				best, bestCost = v, cost
			}
		}
		return best
	}
	minF := a.Size
	if g.Cfg.DropVolumeTerm {
		minF = 0 // cost degenerates to the distance term alone
	}
	// Every leaf of a (branch, depth) group shares the cost, so only
	// each group's lowest-index member can win first-minimum-wins;
	// scoring one representative per group is exact and calls F once
	// per group instead of once per leaf.
	best := tree.None
	bestCost := math.Inf(1)
	bestPos := int32(math.MaxInt32)
	for _, gr := range g.ord.groupsOf(t, leaves) {
		distTerm := dw * float64(gr.depth) * a.Size
		if distTerm+minF > bestCost {
			break
		}
		var cost float64
		if !g.Cfg.DropVolumeTerm {
			cost += F(q, a, gr.leaf)
		}
		cost += distTerm
		if cost < bestCost || (cost == bestCost && gr.pos < bestPos) {
			best, bestCost, bestPos = gr.leaf, cost, gr.pos
		}
	}
	return best
}

// Cost exposes the rule's objective for a candidate leaf (used by the
// dual-fitting experiment to compute β_j = min_v cost).
func (g *GreedyIdentical) Cost(q *sim.Query, a *sim.Arrival, v tree.NodeID) float64 {
	return F(q, a, v) + g.Cfg.distanceWeight()*float64(q.Tree().Depth(v))*a.Size
}

// GreedyUnrelated is the paper's assignment rule for the unrelated
// endpoint setting (Section 3.6): assign the arriving job to
//
//	argmin_{v ∈ L} { F(j,v) + F'(j,v) + (6/ε²)·d_v·p_j }.
type GreedyUnrelated struct {
	Cfg GreedyConfig
	ord dispatchOrder
}

// NewGreedyUnrelated constructs the unrelated-endpoint greedy rule.
func NewGreedyUnrelated(eps float64) *GreedyUnrelated {
	g := &GreedyUnrelated{Cfg: GreedyConfig{Eps: eps}}
	g.Cfg.validate()
	return g
}

// Name implements sim.Assigner.
func (g *GreedyUnrelated) Name() string { return "GreedyUnrelated" }

// Assign implements sim.Assigner. The F term is shared per branch via
// the engine's query memo; F' must be evaluated per leaf. The pruned
// descent mirrors GreedyIdentical's: p_j bounds F(j,v) from below and
// F'(j,v) ≥ p_{j,v} ≥ 0 adds only nonnegative terms, so
// dw·d_v·p_j + p_j is an exact admissible bound for the full cost and
// strictly-greater pruning preserves the argmin and its tie-break.
func (g *GreedyUnrelated) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	g.Cfg.validate()
	t := q.Tree()
	leaves := eligibleLeaves(q, a)
	if len(leaves) == 1 {
		return leaves[0]
	}
	var dw float64
	if !g.Cfg.DropDistanceTerm {
		dw = g.Cfg.distanceWeight()
	}
	if DisableBoundPruning || dw == 0 {
		best := tree.None
		bestCost := math.Inf(1)
		for _, v := range leaves {
			var cost float64
			if !g.Cfg.DropVolumeTerm {
				cost += F(q, a, v) + FPrime(q, a, v)
			}
			if !g.Cfg.DropDistanceTerm {
				cost += dw * float64(t.Depth(v)) * a.Size
			}
			if cost < bestCost {
				best, bestCost = v, cost
			}
		}
		return best
	}
	minF := a.Size
	if g.Cfg.DropVolumeTerm {
		minF = 0
	}
	best := tree.None
	bestCost := math.Inf(1)
	bestPos := len(leaves)
	for _, oi := range g.ord.of(t, leaves) {
		v := leaves[oi]
		distTerm := dw * float64(t.Depth(v)) * a.Size
		if distTerm+minF > bestCost {
			break
		}
		var cost float64
		if !g.Cfg.DropVolumeTerm {
			cost += F(q, a, v) + FPrime(q, a, v)
		}
		cost += distTerm
		if cost < bestCost || (cost == bestCost && int(oi) < bestPos) {
			best, bestCost, bestPos = v, cost, int(oi)
		}
	}
	return best
}

// Cost exposes the unrelated rule's objective for a candidate leaf.
func (g *GreedyUnrelated) Cost(q *sim.Query, a *sim.Arrival, v tree.NodeID) float64 {
	return F(q, a, v) + FPrime(q, a, v) +
		g.Cfg.distanceWeight()*float64(q.Tree().Depth(v))*a.Size
}

// eligibleLeaves honors the arbitrary-origin extension: jobs released
// at an interior node may only be assigned below it.
func eligibleLeaves(q *sim.Query, a *sim.Arrival) []tree.NodeID {
	if a.Origin == 0 {
		return q.Tree().Leaves()
	}
	t := q.Tree()
	if t.IsLeaf(a.Origin) {
		return []tree.NodeID{a.Origin}
	}
	return t.SubtreeLeaves(a.Origin)
}
