package core

import (
	"fmt"

	"treesched/internal/sim"
	"treesched/internal/tree"
)

// Shadow is the Section 3.7 algorithm for general trees: it maintains
// an online co-simulation of the greedy algorithm on the broomstick
// T' of the real tree T. When a job arrives, the broomstick algorithm
// picks a leaf v' in T'; Shadow assigns the job to the corresponding
// leaf of T. SJF is used on every node of both trees. Lemma 8
// guarantees (and experiment L8 verifies) that every job finishes on T
// no later than on T'.
type Shadow struct {
	bs    *tree.Broomstick
	inner *sim.Sim
	// pick is the broomstick-side assignment rule (identical or
	// unrelated greedy).
	pick sim.Assigner
	// drained records whether Finish was called.
	drained bool
}

// ShadowConfig configures the shadow broomstick simulation.
type ShadowConfig struct {
	// Eps is the greedy rule's ε.
	Eps float64
	// Unrelated selects the unrelated-endpoint greedy rule.
	Unrelated bool
	// RootAdjSpeed, RouterSpeed and LeafSpeed set the broomstick's
	// node speeds. The paper's Theorem 4 gives the broomstick (1+ε)
	// speed on root-adjacent nodes and (1+ε)² elsewhere; Lemma 8's
	// per-job domination holds whenever the real tree's nodes are at
	// least as fast as the corresponding broomstick nodes. Zero values
	// default to 1.
	RootAdjSpeed, RouterSpeed, LeafSpeed float64
	// Options are the engine options for the inner simulation.
	Options sim.Options
}

// NewShadow builds the broomstick of t and the inner simulation.
func NewShadow(t *tree.Tree, cfg ShadowConfig) (*Shadow, error) {
	if cfg.Eps <= 0 {
		return nil, fmt.Errorf("core: ShadowConfig.Eps must be positive, got %v", cfg.Eps)
	}
	bs, err := tree.Reduce(t)
	if err != nil {
		return nil, err
	}
	if cfg.RootAdjSpeed == 0 {
		cfg.RootAdjSpeed = 1
	}
	if cfg.RouterSpeed == 0 {
		cfg.RouterSpeed = 1
	}
	if cfg.LeafSpeed == 0 {
		cfg.LeafSpeed = 1
	}
	reduced := bs.Reduced.WithSpeeds(cfg.RootAdjSpeed, cfg.RouterSpeed, cfg.LeafSpeed)
	bs = &tree.Broomstick{Reduced: reduced, Original: bs.Original, ToOriginal: bs.ToOriginal, ToReduced: bs.ToReduced}
	sh := &Shadow{bs: bs, inner: sim.New(reduced, cfg.Options)}
	if cfg.Unrelated {
		sh.pick = NewGreedyUnrelated(cfg.Eps)
	} else {
		sh.pick = NewGreedyIdentical(cfg.Eps)
	}
	return sh, nil
}

// Name implements sim.Assigner.
func (sh *Shadow) Name() string { return "Shadow(" + sh.pick.Name() + ")" }

// Assign implements sim.Assigner: it advances the broomstick
// simulation to the arrival instant, lets the greedy rule choose a
// broomstick leaf, injects the job there, and returns the
// corresponding leaf of the original tree.
func (sh *Shadow) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	if a.Origin != 0 {
		panic("core: Shadow does not support the arbitrary-origin extension")
	}
	sh.inner.AdvanceTo(a.Release)
	ia := &sim.Arrival{
		ID:        a.ID,
		Release:   a.Release,
		Size:      a.Size,
		LeafSizes: sh.bs.MapLeafSizes(a.LeafSizes),
	}
	leaf := sh.pick.Assign(sh.inner.Query(), ia)
	if _, err := sh.inner.Inject(ia, leaf); err != nil {
		panic(fmt.Sprintf("core: shadow injection failed: %v", err))
	}
	return sh.bs.ToOriginal[sh.bs.Reduced.LeafIndex(leaf)]
}

// Finish drains the broomstick simulation so its per-job completion
// times are final. Call after the primary run completes.
func (sh *Shadow) Finish() error {
	if !sh.drained {
		sh.drained = true
		return sh.inner.Drain()
	}
	return nil
}

// Broomstick returns the reduction (reduced tree + leaf maps).
func (sh *Shadow) Broomstick() *tree.Broomstick { return sh.bs }

// InnerStats returns the broomstick simulation's statistics. Call
// Finish first for end-of-run numbers.
func (sh *Shadow) InnerStats() sim.Stats { return sh.inner.Stats() }

// InnerTasks exposes the broomstick-side task states for the Lemma 8
// domination check (per-job completion comparison).
func (sh *Shadow) InnerTasks() []*sim.JobState { return sh.inner.Tasks() }
