package core

import (
	"treesched/internal/sim"
)

// Lemma1Report summarizes the Lemma 1 check: after leaving its
// root-adjacent node, a job spends at most (6/ε²)·p_j·d_v time
// finishing all remaining identical nodes.
type Lemma1Report struct {
	// Jobs is the number of jobs with at least one post-root identical
	// node (jobs at depth-2 leaves in the unrelated setting have none
	// and are skipped).
	Jobs int
	// MaxRatio is max_j (observed wait)/((6/ε²)·p_j·d_v); the lemma
	// asserts MaxRatio ≤ 1 under its speed assumptions.
	MaxRatio float64
	// MeanRatio indicates how much slack the bound typically has.
	MeanRatio float64
	// Violations counts jobs exceeding the bound.
	Violations int
}

// CheckLemma1 evaluates the Lemma 1 bound on a completed instrumented
// run. eps is the ε of the speed assumption (non-root-adjacent nodes
// run at ≥ 1+ε); unrelated excludes the leaf from the identical nodes.
func CheckLemma1(res *sim.Result, eps float64, unrelated bool) Lemma1Report {
	rep := Lemma1Report{}
	var sum float64
	t := res.Sim.Tree()
	for _, js := range res.Sim.Tasks() {
		if js.HopComplete == nil {
			panic("core: CheckLemma1 requires an instrumented run")
		}
		last := len(js.Path) - 1
		if unrelated {
			last-- // final identical node is the last router
		}
		// Need at least one identical node after the root-adjacent one.
		if last < 1 {
			continue
		}
		rep.Jobs++
		// r'_j: first available on a node not adjacent to the root.
		rPrime := js.HopArrive[1]
		cPrime := js.HopComplete[last]
		dv := float64(t.Depth(js.Leaf))
		bound := 6 / (eps * eps) * js.RouterSize * dv
		ratio := (cPrime - rPrime) / bound
		sum += ratio
		if ratio > rep.MaxRatio {
			rep.MaxRatio = ratio
		}
		if ratio > 1+1e-9 {
			rep.Violations++
		}
	}
	if rep.Jobs > 0 {
		rep.MeanRatio = sum / float64(rep.Jobs)
	}
	return rep
}

// Lemma2Checker verifies the Lemma 2 invariant at every engine event:
// for every active job j and every identical, non-root-adjacent node v
// that j still needs, the remaining volume of higher-priority jobs
// *currently available* on v is at most (2/ε)·p_j.
//
// Install via sim.Options.Observer. The engine must be instrumented.
// The lemma's assumptions: SJF everywhere, job sizes powers of (1+ε),
// root-adjacent nodes at speed ≤ s, and every other node at speed
// s ≥ 1+ε.
type Lemma2Checker struct {
	Eps float64
	// Unrelated excludes leaves from the identical-node check.
	Unrelated bool
	// MaxRatio tracks the largest observed volume/bound ratio.
	MaxRatio float64
	// Checks counts individual (job, node) evaluations.
	Checks int64
	// Violations counts bound breaches.
	Violations int64
	// SampleStride checks only every k-th event (1 = all); the checker
	// is O(active·depth·queue) per event, so sampling keeps big runs
	// tractable.
	SampleStride int
	events       int64
}

// Observe implements the engine observer callback.
func (c *Lemma2Checker) Observe(s *sim.Sim) {
	c.events++
	if c.SampleStride > 1 && c.events%int64(c.SampleStride) != 0 {
		return
	}
	q := s.Query()
	t := s.Tree()
	for _, js := range s.Tasks() {
		if js.Completed {
			continue
		}
		last := len(js.Path)
		if c.Unrelated {
			last--
		}
		for idx := js.Hop; idx < last; idx++ {
			v := js.Path[idx]
			if t.Depth(v) == 1 {
				continue // lemma excludes nodes adjacent to the root
			}
			// Volume of higher-priority jobs available on v
			// (S_{v,j}(t) \ Q_{ρ(v)}(t)). For an already-injected job,
			// AvailVolumeHigher includes js itself whenever js is
			// available on v (equal IDs compare ahead of the probe),
			// so S's "includes J_j" clause needs no extra term.
			vol := q.AvailVolumeHigher(v, q.PrioSizeOn(js, v), js.Release, js.ID)
			bound := 2 / c.Eps * js.RouterSize
			ratio := vol / bound
			c.Checks++
			if ratio > c.MaxRatio {
				c.MaxRatio = ratio
			}
			if ratio > 1+1e-9 {
				c.Violations++
			}
		}
	}
}

// Lemma8Report summarizes the per-job domination check of Lemma 8:
// with the Shadow algorithm, every job's flow time on the real tree is
// at most its flow time on the broomstick.
type Lemma8Report struct {
	Jobs        int
	Violations  int
	MeanRatio   float64 // mean flow(T)/flow(T'), ≤ 1 when the lemma holds
	MaxRatio    float64
	TotalFlowT  float64
	TotalFlowT2 float64 // total flow on the broomstick T'
}

// CheckLemma8 compares a completed primary run (on T, driven by sh)
// against sh's broomstick run. Call sh.Finish() first.
func CheckLemma8(res *sim.Result, sh *Shadow) Lemma8Report {
	rep := Lemma8Report{}
	inner := make(map[int]float64, len(res.Jobs))
	for _, js := range sh.InnerTasks() {
		if js.Completed {
			inner[js.ID] = js.Completion
		}
	}
	var sum float64
	for i := range res.Jobs {
		m := &res.Jobs[i]
		ic, ok := inner[m.ID]
		if !ok {
			continue
		}
		rep.Jobs++
		flowT := m.Flow
		flowT2 := ic - m.Release
		rep.TotalFlowT += flowT
		rep.TotalFlowT2 += flowT2
		ratio := flowT / flowT2
		sum += ratio
		if ratio > rep.MaxRatio {
			rep.MaxRatio = ratio
		}
		if flowT > flowT2+1e-6 {
			rep.Violations++
		}
	}
	if rep.Jobs > 0 {
		rep.MeanRatio = sum / float64(rep.Jobs)
	}
	return rep
}

// PhiDecreaseChecker validates the dynamics proven in Lemma 3: for a
// job available on a node not adjacent to the root, while no new jobs
// arrive, the potential Φ_j decreases at least at unit rate (so
// Φ_j(t₁) ≤ Φ_j(t₀) − (t₁ − t₀)). Install via sim.Options.Observer on
// an instrumented engine; it samples Φ for all qualifying active jobs
// at every event and compares consecutive samples, skipping any
// interval that contains an arrival (arrivals may legitimately raise
// Φ).
type PhiDecreaseChecker struct {
	Eps, Speed float64
	Unrelated  bool
	// Tolerance absorbs floating-point slack.
	Tolerance float64

	prev       map[int]float64
	prevT      float64
	prevInject int64
	Checks     int64
	Violations int64
	MaxExcess  float64
}

// Observe implements the engine observer callback.
func (c *PhiDecreaseChecker) Observe(s *sim.Sim) {
	q := s.Query()
	cur := make(map[int]float64)
	injected := int64(len(s.Tasks()))
	for _, js := range s.Tasks() {
		// Lemma 3's precondition: available on a node not adjacent to
		// the root, and (in the unrelated setting) not yet on the leaf.
		if js.Completed || js.Hop < 1 {
			continue
		}
		if c.Unrelated && js.Hop >= len(js.Path)-1 {
			continue
		}
		cur[js.ID] = Phi(q, js, c.Eps, c.Speed, c.Unrelated)
	}
	if c.prev != nil && injected == c.prevInject {
		dt := s.Now() - c.prevT
		for id, p0 := range c.prev {
			p1, ok := cur[id]
			if !ok {
				continue // completed (or crossed into the leaf) in between
			}
			excess := p1 - (p0 - dt)
			if excess > c.MaxExcess {
				c.MaxExcess = excess
			}
			c.Checks++
			if excess > c.Tolerance+1e-6 {
				c.Violations++
			}
		}
	}
	c.prev, c.prevT, c.prevInject = cur, s.Now(), injected
}

// MaxQueueVolumeBound returns (2/ε)·p, the Lemma 2 bound for a job of
// router size p, exposed for table rendering.
func MaxQueueVolumeBound(eps, p float64) float64 { return 2 / eps * p }

// InteriorWaitBound returns (6/ε²)·p·d, the Lemma 1 bound.
func InteriorWaitBound(eps, p float64, d int) float64 {
	return 6 / (eps * eps) * p * float64(d)
}
