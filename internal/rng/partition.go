package rng

// SimulationKey is the master determinism key of one simulation run.
// Every random draw anywhere in a keyed run is a pure function of
// (key, subsystem stream name, draw index), so two runs with the same
// key reproduce each other exactly and two subsystems never share a
// stream.
type SimulationKey uint64

// PartitionedRNG hands out isolated, lazily-initialized generators
// per subsystem. Subsystem names are free-form strings ("workload",
// "sizes", "faults", "tree/3/faults", ...); each name maps to its own
// xoshiro256** stream whose seed is derived from the master key and
// the name alone — never from how many draws other subsystems have
// made. Adding a draw in one subsystem therefore cannot perturb any
// other subsystem's sequence, which is what makes fleet co-simulation
// (several trees side by side) possible without cross-contamination.
//
// The zero value is not usable; construct with NewPartitioned,
// NewLegacy or LegacyFrom. A PartitionedRNG is not safe for
// concurrent use, matching Rand.
type PartitionedRNG struct {
	key SimulationKey
	// shared, when non-nil, puts the partition in legacy mode: every
	// Stream call returns this one generator, so all subsystems
	// interleave their draws on a single stream in call order — the
	// historical single-rng-stream discipline, reproduced bit for bit.
	shared  *Rand
	streams map[string]*Rand
	// prefix namespaces Stream lookups of a Scoped view ("tree/3/").
	prefix string
}

// NewPartitioned returns a keyed partition: every subsystem name gets
// its own independent stream derived from key.
func NewPartitioned(key SimulationKey) *PartitionedRNG {
	return &PartitionedRNG{key: key, streams: map[string]*Rand{}}
}

// NewLegacy returns a legacy-mode partition over a single stream
// seeded exactly like New(seed). Stream returns that one generator
// for every name, so code threaded through a PartitionedRNG draws in
// precisely the order the old single-stream code did — pre-refactor
// traces reproduce bit for bit.
func NewLegacy(seed uint64) *PartitionedRNG { return LegacyFrom(New(seed)) }

// LegacyFrom wraps an existing stream in a legacy-mode partition.
// This is how the historical GenerateFrom(r)-style entry points keep
// their exact semantics: the wrapped r is handed back for every
// subsystem name.
func LegacyFrom(r *Rand) *PartitionedRNG { return &PartitionedRNG{shared: r} }

// Legacy reports whether the partition is in legacy single-stream
// mode.
func (p *PartitionedRNG) Legacy() bool { return p.shared != nil }

// Key returns the master key (zero in legacy mode, where the seed
// lives inside the shared stream).
func (p *PartitionedRNG) Key() SimulationKey { return p.key }

// Stream returns the generator for the named subsystem, creating it
// on first use. In keyed mode the stream's seed depends only on the
// master key and the (scoped) name; in legacy mode the one shared
// stream is returned regardless of name.
func (p *PartitionedRNG) Stream(name string) *Rand {
	if p.shared != nil {
		return p.shared
	}
	full := name
	if p.prefix != "" {
		full = p.prefix + name
	}
	if r, ok := p.streams[full]; ok {
		return r
	}
	r := New(deriveSeed(uint64(p.key), full))
	p.streams[full] = r
	return r
}

// Scoped returns a view of the partition that prefixes every stream
// name with scope+"/": Scoped("tree/3").Stream("faults") is the
// stream "tree/3/faults" of the same partition (shared lazily with
// the parent, so the two spellings return the identical generator).
// In legacy mode scoping is a no-op — there is only one stream.
func (p *PartitionedRNG) Scoped(scope string) *PartitionedRNG {
	if p.shared != nil {
		return p
	}
	return &PartitionedRNG{key: p.key, streams: p.streams, prefix: p.prefix + scope + "/"}
}

// deriveSeed maps (key, name) to the seed of the subsystem's stream:
// an FNV-1a hash of the name folded into a splitmix64 chain seeded by
// the key. One extra splitmix64 round before the fold keeps the
// derived seeds away from the raw key (New(key) consumes the
// unadvanced chain), and the final splitmix64 output feeds New, which
// itself expands the seed through four more splitmix64 rounds — the
// same derivation discipline Split documents, so sibling subsystem
// streams carry the same independence contract as Split children
// (pinned by TestPartitionStreamsDisjoint).
func deriveSeed(key uint64, name string) uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	h := uint64(fnvOffset)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= fnvPrime
	}
	s := key
	splitmix64(&s)
	s ^= h
	return splitmix64(&s)
}
