// Package rng provides small, fast, deterministic random number
// generators for reproducible simulation experiments.
//
// The package deliberately avoids math/rand so that results are stable
// across Go releases: every stream is a xoshiro256** generator seeded
// through splitmix64, exactly as recommended by the xoshiro authors.
// Independent substreams for parallel experiment shards are derived
// with Split, which guarantees distinct, well-separated seeds.
package rng

import "math"

// splitmix64 advances the state and returns the next 64-bit output.
// It is used only for seeding xoshiro streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** pseudo-random generator. The zero value is
// not usable; construct streams with New or Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator deterministically derived from seed.
// Different seeds give statistically independent streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not be seeded with all zeros; splitmix64 of any
	// seed cannot produce four zero outputs, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives a new independent generator from r. The parent stream
// is advanced, so successive Split calls yield distinct children.
//
// Independence contract: the child's seed is one parent output XORed
// with an odd constant, and New expands that seed into the four
// xoshiro256** state words through four rounds of splitmix64 — a
// bijective avalanche mixer in which every seed bit flips each state
// bit with probability ~1/2. Two children (or a parent and a child)
// therefore start from effectively random, distinct points of the
// 2^256-1 xoshiro state cycle; with period 2^256 and streams of any
// realistic length, overlapping subsequences would require two seeds
// landing within a stream length of each other on the cycle, which
// has probability ~n/2^256 per pair. The same derivation backs the
// keyed subsystem streams of PartitionedRNG (see deriveSeed). The
// contract is smoke-tested by TestSplitStreamsDisjoint and
// TestPartitionStreamsDisjoint: sibling streams share no 64-bit
// output in their first 1e6 draws.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xd1342543de82ef95)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation would be
	// faster, but modulo of a 64-bit stream has negligible bias for
	// the n used in simulations and is easier to reason about.
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Range returns a uniform float64 in [lo, hi).
func (r *Rand) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	// 1-Float64() is in (0,1], so the log argument is never zero.
	return -math.Log(1-r.Float64()) / rate
}

// Pareto returns a Pareto(alpha) sample with the given minimum value.
// Heavy-tailed job sizes in the experiments use alpha in (1,2].
func (r *Rand) Pareto(minimum, alpha float64) float64 {
	if minimum <= 0 || alpha <= 0 {
		panic("rng: Pareto with non-positive parameter")
	}
	return minimum / math.Pow(1-r.Float64(), 1/alpha)
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }
