package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling substreams start identically")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) hit only %d distinct values", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const rate, n = 2.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(rate)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/rate) > 0.01 {
		t.Fatalf("Exp mean %v, want ~%v", mean, 1/rate)
	}
}

func TestExpPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	New(1).Exp(0)
}

func TestParetoMinimum(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(2.0, 1.5)
		if v < 2.0 {
			t.Fatalf("Pareto below minimum: %v", v)
		}
	}
}

func TestParetoPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pareto(0, 1) did not panic")
		}
	}()
	New(1).Pareto(0, 1)
}

func TestRange(t *testing.T) {
	r := New(17)
	for i := 0; i < 1000; i++ {
		v := r.Range(3, 5)
		if v < 3 || v >= 5 {
			t.Fatalf("Range(3,5) = %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
