package rng

import (
	"sort"
	"testing"
)

func TestPartitionedDeterminism(t *testing.T) {
	a, b := NewPartitioned(42), NewPartitioned(42)
	for _, name := range []string{"workload", "sizes", "faults", "tree/0/faults"} {
		ra, rb := a.Stream(name), b.Stream(name)
		for i := 0; i < 1000; i++ {
			if ra.Uint64() != rb.Uint64() {
				t.Fatalf("stream %q diverged at step %d across identical keys", name, i)
			}
		}
	}
}

func TestPartitionedStreamsAreIsolated(t *testing.T) {
	// Draw counts on one stream must not move any other stream: the
	// "sizes" sequence is the same whether "workload" drew 0 or 1000
	// values first.
	a, b := NewPartitioned(7), NewPartitioned(7)
	for i := 0; i < 1000; i++ {
		a.Stream("workload").Uint64()
	}
	ra, rb := a.Stream("sizes"), b.Stream("sizes")
	for i := 0; i < 1000; i++ {
		if ra.Uint64() != rb.Uint64() {
			t.Fatalf("draws on \"workload\" perturbed \"sizes\" at step %d", i)
		}
	}
}

func TestPartitionedStreamIdentity(t *testing.T) {
	p := NewPartitioned(1)
	if p.Stream("workload") != p.Stream("workload") {
		t.Fatal("repeated Stream lookups returned different generators")
	}
	if p.Stream("workload") == p.Stream("sizes") {
		t.Fatal("distinct subsystem names share a generator in keyed mode")
	}
}

func TestLegacyModeSharesOneStream(t *testing.T) {
	p := NewLegacy(3)
	if !p.Legacy() {
		t.Fatal("NewLegacy partition does not report Legacy")
	}
	if p.Stream("workload") != p.Stream("faults") {
		t.Fatal("legacy mode handed out distinct streams")
	}
	// The shared stream is seeded exactly like New(seed): interleaved
	// subsystem draws reproduce the historical single-stream sequence.
	ref := New(3)
	for i := 0; i < 100; i++ {
		name := "workload"
		if i%2 == 1 {
			name = "faults"
		}
		if p.Stream(name).Uint64() != ref.Uint64() {
			t.Fatalf("legacy interleaving diverged from New(seed) at step %d", i)
		}
	}
}

func TestLegacyFromWrapsStream(t *testing.T) {
	r := New(5)
	r.Uint64() // advance: the wrapper must hand back r mid-stream
	p := LegacyFrom(r)
	ref := New(5)
	ref.Uint64()
	if p.Stream("anything").Uint64() != ref.Uint64() {
		t.Fatal("LegacyFrom did not return the wrapped stream's next draw")
	}
}

func TestScopedNamespacing(t *testing.T) {
	p := NewPartitioned(9)
	if p.Scoped("tree/3").Stream("faults") != p.Stream("tree/3/faults") {
		t.Fatal("Scoped view and explicit path name different generators")
	}
	if p.Scoped("tree/3").Stream("faults") == p.Scoped("tree/4").Stream("faults") {
		t.Fatal("distinct scopes share a generator")
	}
	// Nested scoping composes by concatenation.
	if p.Scoped("fleet").Scoped("tree/0").Stream("w") != p.Stream("fleet/tree/0/w") {
		t.Fatal("nested Scoped views do not compose")
	}
	// Legacy mode: scoping is a no-op on the single stream.
	l := NewLegacy(9)
	if l.Scoped("tree/3").Stream("faults") != l.Stream("faults") {
		t.Fatal("legacy Scoped view returned a different stream")
	}
}

func TestKeysDiffer(t *testing.T) {
	a, b := NewPartitioned(1), NewPartitioned(2)
	same := 0
	ra, rb := a.Stream("workload"), b.Stream("workload")
	for i := 0; i < 100; i++ {
		if ra.Uint64() == rb.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different keys produced %d identical outputs on the same stream name", same)
	}
}

// disjointStreams asserts that none of the streams share a single
// 64-bit output within their first n draws — the cross-correlation
// smoke backing the documented Split/deriveSeed independence
// contract. With 64-bit outputs the chance of even one honest
// birthday collision across a few times 1e6 draws is ~1e-6, so a hit
// means overlapping state trajectories, not bad luck.
func disjointStreams(t *testing.T, n int, streams map[string]*Rand) {
	t.Helper()
	var names []string
	for name := range streams {
		names = append(names, name)
	}
	sort.Strings(names)
	sorted := make(map[string][]uint64, len(names))
	for _, name := range names {
		r := streams[name]
		vs := make([]uint64, n)
		for i := range vs {
			vs[i] = r.Uint64()
		}
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		sorted[name] = vs
	}
	for ai, a := range names {
		for _, b := range names[ai+1:] {
			va, vb := sorted[a], sorted[b]
			for i, j := 0, 0; i < len(va) && j < len(vb); {
				switch {
				case va[i] < vb[j]:
					i++
				case va[i] > vb[j]:
					j++
				default:
					t.Fatalf("streams %q and %q share output %#x within %d draws", a, b, va[i], n)
				}
			}
		}
	}
}

func TestPartitionStreamsDisjoint(t *testing.T) {
	const n = 1_000_000
	p := NewPartitioned(1)
	disjointStreams(t, n, map[string]*Rand{
		"workload":      p.Stream("workload"),
		"sizes":         p.Stream("sizes"),
		"faults":        p.Stream("faults"),
		"tree/0/faults": p.Stream("tree/0/faults"),
	})
}

func TestSplitStreamsDisjoint(t *testing.T) {
	const n = 1_000_000
	parent := New(7)
	disjointStreams(t, n, map[string]*Rand{
		"child1": parent.Split(),
		"child2": parent.Split(),
	})
}

func BenchmarkPartitionStreamLookup(b *testing.B) {
	p := NewPartitioned(1)
	p.Stream("workload")
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Stream("workload").Uint64()
	}
	_ = sink
}
