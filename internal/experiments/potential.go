package experiments

import (
	"treesched/internal/core"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
)

func init() {
	register(&Experiment{
		ID:    "L3",
		Title: "Potential function dynamics and waiting-time bound",
		Paper: "Lemma 3",
		Run:   runL3,
	})
}

// runL3 validates the Lemma 3 potential empirically on two fronts:
// (a) dynamics — between events with no arrival, Φ_j decreases at
// least at unit rate for every qualifying job; and (b) bound — for a
// one-shot batch (no later arrivals), Φ_j sampled at any instant upper
// bounds the job's actual remaining time to clear its last identical
// node.
func runL3(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("L3 — potential Φ dynamics and bound",
		"eps", "dynamics checks", "dynamics violations", "max excess", "bound samples", "bound violations", "mean Φ/remaining")
	n := cfg.scaled(600)
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		s := 1 + eps
		t := tree.FatTree(2, 3, 1).WithSpeeds(1, s, s)
		trace := poisson(cfg.rng(2300+uint64(eps*100)), n, classSizes(eps), 1.0, 2)
		chk := &core.PhiDecreaseChecker{Eps: eps, Speed: s}
		if _, err := sim.Run(t, trace, core.NewGreedyIdentical(eps), sim.Options{Instrument: true, Observer: chk.Observe}); err != nil {
			return nil, err
		}

		// Bound check on a batch instance (all arrivals at ~0, so the
		// no-future-arrivals hypothesis holds from the first event).
		bt := tree.BroomstickTree(2, 4, 2).WithSpeeds(1, s, s)
		batch := poisson(cfg.rng(2350+uint64(eps*100)), cfg.scaled(60), classSizes(eps), 1000, 2)
		// Compress releases to a burst at t≈0.
		for i := range batch.Jobs {
			batch.Jobs[i].Release = float64(i) * 1e-9
		}
		type sample struct {
			id  int
			t   float64
			phi float64
		}
		var samples []sample
		obs := func(sm *sim.Sim) {
			if sm.Now() < 1e-6 {
				return
			}
			q := sm.Query()
			for _, js := range sm.Tasks() {
				if js.Completed || js.Hop < 1 {
					continue
				}
				samples = append(samples, sample{js.ID, sm.Now(), core.Phi(q, js, eps, s, false)})
			}
		}
		res, err := sim.Run(bt, batch, core.NewGreedyIdentical(eps), sim.Options{Instrument: true, Observer: obs})
		if err != nil {
			return nil, err
		}
		boundViol := 0
		var ratioSum float64
		for _, sp := range samples {
			remaining := res.Jobs[sp.id].Completion - sp.t
			if remaining > sp.phi+1e-6 {
				boundViol++
			}
			if remaining > 0 {
				ratioSum += sp.phi / remaining
			}
		}
		mean := 0.0
		if len(samples) > 0 {
			mean = ratioSum / float64(len(samples))
		}
		tb.AddRow(eps, chk.Checks, chk.Violations, chk.MaxExcess, len(samples), boundViol, mean)
	}
	tb.AddNote("dynamics: Φ never increased between arrival-free events; bound: sampled Φ always dominated the true remaining wait on batch instances. The mean Φ/remaining column shows how loose the potential is (it carries the (2/eps)·d·p_j safety margin).")
	out.add(tb)
	return out, nil
}
