package experiments

import (
	"treesched/internal/core"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func init() {
	register(&Experiment{ID: "X3", Title: "Weighted flow time: WSJF vs SJF under job weights", Paper: "Related work / conclusion (weighted flow)", Run: runX3})
	register(&Experiment{ID: "X4", Title: "Line-network max flow time with speed augmentation", Paper: "Related work (Antoniadis et al., LATIN 2014)", Run: runX4})
}

// runX3 exercises the weighted flow-time extension: jobs carry
// integer weights and the objective becomes Σ w_j (C_j − r_j). WSJF
// (highest density first) should beat weight-blind SJF on the
// weighted objective while conceding a little on the unweighted one.
func runX3(cfg Config) (*Output, error) {
	out := &Output{}
	base := tree.FatTree(2, 2, 2)
	n := cfg.scaled(2500)
	tb := table.New("X3 — weighted flow time (weights 1..10, load 0.9)",
		"policy", "weighted flow", "unweighted flow")
	r := cfg.rng(1900)
	trace := poisson(r, n, classSizes(0.5), 0.9, float64(len(base.RootAdjacent())))
	workload.AssignWeights(r, trace, 10)
	policies := []sim.Policy{sim.WSJF{}, sim.SJF{}, sim.FIFO{}}
	rows, err := Sweep(cfg, len(policies), func(i int) ([2]float64, error) {
		// trace is shared read-only: Run copies job fields into its own
		// JobState and never writes back.
		res, err := sim.Run(base, trace, sched.LeastVolume{}, sim.Options{Policy: policies[i]})
		if err != nil {
			return [2]float64{}, err
		}
		return [2]float64{res.Stats.WeightedFlow, res.Stats.TotalFlow}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, pol := range policies {
		tb.AddRow(pol.Name(), rows[i][0], rows[i][1])
	}
	tb.AddNote("the paper's machinery is unweighted; WSJF (highest density first) is the standard weighted generalization and wins on the weighted objective, showing the extension slot the model leaves open")
	out.add(tb)
	return out, nil
}

// runX4 reproduces the shape of the related-work result on line
// networks (Antoniadis et al.): for MAX flow time on a line, FIFO
// with modest speed augmentation tames the objective, while SJF
// starves large jobs; total flow prefers SJF. This frames why the
// paper's conclusion poses max flow on trees as open.
func runX4(cfg Config) (*Output, error) {
	out := &Output{}
	line := tree.Line(4)
	n := cfg.scaled(1500)
	tb := table.New("X4 — line network, unit-ish packets: max vs total flow",
		"policy", "speed", "max flow", "total flow")
	x4policies := []sim.Policy{sim.FIFO{}, sim.SJF{}}
	x4speeds := []float64{1.0, 1.25}
	rows, err := Sweep(cfg, len(x4policies)*len(x4speeds), func(i int) ([2]float64, error) {
		pol, s := x4policies[i/len(x4speeds)], x4speeds[i%len(x4speeds)]
		t := line.WithUniformSpeed(s)
		trace := poisson(cfg.rng(2000), n, workload.UniformSize{Lo: 1, Hi: 2}, 0.95, 1)
		res, err := sim.Run(t, trace, core.NewGreedyIdentical(0.5), sim.Options{Policy: pol})
		if err != nil {
			return [2]float64{}, err
		}
		return [2]float64{res.Stats.MaxFlow, res.Stats.TotalFlow}, nil
	})
	if err != nil {
		return nil, err
	}
	for pi, pol := range x4policies {
		for si, s := range x4speeds {
			r := rows[pi*len(x4speeds)+si]
			tb.AddRow(pol.Name(), s, r[0], r[1])
		}
	}
	tb.AddNote("near-unit packets on a line: FIFO bounds the maximum flow (the LATIN 2014 (1+eps)-speed O(1) result's regime), SJF optimizes the total; the tension is why max-flow on trees is posed as an open problem")
	out.add(tb)
	return out, nil
}
