package experiments

import (
	"treesched/internal/core"
	"treesched/internal/table"
	"treesched/internal/tree"
)

func init() {
	register(&Experiment{
		ID:    "D1",
		Title: "Dual-fitting certificate: Section 3.5 duals checked in a live run",
		Paper: "Theorem 5 / Lemmas 5-7",
		Run:   runD1,
	})
}

// runD1 constructs the paper's dual solution (β_j from the greedy
// minimum, γ from F, α from branch fractional volumes) during live
// broomstick runs and checks LP-Dual feasibility numerically. A
// feasible dual certifies, by weak duality, DualObjective/3 ≤ OPT —
// turning the paper's analysis into a per-instance certificate.
func runD1(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("D1 — dual-fitting certificate on broomsticks (identical endpoints)",
		"eps", "jobs", "C4 viol", "C5 viol", "C5 max LHS/RHS", "sum beta / frac cost", "dual obj", "certified OPT LB", "alg cost / certified LB")
	n := cfg.scaled(1200)
	for _, eps := range []float64{0.1, 0.25, 0.5} {
		t := tree.BroomstickTree(2, 4, 2)
		trace := poisson(cfg.rng(1800+uint64(eps*100)), n, classSizes(eps), 0.9, float64(len(t.RootAdjacent())))
		rep, err := core.RunDualFit(t, trace, eps)
		if err != nil {
			return nil, err
		}
		certRatio := 0.0
		if rep.CertifiedOPTLowerBound > 0 {
			certRatio = rep.FracCost / rep.CertifiedOPTLowerBound
		}
		tb.AddRow(eps, n, rep.C4Violations, rep.C5Violations, rep.C5MaxSlackRatio,
			rep.BetaOverCost, rep.DualObjective, rep.CertifiedOPTLowerBound, certRatio)
	}
	tb.AddNote("C4/C5 are LP-Dual constraints (4)/(5) after the 10/eps^2 scaling (Lemmas 5-6); zero violations means the dual is feasible and dual/3 is a certified per-instance lower bound on OPT. Lemma 4 predicts sum-beta/cost >= 1+eps. The certified ratio grows like the analysis constants (Theorem 5's O(1/eps^3)), illustrating how loose the worst-case machinery is on benign instances.")
	out.add(tb)
	return out, nil
}
