package experiments

import (
	"math"

	"treesched/internal/core"
	"treesched/internal/lowerbound"
	"treesched/internal/lp"
	"treesched/internal/scenario"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "T1",
		Title: "Identical endpoints: greedy+SJF with (1+eps) speed vs OPT lower bound",
		Paper: "Theorem 1",
		Run:   runT1,
	})
	register(&Experiment{
		ID:    "T2",
		Title: "Unrelated endpoints: greedy+SJF with (2+eps) speed vs OPT lower bound",
		Paper: "Theorem 2",
		Run:   runT2,
	})
	register(&Experiment{
		ID:    "T3",
		Title: "Fractional vs integral flow time of the same SJF schedule",
		Paper: "Theorem 3",
		Run:   runT3,
	})
	register(&Experiment{
		ID:    "T5",
		Title: "Broomstick fractional flow: greedy at (1+eps) root / (1+eps)^2 off-root vs LB",
		Paper: "Theorem 5",
		Run:   runT5,
	})
	register(&Experiment{
		ID:    "T6",
		Title: "Broomstick fractional flow, unrelated endpoints, 2(1+eps)/2(1+eps)^2 speeds",
		Paper: "Theorem 6",
		Run:   runT6,
	})
	register(&Experiment{
		ID:    "T4",
		Title: "Best-found schedule cost on broomstick T' (augmented) vs on T",
		Paper: "Theorem 4",
		Run:   runT4,
	})
}

// runT1 validates Theorem 1's shape: with (1+eps)-speed augmentation
// the greedy algorithm's total flow stays within a modest constant of
// the speed-1 OPT lower bound, and the constant shrinks as eps grows.
func runT1(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("T1 — identical endpoints, competitive ratio upper bound vs eps",
		"eps", "speed", "load", "jobs", "flow(greedy)", "LB(OPT,1x)", "ratio<=")
	n := cfg.scaled(2000)
	var cells []struct{ eps, load float64 }
	for _, eps := range []float64{0.1, 0.25, 0.5, 1.0} {
		for _, load := range []float64{0.8, 0.95} {
			cells = append(cells, struct{ eps, load float64 }{eps, load})
		}
	}
	rows, err := Sweep(cfg, len(cells), func(i int) ([]interface{}, error) {
		eps, load := cells[i].eps, cells[i].load
		sc := &scenario.Scenario{
			Topology: scenario.NewSpec("fattree", 2, 2, 2),
			Workload: scenario.Workload{N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: eps, Load: load},
			Assigner: "greedy-identical",
			Eps:      eps,
			Seed:     cfg.seed(uint64(eps * 1000)),
			Speed:    scenario.Speed{Uniform: 1 + eps},
		}
		in, err := sc.Build()
		if err != nil {
			return nil, err
		}
		res, err := in.Run()
		if err != nil {
			return nil, err
		}
		lb := lowerbound.Best(in.Base, in.Trace)
		return []interface{}{eps, 1 + eps, load, n, res.Stats.TotalFlow, lb, res.Stats.TotalFlow / lb}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	tb.AddNote("ratios are upper bounds on the true competitive ratio (denominator is a lower bound on OPT); Theorem 1 predicts a constant depending only on eps")
	out.add(tb)
	return out, nil
}

// runT2 validates Theorem 2: the unrelated-endpoint greedy at speed
// (2+eps), plus a contrast row at speed (1+eps) showing the regime the
// theorem does not cover.
func runT2(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("T2 — unrelated endpoints, competitive ratio upper bound vs eps",
		"eps", "speed", "jobs", "flow(greedy)", "LB(OPT,1x)", "ratio<=")
	n := cfg.scaled(1500)
	cells := []struct {
		eps   float64
		speed float64
	}{
		{0.25, 2.25}, {0.5, 2.5}, {1.0, 3.0},
		// Below the theorem's speed requirement, for contrast:
		{0.5, 1.5}, {0.5, 1.0},
	}
	rows, err := Sweep(cfg, len(cells), func(i int) ([]interface{}, error) {
		c := cells[i]
		sc := &scenario.Scenario{
			Topology: scenario.NewSpec("fattree", 2, 2, 2),
			Workload: scenario.Workload{
				N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: c.eps, Load: 0.9,
				Unrelated: &scenario.Unrelated{Lo: 0.5, Hi: 2, PInfeasible: 0.2, Penalty: 8},
				RoundEps:  c.eps,
			},
			Assigner: "greedy-unrelated",
			Eps:      c.eps,
			Seed:     cfg.seed(uint64(c.eps*1000) + uint64(c.speed*10)),
			Speed:    scenario.Speed{Uniform: c.speed},
		}
		in, err := sc.Build()
		if err != nil {
			return nil, err
		}
		res, err := in.Run()
		if err != nil {
			return nil, err
		}
		lb := lowerbound.Best(in.Base, in.Trace)
		return []interface{}{c.eps, c.speed, n, res.Stats.TotalFlow, lb, res.Stats.TotalFlow / lb}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	tb.AddNote("Theorem 2 requires speed 2+eps; the 1.5x and 1.0x rows show how much harder the low-speed regime is")
	out.add(tb)
	return out, nil
}

// runT3 validates Theorem 3's conversion: the integral flow of an SJF
// schedule exceeds its fractional flow by a factor that behaves like
// O(1/eps) once the schedule gets (1+eps) extra speed.
func runT3(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("T3 — integral vs fractional flow time under SJF",
		"eps", "speed", "fractional", "integral", "integral/fractional", "1/eps")
	n := cfg.scaled(2000)
	epsList := []float64{0.1, 0.25, 0.5, 1.0}
	rows, err := Sweep(cfg, len(epsList), func(i int) ([]interface{}, error) {
		eps := epsList[i]
		sc := &scenario.Scenario{
			Topology: scenario.NewSpec("fattree", 2, 2, 2),
			Workload: scenario.Workload{N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: eps, Load: 0.95},
			Assigner: "greedy-identical",
			Eps:      eps,
			Seed:     cfg.seed(300 + uint64(eps*100)),
			Speed:    scenario.Speed{Uniform: 1 + eps},
		}
		res, err := scenario.Run(sc)
		if err != nil {
			return nil, err
		}
		return []interface{}{eps, 1 + eps, res.Stats.FracFlow, res.Stats.TotalFlow,
			res.Stats.TotalFlow / res.Stats.FracFlow, 1 / eps}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	tb.AddNote("Theorem 3: an s-speed c-competitive fractional algorithm yields a (1+eps)s-speed O(c/eps)-competitive integral one; the measured gap should stay below O(1/eps)")
	out.add(tb)
	return out, nil
}

// runT5 exercises Theorem 5 verbatim: the identical greedy on a
// broomstick with (1+eps) speed on root-adjacent nodes and (1+eps)^2
// elsewhere; the *fractional* flow (the theorem's objective) is
// compared to the speed-1 OPT lower bound.
func runT5(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("T5 — fractional flow on broomsticks (Theorem 5 speed profile)",
		"eps", "jobs", "fractional flow", "LB(OPT,1x)", "ratio<=", "paper bound O(1/eps^3)")
	n := cfg.scaled(1500)
	epsList := []float64{0.25, 0.5, 1.0}
	rows, err := Sweep(cfg, len(epsList), func(i int) ([]interface{}, error) {
		eps := epsList[i]
		sc := &scenario.Scenario{
			Topology: scenario.NewSpec("broomstick", 2, 4, 2),
			Workload: scenario.Workload{N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: eps, Load: 0.9},
			Assigner: "greedy-identical",
			Eps:      eps,
			Seed:     cfg.seed(2100 + uint64(eps*100)),
			Speed:    scenario.Speed{RootAdjacent: 1 + eps, Router: (1 + eps) * (1 + eps), Leaf: (1 + eps) * (1 + eps)},
		}
		in, err := sc.Build()
		if err != nil {
			return nil, err
		}
		res, err := in.Run()
		if err != nil {
			return nil, err
		}
		lb := lowerbound.Best(in.Base, in.Trace)
		return []interface{}{eps, n, res.Stats.FracFlow, lb, res.Stats.FracFlow / lb, 1 / (eps * eps * eps)}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	tb.AddNote("the broomstick is the structure the dual fitting actually analyzes; the measured ratios sit far below the O(1/eps^3) worst case")
	out.add(tb)
	return out, nil
}

// runT6 is the unrelated-endpoint counterpart (Theorem 6): speeds
// 2(1+eps) on root-adjacent nodes and 2(1+eps)^2 elsewhere.
func runT6(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("T6 — fractional flow on broomsticks, unrelated endpoints (Theorem 6 speeds)",
		"eps", "jobs", "fractional flow", "LB(OPT,1x)", "ratio<=")
	n := cfg.scaled(1200)
	epsList := []float64{0.25, 0.5, 1.0}
	rows, err := Sweep(cfg, len(epsList), func(i int) ([]interface{}, error) {
		eps := epsList[i]
		sc := &scenario.Scenario{
			Topology: scenario.NewSpec("broomstick", 2, 3, 2),
			Workload: scenario.Workload{
				N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: eps, Load: 0.9,
				Unrelated: &scenario.Unrelated{Lo: 0.5, Hi: 2},
				RoundEps:  eps,
			},
			Assigner: "greedy-unrelated",
			Eps:      eps,
			Seed:     cfg.seed(2200 + uint64(eps*100)),
			Speed:    scenario.Speed{RootAdjacent: 2 * (1 + eps), Router: 2 * (1 + eps) * (1 + eps), Leaf: 2 * (1 + eps) * (1 + eps)},
		}
		in, err := sc.Build()
		if err != nil {
			return nil, err
		}
		res, err := in.Run()
		if err != nil {
			return nil, err
		}
		lb := lowerbound.Best(in.Base, in.Trace)
		return []interface{}{eps, n, res.Stats.FracFlow, lb, res.Stats.FracFlow / lb}, nil
	})
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		tb.AddRow(row...)
	}
	tb.AddNote("Theorem 6 doubles every speed relative to Theorem 5 to absorb the leaf-size mismatch; ratios stay bounded")
	out.add(tb)
	return out, nil
}

// optProxy returns the best total flow found by a portfolio of
// assigner/policy combinations — a (non-certified) stand-in for OPT.
func optProxy(t *tree.Tree, trace *workload.Trace) (float64, error) {
	best := math.Inf(1)
	assigners := []sim.Assigner{
		core.NewGreedyIdentical(0.5),
		core.NewGreedyUnrelated(0.5),
	}
	for _, asg := range assigners {
		for _, pol := range []sim.Policy{sim.SJF{}, sim.SRPT{}} {
			res, err := sim.Run(t, trace, asg, sim.Options{Policy: pol})
			if err != nil {
				return 0, err
			}
			if res.Stats.TotalFlow < best {
				best = res.Stats.TotalFlow
			}
		}
	}
	return best, nil
}

// runT4 probes Theorem 4: OPT on the broomstick T' (with the theorem's
// asymmetric augmentation) is at most O(1/eps^3) times OPT on T. True
// OPT being intractable, both sides use the same best-of-portfolio
// proxy, so the reported ratio estimates OPT_{T'}/OPT_T.
func runT4(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("T4 — broomstick cost inflation, portfolio proxy for OPT",
		"eps", "instances", "mean ratio", "max ratio", "paper bound O(1/eps^3)")
	n := cfg.scaled(200)
	epsList := []float64{0.25, 0.5, 1.0}
	const instances = 6
	ratios, err := Sweep(cfg, len(epsList)*instances, func(i int) (float64, error) {
		eps, k := epsList[i/instances], i%instances
		r := cfg.rng(400 + uint64(eps*100) + uint64(k))
		base := tree.Random(r, tree.RandomConfig{Branches: 2, MaxDepth: 4, MaxChildren: 2, LeafProb: 0.45})
		trace := poisson(r, n, classSizes(eps), 0.85, float64(len(base.RootAdjacent())))
		costT, err := optProxy(base, trace)
		if err != nil {
			return 0, err
		}
		bs, err := tree.Reduce(base)
		if err != nil {
			return 0, err
		}
		aug := bs.Reduced.WithSpeeds(1+eps, (1+eps)*(1+eps), (1+eps)*(1+eps))
		costT2, err := optProxy(aug, trace)
		if err != nil {
			return 0, err
		}
		return costT2 / costT, nil
	})
	if err != nil {
		return nil, err
	}
	for ei, eps := range epsList {
		var sum, worst float64
		for _, ratio := range ratios[ei*instances : (ei+1)*instances] {
			sum += ratio
			if ratio > worst {
				worst = ratio
			}
		}
		tb.AddRow(eps, instances, sum/instances, worst, 1/(eps*eps*eps))
	}
	tb.AddNote("both numerator and denominator are best-of-portfolio proxies, not certified optima; Theorem 4 predicts the ratio stays below a constant times 1/eps^3")
	out.add(tb)

	// Exact companion: on tiny instances the time-indexed LP is solved
	// to optimality on both T (speed 1) and the augmented broomstick
	// T', so the reported ratio needs no proxy at all.
	tb2 := table.New("T4 (exact) — LP optima on tiny instances",
		"eps", "instance", "LP*(T)", "LP*(T' augmented)", "ratio", "paper bound O(1/eps^3)")
	tiny := []*workload.Trace{
		{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 2}, {ID: 1, Release: 1, Size: 1}, {ID: 2, Release: 2, Size: 2}}},
		{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 1}, {ID: 1, Release: 0, Size: 1}, {ID: 2, Release: 1, Size: 3}}},
	}
	tinyTree := func() *tree.Tree {
		b := tree.NewBuilder()
		v0 := b.AddRouter(b.Root())
		b.AddLeaf(v0)
		v1 := b.AddRouter(v0)
		b.AddLeaf(v1)
		return b.MustFinalize()
	}
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		for ti, trc := range tiny {
			base := tinyTree()
			inT, err := lp.Build(base, trc, 0)
			if err != nil {
				return nil, err
			}
			solT, err := inT.Solve()
			if err != nil {
				return nil, err
			}
			bs, err := tree.Reduce(base)
			if err != nil {
				return nil, err
			}
			aug := bs.Reduced.WithSpeeds(1+eps, (1+eps)*(1+eps), (1+eps)*(1+eps))
			inT2, err := lp.Build(aug, trc, 0)
			if err != nil {
				return nil, err
			}
			solT2, err := inT2.Solve()
			if err != nil {
				return nil, err
			}
			tb2.AddRow(eps, ti, solT.Objective, solT2.Objective, solT2.Objective/solT.Objective, 1/(eps*eps*eps))
		}
	}
	tb2.AddNote("exact on both sides (simplex-solved LP optima): the broomstick's extra depth costs only a small constant factor, comfortably inside Theorem 4's O(1/eps^3)")
	out.add(tb2)
	return out, nil
}
