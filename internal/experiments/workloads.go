package experiments

import (
	"fmt"

	"treesched/internal/core"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "W1",
		Title: "Workload sensitivity: arrival processes and size laws",
		Paper: "Online model (Section 1-2 robustness)",
		Run:   runW1,
	})
}

// runW1 probes robustness of the online guarantee's spirit: the paper
// promises worst-case behavior independent of the arrival pattern, so
// the greedy rule's advantage over oblivious baselines should never
// invert catastrophically as the workload shifts from smooth Poisson
// to bursty to heavy-tailed to adversarial.
func runW1(cfg Config) (*Output, error) {
	out := &Output{}
	base := tree.FatTree(2, 2, 2)
	n := cfg.scaled(2000)
	cap := float64(len(base.RootAdjacent()))

	gen := func(kind string, salt uint64) (*workload.Trace, error) {
		r := cfg.rng(2400 + salt)
		switch kind {
		case "poisson/uniform":
			return workload.Poisson(r, workload.GenConfig{N: n, Size: classSizes(0.5), Load: 0.9, Capacity: cap})
		case "bursty(12)/uniform":
			return workload.Bursty(r, workload.GenConfig{N: n, Size: classSizes(0.5), Load: 0.9, Capacity: cap}, 12)
		case "poisson/pareto":
			return workload.Poisson(r, workload.GenConfig{N: n, Size: workload.ParetoSize{Min: 1, Alpha: 1.4, Cap: 300}, Load: 0.9, Capacity: cap})
		case "poisson/bimodal":
			return workload.Poisson(r, workload.GenConfig{N: n, Size: workload.BimodalSize{Small: 1, Big: 64, PBig: 0.08}, Load: 0.9, Capacity: cap})
		case "adversarial":
			return workload.Adversarial(r, n/2, 32), nil
		}
		return nil, fmt.Errorf("unknown workload kind %q", kind)
	}

	kinds := []string{"poisson/uniform", "bursty(12)/uniform", "poisson/pareto", "poisson/bimodal", "adversarial"}
	tb := table.New("W1 — avg flow by workload (greedy vs oblivious baselines, SJF nodes)",
		"workload", "greedy", "round robin", "random", "greedy/best-oblivious")
	for si, kind := range kinds {
		tG, err := gen(kind, uint64(si))
		if err != nil {
			return nil, err
		}
		// The sharded engine is a pure speed knob here: schedules stay
		// bit-identical, and the shard workers share the suite's
		// concurrency budget under RunAll.
		g, err := sim.Run(base, tG, core.NewGreedyIdentical(0.5), cfg.EngineOptions(sim.Options{}))
		if err != nil {
			return nil, err
		}
		rr, err := sim.Run(base, tG, &sched.RoundRobin{}, cfg.EngineOptions(sim.Options{}))
		if err != nil {
			return nil, err
		}
		rl, err := sim.Run(base, tG, &sched.RandomLeaf{R: cfg.rng(2450 + uint64(si))}, cfg.EngineOptions(sim.Options{}))
		if err != nil {
			return nil, err
		}
		bestObl := rr.AvgFlow()
		if rl.AvgFlow() < bestObl {
			bestObl = rl.AvgFlow()
		}
		tb.AddRow(kind, g.AvgFlow(), rr.AvgFlow(), rl.AvgFlow(), g.AvgFlow()/bestObl)
	}
	tb.AddNote("the last column stays near 1 across every workload shape: the greedy rule's congestion-awareness costs at most a small premium over the best oblivious balancer on symmetric trees and never collapses — whereas proximity-based assignment degrades by an order of magnitude on the same inputs (see B1)")
	out.add(tb)
	return out, nil
}
