package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// RunResult pairs an experiment with its output (or error).
type RunResult struct {
	Exp    *Experiment
	Output *Output
	Err    error
}

// RunAll executes the given experiments concurrently on a bounded
// worker pool and returns results in the input order. Experiments are
// deterministic given Config, so concurrency does not affect any
// reported number — only wall-clock time. parallelism <= 0 uses
// GOMAXPROCS.
func RunAll(exps []*Experiment, cfg Config, parallelism int) []RunResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(exps) {
		parallelism = len(exps)
	}
	results := make([]RunResult, len(exps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				e := exps[i]
				out, err := runSafe(e, cfg)
				results[i] = RunResult{Exp: e, Output: out, Err: err}
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runSafe converts experiment panics into errors so one failing
// experiment cannot take down a whole suite run.
func runSafe(e *Experiment, cfg Config) (out *Output, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("experiment %s panicked: %v", e.ID, r)
		}
	}()
	return e.Run(cfg)
}
