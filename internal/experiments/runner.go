package experiments

import (
	"fmt"
	"runtime"
	"sync"
)

// RunResult pairs an experiment with its output (or error).
type RunResult struct {
	Exp    *Experiment
	Output *Output
	Err    error
}

// RunAll executes the given experiments concurrently on a bounded
// worker pool and returns results in the input order. Experiments are
// deterministic given Config, so concurrency does not affect any
// reported number — only wall-clock time. parallelism <= 0 uses
// GOMAXPROCS.
//
// parallelism bounds *total* concurrency, not just the number of
// simultaneously running experiments: the same token pool is shared
// with every intra-experiment Sweep, so grid cells soak up whatever
// slots whole experiments leave idle (e.g. a single -run T1 still
// fans its ε×load grid across all -parallel workers).
func RunAll(exps []*Experiment, cfg Config, parallelism int) []RunResult {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	// The pool capacity is the full parallelism budget even when there
	// are fewer experiments than workers — Sweep helpers claim the
	// leftover tokens.
	cfg.tokens = make(chan struct{}, parallelism)
	workers := parallelism
	if workers > len(exps) {
		workers = len(exps)
	}
	results := make([]RunResult, len(exps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				e := exps[i]
				cfg.tokens <- struct{}{}
				out, err := runSafe(e, cfg)
				<-cfg.tokens
				results[i] = RunResult{Exp: e, Output: out, Err: err}
			}
		}()
	}
	for i := range exps {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results
}

// runSafe converts experiment panics into errors so one failing
// experiment cannot take down a whole suite run.
func runSafe(e *Experiment, cfg Config) (out *Output, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, fmt.Errorf("experiment %s panicked: %v", e.ID, r)
		}
	}()
	return e.Run(cfg)
}
