package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs fn(i) for every cell i in [0, cells) on a bounded worker
// pool and returns the results in input order. It is the
// intra-experiment counterpart of RunAll: the ε/speed/seed grid loops
// of the theorem and baseline experiments fan their cells out through
// it instead of iterating serially.
//
// Determinism contract: fn must derive all randomness for cell i from
// cfg.Seed and i alone (the cfg.rng(salt) idiom with a cell-dependent
// salt), and must not mutate state shared between cells. Results land
// in a slot per cell, so the output is byte-identical at any
// parallelism — including under RunAll, whose suite-wide token pool
// Sweep shares so that the -parallel flag bounds total concurrency.
//
// The calling goroutine always participates in the work (it already
// holds a suite token when running under RunAll), so Sweep makes
// progress even when no extra worker slot is free and can never
// deadlock against the pool. A panic in fn is converted into an error
// carrying the cell index; the first failing cell's error (in cell
// order) is returned.
func Sweep[T any](cfg Config, cells int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, cells)
	if cells == 0 {
		return results, nil
	}
	errs := make([]error, cells)
	runCell := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = fmt.Errorf("sweep: cell %d panicked: %v", i, r)
			}
		}()
		results[i], errs[i] = fn(i)
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= cells {
				return
			}
			runCell(i)
		}
	}

	var wg sync.WaitGroup
	if cfg.tokens != nil {
		// Under RunAll: the caller's suite token covers one worker
		// (this goroutine); helpers each hold an extra token for their
		// lifetime. try-acquire only — never steal slots from
		// concurrently running experiments, never block.
	acquire:
		for h := 0; h < cells-1; h++ {
			select {
			case cfg.tokens <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-cfg.tokens }()
					work()
				}()
			default:
				break acquire
			}
		}
	} else {
		p := cfg.Parallelism
		if p <= 0 {
			p = runtime.GOMAXPROCS(0)
		}
		for h := 0; h < p-1 && h < cells-1; h++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				work()
			}()
		}
	}
	work()
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
