package experiments

import (
	"fmt"
	"time"

	"treesched/internal/core"
	"treesched/internal/plot"
	"treesched/internal/scenario"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func init() {
	register(&Experiment{ID: "B1", Title: "Leaf-assignment policy comparison across loads", Paper: "Introduction / Section 3.1 motivation", Run: runB1})
	register(&Experiment{ID: "B2", Title: "Node scheduling policy comparison (SJF vs FIFO/SRPT/LCFS)", Paper: "SJF choice (Section 2)", Run: runB2})
	register(&Experiment{ID: "B3", Title: "Resource augmentation sweep", Paper: "Theorems 1-2 (speed requirement)", Run: runB3})
	register(&Experiment{ID: "B4", Title: "Engine throughput", Paper: "(engineering)", Run: runB4})
	register(&Experiment{ID: "B5", Title: "Greedy assignment term ablation", Paper: "Section 3.4 assignment rule", Run: runB5})
	register(&Experiment{ID: "B6", Title: "Store-and-forward vs packetized forwarding", Paper: "Section 2 remark", Run: runB6})
	register(&Experiment{ID: "B7", Title: "Shadow-on-broomstick vs greedy directly on T", Paper: "Section 3.7", Run: runB7})
	register(&Experiment{ID: "B8", Title: "Queue implementation ablation (heap vs scan)", Paper: "(engineering)", Run: runB8})
}

// runB1 is the headline baseline study: congestion-aware assignment
// (the paper's greedy) against proximity, random, round-robin and
// volume-based baselines, across load levels and an adversarial trace.
func runB1(cfg Config) (*Output, error) {
	out := &Output{}
	n := cfg.scaled(2500)
	// Registry names; each cell builds its own assigner through the
	// scenario layer so stateful baselines (round robin, random) start
	// fresh, exactly as the serial loop did. The randomized baseline
	// keeps its historical rng seed via AssignerSeed.
	assignerNames := []string{"greedy-identical", "closest", "random", "roundrobin", "leastvolume", "minpath", "jsq"}
	tb := table.New("B1 — avg flow time by assigner and load (identical endpoints, SJF nodes)",
		"assigner", "load 0.5", "load 0.8", "load 0.95", "adversarial")
	loads := []float64{0.5, 0.8, 0.95}
	cols := len(loads) + 1 // the last column is the adversarial trace
	type cell struct {
		label string
		flow  float64
	}
	vals, err := Sweep(cfg, len(assignerNames)*cols, func(i int) (cell, error) {
		ai, ci := i/cols, i%cols
		sc := &scenario.Scenario{
			Topology:     scenario.NewSpec("fattree", 2, 2, 2),
			Assigner:     assignerNames[ai],
			AssignerSeed: cfg.Seed + 99,
		}
		if ci < len(loads) {
			sc.Workload = scenario.Workload{N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: loads[ci]}
			sc.Seed = cfg.seed(800 + uint64(loads[ci]*100))
		} else {
			sc.Workload = scenario.Workload{Process: scenario.NewSpec("adversarial", 32), N: cfg.scaled(600)}
			sc.Seed = cfg.seed(870)
		}
		in, err := sc.Build()
		if err != nil {
			return cell{}, err
		}
		res, err := in.Run()
		if err != nil {
			return cell{}, err
		}
		return cell{in.Assigner.Name(), res.AvgFlow()}, nil
	})
	if err != nil {
		return nil, err
	}
	for ai := range assignerNames {
		v := vals[ai*cols : (ai+1)*cols]
		tb.AddRow(v[0].label, v[0].flow, v[1].flow, v[2].flow, v[3].flow)
	}
	tb.AddNote("ClosestLeaf funnels every job into one branch (all leaves tie on depth, ties break by ID) — the failure mode Section 3.1 warns about; congestion-aware rules stay flat as load rises")
	out.add(tb)
	return out, nil
}

// runB2 compares node policies under a fixed assigner on a
// heavy-tailed workload, where size-aware policies matter most.
func runB2(cfg Config) (*Output, error) {
	out := &Output{}
	n := cfg.scaled(2500)
	tb := table.New("B2 — node policy comparison (LeastVolume assigner, Pareto sizes, load 0.9)",
		"policy", "avg flow", "p99 flow", "max flow")
	for _, pol := range []string{"sjf", "srpt", "fifo", "lcfs", "ps"} {
		sc := &scenario.Scenario{
			Topology: scenario.NewSpec("fattree", 2, 2, 2),
			Workload: scenario.Workload{N: n, Size: scenario.NewSpec("pareto", 1, 1.5, 200), Load: 0.9},
			Policy:   pol,
			Assigner: "leastvolume",
			Seed:     cfg.seed(900),
		}
		in, err := sc.Build()
		if err != nil {
			return nil, err
		}
		res, err := in.Run()
		if err != nil {
			return nil, err
		}
		tb.AddRow(in.Opts.Policy.Name(), res.AvgFlow(), quantileFlow(res, 0.99), res.Stats.MaxFlow)
	}
	tb.AddNote("SJF/SRPT dominate on average flow, exactly why the paper builds on SJF; FIFO trades average for tail; PS (fair-queueing routers, the deployed default) sits in between — the cost of not using size information")
	out.add(tb)
	return out, nil
}

func quantileFlow(res *sim.Result, q float64) float64 {
	flows := make([]float64, len(res.Jobs))
	for i := range res.Jobs {
		flows[i] = res.Jobs[i].Flow
	}
	// inline to avoid a metrics import cycle risk; small helper
	return quantile(flows, q)
}

func quantile(data []float64, q float64) float64 {
	cp := append([]float64(nil), data...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
			cp[j], cp[j-1] = cp[j-1], cp[j]
		}
	}
	if len(cp) == 0 {
		return 0
	}
	idx := int(q * float64(len(cp)-1))
	return cp[idx]
}

// runB3 sweeps node speed: how much augmentation the greedy algorithm
// needs before its flow approaches the lower bound.
func runB3(cfg Config) (*Output, error) {
	out := &Output{}
	n := cfg.scaled(2000)
	tb := table.New("B3 — total flow vs uniform node speed (load 0.95 at speed 1)",
		"speed", "identical avg flow", "unrelated avg flow")
	var xs, yi, yu []float64
	speeds := []float64{1.0, 1.1, 1.25, 1.5, 2.0, 2.5, 3.0}
	flows, err := Sweep(cfg, len(speeds), func(i int) ([2]float64, error) {
		scI := &scenario.Scenario{
			Topology: scenario.NewSpec("fattree", 2, 2, 2),
			Workload: scenario.Workload{N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.95},
			Assigner: "greedy-identical",
			Seed:     cfg.seed(1000),
			Speed:    scenario.Speed{Uniform: speeds[i]},
		}
		res, err := scenario.Run(scI)
		if err != nil {
			return [2]float64{}, err
		}
		scU := &scenario.Scenario{
			Topology: scenario.NewSpec("fattree", 2, 2, 2),
			Workload: scenario.Workload{
				N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.95,
				Unrelated: &scenario.Unrelated{Lo: 0.5, Hi: 2},
			},
			Assigner: "greedy-unrelated",
			Seed:     cfg.seed(1001),
			Speed:    scenario.Speed{Uniform: speeds[i]},
		}
		resU, err := scenario.Run(scU)
		if err != nil {
			return [2]float64{}, err
		}
		return [2]float64{res.AvgFlow(), resU.AvgFlow()}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, s := range speeds {
		tb.AddRow(s, flows[i][0], flows[i][1])
		xs = append(xs, s)
		yi = append(yi, flows[i][0])
		yu = append(yu, flows[i][1])
	}
	tb.AddNote("the identical curve flattens quickly past (1+eps); the unrelated curve needs roughly twice the speed before flattening — the Theorem 1 vs Theorem 2 gap")
	out.add(tb)
	chart := &plot.Chart{
		Title:  "avg flow vs node speed (log scale)",
		XLabel: "uniform node speed",
		YLabel: "avg flow",
		LogY:   true,
		Series: []plot.Series{
			{Name: "identical", X: xs, Y: yi},
			{Name: "unrelated", X: xs, Y: yu},
		},
	}
	out.addText("B3 curve", chart.Render())
	return out, nil
}

// runB4 measures raw engine throughput, cold (fresh engine per run)
// and warm (the same engine recycled through Sim.Reset, the
// steady-state path a parameter sweep or service would use). The two
// runs must produce identical statistics; the warm column shows what
// the freelist and buffer reuse buy. Timing experiments stay serial —
// concurrent cells would corrupt each other's wall-clock numbers.
func runB4(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("B4 — engine throughput", "jobs", "tree nodes", "events",
		"cold events/sec", "warm events/sec")
	for _, sz := range []struct{ n, arity, depth, lpr int }{
		{cfg.scaled(5000), 2, 2, 2},
		{cfg.scaled(20000), 2, 3, 2},
		{cfg.scaled(20000), 3, 3, 3},
	} {
		t := tree.FatTree(sz.arity, sz.depth, sz.lpr)
		trace := poisson(cfg.rng(1100), sz.n, classSizes(0.5), 0.9, float64(len(t.RootAdjacent())))

		start := time.Now()
		s := sim.New(t, sim.Options{})
		res, err := sim.RunOn(s, trace, core.NewGreedyIdentical(0.5))
		if err != nil {
			return nil, err
		}
		cold := time.Since(start)

		start = time.Now()
		s.Reset(sim.Options{})
		warm, err := sim.RunOn(s, trace, core.NewGreedyIdentical(0.5))
		if err != nil {
			return nil, err
		}
		warmEl := time.Since(start)
		if warm.Stats != res.Stats {
			return nil, fmt.Errorf("B4: warm Reset replay diverged from cold run")
		}

		tb.AddRow(sz.n, t.NumNodes(), res.Stats.Events,
			float64(res.Stats.Events)/cold.Seconds(),
			float64(warm.Stats.Events)/warmEl.Seconds())
	}
	tb.AddNote("warm rows reuse one engine via Sim.Reset; identical event counts and flow statistics are asserted, so the speedup is pure allocation avoidance")
	out.add(tb)
	return out, nil
}

// runB5 ablates the two terms of the greedy assignment objective.
// The topology must make both terms matter *across branches* (within
// one branch F(j,v) is constant, so a single-branch tree makes the
// ablation vacuous): branch A offers two cheap depth-2 machines
// behind one contested link, branch B offers six roomy machines at
// depth 5. Volume-blind assignment congests branch A; distance-blind
// assignment overpays branch B's long path.
func runB5(cfg Config) (*Output, error) {
	out := &Output{}
	b := tree.NewBuilder()
	a0 := b.AddRouter(b.Root())
	b.AddLeaf(a0)
	b.AddLeaf(a0)
	w := b.AddRouter(b.Root())
	for i := 0; i < 3; i++ {
		w = b.AddRouter(w)
	}
	for i := 0; i < 6; i++ {
		b.AddLeaf(w)
	}
	base := b.MustFinalize()
	n := cfg.scaled(2000)
	tb := table.New("B5 — greedy term ablation (shallow contested branch vs deep roomy branch)",
		"variant", "load 0.7 avg flow", "load 1.0 avg flow")
	variants := []struct {
		name       string
		dropDist   bool
		dropVolume bool
		weight     float64
	}{
		{"full greedy (weight 6/eps^2 = 24)", false, false, 0},
		{"distance weight 1 (plain P_{j,v})", false, false, 1},
		{"no distance term", true, false, 0},
		{"no volume term (distance only)", false, true, 0},
	}
	loads := []float64{0.7, 1.0}
	vals, err := Sweep(cfg, len(variants)*len(loads), func(i int) (float64, error) {
		v, load := variants[i/len(loads)], loads[i%len(loads)]
		g := core.NewGreedyIdentical(0.5)
		g.Cfg.DropDistanceTerm = v.dropDist
		g.Cfg.DropVolumeTerm = v.dropVolume
		g.Cfg.DistanceWeight = v.weight
		trace := poisson(cfg.rng(1200+uint64(load*10)), n, classSizes(0.5), load, float64(len(base.RootAdjacent())))
		res, err := sim.Run(base, trace, g, sim.Options{})
		if err != nil {
			return 0, err
		}
		return res.AvgFlow(), nil
	})
	if err != nil {
		return nil, err
	}
	for vi, v := range variants {
		tb.AddRow(v.name, vals[vi*len(loads)], vals[vi*len(loads)+1])
	}
	tb.AddNote("REPRODUCTION FINDING: the volume term is load-bearing (dropping it is catastrophic), but the paper's 6/eps^2 distance coefficient — an artifact of the analysis — overweights proximity in practice: weight 1 (plain path work) beats the full constant, and even dropping the distance term entirely wins at moderate load")
	out.add(tb)
	return out, nil
}

// runB6 quantifies the store-and-forward penalty against the
// packetized relaxation the paper sketches in Section 2.
func runB6(cfg Config) (*Output, error) {
	out := &Output{}
	n := cfg.scaled(400)
	tb := table.New("B6 — store-and-forward vs packetized forwarding",
		"topology", "store-and-forward avg flow", "packetized avg flow", "ratio")
	for _, tc := range []struct {
		name string
		t    *tree.Tree
	}{
		{"line(4)", tree.Line(4)},
		{"fat tree 2x2x2", tree.FatTree(2, 2, 2)},
	} {
		trace := poisson(cfg.rng(1300), n, workload.UniformSize{Lo: 2, Hi: 10}, 0.7, float64(len(tc.t.RootAdjacent())))
		sf, err := sim.Run(tc.t, trace, core.NewGreedyIdentical(0.5), sim.Options{})
		if err != nil {
			return nil, err
		}
		pk, err := sim.RunPacketized(tc.t, trace, core.NewGreedyIdentical(0.5), sim.Options{})
		if err != nil {
			return nil, err
		}
		tb.AddRow(tc.name, sf.AvgFlow(), pk.AvgFlow(), sf.AvgFlow()/pk.AvgFlow())
	}
	tb.AddNote("packetized pipelining removes the per-hop serialization; the gap grows with path depth, matching the paper's remark that splitting jobs negates interior congestion")
	out.add(tb)
	return out, nil
}

// runB7 asks whether the broomstick simulation costs anything in
// practice versus running the greedy rule directly on T.
func runB7(cfg Config) (*Output, error) {
	out := &Output{}
	n := cfg.scaled(800)
	tb := table.New("B7 — shadow-on-broomstick vs direct greedy on T",
		"setting", "instance", "direct avg flow", "shadow avg flow", "shadow/direct")
	for _, unrel := range []bool{false, true} {
		setting := "identical"
		if unrel {
			setting = "unrelated"
		}
		for k := 0; k < 4; k++ {
			r := cfg.rng(1400 + uint64(k) + 40*boolU(unrel))
			base := tree.Random(r, tree.RandomConfig{Branches: 2, MaxDepth: 4, MaxChildren: 2, LeafProb: 0.45})
			trace := poisson(r, n, classSizes(0.5), 0.85, float64(len(base.RootAdjacent())))
			var direct, shadow *sim.Result
			var err error
			if unrel {
				if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{Leaves: len(base.Leaves()), Lo: 0.5, Hi: 2}); err != nil {
					return nil, err
				}
				direct, err = sim.Run(base, trace, core.NewGreedyUnrelated(0.5), sim.Options{})
			} else {
				direct, err = sim.Run(base, trace, core.NewGreedyIdentical(0.5), sim.Options{})
			}
			if err != nil {
				return nil, err
			}
			sh, err := core.NewShadow(base, core.ShadowConfig{Eps: 0.5, Unrelated: unrel})
			if err != nil {
				return nil, err
			}
			shadow, err = sim.Run(base, trace, sh, sim.Options{})
			if err != nil {
				return nil, err
			}
			tb.AddRow(setting, k, direct.AvgFlow(), shadow.AvgFlow(), shadow.AvgFlow()/direct.AvgFlow())
		}
	}
	tb.AddNote("identical setting: the ratio is exactly 1 — the reduction adds a constant 2 to every leaf depth and leaves F per branch unchanged, so the broomstick argmin coincides with the direct argmin decision-for-decision. Unrelated setting: leaf queues evolve differently on T', so decisions (and flows) can diverge.")
	out.add(tb)
	return out, nil
}

// runB8 compares the two node-queue implementations.
func runB8(cfg Config) (*Output, error) {
	out := &Output{}
	t := tree.FatTree(2, 2, 2)
	n := cfg.scaled(15000)
	trace := poisson(cfg.rng(1500), n, classSizes(0.5), 1.05, float64(len(t.RootAdjacent())))
	tb := table.New("B8 — queue implementation ablation (overloaded, long queues)",
		"queue", "total flow", "wall ms")
	var flows []float64
	for _, scan := range []bool{false, true} {
		start := time.Now()
		res, err := sim.Run(t, trace, core.NewGreedyIdentical(0.5), sim.Options{UseScanQueue: scan})
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		name := "binary heap"
		if scan {
			name = "linear scan"
		}
		tb.AddRow(name, res.Stats.TotalFlow, float64(el.Milliseconds()))
		flows = append(flows, res.Stats.TotalFlow)
	}
	tb.AddNote("both implementations must produce identical schedules; the flow columns agree to float precision")
	if len(flows) == 2 && (flows[0]-flows[1] > 1e-3 || flows[1]-flows[0] > 1e-3) {
		tb.AddNote("WARNING: queue implementations diverged!")
	}
	out.add(tb)
	return out, nil
}
