package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// Sweep must return results in input order even with far more cells
// than workers.
func TestSweepMoreCellsThanWorkers(t *testing.T) {
	const cells = 100
	got, err := Sweep(Config{Parallelism: 3}, cells, func(i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != cells {
		t.Fatalf("got %d results, want %d", len(got), cells)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("cell %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestSweepZeroCells(t *testing.T) {
	got, err := Sweep(Config{}, 0, func(i int) (int, error) {
		t.Fatal("fn called for zero cells")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v; want empty, nil", got, err)
	}
}

// The first failing cell in *cell order* wins, regardless of which
// cell fails first in wall-clock order.
func TestSweepFirstErrorInCellOrder(t *testing.T) {
	_, err := Sweep(Config{Parallelism: 4}, 10, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("cell %d failed", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != "cell 3 failed" {
		t.Fatalf("err = %v, want cell 3's error", err)
	}
}

// A panicking cell must surface as an error naming the cell, not kill
// the process.
func TestSweepPanicBecomesError(t *testing.T) {
	_, err := Sweep(Config{Parallelism: 2}, 5, func(i int) (int, error) {
		if i == 2 {
			panic("boom")
		}
		return i, nil
	})
	if err == nil || !strings.Contains(err.Error(), "cell 2 panicked") {
		t.Fatalf("err = %v, want a cell-2 panic error", err)
	}
}

func TestSweepErrorDoesNotHideResults(t *testing.T) {
	sentinel := errors.New("nope")
	got, err := Sweep(Config{}, 3, func(i int) (int, error) {
		if i == 1 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got != nil {
		t.Fatalf("results = %v, want nil on error", got)
	}
}

// A Sweep running under RunAll at parallelism 1 must complete: the
// caller's goroutine works even when no extra token is free, so the
// shared pool can never deadlock a nested sweep.
func TestSweepUnderRunAllNoDeadlock(t *testing.T) {
	var calls atomic.Int64
	e := &Experiment{ID: "SWEEPY", Title: "nested sweep", Paper: "-", Run: func(cfg Config) (*Output, error) {
		vals, err := Sweep(cfg, 20, func(i int) (int, error) {
			calls.Add(1)
			return i, nil
		})
		if err != nil {
			return nil, err
		}
		if len(vals) != 20 {
			return nil, fmt.Errorf("got %d cells", len(vals))
		}
		return &Output{Texts: []TextBlock{{Title: "ok", Body: "ok"}}}, nil
	}}
	for _, par := range []int{1, 4} {
		calls.Store(0)
		res := RunAll([]*Experiment{e, e}, Config{}, par)
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("parallelism %d: %v", par, r.Err)
			}
		}
		if calls.Load() != 40 {
			t.Fatalf("parallelism %d: %d cells ran, want 40", par, calls.Load())
		}
	}
}

// An error inside a Sweep cell must propagate through RunAll like any
// other experiment error.
func TestRunAllPropagatesSweepError(t *testing.T) {
	e := &Experiment{ID: "SWEEPERR", Title: "failing sweep", Paper: "-", Run: func(cfg Config) (*Output, error) {
		_, err := Sweep(cfg, 8, func(i int) (int, error) {
			if i == 5 {
				panic("cell exploded")
			}
			return i, nil
		})
		return nil, err
	}}
	res := RunAll([]*Experiment{e}, Config{}, 2)
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "cell 5 panicked") {
		t.Fatalf("err = %v, want the cell-5 panic error", res[0].Err)
	}
}

// The determinism regression: grid-heavy experiments must render
// byte-identical tables at parallelism 1 and full parallelism, both
// through RunAll and when run directly at different Config.Parallelism
// settings.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	ids := []string{"T1", "B3"}
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := e.Run(Config{Seed: 11, Scale: 0.05, Parallelism: 1})
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		wide, err := e.Run(Config{Seed: 11, Scale: 0.05, Parallelism: 4 * runtime.GOMAXPROCS(0)})
		if err != nil {
			t.Fatalf("%s wide: %v", id, err)
		}
		if len(serial.Tables) != len(wide.Tables) || len(serial.Tables) == 0 {
			t.Fatalf("%s: table counts differ (%d vs %d)", id, len(serial.Tables), len(wide.Tables))
		}
		for ti := range serial.Tables {
			if serial.Tables[ti].Text() != wide.Tables[ti].Text() {
				t.Fatalf("%s: table %d differs between parallelism 1 and wide:\n--- serial ---\n%s\n--- wide ---\n%s",
					id, ti, serial.Tables[ti].Text(), wide.Tables[ti].Text())
			}
		}
	}
}
