// Package experiments implements the reproduction suite indexed in
// DESIGN.md §4: one registered experiment per figure, theorem, lemma
// and baseline study. The paper (Im & Moseley, SPAA 2015) is a theory
// paper with no empirical section, so each experiment empirically
// validates the *shape* of one claim — bounded ratios, who wins,
// where constants bite — rather than matching testbed numbers.
package experiments

import (
	"fmt"
	"runtime"
	"sort"

	"treesched/internal/rng"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	// Seed drives all randomness; the same seed reproduces the run.
	Seed uint64
	// Scale multiplies job counts (1 = the EXPERIMENTS.md defaults;
	// benchmarks use smaller scales).
	Scale float64
	// Parallelism bounds intra-experiment Sweep concurrency when an
	// experiment is run directly (0 = GOMAXPROCS). RunAll ignores it
	// and installs a token pool shared across the whole suite instead,
	// so its -parallel flag bounds total concurrency. Results are
	// byte-identical at any setting.
	Parallelism int

	// tokens is the suite-wide concurrency pool installed by RunAll;
	// nil when the experiment runs outside a suite.
	tokens chan struct{}
}

func (c Config) scaled(n int) int {
	s := c.Scale
	if s <= 0 {
		s = 1
	}
	v := int(float64(n) * s)
	if v < 10 {
		v = 10
	}
	return v
}

// seed derives the per-cell seed: scenario cells pass it as
// Scenario.Seed, hand-wired cells draw from rng(salt), and both see
// the same stream, so converting a cell to a Scenario preserves its
// trace bit for bit.
func (c Config) seed(salt uint64) uint64 {
	return c.Seed*0x9e3779b97f4a7c15 + salt + 1
}

func (c Config) rng(salt uint64) *rng.Rand {
	return rng.New(c.seed(salt))
}

// EngineOptions prepares engine options for a cell that runs the
// subtree-sharded engine under this config: Workers comes from
// Parallelism (GOMAXPROCS when 0) and, under RunAll, WorkerTokens
// aliases the suite-wide token pool, so shard workers and Sweep cells
// draw from one concurrency budget instead of multiplying it.
// Schedules are bit-identical at any setting (see sim.Options.Workers).
func (c Config) EngineOptions(opts sim.Options) sim.Options {
	opts.Workers = c.Parallelism
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	opts.WorkerTokens = c.tokens
	return opts
}

// TextBlock is a non-tabular artifact (tree renderings etc.).
type TextBlock struct {
	Title string
	Body  string
}

// Output is everything an experiment produced.
type Output struct {
	Tables []*table.Table
	Texts  []TextBlock
}

func (o *Output) add(t *table.Table)         { o.Tables = append(o.Tables, t) }
func (o *Output) addText(title, body string) { o.Texts = append(o.Texts, TextBlock{title, body}) }

// Experiment is one entry of the reproduction index.
type Experiment struct {
	// ID matches DESIGN.md §4 (F1, T1, L2, B5, ...).
	ID string
	// Title is a one-line description.
	Title string
	// Paper names the paper artifact being validated.
	Paper string
	// Run executes the experiment.
	Run func(cfg Config) (*Output, error)
}

var registry []*Experiment

func register(e *Experiment) { registry = append(registry, e) }

// All returns the registered experiments in ID order.
func All() []*Experiment {
	out := append([]*Experiment(nil), registry...)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// ByID returns the experiment with the given ID.
func ByID(id string) (*Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q", id)
}

// classSizes is the standard class-rounded size distribution used
// across experiments.
func classSizes(eps float64) workload.SizeDist {
	return workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 16}, Eps: eps}
}

// poisson builds a Poisson trace or panics (generation can only fail
// on bad config, which is a programming error here).
func poisson(r *rng.Rand, n int, size workload.SizeDist, load, capacity float64) *workload.Trace {
	tr, err := workload.Poisson(r, workload.GenConfig{N: n, Size: size, Load: load, Capacity: capacity})
	if err != nil {
		panic(err)
	}
	return tr
}
