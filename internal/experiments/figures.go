package experiments

import (
	"treesched/internal/table"
	"treesched/internal/trace"
	"treesched/internal/tree"
)

func init() {
	register(&Experiment{
		ID:    "F1",
		Title: "Tree network model illustration",
		Paper: "Figure 1",
		Run:   runF1,
	})
	register(&Experiment{
		ID:    "F2",
		Title: "Tree-to-broomstick reduction illustration",
		Paper: "Figure 2 (Section 3.3)",
		Run:   runF2,
	})
}

// runF1 regenerates the paper's Figure 1: a rooted tree whose root is
// the job distribution center, interior nodes are routers, and leaves
// are machines — rendered as ASCII plus a structural summary.
func runF1(cfg Config) (*Output, error) {
	out := &Output{}
	t := tree.FatTree(2, 2, 2)
	out.addText("Figure 1 — tree network model (2-ary fat tree, 2 router levels, 2 machines per rack)",
		trace.RenderTree(t))

	tb := table.New("F1 structural summary", "quantity", "value")
	tb.AddRow("nodes (incl. root)", t.NumNodes())
	tb.AddRow("routers adjacent to root |R|", len(t.RootAdjacent()))
	tb.AddRow("machines |L|", len(t.Leaves()))
	tb.AddRow("height", t.Height())
	leaf := t.Leaves()[0]
	tb.AddRow("d_v of first machine", t.Depth(leaf))
	tb.AddNote("jobs arrive at the root and must be processed store-and-forward on every node of the path to their machine")
	out.add(tb)
	return out, nil
}

// runF2 regenerates Figure 2: an irregular tree and its broomstick,
// with the invariants the reduction guarantees.
func runF2(cfg Config) (*Output, error) {
	out := &Output{}
	// An irregular tree akin to the paper's sketch: two branches of
	// different shapes.
	b := tree.NewBuilder()
	v0 := b.AddRouter(b.Root())
	b.AddLeaf(v0)
	u := b.AddRouter(v0)
	b.AddLeaf(u)
	b.AddLeaf(u)
	w0 := b.AddRouter(b.Root())
	w1 := b.AddRouter(w0)
	w2 := b.AddRouter(w1)
	b.AddLeaf(w2)
	b.AddLeaf(w1)
	t := b.MustFinalize()

	bs, err := tree.Reduce(t)
	if err != nil {
		return nil, err
	}
	out.addText("Figure 2 — tree reduction to a broomstick", trace.RenderReduction(bs))

	tb := table.New("F2 reduction invariants", "invariant", "value")
	tb.AddRow("is broomstick", tree.IsBroomstick(bs.Reduced))
	tb.AddRow("leaves preserved", len(bs.Reduced.Leaves()) == len(t.Leaves()))
	ok := true
	for _, rl := range bs.Reduced.Leaves() {
		ol := bs.ToOriginal[bs.Reduced.LeafIndex(rl)]
		if bs.Reduced.Depth(rl) != t.Depth(ol)+2 {
			ok = false
		}
	}
	tb.AddRow("every leaf exactly 2 deeper", ok)
	tb.AddRow("original nodes", t.NumNodes())
	tb.AddRow("broomstick nodes", bs.Reduced.NumNodes())
	out.add(tb)
	return out, nil
}
