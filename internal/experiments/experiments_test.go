package experiments

import (
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Seed: 1, Scale: 0.05}

// Every registered experiment must run, produce at least one artifact,
// and have well-formed tables.
func TestAllExperimentsRun(t *testing.T) {
	exps := All()
	if len(exps) < 18 {
		t.Fatalf("registry has %d experiments, want >= 18", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(quick)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(out.Tables)+len(out.Texts) == 0 {
				t.Fatalf("%s produced no artifacts", e.ID)
			}
			for _, tb := range out.Tables {
				if len(tb.Headers) == 0 {
					t.Fatalf("%s: table %q has no headers", e.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Headers) {
						t.Fatalf("%s: table %q row width %d != headers %d", e.ID, tb.Title, len(row), len(tb.Headers))
					}
				}
				if len(tb.Rows) == 0 {
					t.Fatalf("%s: table %q is empty", e.ID, tb.Title)
				}
			}
		})
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown ID accepted")
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment ID %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q is not a number: %v", s, err)
	}
	return v
}

// Shape assertion for L1/L2: zero violations at modest scale.
func TestLemmaExperimentsZeroViolations(t *testing.T) {
	for _, id := range []string{"L1", "L2"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := e.Run(Config{Seed: 2, Scale: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		tb := out.Tables[0]
		violCol := len(tb.Headers) - 1
		for _, row := range tb.Rows {
			if v := cellFloat(t, row[violCol]); v != 0 {
				t.Fatalf("%s: row %v has %v violations", id, row, v)
			}
		}
	}
}

// Shape assertion for B1: ClosestLeaf must be far worse than the
// greedy rule at high load.
func TestB1GreedyBeatsClosest(t *testing.T) {
	e, _ := ByID("B1")
	out, err := e.Run(Config{Seed: 3, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	var greedy95, closest95 float64
	for _, row := range tb.Rows {
		switch {
		case strings.Contains(row[0], "Greedy"):
			greedy95 = cellFloat(t, row[3])
		case strings.Contains(row[0], "Closest"):
			closest95 = cellFloat(t, row[3])
		}
	}
	if greedy95 <= 0 || closest95 <= 0 {
		t.Fatalf("missing rows in B1 table:\n%s", tb.Text())
	}
	if closest95 < 2*greedy95 {
		t.Fatalf("ClosestLeaf (%v) should collapse vs greedy (%v) at load 0.95", closest95, greedy95)
	}
}

// Shape assertion for T3: the integral flow always dominates the
// fractional flow, and the gap stays within Theorem 3's O(1/eps)
// envelope (with generous constant) at every eps.
func TestT3GapWithinTheorem3Envelope(t *testing.T) {
	e, _ := ByID("T3")
	out, err := e.Run(Config{Seed: 4, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	for _, row := range tb.Rows {
		eps := cellFloat(t, row[0])
		ratio := cellFloat(t, row[4])
		if ratio < 1-1e-9 {
			t.Fatalf("integral flow below fractional at eps=%v (ratio %v)", eps, ratio)
		}
		if ratio > 1+4/eps {
			t.Fatalf("integral/fractional gap %v exceeds O(1/eps) envelope at eps=%v", ratio, eps)
		}
	}
}

// B3: flow must be non-increasing in speed.
func TestB3Monotone(t *testing.T) {
	e, _ := ByID("B3")
	out, err := e.Run(Config{Seed: 5, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	prev := cellFloat(t, tb.Rows[0][1])
	for _, row := range tb.Rows[1:] {
		cur := cellFloat(t, row[1])
		if cur > prev*1.02 { // small tolerance: different speeds shift assignment decisions
			t.Fatalf("identical flow increased with speed: %v -> %v", prev, cur)
		}
		prev = cur
	}
}

// B6: packetized must not be slower than store-and-forward on a line.
func TestB6PacketizedWins(t *testing.T) {
	e, _ := ByID("B6")
	out, err := e.Run(Config{Seed: 6, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	for _, row := range tb.Rows {
		ratio := cellFloat(t, row[3])
		if ratio < 1-1e-9 {
			t.Fatalf("store-and-forward beat packetized on %s (ratio %v)", row[0], ratio)
		}
	}
}

// RunAll must produce the same outputs as sequential execution, in
// input order, regardless of parallelism.
func TestRunAllMatchesSequential(t *testing.T) {
	ids := []string{"F1", "F2", "LP1", "T3"}
	var exps []*Experiment
	for _, id := range ids {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		exps = append(exps, e)
	}
	cfg := Config{Seed: 9, Scale: 0.05}
	par := RunAll(exps, cfg, 4)
	seq := RunAll(exps, cfg, 1)
	if len(par) != len(ids) {
		t.Fatalf("results = %d", len(par))
	}
	for i := range par {
		if par[i].Err != nil || seq[i].Err != nil {
			t.Fatalf("errors: %v / %v", par[i].Err, seq[i].Err)
		}
		if par[i].Exp.ID != ids[i] {
			t.Fatalf("order changed: %s at %d", par[i].Exp.ID, i)
		}
		a, b := par[i].Output.Tables, seq[i].Output.Tables
		if len(a) != len(b) {
			t.Fatalf("%s: table counts differ", ids[i])
		}
		for ti := range a {
			if a[ti].Text() != b[ti].Text() {
				t.Fatalf("%s: table %d differs between parallel and sequential", ids[i], ti)
			}
		}
	}
}

// runSafe must convert panics into errors.
func TestRunSafeRecovers(t *testing.T) {
	e := &Experiment{ID: "PANIC", Title: "panics", Paper: "-", Run: func(Config) (*Output, error) {
		panic("boom")
	}}
	res := RunAll([]*Experiment{e}, Config{}, 1)
	if res[0].Err == nil {
		t.Fatal("panic not converted to error")
	}
}

// D1 must certify: zero dual violations at every eps.
func TestD1Feasible(t *testing.T) {
	e, _ := ByID("D1")
	out, err := e.Run(Config{Seed: 8, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	for _, row := range tb.Rows {
		if cellFloat(t, row[2]) != 0 || cellFloat(t, row[3]) != 0 {
			t.Fatalf("dual violations in row %v", row)
		}
		if cellFloat(t, row[7]) <= 0 {
			t.Fatalf("no certified bound in row %v", row)
		}
	}
}

// L3 must report zero violations in both columns.
func TestL3ZeroViolations(t *testing.T) {
	e, _ := ByID("L3")
	out, err := e.Run(Config{Seed: 8, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	for _, row := range tb.Rows {
		if cellFloat(t, row[2]) != 0 {
			t.Fatalf("Φ dynamics violations in row %v", row)
		}
		if cellFloat(t, row[5]) != 0 {
			t.Fatalf("Φ bound violations in row %v", row)
		}
	}
}

// X3: WSJF must beat SJF on the weighted objective.
func TestX3WSJFWins(t *testing.T) {
	e, _ := ByID("X3")
	out, err := e.Run(Config{Seed: 8, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	var wsjf, sjf float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "WSJF":
			wsjf = cellFloat(t, row[1])
		case "SJF":
			sjf = cellFloat(t, row[1])
		}
	}
	if wsjf <= 0 || sjf <= 0 || wsjf >= sjf {
		t.Fatalf("WSJF weighted flow %v did not beat SJF %v", wsjf, sjf)
	}
}

// The scorecard must be all-PASS.
func TestA0AllPass(t *testing.T) {
	e, _ := ByID("A0")
	out, err := e.Run(Config{Seed: 2, Scale: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	tb := out.Tables[0]
	if len(tb.Rows) < 8 {
		t.Fatalf("scorecard has %d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		if row[len(row)-1] != "PASS" {
			t.Fatalf("scorecard row failed: %v", row)
		}
	}
}
