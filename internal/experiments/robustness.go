package experiments

import (
	"treesched/internal/scenario"
	"treesched/internal/table"
)

func init() {
	register(&Experiment{
		ID:    "R1",
		Title: "Graceful degradation under deterministic fault injection",
		Paper: "(robustness extension; speed profiles from Theorems 1-2)",
		Run:   runR1,
	})
}

// runR1 measures how total flow degrades as fault intensity grows, at
// the speed levels the theorems care about (1, 1+eps, 2+eps). Every
// cell runs with Instrument+RecordSlices, so Drain re-audits the
// recorded schedule against the fault-adjusted speed budgets — a cell
// only reaches its table row if the conformance auditor passed.
func runR1(cfg Config) (*Output, error) {
	out := &Output{}
	n := cfg.scaled(800)
	const eps = 0.5

	// Transient outages, hold recovery: jobs stall where they are and
	// the stall is charged to flow time.
	policies := []string{"sjf", "fifo", "srpt"}
	speeds := []float64{1, 1 + eps, 2 + eps}
	intensities := []int{0, 6, 24}
	type cell struct {
		policy    string
		speed     float64
		outages   int
		flow      float64
		completed int
	}
	idx := func(pi, si, ii int) int { return (pi*len(speeds)+si)*len(intensities) + ii }
	cells, err := Sweep(cfg, len(policies)*len(speeds)*len(intensities), func(i int) (cell, error) {
		ii := i % len(intensities)
		si := (i / len(intensities)) % len(speeds)
		pi := i / (len(intensities) * len(speeds))
		sc := &scenario.Scenario{
			Topology: scenario.NewSpec("fattree", 2, 2, 2),
			Workload: scenario.Workload{N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: eps, Load: 0.8},
			Policy:   policies[pi],
			Eps:      eps,
			Seed:     cfg.seed(7000 + uint64(si)*10 + uint64(ii)),
			Speed:    scenario.Speed{Uniform: speeds[si]},
			Engine:   scenario.Engine{Instrument: true, RecordSlices: true},
		}
		if k := intensities[ii]; k > 0 {
			sc.Faults = &scenario.FaultSpec{
				Plan:     scenario.NewSpec("outages", float64(k), 50),
				Recovery: "hold",
			}
		}
		res, err := scenario.Run(sc)
		if err != nil {
			return cell{}, err
		}
		return cell{policies[pi], speeds[si], intensities[ii], res.Stats.TotalFlow, res.Stats.Completed}, nil
	})
	if err != nil {
		return nil, err
	}
	tb := table.New("R1 — total flow vs outage intensity (hold recovery, audited)",
		"policy", "speed", "outages", "completed", "flow", "vs fault-free")
	for pi := range policies {
		for si := range speeds {
			base := cells[idx(pi, si, 0)].flow
			for ii := range intensities {
				c := cells[idx(pi, si, ii)]
				tb.AddRow(c.policy, c.speed, c.outages, c.completed, c.flow, c.flow/base)
			}
		}
	}
	tb.AddNote("each outage silences one non-root node for 50 time units; extra speed absorbs faults much more gracefully at 2+eps than at 1, and SJF keeps its lead over FIFO as intensity grows")
	out.add(tb)

	// Permanent leaf loss, redispatch recovery: assigned work restarts
	// on a surviving leaf, recorded as migrations and audited as such.
	losses := []int{1, 2, 4}
	type lossCell struct {
		speed      float64
		lost       int
		flow       float64
		completed  int
		migrations int
	}
	lcells, err := Sweep(cfg, len(speeds)*len(losses), func(i int) (lossCell, error) {
		li := i % len(losses)
		si := i / len(losses)
		sc := &scenario.Scenario{
			Topology: scenario.NewSpec("fattree", 2, 2, 2),
			Workload: scenario.Workload{N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: eps, Load: 0.8},
			Eps:      eps,
			Seed:     cfg.seed(7100 + uint64(si)*10 + uint64(li)),
			Speed:    scenario.Speed{Uniform: speeds[si]},
			Faults: &scenario.FaultSpec{
				Plan:     scenario.NewSpec("leafloss", float64(losses[li]), 0.3),
				Recovery: "redispatch",
			},
			Engine: scenario.Engine{Instrument: true, RecordSlices: true},
		}
		in, err := sc.Build()
		if err != nil {
			return lossCell{}, err
		}
		res, err := in.Run()
		if err != nil {
			return lossCell{}, err
		}
		return lossCell{speeds[si], losses[li], res.Stats.TotalFlow, res.Stats.Completed,
			len(res.Sim.Migrations())}, nil
	})
	if err != nil {
		return nil, err
	}
	tb2 := table.New("R1 — permanent leaf loss with redispatch (SJF, audited)",
		"speed", "leaves lost", "completed", "flow", "migrations")
	for _, c := range lcells {
		tb2.AddRow(c.speed, c.lost, c.completed, c.flow, c.migrations)
	}
	tb2.AddNote("losing leaves at t = 0.3*span restarts their assigned jobs on survivors (work done so far is lost); every job still completes, and the auditor verifies each recorded migration")
	out.add(tb2)
	return out, nil
}
