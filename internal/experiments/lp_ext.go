package experiments

import (
	"math"

	"treesched/internal/core"
	"treesched/internal/lowerbound"
	"treesched/internal/lp"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func init() {
	register(&Experiment{ID: "LP1", Title: "LP relaxation lower bound vs combinatorial bounds vs achieved flow", Paper: "LP-Primal (Section 2)", Run: runLP1})
	register(&Experiment{ID: "X1", Title: "Arbitrary-origin arrivals extension", Paper: "Conclusion (open problem)", Run: runX1})
	register(&Experiment{ID: "X2", Title: "Alternative objectives: max flow and l2 norm", Paper: "Conclusion (open problem)", Run: runX2})
}

// runLP1 solves the paper's time-indexed LP exactly on tiny instances
// and compares the resulting lower bound with the combinatorial bounds
// and the best schedule the portfolio finds.
func runLP1(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("LP1 — lower bound quality on tiny instances",
		"instance", "jobs", "LP*", "LP*/3 bound", "combinatorial LB", "OPT<= (exhaustive)", "pivots")
	instances := []struct {
		name  string
		t     *tree.Tree
		trace *workload.Trace
	}{
		{
			name: "star(2), 3 jobs",
			t:    tree.Star(2),
			trace: &workload.Trace{Jobs: []workload.Job{
				{ID: 0, Release: 0, Size: 2},
				{ID: 1, Release: 1, Size: 1},
				{ID: 2, Release: 2, Size: 2},
			}},
		},
		{
			name: "broomstick(1,2,2), 4 jobs",
			t:    tree.BroomstickTree(1, 2, 2),
			trace: &workload.Trace{Jobs: []workload.Job{
				{ID: 0, Release: 0, Size: 1},
				{ID: 1, Release: 0.5, Size: 2},
				{ID: 2, Release: 1, Size: 1},
				{ID: 3, Release: 3, Size: 2},
			}},
		},
		{
			name: "line(2), 3 jobs",
			t:    tree.Line(2),
			trace: &workload.Trace{Jobs: []workload.Job{
				{ID: 0, Release: 0, Size: 2},
				{ID: 1, Release: 1, Size: 2},
				{ID: 2, Release: 4, Size: 1},
			}},
		},
		{
			name: "star(2) unrelated, 3 jobs",
			t:    tree.Star(2),
			trace: &workload.Trace{Jobs: []workload.Job{
				{ID: 0, Release: 0, Size: 2, LeafSizes: []float64{1, 4}},
				{ID: 1, Release: 1, Size: 1, LeafSizes: []float64{3, 1}},
				{ID: 2, Release: 2, Size: 2, LeafSizes: []float64{2, 2}},
			}},
		},
	}
	for _, inst := range instances {
		in, err := lp.Build(inst.t, inst.trace, 0)
		if err != nil {
			return nil, err
		}
		sol, err := in.Solve()
		if err != nil {
			return nil, err
		}
		comb := lowerbound.Best(inst.t, inst.trace)
		// Exhaustive assignment search: an upper bound on OPT, so the
		// truth is bracketed between the bounds and this value.
		best, err := lowerbound.BestAssignmentUpperBound(inst.t, inst.trace, 200000)
		if err != nil {
			return nil, err
		}
		tb.AddRow(inst.name, len(inst.trace.Jobs), sol.Objective, lp.OPTLowerBound(sol.Objective), comb, best, sol.Iterations)
		if lp.OPTLowerBound(sol.Objective) > best+1e-6 || comb > best+1e-6 {
			tb.AddNote("BOUND VIOLATION on %s — a lower bound exceeded an achieved schedule", inst.name)
		}
	}
	tb.AddNote("LP* is the optimum of the paper's time-indexed relaxation with unit slots; OPT<= exhaustively enumerates every leaf assignment under three preemptive policies, so the true OPT lies between the strongest lower bound and that column — the bracket closes exactly on three of the four instances (the line instance has a 12 percent gap)")
	out.add(tb)
	return out, nil
}

// runX1 exercises the arbitrary-origin extension the conclusion poses
// as an open problem: jobs released at interior routers only need the
// sub-path below their origin.
func runX1(cfg Config) (*Output, error) {
	out := &Output{}
	base := tree.FatTree(2, 2, 2)
	n := cfg.scaled(1200)
	tb := table.New("X1 — arbitrary-origin arrivals (greedy+SJF)",
		"origin mix", "avg flow", "max flow")
	for _, frac := range []float64{0, 0.3, 0.7} {
		r := cfg.rng(1600 + uint64(frac*10))
		trace := poisson(r, n, classSizes(0.5), 0.9, float64(len(base.RootAdjacent())))
		// Re-home a fraction of jobs to random routers.
		routers := []tree.NodeID{}
		for id := tree.NodeID(1); int(id) < base.NumNodes(); id++ {
			if !base.IsLeaf(id) {
				routers = append(routers, id)
			}
		}
		for i := range trace.Jobs {
			if r.Bool(frac) {
				trace.Jobs[i].Origin = int32(routers[r.Intn(len(routers))])
			}
		}
		res, err := sim.Run(base, trace, core.NewGreedyIdentical(0.5), sim.Options{})
		if err != nil {
			return nil, err
		}
		tb.AddRow(cell1(frac), res.AvgFlow(), res.Stats.MaxFlow)
	}
	tb.AddNote("jobs with interior origins skip upstream hops, so flow drops as the interior fraction rises; the open problem is whether the paper's guarantees survive this generalization")
	out.add(tb)
	return out, nil
}

func cell1(frac float64) string {
	if frac == 0 {
		return "all at root"
	}
	return table.Cell(frac*100) + "% interior"
}

// runX2 reports the alternative objectives the conclusion raises.
func runX2(cfg Config) (*Output, error) {
	out := &Output{}
	base := tree.FatTree(2, 2, 2)
	n := cfg.scaled(2000)
	tb := table.New("X2 — alternative objectives (load 0.9)",
		"assigner/policy", "total flow", "l2 norm", "max flow")
	trace := poisson(cfg.rng(1700), n, classSizes(0.5), 0.9, float64(len(base.RootAdjacent())))
	configs := []struct {
		name string
		asg  sim.Assigner
		pol  sim.Policy
	}{
		{"greedy + SJF", core.NewGreedyIdentical(0.5), sim.SJF{}},
		{"greedy + FIFO", core.NewGreedyIdentical(0.5), sim.FIFO{}},
		{"LeastVolume + SJF", sched.LeastVolume{}, sim.SJF{}},
	}
	for _, c := range configs {
		res, err := sim.Run(base, trace, c.asg, sim.Options{Policy: c.pol})
		if err != nil {
			return nil, err
		}
		tb.AddRow(c.name, res.Stats.TotalFlow, res.LkNormFlow(2), res.LkNormFlow(math.Inf(1)))
	}
	tb.AddNote("SJF optimizes the average at the tail's expense; FIFO flips the trade — exactly why max-flow on trees is posed as a separate open problem (and shown hard by Antoniadis et al. for lines)")
	out.add(tb)
	return out, nil
}
