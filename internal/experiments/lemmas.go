package experiments

import (
	"treesched/internal/core"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "L1",
		Title: "Interior waiting bound (6/eps^2)*p_j*d_v",
		Paper: "Lemma 1",
		Run:   runL1,
	})
	register(&Experiment{
		ID:    "L2",
		Title: "Higher-priority available volume bound (2/eps)*p_j",
		Paper: "Lemma 2",
		Run:   runL2,
	})
	register(&Experiment{
		ID:    "L8",
		Title: "Per-job flow domination of T over the broomstick T'",
		Paper: "Lemma 8 (Section 3.7)",
		Run:   runL8,
	})
}

// lemmaSpeeds applies the Lemma 1-3 speed assumptions: speed 1 on
// root-adjacent nodes, (1+eps) everywhere else.
func lemmaSpeeds(t *tree.Tree, eps float64) *tree.Tree {
	return t.WithSpeeds(1, 1+eps, 1+eps)
}

// runL1 measures, per eps, how close the observed interior waiting
// time comes to the Lemma 1 bound; the lemma predicts max ratio <= 1.
func runL1(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("L1 — interior waiting vs (6/eps^2)*p_j*d_v",
		"eps", "jobs", "max ratio", "mean ratio", "violations")
	n := cfg.scaled(1500)
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		t := lemmaSpeeds(tree.FatTree(2, 3, 2), eps)
		trace := poisson(cfg.rng(500+uint64(eps*100)), n, classSizes(eps), 1.1, 2)
		res, err := sim.Run(t, trace, core.NewGreedyIdentical(eps), sim.Options{Instrument: true})
		if err != nil {
			return nil, err
		}
		rep := core.CheckLemma1(res, eps, false)
		tb.AddRow(eps, rep.Jobs, rep.MaxRatio, rep.MeanRatio, rep.Violations)
	}
	tb.AddNote("run deliberately overloaded (load 1.1): Lemma 1 is a structural property of SJF and must hold regardless; max ratio <= 1 means the bound was never violated")
	out.add(tb)
	return out, nil
}

// runL2 checks the queue-volume invariant at event granularity.
func runL2(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("L2 — available higher-priority volume vs (2/eps)*p_j",
		"eps", "setting", "checks", "max ratio", "violations")
	n := cfg.scaled(800)
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		t := lemmaSpeeds(tree.FatTree(2, 3, 2), eps)
		trace := poisson(cfg.rng(600+uint64(eps*100)), n, classSizes(eps), 1.2, 2)
		chk := &core.Lemma2Checker{Eps: eps, SampleStride: 5}
		if _, err := sim.Run(t, trace, core.NewGreedyIdentical(eps), sim.Options{Instrument: true, Observer: chk.Observe}); err != nil {
			return nil, err
		}
		tb.AddRow(eps, "identical", chk.Checks, chk.MaxRatio, chk.Violations)
	}
	// Unrelated variant.
	eps := 0.5
	t := lemmaSpeeds(tree.FatTree(2, 2, 2), eps)
	r := cfg.rng(650)
	trace := poisson(r, n, classSizes(eps), 1.0, 2)
	if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{Leaves: len(t.Leaves()), Lo: 0.5, Hi: 2}); err != nil {
		return nil, err
	}
	workload.RoundTraceToClasses(trace, eps)
	chk := &core.Lemma2Checker{Eps: eps, Unrelated: true, SampleStride: 5}
	if _, err := sim.Run(t, trace, core.NewGreedyUnrelated(eps), sim.Options{Instrument: true, Observer: chk.Observe}); err != nil {
		return nil, err
	}
	tb.AddRow(eps, "unrelated", chk.Checks, chk.MaxRatio, chk.Violations)
	tb.AddNote("checked at every 5th engine event on overloaded runs; zero violations validates the volume bound that drives the whole analysis")
	out.add(tb)
	return out, nil
}

// runL8 reports the domination check in both settings, including the
// reproduction finding that per-job domination fails (rarely) for
// unrelated endpoints while aggregate domination persists.
func runL8(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("L8 — flow(T) vs flow(T') under the shadow algorithm",
		"setting", "instances", "jobs", "per-job violations", "worst per-job ratio", "aggregate violations")
	witness := table.New("L8 — violation witnesses (unrelated setting)",
		"instance", "job", "leaf depth d_v", "flow(T)", "flow(T')", "ratio")
	n := cfg.scaled(150)
	for _, unrel := range []bool{false, true} {
		const instances = 12
		totJobs, totViol, aggViol := 0, 0, 0
		worst := 0.0
		for k := 0; k < instances; k++ {
			r := cfg.rng(700 + uint64(k) + 50*boolU(unrel))
			base := tree.Random(r, tree.RandomConfig{Branches: 1 + r.Intn(3), MaxDepth: 2 + r.Intn(3), MaxChildren: 2, LeafProb: 0.5})
			trace := poisson(r, n, classSizes(0.5), 0.6+r.Float64(), float64(len(base.RootAdjacent())))
			if unrel {
				if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{Leaves: len(base.Leaves()), Lo: 0.5, Hi: 2}); err != nil {
					return nil, err
				}
			}
			sh, err := core.NewShadow(base, core.ShadowConfig{Eps: 0.5, Unrelated: unrel})
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(base, trace, sh, sim.Options{})
			if err != nil {
				return nil, err
			}
			if err := sh.Finish(); err != nil {
				return nil, err
			}
			rep := core.CheckLemma8(res, sh)
			totJobs += rep.Jobs
			totViol += rep.Violations
			if rep.MaxRatio > worst {
				worst = rep.MaxRatio
			}
			if rep.TotalFlowT > rep.TotalFlowT2+1e-6 {
				aggViol++
			}
			if unrel && len(witness.Rows) < 8 {
				inner := make(map[int]float64)
				for _, js := range sh.InnerTasks() {
					inner[js.ID] = js.Completion
				}
				for i := range res.Jobs {
					m := &res.Jobs[i]
					fT := m.Flow
					fT2 := inner[m.ID] - m.Release
					if fT > fT2+1e-6 && len(witness.Rows) < 8 {
						witness.AddRow(k, m.ID, base.Depth(m.Leaf), fT, fT2, fT/fT2)
					}
				}
			}
		}
		setting := "identical"
		if unrel {
			setting = "unrelated"
		}
		tb.AddRow(setting, instances, totJobs, totViol, worst, aggViol)
	}
	tb.AddNote("REPRODUCTION FINDING: per-job domination (Lemma 8) holds exactly in the identical setting but fails for a small fraction of jobs in the unrelated setting — the broomstick's +2 depth can delay a high-leaf-priority job past the moment a low-priority job slips through its T' leaf. Aggregate (total-flow) domination held in every instance, so the theorem-level conclusions are unaffected.")
	out.add(tb)
	if len(witness.Rows) > 0 {
		witness.AddNote("concrete counterexamples to the per-job claim, as witnessed by the simulator; shallow leaves dominate because the +2 relative detour is largest there")
		out.add(witness)
	}
	return out, nil
}

func boolU(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
