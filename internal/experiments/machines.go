package experiments

import (
	"treesched/internal/scenario"
	"treesched/internal/table"
	"treesched/internal/tree"
)

func init() {
	register(&Experiment{
		ID:    "M1",
		Title: "Machine model spectrum: identical vs related vs unrelated endpoints",
		Paper: "Introduction (machine models)",
		Run:   runM1,
	})
}

// runM1 walks the machine-model ladder the paper's introduction
// climbs: identical machines, related machines (fixed speeds), and
// fully unrelated machines — and asks how much each assignment rule's
// machine-awareness matters at each level.
func runM1(cfg Config) (*Output, error) {
	out := &Output{}
	base := tree.FatTree(2, 1, 4) // 2 racks x 4 machines
	n := cfg.scaled(2000)

	// Related machines: a mix of fast and slow boxes per rack.
	speeds := make([]float64, len(base.Leaves()))
	for i := range speeds {
		switch i % 4 {
		case 0:
			speeds[i] = 4
		case 1:
			speeds[i] = 2
		default:
			speeds[i] = 1
		}
	}

	tb := table.New("M1 — avg flow by machine model and assignment rule (load 0.85)",
		"model", "greedy identical", "greedy unrelated", "least volume", "round robin")
	models := []string{"identical", "related", "unrelated"}
	// Registry names; each cell builds its own assigner through the
	// scenario layer, so the stateful RoundRobin is never shared
	// between concurrently running cells.
	assignerNames := []string{"greedy-identical", "greedy-unrelated", "leastvolume", "roundrobin"}
	assigners := len(assignerNames)
	vals, err := Sweep(cfg, len(models)*assigners, func(i int) (float64, error) {
		mi, ai := i/assigners, i%assigners
		sc := &scenario.Scenario{
			Topology: scenario.NewSpec("fattree", 2, 1, 4),
			Workload: scenario.Workload{N: n, Size: scenario.NewSpec("uniform", 1, 16), ClassEps: 0.5, Load: 0.85},
			Assigner: assignerNames[ai],
			Seed:     cfg.seed(2500 + uint64(mi)),
		}
		switch models[mi] {
		case "related":
			sc.Workload.RelatedSpeeds = speeds
		case "unrelated":
			sc.Workload.Unrelated = &scenario.Unrelated{Lo: 0.25, Hi: 4, PInfeasible: 0.25, Penalty: 8}
		}
		res, err := scenario.Run(sc)
		if err != nil {
			return 0, err
		}
		return res.AvgFlow(), nil
	})
	if err != nil {
		return nil, err
	}
	for mi, model := range models {
		row := []interface{}{model}
		for ai := 0; ai < assigners; ai++ {
			row = append(row, vals[mi*assigners+ai])
		}
		tb.AddRow(row...)
	}
	tb.AddNote("on identical machines all sensible rules tie; as machines become related and then unrelated, the leaf-aware rule (greedy unrelated, Theorem 2's algorithm) pulls ahead of leaf-blind assignment — the ladder of generality the introduction motivates")
	out.add(tb)
	return out, nil
}
