package experiments

import (
	"treesched/internal/core"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "M1",
		Title: "Machine model spectrum: identical vs related vs unrelated endpoints",
		Paper: "Introduction (machine models)",
		Run:   runM1,
	})
}

// runM1 walks the machine-model ladder the paper's introduction
// climbs: identical machines, related machines (fixed speeds), and
// fully unrelated machines — and asks how much each assignment rule's
// machine-awareness matters at each level.
func runM1(cfg Config) (*Output, error) {
	out := &Output{}
	base := tree.FatTree(2, 1, 4) // 2 racks x 4 machines
	n := cfg.scaled(2000)
	cap := float64(len(base.RootAdjacent()))

	// Related machines: a mix of fast and slow boxes per rack.
	speeds := make([]float64, len(base.Leaves()))
	for i := range speeds {
		switch i % 4 {
		case 0:
			speeds[i] = 4
		case 1:
			speeds[i] = 2
		default:
			speeds[i] = 1
		}
	}

	mkTrace := func(model string, salt uint64) (*workload.Trace, error) {
		r := cfg.rng(2500 + salt)
		tr, err := workload.Poisson(r, workload.GenConfig{N: n, Size: classSizes(0.5), Load: 0.85, Capacity: cap})
		if err != nil {
			return nil, err
		}
		switch model {
		case "identical":
		case "related":
			if err := workload.MakeRelated(tr, speeds); err != nil {
				return nil, err
			}
		case "unrelated":
			if err := workload.MakeUnrelated(r, tr, workload.UnrelatedConfig{
				Leaves: len(base.Leaves()), Lo: 0.25, Hi: 4, PInfeasible: 0.25, Penalty: 8,
			}); err != nil {
				return nil, err
			}
		}
		return tr, nil
	}

	tb := table.New("M1 — avg flow by machine model and assignment rule (load 0.85)",
		"model", "greedy identical", "greedy unrelated", "least volume", "round robin")
	models := []string{"identical", "related", "unrelated"}
	// Each cell constructs its own assigner: RoundRobin is stateful and
	// must not be shared between concurrently running cells.
	mkAssigner := func(ai int) sim.Assigner {
		switch ai {
		case 0:
			return core.NewGreedyIdentical(0.5)
		case 1:
			return core.NewGreedyUnrelated(0.5)
		case 2:
			return sched.LeastVolume{}
		default:
			return &sched.RoundRobin{}
		}
	}
	const assigners = 4
	vals, err := Sweep(cfg, len(models)*assigners, func(i int) (float64, error) {
		mi, ai := i/assigners, i%assigners
		tr, err := mkTrace(models[mi], uint64(mi))
		if err != nil {
			return 0, err
		}
		res, err := sim.Run(base, tr, mkAssigner(ai), sim.Options{})
		if err != nil {
			return 0, err
		}
		return res.AvgFlow(), nil
	})
	if err != nil {
		return nil, err
	}
	for mi, model := range models {
		row := []interface{}{model}
		for ai := 0; ai < assigners; ai++ {
			row = append(row, vals[mi*assigners+ai])
		}
		tb.AddRow(row...)
	}
	tb.AddNote("on identical machines all sensible rules tie; as machines become related and then unrelated, the leaf-aware rule (greedy unrelated, Theorem 2's algorithm) pulls ahead of leaf-blind assignment — the ladder of generality the introduction motivates")
	out.add(tb)
	return out, nil
}
