package experiments

import (
	"treesched/internal/core"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "M1",
		Title: "Machine model spectrum: identical vs related vs unrelated endpoints",
		Paper: "Introduction (machine models)",
		Run:   runM1,
	})
}

// runM1 walks the machine-model ladder the paper's introduction
// climbs: identical machines, related machines (fixed speeds), and
// fully unrelated machines — and asks how much each assignment rule's
// machine-awareness matters at each level.
func runM1(cfg Config) (*Output, error) {
	out := &Output{}
	base := tree.FatTree(2, 1, 4) // 2 racks x 4 machines
	n := cfg.scaled(2000)
	cap := float64(len(base.RootAdjacent()))

	// Related machines: a mix of fast and slow boxes per rack.
	speeds := make([]float64, len(base.Leaves()))
	for i := range speeds {
		switch i % 4 {
		case 0:
			speeds[i] = 4
		case 1:
			speeds[i] = 2
		default:
			speeds[i] = 1
		}
	}

	mkTrace := func(model string, salt uint64) (*workload.Trace, error) {
		r := cfg.rng(2500 + salt)
		tr, err := workload.Poisson(r, workload.GenConfig{N: n, Size: classSizes(0.5), Load: 0.85, Capacity: cap})
		if err != nil {
			return nil, err
		}
		switch model {
		case "identical":
		case "related":
			if err := workload.MakeRelated(tr, speeds); err != nil {
				return nil, err
			}
		case "unrelated":
			if err := workload.MakeUnrelated(r, tr, workload.UnrelatedConfig{
				Leaves: len(base.Leaves()), Lo: 0.25, Hi: 4, PInfeasible: 0.25, Penalty: 8,
			}); err != nil {
				return nil, err
			}
		}
		return tr, nil
	}

	tb := table.New("M1 — avg flow by machine model and assignment rule (load 0.85)",
		"model", "greedy identical", "greedy unrelated", "least volume", "round robin")
	for mi, model := range []string{"identical", "related", "unrelated"} {
		row := []interface{}{model}
		for _, asg := range []sim.Assigner{
			core.NewGreedyIdentical(0.5),
			core.NewGreedyUnrelated(0.5),
			sched.LeastVolume{},
			&sched.RoundRobin{},
		} {
			tr, err := mkTrace(model, uint64(mi))
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(base, tr, asg, sim.Options{})
			if err != nil {
				return nil, err
			}
			row = append(row, res.AvgFlow())
		}
		tb.AddRow(row...)
	}
	tb.AddNote("on identical machines all sensible rules tie; as machines become related and then unrelated, the leaf-aware rule (greedy unrelated, Theorem 2's algorithm) pulls ahead of leaf-blind assignment — the ladder of generality the introduction motivates")
	out.add(tb)
	return out, nil
}
