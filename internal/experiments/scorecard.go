package experiments

import (
	"fmt"

	"treesched/internal/core"
	"treesched/internal/lowerbound"
	"treesched/internal/lp"
	"treesched/internal/sim"
	"treesched/internal/table"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func init() {
	register(&Experiment{
		ID:    "A0",
		Title: "Validation scorecard: every machine-checked claim at a glance",
		Paper: "whole paper",
		Run:   runA0,
	})
}

// runA0 runs a compact version of every proof-as-check in one pass and
// reports PASS/FAIL with the decisive number. It fronts EXPERIMENTS.md
// (IDs sort alphabetically) so a reader sees the reproduction status
// before any individual study.
func runA0(cfg Config) (*Output, error) {
	out := &Output{}
	tb := table.New("A0 — reproduction scorecard",
		"claim", "check", "decisive number", "status")
	n := cfg.scaled(500)
	eps := 0.5
	pass := func(ok bool) string {
		if ok {
			return "PASS"
		}
		return "FAIL"
	}

	// Lemma 1: interior waiting bound.
	{
		t := tree.FatTree(2, 3, 2).WithSpeeds(1, 1+eps, 1+eps)
		trace := poisson(cfg.rng(3000), n, classSizes(eps), 1.1, 2)
		res, err := sim.Run(t, trace, core.NewGreedyIdentical(eps), sim.Options{Instrument: true})
		if err != nil {
			return nil, err
		}
		rep := core.CheckLemma1(res, eps, false)
		tb.AddRow("Lemma 1 (interior wait <= (6/eps^2) p_j d_v)",
			fmt.Sprintf("%d jobs, overload", rep.Jobs),
			fmt.Sprintf("max ratio %.4f", rep.MaxRatio),
			pass(rep.Violations == 0))
	}

	// Lemma 2: available-volume bound, event granular.
	{
		t := tree.FatTree(2, 3, 2).WithSpeeds(1, 1+eps, 1+eps)
		trace := poisson(cfg.rng(3001), n, classSizes(eps), 1.2, 2)
		chk := &core.Lemma2Checker{Eps: eps, SampleStride: 4}
		if _, err := sim.Run(t, trace, core.NewGreedyIdentical(eps), sim.Options{Instrument: true, Observer: chk.Observe}); err != nil {
			return nil, err
		}
		tb.AddRow("Lemma 2 (avail volume <= (2/eps) p_j)",
			fmt.Sprintf("%d event checks", chk.Checks),
			fmt.Sprintf("max ratio %.4f", chk.MaxRatio),
			pass(chk.Violations == 0))
	}

	// Lemma 3: potential dynamics.
	{
		t := tree.FatTree(2, 3, 1).WithSpeeds(1, 1+eps, 1+eps)
		trace := poisson(cfg.rng(3002), n, classSizes(eps), 1.0, 2)
		chk := &core.PhiDecreaseChecker{Eps: eps, Speed: 1 + eps}
		if _, err := sim.Run(t, trace, core.NewGreedyIdentical(eps), sim.Options{Instrument: true, Observer: chk.Observe}); err != nil {
			return nil, err
		}
		tb.AddRow("Lemma 3 (Phi decreases at unit rate)",
			fmt.Sprintf("%d interval checks", chk.Checks),
			fmt.Sprintf("max excess %.2g", chk.MaxExcess),
			pass(chk.Violations == 0))
	}

	// Lemma 8: per-job domination, identical setting.
	{
		r := cfg.rng(3003)
		base := tree.Random(r, tree.RandomConfig{Branches: 2, MaxDepth: 4, MaxChildren: 2, LeafProb: 0.45})
		trace := poisson(r, n, classSizes(eps), 0.9, float64(len(base.RootAdjacent())))
		sh, err := core.NewShadow(base, core.ShadowConfig{Eps: eps})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(base, trace, sh, sim.Options{})
		if err != nil {
			return nil, err
		}
		if err := sh.Finish(); err != nil {
			return nil, err
		}
		rep := core.CheckLemma8(res, sh)
		tb.AddRow("Lemma 8 (flow(T) <= flow(T'), identical)",
			fmt.Sprintf("%d jobs, random tree", rep.Jobs),
			fmt.Sprintf("worst per-job ratio %.4f", rep.MaxRatio),
			pass(rep.Violations == 0))
	}

	// Lemmas 5-7: dual feasibility (Theorem 5's analysis).
	var dualObj float64
	{
		t := tree.BroomstickTree(2, 3, 2)
		trace := poisson(cfg.rng(3004), n, classSizes(eps), 0.9, 2)
		rep, err := core.RunDualFit(t, trace, eps)
		if err != nil {
			return nil, err
		}
		dualObj = rep.DualObjective
		tb.AddRow("Lemmas 5-7 (LP-Dual feasibility)",
			fmt.Sprintf("%d constraint checks", rep.C4Checks+rep.C5Checks),
			fmt.Sprintf("certified OPT >= %.4g", rep.CertifiedOPTLowerBound),
			pass(rep.C4Violations == 0 && rep.C5Violations == 0 && rep.CertifiedOPTLowerBound > 0))
	}

	// Weak duality: dual objective below the simplex LP optimum.
	{
		t := tree.BroomstickTree(1, 2, 2)
		trace := &workload.Trace{Jobs: []workload.Job{
			{ID: 0, Release: 0, Size: 1}, {ID: 1, Release: 0.5, Size: 2},
			{ID: 2, Release: 1, Size: 1}, {ID: 3, Release: 3, Size: 2},
		}}
		rep, err := core.RunDualFit(t, trace, eps)
		if err != nil {
			return nil, err
		}
		in, err := lp.Build(t, trace, 0)
		if err != nil {
			return nil, err
		}
		sol, err := in.Solve()
		if err != nil {
			return nil, err
		}
		tb.AddRow("Weak duality (dual <= LP*, independent solvers)",
			"tiny instance, exact simplex",
			fmt.Sprintf("dual %.4g <= LP* %.4g", rep.DualObjective, sol.Objective),
			pass(rep.DualObjective <= sol.Objective+1e-6))
	}

	// Lower-bound validity: every bound below an achieved schedule.
	{
		t := tree.FatTree(2, 2, 2)
		trace := poisson(cfg.rng(3005), n, classSizes(eps), 0.9, 2)
		res, err := sim.Run(t, trace, core.NewGreedyIdentical(eps), sim.Options{})
		if err != nil {
			return nil, err
		}
		lb := lowerbound.Best(t, trace)
		tb.AddRow("Lower-bound validity (LB <= any schedule at speed 1)",
			"greedy at speed 1",
			fmt.Sprintf("LB %.4g vs flow %.4g", lb, res.Stats.TotalFlow),
			pass(lb <= res.Stats.TotalFlow+1e-6))
	}

	// Engine determinism + queue-implementation agreement.
	{
		t := tree.FatTree(2, 2, 2)
		trace := poisson(cfg.rng(3006), n, classSizes(eps), 1.0, 2)
		a, err := sim.Run(t, trace, core.NewGreedyIdentical(eps), sim.Options{})
		if err != nil {
			return nil, err
		}
		b, err := sim.Run(t, trace, core.NewGreedyIdentical(eps), sim.Options{UseScanQueue: true})
		if err != nil {
			return nil, err
		}
		diff := a.Stats.TotalFlow - b.Stats.TotalFlow
		if diff < 0 {
			diff = -diff
		}
		tb.AddRow("Engine: heap and scan queues produce one schedule",
			fmt.Sprintf("%d jobs", n),
			fmt.Sprintf("|flow diff| = %.2g", diff),
			pass(diff < 1e-6))
	}
	_ = dualObj
	tb.AddNote("each row compresses a full experiment (L1, L2, L3, L8, D1, LP1, T1, B8); see the corresponding sections for the complete sweeps")
	out.add(tb)
	return out, nil
}
