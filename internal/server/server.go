// Package server wraps the streaming engine in a long-lived
// scheduler daemon: jobs arrive as NDJSON over HTTP, pass through a
// bounded admission queue with watermark-based load shedding, run on
// the engine's streaming pipeline, and completions fan out to
// subscriber NDJSON streams.
//
// The determinism contract: the engine goroutine is literally
// sim.RunStreamOn over the admission queue, and streaming hooks force
// sequential execution, so the sequence of accepted jobs produces
// per-job NDJSON byte-identical to an offline sim.RunStream over the
// same trace (pinned by TestCompletionsByteIdentical). Admission
// control only decides *which* jobs enter that sequence, never how
// they run.
//
// Clock semantics: the engine runs on virtual time that advances on
// arrivals and at drain. Between arrivals the engine blocks waiting
// for the next job, so completions for a quiet stream surface at the
// next arrival or at drain — a client that stops submitting sees its
// tail of completions only after POST /drain.
package server

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"treesched/internal/scenario"
	"treesched/internal/sim"
	"treesched/internal/workload"
)

// Config tunes the daemon. Scenario is the only required field and
// must be a serve scenario (Engine.Serve set): topology, speeds,
// policy and assigner come from it; the workload comes from clients.
type Config struct {
	Scenario *scenario.Scenario
	// Instance optionally supplies Scenario's prebuilt form (the
	// result of Scenario.Build) so New does not rebuild the topology
	// per daemon. The daemon treats it as read-only — the engine
	// never mutates a built tree — so one build can be shared across
	// daemons the same way RunStream shares a tree across runs. Must
	// have been built from this config's Scenario.
	Instance *scenario.Instance
	// QueueDepth bounds the admission queue (jobs accepted but not
	// yet injected). A full queue sheds. Default 1024.
	QueueDepth int
	// ShedBacklog is the load-shedding watermark, in units of work:
	// when the fluid backlog estimate (offered work minus what the
	// tree's root capacity drains as virtual time advances) exceeds
	// it, new jobs are shed with 429 until the estimate falls below
	// half the watermark (hysteresis, so admission does not flap at
	// the boundary). 0 disables backlog shedding; the queue bound
	// still applies.
	ShedBacklog float64
	// RetryAfter is the hint returned in the Retry-After header with
	// every 429. Note the fluid backlog drains only as later releases
	// arrive — re-submitting the same release after the delay cannot
	// drain it, so retries only help against queue-depth shedding or
	// when other clients keep the release frontier moving. Default 1s.
	RetryAfter time.Duration
	// MaxLineBytes bounds one NDJSON line of a job submission
	// (workload.SourceLimits.MaxLineBytes). Default 1 MiB.
	MaxLineBytes int
	// StallTimeout bounds how long a submission body may go without
	// producing bytes (workload.SourceLimits.Stall). Default 30s.
	StallTimeout time.Duration
	// SubscriberBuffer is the per-completion-subscriber channel depth,
	// in chunks of up to FlushLines completion lines each; a
	// subscriber that falls further behind is dropped so one slow
	// reader cannot stall the engine. Default 256.
	SubscriberBuffer int
	// FlushLines caps how many completion lines the fan-out coalesces
	// into one chunk before snapshotting stats and distributing to
	// subscribers. Larger chunks amortize the per-completion lock and
	// flush costs; smaller ones tighten delivery latency. Latency is
	// bounded regardless: the fan-out also flushes whenever the engine
	// is about to go idle on an empty admission queue, so a quiet
	// stream never holds completed lines back. Default 64.
	FlushLines int
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (c *Config) queueDepth() int {
	if c.QueueDepth <= 0 {
		return 1024
	}
	return c.QueueDepth
}

func (c *Config) retryAfter() time.Duration {
	if c.RetryAfter <= 0 {
		return time.Second
	}
	return c.RetryAfter
}

func (c *Config) limits() workload.SourceLimits {
	lim := workload.SourceLimits{MaxLineBytes: c.MaxLineBytes, Stall: c.StallTimeout}
	if lim.MaxLineBytes == 0 {
		lim.MaxLineBytes = 1 << 20
	}
	if lim.Stall == 0 {
		lim.Stall = 30 * time.Second
	}
	return lim
}

func (c *Config) subscriberBuffer() int {
	if c.SubscriberBuffer <= 0 {
		return 256
	}
	return c.SubscriberBuffer
}

func (c *Config) flushLines() int {
	if c.FlushLines <= 0 {
		return 64
	}
	return c.FlushLines
}

// StatsView is the live /stats payload: the admission controller's
// counters plus a snapshot of the engine's streaming accumulator.
type StatsView struct {
	// Accepted counts jobs admitted to the engine; Shed counts 429'd
	// jobs; Rejected counts malformed submissions (400).
	Accepted int `json:"accepted"`
	Shed     int `json:"shed"`
	Rejected int `json:"rejected"`
	// QueueLen is the current admission-queue depth.
	QueueLen int `json:"queue_len"`
	// Backlog is the fluid backlog estimate (units of work) at the
	// admission frontier; DrainTime is Backlog over root capacity;
	// Utilization is offered work over capacity × elapsed virtual
	// time (>= 1 means the offered load is unstable).
	Backlog     float64 `json:"backlog"`
	DrainTime   float64 `json:"drain_time"`
	Utilization float64 `json:"utilization"`
	Stable      bool    `json:"stable"`
	// Shedding/Draining/Drained are the admission state machine.
	Shedding bool `json:"shedding"`
	Draining bool `json:"draining"`
	Drained  bool `json:"drained"`
	// Completed and the flow statistics mirror sim.StreamStats,
	// snapshotted at the last completion.
	Completed  int     `json:"completed"`
	TotalFlow  float64 `json:"total_flow"`
	MaxFlow    float64 `json:"max_flow"`
	Makespan   float64 `json:"makespan"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	// Subscribers is the live completion-stream count; Dropped counts
	// subscribers disconnected for falling behind.
	Subscribers int             `json:"subscribers"`
	Dropped     int             `json:"dropped_subscribers"`
	PerLeaf     []sim.LeafTally `json:"per_leaf,omitempty"`
	// Err surfaces an engine failure (empty while healthy).
	Err string `json:"err,omitempty"`
}

// AdmitResult is the POST /jobs response body.
type AdmitResult struct {
	// Accepted is how many jobs of the submission were admitted; they
	// received the dense engine IDs FirstID..FirstID+Accepted-1 in
	// submission order (the daemon owns job IDs — client-supplied IDs
	// are ignored).
	Accepted int `json:"accepted"`
	FirstID  int `json:"first_id"`
	// Shed is 1 when admission stopped at a shed job (status 429);
	// the shed job and everything after it in the body were not
	// admitted and may be resubmitted.
	Shed int `json:"shed"`
	// Error explains a 400/503 (empty on success).
	Error string `json:"error,omitempty"`
}

// subscriber is one /completions stream: a channel of ready-to-write
// NDJSON chunks (each one or more whole lines), closed by the fanout
// when the run ends or the subscriber falls behind.
type subscriber struct {
	ch      chan []byte
	dropped bool
}

// Server is the daemon: one engine goroutine consuming the admission
// queue, an HTTP handler feeding it, and a completion fanout.
type Server struct {
	cfg  Config
	inst *scenario.Instance
	sim  *sim.Sim

	// mu serializes admission: the shed/drain state machine, dense ID
	// assignment, the release frontier, the backlog estimator, and
	// sends on in. Drain closes in under the same lock, so a send on
	// a closed channel is impossible. Admission is batched — one lock
	// acquisition stamps a whole read-ahead batch (admitBatch).
	mu          sync.Mutex
	in          chan []workload.Job
	nextID      int
	lastRelease float64
	est         *sim.BacklogEstimator
	shedding    bool
	draining    bool
	accepted    int
	shed        int
	rejected    int

	// queued counts jobs admitted but not yet handed to the engine
	// (the admission-queue depth, across the batches in flight).
	// Incremented under mu at admission; decremented lock-free by the
	// engine as it consumes jobs, which is what lets the capacity gate
	// read it without talking to the engine goroutine.
	queued atomic.Int64

	fanout *fanoutSink

	// statsMu guards the engine-side snapshot, written by the fanout
	// sink on the engine goroutine at each completion.
	statsMu    sync.Mutex
	statsCopy  sim.StreamStats
	engineErr  error
	drained    bool
	completedW int // completions at last wall-clock sample

	// subMu guards the completion subscribers.
	subMu      sync.Mutex
	subs       map[int]*subscriber
	nextSub    int
	subsClosed bool
	dropped    int

	// nsubs mirrors len(subs) for the engine goroutine: the fan-out
	// sink reads it lock-free at every completion to skip NDJSON
	// encoding entirely while nobody is streaming — a daemon with no
	// attached completion readers pays no marshal cost at all.
	nsubs atomic.Int32

	start time.Time
	done  chan struct{}
}

// New builds the daemon from cfg: the scenario is Built (topology,
// policy, assigner resolved; no trace) and the engine goroutine
// starts immediately, blocking on the empty admission queue.
func New(cfg Config) (*Server, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("server: config needs a scenario")
	}
	if !cfg.Scenario.Engine.Serve {
		return nil, fmt.Errorf("server: scenario must set engine.serve (got an offline scenario)")
	}
	in := cfg.Instance
	if in == nil {
		built, err := cfg.Scenario.Build()
		if err != nil {
			return nil, err
		}
		in = built
	} else if in.Scenario != cfg.Scenario {
		return nil, fmt.Errorf("server: config.Instance was built from a different scenario")
	}
	opts := in.Opts
	if opts.RetainJobs == 0 {
		// A long-lived daemon must not retain every completion: full
		// retention grows the engine's task table with the total job
		// count. Keep the minimum window unless the scenario asked
		// for a larger one.
		opts.RetainJobs = 1
	}
	s := &Server{
		cfg:  cfg,
		inst: in,
		// Capacity queueDepth batches: every batch holds at least one
		// queued job and the capacity gate keeps queued <= queueDepth,
		// so at most queueDepth batches are ever in flight and the
		// admission-side send can never block.
		in:          make(chan []workload.Job, cfg.queueDepth()),
		est:         sim.NewBacklogEstimator(sim.RootCapacity(in.Tree)),
		subs:        make(map[int]*subscriber),
		start:       time.Now(),
		done:        make(chan struct{}),
	}
	// The chunk buffer is sized for full-precision metric lines up
	// front; flush hands it off only when a subscriber received it.
	s.fanout = &fanoutSink{s: s, max: cfg.flushLines(), buf: make([]byte, 0, 128*cfg.flushLines())}
	opts.Sink = s.fanout
	s.statsCopy.PerLeaf = make([]sim.LeafTally, len(in.Tree.Leaves()))
	s.sim = sim.New(in.Tree, opts)
	go s.engineLoop()
	return s, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// admitReadAhead is how many submitted lines handleJobs reads ahead
// into one admission batch: one read deadline refresh and one lock
// acquisition per up-to-256 jobs instead of per job.
const admitReadAhead = 256

// freeBatches recycles admission batch slices between handlers and
// engines, shared process-wide so a fresh daemon starts with its
// predecessors' warm batches (a typed channel rather than sync.Pool:
// batch slices would box on every Put).
var freeBatches = make(chan []workload.Job, 16)

// getBatch hands out a recycled (or fresh) admission batch slice.
func (s *Server) getBatch() []workload.Job {
	select {
	case b := <-freeBatches:
		return b[:0]
	default:
		return make([]workload.Job, 0, admitReadAhead)
	}
}

// putBatch returns a batch slice for reuse.
func (s *Server) putBatch(b []workload.Job) {
	if cap(b) == 0 {
		return
	}
	select {
	case freeBatches <- b[:0]:
	default:
	}
}

// queueSource adapts the admission queue to workload.ArrivalSource,
// unpacking admitted batches job by job. Next blocks until a batch is
// admitted or the queue is closed by Drain. Admission already
// validated everything injectStream checks, so the engine loop cannot
// fail on client input. Before any blocking receive it flushes the
// completion fan-out: the engine is about to go idle, so whatever the
// last injections completed must not sit in the chunk buffer waiting
// for the next arrival (the fan-out's latency bound).
type queueSource struct {
	s     *Server
	batch []workload.Job
	pos   int
}

func (q *queueSource) Next() (workload.Job, bool) {
	for q.pos >= len(q.batch) {
		if q.batch != nil {
			q.s.putBatch(q.batch)
			q.batch = nil
		}
		select {
		case b, ok := <-q.s.in:
			if !ok {
				return workload.Job{}, false
			}
			q.batch, q.pos = b, 0
		default:
			// Queue empty: deliver buffered completions, then block.
			q.s.fanout.flush()
			b, ok := <-q.s.in
			if !ok {
				return workload.Job{}, false
			}
			q.batch, q.pos = b, 0
		}
	}
	j := q.batch[q.pos]
	q.pos++
	q.s.queued.Add(-1)
	return j, true
}

func (q *queueSource) Err() error { return nil }

func (s *Server) engineLoop() {
	res, err := sim.RunStreamOn(s.sim, &queueSource{s: s}, s.inst.Assigner)
	// Deliver the tail chunk (completions since the last flush) before
	// the final stats copy and the subscriber close below.
	s.fanout.flush()
	s.statsMu.Lock()
	if err != nil {
		s.engineErr = err
	} else {
		s.drained = true
		if res.Stream != nil {
			s.copyStats(res.Stream)
		}
	}
	s.statsMu.Unlock()
	if err != nil {
		s.logf("engine failed: %v", err)
	}
	s.closeSubscribers()
	close(s.done)
}

// copyStats copies acc into the preallocated snapshot. Callers hold
// statsMu.
func (s *Server) copyStats(acc *sim.StreamStats) {
	per := s.statsCopy.PerLeaf
	s.statsCopy = *acc
	s.statsCopy.PerLeaf = per[:copy(per, acc.PerLeaf)]
}

// fanoutSink runs on the engine goroutine at every completion,
// coalescing lines into chunk buffers so the per-completion costs —
// stats snapshot under statsMu, subMu acquisition, one channel send
// per subscriber, and the subscriber's per-write Flush — are paid
// once per chunk instead of once per line. Lines are produced by the
// pooled append codec (sim.AppendJobMetrics), byte-for-byte what
// json.Encoder.Encode (sim.NDJSONSink) writes, which is what the
// byte-identity contract is pinned against. Latency stays bounded: a
// chunk flushes at max lines, and queueSource flushes whenever the
// engine is about to block on an empty queue. Engine goroutine only
// (streaming hooks force a single worker), so no locking around buf.
type fanoutSink struct {
	s     *Server
	buf   []byte
	lines int
	max   int
}

func (f *fanoutSink) Emit(m *sim.JobMetrics) error {
	// No subscribers, no marshal: lines emitted while nobody is
	// streaming are unobservable (exactly as they were under per-line
	// fan-out), so only the flush cadence — which keeps the stats
	// snapshot fresh — is maintained.
	if f.s.nsubs.Load() > 0 {
		var err error
		if f.buf, err = sim.AppendJobMetrics(f.buf, m); err != nil {
			return err
		}
		f.buf = append(f.buf, '\n')
	}
	if f.lines++; f.lines >= f.max {
		f.flush()
	}
	return nil
}

// flush snapshots the stats accumulator and distributes the buffered
// chunk to every subscriber. No-op on an empty buffer. Subscribers
// share the chunk slice read-only; the buffer is reused only when no
// subscriber received it.
func (f *fanoutSink) flush() {
	if f.lines == 0 {
		return
	}
	s := f.s
	s.statsMu.Lock()
	s.copyStats(s.sim.StreamStats())
	s.statsMu.Unlock()
	chunk := f.buf
	f.lines = 0
	if len(chunk) == 0 {
		// Every line of the chunk was skipped (no subscribers at emit
		// time); the stats snapshot above was the flush's only job.
		return
	}
	sent := 0
	s.subMu.Lock()
	for id, sub := range s.subs {
		select {
		case sub.ch <- chunk:
			sent++
		default:
			// The subscriber's buffer is full: drop it rather than
			// block the engine. Closing the channel ends its handler.
			sub.dropped = true
			close(sub.ch)
			delete(s.subs, id)
			s.dropped++
		}
	}
	s.nsubs.Store(int32(len(s.subs)))
	s.subMu.Unlock()
	if sent == 0 {
		f.buf = chunk[:0]
	} else {
		f.buf = nil
	}
}

// subscribe registers a completion stream. The returned channel
// yields NDJSON lines and is closed at drain (or when the subscriber
// falls behind); a subscriber arriving after the run ended gets an
// immediately-closed channel.
func (s *Server) subscribe() (int, *subscriber) {
	sub := &subscriber{ch: make(chan []byte, s.cfg.subscriberBuffer())}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subsClosed {
		close(sub.ch)
		return -1, sub
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = sub
	s.nsubs.Store(int32(len(s.subs)))
	return id, sub
}

func (s *Server) unsubscribe(id int) {
	if id < 0 {
		return
	}
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if sub, ok := s.subs[id]; ok {
		delete(s.subs, id)
		s.nsubs.Store(int32(len(s.subs)))
		close(sub.ch)
	}
}

func (s *Server) closeSubscribers() {
	s.subMu.Lock()
	defer s.subMu.Unlock()
	if s.subsClosed {
		return
	}
	s.subsClosed = true
	for id, sub := range s.subs {
		close(sub.ch)
		delete(s.subs, id)
	}
	s.nsubs.Store(0)
}

// admitOutcome classifies one job's admission attempt.
type admitOutcome int

const (
	admitOK admitOutcome = iota
	admitShed
	admitDraining
	admitInvalid
	admitDead
)

// batchResult reports one admitBatch call: the admitted prefix, the
// dense engine ID of its first job (-1 when empty), and — when the
// whole batch was not admitted — the outcome that stopped admission
// (admitOK means all of it went in) with the reason on admitInvalid.
type batchResult struct {
	accepted int
	firstID  int
	outcome  admitOutcome
	err      error
}

// admitBatch runs the admission state machine over a whole read-ahead
// batch under one lock acquisition: per job it validates, advances
// the fluid frontier, applies the shed watermark with hysteresis and
// the queue-depth capacity gate, and stamps the dense engine ID in
// place. Admission stops at the first job that does not go in; the
// admitted prefix batch[:accepted] is handed to the engine as one
// slice (whose backing array the engine then owns — callers must not
// reuse it). The per-job outcome order matches the old one-job admit
// exactly, so partial-batch responses are unchanged.
func (s *Server) admitBatch(batch []workload.Job) batchResult {
	res := batchResult{firstID: -1, outcome: admitOK}
	s.statsMu.Lock()
	dead := s.engineErr != nil
	s.statsMu.Unlock()

	depth := int64(s.cfg.queueDepth())
	stop := func(out admitOutcome, err error) {
		res.outcome, res.err = out, err
	}
	s.mu.Lock()
	for i := range batch {
		j := &batch[i]
		if err := j.Validate(); err != nil {
			s.rejected++
			stop(admitInvalid, err)
			break
		}
		// Job.Validate lets a NaN size through (NaN fails no <= 0
		// check); a NaN would poison the backlog estimator and the
		// engine, so close the gap here.
		if math.IsNaN(j.Size) || math.IsInf(j.Size, 0) {
			s.rejected++
			stop(admitInvalid, fmt.Errorf("server: job has non-finite size %v", j.Size))
			break
		}
		if j.LeafSizes != nil && len(j.LeafSizes) != len(s.inst.Tree.Leaves()) {
			s.rejected++
			stop(admitInvalid, fmt.Errorf("server: job has %d leaf sizes for a %d-leaf tree", len(j.LeafSizes), len(s.inst.Tree.Leaves())))
			break
		}
		if o := int(j.Origin); o < 0 || o >= s.inst.Tree.NumNodes() {
			s.rejected++
			stop(admitInvalid, fmt.Errorf("server: job origin %d outside the %d-node tree", o, s.inst.Tree.NumNodes()))
			break
		}
		if dead {
			stop(admitDead, nil)
			break
		}
		if s.draining {
			stop(admitDraining, nil)
			break
		}
		if j.Release < s.lastRelease {
			s.rejected++
			stop(admitInvalid, fmt.Errorf("server: job released at %v, before the admitted frontier %v (releases must be non-decreasing across submissions)", j.Release, s.lastRelease))
			break
		}
		// Every observed release advances the fluid clock, shed or not
		// — that is what lets the estimate drain and admission reopen.
		s.est.AdvanceTo(j.Release)
		if wm := s.cfg.ShedBacklog; wm > 0 {
			switch {
			case s.shedding && s.est.Backlog() < wm/2:
				s.shedding = false
			case !s.shedding && s.est.Backlog() > wm:
				s.shedding = true
			}
			if s.shedding {
				s.shed++
				stop(admitShed, nil)
				break
			}
		}
		if s.queued.Load() >= depth {
			// Queue full: the engine is not keeping up with wall-clock
			// arrival pressure. Shed rather than block the client.
			s.shed++
			stop(admitShed, nil)
			break
		}
		j.ID = s.nextID
		s.nextID++
		s.lastRelease = j.Release
		s.est.Offer(j.Release, j.Size)
		s.accepted++
		s.queued.Add(1)
		if res.firstID < 0 {
			res.firstID = j.ID
		}
		res.accepted++
	}
	if res.accepted > 0 {
		// Still under mu (Drain closes in under the same lock) and
		// never blocking: the capacity gate bounds batches in flight
		// below the channel capacity — see the comment at New.
		s.in <- batch[:res.accepted]
	}
	s.mu.Unlock()
	return res
}

func (s *Server) countRejected() {
	s.mu.Lock()
	s.rejected++
	s.mu.Unlock()
}

// Drain stops admission (further submissions get 503), closes the
// queue so the engine injects what was accepted and drains, and waits
// for the engine to finish and the completion streams to flush.
// Idempotent; safe from any goroutine.
func (s *Server) Drain() error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.in)
	}
	s.mu.Unlock()
	<-s.done
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.engineErr
}

// Done exposes the engine-finished signal (closed after drain or an
// engine failure).
func (s *Server) Done() <-chan struct{} { return s.done }

// Stats assembles the live stats view.
func (s *Server) Stats() StatsView {
	var v StatsView
	s.mu.Lock()
	v.Accepted = s.accepted
	v.Shed = s.shed
	v.Rejected = s.rejected
	v.QueueLen = int(s.queued.Load())
	v.Backlog = s.est.Backlog()
	v.DrainTime = s.est.DrainTime(0)
	u := s.est.Utilization()
	v.Utilization = u
	v.Stable = s.est.Stable()
	v.Shedding = s.shedding
	v.Draining = s.draining
	s.mu.Unlock()
	if math.IsInf(u, 1) {
		// +Inf (all offered work at one instant) is not valid JSON.
		v.Utilization = math.MaxFloat64
	}
	s.statsMu.Lock()
	v.Completed = s.statsCopy.Completed
	v.TotalFlow = s.statsCopy.TotalFlow
	v.MaxFlow = s.statsCopy.MaxFlow
	v.Makespan = s.statsCopy.Makespan
	v.Drained = s.drained
	if s.engineErr != nil {
		v.Err = s.engineErr.Error()
	}
	per := make([]sim.LeafTally, len(s.statsCopy.PerLeaf))
	copy(per, s.statsCopy.PerLeaf)
	v.PerLeaf = per
	s.statsMu.Unlock()
	if wall := time.Since(s.start).Seconds(); wall > 0 {
		v.JobsPerSec = float64(v.Completed) / wall
	}
	s.subMu.Lock()
	v.Subscribers = len(s.subs)
	v.Dropped = s.dropped
	s.subMu.Unlock()
	return v
}

// Healthy reports whether the engine goroutine is alive (or finished
// cleanly).
func (s *Server) Healthy() bool {
	s.statsMu.Lock()
	defer s.statsMu.Unlock()
	return s.engineErr == nil
}

// Ready reports whether the daemon is currently admitting jobs.
func (s *Server) Ready() bool {
	if !s.Healthy() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.draining
}
