package server

import (
	"bufio"
	"context"
	"testing"
	"time"

	"treesched/internal/workload"
)

// spacedJobs builds n unit jobs whose releases are far enough apart
// that job i completes (in virtual time) before job i+1 arrives — so
// each injection surfaces the previous job's completion line, and the
// last job's line surfaces only at drain.
func spacedJobs(n int) []workload.Job {
	jobs := make([]workload.Job, n)
	for i := range jobs {
		jobs[i] = workload.Job{Release: float64(i) * 1000, Size: 1}
	}
	return jobs
}

// lineReader pumps a completion stream's lines into a channel so the
// test can assert on delivery timing without blocking.
func lineReader(t *testing.T, cl *Client) <-chan string {
	t.Helper()
	stream, err := cl.Completions(context.Background())
	if err != nil {
		t.Fatalf("Completions: %v", err)
	}
	lines := make(chan string, 64)
	go func() {
		defer close(lines)
		sc := bufio.NewScanner(stream)
		for sc.Scan() {
			lines <- sc.Text()
		}
	}()
	return lines
}

func expectLines(t *testing.T, lines <-chan string, n int, what string) {
	t.Helper()
	for i := 0; i < n; i++ {
		select {
		case ln, ok := <-lines:
			if !ok {
				t.Fatalf("%s: stream closed after %d of %d lines", what, i, n)
			}
			if ln == "" {
				t.Fatalf("%s: empty completion line", what)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: saw %d of %d completion lines", what, i, n)
		}
	}
}

func expectNoLine(t *testing.T, lines <-chan string, what string) {
	t.Helper()
	select {
	case ln, ok := <-lines:
		if ok {
			t.Fatalf("%s: unexpected completion line %q", what, ln)
		}
		t.Fatalf("%s: stream closed early", what)
	case <-time.After(50 * time.Millisecond):
	}
}

// The chunk-size half of the fan-out latency bound: with FlushLines=4
// and six spaced jobs in one submission, five completions surface
// during injection — the first four flush as a full chunk, the fifth
// via the idle flush when the engine blocks on the empty queue — and
// the sixth only at drain.
func TestFanoutFlushAtChunkSize(t *testing.T) {
	sc := serveScenario(t, "topo=star:4 serve")
	_, cl, _ := startDaemon(t, Config{Scenario: sc, FlushLines: 4})
	lines := lineReader(t, cl)

	if _, err := cl.Submit(context.Background(), spacedJobs(6)); err != nil {
		t.Fatal(err)
	}
	expectLines(t, lines, 5, "before drain")
	expectNoLine(t, lines, "last job before drain")

	if _, err := cl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	expectLines(t, lines, 1, "after drain")
}

// The idle half of the bound: with a chunk size that six jobs can
// never fill, buffered completions must still be delivered as soon as
// the engine goes idle, not held until drain.
func TestFanoutFlushOnIdle(t *testing.T) {
	sc := serveScenario(t, "topo=star:4 serve")
	_, cl, _ := startDaemon(t, Config{Scenario: sc, FlushLines: 1 << 20})
	lines := lineReader(t, cl)

	if _, err := cl.Submit(context.Background(), spacedJobs(2)); err != nil {
		t.Fatal(err)
	}
	expectLines(t, lines, 1, "idle flush before drain")

	if _, err := cl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	expectLines(t, lines, 1, "after drain")
}

// A stalled subscriber must be dropped — counted exactly once — while
// the engine keeps completing every admitted job.
func TestSlowSubscriberDroppedOnce(t *testing.T) {
	sc := serveScenario(t, "topo=star:4 serve")
	srv, cl, _ := startDaemon(t, Config{Scenario: sc, FlushLines: 1, SubscriberBuffer: 1})

	// Subscribe directly and never read: with one-line chunks and a
	// one-chunk buffer, the second completion must drop us.
	_, sub := srv.subscribe()

	const n = 40
	if _, err := cl.Submit(context.Background(), spacedJobs(n)); err != nil {
		t.Fatal(err)
	}
	final, err := cl.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if final.Completed != n {
		t.Fatalf("engine completed %d of %d jobs with a stalled subscriber present", final.Completed, n)
	}
	if final.Dropped != 1 {
		t.Fatalf("dropped count = %d, want exactly 1", final.Dropped)
	}
	if final.Subscribers != 0 {
		t.Fatalf("dropped subscriber still counted live: %d", final.Subscribers)
	}
	if !sub.dropped {
		t.Fatal("subscriber not marked dropped")
	}
	// The channel holds the one chunk that fit, then is closed — a
	// second close anywhere would have panicked the engine goroutine.
	if _, ok := <-sub.ch; !ok {
		t.Fatal("buffered chunk lost on drop")
	}
	if _, ok := <-sub.ch; ok {
		t.Fatal("subscriber channel not closed after drop")
	}
}
