package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"treesched/internal/rng"
	"treesched/internal/scenario"
	"treesched/internal/sim"
	"treesched/internal/workload"
)

func serveScenario(t *testing.T, compact string) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.ParseCompact(compact)
	if err != nil {
		t.Fatalf("ParseCompact(%q): %v", compact, err)
	}
	return sc
}

// startDaemon builds a Server over an httptest listener and returns
// it with a client.
func startDaemon(t *testing.T, cfg Config) (*Server, *Client, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("server.New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		ts.Close()
	})
	return srv, &Client{Base: ts.URL}, ts
}

// offlineNDJSON replays trace through sim.RunStream on a fresh build
// of the same serve scenario, returning the per-job NDJSON bytes the
// offline pipeline writes.
func offlineNDJSON(t *testing.T, sc *scenario.Scenario, trace *workload.Trace) []byte {
	t.Helper()
	in, err := sc.Build()
	if err != nil {
		t.Fatalf("offline Build: %v", err)
	}
	var buf bytes.Buffer
	opts := in.Opts
	opts.RetainJobs = 1
	opts.Sink = sim.NewNDJSONSink(&buf)
	if _, err := sim.RunStream(in.Tree, workload.NewTraceSource(trace), in.Assigner, opts); err != nil {
		t.Fatalf("offline RunStream: %v", err)
	}
	return buf.Bytes()
}

// poissonJobs generates a dense release-ordered trace for submission.
func poissonJobs(t *testing.T, n int, load, capacity float64, seed uint64) []workload.Job {
	t.Helper()
	tr, err := workload.Poisson(rng.New(seed), workload.GenConfig{
		N: n, Size: workload.UniformSize{Lo: 1, Hi: 16}, Load: load, Capacity: capacity,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Jobs
}

// The determinism contract: jobs accepted by the daemon produce
// per-job NDJSON byte-identical to an offline RunStream of the same
// trace through the same scenario.
func TestCompletionsByteIdentical(t *testing.T) {
	sc := serveScenario(t, "topo=fattree:2,2,2 speed=1.5 policy=srpt serve")
	_, cl, _ := startDaemon(t, Config{Scenario: sc})

	jobs := poissonJobs(t, 400, 0.9, 3, 11)

	stream, err := cl.Completions(context.Background())
	if err != nil {
		t.Fatalf("Completions: %v", err)
	}
	var got bytes.Buffer
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		io.Copy(&got, stream)
	}()

	// Submit in several batches to exercise cross-batch admission.
	for i := 0; i < len(jobs); i += 150 {
		end := i + 150
		if end > len(jobs) {
			end = len(jobs)
		}
		res, err := cl.Submit(context.Background(), jobs[i:end])
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if res.Accepted != end-i || res.Shed != 0 {
			t.Fatalf("batch [%d:%d): accepted %d shed %d", i, end, res.Accepted, res.Shed)
		}
		if res.FirstID != i {
			t.Fatalf("batch [%d:%d): first dense ID %d, want %d", i, end, res.FirstID, i)
		}
	}

	final, err := cl.Drain(context.Background())
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if final.Completed != len(jobs) || final.Accepted != len(jobs) {
		t.Fatalf("drained completed=%d accepted=%d, want %d", final.Completed, final.Accepted, len(jobs))
	}
	if !final.Drained || !final.Draining {
		t.Fatalf("final stats not marked drained: %+v", final)
	}
	rd.Wait()

	want := offlineNDJSON(t, sc, &workload.Trace{Jobs: jobs})
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("daemon completions differ from offline RunStream:\n daemon  %d bytes\n offline %d bytes", got.Len(), len(want))
	}

	// Per-leaf tallies survive into the final stats view.
	var leafJobs int
	for _, lt := range final.PerLeaf {
		leafJobs += lt.Jobs
	}
	if leafJobs != len(jobs) {
		t.Fatalf("per-leaf tallies sum to %d jobs, want %d", leafJobs, len(jobs))
	}
}

// Overload: an unstable offered load must surface as monotone shed
// counts and 429s with Retry-After — and the accepted subset must
// still drain cleanly and replay byte-identically offline.
func TestOverloadShedsAndDrainsClean(t *testing.T) {
	// Speed-1 fattree: root capacity 2. Unit jobs every 0.1 time
	// units offer rate 10 — hopelessly unstable.
	sc := serveScenario(t, "topo=fattree:2,2,2 serve")
	srv, cl, _ := startDaemon(t, Config{Scenario: sc, ShedBacklog: 20})

	mkBatch := func(start int, n int) []workload.Job {
		jobs := make([]workload.Job, n)
		for i := range jobs {
			jobs[i] = workload.Job{ID: i, Release: float64(start+i) * 0.1, Size: 1}
		}
		return jobs
	}

	var accepted []workload.Job
	sawShed := false
	prevShed := 0
	for b := 0; b < 10; b++ {
		batch := mkBatch(b*20, 20)
		res, err := cl.Submit(context.Background(), batch)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		accepted = append(accepted, batch[:res.Accepted]...)
		if res.Shed > 0 {
			sawShed = true
		}
		st, err := cl.Stats(context.Background())
		if err != nil {
			t.Fatalf("Stats: %v", err)
		}
		if st.Shed < prevShed {
			t.Fatalf("shed count went backwards: %d -> %d", prevShed, st.Shed)
		}
		prevShed = st.Shed
	}
	if !sawShed {
		t.Fatal("unstable load never shed")
	}
	st, err := cl.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Stable {
		t.Fatalf("offered rate 5x capacity reported stable: %+v", st)
	}
	if st.Shedding != true {
		t.Fatalf("not in shedding state under sustained overload: %+v", st)
	}

	// A quiet period (much later release) drains the fluid backlog
	// below the hysteresis floor and admission reopens.
	late := []workload.Job{{Release: 1000, Size: 1}}
	res, err := cl.Submit(context.Background(), late)
	if err != nil {
		t.Fatalf("late submit: %v", err)
	}
	if res.Accepted != 1 {
		t.Fatalf("admission did not reopen after the backlog drained: %+v", res)
	}
	accepted = append(accepted, late...)

	final, err := cl.Drain(context.Background())
	if err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if final.Completed != len(accepted) || final.Accepted != len(accepted) {
		t.Fatalf("drain completed=%d accepted=%d, want %d (every accepted job, no shed job)",
			final.Completed, final.Accepted, len(accepted))
	}
	if final.Shed == 0 {
		t.Fatal("final stats lost the shed count")
	}
	_ = srv

	// The accepted subset, re-IDed densely, replays byte-identically.
	dense := make([]workload.Job, len(accepted))
	copy(dense, accepted)
	for i := range dense {
		dense[i].ID = i
	}
	// Collect the daemon's lines post-hoc via a second identical run:
	// here we just pin the offline replay completes with the same
	// count — byte identity itself is pinned by the test above and by
	// TestShedRunByteIdentical below.
	want := offlineNDJSON(t, sc, &workload.Trace{Jobs: dense})
	if n := bytes.Count(want, []byte("\n")); n != len(accepted) {
		t.Fatalf("offline replay of the accepted subset completed %d jobs, want %d", n, len(accepted))
	}
}

// The shed run's accepted subset must replay byte-identically: this
// run subscribes to completions while shedding is happening.
func TestShedRunByteIdentical(t *testing.T) {
	sc := serveScenario(t, "topo=fattree:2,2,2 serve")
	_, cl, _ := startDaemon(t, Config{Scenario: sc, ShedBacklog: 10, SubscriberBuffer: 4096})

	stream, err := cl.Completions(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	var rd sync.WaitGroup
	rd.Add(1)
	go func() {
		defer rd.Done()
		io.Copy(&got, stream)
	}()

	var accepted []workload.Job
	for b := 0; b < 8; b++ {
		batch := make([]workload.Job, 25)
		for i := range batch {
			batch[i] = workload.Job{Release: float64(b*25+i) * 0.05, Size: 2}
		}
		res, err := cl.Submit(context.Background(), batch)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		accepted = append(accepted, batch[:res.Accepted]...)
	}
	if len(accepted) == 0 || len(accepted) == 8*25 {
		t.Fatalf("want a proper accepted subset, got %d of %d", len(accepted), 8*25)
	}
	if _, err := cl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	rd.Wait()

	dense := make([]workload.Job, len(accepted))
	copy(dense, accepted)
	for i := range dense {
		dense[i].ID = i
	}
	want := offlineNDJSON(t, sc, &workload.Trace{Jobs: dense})
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("shed-run completions differ from offline replay of the accepted subset:\n daemon  %d bytes\n offline %d bytes", got.Len(), len(want))
	}
}

func TestRetryAfterHeader(t *testing.T) {
	sc := serveScenario(t, "topo=fattree:2,2,2 serve")
	_, _, ts := startDaemon(t, Config{Scenario: sc, ShedBacklog: 1, RetryAfter: 3 * time.Second})

	var body bytes.Buffer
	for i := 0; i < 50; i++ {
		fmt.Fprintf(&body, `{"Release":%g,"Size":5}`+"\n", float64(i)*0.01)
	}
	resp, err := http.Post(ts.URL+"/jobs", ndjsonType, &body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	var res AdmitResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Shed != 1 || res.Accepted == 0 {
		t.Fatalf("shed response %+v: want the accepted prefix plus shed=1", res)
	}
}

func TestDrainRejectsNewJobs(t *testing.T) {
	sc := serveScenario(t, "topo=star:4 serve")
	srv, cl, ts := startDaemon(t, Config{Scenario: sc})

	if _, err := cl.Submit(context.Background(), []workload.Job{{Release: 0, Size: 1}}); err != nil {
		t.Fatal(err)
	}
	if !srv.Ready() {
		t.Fatal("daemon not ready before drain")
	}
	if _, err := cl.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Submit(context.Background(), []workload.Job{{Release: 1, Size: 1}}); err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("submit after drain: %v, want HTTP 503", err)
	}
	// Drain is idempotent.
	if _, err := cl.Drain(context.Background()); err != nil {
		t.Fatalf("second drain: %v", err)
	}
	for path, want := range map[string]int{"/healthz": 200, "/readyz": 503} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s after drain = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestAdmissionValidation(t *testing.T) {
	sc := serveScenario(t, "topo=fattree:2,2,2 serve")
	_, _, ts := startDaemon(t, Config{Scenario: sc, MaxLineBytes: 512})

	post := func(body string) (int, AdmitResult) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/jobs", ndjsonType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var res AdmitResult
		if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, res
	}

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"garbage", "not json\n", http.StatusBadRequest},
		{"zero size", `{"Release":1,"Size":0}` + "\n", http.StatusBadRequest},
		{"nan size", `{"Release":1,"Size":null}` + "\n", http.StatusBadRequest},
		{"bad leaf count", `{"Release":1,"Size":1,"LeafSizes":[1,2]}` + "\n", http.StatusBadRequest},
		{"bad origin", `{"Release":1,"Size":1,"Origin":999}` + "\n", http.StatusBadRequest},
		{"oversized line", `{"Release":1,"Size":1,"pad":"` + strings.Repeat("x", 2048) + `"}` + "\n", http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		if status, _ := post(c.body); status != c.status {
			t.Fatalf("%s: status %d, want %d", c.name, status, c.status)
		}
	}

	// Partial admission: a batch that goes bad mid-way keeps its good
	// prefix and reports it.
	status, res := post(`{"Release":5,"Size":1}` + "\n" + `{"Release":6,"Size":1}` + "\n" + `{"Release":2,"Size":1}` + "\n")
	if status != http.StatusBadRequest || res.Accepted != 2 {
		t.Fatalf("mid-batch regression: status %d result %+v, want 400 with accepted=2", status, res)
	}
	// Cross-batch monotonicity: the frontier is at 6 now.
	if status, _ := post(`{"Release":3,"Size":1}` + "\n"); status != http.StatusBadRequest {
		t.Fatalf("pre-frontier release accepted: status %d", status)
	}
	if status, res := post(`{"Release":7,"Size":1}` + "\n"); status != http.StatusOK || res.Accepted != 1 {
		t.Fatalf("at-frontier release: status %d result %+v", status, res)
	}
}

// A mid-batch zero-size job: NaN via JSON null is covered above; this
// pins that nothing before the bad job is lost and IDs stay dense.
func TestDenseIDsAcrossPartialBatches(t *testing.T) {
	sc := serveScenario(t, "topo=star:4 serve")
	_, cl, _ := startDaemon(t, Config{Scenario: sc})

	r1, err := cl.Submit(context.Background(), []workload.Job{{Release: 0, Size: 1}, {Release: 1, Size: 1}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cl.Submit(context.Background(), []workload.Job{{ID: 999, Release: 2, Size: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.FirstID != 0 || r2.FirstID != 2 {
		t.Fatalf("dense IDs: first batch %d, second batch %d (client ID must be ignored)", r1.FirstID, r2.FirstID)
	}
}

func TestClientRetryHonorsRetryAfter(t *testing.T) {
	var calls int
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "2")
			writeJSON(w, http.StatusTooManyRequests, AdmitResult{Accepted: 1, FirstID: 0, Shed: 1})
			return
		}
		writeJSON(w, http.StatusOK, AdmitResult{Accepted: 2, FirstID: 1})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	var slept []time.Duration
	cl := &Client{Base: ts.URL, Retries: 2, Sleep: func(d time.Duration) { slept = append(slept, d) }}
	res, err := cl.Submit(context.Background(), []workload.Job{
		{Release: 0, Size: 1}, {Release: 1, Size: 1}, {Release: 2, Size: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 || res.Shed != 0 || res.Attempts != 2 || res.FirstID != 0 {
		t.Fatalf("retry result %+v, want all 3 accepted over 2 attempts", res)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want one 2s backoff from Retry-After", slept)
	}
}

func TestClientRetriesExhaustedReportShed(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, AdmitResult{FirstID: -1, Shed: 1})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	cl := &Client{Base: ts.URL, Retries: 1, Sleep: func(time.Duration) {}}
	res, err := cl.Submit(context.Background(), []workload.Job{{Release: 0, Size: 1}, {Release: 1, Size: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 2 || res.Accepted != 0 || res.Attempts != 2 {
		t.Fatalf("exhausted retries: %+v, want both jobs reported shed after 2 attempts", res)
	}
}

func TestNewRejectsOfflineScenario(t *testing.T) {
	sc := serveScenario(t, "topo=star:4")
	sc.Workload = scenario.Workload{N: 10, Size: scenario.NewSpec("uniform", 1, 4), Load: 0.5}
	if _, err := New(Config{Scenario: sc}); err == nil {
		t.Fatal("New accepted a non-serve scenario")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted a nil scenario")
	}
}

func TestStallGuardFailsDeadSubmission(t *testing.T) {
	sc := serveScenario(t, "topo=star:4 serve")
	_, _, ts := startDaemon(t, Config{Scenario: sc, StallTimeout: 50 * time.Millisecond})

	pr, pw := io.Pipe()
	done := make(chan struct{})
	var status int
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/jobs", ndjsonType, pr)
		if err != nil {
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
	}()
	// Half a job, then silence: the daemon must 408 instead of
	// holding the handler forever.
	io.WriteString(pw, `{"Release":1,`)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("stalled submission never timed out")
	}
	pw.Close()
	if status != http.StatusRequestTimeout {
		t.Fatalf("stalled submission status %d, want 408", status)
	}
}
