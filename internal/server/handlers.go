// HTTP surface of the daemon. All job payloads are NDJSON
// (application/x-ndjson): one compact workload.Job object per line in
// requests, one sim.JobMetrics object per line on the completion
// stream.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"treesched/internal/workload"
)

const ndjsonType = "application/x-ndjson"

// Handler returns the daemon's HTTP mux:
//
//	POST /jobs        NDJSON job batch -> AdmitResult (200/400/429/503)
//	GET  /stats       StatsView JSON
//	GET  /healthz     200 while the engine is alive
//	GET  /readyz      200 while admitting (503 draining or dead)
//	GET  /completions NDJSON stream of completions until drain
//	POST /drain       stop admission, finish accepted jobs, final StatsView
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleJobs)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /completions", s.handleCompletions)
	mux.HandleFunc("POST /drain", s.handleDrain)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, v)
}

func writeJSONBody(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Every payload type here marshals; this is unreachable short
		// of a programming error.
		return
	}
	w.Write(append(b, '\n'))
}

// handleJobs admits an NDJSON batch job by job, in order. Admission
// stops at the first shed or invalid job: everything before it is
// admitted and stays admitted (the response's Accepted/FirstID say
// exactly which), everything from it on is the client's to resubmit.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	// The stall guard here is a per-line connection read deadline, not
	// workload's pump-goroutine stallReader: an abandoned read on an
	// http request body holds the body's mutex, which would wedge the
	// connection teardown. A deadline makes the blocked read itself
	// return. (stallReader is for plain byte streams — pipes, files.)
	lim := s.cfg.limits()
	rc := http.NewResponseController(w)
	deadline := func() { rc.SetReadDeadline(time.Now().Add(lim.Stall)) }
	defer rc.SetReadDeadline(time.Time{})
	src := workload.NewNDJSONSourceLimited(r.Body, workload.SourceLimits{MaxLineBytes: lim.MaxLineBytes})
	res := AdmitResult{FirstID: -1}
	fail := func(status int, err error) {
		res.Error = err.Error()
		writeJSON(w, status, res)
	}
	for {
		deadline()
		j, ok := src.Next()
		if !ok {
			break
		}
		out, id, err := s.admit(j)
		switch out {
		case admitOK:
			if res.FirstID < 0 {
				res.FirstID = id
			}
			res.Accepted++
		case admitShed:
			res.Shed = 1
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.retryAfter().Seconds()))))
			fail(http.StatusTooManyRequests, fmt.Errorf("server: shedding load (see /stats); job %d of the batch and everything after it were not admitted", res.Accepted))
			return
		case admitDraining:
			fail(http.StatusServiceUnavailable, fmt.Errorf("server: draining; no new jobs"))
			return
		case admitDead:
			fail(http.StatusServiceUnavailable, fmt.Errorf("server: engine failed (see /stats)"))
			return
		case admitInvalid:
			fail(http.StatusBadRequest, fmt.Errorf("job %d of the batch: %w", res.Accepted, err))
			return
		}
	}
	if err := src.Err(); err != nil {
		s.countRejected()
		status := http.StatusBadRequest
		var ne net.Error
		if errors.Is(err, workload.ErrStalled) || (errors.As(err, &ne) && ne.Timeout()) {
			status = http.StatusRequestTimeout
			err = fmt.Errorf("server: submission stalled past %v: %w", lim.Stall, workload.ErrStalled)
		}
		if errors.Is(err, workload.ErrLineTooLong) {
			status = http.StatusRequestEntityTooLarge
		}
		fail(status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.Healthy() {
		http.Error(w, "engine failed", http.StatusInternalServerError)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		http.Error(w, "not admitting", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// handleCompletions streams completions as NDJSON until the run
// drains, the subscriber falls behind (dropped), or the client goes
// away. Lines are the engine's own bytes: identical to what
// sim.NDJSONSink writes offline.
func (s *Server) handleCompletions(w http.ResponseWriter, r *http.Request) {
	id, sub := s.subscribe()
	defer s.unsubscribe(id)
	w.Header().Set("Content-Type", ndjsonType)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for {
		select {
		case line, ok := <-sub.ch:
			if !ok {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleDrain initiates (or joins) the graceful drain and responds
// with the final stats once every accepted job has completed.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if err := s.Drain(); err != nil {
		writeJSON(w, http.StatusInternalServerError, s.Stats())
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}
