// HTTP surface of the daemon. All job payloads are NDJSON
// (application/x-ndjson): one compact workload.Job object per line in
// requests, one sim.JobMetrics object per line on the completion
// stream.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"treesched/internal/workload"
)

const ndjsonType = "application/x-ndjson"

// Handler returns the daemon's HTTP routing handler:
//
//	POST /jobs        NDJSON job batch -> AdmitResult (200/400/429/503)
//	GET  /stats       StatsView JSON
//	GET  /healthz     200 while the engine is alive
//	GET  /readyz      200 while admitting (503 draining or dead)
//	GET  /completions NDJSON stream of completions until drain
//	POST /drain       stop admission, finish accepted jobs, final StatsView
//
// The route table is a switch rather than an http.ServeMux: the
// pattern set is six fixed literal paths, and registering them with
// the pattern router costs a few hundred allocations per daemon —
// visible in the inject-drain benchmark, which starts a daemon per
// iteration. Semantics match the mux: unknown paths 404, known paths
// with the wrong method 405 with an Allow header, HEAD allowed
// wherever GET is.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(s.route)
}

func (s *Server) route(w http.ResponseWriter, r *http.Request) {
	var get, post http.HandlerFunc
	switch r.URL.Path {
	case "/jobs":
		post = s.handleJobs
	case "/stats":
		get = s.handleStats
	case "/healthz":
		get = s.handleHealthz
	case "/readyz":
		get = s.handleReadyz
	case "/completions":
		get = s.handleCompletions
	case "/drain":
		post = s.handleDrain
	default:
		http.NotFound(w, r)
		return
	}
	switch {
	case get != nil && (r.Method == http.MethodGet || r.Method == http.MethodHead):
		get(w, r)
	case post != nil && r.Method == http.MethodPost:
		post(w, r)
	default:
		allow := "GET, HEAD"
		if post != nil {
			allow = "POST"
		}
		w.Header().Set("Allow", allow)
		http.Error(w, http.StatusText(http.StatusMethodNotAllowed), http.StatusMethodNotAllowed)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	writeJSONBody(w, v)
}

func writeJSONBody(w http.ResponseWriter, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		// Every payload type here marshals; this is unreachable short
		// of a programming error.
		return
	}
	w.Write(append(b, '\n'))
}

// handleJobs admits an NDJSON submission in read-ahead batches of up
// to admitReadAhead lines, each stamped under one lock acquisition
// (admitBatch). Admission still stops at the first shed or invalid
// job: everything before it is admitted and stays admitted (the
// response's Accepted/FirstID say exactly which), everything from it
// on is the client's to resubmit.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	// The stall guard here is a connection read deadline, refreshed
	// once per read-ahead batch, not workload's pump-goroutine
	// stallReader: an abandoned read on an http request body holds the
	// body's mutex, which would wedge the connection teardown. A
	// deadline makes the blocked read itself return. (stallReader is
	// for plain byte streams — pipes, files.)
	lim := s.cfg.limits()
	rc := http.NewResponseController(w)
	defer rc.SetReadDeadline(time.Time{})
	src := workload.NewNDJSONSourceLimited(r.Body, workload.SourceLimits{MaxLineBytes: lim.MaxLineBytes})
	res := AdmitResult{FirstID: -1}
	fail := func(status int, err error) {
		res.Error = err.Error()
		writeJSON(w, status, res)
	}
	batch := s.getBatch()
	sent := false // the engine owns batch's backing array
	for {
		rc.SetReadDeadline(time.Now().Add(lim.Stall))
		batch = batch[:0]
		for len(batch) < admitReadAhead {
			j, ok := src.Next()
			if !ok {
				break
			}
			batch = append(batch, j)
		}
		if len(batch) == 0 {
			break
		}
		br := s.admitBatch(batch)
		if br.accepted > 0 {
			sent = true
			if res.FirstID < 0 {
				res.FirstID = br.firstID
			}
			res.Accepted += br.accepted
		}
		switch br.outcome {
		case admitOK:
			if len(batch) < admitReadAhead {
				// Short read: the source is exhausted or failed;
				// src.Err below distinguishes.
				goto drained
			}
			if sent {
				batch = s.getBatch()
				sent = false
			}
			continue
		case admitShed:
			res.Shed = 1
			w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(s.cfg.retryAfter().Seconds()))))
			fail(http.StatusTooManyRequests, fmt.Errorf("server: shedding load (see /stats); job %d of the batch and everything after it were not admitted", res.Accepted))
			return
		case admitDraining:
			fail(http.StatusServiceUnavailable, fmt.Errorf("server: draining; no new jobs"))
			return
		case admitDead:
			fail(http.StatusServiceUnavailable, fmt.Errorf("server: engine failed (see /stats)"))
			return
		case admitInvalid:
			fail(http.StatusBadRequest, fmt.Errorf("job %d of the batch: %w", res.Accepted, br.err))
			return
		}
	}
drained:
	if !sent {
		s.putBatch(batch)
	}
	if err := src.Err(); err != nil {
		s.countRejected()
		status := http.StatusBadRequest
		var ne net.Error
		if errors.Is(err, workload.ErrStalled) || (errors.As(err, &ne) && ne.Timeout()) {
			status = http.StatusRequestTimeout
			err = fmt.Errorf("server: submission stalled past %v: %w", lim.Stall, workload.ErrStalled)
		}
		if errors.Is(err, workload.ErrLineTooLong) {
			status = http.StatusRequestEntityTooLarge
		}
		fail(status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.Healthy() {
		http.Error(w, "engine failed", http.StatusInternalServerError)
		return
	}
	w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		http.Error(w, "not admitting", http.StatusServiceUnavailable)
		return
	}
	w.Write([]byte("ok\n"))
}

// handleCompletions streams completions as NDJSON until the run
// drains, the subscriber falls behind (dropped), or the client goes
// away. Lines are the engine's own bytes: identical to what
// sim.NDJSONSink writes offline.
func (s *Server) handleCompletions(w http.ResponseWriter, r *http.Request) {
	id, sub := s.subscribe()
	defer s.unsubscribe(id)
	w.Header().Set("Content-Type", ndjsonType)
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	for {
		select {
		case line, ok := <-sub.ch:
			if !ok {
				return
			}
			if _, err := w.Write(line); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleDrain initiates (or joins) the graceful drain and responds
// with the final stats once every accepted job has completed.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	if err := s.Drain(); err != nil {
		writeJSON(w, http.StatusInternalServerError, s.Stats())
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}
