// A small client for the daemon: NDJSON submission with
// Retry-After-honoring backoff, stats, drain, and the completion
// stream.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"treesched/internal/workload"
)

// Client talks to one treeschedd daemon.
type Client struct {
	// Base is the daemon's base URL (e.g. "http://127.0.0.1:7077").
	Base string
	// HTTP is the transport (http.DefaultClient when nil).
	HTTP *http.Client
	// Retries is how many times Submit re-attempts the unadmitted
	// tail of a batch after a 429, sleeping the server's Retry-After
	// between attempts. 0 means a shed batch returns immediately with
	// Shed set — the right mode when the caller generates later
	// releases itself, since re-submitting the same releases cannot
	// drain the server's fluid backlog (see Config.RetryAfter).
	Retries int
	// Sleep is the backoff sleeper (time.Sleep when nil); injectable
	// for tests.
	Sleep func(time.Duration)
}

// SubmitResult sums a Submit call across its retry attempts.
type SubmitResult struct {
	// Accepted is the total number of jobs admitted; FirstID is the
	// dense engine ID of the first one (-1 if none).
	Accepted int
	FirstID  int
	// Shed is how many jobs remained unadmitted because the server
	// was shedding when the attempts ran out. Shed > 0 is a normal
	// outcome under overload, not an error.
	Shed int
	// Attempts counts POSTs made (1 without retries).
	Attempts int
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Submit posts jobs as one NDJSON batch, retrying the unadmitted tail
// on 429 up to Retries times. Jobs must be release-ordered and at or
// after the server's admitted frontier. A non-nil error means the
// submission failed (bad request, draining, transport); shedding with
// retries exhausted is reported via SubmitResult.Shed instead.
func (c *Client) Submit(ctx context.Context, jobs []workload.Job) (SubmitResult, error) {
	total := SubmitResult{FirstID: -1}
	remaining := jobs
	for {
		total.Attempts++
		res, status, retryAfter, err := c.post(ctx, remaining)
		if err != nil {
			return total, err
		}
		total.Accepted += res.Accepted
		if total.FirstID < 0 && res.FirstID >= 0 {
			total.FirstID = res.FirstID
		}
		switch status {
		case http.StatusOK:
			return total, nil
		case http.StatusTooManyRequests:
			remaining = remaining[res.Accepted:]
			if total.Attempts > c.Retries {
				total.Shed = len(remaining)
				return total, nil
			}
			c.sleep(retryAfter)
		default:
			return total, fmt.Errorf("server: submit: %s (HTTP %d)", res.Error, status)
		}
	}
}

// postBufs recycles Submit body buffers: a batch body can run to
// hundreds of kilobytes, and pooling it keeps repeated submissions
// from handing the garbage collector a fresh buffer per POST.
var postBufs = sync.Pool{New: func() any { return new([]byte) }}

// post makes one POST /jobs attempt. The body is built with the
// append codec (workload.AppendJob) into one pooled buffer — same
// bytes as json.Encoder, without the per-job reflective marshal. The
// buffer is sized for full-precision floats up front so a large
// batch encodes into one allocation instead of a doubling cascade.
func (c *Client) post(ctx context.Context, jobs []workload.Job) (AdmitResult, int, time.Duration, error) {
	bp := postBufs.Get().(*[]byte)
	defer postBufs.Put(bp)
	if cap(*bp) < 128*len(jobs) {
		*bp = make([]byte, 0, 128*len(jobs))
	}
	buf := (*bp)[:0]
	for i := range jobs {
		var err error
		if buf, err = workload.AppendJob(buf, &jobs[i]); err != nil {
			return AdmitResult{}, 0, 0, err
		}
		buf = append(buf, '\n')
	}
	*bp = buf
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/jobs", bytes.NewReader(buf))
	if err != nil {
		return AdmitResult{}, 0, 0, err
	}
	req.Header.Set("Content-Type", ndjsonType)
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return AdmitResult{}, 0, 0, err
	}
	defer resp.Body.Close()
	var res AdmitResult
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		return AdmitResult{}, resp.StatusCode, 0, fmt.Errorf("server: submit: decoding response (HTTP %d): %w", resp.StatusCode, err)
	}
	retryAfter := time.Second
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	return res, resp.StatusCode, retryAfter, nil
}

// Stats fetches /stats.
func (c *Client) Stats(ctx context.Context) (StatsView, error) {
	var v StatsView
	err := c.getJSON(ctx, "/stats", &v)
	return v, err
}

// Drain posts /drain and returns the final stats; it blocks until
// every accepted job has completed.
func (c *Client) Drain(ctx context.Context) (StatsView, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/drain", nil)
	if err != nil {
		return StatsView{}, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return StatsView{}, err
	}
	defer resp.Body.Close()
	var v StatsView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return v, fmt.Errorf("server: drain: decoding response (HTTP %d): %w", resp.StatusCode, err)
	}
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("server: drain failed (HTTP %d): %s", resp.StatusCode, v.Err)
	}
	return v, nil
}

// Completions opens the completion stream: the caller reads NDJSON
// sim.JobMetrics lines from the returned reader until the daemon
// drains (EOF). Close it to unsubscribe.
func (c *Client) Completions(ctx context.Context) (io.ReadCloser, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/completions", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("server: completions: HTTP %d", resp.StatusCode)
	}
	return resp.Body, nil
}

func (c *Client) getJSON(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("server: GET %s: HTTP %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
