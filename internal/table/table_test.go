package table

import (
	"bytes"
	"strings"
	"testing"
)

func sample() *Table {
	t := New("Demo", "name", "value")
	t.AddRow("alpha", 1.5)
	t.AddRow("beta, gamma", 2)
	t.AddNote("generated for tests")
	return t
}

func TestText(t *testing.T) {
	out := sample().Text()
	for _, want := range []string{"Demo", "name", "alpha", "1.5", "note: generated"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text output missing %q:\n%s", want, out)
		}
	}
	// Alignment: header and row start columns match.
	lines := strings.Split(out, "\n")
	var header, row string
	for i, l := range lines {
		if strings.HasPrefix(l, "name") {
			header, row = l, lines[i+2]
			break
		}
	}
	if strings.Index(header, "value") != strings.Index(row, "1.5") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Markdown()
	if !strings.Contains(out, "### Demo") || !strings.Contains(out, "| name | value |") {
		t.Fatalf("bad markdown:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") {
		t.Fatal("missing separator row")
	}
}

func TestCSVEscaping(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"beta, gamma"`) {
		t.Fatalf("comma cell not quoted:\n%s", out)
	}
	if !strings.HasPrefix(out, "name,value\n") {
		t.Fatalf("bad header: %s", out)
	}
}

func TestCellFormats(t *testing.T) {
	if Cell(1.23456789) != "1.235" {
		t.Fatalf("float cell = %q", Cell(1.23456789))
	}
	if Cell(42) != "42" {
		t.Fatalf("int cell = %q", Cell(42))
	}
	if Cell("x") != "x" {
		t.Fatalf("string cell = %q", Cell("x"))
	}
}

func TestQuoteEscaping(t *testing.T) {
	tb := New("q", "a")
	tb.AddRow(`say "hi"`)
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"say ""hi"""`) {
		t.Fatalf("quotes not escaped: %s", buf.String())
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tb := New("p", "col")
	tb.AddRow("|x| = 1")
	out := tb.Markdown()
	if !strings.Contains(out, `\|x\| = 1`) {
		t.Fatalf("pipes not escaped:\n%s", out)
	}
}
