// Package table renders experiment results as aligned text, GitHub
// Markdown, or CSV. Every experiment in internal/experiments produces
// one or more Tables; cmd/experiments writes them into EXPERIMENTS.md.
package table

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title   string
	Notes   []string
	Headers []string
	Rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with Cell.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = Cell(c)
	}
	t.Rows = append(t.Rows, row)
}

// AddNote attaches a footnote line rendered under the table.
func (t *Table) AddNote(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Cell formats a single value: floats get %.4g, everything else %v.
func Cell(v interface{}) string {
	switch x := v.(type) {
	case float64:
		return strconv.FormatFloat(x, 'g', 4, 64)
	case float32:
		return strconv.FormatFloat(float64(x), 'g', 4, 64)
	case string:
		return x
	default:
		return fmt.Sprintf("%v", v)
	}
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

// Text renders an aligned plain-text table.
func (t *Table) Text() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n%s\n", t.Title, strings.Repeat("=", len(t.Title)))
	}
	w := t.widths()
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", w[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", w[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Markdown renders a GitHub-flavored Markdown table. Pipe characters
// inside cells are escaped so they cannot break the table grammar.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	esc := func(cells []string) []string {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		return out
	}
	sb.WriteString("| " + strings.Join(esc(t.Headers), " | ") + " |\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	sb.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		sb.WriteString("| " + strings.Join(esc(row), " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "\n*%s*\n", n)
	}
	return sb.String()
}

// CSV writes the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
