package report

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"treesched/internal/experiments"
	"treesched/internal/table"
)

func fakeResults() []experiments.RunResult {
	tb := table.New("demo table", "a", "b")
	tb.AddRow(1, 2.5)
	out := &experiments.Output{Tables: []*table.Table{tb}}
	out.Texts = append(out.Texts, experiments.TextBlock{Title: "a figure", Body: "ascii art\n"})
	return []experiments.RunResult{{
		Exp:    &experiments.Experiment{ID: "Z1", Title: "demo", Paper: "Theorem 0"},
		Output: out,
	}}
}

func TestWriteMarkdown(t *testing.T) {
	var buf bytes.Buffer
	err := WriteMarkdown(&buf, fakeResults(), Meta{Seed: 7, Scale: 2, Date: "2026-07-06"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# EXPERIMENTS", "-seed 7 -scale 2", "2026-07-06",
		"- **Z1** — demo *(Theorem 0)*", // table of contents
		"## Z1 — demo", "**Paper artifact:** Theorem 0",
		"**a figure**", "ascii art", "| a | b |", "| 1 | 2.5 |",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestWriteMarkdownNoDate(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, fakeResults(), Meta{Seed: 1, Scale: 1}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), " on .") {
		t.Fatal("empty date rendered")
	}
}

func TestWriteText(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, fakeResults()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"=== Z1 — demo [Theorem 0]", "demo table", "a  b"} {
		if !strings.Contains(out, want) {
			t.Fatalf("text missing %q:\n%s", want, out)
		}
	}
}

func TestErrorPropagates(t *testing.T) {
	rs := []experiments.RunResult{{
		Exp: &experiments.Experiment{ID: "E"},
		Err: errors.New("boom"),
	}}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, rs, Meta{}); err == nil {
		t.Fatal("markdown swallowed the error")
	}
	if err := WriteText(&buf, rs); err == nil {
		t.Fatal("text swallowed the error")
	}
	if err := WriteCSVDir(t.TempDir(), rs); err == nil {
		t.Fatal("csv swallowed the error")
	}
}

func TestWriteCSVDir(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCSVDir(dir, fakeResults()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "Z1_0.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "a,b\n1,2.5\n") {
		t.Fatalf("csv contents: %s", data)
	}
}
