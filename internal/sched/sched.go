// Package sched provides the baseline leaf-assignment policies the
// paper's greedy rule is compared against: proximity-based,
// randomized, round-robin, queue-volume-aware and path-work-aware
// assignment. The node-level policies (SJF, FIFO, SRPT, LCFS) live in
// package sim; the paper's greedy assigner lives in package core.
package sched

import (
	"math"

	"treesched/internal/rng"
	"treesched/internal/sim"
	"treesched/internal/tree"
)

// eligible returns the leaves a job may be assigned to: all leaves,
// or only those below the job's origin in the arbitrary-origin
// extension.
func eligible(q *sim.Query, a *sim.Arrival) []tree.NodeID {
	if a.Origin == 0 {
		return q.Tree().Leaves()
	}
	t := q.Tree()
	if t.IsLeaf(a.Origin) {
		return []tree.NodeID{a.Origin}
	}
	return t.SubtreeLeaves(a.Origin)
}

// ClosestLeaf assigns the job to a leaf of minimum depth (minimum hop
// count), breaking ties by the smaller leaf processing time and then
// by node ID. It ignores congestion entirely — the paper's Section 3.1
// explains why this must fail under load.
type ClosestLeaf struct{}

// Name implements sim.Assigner.
func (ClosestLeaf) Name() string { return "ClosestLeaf" }

// ObliviousAssigner marks the decision as independent of engine state.
func (ClosestLeaf) ObliviousAssigner() {}

// Assign implements sim.Assigner.
func (ClosestLeaf) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	t := q.Tree()
	best := tree.None
	bestDepth, bestWork := math.MaxInt32, math.Inf(1)
	for _, v := range eligible(q, a) {
		d, w := t.Depth(v), a.LeafSize(t.LeafIndex(v))
		if d < bestDepth || (d == bestDepth && w < bestWork) {
			best, bestDepth, bestWork = v, d, w
		}
	}
	return best
}

// RandomLeaf assigns uniformly at random among eligible leaves.
type RandomLeaf struct {
	R *rng.Rand
}

// Name implements sim.Assigner.
func (*RandomLeaf) Name() string { return "RandomLeaf" }

// ObliviousAssigner marks the decision as independent of engine state.
func (*RandomLeaf) ObliviousAssigner() {}

// Assign implements sim.Assigner.
func (rl *RandomLeaf) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	ls := eligible(q, a)
	return ls[rl.R.Intn(len(ls))]
}

// RoundRobin cycles through the leaves in index order, the classic
// oblivious load balancer.
type RoundRobin struct {
	next int
}

// Name implements sim.Assigner.
func (*RoundRobin) Name() string { return "RoundRobin" }

// ObliviousAssigner marks the decision as independent of engine state.
func (*RoundRobin) ObliviousAssigner() {}

// Assign implements sim.Assigner.
func (rr *RoundRobin) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	ls := eligible(q, a)
	v := ls[rr.next%len(ls)]
	rr.next++
	return v
}

// LeastVolume assigns to the leaf minimizing the currently queued
// volume on its root-adjacent node plus the volume already assigned to
// the leaf itself — congestion-aware but priority-oblivious (it does
// not ask who would run first, unlike the paper's greedy rule).
type LeastVolume struct{}

// Name implements sim.Assigner.
func (LeastVolume) Name() string { return "LeastVolume" }

// Assign implements sim.Assigner. The per-leaf commitment splits into
// the volume already at the leaf (AvailVolume's snapshot aggregate)
// plus the store-and-forward backlog still upstream of it
// (AssignedUpstreamWork's maintained sum) — together equal to the
// LeafQueue scan this replaces, without walking the queue per leaf.
func (LeastVolume) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	t := q.Tree()
	best := tree.None
	bestCost := math.Inf(1)
	for _, v := range eligible(q, a) {
		cost := q.AvailVolume(t.Branch(v)) + q.AvailVolume(v) + q.AssignedUpstreamWork(v)
		cost += a.LeafSize(t.LeafIndex(v))
		if cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// MinPathWork assigns to the leaf minimizing the job's own total path
// processing time P_{j,v} = d_v·p_j + p_{j,v} (for unrelated leaves),
// the congestion-free optimum for an empty system.
type MinPathWork struct{}

// Name implements sim.Assigner.
func (MinPathWork) Name() string { return "MinPathWork" }

// ObliviousAssigner marks the decision as independent of engine state.
func (MinPathWork) ObliviousAssigner() {}

// Assign implements sim.Assigner.
func (MinPathWork) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	t := q.Tree()
	best := tree.None
	bestCost := math.Inf(1)
	for _, v := range eligible(q, a) {
		cost := float64(t.Depth(v)-1)*a.Size + a.LeafSize(t.LeafIndex(v))
		if cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// JoinShortestQueue assigns to the leaf whose root-adjacent node has
// the fewest queued jobs, ties by leaf queue length — the cardinality
// counterpart of LeastVolume.
type JoinShortestQueue struct{}

// Name implements sim.Assigner.
func (JoinShortestQueue) Name() string { return "JoinShortestQueue" }

// Assign implements sim.Assigner.
func (JoinShortestQueue) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	t := q.Tree()
	best := tree.None
	bestKey := math.Inf(1)
	for _, v := range eligible(q, a) {
		key := float64(q.AvailCount(t.Branch(v)))*1e6 + float64(len(q.LeafQueue(v)))
		if key < bestKey {
			best, bestKey = v, key
		}
	}
	return best
}
