package sched

import (
	"math"
	"testing"

	"treesched/internal/rng"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func emptySim(t *testing.T, tr *tree.Tree) *sim.Sim {
	t.Helper()
	return sim.New(tr, sim.Options{})
}

func TestClosestLeafPicksShallow(t *testing.T) {
	b := tree.NewBuilder()
	v0 := b.AddRouter(b.Root())
	shallow := b.AddLeaf(v0)
	v1 := b.AddRouter(v0)
	b.AddLeaf(v1)
	tr := b.MustFinalize()
	s := emptySim(t, tr)
	if got := (ClosestLeaf{}).Assign(s.Query(), &sim.Arrival{ID: 0, Size: 1}); got != shallow {
		t.Fatalf("ClosestLeaf chose %d, want %d", got, shallow)
	}
}

func TestClosestLeafTieBreaksOnWork(t *testing.T) {
	tr := tree.Star(2)
	s := emptySim(t, tr)
	a := &sim.Arrival{ID: 0, Size: 1, LeafSizes: []float64{5, 2}}
	if got := (ClosestLeaf{}).Assign(s.Query(), a); got != tr.Leaves()[1] {
		t.Fatalf("ClosestLeaf ignored leaf work: chose %d", got)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	tr := tree.Star(3)
	s := emptySim(t, tr)
	rr := &RoundRobin{}
	seen := map[tree.NodeID]int{}
	for i := 0; i < 6; i++ {
		seen[rr.Assign(s.Query(), &sim.Arrival{ID: i, Size: 1})]++
	}
	for _, l := range tr.Leaves() {
		if seen[l] != 2 {
			t.Fatalf("RoundRobin visited leaf %d %d times, want 2", l, seen[l])
		}
	}
}

func TestRandomLeafCoverage(t *testing.T) {
	tr := tree.Star(4)
	s := emptySim(t, tr)
	rl := &RandomLeaf{R: rng.New(1)}
	seen := map[tree.NodeID]bool{}
	for i := 0; i < 200; i++ {
		v := rl.Assign(s.Query(), &sim.Arrival{ID: i, Size: 1})
		if tr.LeafIndex(v) < 0 {
			t.Fatal("RandomLeaf returned non-leaf")
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Fatalf("RandomLeaf covered %d/4 leaves", len(seen))
	}
}

func TestLeastVolumeAvoidsLoad(t *testing.T) {
	tr := tree.Star(2)
	s := emptySim(t, tr)
	s.AdvanceTo(0)
	loaded := tr.Leaves()[0]
	for i := 0; i < 5; i++ {
		if _, err := s.Inject(&sim.Arrival{ID: i, Release: 0, Size: 3}, loaded); err != nil {
			t.Fatal(err)
		}
	}
	// Both leaves share the relay; the loaded leaf differs via its own
	// assigned queue.
	if got := (LeastVolume{}).Assign(s.Query(), &sim.Arrival{ID: 10, Release: 0, Size: 1}); got != tr.Leaves()[1] {
		t.Fatalf("LeastVolume chose the loaded leaf %d", got)
	}
}

func TestMinPathWorkUnrelated(t *testing.T) {
	// Deep-but-fast vs shallow-but-slow.
	b := tree.NewBuilder()
	v0 := b.AddRouter(b.Root())
	slow := b.AddLeaf(v0) // depth 2
	v1 := b.AddRouter(v0)
	fast := b.AddLeaf(v1) // depth 3
	tr := b.MustFinalize()
	s := emptySim(t, tr)
	a := &sim.Arrival{ID: 0, Size: 1, LeafSizes: make([]float64, 2)}
	a.LeafSizes[tr.LeafIndex(slow)] = 10 // path work 1+10 = 11
	a.LeafSizes[tr.LeafIndex(fast)] = 1  // path work 2+1 = 3
	if got := (MinPathWork{}).Assign(s.Query(), a); got != fast {
		t.Fatalf("MinPathWork chose %d, want fast leaf %d", got, fast)
	}
}

func TestJoinShortestQueue(t *testing.T) {
	tr := tree.BroomstickTree(2, 2, 1)
	s := emptySim(t, tr)
	s.AdvanceTo(0)
	b0 := tr.SubtreeLeaves(tr.RootAdjacent()[0])[0]
	for i := 0; i < 4; i++ {
		if _, err := s.Inject(&sim.Arrival{ID: i, Release: 0, Size: 2}, b0); err != nil {
			t.Fatal(err)
		}
	}
	got := (JoinShortestQueue{}).Assign(s.Query(), &sim.Arrival{ID: 9, Release: 0, Size: 1})
	if tr.Branch(got) != tr.RootAdjacent()[1] {
		t.Fatalf("JSQ joined the long queue (leaf %d)", got)
	}
}

func TestOriginRestriction(t *testing.T) {
	tr := tree.BroomstickTree(2, 3, 2)
	s := emptySim(t, tr)
	origin := tr.RootAdjacent()[1]
	assigners := []sim.Assigner{ClosestLeaf{}, &RandomLeaf{R: rng.New(2)}, &RoundRobin{}, LeastVolume{}, MinPathWork{}, JoinShortestQueue{}}
	for _, asg := range assigners {
		v := asg.Assign(s.Query(), &sim.Arrival{ID: 0, Size: 1, Origin: origin})
		if tr.Branch(v) != origin {
			t.Fatalf("%s violated origin restriction: leaf %d", asg.Name(), v)
		}
	}
	// Origin at a leaf pins the assignment.
	leafOrigin := tr.Leaves()[3]
	for _, asg := range assigners {
		if v := asg.Assign(s.Query(), &sim.Arrival{ID: 0, Size: 1, Origin: leafOrigin}); v != leafOrigin {
			t.Fatalf("%s ignored leaf origin", asg.Name())
		}
	}
}

// End-to-end: every baseline completes a mixed workload.
func TestBaselinesEndToEnd(t *testing.T) {
	tr := tree.FatTree(2, 2, 2)
	r := rng.New(3)
	trace, err := workload.Poisson(r, workload.GenConfig{N: 200, Size: workload.UniformSize{Lo: 1, Hi: 5}, Load: 0.8, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, asg := range []sim.Assigner{ClosestLeaf{}, &RandomLeaf{R: rng.New(4)}, &RoundRobin{}, LeastVolume{}, MinPathWork{}, JoinShortestQueue{}} {
		res, err := sim.Run(tr, trace, asg, sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", asg.Name(), err)
		}
		if res.Stats.Completed != 200 {
			t.Fatalf("%s completed %d/200", asg.Name(), res.Stats.Completed)
		}
	}
}

// scanLeastVolume is the retired reference form of LeastVolume: the
// per-leaf commitment computed by walking LeafQueue, which the
// shipped assigner now answers from the AvailVolume snapshot
// aggregate plus the maintained AssignedUpstreamWork sum.
func scanLeastVolumeCost(q *sim.Query, a *sim.Arrival, v tree.NodeID) float64 {
	t := q.Tree()
	cost := q.AvailVolume(t.Branch(v))
	for _, js := range q.LeafQueue(v) {
		cost += q.RemainingOn(js, v)
	}
	return cost + a.LeafSize(t.LeafIndex(v))
}

type scanLeastVolume struct{}

func (scanLeastVolume) Name() string { return "ScanLeastVolume" }

func (scanLeastVolume) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	best := tree.None
	bestCost := math.Inf(1)
	for _, v := range eligible(q, a) {
		if cost := scanLeastVolumeCost(q, a, v); cost < bestCost {
			best, bestCost = v, cost
		}
	}
	return best
}

// leastVolumeChecker drives a run with the aggregate-backed LeastVolume
// while re-deriving every decision with the LeafQueue scan on the same
// engine state, so the two rules are compared at each arrival rather
// than on diverging trajectories.
type leastVolumeChecker struct {
	t         *testing.T
	fast      LeastVolume
	ref       scanLeastVolume
	decisions int
}

func (c *leastVolumeChecker) Name() string { return "LeastVolumeChecker" }

func (c *leastVolumeChecker) Assign(q *sim.Query, a *sim.Arrival) tree.NodeID {
	got := c.fast.Assign(q, a)
	want := c.ref.Assign(q, a)
	c.decisions++
	if got != want {
		// The maintained upstream-work sum can differ from the scan by
		// final ulps (incremental adds vs a fresh left-to-right sum), so
		// a disagreement is only a failure when the costs genuinely
		// differ — a near-tie flip is the documented tolerance.
		cg := scanLeastVolumeCost(q, a, got)
		cw := scanLeastVolumeCost(q, a, want)
		if diff := cg - cw; diff > 1e-9*(1+math.Abs(cw)) {
			c.t.Errorf("job %d: aggregate picked leaf %d (scan cost %v), scan picked %d (cost %v)",
				a.ID, got, cg, want, cw)
		}
	}
	return got
}

// TestLeastVolumeMatchesScan checks decision equivalence of the
// aggregate-backed LeastVolume against the retired per-leaf LeafQueue
// scan across a grid of topologies, loads and seeds.
func TestLeastVolumeMatchesScan(t *testing.T) {
	trees := []*tree.Tree{
		tree.FatTree(2, 2, 2),
		tree.FatTree(4, 1, 2),
		tree.FatTree(2, 3, 1),
		tree.BroomstickTree(2, 3, 2),
	}
	total := 0
	for ti, tr := range trees {
		for li, load := range []float64{0.6, 0.9, 0.97} {
			for seed := uint64(1); seed <= 3; seed++ {
				r := rng.New(seed + uint64(ti*100+li*10))
				trace, err := workload.Poisson(r, workload.GenConfig{
					N:        300,
					Size:     workload.UniformSize{Lo: 0.5, Hi: 4},
					Load:     load,
					Capacity: float64(len(tr.RootAdjacent())),
				})
				if err != nil {
					t.Fatal(err)
				}
				chk := &leastVolumeChecker{t: t}
				res, err := sim.Run(tr, trace, chk, sim.Options{})
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats.Completed != 300 {
					t.Fatalf("tree %d load %v seed %d: completed %d/300", ti, load, seed, res.Stats.Completed)
				}
				total += chk.decisions
			}
		}
	}
	if total < 36*300 {
		t.Fatalf("checked only %d decisions", total)
	}
}
