// The front-door router and per-tree fault resolution. The router is
// deliberately blind to execution: it sees only the arrival sequence
// and a fluid model of each tree (offered work draining at root
// capacity). That keeps routing a pure function of the workload
// stream, so per-tree faults — which change how a tree *executes* its
// jobs — can never change which jobs a tree *receives*.
package fleet

import (
	"fmt"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/scenario"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// spillFactor is the local policy's tolerance: a job spills away from
// its home tree when the home's estimated drain time exceeds
// spillFactor times the fleet's best.
const spillFactor = 2.0

type router struct {
	policy  string
	caps    []float64
	backlog []float64 // estimated unserved work per tree
	last    []float64 // time each backlog estimate was advanced to
	rr      int
}

func newRouter(policy string, caps []float64) *router {
	return &router{
		policy:  policy,
		caps:    caps,
		backlog: make([]float64, len(caps)),
		last:    make([]float64, len(caps)),
	}
}

// route picks the tree for job j and charges j's work to its backlog
// estimate. Jobs must arrive in release order.
func (ro *router) route(j workload.Job) int {
	// Drain every estimate to the arrival instant.
	for i := range ro.backlog {
		d := ro.backlog[i] - (j.Release-ro.last[i])*ro.caps[i]
		if d < 0 {
			d = 0
		}
		ro.backlog[i] = d
		ro.last[i] = j.Release
	}
	var k int
	switch ro.policy {
	case "rr":
		k = ro.rr
		ro.rr = (ro.rr + 1) % len(ro.caps)
	case "jsq":
		k = ro.shortest()
	case "local":
		// Affinity first: the job's home is a stable hash of its ID.
		// Spill to the shortest queue only when home is badly behind.
		k = j.ID % len(ro.caps)
		best := ro.shortest()
		if ro.drain(k, j.Size) > spillFactor*ro.drain(best, j.Size) {
			k = best
		}
	default:
		// Run validates the policy before routing a single job.
		panic("fleet: unknown policy " + ro.policy)
	}
	ro.backlog[k] += j.Size
	return k
}

// drain estimates how long tree i would take to clear its backlog
// plus one more job of the given size.
func (ro *router) drain(i int, size float64) float64 {
	return (ro.backlog[i] + size) / ro.caps[i]
}

// shortest returns the tree with the minimum normalized backlog,
// lowest index on ties.
func (ro *router) shortest() int {
	k := 0
	best := ro.backlog[0] / ro.caps[0]
	for i := 1; i < len(ro.backlog); i++ {
		if d := ro.backlog[i] / ro.caps[i]; d < best {
			best, k = d, i
		}
	}
	return k
}

// resolveFaults turns one tree's fault spec into a concrete plan,
// drawing plan generators from the tree's own stream. Explicit event
// lists pass through untouched (they draw nothing).
func resolveFaults(fs *scenario.FaultSpec, r *rng.Rand, t *tree.Tree, span float64) (*faults.Plan, error) {
	switch {
	case fs.Plan.Name != "" && len(fs.Events) > 0:
		return nil, fmt.Errorf("faults.plan and faults.events are mutually exclusive")
	case fs.Plan.Name != "":
		return scenario.BuildFaultPlan(fs.Plan, r, t, span)
	case len(fs.Events) > 0:
		return &faults.Plan{Events: append([]faults.Event(nil), fs.Events...)}, nil
	default:
		return nil, fmt.Errorf("faults needs a plan or events")
	}
}
