// The front-door router and per-tree fault resolution. The router is
// deliberately blind to execution: it sees only the arrival sequence
// and a fluid model of each tree (offered work draining at root
// capacity). That keeps routing a pure function of the workload
// stream, so per-tree faults — which change how a tree *executes* its
// jobs — can never change which jobs a tree *receives*.
package fleet

import (
	"fmt"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/scenario"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// spillFactor is the local policy's tolerance: a job spills away from
// its home tree when the home's estimated drain time exceeds
// spillFactor times the fleet's best.
const spillFactor = 2.0

type router struct {
	policy string
	// est holds one fluid backlog estimator per tree — the same
	// incremental probe the serving daemon's admission controller
	// runs (sim.BacklogEstimator): offered work draining at the
	// tree's root capacity, blind to execution.
	est []*sim.BacklogEstimator
	rr  int
}

func newRouter(policy string, caps []float64) *router {
	est := make([]*sim.BacklogEstimator, len(caps))
	for i, c := range caps {
		est[i] = sim.NewBacklogEstimator(c)
	}
	return &router{policy: policy, est: est}
}

// route picks the tree for job j and charges j's work to its backlog
// estimate. Jobs must arrive in release order.
func (ro *router) route(j workload.Job) int {
	// Drain every estimate to the arrival instant.
	for _, e := range ro.est {
		e.AdvanceTo(j.Release)
	}
	var k int
	switch ro.policy {
	case "rr":
		k = ro.rr
		ro.rr = (ro.rr + 1) % len(ro.est)
	case "jsq":
		k = ro.shortest()
	case "local":
		// Affinity first: the job's home is a stable hash of its ID.
		// Spill to the shortest queue only when home is badly behind.
		k = j.ID % len(ro.est)
		best := ro.shortest()
		if ro.est[k].DrainTime(j.Size) > spillFactor*ro.est[best].DrainTime(j.Size) {
			k = best
		}
	default:
		// Run validates the policy before routing a single job.
		panic("fleet: unknown policy " + ro.policy)
	}
	ro.est[k].Offer(j.Release, j.Size)
	return k
}

// shortest returns the tree with the minimum estimated drain time,
// lowest index on ties.
func (ro *router) shortest() int {
	k := 0
	best := ro.est[0].DrainTime(0)
	for i := 1; i < len(ro.est); i++ {
		if d := ro.est[i].DrainTime(0); d < best {
			best, k = d, i
		}
	}
	return k
}

// resolveFaults turns one tree's fault spec into a concrete plan,
// drawing plan generators from the tree's own stream. Explicit event
// lists pass through untouched (they draw nothing).
func resolveFaults(fs *scenario.FaultSpec, r *rng.Rand, t *tree.Tree, span float64) (*faults.Plan, error) {
	switch {
	case fs.Plan.Name != "" && len(fs.Events) > 0:
		return nil, fmt.Errorf("faults.plan and faults.events are mutually exclusive")
	case fs.Plan.Name != "":
		return scenario.BuildFaultPlan(fs.Plan, r, t, span)
	case len(fs.Events) > 0:
		return &faults.Plan{Events: append([]faults.Event(nil), fs.Events...)}, nil
	default:
		return nil, fmt.Errorf("faults needs a plan or events")
	}
}
