// Package fleet runs a fleet-of-trees co-simulation: N independently
// built tree instances behind a front door that routes one shared
// workload stream across them (scenario.FleetSpec is the data, this
// package is the interpreter).
//
// Determinism is layered so that every source of randomness is
// partitioned and every partition is consumed before anything runs in
// parallel:
//
//   - The front-door workload draws from the scenario partition's
//     "workload"/"sizes"/"weights" streams — fleets always run keyed
//     (there is no legacy fleet history to preserve), so the stream a
//     subsystem sees depends only on (Seed, stream name).
//   - Routing is a pure function of the arrival sequence: the router
//     tracks a fluid backlog estimate per tree (offered work draining
//     at the tree's root capacity) and never observes execution, so a
//     fault slowing one tree cannot bend the routing of another.
//   - Tree i's fault plan draws from the "tree/<i>/faults" stream.
//     Changing tree i's plan — or giving it a different one via
//     Options.TreeFaults — cannot move a sibling's draws, which is
//     what makes sibling per-job output byte-identical under per-tree
//     fault edits (pinned by TestFaultIsolation).
//   - Per-tree execution is deterministic given its inputs, so trees
//     run on any number of workers with results slotted by index:
//     Options.Workers is purely a speed knob (pinned by
//     TestWorkersInvariance).
package fleet

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"treesched/internal/faults"
	"treesched/internal/rng"
	"treesched/internal/scenario"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// UnsupportedError reports a scenario feature the fleet layer
// deliberately refuses to run — typed, like the engine's
// StuckError/InternalError family, so callers can branch on the
// rejection with errors.As instead of matching message strings.
type UnsupportedError struct {
	// Feature names the rejected capability (e.g. "packetized runs").
	Feature string
	// Reason says why the fleet cannot honor it.
	Reason string
}

func (e *UnsupportedError) Error() string {
	return fmt.Sprintf("fleet: %s not supported: %s", e.Feature, e.Reason)
}

// Options tunes a fleet run beyond what the scenario describes.
type Options struct {
	// Workers is the number of trees simulated concurrently (0 or 1 =
	// sequential). Results are bit-identical at any setting.
	Workers int
	// TreeFaults overrides the scenario-level fault spec for specific
	// trees (index → spec, nil spec = no faults for that tree). Trees
	// not in the map keep the scenario's spec. Overriding one tree
	// never changes what its siblings draw or run.
	TreeFaults map[int]*scenario.FaultSpec
}

// TreeResult is one tree's slice of the fleet run.
type TreeResult struct {
	// Index is the tree's position in the fleet.
	Index int
	// Topology is the tree's topology spec.
	Topology scenario.Spec
	// GlobalIDs maps the tree's dense local job IDs back to front-door
	// IDs: local job j is front-door job GlobalIDs[j].
	GlobalIDs []int
	// FaultPlan is the tree's resolved fault plan (nil without faults).
	FaultPlan *faults.Plan
	// Result is the tree's simulation result (empty, with a nil Sim,
	// for a tree that was routed no jobs).
	Result *sim.Result
}

// WriteNDJSON writes the tree's per-job results in the engine's
// NDJSON form (stats header then one JobMetrics object per line).
// Job IDs are the tree's local dense IDs; use GlobalIDs to translate.
func (t *TreeResult) WriteNDJSON(w io.Writer) error { return t.Result.WriteNDJSON(w) }

// TreeCard is the serializable per-tree scorecard row.
type TreeCard struct {
	Tree         int     `json:"tree"`
	Topology     string  `json:"topology"`
	Jobs         int     `json:"jobs"`
	Work         float64 `json:"work"`
	TotalFlow    float64 `json:"total_flow"`
	WeightedFlow float64 `json:"weighted_flow"`
	MaxFlow      float64 `json:"max_flow"`
	Makespan     float64 `json:"makespan"`
	Faults       int     `json:"faults"`
}

// Scorecard is the fleet-level summary: per-tree rows plus fleet
// aggregates. It is pure data and marshals deterministically, so two
// runs with the same key produce byte-identical JSON (the fleet
// determinism smoke in cmd/bench pins this across worker counts).
type Scorecard struct {
	Trees        int        `json:"trees"`
	Policy       string     `json:"policy"`
	Seed         uint64     `json:"seed"`
	Jobs         int        `json:"jobs"`
	TotalFlow    float64    `json:"total_flow"`
	WeightedFlow float64    `json:"weighted_flow"`
	MaxFlow      float64    `json:"max_flow"`
	Makespan     float64    `json:"makespan"`
	PerTree      []TreeCard `json:"per_tree"`
}

// WriteJSON writes the scorecard as indented JSON.
func (s *Scorecard) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Result is a completed fleet run.
type Result struct {
	Scenario  *scenario.Scenario
	Trees     []TreeResult
	Scorecard Scorecard
}

// Run executes a fleet scenario: build every tree, generate the
// front-door workload, route it, run each tree, and aggregate.
func Run(sc *scenario.Scenario, opts Options) (*Result, error) {
	fl := sc.Fleet
	if fl == nil {
		return nil, fmt.Errorf("fleet: scenario has no fleet spec (single-tree scenarios run through scenario.Build)")
	}
	if sc.RNG == "legacy" {
		return nil, &UnsupportedError{Feature: "rng legacy", Reason: "fleets require rng keyed (there is no legacy fleet draw order to preserve)"}
	}
	if sc.Engine.Packetized {
		return nil, &UnsupportedError{Feature: "packetized runs", Reason: "per-packet completions would need fleet-level job accounting the router does not model"}
	}
	if sc.Workload.Unrelated != nil || len(sc.Workload.RelatedSpeeds) > 0 {
		return nil, &UnsupportedError{Feature: "per-leaf workloads (unrelated/related)", Reason: "trees may have different leaf counts"}
	}
	if len(sc.Workload.Jobs) > 0 && sc.Workload.MaxWeight > 0 {
		return nil, &UnsupportedError{Feature: "inline jobs with max_weight", Reason: "weight assignment would redraw the inline jobs"}
	}
	n, err := fl.NumTrees()
	if err != nil {
		return nil, err
	}
	pol, err := fl.EffPolicy()
	if err != nil {
		return nil, err
	}

	// Resolve and build every topology up front: routing needs the
	// root capacities before a single job is drawn.
	topos := make([]scenario.Spec, n)
	bases := make([]*tree.Tree, n)
	caps := make([]float64, n)
	capSum := 0.0
	for i := range topos {
		if len(fl.Topos) > 0 {
			topos[i] = fl.Topos[i]
		} else {
			if sc.Topology.Name == "" {
				return nil, fmt.Errorf("fleet: no topology: set the scenario topology or fleet.topos")
			}
			topos[i] = sc.Topology
		}
		if bases[i], err = scenario.BuildTopo(topos[i]); err != nil {
			return nil, fmt.Errorf("fleet: tree %d: %w", i, err)
		}
		caps[i] = float64(len(bases[i].RootAdjacent()))
		capSum += caps[i]
	}

	// Front-door workload: one keyed partition per run, seeded by the
	// scenario. The default capacity the load is calibrated against is
	// the whole fleet's root capacity.
	p := rng.NewPartitioned(rng.SimulationKey(sc.Seed))
	w := sc.Workload
	if w.Capacity == 0 {
		w.Capacity = capSum
	}
	trace, err := w.GenerateRNG(p)
	if err != nil {
		return nil, fmt.Errorf("fleet: workload: %w", err)
	}
	span := trace.Span()

	// Route. Each tree's slice keeps front-door release times and gets
	// fresh dense local IDs (the engine requires ID == position).
	ro := newRouter(pol, caps)
	perTree := make([][]workload.Job, n)
	globals := make([][]int, n)
	for _, j := range trace.Jobs {
		k := ro.route(j)
		local := j
		local.ID = len(perTree[k])
		perTree[k] = append(perTree[k], local)
		globals[k] = append(globals[k], j.ID)
	}

	// Per-tree fault plans, drawn sequentially in tree order from
	// tree-scoped streams so plans are independent of each other and
	// of routing. The span offered to plan generators is the fleet
	// span: a tree's fault window must not depend on which jobs
	// happened to be routed to it.
	res := &Result{Scenario: sc, Trees: make([]TreeResult, n)}
	children := make([]*scenario.Scenario, n)
	for i := 0; i < n; i++ {
		fs := sc.Faults
		if over, ok := opts.TreeFaults[i]; ok {
			fs = over
		}
		var childFaults *scenario.FaultSpec
		var treePlan *faults.Plan
		if fs != nil {
			stream := p.Scoped(fmt.Sprintf("tree/%d", i)).Stream("faults")
			treePlan, err = resolveFaults(fs, stream, bases[i], span)
			if err != nil {
				return nil, fmt.Errorf("fleet: tree %d: %w", i, err)
			}
			childFaults = &scenario.FaultSpec{Events: treePlan.Events, Recovery: fs.Recovery}
		}
		children[i] = &scenario.Scenario{
			Topology: topos[i],
			Workload: scenario.Workload{Jobs: perTree[i]},
			Policy:   sc.Policy,
			Assigner: sc.Assigner,
			Eps:      sc.Eps,
			Seed:     sc.Seed,
			RNG:      "keyed",
			// Offset per tree so randomized assigners do not mirror
			// each other's choices across the fleet.
			AssignerSeed: sc.EffAssignerSeed() + uint64(i),
			Speed:        sc.Speed,
			Faults:       childFaults,
			Engine: scenario.Engine{
				Instrument:   sc.Engine.Instrument,
				ScanQueue:    sc.Engine.ScanQueue,
				RecordSlices: sc.Engine.RecordSlices,
				Shards:       sc.Engine.Shards,
				Split:        sc.Engine.Split,
				RetainJobs:   sc.Engine.RetainJobs,
			},
		}
		res.Trees[i] = TreeResult{Index: i, Topology: topos[i], GlobalIDs: globals[i], FaultPlan: treePlan}
	}

	// Run the trees. All randomness is already drawn; each tree is
	// deterministic in isolation, results land in their own slot, so
	// the worker count cannot change a byte of output.
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	idx := make(chan int)
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = runTree(children[i], &res.Trees[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			return nil, fmt.Errorf("fleet: tree %d: %w", i, e)
		}
	}

	res.Scorecard = scorecard(sc, pol, res.Trees)
	return res, nil
}

// runTree executes one tree's child scenario into its result slot.
// A tree that was routed no jobs gets an empty result without
// touching the engine (the scenario layer cannot express an empty
// generated trace).
func runTree(child *scenario.Scenario, out *TreeResult) error {
	if len(child.Workload.Jobs) == 0 {
		out.Result = &sim.Result{}
		return nil
	}
	in, err := child.Build()
	if err != nil {
		return err
	}
	out.Result, err = in.Run()
	return err
}

// scorecard aggregates per-tree results in index order (fixed
// summation order keeps the floats identical across worker counts).
func scorecard(sc *scenario.Scenario, pol string, trees []TreeResult) Scorecard {
	card := Scorecard{Trees: len(trees), Policy: pol, Seed: sc.Seed}
	for i := range trees {
		t := &trees[i]
		row := TreeCard{
			Tree:         i,
			Topology:     t.Topology.String(),
			Jobs:         len(t.GlobalIDs),
			TotalFlow:    t.Result.Stats.TotalFlow,
			WeightedFlow: t.Result.Stats.WeightedFlow,
			MaxFlow:      t.Result.Stats.MaxFlow,
			Makespan:     t.Result.Stats.Makespan,
		}
		if t.FaultPlan != nil {
			row.Faults = len(t.FaultPlan.Events)
		}
		for _, j := range t.Result.Jobs {
			row.Work += j.PathWork
		}
		card.Jobs += row.Jobs
		card.TotalFlow += row.TotalFlow
		card.WeightedFlow += row.WeightedFlow
		if row.MaxFlow > card.MaxFlow {
			card.MaxFlow = row.MaxFlow
		}
		if row.Makespan > card.Makespan {
			card.Makespan = row.Makespan
		}
		card.PerTree = append(card.PerTree, row)
	}
	return card
}
