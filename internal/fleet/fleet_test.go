package fleet

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"treesched/internal/scenario"
	"treesched/internal/workload"
)

func fleetScenario(t *testing.T, compact string) *scenario.Scenario {
	t.Helper()
	sc, err := scenario.ParseCompact(compact)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestRoutingPartition: every front-door job lands on exactly one
// tree, with its release and size intact, and round-robin lands job k
// on tree k mod n.
func TestRoutingPartition(t *testing.T) {
	sc := fleetScenario(t, "topo=fattree:2,2,2 n=200 size=uniform:1,16 load=0.9 seed=3 fleet=3 fleetpolicy=rr")
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the front door exactly as the fleet does to compare.
	p, err := (&scenario.Scenario{Seed: 3, RNG: "keyed", Workload: sc.Workload}).NewPartition()
	if err != nil {
		t.Fatal(err)
	}
	w := sc.Workload
	w.Capacity = 3 * 2 // three fattree:2,2,2 trees, two root-adjacent each
	trace, err := w.GenerateRNG(p)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]int, len(trace.Jobs))
	for ti := range res.Trees {
		tr := &res.Trees[ti]
		for li, gid := range tr.GlobalIDs {
			seen[gid]++
			if gid%3 != ti {
				t.Fatalf("rr routed front-door job %d to tree %d", gid, ti)
			}
			// The local job is the front-door job renumbered.
			in := trace.Jobs[gid]
			if tr.Result.Jobs[li].Release != in.Release {
				t.Fatalf("tree %d local job %d release %v, front door %v", ti, li, tr.Result.Jobs[li].Release, in.Release)
			}
		}
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("front-door job %d routed %d times", id, c)
		}
	}
	if res.Scorecard.Jobs != len(trace.Jobs) {
		t.Fatalf("scorecard counts %d jobs, front door emitted %d", res.Scorecard.Jobs, len(trace.Jobs))
	}
}

// TestLocalAffinity: under light load the local policy keeps every
// job on its home tree (ID mod n).
func TestLocalAffinity(t *testing.T) {
	sc := fleetScenario(t, "topo=star:4 n=100 size=uniform:1,2 load=0.1 seed=5 fleet=4 fleetpolicy=local")
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range res.Trees {
		for _, gid := range res.Trees[ti].GlobalIDs {
			if gid%4 != ti {
				t.Fatalf("lightly loaded local policy moved job %d off its home tree (got tree %d)", gid, ti)
			}
		}
	}
}

// TestJSQBalances: join-shortest-queue may not starve any tree of a
// uniformly loaded fleet of identical trees.
func TestJSQBalances(t *testing.T) {
	sc := fleetScenario(t, "topo=fattree:2,2,2 n=400 size=uniform:1,16 load=0.9 seed=7 fleet=4 fleetpolicy=jsq")
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ti := range res.Trees {
		if n := len(res.Trees[ti].GlobalIDs); n < 400/4/4 {
			t.Fatalf("jsq starved tree %d: %d of 400 jobs", ti, n)
		}
	}
}

// TestWorkersInvariance: the worker count is a pure speed knob — the
// scorecard and every tree's NDJSON are byte-identical at any value.
func TestWorkersInvariance(t *testing.T) {
	const spec = "topo=fattree:2,2,2 n=300 size=uniform:1,16 load=0.9 seed=11 maxweight=5 fleet=4 fleetpolicy=jsq faults=brownouts:2,5,0.5"
	run := func(workers int) (*Result, []byte, [][]byte) {
		t.Helper()
		res, err := Run(fleetScenario(t, spec), Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var card bytes.Buffer
		if err := res.Scorecard.WriteJSON(&card); err != nil {
			t.Fatal(err)
		}
		var nd [][]byte
		for i := range res.Trees {
			var b bytes.Buffer
			if err := res.Trees[i].WriteNDJSON(&b); err != nil {
				t.Fatal(err)
			}
			nd = append(nd, b.Bytes())
		}
		return res, card.Bytes(), nd
	}
	_, card1, nd1 := run(1)
	_, card4, nd4 := run(4)
	if !bytes.Equal(card1, card4) {
		t.Fatalf("scorecard changed with worker count:\n workers=1:\n%s\n workers=4:\n%s", card1, card4)
	}
	for i := range nd1 {
		if !bytes.Equal(nd1[i], nd4[i]) {
			t.Fatalf("tree %d NDJSON changed with worker count", i)
		}
	}
}

// TestFaultIsolation pins the acceptance criterion: changing one
// tree's fault plan leaves every sibling's per-job NDJSON
// byte-identical (routing is execution-blind and fault draws are
// tree-scoped).
func TestFaultIsolation(t *testing.T) {
	const spec = "topo=fattree:2,2,2 n=300 size=uniform:1,16 load=0.9 seed=13 fleet=3 fleetpolicy=jsq faults=brownouts:2,5,0.5"
	ndjson := func(opts Options) [][]byte {
		t.Helper()
		res, err := Run(fleetScenario(t, spec), opts)
		if err != nil {
			t.Fatal(err)
		}
		var nd [][]byte
		for i := range res.Trees {
			var b bytes.Buffer
			if err := res.Trees[i].WriteNDJSON(&b); err != nil {
				t.Fatal(err)
			}
			nd = append(nd, b.Bytes())
		}
		return nd
	}
	base := ndjson(Options{})
	harsher, err := scenario.ParseSpec("outages:5,20")
	if err != nil {
		t.Fatal(err)
	}
	edited := ndjson(Options{TreeFaults: map[int]*scenario.FaultSpec{
		0: {Plan: harsher},
	}})
	if bytes.Equal(base[0], edited[0]) {
		t.Fatal("tree 0's output did not change under a harsher fault plan (the edit did nothing)")
	}
	for i := 1; i < len(base); i++ {
		if !bytes.Equal(base[i], edited[i]) {
			t.Fatalf("tree %d's NDJSON changed when only tree 0's fault plan was edited", i)
		}
	}
	// Dropping a tree's faults entirely is likewise isolated.
	cleared := ndjson(Options{TreeFaults: map[int]*scenario.FaultSpec{1: nil}})
	for i := 0; i < len(base); i++ {
		if i == 1 {
			continue
		}
		if !bytes.Equal(base[i], cleared[i]) {
			t.Fatalf("tree %d's NDJSON changed when only tree 1's faults were cleared", i)
		}
	}
}

// TestHeterogeneousTopos: per-tree topologies via fleet.topos, with
// capacity-weighted jsq routing.
func TestHeterogeneousTopos(t *testing.T) {
	sc := fleetScenario(t, "n=200 size=uniform:1,16 load=0.8 seed=17 fleetpolicy=jsq trees=fattree:2,2,2;star:8;line:4")
	res, err := Run(sc, Options{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scorecard.Trees != 3 || len(res.Scorecard.PerTree) != 3 {
		t.Fatalf("scorecard has %d/%d trees, want 3", res.Scorecard.Trees, len(res.Scorecard.PerTree))
	}
	wantTopos := []string{"fattree:2,2,2", "star:8", "line:4"}
	for i, row := range res.Scorecard.PerTree {
		if row.Topology != wantTopos[i] {
			t.Fatalf("tree %d topology %q, want %q", i, row.Topology, wantTopos[i])
		}
	}
	if res.Scorecard.Jobs != 200 {
		t.Fatalf("scorecard counts %d jobs, want 200", res.Scorecard.Jobs)
	}
}

// TestEmptyTree: a fleet with more trees than jobs leaves some trees
// idle; those report empty rows instead of failing.
func TestEmptyTree(t *testing.T) {
	sc := fleetScenario(t, "topo=star:2 n=2 size=uniform:1,2 load=0.5 seed=19 fleet=4 fleetpolicy=rr")
	res, err := Run(sc, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Trees[3].GlobalIDs); n != 0 {
		t.Fatalf("tree 3 should be idle, got %d jobs", n)
	}
	if res.Scorecard.PerTree[3].TotalFlow != 0 {
		t.Fatal("idle tree reported nonzero flow")
	}
	if res.Scorecard.Jobs != 2 {
		t.Fatalf("scorecard counts %d jobs, want 2", res.Scorecard.Jobs)
	}
}

// TestRunValidation: the fleet layer rejects what it cannot keep
// deterministic or meaningful.
func TestRunValidation(t *testing.T) {
	reject := func(typed bool, mutate func(*scenario.Scenario)) {
		t.Helper()
		sc := fleetScenario(t, "topo=star:4 n=10 size=uniform:1,4 load=0.5 fleet=2")
		mutate(sc)
		_, err := Run(sc, Options{})
		if err == nil {
			t.Fatal("Run accepted an invalid fleet scenario")
		}
		var ue *UnsupportedError
		if got := errors.As(err, &ue); got != typed {
			t.Fatalf("errors.As(err, *UnsupportedError) = %v, want %v for %q", got, typed, err)
		}
		if typed && (ue.Feature == "" || ue.Reason == "") {
			t.Fatalf("UnsupportedError missing feature/reason: %+v", ue)
		}
	}
	// Structurally invalid scenarios are plain errors ...
	reject(false, func(sc *scenario.Scenario) { sc.Fleet = nil })
	reject(false, func(sc *scenario.Scenario) { sc.Fleet.Policy = "zeta" })
	reject(false, func(sc *scenario.Scenario) {
		sc.Fleet.Trees = 2
		sc.Fleet.Topos = []scenario.Spec{{Name: "star", Args: []float64{4}}}
	})
	reject(false, func(sc *scenario.Scenario) { sc.Topology = scenario.Spec{}; sc.Fleet.Topos = nil })
	// ... while valid-but-unsupported features carry the typed
	// rejection so callers can branch on it.
	reject(true, func(sc *scenario.Scenario) { sc.RNG = "legacy" })
	reject(true, func(sc *scenario.Scenario) { sc.Engine.Packetized = true })
	reject(true, func(sc *scenario.Scenario) { sc.Workload.Unrelated = &scenario.Unrelated{Lo: 0.5, Hi: 2} })
	reject(true, func(sc *scenario.Scenario) { sc.Workload.RelatedSpeeds = []float64{1, 2} })
	reject(true, func(sc *scenario.Scenario) {
		sc.Workload.Jobs = []workload.Job{{ID: 0, Release: 0, Size: 1}}
		sc.Workload.N = 0
		sc.Workload.Size = scenario.Spec{}
		sc.Workload.MaxWeight = 3
	})
}

// TestPacketizedRejectionIsBranchable pins the contract the ROADMAP's
// packetized-fleet follow-on needs: a caller probing whether this
// build supports packetized fleets can branch on the typed error
// without parsing the message.
func TestPacketizedRejectionIsBranchable(t *testing.T) {
	sc := fleetScenario(t, "topo=star:4 n=10 size=uniform:1,4 load=0.5 fleet=2")
	sc.Engine.Packetized = true
	_, err := Run(sc, Options{})
	var ue *UnsupportedError
	if !errors.As(err, &ue) {
		t.Fatalf("packetized rejection is not an *UnsupportedError: %v", err)
	}
	if ue.Feature != "packetized runs" {
		t.Fatalf("packetized rejection names feature %q", ue.Feature)
	}
}

// TestTreeStreamsDiffer: sibling trees draw genuinely different fault
// plans from the same spec (the scoped streams are not aliases).
func TestTreeStreamsDiffer(t *testing.T) {
	sc := fleetScenario(t, "topo=fattree:2,2,2 n=100 size=uniform:1,16 load=0.9 seed=23 fleet=2 fleetpolicy=rr faults=outages:6,5")
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(res.Trees[0].FaultPlan.Events, res.Trees[1].FaultPlan.Events) {
		t.Fatal("both trees drew the identical fault plan — the per-tree streams alias")
	}
}

// TestInlineJobsFleet: an inline workload routes through the fleet
// without any generation draws.
func TestInlineJobsFleet(t *testing.T) {
	sc := fleetScenario(t, "fleet=2 fleetpolicy=rr")
	sc.Topology = scenario.Spec{Name: "star", Args: []float64{4}}
	sc.Workload.Jobs = []workload.Job{
		{ID: 0, Release: 0, Size: 2}, {ID: 1, Release: 1, Size: 3}, {ID: 2, Release: 2, Size: 1},
	}
	res, err := Run(sc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Trees[0].GlobalIDs); got != 2 {
		t.Fatalf("tree 0 got %d jobs, want 2 (rr over 3 jobs)", got)
	}
	if got := len(res.Trees[1].GlobalIDs); got != 1 {
		t.Fatalf("tree 1 got %d jobs, want 1", got)
	}
}
