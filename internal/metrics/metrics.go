// Package metrics aggregates simulation results into the quantities
// the experiments report: flow-time summaries, per-size-class
// breakdowns, ℓ_k norms, node utilizations, and competitive-ratio
// estimates against lower bounds.
package metrics

import (
	"math"
	"sort"

	"treesched/internal/sim"
	"treesched/internal/stats"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// Flows extracts the per-job flow times of a run.
func Flows(res *sim.Result) []float64 {
	out := make([]float64, len(res.Jobs))
	for i := range res.Jobs {
		out[i] = res.Jobs[i].Flow
	}
	return out
}

// FlowSummary summarizes the per-job flow-time distribution.
func FlowSummary(res *sim.Result) stats.Summary {
	return stats.Summarize(Flows(res))
}

// Stretch returns per-job flow divided by the job's congestion-free
// path work — how much congestion inflated each job.
func Stretch(res *sim.Result) []float64 {
	out := make([]float64, len(res.Jobs))
	for i := range res.Jobs {
		out[i] = res.Jobs[i].Flow / res.Jobs[i].PathWork
	}
	return out
}

// ClassFlow is the flow summary of one (1+eps)^k size class.
type ClassFlow struct {
	Class   int
	Size    float64
	Summary stats.Summary
}

// PerClass groups jobs by size class and summarizes each class's flow.
func PerClass(res *sim.Result, trace *workload.Trace, eps float64) []ClassFlow {
	byClass := make(map[int][]float64)
	for i := range res.Jobs {
		k := workload.ClassOf(trace.Jobs[i].Size, eps)
		byClass[k] = append(byClass[k], res.Jobs[i].Flow)
	}
	keys := make([]int, 0, len(byClass))
	for k := range byClass {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]ClassFlow, 0, len(keys))
	for _, k := range keys {
		out = append(out, ClassFlow{
			Class:   k,
			Size:    math.Pow(1+eps, float64(k)),
			Summary: stats.Summarize(byClass[k]),
		})
	}
	return out
}

// CompetitiveRatio divides the achieved total flow by a lower bound on
// OPT. Because the denominator is a lower bound, the result upper-
// bounds the instance's true ratio. Returns +Inf for a zero bound.
func CompetitiveRatio(res *sim.Result, lowerBound float64) float64 {
	if lowerBound <= 0 {
		return math.Inf(1)
	}
	return res.Stats.TotalFlow / lowerBound
}

// Utilization is one node's share of busy time over the makespan.
type Utilization struct {
	Node tree.NodeID
	Busy float64 // fraction of [0, makespan]
	Work float64 // total volume processed
}

// Utilizations reports per-node utilization of a completed run,
// ordered by node ID.
func Utilizations(res *sim.Result) []Utilization {
	t := res.Sim.Tree()
	mk := res.Stats.Makespan
	out := make([]Utilization, 0, t.NumNodes()-1)
	for v := tree.NodeID(1); int(v) < t.NumNodes(); v++ {
		busy, work := res.Sim.NodeUtilization(v)
		u := Utilization{Node: v, Work: work}
		if mk > 0 {
			u.Busy = busy / mk
		}
		out = append(out, u)
	}
	return out
}

// Bottleneck returns the node with the highest busy fraction.
func Bottleneck(res *sim.Result) Utilization {
	us := Utilizations(res)
	best := us[0]
	for _, u := range us[1:] {
		if u.Busy > best.Busy {
			best = u
		}
	}
	return best
}
