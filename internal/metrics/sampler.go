package metrics

import (
	"treesched/internal/sim"
	"treesched/internal/stats"
	"treesched/internal/tree"
)

// QueueSampler is an engine observer that records per-node queue
// lengths (number of available jobs) at every event, yielding
// time-weighted queue statistics. Install via sim.Options.Observer;
// combine with other observers by chaining.
type QueueSampler struct {
	lastT float64
	// time-weighted accumulation per node
	weighted map[tree.NodeID]float64
	maxLen   map[tree.NodeID]int
	lastLen  map[tree.NodeID]int
	total    float64
	started  bool
}

// NewQueueSampler creates an empty sampler.
func NewQueueSampler() *QueueSampler {
	return &QueueSampler{
		weighted: make(map[tree.NodeID]float64),
		maxLen:   make(map[tree.NodeID]int),
		lastLen:  make(map[tree.NodeID]int),
	}
}

// Observe implements the engine observer callback.
func (qs *QueueSampler) Observe(s *sim.Sim) {
	now := s.Now()
	if qs.started {
		dt := now - qs.lastT
		if dt > 0 {
			for v, l := range qs.lastLen {
				qs.weighted[v] += float64(l) * dt
			}
			qs.total += dt
		}
	}
	q := s.Query()
	t := s.Tree()
	for v := tree.NodeID(1); int(v) < t.NumNodes(); v++ {
		l := q.AvailCount(v)
		qs.lastLen[v] = l
		if l > qs.maxLen[v] {
			qs.maxLen[v] = l
		}
	}
	qs.lastT = now
	qs.started = true
}

// QueueStat is the time-averaged and maximum queue length of one node.
type QueueStat struct {
	Node tree.NodeID
	Avg  float64
	Max  int
}

// Stats returns per-node queue statistics, ordered by node ID.
func (qs *QueueSampler) Stats() []QueueStat {
	out := make([]QueueStat, 0, len(qs.weighted))
	ids := make([]tree.NodeID, 0, len(qs.lastLen))
	for v := range qs.lastLen {
		ids = append(ids, v)
	}
	// insertion sort: node counts are small
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, v := range ids {
		st := QueueStat{Node: v, Max: qs.maxLen[v]}
		if qs.total > 0 {
			st.Avg = qs.weighted[v] / qs.total
		}
		out = append(out, st)
	}
	return out
}

// Hottest returns the node with the highest time-averaged queue.
func (qs *QueueSampler) Hottest() QueueStat {
	all := qs.Stats()
	if len(all) == 0 {
		return QueueStat{Node: tree.None}
	}
	best := all[0]
	for _, s := range all[1:] {
		if s.Avg > best.Avg {
			best = s
		}
	}
	return best
}

// FlowCDFPoints evaluates the empirical CDF of per-job flows at the
// given thresholds — convenient for plotting latency profiles.
func FlowCDFPoints(res *sim.Result, at []float64) []float64 {
	return stats.CDF(Flows(res), at)
}
