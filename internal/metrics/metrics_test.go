package metrics

import (
	"math"
	"testing"

	"treesched/internal/rng"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func run(t *testing.T) (*sim.Result, *workload.Trace) {
	t.Helper()
	tr := tree.Star(2)
	r := rng.New(1)
	trace, err := workload.Poisson(r, workload.GenConfig{
		N:    100,
		Size: workload.ClassRounded{Base: workload.UniformSize{Lo: 1, Hi: 8}, Eps: 0.5},
		Load: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr, trace, &sched.RoundRobin{}, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, trace
}

func TestFlowsAndSummary(t *testing.T) {
	res, _ := run(t)
	fs := Flows(res)
	if len(fs) != 100 {
		t.Fatalf("flows = %d", len(fs))
	}
	s := FlowSummary(res)
	if s.N != 100 || s.Mean <= 0 || s.Max < s.P99 {
		t.Fatalf("bad summary %+v", s)
	}
}

func TestStretchAtLeastOne(t *testing.T) {
	res, _ := run(t)
	for i, st := range Stretch(res) {
		if st < 1-1e-9 {
			t.Fatalf("job %d stretch %v < 1", i, st)
		}
	}
}

func TestPerClassPartitions(t *testing.T) {
	res, trace := run(t)
	classes := PerClass(res, trace, 0.5)
	if len(classes) == 0 {
		t.Fatal("no classes")
	}
	total := 0
	for i, c := range classes {
		total += c.Summary.N
		if i > 0 && classes[i-1].Class >= c.Class {
			t.Fatal("classes not ascending")
		}
		want := math.Pow(1.5, float64(c.Class))
		if math.Abs(c.Size-want)/want > 1e-9 {
			t.Fatalf("class %d size %v, want %v", c.Class, c.Size, want)
		}
	}
	if total != 100 {
		t.Fatalf("classes cover %d/100 jobs", total)
	}
}

func TestCompetitiveRatio(t *testing.T) {
	res, _ := run(t)
	r := CompetitiveRatio(res, res.Stats.TotalFlow)
	if math.Abs(r-1) > 1e-12 {
		t.Fatalf("self ratio = %v", r)
	}
	if !math.IsInf(CompetitiveRatio(res, 0), 1) {
		t.Fatal("zero bound should give +Inf")
	}
}

func TestUtilizations(t *testing.T) {
	res, _ := run(t)
	us := Utilizations(res)
	if len(us) != 3 { // relay + 2 leaves
		t.Fatalf("utilizations = %d", len(us))
	}
	var totalWork float64
	for _, u := range us {
		if u.Busy < 0 || u.Busy > 1+1e-9 {
			t.Fatalf("node %d busy fraction %v", u.Node, u.Busy)
		}
		totalWork += u.Work
	}
	if totalWork <= 0 {
		t.Fatal("no work recorded")
	}
	b := Bottleneck(res)
	// The relay carries every job; it must be the bottleneck.
	if b.Node != res.Sim.Tree().RootAdjacent()[0] {
		t.Fatalf("bottleneck = node %d, want the relay", b.Node)
	}
}

func TestQueueSampler(t *testing.T) {
	tr := tree.Star(1)
	qs := NewQueueSampler()
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
		{ID: 2, Release: 0, Size: 2},
	}}
	res, err := sim.Run(tr, trace, &sched.RoundRobin{}, sim.Options{Observer: qs.Observe})
	if err != nil {
		t.Fatal(err)
	}
	_ = res
	stats := qs.Stats()
	if len(stats) != 2 { // relay + leaf
		t.Fatalf("queue stats for %d nodes, want 2", len(stats))
	}
	relay := stats[0]
	if relay.Max != 3 {
		t.Fatalf("relay max queue %d, want 3", relay.Max)
	}
	if relay.Avg <= 0 || relay.Avg > 3 {
		t.Fatalf("relay avg queue %v out of (0,3]", relay.Avg)
	}
	hot := qs.Hottest()
	if hot.Avg < stats[1].Avg {
		t.Fatal("Hottest returned a cooler node")
	}
}

func TestFlowCDFPoints(t *testing.T) {
	res, _ := run(t)
	pts := FlowCDFPoints(res, []float64{0, 1e12})
	if pts[0] != 0 || pts[1] != 1 {
		t.Fatalf("CDF endpoints = %v", pts)
	}
}
