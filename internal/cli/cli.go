// Package cli parses the compact topology / size-distribution /
// policy / assigner specifications shared by the command-line tools
// (cmd/treesched, cmd/lpbound, cmd/tracegen).
//
// Deprecated: the spec grammar now lives in the registries of
// package treesched/internal/scenario; these wrappers only add the
// historical "cli: " error prefix and will not grow new entries. New
// code should use scenario.Parse*/Build* (or whole Scenario values)
// directly.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"treesched/internal/scenario"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// wrap prepends the historical package prefix, preserving the exact
// pre-registry error text (pinned byte for byte by cli_test.go).
func wrap(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("cli: %w", err)
}

// ParseTopo builds a topology from a spec like "fattree:2,2,2",
// "star:4", "line:3", "caterpillar:4,2", "broomstick:2,3,1" or
// "random:2,4,2" (random uses a fixed seed so specs are reproducible).
//
// Deprecated: use scenario.ParseTopo.
func ParseTopo(spec string) (*tree.Tree, error) {
	t, err := scenario.ParseTopo(spec)
	return t, wrap(err)
}

// ParseSize builds a size distribution from a spec like
// "uniform:1,16", "bimodal:1,100,0.05" or "pareto:1,1.5,200".
//
// Deprecated: use scenario.ParseSize.
func ParseSize(spec string) (workload.SizeDist, error) {
	d, err := scenario.ParseSize(spec)
	return d, wrap(err)
}

// ParsePolicy resolves a node scheduling policy name.
//
// Deprecated: use scenario.ParsePolicy.
func ParsePolicy(name string) (sim.Policy, error) {
	p, err := scenario.ParsePolicy(name)
	return p, wrap(err)
}

// ParseAssigner resolves a leaf-assignment policy. The tree is needed
// by the shadow algorithm; eps parameterizes the greedy rules;
// unrelated selects the unrelated-endpoint variants; seed feeds the
// randomized baseline (historically as rng.New(seed+1)).
//
// Deprecated: use scenario.ParseAssigner.
func ParseAssigner(name string, t *tree.Tree, eps float64, unrelated bool, seed uint64) (sim.Assigner, error) {
	a, err := scenario.ParseAssigner(name, scenario.AssignerContext{
		Tree: t, Eps: eps, Unrelated: unrelated, Seed: seed + 1,
	})
	return a, wrap(err)
}

// ParseUnrelated parses "LEAVES:lo,hi" into an UnrelatedConfig.
//
// Deprecated: set the unrelated fields of a scenario.Workload.
func ParseUnrelated(spec string) (workload.UnrelatedConfig, error) {
	leavesStr, rangeStr, ok := strings.Cut(spec, ":")
	if !ok {
		return workload.UnrelatedConfig{}, fmt.Errorf("cli: unrelated spec %q wants LEAVES:lo,hi", spec)
	}
	leaves, err := strconv.Atoi(leavesStr)
	if err != nil {
		return workload.UnrelatedConfig{}, fmt.Errorf("cli: unrelated leaves %q: %w", leavesStr, err)
	}
	parts := strings.Split(rangeStr, ",")
	if len(parts) != 2 {
		return workload.UnrelatedConfig{}, fmt.Errorf("cli: unrelated range %q wants lo,hi", rangeStr)
	}
	lo, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return workload.UnrelatedConfig{}, err
	}
	hi, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return workload.UnrelatedConfig{}, err
	}
	return workload.UnrelatedConfig{Leaves: leaves, Lo: lo, Hi: hi}, nil
}
