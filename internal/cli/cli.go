// Package cli parses the compact topology / size-distribution /
// policy / assigner specifications shared by the command-line tools
// (cmd/treesched, cmd/lpbound, cmd/tracegen).
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"treesched/internal/core"
	"treesched/internal/rng"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// ParseTopo builds a topology from a spec like "fattree:2,2,2",
// "star:4", "line:3", "caterpillar:4,2", "broomstick:2,3,1" or
// "random:2,4,2" (random uses a fixed seed so specs are reproducible).
func ParseTopo(spec string) (t *tree.Tree, err error) {
	// The generators panic on out-of-range parameters (they are
	// programming errors in library use); for CLI input translate
	// panics into errors.
	defer func() {
		if r := recover(); r != nil {
			t, err = nil, fmt.Errorf("cli: topology %q: %v", spec, r)
		}
	}()
	name, args, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	ints := make([]int, len(args))
	for i, a := range args {
		v, err := strconv.Atoi(a)
		if err != nil {
			return nil, fmt.Errorf("cli: topology %q: arg %q is not an integer", spec, a)
		}
		ints[i] = v
	}
	need := func(k int) error {
		if len(ints) != k {
			return fmt.Errorf("cli: topology %s needs %d args, got %d", name, k, len(ints))
		}
		return nil
	}
	switch name {
	case "fattree":
		if err := need(3); err != nil {
			return nil, err
		}
		return tree.FatTree(ints[0], ints[1], ints[2]), nil
	case "star":
		if err := need(1); err != nil {
			return nil, err
		}
		return tree.Star(ints[0]), nil
	case "line":
		if err := need(1); err != nil {
			return nil, err
		}
		return tree.Line(ints[0]), nil
	case "caterpillar":
		if err := need(2); err != nil {
			return nil, err
		}
		return tree.Caterpillar(ints[0], ints[1]), nil
	case "broomstick":
		if err := need(3); err != nil {
			return nil, err
		}
		return tree.BroomstickTree(ints[0], ints[1], ints[2]), nil
	case "random":
		if err := need(3); err != nil {
			return nil, err
		}
		return tree.Random(rng.New(12345), tree.RandomConfig{
			Branches: ints[0], MaxDepth: ints[1], MaxChildren: ints[2], LeafProb: 0.45,
		}), nil
	default:
		return nil, fmt.Errorf("cli: unknown topology %q (want fattree|star|line|caterpillar|broomstick|random)", name)
	}
}

// ParseSize builds a size distribution from a spec like
// "uniform:1,16", "bimodal:1,100,0.05" or "pareto:1,1.5,200".
func ParseSize(spec string) (workload.SizeDist, error) {
	name, args, err := splitSpec(spec)
	if err != nil {
		return nil, err
	}
	fs := make([]float64, len(args))
	for i, a := range args {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("cli: size %q: arg %q is not a number", spec, a)
		}
		fs[i] = v
	}
	switch name {
	case "uniform":
		if len(fs) != 2 {
			return nil, fmt.Errorf("cli: uniform needs lo,hi")
		}
		return workload.UniformSize{Lo: fs[0], Hi: fs[1]}, nil
	case "bimodal":
		if len(fs) != 3 {
			return nil, fmt.Errorf("cli: bimodal needs small,big,pbig")
		}
		return workload.BimodalSize{Small: fs[0], Big: fs[1], PBig: fs[2]}, nil
	case "pareto":
		if len(fs) != 3 {
			return nil, fmt.Errorf("cli: pareto needs min,alpha,cap")
		}
		return workload.ParetoSize{Min: fs[0], Alpha: fs[1], Cap: fs[2]}, nil
	default:
		return nil, fmt.Errorf("cli: unknown size distribution %q (want uniform|bimodal|pareto)", name)
	}
}

// ParsePolicy resolves a node scheduling policy name.
func ParsePolicy(name string) (sim.Policy, error) {
	switch name {
	case "sjf":
		return sim.SJF{}, nil
	case "fifo":
		return sim.FIFO{}, nil
	case "srpt":
		return sim.SRPT{}, nil
	case "lcfs":
		return sim.LCFS{}, nil
	case "ps":
		return sim.PS{}, nil
	default:
		return nil, fmt.Errorf("cli: unknown policy %q (want sjf|fifo|srpt|lcfs|ps)", name)
	}
}

// ParseAssigner resolves a leaf-assignment policy. The tree is needed
// by the shadow algorithm; eps parameterizes the greedy rules;
// unrelated selects the unrelated-endpoint variants; seed feeds the
// randomized baseline.
func ParseAssigner(name string, t *tree.Tree, eps float64, unrelated bool, seed uint64) (sim.Assigner, error) {
	switch name {
	case "greedy":
		if unrelated {
			return core.NewGreedyUnrelated(eps), nil
		}
		return core.NewGreedyIdentical(eps), nil
	case "shadow":
		return core.NewShadow(t, core.ShadowConfig{Eps: eps, Unrelated: unrelated})
	case "closest":
		return sched.ClosestLeaf{}, nil
	case "random":
		return &sched.RandomLeaf{R: rng.New(seed + 1)}, nil
	case "roundrobin":
		return &sched.RoundRobin{}, nil
	case "leastvolume":
		return sched.LeastVolume{}, nil
	case "minpath":
		return sched.MinPathWork{}, nil
	case "jsq":
		return sched.JoinShortestQueue{}, nil
	default:
		return nil, fmt.Errorf("cli: unknown assigner %q (want greedy|shadow|closest|random|roundrobin|leastvolume|minpath|jsq)", name)
	}
}

// ParseUnrelated parses "LEAVES:lo,hi" into an UnrelatedConfig.
func ParseUnrelated(spec string) (workload.UnrelatedConfig, error) {
	leavesStr, rangeStr, ok := strings.Cut(spec, ":")
	if !ok {
		return workload.UnrelatedConfig{}, fmt.Errorf("cli: unrelated spec %q wants LEAVES:lo,hi", spec)
	}
	leaves, err := strconv.Atoi(leavesStr)
	if err != nil {
		return workload.UnrelatedConfig{}, fmt.Errorf("cli: unrelated leaves %q: %w", leavesStr, err)
	}
	parts := strings.Split(rangeStr, ",")
	if len(parts) != 2 {
		return workload.UnrelatedConfig{}, fmt.Errorf("cli: unrelated range %q wants lo,hi", rangeStr)
	}
	lo, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	if err != nil {
		return workload.UnrelatedConfig{}, err
	}
	hi, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	if err != nil {
		return workload.UnrelatedConfig{}, err
	}
	return workload.UnrelatedConfig{Leaves: leaves, Lo: lo, Hi: hi}, nil
}

func splitSpec(spec string) (name string, args []string, err error) {
	name, argstr, _ := strings.Cut(spec, ":")
	if name == "" {
		return "", nil, fmt.Errorf("cli: empty spec")
	}
	if argstr != "" {
		for _, a := range strings.Split(argstr, ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	return name, args, nil
}
