package cli

import (
	"strings"
	"testing"

	"treesched/internal/rng"
	"treesched/internal/sched"
	"treesched/internal/sim"
)

// The cli parsers are a thin shim over the scenario registries; these
// tests pin every error message byte for byte so registry refactors
// cannot silently change what the tools print.
func TestParserErrorMessages(t *testing.T) {
	cases := []struct {
		name string
		got  func() error
		want string
	}{
		{"topo empty", func() error { _, err := ParseTopo(""); return err },
			`cli: empty spec`},
		{"topo bad int", func() error { _, err := ParseTopo("fattree:a,b,c"); return err },
			`cli: topology "fattree:a,b,c": arg "a" is not an integer`},
		{"topo float arg", func() error { _, err := ParseTopo("fattree:2.5,2,2"); return err },
			`cli: topology "fattree:2.5,2,2": arg "2.5" is not an integer`},
		{"topo arg count", func() error { _, err := ParseTopo("fattree:2,2"); return err },
			`cli: topology fattree needs 3 args, got 2`},
		{"topo extra args", func() error { _, err := ParseTopo("star:1,2"); return err },
			`cli: topology star needs 1 args, got 2`},
		{"topo unknown", func() error { _, err := ParseTopo("mesh:2"); return err },
			`cli: unknown topology "mesh" (want fattree|star|line|caterpillar|broomstick|random)`},
		{"size arg count", func() error { _, err := ParseSize("uniform:1"); return err },
			`cli: uniform needs lo,hi`},
		{"size bimodal count", func() error { _, err := ParseSize("bimodal:1,100"); return err },
			`cli: bimodal needs small,big,pbig`},
		{"size pareto count", func() error { _, err := ParseSize("pareto:1,1.5"); return err },
			`cli: pareto needs min,alpha,cap`},
		{"size bad number", func() error { _, err := ParseSize("uniform:x,16"); return err },
			`cli: size "uniform:x,16": arg "x" is not a number`},
		{"size unknown", func() error { _, err := ParseSize("normal:0,1"); return err },
			`cli: unknown size distribution "normal" (want uniform|bimodal|pareto)`},
		{"policy unknown", func() error { _, err := ParsePolicy("edf"); return err },
			`cli: unknown policy "edf" (want sjf|fifo|srpt|lcfs|ps|wsjf)`},
		{"assigner unknown", func() error { _, err := ParseAssigner("oracle", nil, 0.5, false, 1); return err },
			`cli: unknown assigner "oracle" (want greedy|greedy-identical|greedy-unrelated|shadow|closest|random|roundrobin|leastvolume|minpath|jsq)`},
		{"unrelated no colon", func() error { _, err := ParseUnrelated("8"); return err },
			`cli: unrelated spec "8" wants LEAVES:lo,hi`},
		{"unrelated bad leaves", func() error { _, err := ParseUnrelated("x:1,2"); return err },
			`cli: unrelated leaves "x": strconv.Atoi: parsing "x": invalid syntax`},
		{"unrelated bad range", func() error { _, err := ParseUnrelated("8:1"); return err },
			`cli: unrelated range "1" wants lo,hi`},
	}
	for _, c := range cases {
		err := c.got()
		if err == nil {
			t.Fatalf("%s: no error", c.name)
		}
		if err.Error() != c.want {
			t.Fatalf("%s:\n got  %q\n want %q", c.name, err.Error(), c.want)
		}
	}
}

// Generator panics (out-of-range shape parameters) must come back as
// errors carrying the spec context prefix.
func TestParseTopoPanicRecovery(t *testing.T) {
	for _, spec := range []string{"line:0", "fattree:0,1,1", "star:-3"} {
		_, err := ParseTopo(spec)
		if err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
		wantPrefix := `cli: topology "` + spec + `": `
		if !strings.HasPrefix(err.Error(), wantPrefix) {
			t.Fatalf("spec %q: error %q lacks prefix %q", spec, err.Error(), wantPrefix)
		}
	}
}

// The randomized baseline must keep its historical seeding (seed+1):
// the shim's assigner must make exactly the same choices as a
// hand-built RandomLeaf.
func TestParseAssignerRandomSeedCompat(t *testing.T) {
	tr, err := ParseTopo("fattree:2,2,2")
	if err != nil {
		t.Fatal(err)
	}
	const seed = 7
	got, err := ParseAssigner("random", tr, 0.5, false, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := &sched.RandomLeaf{R: rng.New(seed + 1)}
	s := sim.New(tr, sim.Options{})
	for i := 0; i < 50; i++ {
		a := sim.Arrival{ID: i, Size: 1}
		if g, w := got.Assign(s.Query(), &a), want.Assign(s.Query(), &a); g != w {
			t.Fatalf("draw %d: shim chose leaf %d, direct rng.New(seed+1) chose %d", i, g, w)
		}
	}
}
