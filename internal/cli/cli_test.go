package cli

import (
	"strings"
	"testing"

	"treesched/internal/workload"
)

func TestParseTopoValid(t *testing.T) {
	cases := []struct {
		spec   string
		leaves int
	}{
		{"fattree:2,2,2", 8},
		{"star:4", 4},
		{"line:3", 1},
		{"caterpillar:3,2", 6},
		{"broomstick:2,3,1", 4},
	}
	for _, c := range cases {
		tr, err := ParseTopo(c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.spec, err)
		}
		if len(tr.Leaves()) != c.leaves {
			t.Fatalf("%s: leaves = %d, want %d", c.spec, len(tr.Leaves()), c.leaves)
		}
	}
}

func TestParseTopoRandomReproducible(t *testing.T) {
	a, err := ParseTopo("random:2,4,2")
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseTopo("random:2,4,2")
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatal("random topology spec is not reproducible")
	}
}

func TestParseTopoErrors(t *testing.T) {
	for _, spec := range []string{
		"", "mesh:2", "fattree:2,2", "fattree:a,b,c", "star", "line:0",
	} {
		if _, err := ParseTopo(spec); err == nil {
			t.Fatalf("spec %q accepted", spec)
		}
	}
}

func TestParseTopoLinePanicsOnZero(t *testing.T) {
	// line:0 should error, not panic (generator panics are translated).
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("ParseTopo(line:0) panicked: %v", r)
		}
	}()
	_, _ = ParseTopo("line:0")
}

func TestParseSize(t *testing.T) {
	u, err := ParseSize("uniform:1,16")
	if err != nil {
		t.Fatal(err)
	}
	if u.Mean() != 8.5 {
		t.Fatalf("uniform mean %v", u.Mean())
	}
	b, err := ParseSize("bimodal:1,100,0.05")
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() == "" {
		t.Fatal("empty name")
	}
	p, err := ParseSize("pareto:1,1.5,200")
	if err != nil {
		t.Fatal(err)
	}
	if p.Mean() <= 0 {
		t.Fatal("pareto mean")
	}
	for _, spec := range []string{"uniform:1", "normal:0,1", "pareto:1,2", "bimodal:x,y,z"} {
		if _, err := ParseSize(spec); err == nil {
			t.Fatalf("size spec %q accepted", spec)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"sjf", "fifo", "srpt", "lcfs", "ps"} {
		p, err := ParsePolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.EqualFold(p.Name(), name) {
			t.Fatalf("policy %q resolved to %q", name, p.Name())
		}
	}
	if _, err := ParsePolicy("edf"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestParseAssigner(t *testing.T) {
	tr, err := ParseTopo("star:2")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"greedy", "shadow", "closest", "random", "roundrobin", "leastvolume", "minpath", "jsq"} {
		a, err := ParseAssigner(name, tr, 0.5, false, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
	// Unrelated variant switches the greedy implementation.
	a, err := ParseAssigner("greedy", tr, 0.5, true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "GreedyUnrelated" {
		t.Fatalf("unrelated greedy resolved to %q", a.Name())
	}
	if _, err := ParseAssigner("oracle", tr, 0.5, false, 1); err == nil {
		t.Fatal("unknown assigner accepted")
	}
}

func TestParseUnrelated(t *testing.T) {
	cfg, err := ParseUnrelated("8:0.5,2")
	if err != nil {
		t.Fatal(err)
	}
	want := workload.UnrelatedConfig{Leaves: 8, Lo: 0.5, Hi: 2}
	if cfg != want {
		t.Fatalf("cfg = %+v", cfg)
	}
	for _, spec := range []string{"8", "x:1,2", "8:1", "8:a,b"} {
		if _, err := ParseUnrelated(spec); err == nil {
			t.Fatalf("unrelated spec %q accepted", spec)
		}
	}
}
