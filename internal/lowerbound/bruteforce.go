package lowerbound

import (
	"fmt"
	"math"

	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

// fixedAssignment replays a precomputed job->leaf map.
type fixedAssignment struct {
	leaves []tree.NodeID
}

func (f *fixedAssignment) Name() string { return "fixed" }
func (f *fixedAssignment) Assign(_ *sim.Query, a *sim.Arrival) tree.NodeID {
	return f.leaves[a.ID]
}

// BestAssignmentUpperBound exhaustively enumerates every leaf
// assignment of the instance (|L|^n combinations) and, for each, runs
// the preemptive node policies SJF, SRPT and FIFO, returning the best
// total flow found. The result is an UPPER bound on OPT (it is an
// achievable schedule) that is usually very tight on tiny instances,
// giving a bracket [lower bound, upper bound] around the true optimum.
// It errors out when the search space exceeds maxCombos.
func BestAssignmentUpperBound(t *tree.Tree, trace *workload.Trace, maxCombos int) (float64, error) {
	nL := len(t.Leaves())
	n := len(trace.Jobs)
	combos := 1
	for i := 0; i < n; i++ {
		combos *= nL
		if combos > maxCombos {
			return 0, fmt.Errorf("lowerbound: %d^%d assignments exceed the cap %d", nL, n, maxCombos)
		}
	}
	best := math.Inf(1)
	asg := &fixedAssignment{leaves: make([]tree.NodeID, n)}
	policies := []sim.Policy{sim.SJF{}, sim.SRPT{}, sim.FIFO{}}
	for c := 0; c < combos; c++ {
		x := c
		for j := 0; j < n; j++ {
			asg.leaves[j] = t.Leaves()[x%nL]
			x /= nL
		}
		for _, pol := range policies {
			res, err := sim.Run(t, trace, asg, sim.Options{Policy: pol})
			if err != nil {
				return 0, err
			}
			if res.Stats.TotalFlow < best {
				best = res.Stats.TotalFlow
			}
		}
	}
	return best, nil
}
