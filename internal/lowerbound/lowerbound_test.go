package lowerbound

import (
	"math"
	"testing"
	"testing/quick"

	"treesched/internal/rng"
	"treesched/internal/sched"
	"treesched/internal/sim"
	"treesched/internal/tree"
	"treesched/internal/workload"
)

func TestSRPTSingleJob(t *testing.T) {
	got := SRPTSingleMachine([]SRPTJob{{Release: 2, Size: 4}}, 1)
	if got != 4 {
		t.Fatalf("flow = %v, want 4", got)
	}
	got = SRPTSingleMachine([]SRPTJob{{Release: 2, Size: 4}}, 2)
	if got != 2 {
		t.Fatalf("speed-2 flow = %v, want 2", got)
	}
}

func TestSRPTPreempts(t *testing.T) {
	// Big at 0 (size 10), small at 1 (size 1): SRPT runs small 1-2,
	// big completes at 11. Flows: 11 + 1 = 12.
	got := SRPTSingleMachine([]SRPTJob{{0, 10}, {1, 1}}, 1)
	if math.Abs(got-12) > 1e-9 {
		t.Fatalf("flow = %v, want 12", got)
	}
}

func TestSRPTIdlePeriods(t *testing.T) {
	got := SRPTSingleMachine([]SRPTJob{{0, 1}, {10, 1}}, 1)
	if math.Abs(got-2) > 1e-9 {
		t.Fatalf("flow = %v, want 2", got)
	}
}

func TestSRPTIsOptimalVsFIFOOrder(t *testing.T) {
	// SRPT total flow is minimal; compare against processing in
	// arrival order for a case where they differ.
	jobs := []SRPTJob{{0, 10}, {1, 1}, {2, 1}}
	srpt := SRPTSingleMachine(jobs, 1)
	// FIFO: C = 10, 11, 12 -> flows 10+10+10=30. SRPT: small ones at
	// 2 and 3, big at 12 -> 12+1+1... compute: 1 runs 1-2 (flow 1), 2
	// runs 2-3 (flow 1), big 12 (flow 12): total 14.
	if math.Abs(srpt-14) > 1e-9 {
		t.Fatalf("SRPT flow = %v, want 14", srpt)
	}
}

func TestPathWorkSingle(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{{ID: 0, Release: 0, Size: 3}}}
	// d_v = 2 nodes: relay + leaf = 6.
	if got := PathWork(tr, trace); math.Abs(got-6) > 1e-9 {
		t.Fatalf("PathWork = %v, want 6", got)
	}
}

func TestPathWorkUnrelatedPicksBestLeaf(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2, LeafSizes: []float64{9, 5}},
	}}
	// router work 2 + best leaf 5 = 7.
	if got := PathWork(tr, trace); math.Abs(got-7) > 1e-9 {
		t.Fatalf("PathWork = %v, want 7", got)
	}
}

func TestCombinedExceedsParts(t *testing.T) {
	tr := tree.BroomstickTree(1, 3, 1)
	r := rng.New(1)
	trace, err := workload.Poisson(r, workload.GenConfig{N: 100, Size: workload.UniformSize{Lo: 1, Hi: 4}, Load: 0.9, Capacity: 1})
	if err != nil {
		t.Fatal(err)
	}
	agg := AggregatedRootSRPT(tr, trace)
	cb := Combined(tr, trace)
	if cb <= agg {
		t.Fatalf("Combined %v should exceed AggregatedRootSRPT %v", cb, agg)
	}
	if Best(tr, trace) < cb {
		t.Fatal("Best below Combined")
	}
}

// The defining property: every bound must be ≤ the flow achieved by
// any actual speed-1 schedule, on any instance.
func TestBoundsAreValidProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tr := tree.Random(r, tree.RandomConfig{Branches: 1 + r.Intn(3), MaxDepth: 2 + r.Intn(3), MaxChildren: 2, LeafProb: 0.5})
		trace, err := workload.Poisson(r, workload.GenConfig{
			N:        50,
			Size:     workload.UniformSize{Lo: 1, Hi: 6},
			Load:     0.5 + r.Float64(),
			Capacity: float64(len(tr.RootAdjacent())),
		})
		if err != nil {
			return false
		}
		if r.Bool(0.4) {
			if err := workload.MakeUnrelated(r, trace, workload.UnrelatedConfig{Leaves: len(tr.Leaves()), Lo: 0.5, Hi: 2}); err != nil {
				return false
			}
		}
		lb := Best(tr, trace)
		// Try several schedules; all must cost at least lb.
		assigners := []sim.Assigner{sched.ClosestLeaf{}, &sched.RoundRobin{}, sched.LeastVolume{}, sched.MinPathWork{}}
		policies := []sim.Policy{sim.SJF{}, sim.FIFO{}, sim.SRPT{}}
		for _, asg := range assigners {
			res, err := sim.Run(tr, trace, asg, sim.Options{Policy: policies[r.Intn(len(policies))]})
			if err != nil {
				return false
			}
			if res.Stats.TotalFlow < lb-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSRPTSpeedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("speed 0 accepted")
		}
	}()
	SRPTSingleMachine(nil, 0)
}

// Structural properties of the bounds: Combined dominates the SRPT
// part, and all bounds grow monotonically as jobs are appended.
func TestBoundMonotoneInJobs(t *testing.T) {
	tr := tree.FatTree(2, 1, 2)
	r := rng.New(77)
	full, err := workload.Poisson(r, workload.GenConfig{N: 60, Size: workload.UniformSize{Lo: 1, Hi: 5}, Load: 0.9, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for n := 10; n <= 60; n += 10 {
		sub := &workload.Trace{Jobs: full.Jobs[:n]}
		b := Best(tr, sub)
		if b < prev {
			t.Fatalf("Best decreased when adding jobs: %v -> %v at n=%d", prev, b, n)
		}
		prev = b
		if Combined(tr, sub) < AggregatedRootSRPT(tr, sub) {
			t.Fatal("Combined below its SRPT component")
		}
	}
}

func TestBestAssignmentUpperBound(t *testing.T) {
	tr := tree.Star(2)
	trace := &workload.Trace{Jobs: []workload.Job{
		{ID: 0, Release: 0, Size: 2},
		{ID: 1, Release: 0, Size: 2},
	}}
	ub, err := BestAssignmentUpperBound(tr, trace, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Best: split across the two leaves. Relay serializes: A 0-2,
	// B 2-4; leaves: A 2-4, B 4-6. Flows 4+6=10.
	if math.Abs(ub-10) > 1e-9 {
		t.Fatalf("upper bound = %v, want 10", ub)
	}
	// Must dominate every lower bound.
	if lb := Best(tr, trace); lb > ub+1e-9 {
		t.Fatalf("lower bound %v above brute-force optimum %v", lb, ub)
	}
}

func TestBestAssignmentCap(t *testing.T) {
	tr := tree.Star(4)
	jobs := make([]workload.Job, 12)
	for i := range jobs {
		jobs[i] = workload.Job{ID: i, Release: float64(i), Size: 1}
	}
	if _, err := BestAssignmentUpperBound(tr, &workload.Trace{Jobs: jobs}, 1000); err == nil {
		t.Fatal("cap not enforced")
	}
}

// Bracket property: LB <= brute-force UB on random tiny instances.
func TestBracketProperty(t *testing.T) {
	check := func(seed uint64) bool {
		r := rng.New(seed)
		tr := tree.Star(2)
		n := 2 + r.Intn(4)
		jobs := make([]workload.Job, n)
		rel := 0.0
		for i := range jobs {
			rel += r.Float64() * 2
			jobs[i] = workload.Job{ID: i, Release: rel, Size: 0.5 + 3*r.Float64()}
		}
		trace := &workload.Trace{Jobs: jobs}
		ub, err := BestAssignmentUpperBound(tr, trace, 5000)
		if err != nil {
			return false
		}
		return Best(tr, trace) <= ub+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
