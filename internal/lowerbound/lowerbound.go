// Package lowerbound computes valid lower bounds on the optimal total
// flow time of a tree-network scheduling instance, against a speed-1
// adversary. The competitive-ratio experiments divide the algorithm's
// achieved flow by the best of these bounds, so the reported ratios
// are upper bounds on the true competitive ratio — the right direction
// for validating the paper's O(·)-competitiveness claims.
//
// Bounds implemented:
//
//   - PathWork: Σ_j min_v P_{j,v}. Even alone in the system, a job's
//     flow time is its full path processing time on the best leaf.
//   - AggregatedRootSRPT: every job must be fully processed on some
//     root-adjacent node. Relaxing the k root-adjacent nodes to a
//     single machine of speed k (a speed-k machine can time-share to
//     simulate any k-machine schedule) and scheduling with SRPT —
//     which is optimal for single-machine total flow time — bounds
//     Σ_j (C_j^{root} − r_j) from below.
//   - Combined: flow_j ≥ (C_j^{root} − r_j) + (remaining path work
//     below the root-adjacent node), and the two terms are sequential
//     for each job, so their optimal sums add.
package lowerbound

import (
	"container/heap"
	"sort"

	"treesched/internal/tree"
	"treesched/internal/workload"
)

// SRPTJob is a release/size pair for the single-machine relaxation.
type SRPTJob struct {
	Release, Size float64
}

// srptHeap orders jobs by remaining processing time.
type srptHeap []*srptItem

type srptItem struct {
	remaining float64
	release   float64
}

func (h srptHeap) Len() int            { return len(h) }
func (h srptHeap) Less(i, j int) bool  { return h[i].remaining < h[j].remaining }
func (h srptHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *srptHeap) Push(x interface{}) { *h = append(*h, x.(*srptItem)) }
func (h *srptHeap) Pop() interface{} {
	old := *h
	n := len(old) - 1
	it := old[n]
	*h = old[:n]
	return it
}

// SRPTSingleMachine returns the total flow time of the (optimal)
// preemptive SRPT schedule of the jobs on one machine of the given
// speed. Jobs must be sorted by release time.
func SRPTSingleMachine(jobs []SRPTJob, speed float64) float64 {
	if speed <= 0 {
		panic("lowerbound: non-positive machine speed")
	}
	h := &srptHeap{}
	now := 0.0
	total := 0.0
	i := 0
	for i < len(jobs) || h.Len() > 0 {
		if h.Len() == 0 {
			// Idle until the next arrival.
			if jobs[i].Release > now {
				now = jobs[i].Release
			}
		}
		// Admit everything released by now.
		for i < len(jobs) && jobs[i].Release <= now {
			heap.Push(h, &srptItem{remaining: jobs[i].Size, release: jobs[i].Release})
			i++
		}
		cur := (*h)[0]
		finish := now + cur.remaining/speed
		if i < len(jobs) && jobs[i].Release < finish {
			// Process until the next arrival, then re-evaluate.
			cur.remaining -= (jobs[i].Release - now) * speed
			now = jobs[i].Release
			heap.Fix(h, 0)
			continue
		}
		now = finish
		total += now - cur.release
		heap.Pop(h)
	}
	return total
}

// PathWork returns Σ_j min_v P_{j,v}: total path processing on the
// best leaf for each job, at adversary speed 1.
func PathWork(t *tree.Tree, trace *workload.Trace) float64 {
	var sum float64
	for i := range trace.Jobs {
		sum += bestPathWork(t, &trace.Jobs[i], false)
	}
	return sum
}

// bestPathWork returns min_v over eligible leaves of the job's path
// work; belowRoot restricts to the portion after the root-adjacent
// node.
func bestPathWork(t *tree.Tree, j *workload.Job, belowRoot bool) float64 {
	best := -1.0
	for _, v := range t.Leaves() {
		d := t.Depth(v) // nodes on path including R(v) and the leaf
		routers := float64(d - 1)
		if belowRoot {
			routers-- // exclude the root-adjacent node's work
		}
		w := routers*j.Size + j.LeafSize(t.LeafIndex(v))
		if best < 0 || w < best {
			best = w
		}
	}
	return best
}

// AggregatedRootSRPT lower-bounds Σ_j (C_j^{root-adjacent} − r_j): the
// k root-adjacent nodes are relaxed to one speed-k machine scheduled
// by SRPT.
func AggregatedRootSRPT(t *tree.Tree, trace *workload.Trace) float64 {
	jobs := make([]SRPTJob, len(trace.Jobs))
	for i := range trace.Jobs {
		jobs[i] = SRPTJob{Release: trace.Jobs[i].Release, Size: trace.Jobs[i].Size}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Release < jobs[b].Release })
	return SRPTSingleMachine(jobs, float64(len(t.RootAdjacent())))
}

// Combined returns AggregatedRootSRPT plus the per-job minimum
// remaining path work below the root-adjacent node: for every job the
// root-node completion and the remaining descent are sequential, so
// the bound sums.
func Combined(t *tree.Tree, trace *workload.Trace) float64 {
	lb := AggregatedRootSRPT(t, trace)
	for i := range trace.Jobs {
		lb += bestPathWork(t, &trace.Jobs[i], true)
	}
	return lb
}

// Best returns the strongest available combinatorial bound.
func Best(t *tree.Tree, trace *workload.Trace) float64 {
	pw := PathWork(t, trace)
	cb := Combined(t, trace)
	if pw > cb {
		return pw
	}
	return cb
}
