// Package treesched is a faithful, executable reproduction of
// "Scheduling in Bandwidth Constrained Tree Networks" (Sungjin Im and
// Benjamin Moseley, SPAA 2015).
//
// The paper introduces online scheduling of jobs that arrive at the
// root of a tree network and must be routed, store-and-forward and
// under per-node bandwidth constraints, to leaf machines that process
// them; the objective is total flow time. This module provides:
//
//   - a continuous-time discrete-event simulator of the model
//     (identical and unrelated endpoints, per-node speeds, preemptive
//     node policies, exact integral and fractional flow accounting);
//   - the paper's algorithms: SJF at every node, the greedy leaf
//     assignment rules of Sections 3.4-3.6, the broomstick reduction
//     of Section 3.3, and the general-tree shadow algorithm of
//     Section 3.7;
//   - baselines (closest/random/round-robin/least-volume/...)
//     and node-policy alternatives (FIFO, SRPT, LCFS);
//   - valid lower bounds on OPT (combinatorial, plus the paper's
//     time-indexed LP solved exactly by a built-in simplex);
//   - validators for the paper's structural lemmas (Lemmas 1, 2, 3
//     and 8) that check the proofs' invariants inside live schedules;
//   - an experiment suite (internal/experiments, cmd/experiments)
//     that regenerates every figure/claim listed in DESIGN.md.
//
// # Quick start
//
//	t := treesched.FatTree(2, 2, 2)           // 2-ary fat tree
//	trace, _ := treesched.PoissonTrace(1, 1000, 0.9, t)
//	res, _ := treesched.Run(t, trace, treesched.NewGreedyIdentical(0.5), treesched.Options{})
//	fmt.Println("avg flow:", res.AvgFlow())
//
// See examples/ for runnable programs and DESIGN.md for the full
// system inventory and experiment index.
package treesched
