// Command treeschedd is the scheduler-as-a-service daemon: a
// long-lived HTTP server wrapping the streaming engine for online
// dispatch. Jobs arrive as NDJSON over POST /jobs, pass a bounded
// admission queue with watermark-based load shedding (429 +
// Retry-After under overload), and completions stream back over GET
// /completions as NDJSON byte-identical to an offline streaming run
// of the accepted trace.
//
// Usage:
//
//	treeschedd -listen 127.0.0.1:7077 -scenario serve.json \
//	           [-queue 1024] [-shed-backlog 500] [-retry-after 1s] \
//	           [-stall-timeout 30s] [-max-line 1048576] [-addr-file path] \
//	           [-pprof 127.0.0.1:6060]
//
// -pprof exposes net/http/pprof on its own listener (never on the
// serving address), off by default, for profiling the daemon live.
//
// The scenario must be a serve scenario (compact flag "serve", e.g.
// "topo=fattree:2,2,2 speed=1.5 serve"): it fixes the topology,
// speeds, policy and assigner, and the workload arrives from clients.
// Without -scenario the default is "topo=fattree:2,2,2 speed=1.5
// serve".
//
// SIGINT/SIGTERM (or POST /drain) trigger a graceful drain: admission
// stops (503), every accepted job runs to completion, completion
// streams flush and close, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"treesched/internal/scenario"
	"treesched/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process boundary (0 ok, 1 runtime error, 2
// flag error). It returns once the daemon has fully drained.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("treeschedd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	listen := fs.String("listen", "127.0.0.1:7077", "listen address (host:port; port 0 picks a free port)")
	scenarioPath := fs.String("scenario", "", "serve scenario file (JSON or compact form); default topo=fattree:2,2,2 speed=1.5 serve")
	queue := fs.Int("queue", 0, "admission queue depth (0 = default 1024)")
	shedBacklog := fs.Float64("shed-backlog", 0, "load-shedding watermark in units of work (0 = queue-bound only)")
	retryAfter := fs.Duration("retry-after", time.Second, "Retry-After hint returned with 429")
	stallTimeout := fs.Duration("stall-timeout", 30*time.Second, "per-line read deadline on job submissions")
	maxLine := fs.Int("max-line", 1<<20, "max NDJSON line length in a job submission (bytes)")
	addrFile := fs.String("addr-file", "", "write the bound listen address to this file once serving (for port 0)")
	pprofAddr := fs.String("pprof", "", "expose /debug/pprof on this separate listen address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	sc := &scenario.Scenario{Topology: scenario.NewSpec("fattree", 2, 2, 2), Speed: scenario.Speed{Uniform: 1.5}}
	sc.Engine.Serve = true
	if *scenarioPath != "" {
		data, err := os.ReadFile(*scenarioPath)
		if err != nil {
			fmt.Fprintf(stderr, "treeschedd: %v\n", err)
			return 1
		}
		if sc, err = scenario.Load(data); err != nil {
			fmt.Fprintf(stderr, "treeschedd: %v\n", err)
			return 1
		}
	}

	srv, err := server.New(server.Config{
		Scenario:     sc,
		QueueDepth:   *queue,
		ShedBacklog:  *shedBacklog,
		RetryAfter:   *retryAfter,
		StallTimeout: *stallTimeout,
		MaxLineBytes: *maxLine,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(stderr, "treeschedd: "+format+"\n", a...)
		},
	})
	if err != nil {
		fmt.Fprintf(stderr, "treeschedd: %v\n", err)
		return 1
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(stderr, "treeschedd: %v\n", err)
		return 1
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
			fmt.Fprintf(stderr, "treeschedd: %v\n", err)
			ln.Close()
			return 1
		}
	}
	fmt.Fprintf(stdout, "treeschedd: serving on http://%s\n", ln.Addr())

	if *pprofAddr != "" {
		// A dedicated mux on a dedicated listener: the profiling
		// surface never rides on the serving address, and importing
		// net/http/pprof registers nothing we serve (we never serve
		// http.DefaultServeMux).
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintf(stderr, "treeschedd: pprof: %v\n", err)
			ln.Close()
			return 1
		}
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go psrv.Serve(pln)
		defer psrv.Close()
		fmt.Fprintf(stdout, "treeschedd: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	hs := &http.Server{
		Handler: srv.Handler(),
		// Completion streams are long-lived, so no blanket write
		// timeout; header reads are bounded to shed dead dials.
		ReadHeaderTimeout: 10 * time.Second,
	}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)

	// Wait for a drain trigger: a signal, a POST /drain (engine done),
	// or the HTTP listener dying.
	select {
	case sig := <-sigs:
		fmt.Fprintf(stdout, "treeschedd: %v: draining\n", sig)
	case <-srv.Done():
	case err := <-httpDone:
		fmt.Fprintf(stderr, "treeschedd: http: %v\n", err)
		srv.Drain()
		return 1
	}

	code := 0
	if err := srv.Drain(); err != nil {
		fmt.Fprintf(stderr, "treeschedd: drain: %v\n", err)
		code = 1
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "treeschedd: drained: accepted=%d completed=%d shed=%d rejected=%d\n",
		st.Accepted, st.Completed, st.Shed, st.Rejected)

	// Let in-flight handlers (stats polls, completion readers seeing
	// the close) finish, then stop serving.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	if err := <-httpDone; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "treeschedd: http: %v\n", err)
		code = 1
	}
	return code
}
